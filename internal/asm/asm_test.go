package asm

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// parseOK parses src and fails the test on error or verifier rejection.
func parseOK(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := ParseModule("test", src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify error: %v\nsource:\n%s", err, src)
	}
	return m
}

// roundTrip checks parse → print → parse → print reaches a fixed point.
func roundTrip(t *testing.T, src string) *core.Module {
	t.Helper()
	m1 := parseOK(t, src)
	out1 := m1.String()
	m2 := parseOK(t, out1)
	out2 := m2.String()
	if out1 != out2 {
		t.Fatalf("round trip not stable:\n--- first print ---\n%s\n--- second print ---\n%s", out1, out2)
	}
	return m1
}

func TestParseSimpleFunction(t *testing.T) {
	m := roundTrip(t, `
int %add1(int %x) {
entry:
	%y = add int %x, 1
	ret int %y
}
`)
	f := m.Func("add1")
	if f == nil || f.NumInstructions() != 2 {
		t.Fatal("function not parsed correctly")
	}
}

func TestParseLoopWithPhi(t *testing.T) {
	m := roundTrip(t, `
int %sum(int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%s = phi int [ 0, %entry ], [ %s2, %loop ]
	%s2 = add int %s, %i
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %s2
}
`)
	f := m.Func("sum")
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	phis := f.Blocks[1].Phis()
	if len(phis) != 2 || phis[0].NumIncoming() != 2 {
		t.Fatal("phis not parsed")
	}
}

func TestParseGlobalsAndTypes(t *testing.T) {
	m := roundTrip(t, `
%pair = type { int, float }
%counter = global int 0
%table = internal constant [3 x int] [ int 1, int 2, int 3 ]
%ext = external global double
%p = global %pair { int 4, float 2.5 }

int %get() {
entry:
	%v = load int* %counter
	ret int %v
}
`)
	pt, ok := m.NamedType("pair")
	if !ok || pt.Kind() != core.StructKind {
		t.Fatal("named type missing")
	}
	if m.Global("ext") == nil || !m.Global("ext").IsDeclaration() {
		t.Fatal("external global wrong")
	}
	tab := m.Global("table")
	if tab == nil || !tab.IsConst || tab.Linkage != core.InternalLinkage {
		t.Fatal("constant table wrong")
	}
	arr, ok := tab.Init.(*core.ConstantArray)
	if !ok || len(arr.Elems) != 3 {
		t.Fatal("array initializer wrong")
	}
}

func TestParseRecursiveType(t *testing.T) {
	m := roundTrip(t, `
%list = type { int, %list* }

int %head(%list* %l) {
entry:
	%p = getelementptr %list* %l, long 0, ubyte 0
	%v = load int* %p
	ret int %v
}
`)
	lt, _ := m.NamedType("list")
	st := lt.(*core.StructType)
	if len(st.Fields) != 2 {
		t.Fatal("recursive struct fields wrong")
	}
	inner := st.Fields[1].(*core.PointerType)
	if inner.Elem != core.Type(st) {
		t.Fatal("recursion not knotted")
	}
}

func TestParseForwardTypeReference(t *testing.T) {
	// %node referenced before its definition line.
	m := roundTrip(t, `
%tree = type { %node*, %node* }
%node = type { int, %tree }

int %zero(%node* %n) {
entry:
	ret int 0
}
`)
	nt, ok := m.NamedType("node")
	if !ok {
		t.Fatal("node type missing")
	}
	st := nt.(*core.StructType)
	if len(st.Fields) != 2 {
		t.Fatalf("node fields = %d", len(st.Fields))
	}
}

func TestParseCallsAndDeclarations(t *testing.T) {
	m := roundTrip(t, `
declare int %printf(sbyte*, ...)
%fmt = internal constant [4 x sbyte] c"%d\0A\00"

int %main() {
entry:
	%s = getelementptr [4 x sbyte]* %fmt, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %s, int 42)
	ret int %r
}
`)
	pf := m.Func("printf")
	if pf == nil || !pf.IsDeclaration() || !pf.Sig.Variadic {
		t.Fatal("printf declaration wrong")
	}
	if len(pf.Callers()) != 1 {
		t.Fatal("call site not linked to declaration")
	}
}

func TestParseForwardFunctionReference(t *testing.T) {
	m := roundTrip(t, `
int %caller() {
entry:
	%r = call int %callee(int 7)
	ret int %r
}

int %callee(int %x) {
entry:
	ret int %x
}
`)
	callee := m.Func("callee")
	if len(callee.Callers()) != 1 {
		t.Fatal("forward call not resolved")
	}
}

func TestParseInvokeUnwind(t *testing.T) {
	m := roundTrip(t, `
declare void %mayThrow()
declare void %cleanup()

void %tryIt() {
entry:
	invoke void %mayThrow() to label %ok unwind to label %ex
ok:
	ret void
ex:
	call void %cleanup()
	unwind
}
`)
	f := m.Func("tryIt")
	inv, ok := f.Entry().Terminator().(*core.InvokeInst)
	if !ok {
		t.Fatal("invoke not parsed")
	}
	if inv.NormalDest().Name() != "ok" || inv.UnwindDest().Name() != "ex" {
		t.Fatal("invoke destinations wrong")
	}
}

func TestParseSwitch(t *testing.T) {
	m := roundTrip(t, `
int %classify(int %x) {
entry:
	switch int %x, label %other [
		int 0, label %zero
		int 1, label %one ]
zero:
	ret int 100
one:
	ret int 200
other:
	ret int 300
}
`)
	sw := m.Func("classify").Entry().Terminator().(*core.SwitchInst)
	if sw.NumCases() != 2 {
		t.Fatalf("cases = %d", sw.NumCases())
	}
	v, d := sw.Case(1)
	if v.SExt() != 1 || d.Name() != "one" {
		t.Fatal("case 1 wrong")
	}
}

func TestParseMemoryOps(t *testing.T) {
	m := roundTrip(t, `
%xty = type { int, float, [4 x short] }

void %memops(long %i) {
entry:
	%heap = malloc %xty, uint 10
	%stack = alloca int
	store int 5, int* %stack
	%p = getelementptr %xty* %heap, long %i, ubyte 2, long 1
	store short 7, short* %p
	free %xty* %heap
	ret void
}
`)
	f := m.Func("memops")
	var sawMalloc, sawGEP, sawFree bool
	f.ForEachInst(func(inst core.Instruction) bool {
		switch inst.Opcode() {
		case core.OpMalloc:
			sawMalloc = true
		case core.OpGetElementPtr:
			sawGEP = true
		case core.OpFree:
			sawFree = true
		}
		return true
	})
	if !sawMalloc || !sawGEP || !sawFree {
		t.Fatal("memory instructions missing")
	}
}

func TestParseCastAndShift(t *testing.T) {
	roundTrip(t, `
ulong %bits(int %x) {
entry:
	%u = cast int %x to uint
	%w = cast uint %u to ulong
	%s = shl ulong %w, ubyte 3
	%s2 = shr ulong %s, ubyte 1
	ret ulong %s2
}
`)
}

func TestParseVarArgFunctionDef(t *testing.T) {
	m := roundTrip(t, `
int %sumall(int %n, ...) {
entry:
	ret int %n
}
`)
	if !m.Func("sumall").Sig.Variadic {
		t.Fatal("variadic flag lost")
	}
}

func TestParseVAArgInst(t *testing.T) {
	roundTrip(t, `
int %nextarg(sbyte** %ap) {
entry:
	%v = vaarg sbyte** %ap, int
	ret int %v
}
`)
}

func TestParseConstantExprInitializer(t *testing.T) {
	m := roundTrip(t, `
%str = internal constant [6 x sbyte] c"hello\00"
%strp = global sbyte* getelementptr ([6 x sbyte]* %str, long 0, long 0)
`)
	g := m.Global("strp")
	ce, ok := g.Init.(*core.ConstantExpr)
	if !ok || ce.Op != core.OpGetElementPtr {
		t.Fatalf("constant GEP not parsed: %T", g.Init)
	}
}

func TestParseFunctionPointerTable(t *testing.T) {
	// Virtual-function-table style global referencing functions defined later.
	m := roundTrip(t, `
%vtable = internal constant [2 x int (int)*] [ int (int)* %m1, int (int)* %m2 ]

int %m1(int %x) {
entry:
	ret int %x
}
int %m2(int %x) {
entry:
	%y = mul int %x, 2
	ret int %y
}
`)
	vt := m.Global("vtable")
	arr := vt.Init.(*core.ConstantArray)
	if arr.Elems[0] != core.Constant(m.Func("m1")) || arr.Elems[1] != core.Constant(m.Func("m2")) {
		t.Fatal("vtable entries not resolved to functions")
	}
}

func TestParseInternalFunction(t *testing.T) {
	m := roundTrip(t, `
internal int %helper() {
entry:
	ret int 1
}
`)
	if m.Func("helper").Linkage != core.InternalLinkage {
		t.Fatal("internal linkage lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"unknown opcode", "void %f() {\nentry:\n\tfrob int 1\n\tret void\n}", "unknown opcode"},
		{"undefined symbol", "void %f() {\nentry:\n\tcall void %nothere()\n\tret void\n}", "undefined symbol"},
		{"bad type", "void %f(badtype %x) {\nentry:\n\tret void\n}", "unknown type"},
		{"redefined local", "int %f() {\nentry:\n\t%x = add int 1, 2\n\t%x = add int 3, 4\n\tret int %x\n}", "redefinition"},
		{"redefined function", "void %f() {\nentry:\n\tret void\n}\nvoid %f() {\nentry:\n\tret void\n}", "redefinition"},
		{"unterminated", "void %f() {\nentry:\n\tret void\n", "end of input"},
		{"null for int", "%g = global int null", "non-pointer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseModule("bad", c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestParsePaperExample(t *testing.T) {
	// The C++ exception-handling example from Figure 2 of the paper
	// (types adapted to this module's declarations).
	roundTrip(t, `
%AClass = type { int }

declare void %AClass_ctor(%AClass*)
declare void %AClass_dtor(%AClass*)
declare void %func()

void %example() {
entry:
	%Obj = alloca %AClass
	call void %AClass_ctor(%AClass* %Obj)
	invoke void %func() to label %OkLabel unwind to label %ExceptionLabel
OkLabel:
	call void %AClass_dtor(%AClass* %Obj)
	ret void
ExceptionLabel:
	call void %AClass_dtor(%AClass* %Obj)
	unwind
}
`)
}

func TestParseNumericNamesAndAutoSlots(t *testing.T) {
	// Values and blocks with numeric (slot) names, as the printer emits for
	// unnamed values.
	roundTrip(t, `
int %f(int %0) {
1:
	%2 = add int %0, 1
	br label %3
3:
	ret int %2
}
`)
}

func TestParseStoreThroughGEPExample(t *testing.T) {
	// The paper's X[i].a = 1 example (§2.2) with field number 2.
	m := roundTrip(t, `
%xty = type { double, double, int }

void %setA(%xty* %X, long %i) {
entry:
	%p = getelementptr %xty* %X, long %i, ubyte 2
	store int 1, int* %p
	ret void
}
`)
	f := m.Func("setA")
	gep := f.Entry().Instrs[0].(*core.GetElementPtrInst)
	if gep.Type().String() != "int*" {
		t.Fatalf("GEP type = %s", gep.Type())
	}
}

func TestRoundTripPreservesSemanticsOfBoolOps(t *testing.T) {
	roundTrip(t, `
bool %logic(bool %a, bool %b) {
entry:
	%x = and bool %a, %b
	%y = or bool %x, %a
	%z = xor bool %y, true
	ret bool %z
}
`)
}

func TestParseRejectsInfiniteSizeType(t *testing.T) {
	_, err := ParseModule("bad", "%inf = type { int, %inf }\n")
	if err == nil || !strings.Contains(err.Error(), "contains itself") {
		t.Fatalf("self-containing struct not rejected: %v", err)
	}
}
