package asm

import (
	"testing"

	"repro/internal/core"
)

// Golden test: a module exercising every syntactic construct must print to
// exactly this text (and that text must re-parse to the same fixed point).
// Guards the printer's stability — the offline representation is a
// first-class language (§2.5), so its spelling is part of the contract.
const goldenSource = `; ModuleID = 'golden'

%pair = type { int, float }
%list = type { int, %list* }

%counter = global int 0
%table = internal constant [3 x int] [ int 1, int 2, int 3 ]
%msg = internal constant [6 x sbyte] c"hello\00"
%msgp = global sbyte* getelementptr ([6 x sbyte]* %msg, long 0, long 0)
%ext = external global double
%fp = global int (int)* %work

declare int %printf(sbyte*, ...)

internal int %work(int %x) {
entry:
	%p = alloca %pair
	%f0 = getelementptr %pair* %p, long 0, ubyte 0
	store int %x, int* %f0
	%v = load int* %f0
	%d = cast int %v to double
	%d2 = mul double %d, 2.5
	%w = cast double %d2 to int
	%c = setgt int %w, 10
	br bool %c, label %big, label %small

big:
	%n = malloc %list
	%hd = getelementptr %list* %n, long 0, ubyte 0
	store int %w, int* %hd
	free %list* %n
	ret int %w

small:
	switch int %w, label %other [
		int 0, label %zero
		int 1, label %other ]

zero:
	%z = phi int [ 5, %small ]
	ret int %z

other:
	%sh = shl int %w, 2
	ret int %sh
}

int %main() {
entry:
	%h = load int (int)** %fp
	invoke void %thrower() to label %ok unwind to label %ex

ok:
	%r = call int %h(int 7)
	%s = getelementptr [6 x sbyte]* %msg, long 0, long 0
	%0 = call int (sbyte*, ...)* %printf(sbyte* %s, int %r)
	ret int %r

ex:
	ret int -1
}

internal void %thrower() {
entry:
	unwind
}
`

func TestGoldenPrintStability(t *testing.T) {
	m, err := ParseModule("golden", goldenSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("golden module invalid: %v", err)
	}
	out := m.String()
	if out != goldenSource {
		t.Fatalf("printer output drifted from golden text:\n--- got ---\n%s\n--- want ---\n%s", out, goldenSource)
	}
}
