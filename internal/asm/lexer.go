// Package asm parses the textual LLVM 1.x assembly syntax produced by
// internal/core's printer back into an in-memory Module. Together with the
// printer and internal/bytecode it realizes the paper's first-class
// representation property (§2.5): equivalent textual, binary, and in-memory
// forms with no information loss.
package asm

import (
	"fmt"
	"strings"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF      tokKind = iota
	tokWord             // bare identifier / keyword / opcode
	tokLocal            // %name or %123
	tokInt              // integer literal
	tokFloat            // floating literal
	tokString           // c"..." constant
	tokPunct            // single punctuation: = , ( ) [ ] { } * :
	tokEllipsis         // ...
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokWord:
		return "word"
	case tokLocal:
		return "%name"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokPunct:
		return "punctuation"
	case tokEllipsis:
		return "..."
	}
	return "?"
}

type token struct {
	kind tokKind
	text string // for %name, the name without the sigil; for strings, decoded bytes
	line int
}

// lexer tokenizes assembly text.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == ';':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '%':
		lx.pos++
		for lx.pos < len(lx.src) && isNameChar(lx.src[lx.pos]) {
			lx.pos++
		}
		if lx.pos == start+1 {
			return token{}, lx.errf("empty %% name")
		}
		return token{kind: tokLocal, text: lx.src[start+1 : lx.pos], line: lx.line}, nil

	case c == 'c' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '"':
		lx.pos += 2
		return lx.scanString()

	case isDigit(c) || (c == '-' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])):
		return lx.scanNumber()

	case isNameStart(c):
		for lx.pos < len(lx.src) && isNameChar(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokWord, text: lx.src[start:lx.pos], line: lx.line}, nil

	case c == '.':
		if strings.HasPrefix(lx.src[lx.pos:], "...") {
			lx.pos += 3
			return token{kind: tokEllipsis, text: "...", line: lx.line}, nil
		}
		return token{}, lx.errf("unexpected '.'")

	case strings.IndexByte("=,()[]{}*:", c) >= 0:
		lx.pos++
		return token{kind: tokPunct, text: string(c), line: lx.line}, nil
	}
	return token{}, lx.errf("unexpected character %q", c)
}

func (lx *lexer) scanString() (token, error) {
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			lx.pos++
			return token{kind: tokString, text: b.String(), line: lx.line}, nil
		}
		if c == '\\' {
			if lx.pos+2 >= len(lx.src) {
				return token{}, lx.errf("truncated escape in string")
			}
			hi, lo := hexVal(lx.src[lx.pos+1]), hexVal(lx.src[lx.pos+2])
			if hi < 0 || lo < 0 {
				return token{}, lx.errf("bad \\%c%c escape", lx.src[lx.pos+1], lx.src[lx.pos+2])
			}
			b.WriteByte(byte(hi<<4 | lo))
			lx.pos += 3
			continue
		}
		if c == '\n' {
			return token{}, lx.errf("newline in string")
		}
		b.WriteByte(c)
		lx.pos++
	}
	return token{}, lx.errf("unterminated string")
}

func (lx *lexer) scanNumber() (token, error) {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
	}
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	isFloat := false
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' && !strings.HasPrefix(lx.src[lx.pos:], "...") {
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		isFloat = true
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: lx.src[start:lx.pos], line: lx.line}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool { return isNameStart(c) || isDigit(c) || c == '.' }

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
