package asm

import (
	"testing"

	"repro/internal/core"
)

// FuzzParseModule: arbitrary text must parse or error — never panic. When
// it parses and verifies, the printed form must re-parse to the same
// module (printer/parser agreement on everything the fuzzer can reach).
func FuzzParseModule(f *testing.F) {
	f.Add(goldenSource)
	f.Add(`
%s = type { int, %s* }
int %f(int %x) {
entry:
	%c = seteq int %x, 0
	br bool %c, label %a, label %b
a:
	ret int 1
b:
	%r = call int %f(int 0)
	ret int %r
}
`)
	f.Add("%g = global int 5\n")
	f.Add("declare void %x()\n")
	f.Add("int %m() {\nentry:\n\tret int 0\n}\n")
	f.Add("; comment only\n")
	f.Add("%b = global [4 x sbyte] c\"ab\\00\\ff\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseModule("fuzz", src)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("ParseModule returned nil module and nil error")
		}
		if core.Verify(m) != nil {
			return
		}
		text := m.String()
		m2, err := ParseModule("fuzz", text)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\n--- printed ---\n%s", err, text)
		}
		if got := m2.String(); got != text {
			t.Fatalf("print/parse round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, got)
		}
	})
}
