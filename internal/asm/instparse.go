package asm

import (
	"strconv"

	"repro/internal/core"
)

// ---------------------------------------------------------------------------
// Function bodies

func (p *parser) parseFunctionBody(f *core.Function) error {
	p.fn = f
	p.locals = map[string]core.Value{}
	p.blocks = map[string]*core.BasicBlock{}
	p.fwd = map[string]*core.Placeholder{}
	defer func() { p.fn = nil; p.locals = nil; p.blocks = nil; p.fwd = nil }()

	for _, a := range f.Args {
		if a.Name() != "" {
			p.locals[a.Name()] = a
		}
	}

	var cur *core.BasicBlock
	for !p.atPunct("}") {
		if p.tok.kind == tokEOF {
			return p.errf("unexpected end of input in function body")
		}
		// A label is a word or integer followed by ':'.
		if p.tok.kind == tokWord || p.tok.kind == tokInt {
			name := p.tok.text
			save := *p.lx
			saveTok := p.tok
			if err := p.advance(); err != nil {
				return err
			}
			if p.atPunct(":") {
				if err := p.advance(); err != nil {
					return err
				}
				cur = p.getBlock(name)
				if cur.Parent() != nil {
					return p.errf("redefinition of label %q", name)
				}
				f.AddBlock(cur)
				continue
			}
			*p.lx = save
			p.tok = saveTok
		}
		if cur == nil {
			// Entry block with an implicit label.
			cur = p.getBlock("entry")
			f.AddBlock(cur)
		}
		inst, err := p.parseInstruction()
		if err != nil {
			return err
		}
		cur.Append(inst)
	}

	// Resolve local forward references; leftovers become module-level.
	for name, ph := range p.fwd {
		if v, ok := p.locals[name]; ok {
			core.ReplaceAllUses(ph, v)
			continue
		}
		if prev, ok := p.modFwd[name]; ok {
			core.ReplaceAllUses(ph, prev)
		} else {
			p.modFwd[name] = ph
		}
	}
	return nil
}

// getBlock returns the block with the given label, creating it if needed.
func (p *parser) getBlock(name string) *core.BasicBlock {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := core.NewBlock(name)
	p.blocks[name] = b
	return b
}

// defineLocal registers a result value under its name.
func (p *parser) defineLocal(name string, v core.Value) error {
	if name == "" {
		return nil
	}
	if _, dup := p.locals[name]; dup {
		return p.errf("redefinition of %%%s", name)
	}
	v.SetName(name)
	p.locals[name] = v
	return nil
}

// localRef resolves a %name reference of the expected type: argument,
// earlier instruction, global, or a forward-ref placeholder.
func (p *parser) localRef(name string, t core.Type) core.Value {
	if v, ok := p.locals[name]; ok {
		return v
	}
	if f := p.m.Func(name); f != nil {
		return f
	}
	if g := p.m.Global(name); g != nil {
		return g
	}
	if ph, ok := p.fwd[name]; ok {
		return ph
	}
	ph := core.NewPlaceholder(name, t)
	p.fwd[name] = ph
	return ph
}

// ---------------------------------------------------------------------------
// Instructions

func (p *parser) parseInstruction() (core.Instruction, error) {
	result := ""
	if p.tok.kind == tokLocal {
		result = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokWord {
		return nil, p.errf("expected instruction opcode, got %q", p.tok.text)
	}
	opName := p.tok.text
	op, ok := core.OpcodeByName(opName)
	if !ok {
		return nil, p.errf("unknown opcode %q", opName)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}

	var inst core.Instruction
	var err error
	switch {
	case op == core.OpRet:
		inst, err = p.parseRet()
	case op == core.OpBr:
		inst, err = p.parseBr()
	case op == core.OpSwitch:
		inst, err = p.parseSwitch()
	case op == core.OpInvoke:
		inst, err = p.parseCallLike(true)
	case op == core.OpUnwind:
		inst = core.NewUnwind()
	case core.IsBinaryOp(op) || core.IsComparisonOp(op):
		inst, err = p.parseBinary(op)
	case op == core.OpMalloc || op == core.OpAlloca:
		inst, err = p.parseAlloc(op)
	case op == core.OpFree:
		var ptr core.Value
		ptr, err = p.parseTypedOperand()
		if err == nil {
			inst = core.NewFree(ptr)
		}
	case op == core.OpLoad:
		var ptr core.Value
		ptr, err = p.parseTypedOperand()
		if err == nil {
			if ptr.Type().Kind() != core.PointerKind {
				return nil, p.errf("load operand is not a pointer")
			}
			inst = core.NewLoad(ptr)
		}
	case op == core.OpStore:
		inst, err = p.parseStore()
	case op == core.OpGetElementPtr:
		inst, err = p.parseGEP()
	case op == core.OpPhi:
		inst, err = p.parsePhi()
	case op == core.OpCast:
		inst, err = p.parseCast()
	case op == core.OpCall:
		inst, err = p.parseCallLike(false)
	case op == core.OpVAArg:
		inst, err = p.parseVAArg()
	default:
		return nil, p.errf("unhandled opcode %q", opName)
	}
	if err != nil {
		return nil, err
	}
	if err := p.defineLocal(result, inst); err != nil {
		return nil, err
	}
	return inst, nil
}

func (p *parser) parseRet() (core.Instruction, error) {
	if ok, err := p.eatWord("void"); err != nil {
		return nil, err
	} else if ok {
		return core.NewRet(nil), nil
	}
	v, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	return core.NewRet(v), nil
}

// parseLabelRef parses "label %name".
func (p *parser) parseLabelRef() (*core.BasicBlock, error) {
	if !p.atWord("label") {
		return nil, p.errf("expected 'label', got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokLocal {
		return nil, p.errf("expected label name")
	}
	b := p.getBlock(p.tok.text)
	return b, p.advance()
}

func (p *parser) parseBr() (core.Instruction, error) {
	if p.atWord("label") {
		dest, err := p.parseLabelRef()
		if err != nil {
			return nil, err
		}
		return core.NewBr(dest), nil
	}
	cond, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	t, err := p.parseLabelRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	f, err := p.parseLabelRef()
	if err != nil {
		return nil, err
	}
	return core.NewCondBr(cond, t, f), nil
}

func (p *parser) parseSwitch() (core.Instruction, error) {
	v, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	def, err := p.parseLabelRef()
	if err != nil {
		return nil, err
	}
	sw := core.NewSwitch(v, def)
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	for !p.atPunct("]") {
		cv, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		ci, ok := cv.(*core.ConstantInt)
		if !ok {
			return nil, p.errf("switch case value must be an integer constant")
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		dest, err := p.parseLabelRef()
		if err != nil {
			return nil, err
		}
		sw.AddCase(ci, dest)
	}
	return sw, p.expectPunct("]")
}

func (p *parser) parseBinary(op core.Opcode) (core.Instruction, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	lhs, err := p.parseOperand(t)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	rt := t
	if op == core.OpShl || op == core.OpShr {
		rt = core.UByteType
	}
	// Shift amounts print with an explicit "ubyte" type; plain binary ops
	// reuse the LHS type for the RHS. Accept both forms.
	if (op == core.OpShl || op == core.OpShr) && p.looksLikeType() {
		rt, err = p.parseType()
		if err != nil {
			return nil, err
		}
	}
	rhs, err := p.parseOperand(rt)
	if err != nil {
		return nil, err
	}
	return core.NewBinary(op, lhs, rhs), nil
}

func (p *parser) parseAlloc(op core.Opcode) (core.Instruction, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	var n core.Value
	if p.atPunct(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err = p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
	}
	if op == core.OpMalloc {
		return core.NewMalloc(t, n), nil
	}
	return core.NewAlloca(t, n), nil
}

func (p *parser) parseStore() (core.Instruction, error) {
	v, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	ptr, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	return core.NewStore(v, ptr), nil
}

func (p *parser) parseGEP() (core.Instruction, error) {
	base, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	var indices []core.Value
	for p.atPunct(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		idx, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		indices = append(indices, idx)
	}
	if _, err := core.GEPResultType(base.Type(), indices); err != nil {
		return nil, p.errf("%v", err)
	}
	return core.NewGEP(base, indices...), nil
}

func (p *parser) parsePhi() (core.Instruction, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	phi := core.NewPhi(t)
	for {
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		v, err := p.parseOperand(t)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLocal {
			return nil, p.errf("expected block name in phi")
		}
		blk := p.getBlock(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		phi.AddIncoming(v, blk)
		if !p.atPunct(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return phi, nil
}

func (p *parser) parseCast() (core.Instruction, error) {
	v, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	if !p.atWord("to") {
		return nil, p.errf("expected 'to' in cast")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return core.NewCast(v, t), nil
}

// parseCallLike parses call and invoke instructions.
func (p *parser) parseCallLike(isInvoke bool) (core.Instruction, error) {
	declared, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokLocal {
		return nil, p.errf("expected callee name")
	}
	calleeName := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []core.Value
	for !p.atPunct(")") {
		if len(args) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}

	// Reconstruct the callee's function-pointer type: either it was spelled
	// in full ("int (sbyte*, ...)*"), or only the return type was given.
	var calleeType core.Type
	if pt, ok := declared.(*core.PointerType); ok {
		if _, isFn := pt.Elem.(*core.FunctionType); isFn {
			calleeType = pt
		}
	}
	if calleeType == nil {
		params := make([]core.Type, len(args))
		for i, a := range args {
			params[i] = a.Type()
		}
		calleeType = core.NewPointer(&core.FunctionType{Ret: declared, Params: params})
	}
	callee := p.localRef(calleeName, calleeType)
	if core.CalleeFunctionType(callee) == nil {
		return nil, p.errf("callee %%%s is not a function pointer", calleeName)
	}

	if !isInvoke {
		return core.NewCall(callee, args...), nil
	}
	if !p.atWord("to") {
		return nil, p.errf("expected 'to' in invoke")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	normal, err := p.parseLabelRef()
	if err != nil {
		return nil, err
	}
	if !p.atWord("unwind") {
		return nil, p.errf("expected 'unwind' in invoke")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.atWord("to") {
		return nil, p.errf("expected 'to' after 'unwind'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	uw, err := p.parseLabelRef()
	if err != nil {
		return nil, err
	}
	return core.NewInvoke(callee, args, normal, uw), nil
}

func (p *parser) parseVAArg() (core.Instruction, error) {
	list, err := p.parseTypedOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return core.NewVAArg(list, t), nil
}

// ---------------------------------------------------------------------------
// Operands

// parseTypedOperand parses "type value".
func (p *parser) parseTypedOperand() (core.Value, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return p.parseOperand(t)
}

// parseOperand parses a value of the given (already-parsed) type.
func (p *parser) parseOperand(t core.Type) (core.Value, error) {
	switch p.tok.kind {
	case tokLocal:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.localRef(name, t), nil
	default:
		return p.parseConstantOperand(t)
	}
}

// parseConstantOperand parses a constant of the given type (integer, float,
// bool, null, undef, zeroinitializer, string, aggregate literal, or
// constant expression). Outside functions (global initializers) %name
// references resolve to globals/functions, with placeholders for forward
// references.
func (p *parser) parseConstantOperand(t core.Type) (core.Constant, error) {
	switch {
	case p.tok.kind == tokInt:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if core.IsFloatingPoint(t) {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errf("bad float %q", text)
			}
			return core.NewFloat(t, f), nil
		}
		if !core.IsInteger(t) {
			return nil, p.errf("integer literal for non-integer type %s", t)
		}
		if core.IsUnsigned(t) {
			u, err := strconv.ParseUint(text, 10, 64)
			if err != nil {
				return nil, p.errf("bad integer %q", text)
			}
			return core.NewInt(t, int64(u)), nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", text)
		}
		return core.NewInt(t, v), nil

	case p.tok.kind == tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !core.IsFloatingPoint(t) {
			return nil, p.errf("float literal for non-float type %s", t)
		}
		return core.NewFloat(t, f), nil

	case p.atWord("true") || p.atWord("false"):
		v := p.tok.text == "true"
		if err := p.advance(); err != nil {
			return nil, err
		}
		return core.NewBool(v), nil

	case p.atWord("null"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		pt, ok := t.(*core.PointerType)
		if !ok {
			return nil, p.errf("null literal for non-pointer type %s", t)
		}
		return core.NewNull(pt), nil

	case p.atWord("undef"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return core.NewUndef(t), nil

	case p.atWord("zeroinitializer"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return core.NewZero(t), nil

	case p.tok.kind == tokString:
		data := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		elems := make([]core.Constant, len(data))
		for i := 0; i < len(data); i++ {
			elems[i] = core.NewInt(core.SByteType, int64(data[i]))
		}
		return core.NewArrayConst(core.SByteType, elems), nil

	case p.atPunct("["):
		at, ok := t.(*core.ArrayType)
		if !ok {
			return nil, p.errf("array literal for non-array type %s", t)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []core.Constant
		for !p.atPunct("]") {
			if len(elems) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			e, err := p.parseTypedConstant()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if len(elems) != at.Len {
			return nil, p.errf("array literal has %d elements, type wants %d", len(elems), at.Len)
		}
		return core.NewArrayConst(at.Elem, elems), nil

	case p.atPunct("{"):
		st, ok := t.(*core.StructType)
		if !ok {
			return nil, p.errf("struct literal for non-struct type %s", t)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var fields []core.Constant
		for !p.atPunct("}") {
			if len(fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			f, err := p.parseTypedConstant()
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return core.NewStructConst(st, fields), nil

	case p.atWord("cast"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		v, err := p.parseTypedConstant()
		if err != nil {
			return nil, err
		}
		if !p.atWord("to") {
			return nil, p.errf("expected 'to' in constant cast")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		dt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return core.NewConstCast(v, dt), nil

	case p.atWord("getelementptr"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		base, err := p.parseTypedConstant()
		if err != nil {
			return nil, err
		}
		var idx []core.Constant
		for p.atPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			i, err := p.parseTypedConstant()
			if err != nil {
				return nil, err
			}
			idx = append(idx, i)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ivals := make([]core.Value, len(idx))
		for i, x := range idx {
			ivals[i] = x
		}
		if _, err := core.GEPResultType(base.Type(), ivals); err != nil {
			return nil, p.errf("%v", err)
		}
		return core.NewConstGEP(base, idx...), nil

	case p.tok.kind == tokLocal:
		// Global symbol reference inside a constant.
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if f := p.m.Func(name); f != nil {
			return f, nil
		}
		if g := p.m.Global(name); g != nil {
			return g, nil
		}
		if ph, ok := p.modFwd[name]; ok {
			return ph, nil
		}
		ph := core.NewPlaceholder(name, t)
		p.modFwd[name] = ph
		return ph, nil
	}
	return nil, p.errf("expected constant, got %q", p.tok.text)
}

// parseTypedConstant parses "type constant".
func (p *parser) parseTypedConstant() (core.Constant, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return p.parseConstantOperand(t)
}

// ---------------------------------------------------------------------------
// Forward-reference resolution

func (p *parser) resolveModuleForwardRefs() error {
	for name, ph := range p.modFwd {
		var target core.Value
		if f := p.m.Func(name); f != nil {
			target = f
		} else if g := p.m.Global(name); g != nil {
			target = g
		} else {
			return p.errf("undefined symbol %%%s", name)
		}
		core.ReplaceAllUses(ph, target)
	}
	// Fix placeholders buried inside aggregate initializers, which do not
	// participate in use lists.
	for _, g := range p.m.Globals {
		if g.Init != nil {
			fixed, err := p.fixConstant(g.Init)
			if err != nil {
				return err
			}
			g.Init = fixed
		}
	}
	return nil
}

func (p *parser) fixConstant(c core.Constant) (core.Constant, error) {
	switch cc := c.(type) {
	case *core.Placeholder:
		if f := p.m.Func(cc.Name()); f != nil {
			return f, nil
		}
		if g := p.m.Global(cc.Name()); g != nil {
			return g, nil
		}
		return nil, p.errf("undefined symbol %%%s in initializer", cc.Name())
	case *core.ConstantArray:
		for i, e := range cc.Elems {
			fe, err := p.fixConstant(e)
			if err != nil {
				return nil, err
			}
			cc.Elems[i] = fe
		}
	case *core.ConstantStruct:
		for i, f := range cc.Fields {
			ff, err := p.fixConstant(f)
			if err != nil {
				return nil, err
			}
			cc.Fields[i] = ff
		}
	}
	return c, nil
}

// Functions and GlobalVariables used as Constants in initializers: they
// already implement Value; they are also valid initializer references. The
// core package treats them as constants for this purpose via these shims.
var (
	_ core.Value = (*core.Function)(nil)
	_ core.Value = (*core.GlobalVariable)(nil)
)
