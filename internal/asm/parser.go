package asm

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// ParseModule parses assembly text into a Module. The module is not
// verified; run core.Verify if the input is untrusted. Malformed input is
// always reported as an error carrying the offending line — even when it
// trips an internal panic in an IR constructor, it never escapes as a Go
// panic.
func ParseModule(name, src string) (m *core.Module, err error) {
	p := &parser{lx: newLexer(src), m: core.NewModule(name)}
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("line %d: invalid input: %v", p.tok.line, r)
		}
	}()
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	return p.m, nil
}

type parser struct {
	lx  *lexer
	tok token
	m   *core.Module

	// Per-function state.
	fn     *core.Function
	locals map[string]core.Value
	blocks map[string]*core.BasicBlock
	fwd    map[string]*core.Placeholder // unresolved local value refs

	// Module-level forward references (globals/functions used before
	// their definition), resolved at end of parse.
	modFwd map[string]*core.Placeholder
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atPunct(s string) bool { return p.tok.kind == tokPunct && p.tok.text == s }

func (p *parser) atWord(s string) bool { return p.tok.kind == tokWord && p.tok.text == s }

func (p *parser) eatWord(s string) (bool, error) {
	if p.atWord(s) {
		return true, p.advance()
	}
	return false, nil
}

// ---------------------------------------------------------------------------
// Module structure

func (p *parser) parseModule() error {
	p.modFwd = map[string]*core.Placeholder{}
	for p.tok.kind != tokEOF {
		if err := p.parseTopLevel(); err != nil {
			return err
		}
	}
	return p.resolveModuleForwardRefs()
}

func (p *parser) parseTopLevel() error {
	switch {
	case p.tok.kind == tokLocal:
		// "%name = type ..." or "%name = [internal|external] global/constant ..."
		// unless it is a named return type of a function definition.
		name := p.tok.text
		save := *p.lx
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return err
		}
		if p.atPunct("=") {
			if err := p.advance(); err != nil {
				return err
			}
			return p.parseNamedEntity(name)
		}
		// Rewind: it was a type beginning a function definition.
		*p.lx = save
		p.tok = saveTok
		return p.parseFunctionDef(core.ExternalLinkage)

	case p.atWord("declare"):
		if err := p.advance(); err != nil {
			return err
		}
		return p.parseFunctionDecl()

	case p.atWord("internal"):
		if err := p.advance(); err != nil {
			return err
		}
		return p.parseFunctionDef(core.InternalLinkage)

	case p.atWord("target"):
		// "target ..." lines are accepted and ignored.
		line := p.tok.line
		for p.tok.kind != tokEOF && p.tok.line == line {
			if err := p.advance(); err != nil {
				return err
			}
		}
		return nil

	default:
		return p.parseFunctionDef(core.ExternalLinkage)
	}
}

// parseNamedEntity handles everything after "%name = ".
func (p *parser) parseNamedEntity(name string) error {
	if ok, err := p.eatWord("type"); err != nil {
		return err
	} else if ok {
		return p.parseTypeDecl(name)
	}

	linkage := core.ExternalLinkage
	isDecl := false
	if ok, err := p.eatWord("internal"); err != nil {
		return err
	} else if ok {
		linkage = core.InternalLinkage
	}
	if ok, err := p.eatWord("external"); err != nil {
		return err
	} else if ok {
		isDecl = true
	}

	isConst := false
	switch {
	case p.atWord("global"):
	case p.atWord("constant"):
		isConst = true
	default:
		return p.errf("expected 'global' or 'constant' after %%%s =", name)
	}
	if err := p.advance(); err != nil {
		return err
	}
	vt, err := p.parseType()
	if err != nil {
		return err
	}
	var init core.Constant
	if !isDecl {
		init, err = p.parseConstantOperand(vt)
		if err != nil {
			return err
		}
	}
	g := core.NewGlobal(name, vt, init)
	g.IsConst = isConst
	g.Linkage = linkage
	if old := p.m.Global(name); old != nil {
		return p.errf("redefinition of global %%%s", name)
	}
	p.m.AddGlobal(g)
	return nil
}

func (p *parser) parseTypeDecl(name string) error {
	if ok, err := p.eatWord("opaque"); err != nil {
		return err
	} else if ok {
		if _, exists := p.m.NamedType(name); !exists {
			p.m.AddTypeName(name, &core.OpaqueType{Name: name})
		}
		return nil
	}
	body, err := p.parseType()
	if err != nil {
		return err
	}
	defer p.m.MoveTypeNameToEnd(name)
	if err := core.ValidateTypeGraph(body); err != nil {
		return p.errf("%v", err)
	}
	existing, had := p.m.NamedType(name)
	if !had {
		p.m.AddTypeName(name, body)
		return nil
	}
	// A forward-declared struct placeholder: patch its fields in place so
	// recursive types knot correctly.
	ph, okP := existing.(*core.StructType)
	bs, okB := body.(*core.StructType)
	if okP && ph.Fields == nil && okB {
		ph.Fields = bs.Fields
		if err := core.ValidateTypeGraph(ph); err != nil {
			return p.errf("%v", err)
		}
		return nil
	}
	if existing == body {
		return nil
	}
	return p.errf("redefinition of type %%%s", name)
}

func (p *parser) parseFunctionDecl() error {
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if p.tok.kind != tokLocal {
		return p.errf("expected function name after declare")
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	sig, _, err := p.parseParamList(ret, false)
	if err != nil {
		return err
	}
	if p.m.Func(name) == nil {
		p.m.AddFunc(core.NewFunction(name, sig))
	}
	return nil
}

func (p *parser) parseFunctionDef(linkage core.Linkage) error {
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if p.tok.kind != tokLocal {
		return p.errf("expected function name in definition")
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	sig, argNames, err := p.parseParamList(ret, true)
	if err != nil {
		return err
	}
	f := p.m.Func(name)
	if f != nil {
		if !f.IsDeclaration() {
			return p.errf("redefinition of function %%%s", name)
		}
		if !core.TypesEqual(f.Sig, sig) {
			return p.errf("definition of %%%s does not match earlier declaration", name)
		}
	} else {
		f = core.NewFunction(name, sig)
		p.m.AddFunc(f)
	}
	f.Linkage = linkage
	for i, an := range argNames {
		f.Args[i].SetName(an)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if err := p.parseFunctionBody(f); err != nil {
		return err
	}
	return p.expectPunct("}")
}

// parseParamList parses "(type [%name], ..., [...])"; named controls
// whether argument names are expected/allowed.
func (p *parser) parseParamList(ret core.Type, named bool) (*core.FunctionType, []string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	sig := &core.FunctionType{Ret: ret}
	var names []string
	for !p.atPunct(")") {
		if len(sig.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, nil, err
			}
		}
		if p.tok.kind == tokEllipsis {
			sig.Variadic = true
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			break
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, nil, err
		}
		sig.Params = append(sig.Params, pt)
		name := ""
		if named && p.tok.kind == tokLocal {
			name = p.tok.text
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		}
		names = append(names, name)
	}
	return sig, names, p.expectPunct(")")
}

// ---------------------------------------------------------------------------
// Types

// parseType parses a full type: base type plus pointer/function suffixes.
func (p *parser) parseType() (core.Type, error) {
	t, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("*"):
			t = core.NewPointer(t)
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.atPunct("("):
			if err := p.advance(); err != nil {
				return nil, err
			}
			ft := &core.FunctionType{Ret: t}
			for !p.atPunct(")") {
				if len(ft.Params) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				if p.tok.kind == tokEllipsis {
					ft.Variadic = true
					if err := p.advance(); err != nil {
						return nil, err
					}
					break
				}
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				ft.Params = append(ft.Params, pt)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			t = ft
		default:
			return t, nil
		}
	}
}

var primTypes = map[string]core.Type{
	"void": core.VoidType, "bool": core.BoolType,
	"sbyte": core.SByteType, "ubyte": core.UByteType,
	"short": core.ShortType, "ushort": core.UShortType,
	"int": core.IntType, "uint": core.UIntType,
	"long": core.LongType, "ulong": core.ULongType,
	"float": core.FloatType, "double": core.DoubleType,
	"label": core.LabelType,
}

func (p *parser) parseBaseType() (core.Type, error) {
	switch {
	case p.tok.kind == tokWord:
		if t, ok := primTypes[p.tok.text]; ok {
			return t, p.advance()
		}
		if p.tok.text == "opaque" {
			return &core.OpaqueType{}, p.advance()
		}
		return nil, p.errf("unknown type %q", p.tok.text)

	case p.tok.kind == tokLocal:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if t, ok := p.m.NamedType(name); ok {
			return t, nil
		}
		// Forward type reference: assume a struct and patch later.
		ph := &core.StructType{Name: name}
		p.m.AddTypeName(name, ph)
		return ph, nil

	case p.atPunct("["):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokInt {
			return nil, p.errf("expected array length")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad array length %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.atWord("x") {
			return nil, p.errf("expected 'x' in array type")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return core.NewArray(elem, n), nil

	case p.atPunct("{"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		st := &core.StructType{Fields: []core.Type{}}
		for !p.atPunct("}") {
			if len(st.Fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, ft)
		}
		return st, p.expectPunct("}")
	}
	return nil, p.errf("expected type, got %q", p.tok.text)
}

// looksLikeType reports whether the current token can begin a type.
func (p *parser) looksLikeType() bool {
	switch {
	case p.tok.kind == tokWord:
		_, ok := primTypes[p.tok.text]
		return ok || p.tok.text == "opaque"
	case p.tok.kind == tokLocal:
		_, ok := p.m.NamedType(p.tok.text)
		return ok
	case p.atPunct("[") || p.atPunct("{"):
		return true
	}
	return false
}
