package dsa

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

// Interprocedural flows the static checker's points-to refinement depends
// on: allocation provenance must survive (1) being returned from a callee,
// (2) a round-trip through a struct field, and (3) escaping into a global
// via a call argument. The checker classifies free targets by the Heap /
// Stack flags these tests pin down.

func analyzeMod(t *testing.T, src string) (*core.Module, *Result) {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m, Analyze(m)
}

// nodeForNamed finds the node of the instruction named name in f.
func nodeForNamed(t *testing.T, r *Result, f *core.Function, name string) *Node {
	t.Helper()
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if inst.Name() == name {
				if n := r.NodeFor(inst); n != nil {
					return n
				}
				t.Fatalf("no node for %%%s", name)
			}
		}
	}
	t.Fatalf("no instruction named %%%s", name)
	return nil
}

func TestCalleeReturnedPointerKeepsHeapFlag(t *testing.T) {
	m, r := analyzeMod(t, `
internal int* %mk() {
entry:
	%p = malloc int
	store int 1, int* %p
	ret int* %p
}

int %main() {
entry:
	%q = call int* %mk()
	%v = load int* %q
	free int* %q
	ret int %v
}
`)
	got := nodeForNamed(t, r, m.Func("main"), "q")
	if !got.Heap {
		t.Fatal("pointer returned from callee lost its Heap provenance")
	}
	if got.Stack || got.Unknown {
		t.Fatalf("returned heap pointer got spurious flags: %+v", got)
	}
}

func TestPointerThroughStructFieldKeepsStackFlag(t *testing.T) {
	m, r := analyzeMod(t, `
%box = type { int*, int }

int %main() {
entry:
	%b = alloca %box
	%a = alloca int
	store int 5, int* %a
	%f0 = getelementptr %box* %b, long 0, ubyte 0
	store int* %a, int** %f0
	%p = load int** %f0
	%v = load int* %p
	ret int %v
}
`)
	got := nodeForNamed(t, r, m.Func("main"), "p")
	if !got.Stack {
		t.Fatal("alloca address lost Stack provenance through a struct field")
	}
	if got.Heap {
		t.Fatal("stack-only pointer gained a spurious Heap flag")
	}
}

func TestPointerEscapingViaCallArgUnifiesWithGlobal(t *testing.T) {
	m, r := analyzeMod(t, `
%sink = global int* null

internal void %retain(int* %p) {
entry:
	store int* %p, int** %sink
	ret void
}

int %main() {
entry:
	%h = malloc int
	store int 3, int* %h
	call void %retain(int* %h)
	%p2 = load int** %sink
	%v = load int* %p2
	ret int %v
}
`)
	main := m.Func("main")
	nh := nodeForNamed(t, r, main, "h")
	np2 := nodeForNamed(t, r, main, "p2")
	if nh != np2 {
		t.Fatal("pointer escaping via call argument did not unify with the global's pointee")
	}
	if !np2.Heap {
		t.Fatal("escaped heap pointer lost its Heap flag")
	}
}
