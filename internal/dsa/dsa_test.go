package dsa

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return Analyze(m)
}

func TestDisciplinedCodeFullyTyped(t *testing.T) {
	// Clean, type-safe code: every access should be provably typed, as
	// the paper reports for Olden/Ptrdist-style programs (~100%).
	r := analyze(t, `
%node = type { int, %node* }

internal int %sumList(%node* %l0) {
entry:
	%l = alloca %node*
	store %node* %l0, %node** %l
	br label %loop
loop:
	%cur = load %node** %l
	%isnull = seteq %node* %cur, null
	br bool %isnull, label %done, label %body
body:
	%vp = getelementptr %node* %cur, long 0, ubyte 0
	%v = load int* %vp
	%np = getelementptr %node* %cur, long 0, ubyte 1
	%n = load %node** %np
	store %node* %n, %node** %l
	br label %loop
done:
	ret int 0
}

int %main() {
entry:
	%n1 = malloc %node
	%vp = getelementptr %node* %n1, long 0, ubyte 0
	store int 1, int* %vp
	%np = getelementptr %node* %n1, long 0, ubyte 1
	store %node* null, %node** %np
	%s = call int %sumList(%node* %n1)
	ret int %s
}
`)
	if r.Untyped() != 0 {
		t.Fatalf("disciplined code has %d untyped accesses (typed=%d)", r.Untyped(), r.Typed())
	}
	if r.TypedPercent() != 100.0 {
		t.Fatalf("percent = %f", r.TypedPercent())
	}
}

func TestCustomAllocatorLosesTypes(t *testing.T) {
	// A pool allocator handing out sbyte* chunks that get cast to
	// different struct types: the paper names custom allocators as the
	// leading cause of lost type information (197.parser, 254.gap,
	// 255.vortex).
	r := analyze(t, `
%objA = type { int, int }
%objB = type { double }

%pool = global sbyte* null

internal sbyte* %pool_alloc(uint %n) {
entry:
	%raw = malloc sbyte, uint %n
	ret sbyte* %raw
}

int %main() {
entry:
	%ra = call sbyte* %pool_alloc(uint 8)
	%a = cast sbyte* %ra to %objA*
	%af = getelementptr %objA* %a, long 0, ubyte 0
	store int 1, int* %af

	%rb = call sbyte* %pool_alloc(uint 8)
	%b = cast sbyte* %rb to %objB*
	%bf = getelementptr %objB* %b, long 0, ubyte 0
	store double 2.0, double* %bf
	ret int 0
}
`)
	// Both stores go through the same pool_alloc return node, which sees
	// two incompatible types; both accesses become untyped.
	if r.Untyped() == 0 {
		t.Fatalf("custom allocator punning not detected (typed=%d untyped=%d)", r.Typed(), r.Untyped())
	}
}

func TestVoidStarRoundTripKeepsTypes(t *testing.T) {
	// T* -> sbyte* -> T* with a consistent T stays typed (DSA "can often
	// extract type information for objects stored into and loaded out of
	// generic void* data structures", footnote 8).
	r := analyze(t, `
%obj = type { int, int }

int %main() {
entry:
	%o = malloc %obj
	%v = cast %obj* %o to sbyte*
	%back = cast sbyte* %v to %obj*
	%f = getelementptr %obj* %back, long 0, ubyte 0
	store int 5, int* %f
	%r = load int* %f
	ret int %r
}
`)
	if r.Untyped() != 0 {
		t.Fatalf("consistent void* round trip lost types: untyped=%d", r.Untyped())
	}
}

func TestIncompatibleStructCastCollapses(t *testing.T) {
	// "Using different structure types for the same objects" (176.gcc,
	// 253.perlbmk, 254.gap per the paper).
	r := analyze(t, `
%A = type { int, int }
%B = type { double, double }

int %main() {
entry:
	%a = malloc %A
	%b = cast %A* %a to %B*
	%bf = getelementptr %B* %b, long 0, ubyte 0
	store double 1.0, double* %bf
	%af = getelementptr %A* %a, long 0, ubyte 0
	%v = load int* %af
	ret int %v
}
`)
	if r.Typed() != 0 {
		t.Fatalf("incompatible cast not collapsed: typed=%d", r.Typed())
	}
}

func TestPhysicalSubtypingAllowed(t *testing.T) {
	// Casting derived* to base* (leading prefix) is physical subtyping:
	// C++ base-class layout per §4.1.2; it must not collapse the node.
	r := analyze(t, `
%base = type { int }
%derived = type { %base, double }

int %main() {
entry:
	%d = malloc %derived
	%b = cast %derived* %d to %base*
	%f = getelementptr %base* %b, long 0, ubyte 0
	store int 3, int* %f
	%v = load int* %f
	ret int %v
}
`)
	if r.Untyped() != 0 {
		t.Fatalf("prefix cast collapsed node: untyped=%d", r.Untyped())
	}
}

func TestIntToPointerUntyped(t *testing.T) {
	r := analyze(t, `
int %main(long %addr) {
entry:
	%p = cast long %addr to int*
	%v = load int* %p
	ret int %v
}
`)
	if r.Typed() != 0 {
		t.Fatalf("int-to-pointer access counted as typed")
	}
}

func TestExternalCallCollapsesArgument(t *testing.T) {
	r := analyze(t, `
declare void %mystery(int*)

int %main() {
entry:
	%p = malloc int
	store int 1, int* %p
	call void %mystery(int* %p)
	%v = load int* %p
	ret int %v
}
`)
	// Both the store before and the load after are to an object that
	// escaped to unknown code; flow-insensitive DSA marks all of them.
	if r.Typed() != 0 {
		t.Fatalf("escaped object still typed: typed=%d untyped=%d", r.Typed(), r.Untyped())
	}
}

func TestInterproceduralUnification(t *testing.T) {
	// A helper stores through a pointer parameter; the caller passes two
	// distinct same-typed objects: everything stays typed.
	r := analyze(t, `
internal void %set(int* %p, int %v) {
entry:
	store int %v, int* %p
	ret void
}

int %main() {
entry:
	%a = malloc int
	%b = malloc int
	call void %set(int* %a, int 1)
	call void %set(int* %b, int 2)
	%va = load int* %a
	%vb = load int* %b
	%s = add int %va, %vb
	ret int %s
}
`)
	if r.Untyped() != 0 {
		t.Fatalf("interprocedural same-type flow lost types: untyped=%d", r.Untyped())
	}
}

func TestInterproceduralConflictCollapses(t *testing.T) {
	// The same helper receives sbyte* pointers to objects of two
	// different types: unification discovers the conflict.
	r := analyze(t, `
%A = type { int }
%B = type { double }

internal void %touch(sbyte* %p) {
entry:
	%q = cast sbyte* %p to int*
	%v = load int* %q
	ret void
}

int %main() {
entry:
	%a = malloc %A
	%ap = cast %A* %a to sbyte*
	%b = malloc %B
	%bp = cast %B* %b to sbyte*
	call void %touch(sbyte* %ap)
	call void %touch(sbyte* %bp)
	ret int 0
}
`)
	if r.Untyped() == 0 {
		t.Fatalf("conflicting interprocedural flow not detected")
	}
}

func TestStoredPointerGraph(t *testing.T) {
	// Pointers stored into a struct field and loaded back keep their
	// pointee's type (the points-to edge survives the memory round trip).
	r := analyze(t, `
%holder = type { int*, int }

int %main() {
entry:
	%h = malloc %holder
	%obj = malloc int
	store int 42, int* %obj
	%slot = getelementptr %holder* %h, long 0, ubyte 0
	store int* %obj, int** %slot
	%p = load int** %slot
	%v = load int* %p
	ret int %v
}
`)
	if r.Untyped() != 0 {
		t.Fatalf("pointer round trip through memory lost types: untyped=%d", r.Untyped())
	}
}

func TestNodeForExposesObjects(t *testing.T) {
	m, err := asm.ParseModule("t", `
int %main() {
entry:
	%p = malloc int
	%q = getelementptr int* %p, long 0
	%v = load int* %q
	ret int %v
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(m)
	f := m.Func("main")
	malloc := f.Entry().Instrs[0]
	gep := f.Entry().Instrs[1]
	n1, n2 := r.NodeFor(malloc), r.NodeFor(gep)
	if n1 == nil || n1 != n2 {
		t.Fatal("GEP does not alias its base object")
	}
	if !n1.Heap || n1.Collapsed {
		t.Fatal("heap object flags wrong")
	}
	if n1.Ty != core.Type(core.IntType) {
		t.Fatalf("object type = %v", n1.Ty)
	}
}

func TestAddressTakenFunctionArgsUnknown(t *testing.T) {
	r := analyze(t, `
%fp = global void (int*)* %cb

internal void %cb(int* %p) {
entry:
	%v = load int* %p
	ret void
}
`)
	// cb is address-taken; its argument may come from anywhere.
	if r.Typed() != 0 {
		t.Fatalf("address-taken callee's arg counted typed")
	}
}

func TestMixedProgramPartialTyping(t *testing.T) {
	// A program mixing clean and dirty accesses lands strictly between
	// 0% and 100% — the shape of most SPEC rows in Table 1.
	r := analyze(t, `
%clean = type { int, int }

int %main(long %bits) {
entry:
	%c = malloc %clean
	%f0 = getelementptr %clean* %c, long 0, ubyte 0
	store int 1, int* %f0
	%f1 = getelementptr %clean* %c, long 0, ubyte 1
	store int 2, int* %f1
	%v0 = load int* %f0
	%v1 = load int* %f1

	%dirty = cast long %bits to int*
	%dv = load int* %dirty
	store int %dv, int* %dirty

	%s1 = add int %v0, %v1
	%s2 = add int %s1, %dv
	ret int %s2
}
`)
	pct := r.TypedPercent()
	if pct <= 0 || pct >= 100 {
		t.Fatalf("mixed program percent = %f (typed=%d untyped=%d)", pct, r.Typed(), r.Untyped())
	}
	if r.Typed() != 4 || r.Untyped() != 2 {
		t.Fatalf("typed=%d untyped=%d, want 4/2", r.Typed(), r.Untyped())
	}
}
