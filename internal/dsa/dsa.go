// Package dsa implements the core of Data Structure Analysis used by the
// paper's Table 1: a flow-insensitive, unification-based, field-aware
// points-to analysis that uses declared types as *speculative* information
// and conservatively verifies that every access to an object is consistent
// with them (§4.1.1). It does no type inference and enforces nothing; it
// simply classifies each static load and store as "typed" (the pointed-to
// object's type is reliably known) or "untyped" (type information was lost
// to incompatible casts, unknown callees, or int-to-pointer arithmetic).
//
// The implementation processes functions bottom-up over the call graph and
// unifies abstract memory objects: one node per allocation site (malloc,
// alloca, global), plus nodes for unknown memory reached through external
// code. Casting between incompatible pointer types, passing a pointer to
// an external function, or materializing a pointer from an integer
// collapses the node, discarding its type.
package dsa

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// Node is an abstract memory object (equivalence class of a union-find).
type Node struct {
	parent *Node
	// Ty is the believed object type (nil while unknown).
	Ty core.Type
	// Collapsed means incompatible uses reached the object: its type
	// information is unreliable.
	Collapsed bool
	// Unknown marks memory of unknown provenance (external, int casts).
	// An Unknown class may overlap any object, so alias queries against
	// it always answer May.
	Unknown bool
	// Escaped marks objects whose address is exposed to code the
	// analysis cannot see (external callees, unresolved indirect calls,
	// external-linkage globals): unknown code may read, write, or retain
	// pointers into them. Propagated transitively over pointees when the
	// analysis freezes.
	Escaped bool
	// Heap/Stack/Global record how the object is allocated.
	Heap, Stack, Global bool
	// Sites are the allocation sites merged into this class, for
	// per-site reporting and summaries.
	Sites []Site
	// pointee is the object that pointers stored *inside* this object
	// point to (one per node; cells are merged).
	pointee *Node
}

// SiteKind classifies an allocation site.
type SiteKind uint8

// Allocation-site kinds.
const (
	SiteAlloca SiteKind = iota
	SiteMalloc
	SiteGlobal
	SiteUnknown
)

// String names the kind.
func (k SiteKind) String() string {
	switch k {
	case SiteAlloca:
		return "alloca"
	case SiteMalloc:
		return "malloc"
	case SiteGlobal:
		return "global"
	}
	return "unknown"
}

// Site identifies one allocation site: an alloca or malloc instruction
// (with its owning function) or a global variable.
type Site struct {
	Kind SiteKind
	Fn   string // owning function; "" for globals
	Name string // instruction or global name
}

// find returns the representative of the node's class.
func (n *Node) find() *Node {
	for n.parent != nil {
		if n.parent.parent != nil {
			n.parent = n.parent.parent
		}
		n = n.parent
	}
	return n
}

// Result holds the analysis outcome for a module.
type Result struct {
	// Typed/Untyped count static load+store instructions.
	TypedLoads, UntypedLoads   int
	TypedStores, UntypedStores int
	// PerFunction breaks the counts down.
	PerFunction map[string]*Counts
	// nodes maps pointer SSA values to their object nodes.
	nodes map[core.Value]*Node
	// dirtyViews are struct types used to address objects whose identity
	// is collapsed or unknown (their layout is load-bearing for untrusted
	// code paths and must not change).
	dirtyViews []core.Type
	// tainted marks classes loaded out of escaped/unknown memory: unseen
	// code may have stored any pointer there, so they may be any object.
	tainted map[*Node]bool
	// effects and summaries are the frozen per-function mod/ref object
	// sets and caller-facing contracts (see alias.go).
	effects   map[string]*FuncEffects
	summaries map[string]*FuncSummary
	// restored is set on results decoded from a persisted encoding.
	restored bool
}

// Counts is a per-function tally.
type Counts struct {
	TypedAccesses   int
	UntypedAccesses int
}

// Typed returns total provably-typed accesses.
func (r *Result) Typed() int { return r.TypedLoads + r.TypedStores }

// Untyped returns total unproven accesses.
func (r *Result) Untyped() int { return r.UntypedLoads + r.UntypedStores }

// TypedPercent returns the Table 1 metric.
func (r *Result) TypedPercent() float64 {
	total := r.Typed() + r.Untyped()
	if total == 0 {
		return 100.0
	}
	return 100.0 * float64(r.Typed()) / float64(total)
}

// NodeFor returns the abstract object a pointer value refers to, or nil.
func (r *Result) NodeFor(v core.Value) *Node {
	if n := r.nodes[v]; n != nil {
		return n.find()
	}
	return nil
}

// analyzer carries the module-wide unification state.
type analyzer struct {
	nodes  map[core.Value]*Node
	params map[*core.Function][]*Node // callee parameter nodes
	retval map[*core.Function]*Node
}

// Analyze runs the analysis over a module.
func Analyze(m *core.Module) *Result {
	a := &analyzer{
		nodes:  map[core.Value]*Node{},
		params: map[*core.Function][]*Node{},
		retval: map[*core.Function]*Node{},
	}

	// Global variables: one node each, typed by the declared value type.
	for _, g := range m.Globals {
		n := &Node{Ty: g.ValueType, Global: true}
		n.Sites = []Site{{Kind: SiteGlobal, Name: g.Name()}}
		if g.IsDeclaration() {
			// External memory: contents unknown, but the object's own
			// type is still declared.
			n.Unknown = true
			n.Escaped = true
		}
		if g.Linkage == core.ExternalLinkage {
			// Other translation units may hold the global's address.
			n.Escaped = true
		}
		a.nodes[g] = n
	}

	cg := analysis.NewCallGraph(m)
	addrTaken := analysis.AddressTakenFunctions(m)

	// Parameter and return nodes first, so call-site unification works in
	// any order; bottom-up order improves precision of collapse spread.
	for _, f := range m.Funcs {
		ps := make([]*Node, len(f.Args))
		for i, arg := range f.Args {
			if arg.Type().Kind() == core.PointerKind {
				pn := a.freshPointeeFor(arg.Type())
				ps[i] = pn
				a.nodes[arg] = pn
				// Address-taken or external functions receive pointers of
				// unknown provenance.
				if f.Linkage == core.ExternalLinkage || addrTaken[f] {
					pn.Unknown = true
					pn.Escaped = true
				}
			}
		}
		a.params[f] = ps
		if f.Sig.Ret.Kind() == core.PointerKind {
			a.retval[f] = &Node{Unknown: f.IsDeclaration(), Escaped: f.IsDeclaration()}
			if f.IsDeclaration() {
				a.collapse(a.retval[f])
			}
		}
	}

	for _, f := range cg.PostOrder() {
		if !f.IsDeclaration() {
			a.analyzeFunction(f)
		}
	}

	// Classification pass.
	res := &Result{PerFunction: map[string]*Counts{}, nodes: a.nodes}
	recordDirtyView := func(gepBase core.Value, indices []core.Value) {
		n := a.nodeFor(gepBase)
		if !n.Collapsed && !n.Unknown {
			return
		}
		pt, ok := gepBase.Type().(*core.PointerType)
		if !ok {
			return
		}
		cur := core.Type(pt.Elem)
		for k, idx := range indices {
			if k == 0 {
				continue
			}
			switch ct := cur.(type) {
			case *core.StructType:
				res.dirtyViews = append(res.dirtyViews, ct)
				ci, ok := idx.(*core.ConstantInt)
				if !ok {
					return
				}
				cur = ct.Fields[int(ci.SExt())]
			case *core.ArrayType:
				cur = ct.Elem
			default:
				return
			}
		}
	}
	for _, f := range m.Funcs {
		f.ForEachInst(func(inst core.Instruction) bool {
			if gep, ok := inst.(*core.GetElementPtrInst); ok {
				recordDirtyView(gep.Base(), gep.Indices())
			}
			return true
		})
	}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		c := &Counts{}
		res.PerFunction[f.Name()] = c
		f.ForEachInst(func(inst core.Instruction) bool {
			var ptr core.Value
			isLoad := false
			switch i := inst.(type) {
			case *core.LoadInst:
				ptr, isLoad = i.Ptr(), true
			case *core.StoreInst:
				ptr = i.Ptr()
			default:
				return true
			}
			typed := a.isTyped(ptr)
			if typed {
				c.TypedAccesses++
				if isLoad {
					res.TypedLoads++
				} else {
					res.TypedStores++
				}
			} else {
				c.UntypedAccesses++
				if isLoad {
					res.UntypedLoads++
				} else {
					res.UntypedStores++
				}
			}
			return true
		})
	}
	a.freeze(res, m)
	return res
}

// freshPointeeFor makes an object node for what a pointer of type pt
// points at, speculatively typed by the pointee type.
func (a *analyzer) freshPointeeFor(pt core.Type) *Node {
	if p, ok := pt.(*core.PointerType); ok {
		return &Node{Ty: p.Elem}
	}
	return &Node{}
}

// nodeFor returns (creating if necessary) the object node a pointer value
// refers to.
func (a *analyzer) nodeFor(v core.Value) *Node {
	if n, ok := a.nodes[v]; ok {
		return n.find()
	}
	var n *Node
	switch x := v.(type) {
	case *core.ConstantNull:
		n = &Node{} // null: no object; harmless placeholder
	case *core.ConstantUndef:
		n = &Node{Unknown: true}
	case *core.Function:
		n = &Node{Ty: x.Sig, Global: true}
	case *core.ConstantExpr:
		switch x.Op {
		case core.OpGetElementPtr:
			n = a.nodeFor(x.Operand(0))
		case core.OpCast:
			n = a.castNode(x.Operand(0), x.Type())
		default:
			n = &Node{Unknown: true}
		}
	case core.Instruction, *core.Argument:
		// Not yet visited (e.g. a phi referencing a later definition):
		// start with an empty class; the defining instruction's handler
		// unifies the real facts in via setNode. Unhandled pointer
		// producers (vaarg) are collapsed by analyzeFunction.
		n = &Node{}
	default:
		// Unmodelled pointer source.
		n = &Node{Unknown: true}
		a.collapse(n)
	}
	a.nodes[v] = n
	return n.find()
}

// setNode records the object node for an SSA value, unifying with any
// node created earlier by a (rare) forward reference.
func (a *analyzer) setNode(v core.Value, n *Node) {
	if old, ok := a.nodes[v]; ok {
		n = a.unify(old, n)
	}
	a.nodes[v] = n
}

// collapse discards a node's type information.
func (a *analyzer) collapse(n *Node) {
	n = n.find()
	n.Collapsed = true
}

// unify merges two object classes, reconciling their types.
func (a *analyzer) unify(x, y *Node) *Node {
	x, y = x.find(), y.find()
	if x == y {
		return x
	}
	y.parent = x
	x.Collapsed = x.Collapsed || y.Collapsed
	x.Unknown = x.Unknown || y.Unknown
	x.Escaped = x.Escaped || y.Escaped
	x.Heap = x.Heap || y.Heap
	x.Stack = x.Stack || y.Stack
	x.Global = x.Global || y.Global
	x.Sites = mergeSites(x.Sites, y.Sites)
	y.Sites = nil
	switch {
	case x.Ty == nil:
		x.Ty = y.Ty
	case y.Ty == nil:
		// keep x.Ty
	case !core.TypesEqual(x.Ty, y.Ty):
		// Two different object types flowing together: type info is gone
		// (e.g. "using different structure types for the same objects",
		// which the paper cites as a leading cause of untyped accesses).
		x.Collapsed = true
	}
	if y.pointee != nil {
		if x.pointee != nil {
			a.unify(x.pointee, y.pointee)
		} else {
			x.pointee = y.pointee
		}
	}
	return x
}

// mergeSites appends the sites of y not already present in x, preserving
// first-encounter order so the merged list is deterministic.
func mergeSites(x, y []Site) []Site {
	for _, s := range y {
		dup := false
		for _, t := range x {
			if t == s {
				dup = true
				break
			}
		}
		if !dup {
			x = append(x, s)
		}
	}
	return x
}

// pointeeOf returns the node for objects pointed to by pointers stored
// inside n.
func (a *analyzer) pointeeOf(n *Node) *Node {
	n = n.find()
	if n.pointee == nil {
		n.pointee = &Node{Unknown: n.Unknown, Escaped: n.Escaped}
		if n.Collapsed || n.Unknown {
			n.pointee.Collapsed = true
		}
	}
	return n.pointee.find()
}

// isBytePointer reports whether t is sbyte*/ubyte* — the C void*
// convention. Casts through byte pointers are how generic code is written,
// and DSA tolerates them as long as the types agree at the ends (§4.1.1
// footnote 8).
func isBytePointer(t core.Type) bool {
	pt, ok := t.(*core.PointerType)
	if !ok {
		return false
	}
	k := pt.Elem.Kind()
	return k == core.SByteKind || k == core.UByteKind
}

// castNode models "cast val to dst" for pointer results.
func (a *analyzer) castNode(val core.Value, dst core.Type) *Node {
	if val.Type().Kind() != core.PointerKind {
		// Integer-to-pointer: memory of unknown identity. If the integer
		// itself is a tracked pointer round-trip (ptr→int→ptr), the
		// materialized pointer may target the original object: unify with
		// it so the pair can never be reported no-alias, and still mark
		// the class Unknown — a provenance-losing cast collapses to
		// unknown, never to a false no-alias.
		n := &Node{Unknown: true, Escaped: true}
		a.collapse(n)
		if src, ok := a.nodes[val]; ok {
			n = a.unify(src, n)
		}
		return n
	}
	n := a.nodeFor(val)
	if dst.Kind() != core.PointerKind {
		return n // pointer-to-int: object unaffected by this use alone
	}
	srcT, dstT := val.Type(), dst
	switch {
	case core.TypesEqual(srcT, dstT):
	case isBytePointer(dstT):
		// T* -> void*: generic view; keep the node's type.
	case isBytePointer(srcT):
		// void* -> T*: speculative refinement. Consistent with the
		// node's believed type (or refines an unknown one); otherwise
		// the object is used at two incompatible types.
		want := dstT.(*core.PointerType).Elem
		if n.Ty == nil {
			n.Ty = want
		} else if !typeFitsAtZero(n.Ty, want) {
			a.collapse(n)
		}
	default:
		// T1* -> T2*: reinterpreting cast unless T2 is a leading prefix
		// of T1 (physical subtyping, e.g. derived-to-base).
		want := dstT.(*core.PointerType).Elem
		if n.Ty == nil {
			n.Ty = want
			a.collapse(n) // source type was also unknown: distrust
		} else if !typeFitsAtZero(n.Ty, want) {
			a.collapse(n)
		}
	}
	return n
}

// typeFitsAtZero reports whether an object of type obj can be viewed at
// offset zero as a value of type view: equal types, the first field of a
// struct (recursively), or the element type of an array.
func typeFitsAtZero(obj, view core.Type) bool {
	for {
		if core.TypesEqual(obj, view) {
			return true
		}
		switch t := obj.(type) {
		case *core.StructType:
			if len(t.Fields) == 0 {
				return false
			}
			obj = t.Fields[0]
		case *core.ArrayType:
			obj = t.Elem
		default:
			return false
		}
	}
}

// analyzeFunction propagates points-to facts through one function body.
func (a *analyzer) analyzeFunction(f *core.Function) {
	f.ForEachInst(func(inst core.Instruction) bool {
		switch i := inst.(type) {
		case *core.MallocInst:
			t := core.Type(i.AllocType)
			a.setNode(i, &Node{Ty: t, Heap: true,
				Sites: []Site{{Kind: SiteMalloc, Fn: f.Name(), Name: i.Name()}}})
		case *core.AllocaInst:
			a.setNode(i, &Node{Ty: i.AllocType, Stack: true,
				Sites: []Site{{Kind: SiteAlloca, Fn: f.Name(), Name: i.Name()}}})
		case *core.GetElementPtrInst:
			a.setNode(i, a.nodeFor(i.Base()))
		case *core.CastInst:
			if i.Type().Kind() == core.PointerKind || i.Val().Type().Kind() == core.PointerKind {
				a.setNode(i, a.castNode(i.Val(), i.Type()))
			}
		case *core.PhiInst:
			if i.Type().Kind() == core.PointerKind {
				var n *Node
				for k := 0; k < i.NumIncoming(); k++ {
					v, _ := i.Incoming(k)
					vn := a.nodeFor(v)
					if n == nil {
						n = vn
					} else {
						n = a.unify(n, vn)
					}
				}
				a.setNode(i, n)
			}
		case *core.LoadInst:
			if i.Type().Kind() == core.PointerKind {
				a.setNode(i, a.pointeeOf(a.nodeFor(i.Ptr())))
			}
		case *core.StoreInst:
			if i.Val().Type().Kind() == core.PointerKind {
				cell := a.pointeeOf(a.nodeFor(i.Ptr()))
				a.unify(cell, a.nodeFor(i.Val()))
			}
		case *core.CallInst:
			a.modelCall(i, i.Callee(), i.Args())
		case *core.InvokeInst:
			a.modelCall(i, i.Callee(), i.Args())
		case *core.RetInst:
			if v := i.Value(); v != nil && v.Type().Kind() == core.PointerKind {
				if rn := a.retval[f]; rn != nil {
					a.unify(rn, a.nodeFor(v))
				}
			}
		case *core.VAArgInst:
			if i.Type().Kind() == core.PointerKind {
				n := &Node{Unknown: true}
				a.collapse(n)
				a.setNode(i, n)
			}
		}
		return true
	})
}

// modelCall unifies actuals with formals for direct internal calls; for
// external or indirect callees every pointer argument escapes to unknown
// code and is collapsed.
func (a *analyzer) modelCall(result core.Instruction, callee core.Value, args []core.Value) {
	target, direct := callee.(*core.Function)
	known := direct && !target.IsDeclaration()
	if known {
		ps := a.params[target]
		for i, arg := range args {
			if arg.Type().Kind() != core.PointerKind {
				continue
			}
			if i < len(ps) && ps[i] != nil {
				a.unify(ps[i], a.nodeFor(arg))
			} else {
				a.collapse(a.nodeFor(arg)) // variadic extras: unmodelled
			}
		}
		if result.Type().Kind() == core.PointerKind {
			if rn := a.retval[target]; rn != nil {
				a.setNode(result, rn.find())
			} else {
				n := &Node{Unknown: true}
				a.collapse(n)
				a.setNode(result, n)
			}
		}
		return
	}
	// Unknown callee: pointers escape; their objects become untrusted.
	for _, arg := range args {
		if arg.Type().Kind() == core.PointerKind {
			n := a.nodeFor(arg)
			a.collapse(n)
			n.find().Escaped = true
			p := a.pointeeOf(n)
			a.collapse(p)
			p.find().Escaped = true
		}
	}
	if result.Type().Kind() == core.PointerKind {
		n := &Node{Unknown: true, Escaped: true}
		a.collapse(n)
		a.setNode(result, n)
	}
}

// isTyped decides the Table 1 classification for one access.
func (a *analyzer) isTyped(ptr core.Value) bool {
	n := a.nodeFor(ptr)
	if n.Collapsed || n.Unknown || n.Ty == nil {
		return false
	}
	return true
}

// TypeReliable reports whether the layout of struct type t can safely be
// changed: every abstract object is either provably of a known,
// uncollapsed type (so objects of type t are only accessed through typed
// getelementptrs), or provably unrelated to t. A collapsed or unknown
// object whose believed type is t — or whose identity is entirely unknown —
// makes reordering unsound. This is the query behind the paper's §4.1.1
// example transformation, "reordering two fields of a structure".
func (r *Result) TypeReliable(t core.Type) bool {
	if r.restored {
		// Decoded results carry no type information; never authorize a
		// layout change from one.
		return false
	}
	seen := map[*Node]bool{}
	for _, n := range r.nodes {
		n = n.find()
		if seen[n] {
			continue
		}
		seen[n] = true
		if !n.Collapsed && !n.Unknown {
			continue
		}
		if n.Ty == nil || core.TypesEqual(n.Ty, t) || typeContains(n.Ty, t, nil) {
			return false
		}
	}
	for _, dv := range r.dirtyViews {
		if core.TypesEqual(dv, t) || typeContains(dv, t, nil) {
			return false
		}
	}
	return true
}

// typeContains reports whether t transitively embeds target (arrays and
// struct fields; pointers do not embed their pointee's layout).
func typeContains(t, target core.Type, visiting map[core.Type]bool) bool {
	if core.TypesEqual(t, target) {
		return true
	}
	if visiting[t] {
		return false
	}
	switch tt := t.(type) {
	case *core.ArrayType:
		return typeContains(tt.Elem, target, visiting)
	case *core.StructType:
		if visiting == nil {
			visiting = map[core.Type]bool{}
		}
		visiting[t] = true
		for _, f := range tt.Fields {
			if typeContains(f, target, visiting) {
				return true
			}
		}
	}
	return false
}
