package dsa

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

// FuzzAlias: any module the parser accepts must flow through the
// points-to analysis without panicking, and the result must uphold the
// soundness invariants no input can be allowed to break:
//
//   - Alias is reflexive-safe: a pointer never No-aliases itself.
//   - Alias is symmetric: Alias(p,q) == Alias(q,p).
//   - The summary encoding is deterministic: analyzing a fresh parse of
//     the same source serializes to identical bytes, and those bytes
//     decode back against the same module (the store's reuse contract).
func FuzzAlias(f *testing.F) {
	f.Add(`
int %main() {
entry:
	%a = alloca int
	%b = malloc int
	store int 1, int* %a
	%v = load int* %b
	free int* %b
	ret int %v
}
`)
	f.Add(`
%g = global int 0
internal void %w(int* %p) {
entry:
	store int 7, int* %p
	ret void
}
void %main() {
entry:
	call void %w(int* %g)
	ret void
}
`)
	f.Add(`
int %main() {
entry:
	%s = alloca { int, int* }
	%f0 = getelementptr { int, int* }* %s, long 0, ubyte 0
	%f1 = getelementptr { int, int* }* %s, long 0, ubyte 1
	%i = cast int* %f0 to long
	%p = cast long %i to int*
	store int 3, int* %p
	ret int 0
}
`)
	f.Add("declare void %x()\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := asm.ParseModule("fuzz", src)
		if err != nil {
			return
		}
		r := Analyze(m)
		if r == nil {
			t.Fatal("Analyze returned nil")
		}
		var ptrs []core.Value
		for _, fn := range m.Funcs {
			for _, b := range fn.Blocks {
				for _, inst := range b.Instrs {
					if v, ok := inst.(core.Value); ok && ptrTyped(v) {
						ptrs = append(ptrs, v)
					}
				}
			}
			if len(ptrs) > 64 {
				break // enough pairs; keep the fuzz iteration cheap
			}
		}
		for _, p := range ptrs {
			if r.Alias(p, p) == NoAlias {
				t.Fatalf("Alias(p,p) = NoAlias for %s", core.InstDebugString(p.(core.Instruction)))
			}
		}
		for i, p := range ptrs {
			for _, q := range ptrs[i+1:] {
				if r.Alias(p, q) != r.Alias(q, p) {
					t.Fatalf("Alias not symmetric for %s / %s",
						core.InstDebugString(p.(core.Instruction)),
						core.InstDebugString(q.(core.Instruction)))
				}
			}
		}
		enc := r.Encode(m)
		m2, err := asm.ParseModule("fuzz", src)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if enc2 := Analyze(m2).Encode(m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("summary encoding not deterministic (%d vs %d bytes)", len(enc), len(enc2))
		}
		if _, err := Decode(enc, m); err != nil {
			t.Fatalf("round-trip decode rejected own encoding: %v", err)
		}
	})
}

// ptrTyped reports whether a value produces a pointer the alias oracle
// can be queried about.
func ptrTyped(v core.Value) bool {
	_, ok := v.Type().(*core.PointerType)
	return ok
}
