// Binary persistence for points-to results. Summaries are stored in the
// lifelong store keyed by module hash, so a repeat compilation of the same
// module decodes the analysis instead of recomputing it. The format is
// deliberately positional: values are identified by a deterministic module
// walk (globals, then per function its arguments and instructions in body
// order), so the encoding is only meaningful against the exact module it
// was computed from — which the content-addressed store guarantees.
package dsa

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// encodeMagic versions the format; bump on any layout change.
const encodeMagic = "LLPT1"

// walkValues enumerates the module's node-bearing values in the canonical
// order both Encode and Decode use.
func walkValues(m *core.Module) []core.Value {
	var vals []core.Value
	for _, g := range m.Globals {
		vals = append(vals, g)
	}
	for _, f := range m.Funcs {
		for _, arg := range f.Args {
			vals = append(vals, arg)
		}
		f.ForEachInst(func(inst core.Instruction) bool {
			vals = append(vals, inst)
			return true
		})
	}
	return vals
}

type encBuf struct{ b []byte }

func (e *encBuf) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encBuf) byte(v byte)      { e.b = append(e.b, v) }
func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

type decBuf struct {
	b   []byte
	off int
}

func (d *decBuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dsa: truncated encoding at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decBuf) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("dsa: truncated encoding at offset %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decBuf) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.b) {
		return "", fmt.Errorf("dsa: truncated string at offset %d", d.off)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Node flag bits in the encoding.
const (
	flagCollapsed = 1 << iota
	flagUnknown
	flagEscaped
	flagHeap
	flagStack
	flagGlobal
	flagTainted
)

// Effects/summary flag bits.
const (
	effModAll = 1 << iota
	effRefAll
	effModEscaped
	effRefEscaped
	effReturnsFresh
)

// Encode serializes the frozen result for m. The output is deterministic:
// the same module and result encode byte-identically.
func (r *Result) Encode(m *core.Module) []byte {
	vals := walkValues(m)
	// Assign class ids: value classes in walk order, then pointee closure.
	ids := map[*Node]int{}
	var classes []*Node
	add := func(n *Node) {
		if n == nil {
			return
		}
		if _, ok := ids[n]; !ok {
			ids[n] = len(classes)
			classes = append(classes, n)
		}
	}
	for _, v := range vals {
		if n := r.nodes[v]; n != nil {
			add(n.find())
		}
	}
	for i := 0; i < len(classes); i++ { // grows during iteration
		if p := classes[i].pointee; p != nil {
			add(p.find())
		}
	}

	e := &encBuf{}
	e.b = append(e.b, encodeMagic...)
	e.uvarint(uint64(len(classes)))
	for _, n := range classes {
		var flags byte
		if n.Collapsed {
			flags |= flagCollapsed
		}
		if n.Unknown {
			flags |= flagUnknown
		}
		if n.Escaped {
			flags |= flagEscaped
		}
		if n.Heap {
			flags |= flagHeap
		}
		if n.Stack {
			flags |= flagStack
		}
		if n.Global {
			flags |= flagGlobal
		}
		if r.tainted[n] {
			flags |= flagTainted
		}
		e.byte(flags)
		if n.pointee != nil {
			e.uvarint(uint64(ids[n.pointee.find()] + 1))
		} else {
			e.uvarint(0)
		}
		e.uvarint(uint64(len(n.Sites)))
		for _, s := range n.Sites {
			e.byte(byte(s.Kind))
			e.str(s.Fn)
			e.str(s.Name)
		}
	}

	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		if n := r.nodes[v]; n != nil {
			e.uvarint(uint64(ids[n.find()] + 1))
		} else {
			e.uvarint(0)
		}
	}

	for _, f := range m.Funcs {
		fe := r.effects[f.Name()]
		s := r.summaries[f.Name()]
		var flags byte
		if fe != nil {
			if fe.ModAll {
				flags |= effModAll
			}
			if fe.RefAll {
				flags |= effRefAll
			}
			if fe.ModEscaped {
				flags |= effModEscaped
			}
			if fe.RefEscaped {
				flags |= effRefEscaped
			}
		} else {
			flags |= effModAll | effRefAll
		}
		if s != nil && s.ReturnsFresh {
			flags |= effReturnsFresh
		}
		e.byte(flags)
		writeSet := func(set map[*Node]bool) {
			var idList []int
			if fe != nil {
				idList = sortedNodeIDs(set, ids)
			}
			e.uvarint(uint64(len(idList)))
			for _, id := range idList {
				e.uvarint(uint64(id))
			}
		}
		if fe != nil {
			writeSet(fe.Mod)
			writeSet(fe.Ref)
		} else {
			e.uvarint(0)
			e.uvarint(0)
		}
		e.uvarint(uint64(len(f.Args)))
		for i := range f.Args {
			var bits byte
			if s != nil && i < len(s.ArgEscapes) {
				if s.ArgEscapes[i] {
					bits |= 1
				}
				if s.ArgMod[i] {
					bits |= 2
				}
				if s.ArgRef[i] {
					bits |= 4
				}
			} else {
				bits = 7
			}
			e.byte(bits)
		}
	}

	e.uvarint(uint64(r.TypedLoads))
	e.uvarint(uint64(r.UntypedLoads))
	e.uvarint(uint64(r.TypedStores))
	e.uvarint(uint64(r.UntypedStores))
	for _, f := range m.Funcs {
		c := r.PerFunction[f.Name()]
		if c == nil {
			c = &Counts{}
		}
		e.uvarint(uint64(c.TypedAccesses))
		e.uvarint(uint64(c.UntypedAccesses))
	}
	return e.b
}

// Decode reconstructs a result from an encoding produced for exactly this
// module (same hash). Restored results answer alias, effect, and summary
// queries but carry no type information.
func Decode(data []byte, m *core.Module) (*Result, error) {
	if len(data) < len(encodeMagic) || string(data[:len(encodeMagic)]) != encodeMagic {
		return nil, fmt.Errorf("dsa: bad summary magic")
	}
	d := &decBuf{b: data, off: len(encodeMagic)}

	numClasses, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	classes := make([]*Node, numClasses)
	for i := range classes {
		classes[i] = &Node{}
	}
	res := &Result{
		PerFunction: map[string]*Counts{},
		nodes:       map[core.Value]*Node{},
		tainted:     map[*Node]bool{},
		effects:     map[string]*FuncEffects{},
		summaries:   map[string]*FuncSummary{},
		restored:    true,
	}
	for _, n := range classes {
		flags, err := d.byte()
		if err != nil {
			return nil, err
		}
		n.Collapsed = flags&flagCollapsed != 0
		n.Unknown = flags&flagUnknown != 0
		n.Escaped = flags&flagEscaped != 0
		n.Heap = flags&flagHeap != 0
		n.Stack = flags&flagStack != 0
		n.Global = flags&flagGlobal != 0
		if flags&flagTainted != 0 {
			res.tainted[n] = true
		}
		ptID, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if ptID > 0 {
			if ptID > numClasses {
				return nil, fmt.Errorf("dsa: pointee id out of range")
			}
			n.pointee = classes[ptID-1]
		}
		numSites, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < numSites; k++ {
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			fn, err := d.str()
			if err != nil {
				return nil, err
			}
			name, err := d.str()
			if err != nil {
				return nil, err
			}
			n.Sites = append(n.Sites, Site{Kind: SiteKind(kind), Fn: fn, Name: name})
		}
	}

	vals := walkValues(m)
	numVals, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if int(numVals) != len(vals) {
		return nil, fmt.Errorf("dsa: encoding is for a different module (%d values, module has %d)", numVals, len(vals))
	}
	for _, v := range vals {
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if id > 0 {
			if id > numClasses {
				return nil, fmt.Errorf("dsa: class id out of range")
			}
			res.nodes[v] = classes[id-1]
		}
	}

	for _, f := range m.Funcs {
		flags, err := d.byte()
		if err != nil {
			return nil, err
		}
		fe := &FuncEffects{
			Mod:        map[*Node]bool{},
			Ref:        map[*Node]bool{},
			ModAll:     flags&effModAll != 0,
			RefAll:     flags&effRefAll != 0,
			ModEscaped: flags&effModEscaped != 0,
			RefEscaped: flags&effRefEscaped != 0,
		}
		readSet := func(set map[*Node]bool) error {
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			for k := uint64(0); k < n; k++ {
				id, err := d.uvarint()
				if err != nil {
					return err
				}
				if id >= numClasses {
					return fmt.Errorf("dsa: effect class id out of range")
				}
				set[classes[id]] = true
			}
			return nil
		}
		if err := readSet(fe.Mod); err != nil {
			return nil, err
		}
		if err := readSet(fe.Ref); err != nil {
			return nil, err
		}
		res.effects[f.Name()] = fe
		numArgs, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if int(numArgs) != len(f.Args) {
			return nil, fmt.Errorf("dsa: arg count mismatch for %s", f.Name())
		}
		s := &FuncSummary{
			ArgEscapes:   make([]bool, numArgs),
			ArgMod:       make([]bool, numArgs),
			ArgRef:       make([]bool, numArgs),
			ReturnsFresh: flags&effReturnsFresh != 0,
		}
		for i := uint64(0); i < numArgs; i++ {
			bits, err := d.byte()
			if err != nil {
				return nil, err
			}
			s.ArgEscapes[i] = bits&1 != 0
			s.ArgMod[i] = bits&2 != 0
			s.ArgRef[i] = bits&4 != 0
		}
		res.summaries[f.Name()] = s
	}

	for _, dst := range []*int{&res.TypedLoads, &res.UntypedLoads, &res.TypedStores, &res.UntypedStores} {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	for _, f := range m.Funcs {
		tv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		uv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if !f.IsDeclaration() {
			res.PerFunction[f.Name()] = &Counts{TypedAccesses: int(tv), UntypedAccesses: int(uv)}
		}
	}
	return res, nil
}
