// Alias queries, call effects, and function summaries layered on the DSA
// points-to graph. After Analyze finishes unification the result is frozen:
// every value is canonicalized to its class root (so concurrent queries
// never mutate the union-find) and taint is propagated — the pointee of an
// escaped or unknown class may be any object, because unseen code can store
// arbitrary pointers into escaped memory. Soundness rule throughout: a
// provenance-losing operation collapses to unknown (answer May), never to a
// false No.
package dsa

import (
	"sort"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/core"
)

// AliasResult is the answer lattice of Result.Alias.
type AliasResult uint8

// Alias answers. NoAlias means the two pointers provably never address
// overlapping memory; MustAlias means they provably address the same
// location; MayAlias is the safe default.
const (
	MayAlias AliasResult = iota
	NoAlias
	MustAlias
)

// String names the result.
func (r AliasResult) String() string {
	switch r {
	case NoAlias:
		return "no"
	case MustAlias:
		return "must"
	}
	return "may"
}

// Package-level query counters, read by llvm-opt -time and the server's
// /metrics surface.
var queryNo, queryMay, queryMust atomic.Int64

// QueryStats is a snapshot of the alias query counters.
type QueryStats struct {
	No, May, Must int64
}

// Total sums the counters.
func (s QueryStats) Total() int64 { return s.No + s.May + s.Must }

// Stats snapshots the package-wide alias query counters.
func Stats() QueryStats {
	return QueryStats{No: queryNo.Load(), May: queryMay.Load(), Must: queryMust.Load()}
}

// ResetStats zeroes the query counters (used by benchmarks).
func ResetStats() {
	queryNo.Store(0)
	queryMay.Store(0)
	queryMust.Store(0)
}

// Key registers the points-to analysis with the pass manager's analysis
// cache. Passes whose edits keep the (over-approximate) points-to relation
// valid — anything that only removes or moves instructions — may claim
// Key.Mask() in Preserves().
var Key = analysis.NewModuleKey("dsa.pointsto")

// Of returns the cached points-to result for m, computing it on a miss.
// Safe on a nil manager (computes fresh).
func Of(am *analysis.Manager, m *core.Module) *Result {
	return am.ModuleExt(Key, m, func(mm *core.Module) interface{} {
		return Analyze(mm)
	}).(*Result)
}

// FuncEffects records which abstract objects a function (transitively) may
// write or read. Because unification is module-wide, callee effect sets name
// the same nodes callers see — no rebinding is needed at call sites.
type FuncEffects struct {
	Mod, Ref map[*Node]bool
	// ModAll/RefAll: an unresolved indirect call was reached; any object
	// may be touched.
	ModAll, RefAll bool
	// ModEscaped/RefEscaped: external code runs; every escaped, unknown,
	// or tainted object may be touched, but provably non-escaping objects
	// are safe.
	ModEscaped, RefEscaped bool
}

// FuncSummary is the caller-facing contract of one function, persisted into
// the lifelong store so repeat compilations skip recomputation.
type FuncSummary struct {
	// ArgEscapes: the object passed via this argument may be retained
	// past the call (stored into a global, returned, or exposed to
	// external code).
	ArgEscapes []bool
	// ArgMod/ArgRef: the call may write/read the object the argument
	// points to.
	ArgMod, ArgRef []bool
	// ReturnsFresh: the returned pointer addresses heap memory allocated
	// during the call and reachable no other way.
	ReturnsFresh bool
}

// mayBeAnything reports whether the class can overlap arbitrary objects:
// unknown provenance, or tainted (loaded out of escaped memory).
func (r *Result) mayBeAnything(n *Node) bool {
	return n == nil || n.Unknown || r.tainted[n]
}

// Alias answers whether two pointer values may address overlapping memory.
func (r *Result) Alias(p, q core.Value) AliasResult {
	res := r.aliasImpl(p, q)
	switch res {
	case NoAlias:
		queryNo.Add(1)
	case MustAlias:
		queryMust.Add(1)
	default:
		queryMay.Add(1)
	}
	return res
}

func (r *Result) aliasImpl(p, q core.Value) AliasResult {
	if p == q {
		return MustAlias
	}
	_, pNull := p.(*core.ConstantNull)
	_, qNull := q.(*core.ConstantNull)
	if pNull || qNull {
		if pNull && qNull {
			return MustAlias // both null: same (non-)address
		}
		return NoAlias // null addresses no object
	}
	// Structural disambiguation first: two access paths rooted at the same
	// base value compare by their gep chains, independent of class flags —
	// the paths share a runtime base address, so constant-index divergence
	// means disjoint subobjects even inside an Unknown class.
	bp, tp := accessPath(p)
	bq, tq := accessPath(q)
	if bp == bq {
		return comparePaths(tp, tq)
	}
	np, nq := r.NodeFor(p), r.NodeFor(q)
	if np == nil || nq == nil {
		return MayAlias
	}
	if np != nq && !r.mayBeAnything(np) && !r.mayBeAnything(nq) {
		// Distinct classes with fully tracked provenance never overlap.
		return NoAlias
	}
	return MayAlias
}

// pathTok is one gep step of an access path. Casts are address-preserving
// and are skipped; each gep contributes a header token naming the indexed
// pointer type followed by one token per index, so equal prefixes guarantee
// the divergent indices select within the same aggregate.
type pathTok struct {
	hdr string     // gep header: base pointer type string ("" for index toks)
	c   int64      // constant index value (valid when v == nil && hdr == "")
	v   core.Value // non-constant index (compared by identity)
}

// accessPath peels gep and pointer-cast chains off v, returning the root
// base value and the gep tokens from base outward.
func accessPath(v core.Value) (core.Value, []pathTok) {
	var rev []pathTok // collected outermost-first
	for {
		switch x := v.(type) {
		case *core.GetElementPtrInst:
			rev = appendGEPToks(rev, x.Base().Type(), x.Indices())
			v = x.Base()
		case *core.CastInst:
			if x.Val().Type().Kind() != core.PointerKind {
				return v, reversePath(rev)
			}
			v = x.Val()
		case *core.ConstantExpr:
			switch x.Op {
			case core.OpGetElementPtr:
				base := x.Operand(0)
				idx := make([]core.Value, 0, len(x.Operands())-1)
				for i := 1; i < len(x.Operands()); i++ {
					idx = append(idx, x.Operand(i))
				}
				rev = appendGEPToks(rev, base.Type(), idx)
				v = base
			case core.OpCast:
				op := x.Operand(0)
				if op.Type().Kind() != core.PointerKind {
					return v, reversePath(rev)
				}
				v = op
			default:
				return v, reversePath(rev)
			}
		default:
			return v, reversePath(rev)
		}
	}
}

// appendGEPToks appends (in reverse chain order) the tokens of one gep.
func appendGEPToks(rev []pathTok, baseTy core.Type, indices []core.Value) []pathTok {
	// Indices first (they sit "outward" of the header in reversed order).
	for i := len(indices) - 1; i >= 0; i-- {
		if ci, ok := indices[i].(*core.ConstantInt); ok {
			rev = append(rev, pathTok{c: ci.SExt()})
		} else {
			rev = append(rev, pathTok{v: indices[i]})
		}
	}
	return append(rev, pathTok{hdr: baseTy.String()})
}

func reversePath(rev []pathTok) []pathTok {
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// comparePaths compares two access paths over the same base value.
// Identical paths address the same location (Must). Paths whose first
// divergence is two different constant indices at the same structural
// position select disjoint subobjects (No). A path that is a prefix of the
// other contains it (May), and any divergence involving a variable index or
// differing gep headers is May.
func comparePaths(tp, tq []pathTok) AliasResult {
	n := len(tp)
	if len(tq) < n {
		n = len(tq)
	}
	for i := 0; i < n; i++ {
		a, b := tp[i], tq[i]
		if a == b {
			continue
		}
		// First divergence. Disjointness needs two constant index tokens.
		if a.hdr == "" && b.hdr == "" && a.v == nil && b.v == nil {
			return NoAlias
		}
		return MayAlias
	}
	if len(tp) == len(tq) {
		return MustAlias
	}
	return MayAlias // containment: one path extends the other
}

// CallMayMod reports whether calling f may modify the object n. A nil
// effects table (unanalyzed function) is conservative.
func (r *Result) CallMayMod(f *core.Function, n *Node) bool {
	fe := r.effects[f.Name()]
	if fe == nil || fe.ModAll {
		return true
	}
	if n == nil {
		return fe.ModEscaped || len(fe.Mod) > 0
	}
	if fe.ModEscaped && (n.Escaped || r.mayBeAnything(n)) {
		return true
	}
	return fe.Mod[n]
}

// CallMayRef reports whether calling f may read the object n.
func (r *Result) CallMayRef(f *core.Function, n *Node) bool {
	fe := r.effects[f.Name()]
	if fe == nil || fe.RefAll {
		return true
	}
	if n == nil {
		return fe.RefEscaped || len(fe.Ref) > 0
	}
	if fe.RefEscaped && (n.Escaped || r.mayBeAnything(n)) {
		return true
	}
	return fe.Ref[n]
}

// CallSiteMayMod resolves a call's callee set and joins CallMayMod over it.
// Unresolvable callees are conservative.
func (r *Result) CallSiteMayMod(callee core.Value, n *Node) bool {
	targets, ok := analysis.CallTargets(callee)
	if !ok {
		return true
	}
	for _, t := range targets {
		if r.CallMayMod(t, n) {
			return true
		}
	}
	return false
}

// CallSiteMayRef is CallSiteMayMod for reads.
func (r *Result) CallSiteMayRef(callee core.Value, n *Node) bool {
	targets, ok := analysis.CallTargets(callee)
	if !ok {
		return true
	}
	for _, t := range targets {
		if r.CallMayRef(t, n) {
			return true
		}
	}
	return false
}

// Effects returns f's effect summary, or nil for functions the analysis did
// not see (treat nil as "may do anything").
func (r *Result) Effects(f *core.Function) *FuncEffects { return r.effects[f.Name()] }

// Summary returns the caller-facing summary of the named function, or nil.
func (r *Result) Summary(name string) *FuncSummary { return r.summaries[name] }

// Restored reports whether this result was decoded from a persisted
// encoding rather than computed; restored results have no type information
// (TypeReliable is conservatively false) but full alias/effect data.
func (r *Result) Restored() bool { return r.restored }

// NumClasses counts the distinct frozen object classes, for reporting.
func (r *Result) NumClasses() int {
	seen := map[*Node]bool{}
	for _, n := range r.nodes {
		seen[n.find()] = true
	}
	return len(seen)
}

// freeze canonicalizes the union-find for read-only concurrent queries,
// propagates taint, and computes effects and summaries. Runs once at the end
// of Analyze, after classification (taint deliberately does not feed the
// Table 1 typed/untyped counts — those report what the unification itself
// proved).
func (a *analyzer) freeze(res *Result, m *core.Module) {
	for v, n := range a.nodes {
		a.nodes[v] = n.find()
	}
	roots := map[*Node]bool{}
	for _, n := range a.nodes {
		roots[n] = true
	}
	for f, ps := range a.params {
		for i, pn := range ps {
			if pn != nil {
				ps[i] = pn.find()
				roots[ps[i]] = true
			}
		}
		a.params[f] = ps
	}
	for f, rn := range a.retval {
		a.retval[f] = rn.find()
		roots[a.retval[f]] = true
	}
	// Canonicalize pointee links; pointees may be classes no value names.
	work := make([]*Node, 0, len(roots))
	for n := range roots {
		work = append(work, n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if n.pointee != nil {
			p := n.pointee.find()
			n.pointee = p
			if !roots[p] {
				roots[p] = true
				work = append(work, p)
			}
		}
	}

	// Taint: anything reachable by loading out of an escaped or unknown
	// class may be any object — unseen code can store arbitrary pointers
	// into escaped memory.
	res.tainted = map[*Node]bool{}
	for changed := true; changed; {
		changed = false
		for n := range roots {
			if !(n.Unknown || n.Escaped || res.tainted[n]) || n.pointee == nil {
				continue
			}
			if !res.tainted[n.pointee] {
				res.tainted[n.pointee] = true
				changed = true
			}
		}
	}

	res.effects = a.computeEffects(res, m)
	res.summaries = a.computeSummaries(res, m)
}

// computeEffects builds per-function mod/ref object sets bottom-up to a
// fixed point.
func (a *analyzer) computeEffects(res *Result, m *core.Module) map[string]*FuncEffects {
	eff := map[string]*FuncEffects{}
	type site struct {
		caller  string
		targets []*core.Function
	}
	var sites []site
	for _, f := range m.Funcs {
		fe := &FuncEffects{Mod: map[*Node]bool{}, Ref: map[*Node]bool{}}
		if f.IsDeclaration() {
			fe.ModEscaped, fe.RefEscaped = true, true
		}
		eff[f.Name()] = fe
	}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		fe := eff[f.Name()]
		record := func(p core.Value, write bool) {
			n := res.NodeFor(p)
			if n == nil {
				// Unmodelled pointer producer: poison.
				if write {
					fe.ModAll = true
				} else {
					fe.RefAll = true
				}
				return
			}
			if write {
				fe.Mod[n] = true
			} else {
				fe.Ref[n] = true
			}
		}
		addCall := func(callee core.Value) {
			if targets, ok := analysis.CallTargets(callee); ok {
				sites = append(sites, site{caller: f.Name(), targets: targets})
				return
			}
			fe.ModAll, fe.RefAll = true, true
		}
		f.ForEachInst(func(inst core.Instruction) bool {
			switch i := inst.(type) {
			case *core.LoadInst:
				record(i.Ptr(), false)
			case *core.StoreInst:
				record(i.Ptr(), true)
			case *core.FreeInst:
				record(i.Ptr(), true)
			case *core.CallInst:
				addCall(i.Callee())
			case *core.InvokeInst:
				addCall(i.Callee())
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sites {
			fe := eff[s.caller]
			for _, t := range s.targets {
				ce := eff[t.Name()]
				if ce == nil {
					if !fe.ModAll || !fe.RefAll {
						fe.ModAll, fe.RefAll = true, true
						changed = true
					}
					continue
				}
				if mergeEffects(fe, ce) {
					changed = true
				}
			}
		}
	}
	return eff
}

// mergeEffects folds callee effects into the caller's, reporting growth.
func mergeEffects(dst, src *FuncEffects) bool {
	changed := false
	or := func(d *bool, s bool) {
		if s && !*d {
			*d = true
			changed = true
		}
	}
	or(&dst.ModAll, src.ModAll)
	or(&dst.RefAll, src.RefAll)
	or(&dst.ModEscaped, src.ModEscaped)
	or(&dst.RefEscaped, src.RefEscaped)
	for n := range src.Mod {
		if !dst.Mod[n] {
			dst.Mod[n] = true
			changed = true
		}
	}
	for n := range src.Ref {
		if !dst.Ref[n] {
			dst.Ref[n] = true
			changed = true
		}
	}
	return changed
}

// computeSummaries derives the caller-facing per-function summaries.
func (a *analyzer) computeSummaries(res *Result, m *core.Module) map[string]*FuncSummary {
	// Retained set: classes reachable (via pointees) from globals, return
	// values, or escaped/unknown classes — an object in it may outlive the
	// call that received it.
	retained := map[*Node]bool{}
	var mark func(n *Node)
	mark = func(n *Node) {
		for n != nil && !retained[n] {
			retained[n] = true
			n = n.pointee
		}
	}
	for _, g := range m.Globals {
		mark(a.nodes[g])
	}
	for _, rn := range a.retval {
		mark(rn)
	}
	for _, n := range a.nodes {
		if n.Unknown || n.Escaped {
			mark(n)
		}
	}

	out := map[string]*FuncSummary{}
	for _, f := range m.Funcs {
		s := &FuncSummary{
			ArgEscapes: make([]bool, len(f.Args)),
			ArgMod:     make([]bool, len(f.Args)),
			ArgRef:     make([]bool, len(f.Args)),
		}
		ps := a.params[f]
		for i := range f.Args {
			var pn *Node
			if i < len(ps) {
				pn = ps[i]
			}
			if pn == nil {
				continue // non-pointer argument
			}
			s.ArgEscapes[i] = retained[pn]
			s.ArgMod[i] = res.CallMayMod(f, pn)
			s.ArgRef[i] = res.CallMayRef(f, pn)
		}
		if f.IsDeclaration() {
			for i, arg := range f.Args {
				if arg.Type().Kind() == core.PointerKind {
					s.ArgEscapes[i], s.ArgMod[i], s.ArgRef[i] = true, true, true
				}
			}
		}
		if rn := a.retval[f]; rn != nil && !f.IsDeclaration() {
			// Fresh: heap-only class not reachable from globals or any
			// parameter — memory that did not exist before the call.
			fresh := rn.Heap && !rn.Stack && !rn.Global && !rn.Unknown && !res.tainted[rn]
			if fresh {
				reach := map[*Node]bool{}
				var walk func(n *Node)
				walk = func(n *Node) {
					for n != nil && !reach[n] {
						reach[n] = true
						n = n.pointee
					}
				}
				for _, g := range m.Globals {
					walk(a.nodes[g])
				}
				for _, pn := range ps {
					if pn != nil && pn.pointee != nil {
						walk(pn.pointee)
					}
				}
				fresh = !reach[rn]
			}
			s.ReturnsFresh = fresh
		}
		out[f.Name()] = s
	}
	return out
}

// sortedNodeIDs returns the ids of set's nodes in ascending order (encoding
// helper; ids assigns each class a deterministic number).
func sortedNodeIDs(set map[*Node]bool, ids map[*Node]int) []int {
	out := make([]int, 0, len(set))
	for n := range set {
		if id, ok := ids[n]; ok {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
