package dsa

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
)

// valueNamed finds the instruction named name in f (as a value, for alias
// queries).
func valueNamed(t *testing.T, f *core.Function, name string) core.Value {
	t.Helper()
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if inst.Name() == name {
				return inst
			}
		}
	}
	t.Fatalf("no instruction named %%%s in %s", name, f.Name())
	return nil
}

func TestAliasDistinctAllocations(t *testing.T) {
	m, r := analyzeMod(t, `
internal void %f() {
entry:
	%a = alloca int
	%b = alloca int
	%h = malloc int
	store int 1, int* %a
	store int 2, int* %b
	store int 3, int* %h
	ret void
}
`)
	f := m.Func("f")
	a, b, h := valueNamed(t, f, "a"), valueNamed(t, f, "b"), valueNamed(t, f, "h")
	if got := r.Alias(a, b); got != NoAlias {
		t.Errorf("Alias(a,b) = %v, want no (distinct allocas)", got)
	}
	if got := r.Alias(a, h); got != NoAlias {
		t.Errorf("Alias(a,h) = %v, want no (stack vs fresh heap)", got)
	}
	if got := r.Alias(a, a); got != MustAlias {
		t.Errorf("Alias(a,a) = %v, want must", got)
	}
}

func TestAliasFieldDisambiguation(t *testing.T) {
	m, r := analyzeMod(t, `
%pair = type { int, int }

internal int %f() {
entry:
	%p = alloca %pair
	%x = getelementptr %pair* %p, long 0, ubyte 0
	%y = getelementptr %pair* %p, long 0, ubyte 1
	%x2 = getelementptr %pair* %p, long 0, ubyte 0
	store int 1, int* %x
	store int 2, int* %y
	%v = load int* %x2
	ret int %v
}
`)
	f := m.Func("f")
	p := valueNamed(t, f, "p")
	x, y, x2 := valueNamed(t, f, "x"), valueNamed(t, f, "y"), valueNamed(t, f, "x2")
	if got := r.Alias(x, y); got != NoAlias {
		t.Errorf("Alias(x,y) = %v, want no (disjoint fields of one object)", got)
	}
	if got := r.Alias(x, x2); got != MustAlias {
		t.Errorf("Alias(x,x2) = %v, want must (identical access paths)", got)
	}
	if got := r.Alias(x, p); got != MayAlias {
		t.Errorf("Alias(x,p) = %v, want may (containment)", got)
	}
}

func TestAliasVariableIndexIsMay(t *testing.T) {
	m, r := analyzeMod(t, `
internal int %f(long %i) {
entry:
	%a = alloca [8 x int]
	%p = getelementptr [8 x int]* %a, long 0, long %i
	%q = getelementptr [8 x int]* %a, long 0, long 3
	store int 1, int* %p
	%v = load int* %q
	ret int %v
}
`)
	f := m.Func("f")
	p, q := valueNamed(t, f, "p"), valueNamed(t, f, "q")
	if got := r.Alias(p, q); got != MayAlias {
		t.Errorf("Alias(p,q) = %v, want may (variable index)", got)
	}
}

// Satellite regression: a pointer laundered through an integer must stay
// may-alias with its source — a provenance-losing cast collapses to
// unknown, never to a false no-alias.
func TestAliasPtrIntRoundTripStaysMay(t *testing.T) {
	m, r := analyzeMod(t, `
internal int %f() {
entry:
	%a = alloca int
	%i = cast int* %a to long
	%p = cast long %i to int*
	store int 1, int* %p
	%v = load int* %a
	ret int %v
}
`)
	f := m.Func("f")
	a, p := valueNamed(t, f, "a"), valueNamed(t, f, "p")
	if got := r.Alias(p, a); got == NoAlias {
		t.Fatalf("Alias(p,a) = no: ptr→int→ptr round-trip lost the object")
	}
	n := r.NodeFor(p)
	if n == nil || !n.Unknown {
		t.Error("int→ptr materialization must be marked Unknown")
	}
}

func TestAliasLoadFromEscapedMemoryIsMay(t *testing.T) {
	// %g has external linkage: other code may store any pointer into it,
	// so a pointer loaded out of it may target anything — even a global
	// the loaded value never visibly flowed to.
	m, r := analyzeMod(t, `
%g = global int* null
%h = global int 7

internal int %f() {
entry:
	%p = load int** %g
	%v = load int* %p
	ret int %v
}
`)
	f := m.Func("f")
	p := valueNamed(t, f, "p")
	if got := r.Alias(p, m.Global("h")); got != MayAlias {
		t.Errorf("Alias(p,h) = %v, want may (p loaded from escaped memory)", got)
	}
}

func TestAliasNull(t *testing.T) {
	m, r := analyzeMod(t, `
%g = global int 0

internal void %f() {
entry:
	store int 1, int* %g
	ret void
}
`)
	null := core.NewNull(core.NewPointer(core.IntType))
	if got := r.Alias(null, m.Global("g")); got != NoAlias {
		t.Errorf("Alias(null,g) = %v, want no", got)
	}
}

func TestCallEffectsPrecision(t *testing.T) {
	m, r := analyzeMod(t, `
%g = global int 0
%h = global int 0

internal void %setg() {
entry:
	store int 1, int* %g
	ret void
}

internal void %caller() {
entry:
	%a = alloca int
	call void %setg()
	store int 2, int* %a
	ret void
}
`)
	setg, caller := m.Func("setg"), m.Func("caller")
	g, h := r.NodeFor(m.Global("g")), r.NodeFor(m.Global("h"))
	if !r.CallMayMod(setg, g) {
		t.Error("setg writes g; CallMayMod must say so")
	}
	if r.CallMayMod(setg, h) {
		t.Error("setg never touches h")
	}
	if !r.CallMayMod(caller, g) {
		t.Error("caller's transitive write to g lost")
	}
	a := r.NodeFor(valueNamed(t, caller, "a"))
	if r.CallMayMod(setg, a) {
		t.Error("setg cannot reach caller's frame")
	}
	if r.CallMayRef(setg, g) {
		t.Error("setg only writes g, never reads it")
	}
}

func TestFunctionSummaries(t *testing.T) {
	m, r := analyzeMod(t, `
%cache = internal global int* null

internal int* %mk() {
entry:
	%p = malloc int
	ret int* %p
}

internal void %writeArg(int* %p) {
entry:
	store int 1, int* %p
	ret void
}

internal void %stash(int* %p) {
entry:
	store int* %p, int** %cache
	ret void
}
`)
	_ = m
	if s := r.Summary("mk"); s == nil || !s.ReturnsFresh {
		t.Errorf("mk must summarize ReturnsFresh, got %+v", s)
	}
	if s := r.Summary("writeArg"); s == nil || !s.ArgMod[0] || s.ArgRef[0] || s.ArgEscapes[0] {
		t.Errorf("writeArg: want mod-only non-escaping arg, got %+v", s)
	}
	if s := r.Summary("stash"); s == nil || !s.ArgEscapes[0] {
		t.Errorf("stash stores its arg into a global; ArgEscapes lost: %+v", s)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := `
%pair = type { int, int }
%g = global int 0

internal int %f(int* %q) {
entry:
	%p = alloca %pair
	%x = getelementptr %pair* %p, long 0, ubyte 0
	%y = getelementptr %pair* %p, long 0, ubyte 1
	store int 1, int* %x
	store int 2, int* %y
	store int 3, int* %q
	%v = load int* %x
	ret int %v
}

internal int* %mk() {
entry:
	%h = malloc int
	ret int* %h
}
`
	m, r := analyzeMod(t, src)
	enc := r.Encode(m)
	if !bytes.Equal(enc, r.Encode(m)) {
		t.Fatal("encoding is not deterministic")
	}
	dec, err := Decode(enc, m)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !dec.Restored() {
		t.Error("decoded result must report Restored")
	}
	f := m.Func("f")
	pairs := [][2]core.Value{
		{valueNamed(t, f, "x"), valueNamed(t, f, "y")},
		{valueNamed(t, f, "x"), valueNamed(t, f, "p")},
		{valueNamed(t, f, "p"), m.Global("g")},
	}
	for _, pq := range pairs {
		if got, want := dec.Alias(pq[0], pq[1]), r.Alias(pq[0], pq[1]); got != want {
			t.Errorf("alias answer changed across round-trip: %v vs %v", got, want)
		}
	}
	if !reflect.DeepEqual(dec.summaries, r.summaries) {
		t.Errorf("summaries changed across round-trip:\n%+v\nvs\n%+v", dec.summaries, r.summaries)
	}
	if dec.Typed() != r.Typed() || dec.Untyped() != r.Untyped() {
		t.Error("typed/untyped counts changed across round-trip")
	}
	if dec.TypeReliable(core.IntType) {
		t.Error("restored results must never authorize layout changes")
	}

	// A mutated module must reject the stale encoding.
	m2, _ := analyzeMod(t, src+`
internal void %extra() {
entry:
	%a = alloca int
	store int 9, int* %a
	ret void
}
`)
	if _, err := Decode(enc, m2); err == nil {
		t.Fatal("decoding against a different module must fail")
	}
	if _, err := Decode(enc[:len(enc)/2], m); err == nil {
		t.Fatal("truncated encoding must fail")
	}
}
