package cluster

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/frontend/minic"
	"repro/internal/lifelong"
	"repro/internal/tooling"
)

const hotSrc = `
static int hotwork(int x) {
	int r = x;
	int i;
	for (i = 0; i < 3; i++) r = r * 2 + i;
	return r % 1000;
}
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 500; i++) acc = (acc + hotwork(i)) % 100000;
	return acc % 251;
}
`

// hotModule compiles hotSrc to the textual IR a client would POST, plus
// the canonical hash the cluster shards it by.
func hotModule(t *testing.T) (mod []byte, hash string) {
	t.Helper()
	m, err := minic.Compile("hot", hotSrc)
	if err != nil {
		t.Fatal(err)
	}
	mod = []byte(m.String())
	// Hash what the daemon will hash: it parses the POSTed text under the
	// name "request", and the module name is part of the canonical
	// encoding, so the client-side hash must use the same name.
	parsed, err := tooling.LoadModuleBytes("request", mod)
	if err != nil {
		t.Fatal(err)
	}
	h, err := bytecode.ModuleHash(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return mod, h
}

func launch(t *testing.T, nodes int) *LocalCluster {
	t.Helper()
	lc, err := LaunchLocal(LocalOptions{
		Nodes: nodes,
		Dir:   t.TempDir(),
		Lifelong: lifelong.Config{
			DisableReopt: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

var metricLineRe = regexp.MustCompile(`^([a-zA-Z0-9_]+)(\{[^}]*\})? ([0-9eE.+-]+)$`)

// scrapeMetrics fetches url's /metrics and returns each series as
// "name{labels}" -> value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		m := metricLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		out[m[1]+m[2]] += v
	}
	return out
}

// metricSum totals every series of one metric name across label sets.
func metricSum(metrics map[string]float64, name string) float64 {
	var sum float64
	for series, v := range metrics {
		if series == name || strings.HasPrefix(series, name+"{") {
			sum += v
		}
	}
	return sum
}

// TestClusterSmoke is the CI smoke scenario: a 3-node cluster compiles a
// module exactly once cluster-wide, repeats are cache hits with
// byte-identical artifacts, and killing the owning peer degrades to a
// recompile at a surviving peer — same bytes, no error surfaced to the
// client.
func TestClusterSmoke(t *testing.T) {
	lc := launch(t, 3)
	mod, hash := hotModule(t)
	owner := lc.Front.Ring().Owner(hash)

	r1, cold := post(t, lc.FrontURL()+"/compile?raw=1", mod)
	if r1.StatusCode != 200 || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold compile: status %d cache %q", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	if got := r1.Header.Get("X-Cluster-Peer"); got != owner {
		t.Fatalf("front routed to %s, ring owner is %s", got, owner)
	}
	for i := 0; i < 2; i++ {
		r, warm := post(t, lc.FrontURL()+"/compile?raw=1", mod)
		if r.StatusCode != 200 || r.Header.Get("X-Cache") != "hit" {
			t.Fatalf("repeat %d: status %d cache %q", i, r.StatusCode, r.Header.Get("X-Cache"))
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("repeat %d: artifact not byte-identical", i)
		}
	}

	// Exactly one pipeline execution across the whole cluster.
	var compiles float64
	ownerIdx := -1
	for i, n := range lc.Nodes {
		compiles += metricSum(scrapeMetrics(t, "http://"+n.Self()), "llvm_lifelong_compiles_total")
		if n.Self() == owner {
			ownerIdx = i
		}
	}
	if compiles != 1 {
		t.Fatalf("cluster-wide compiles = %v, want exactly 1", compiles)
	}

	// Kill the owner: the front must absorb the loss (mark down, retry a
	// survivor) and the survivor recompiles locally — fail-open, and still
	// byte-identical because the pipeline is deterministic.
	lc.StopNode(ownerIdx)
	r2, after := post(t, lc.FrontURL()+"/compile?raw=1", mod)
	if r2.StatusCode != 200 {
		t.Fatalf("post-kill compile: status %d body %s", r2.StatusCode, after)
	}
	if got := r2.Header.Get("X-Cluster-Peer"); got == owner {
		t.Fatalf("post-kill request still claims dead owner %s", got)
	}
	if !bytes.Equal(cold, after) {
		t.Fatal("post-kill artifact not byte-identical to pre-kill artifact")
	}
}

// TestClusterConcurrentSingleCompile: concurrent identical requests
// through the front must still cost one pipeline run cluster-wide — the
// owner's single-flight group and cache absorb the other seven.
func TestClusterConcurrentSingleCompile(t *testing.T) {
	lc := launch(t, 3)
	mod, _ := hotModule(t)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	bodies := make([][]byte, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(lc.FrontURL()+"/compile?raw=1", "application/octet-stream", bytes.NewReader(mod))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("client %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d artifact differs", i)
		}
	}
	var compiles float64
	for _, n := range lc.Nodes {
		compiles += metricSum(scrapeMetrics(t, "http://"+n.Self()), "llvm_lifelong_compiles_total")
	}
	if compiles != 1 {
		t.Fatalf("cluster-wide compiles = %v under %d concurrent clients, want exactly 1", compiles, clients)
	}
}

// TestClusterRemoteFetchThrough: an artifact compiled at its owner is
// fetched through — not recompiled — when a non-owner is asked for it,
// and the fetched copy then serves local hits.
func TestClusterRemoteFetchThrough(t *testing.T) {
	lc := launch(t, 3)
	mod, hash := hotModule(t)
	owner := lc.Front.Ring().Owner(hash)
	var ownerURL, otherURL string
	for _, n := range lc.Nodes {
		if n.Self() == owner {
			ownerURL = "http://" + n.Self()
		} else if otherURL == "" {
			otherURL = "http://" + n.Self()
		}
	}

	r1, cold := post(t, ownerURL+"/compile?raw=1", mod)
	if r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("owner compile: cache %q, want miss", r1.Header.Get("X-Cache"))
	}
	r2, remote := post(t, otherURL+"/compile?raw=1", mod)
	if r2.Header.Get("X-Cache") != "remote" {
		t.Fatalf("non-owner compile: cache %q, want remote (fetch-through)", r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cold, remote) {
		t.Fatal("fetched artifact not byte-identical to the owner's")
	}
	r3, local := post(t, otherURL+"/compile?raw=1", mod)
	if r3.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat at non-owner: cache %q, want local hit", r3.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cold, local) {
		t.Fatal("locally cached fetched artifact not byte-identical")
	}

	// Fetch-through ran once, against the owner, and no second pipeline
	// execution happened anywhere.
	var compiles, fetchHits float64
	for _, n := range lc.Nodes {
		m := scrapeMetrics(t, "http://"+n.Self())
		compiles += metricSum(m, "llvm_lifelong_compiles_total")
		fetchHits += m[fmt.Sprintf(`llvm_cluster_fetch_total{peer=%q,result="hit"}`, owner)]
	}
	if compiles != 1 {
		t.Fatalf("cluster-wide compiles = %v, want 1", compiles)
	}
	if fetchHits != 1 {
		t.Fatalf("fetch-through hits against owner = %v, want 1", fetchHits)
	}
}

// TestClusterProfileMergesToOwner: /run evidence lands at the module's
// owner no matter which node served the run, and the owner's epoch
// trajectory matches the same runs against a single standalone node.
func TestClusterProfileMergesToOwner(t *testing.T) {
	lc := launch(t, 3)
	mod, hash := hotModule(t)
	owner := lc.Front.Ring().Owner(hash)

	type runResp struct {
		ModuleHash    string `json:"module_hash"`
		Profiled      bool   `json:"profiled"`
		ProfileEpoch  int64  `json:"profile_epoch"`
		EpochAdvanced bool   `json:"epoch_advanced"`
	}
	wantEpochs := []int64{1, 2, 2}
	wantAdvanced := []bool{true, true, false}
	for i, n := range lc.Nodes {
		resp, body := post(t, "http://"+n.Self()+"/run", mod)
		if resp.StatusCode != 200 {
			t.Fatalf("run %d at %s: status %d: %s", i, n.Self(), resp.StatusCode, body)
		}
		var rr runResp
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("run %d: bad JSON: %v", i, err)
		}
		if !rr.Profiled || rr.ProfileEpoch != wantEpochs[i] || rr.EpochAdvanced != wantAdvanced[i] {
			t.Fatalf("run %d at %s: epoch %d advanced %v, want epoch %d advanced %v",
				i, n.Self(), rr.ProfileEpoch, rr.EpochAdvanced, wantEpochs[i], wantAdvanced[i])
		}
	}

	// All evidence accumulated at the owner; the non-owners kept none.
	var ownerNode *Node
	for _, n := range lc.Nodes {
		f, ok := n.Store().GetProfile(hash)
		if n.Self() == owner {
			ownerNode = n
			if !ok || f.Epoch != 2 {
				t.Fatalf("owner profile: ok=%v epoch=%v, want epoch 2", ok, f)
			}
		} else if ok {
			t.Fatalf("non-owner %s holds a local profile; counts should have been forwarded", n.Self())
		}
	}

	// Same runs against a standalone single node: identical epoch
	// trajectory and identical accumulated counts.
	st, err := lifelong.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	single := lifelong.NewServer(lifelong.Config{Store: st, DisableReopt: true})
	defer single.Close()
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/run", mod)
		if resp.StatusCode != 200 {
			t.Fatalf("single-node run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var rr runResp
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.ProfileEpoch != wantEpochs[i] || rr.EpochAdvanced != wantAdvanced[i] {
			t.Fatalf("single-node run %d: epoch %d advanced %v, want epoch %d advanced %v",
				i, rr.ProfileEpoch, rr.EpochAdvanced, wantEpochs[i], wantAdvanced[i])
		}
	}
	singleFile, ok := st.GetProfile(hash)
	if !ok {
		t.Fatal("single-node store has no profile")
	}
	clusterFile, _ := ownerNode.Store().GetProfile(hash)
	if singleFile.Epoch != clusterFile.Epoch {
		t.Fatalf("cluster epoch %d != single-node epoch %d", clusterFile.Epoch, singleFile.Epoch)
	}
	if !singleFile.Counts.Equal(&clusterFile.Counts) {
		t.Fatal("cluster-accumulated counts differ from single-node counts for identical runs")
	}
}

// TestClusterPeerLabelCardinality pins the /metrics cardinality bound:
// after real cluster traffic (including requests carrying arbitrary
// query strings), every peer-labeled series on every node and on the
// front names a configured peer — request data cannot mint label values.
func TestClusterPeerLabelCardinality(t *testing.T) {
	lc := launch(t, 3)
	mod, _ := hotModule(t)

	post(t, lc.FrontURL()+"/compile?raw=1", mod)
	for _, n := range lc.Nodes {
		post(t, "http://"+n.Self()+"/compile?raw=1", mod)
		post(t, "http://"+n.Self()+"/run", mod)
		// Hostile-ish traffic: bogus endpoints and params that must not
		// become label values.
		http.Get("http://" + n.Self() + "/cluster/artifact?module=evil&spec=std")
		http.Get("http://" + n.Self() + "/no/such/endpoint?peer=evil")
	}

	allowed := map[string]bool{}
	for _, p := range lc.Front.Ring().Peers() {
		allowed[p] = true
	}
	peerLabelRe := regexp.MustCompile(`peer="([^"]*)"`)
	check := func(base string) {
		for series := range scrapeMetrics(t, base) {
			for _, m := range peerLabelRe.FindAllStringSubmatch(series, -1) {
				if !allowed[m[1]] {
					t.Errorf("%s: series %s has peer label %q outside the configured list", base, series, m[1])
				}
			}
		}
	}
	for _, n := range lc.Nodes {
		check("http://" + n.Self())
	}
	check(lc.FrontURL())
}

// TestClusterGzipWire: the front and peers speak gzip on the wire — a
// gzip-compressed request body is accepted, and a client advertising
// Accept-Encoding: gzip gets a gzip response that decodes to the same
// artifact an identity client sees.
func TestClusterGzipWire(t *testing.T) {
	lc := launch(t, 3)
	mod, _ := hotModule(t)

	_, plain := post(t, lc.FrontURL()+"/compile?raw=1", mod)

	var gzBody bytes.Buffer
	zw := gzip.NewWriter(&gzBody)
	zw.Write(mod)
	zw.Close()
	req, err := http.NewRequest(http.MethodPost, lc.FrontURL()+"/compile?raw=1", &gzBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("gzip round-trip: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("response Content-Encoding %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, plain) {
		t.Fatal("gzip-encoded artifact does not decode to the identity response")
	}
}

// TestClusterHealthRecovers: a peer marked down by a failed request comes
// back once probes see it again. Uses a short probe interval.
func TestClusterHealthRecovers(t *testing.T) {
	h := newHealth([]string{"a", "b"}, "", 10*time.Millisecond, func(peer string) bool { return true })
	defer h.Close()
	h.MarkDown("a")
	if h.Up("a") {
		t.Fatal("MarkDown did not take")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !h.Up("a") {
		if time.Now().After(deadline) {
			t.Fatal("probe never recovered peer a")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unknown peers are never tracked: the liveness map is bounded by the
	// configured membership.
	h.MarkUp("evil")
	if h.Up("evil") {
		t.Fatal("unknown peer entered the liveness map")
	}
}
