package cluster

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"time"

	"repro/internal/lifelong"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/tooling"
)

// Config parameterizes one cluster node.
type Config struct {
	// Self is this node's address (host:port) and must appear in Peers.
	Self string
	// Peers is the full cluster membership, identical on every node (any
	// order — the ring sorts it). Peer addresses double as metric label
	// values, so the label space is bounded by this list.
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe period (0 = 2s).
	ProbeInterval time.Duration
	// PeerTimeout bounds each peer HTTP call — fetch-through, profile
	// forward, probe (0 = 5s).
	PeerTimeout time.Duration
	// Lifelong configures the wrapped single-node daemon. Its Store is
	// required; its RemoteFetch, ProfileSink, and ExtraHandlers fields
	// are owned by the cluster layer and must be left unset.
	Lifelong lifelong.Config
}

// Node is one llvm-serve cluster peer: a full lifelong daemon (it serves
// /compile, /run, /check, /stats, /metrics exactly like a standalone
// node) plus the cluster surface — /cluster/artifact, /cluster/profile,
// /cluster/health, /cluster/peers — and the two owner-directed flows:
// artifact fetch-through on local miss and profile forwarding on /run.
type Node struct {
	cfg     Config
	ring    *Ring
	health  *Health
	srv     *lifelong.Server
	store   *lifelong.Store
	metrics *obs.Registry
	client  *http.Client
	maxBody int64
	start   time.Time

	// Per-peer counters, pre-registered from the configured peer list
	// only: request data can never mint a new label value (the
	// label-cardinality bound /metrics relies on).
	fetchHit, fetchMiss, fetchErr map[string]*obs.Counter
	forwardOK, forwardErr         map[string]*obs.Counter
	cOwnerDown                    *obs.Counter
}

var moduleHashRe = regexp.MustCompile(`^[0-9a-f]{64}$`)

// NewNode builds a cluster node and starts its health prober and the
// wrapped lifelong daemon (callers must Close it).
func NewNode(cfg Config) (*Node, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	self := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", cfg.Self, ring.Peers())
	}
	if cfg.Lifelong.Store == nil {
		return nil, fmt.Errorf("cluster: node needs a lifelong store")
	}
	if cfg.Lifelong.RemoteFetch != nil || cfg.Lifelong.ProfileSink != nil || cfg.Lifelong.ExtraHandlers != nil {
		return nil, fmt.Errorf("cluster: Lifelong.RemoteFetch/ProfileSink/ExtraHandlers are owned by the cluster layer")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 5 * time.Second
	}
	n := &Node{
		cfg:     cfg,
		ring:    ring,
		store:   cfg.Lifelong.Store,
		client:  &http.Client{Timeout: cfg.PeerTimeout},
		maxBody: cfg.Lifelong.MaxBody,
		start:   time.Now(),
	}
	if n.maxBody <= 0 {
		n.maxBody = tooling.MaxInputSize
	}
	n.metrics = cfg.Lifelong.Metrics
	if n.metrics == nil {
		n.metrics = obs.NewRegistry()
	}
	n.registerMetrics()
	n.health = newHealth(ring.Peers(), cfg.Self, cfg.ProbeInterval, httpProbe(n.client))

	lcfg := cfg.Lifelong
	lcfg.Metrics = n.metrics
	lcfg.RemoteFetch = n.fetchThrough
	lcfg.ProfileSink = n.forwardProfile
	lcfg.ExtraHandlers = map[string]http.Handler{
		"/cluster/artifact": http.HandlerFunc(n.handleArtifact),
		"/cluster/profile":  http.HandlerFunc(n.handleProfile),
		"/cluster/health":   http.HandlerFunc(n.handleHealth),
		"/cluster/peers":    http.HandlerFunc(n.handlePeers),
	}
	n.srv = lifelong.NewServer(lcfg)
	return n, nil
}

// registerMetrics pre-creates every per-peer series from the configured
// peer list. llvm_cluster_fetch_total counts fetch-through attempts by
// owning peer and outcome; llvm_cluster_profile_forward_total the profile
// flows; llvm_cluster_peer_up the health view; and
// llvm_cluster_owner_down_total the fail-open local compiles taken
// because the owner was unreachable.
func (n *Node) registerMetrics() {
	n.fetchHit = map[string]*obs.Counter{}
	n.fetchMiss = map[string]*obs.Counter{}
	n.fetchErr = map[string]*obs.Counter{}
	n.forwardOK = map[string]*obs.Counter{}
	n.forwardErr = map[string]*obs.Counter{}
	for _, p := range n.ring.Peers() {
		p := p
		n.fetchHit[p] = n.metrics.Counter("llvm_cluster_fetch_total", "peer", p, "result", "hit")
		n.fetchMiss[p] = n.metrics.Counter("llvm_cluster_fetch_total", "peer", p, "result", "miss")
		n.fetchErr[p] = n.metrics.Counter("llvm_cluster_fetch_total", "peer", p, "result", "error")
		n.forwardOK[p] = n.metrics.Counter("llvm_cluster_profile_forward_total", "peer", p, "result", "ok")
		n.forwardErr[p] = n.metrics.Counter("llvm_cluster_profile_forward_total", "peer", p, "result", "error")
		n.metrics.GaugeFunc("llvm_cluster_peer_up", func() float64 {
			if n.health.Up(p) {
				return 1
			}
			return 0
		}, "peer", p)
	}
	n.cOwnerDown = n.metrics.Counter("llvm_cluster_owner_down_total")
	n.metrics.GaugeFunc("llvm_cluster_peers", func() float64 { return float64(len(n.ring.Peers())) })
}

// Handler returns the node's full HTTP surface: the lifelong daemon's
// endpoints (observability middleware included) plus /cluster/*.
func (n *Node) Handler() http.Handler { return n.srv.Handler() }

// Server exposes the wrapped lifelong daemon (tests, -reopt-now).
func (n *Node) Server() *lifelong.Server { return n.srv }

// Store exposes the node's persistent store (tests).
func (n *Node) Store() *lifelong.Store { return n.store }

// Ring exposes the node's placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's peer address.
func (n *Node) Self() string { return n.cfg.Self }

// Metrics returns the node's registry (shared with the lifelong daemon).
func (n *Node) Metrics() *obs.Registry { return n.metrics }

// Close stops the health prober and the wrapped daemon.
func (n *Node) Close() {
	n.health.Close()
	n.srv.Close()
}

// ---------------------------------------------------------------------------
// Owner-directed flows

// fetchThrough implements lifelong.RemoteFetch: on a local artifact miss,
// ask the peer owning this hash range for its best artifact. Only the
// owner is asked — successors don't compile for ranges they don't own, so
// asking them would just add misses — and every failure path returns
// ok=false, degrading to a local compile. ctx carries the request's trace
// context across the hop (the owner's /cluster/artifact span parents
// under this node's compile span) and its flight-recorder record, which
// gets one hop entry per attempt.
func (n *Node) fetchThrough(ctx context.Context, modHash, spec string) ([]byte, int64, bool) {
	rec := obs.RecordFromContext(ctx)
	owner := n.ring.Owner(modHash)
	if owner == n.cfg.Self {
		return nil, 0, false
	}
	if !n.health.Up(owner) {
		n.cOwnerDown.Inc()
		rec.AddHop(owner, "fetch-through", "down", 0)
		return nil, 0, false
	}
	t0 := time.Now()
	u := fmt.Sprintf("http://%s/cluster/artifact?module=%s&spec=%s",
		owner, url.QueryEscape(modHash), url.QueryEscape(spec))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, false
	}
	obs.PropagateHeaders(ctx, req.Header)
	resp, err := n.client.Do(req)
	if err != nil {
		n.fetchErr[owner].Inc()
		n.health.MarkDown(owner)
		rec.AddHop(owner, "fetch-through", "error", time.Since(t0))
		return nil, 0, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := readLimited(resp, n.maxBody)
		if err != nil {
			n.fetchErr[owner].Inc()
			rec.AddHop(owner, "fetch-through", "error", time.Since(t0))
			return nil, 0, false
		}
		epoch, _ := strconv.ParseInt(resp.Header.Get("X-Artifact-Epoch"), 10, 64)
		n.fetchHit[owner].Inc()
		n.health.MarkUp(owner)
		rec.AddHop(owner, "fetch-through", "hit", time.Since(t0))
		return data, epoch, true
	case resp.StatusCode == http.StatusNotFound:
		// The owner answered but has nothing yet: a healthy miss.
		n.fetchMiss[owner].Inc()
		n.health.MarkUp(owner)
		rec.AddHop(owner, "fetch-through", "miss", time.Since(t0))
		return nil, 0, false
	default:
		n.fetchErr[owner].Inc()
		if resp.StatusCode >= 500 {
			n.health.MarkDown(owner)
		}
		rec.AddHop(owner, "fetch-through", "error", time.Since(t0))
		return nil, 0, false
	}
}

// forwardProfile implements lifelong.Config.ProfileSink: run counts for a
// module another peer owns are merged into the owner's store, so its
// epoch bookkeeping accumulates the whole cluster's heat and its idle
// reoptimizer sees every run. handled=false (owner == self, owner down,
// transport failure) falls back to the local merge — evidence is never
// dropped.
func (n *Node) forwardProfile(ctx context.Context, modHash string, c *profile.Counts) (int64, bool, bool) {
	rec := obs.RecordFromContext(ctx)
	owner := n.ring.Owner(modHash)
	if owner == n.cfg.Self || !n.health.Up(owner) {
		return 0, false, false
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return 0, false, false
	}
	t0 := time.Now()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(payload)
	gz.Close()
	u := fmt.Sprintf("http://%s/cluster/profile?module=%s", owner, url.QueryEscape(modHash))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &buf)
	if err != nil {
		return 0, false, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	obs.PropagateHeaders(ctx, req.Header)
	resp, err := n.client.Do(req)
	if err != nil {
		n.forwardErr[owner].Inc()
		n.health.MarkDown(owner)
		rec.AddHop(owner, "profile-forward", "error", time.Since(t0))
		return 0, false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.forwardErr[owner].Inc()
		if resp.StatusCode >= 500 {
			n.health.MarkDown(owner)
		}
		rec.AddHop(owner, "profile-forward", "error", time.Since(t0))
		return 0, false, false
	}
	var pr profileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		n.forwardErr[owner].Inc()
		rec.AddHop(owner, "profile-forward", "error", time.Since(t0))
		return 0, false, false
	}
	n.forwardOK[owner].Inc()
	n.health.MarkUp(owner)
	rec.AddHop(owner, "profile-forward", "ok", time.Since(t0))
	return pr.ProfileEpoch, pr.EpochAdvanced, true
}

// ---------------------------------------------------------------------------
// Cluster endpoints

// handleArtifact serves the peer fetch-through protocol: a read-only
// probe of this node's store for its best artifact under (module, spec) —
// current-profile-epoch first, epoch 0 as fallback, 404 when neither
// exists. It never compiles: fetch-through must not amplify one client
// request into cascaded pipeline runs.
func (n *Node) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		clusterError(w, http.StatusMethodNotAllowed, "GET with ?module=HASH&spec=SPEC")
		return
	}
	modHash := r.URL.Query().Get("module")
	if !moduleHashRe.MatchString(modHash) {
		clusterError(w, http.StatusBadRequest, "module must be a 64-char lowercase hex SHA-256")
		return
	}
	spec := r.URL.Query().Get("spec")
	if spec == "" {
		clusterError(w, http.StatusBadRequest, "missing spec parameter")
		return
	}
	var epoch int64
	if f, ok := n.store.GetProfile(modHash); ok {
		epoch = f.Epoch
	}
	data, ok := []byte(nil), false
	servedEpoch := int64(0)
	if epoch > 0 {
		if data, ok = n.store.GetArtifact(modHash, spec, epoch); ok {
			servedEpoch = epoch
		}
	}
	if !ok {
		data, ok = n.store.GetArtifact(modHash, spec, 0)
	}
	if !ok {
		clusterError(w, http.StatusNotFound, "no artifact for %s under %q", modHash[:12], spec)
		return
	}
	w, finish := lifelong.Compress(w, r)
	defer finish()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Module-Hash", modHash)
	w.Header().Set("X-Artifact-Epoch", fmt.Sprint(servedEpoch))
	w.Write(data)
}

// profileResponse is /cluster/profile's JSON shape, mirroring the /run
// response's profile fields.
type profileResponse struct {
	ModuleHash    string `json:"module_hash"`
	ProfileEpoch  int64  `json:"profile_epoch"`
	EpochAdvanced bool   `json:"epoch_advanced"`
}

// handleProfile accepts forwarded run counts from a peer and merges them
// into this node's store under the standard profile.File Merge semantics
// — the same path local /run merges take, so cluster-wide and single-node
// accumulation are literally the same algebra.
func (n *Node) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		clusterError(w, http.StatusMethodNotAllowed, "POST profile counts as JSON")
		return
	}
	modHash := r.URL.Query().Get("module")
	if !moduleHashRe.MatchString(modHash) {
		clusterError(w, http.StatusBadRequest, "module must be a 64-char lowercase hex SHA-256")
		return
	}
	body, err := lifelong.ReadBody(r, n.maxBody)
	if err != nil {
		clusterError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var c profile.Counts
	if err := json.Unmarshal(body, &c); err != nil {
		clusterError(w, http.StatusUnprocessableEntity, "parsing counts: %v", err)
		return
	}
	var total int64
	for fn, per := range c.Funcs {
		for _, v := range per {
			if v < 0 {
				clusterError(w, http.StatusUnprocessableEntity, "negative count in %%%s", fn)
				return
			}
			total += v
		}
	}
	if total != c.Total || total == 0 {
		clusterError(w, http.StatusUnprocessableEntity, "total %d does not match summed counts %d (or is zero)", c.Total, total)
		return
	}
	f, bumped, err := n.store.MergeProfile(modHash, &c)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, "merging profile: %v", err)
		return
	}
	clusterJSON(w, http.StatusOK, profileResponse{
		ModuleHash:    modHash,
		ProfileEpoch:  f.Epoch,
		EpochAdvanced: bumped,
	})
}

// healthResponse is /cluster/health's JSON shape.
type healthResponse struct {
	Self          string  `json:"self"`
	Role          string  `json:"role"`
	Peers         int     `json:"peers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, healthResponse{
		Self:          n.cfg.Self,
		Role:          "node",
		Peers:         len(n.ring.Peers()),
		UptimeSeconds: time.Since(n.start).Seconds(),
	})
}

// peersResponse is /cluster/peers's JSON shape: membership, ring shape,
// and this node's liveness view of each peer.
type peersResponse struct {
	Self   string          `json:"self"`
	Role   string          `json:"role"`
	VNodes int             `json:"vnodes"`
	Peers  []string        `json:"peers"`
	Up     map[string]bool `json:"up"`
}

func (n *Node) handlePeers(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, peersResponse{
		Self:   n.cfg.Self,
		Role:   "node",
		VNodes: n.ring.VNodes(),
		Peers:  n.ring.Peers(),
		Up:     n.health.Snapshot(),
	})
}

// ---------------------------------------------------------------------------
// Shared HTTP helpers

func clusterError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	clusterJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func clusterJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(v)
}

// readLimited reads at most max bytes from a peer response, erroring on
// anything larger (a peer, however trusted, must not be able to balloon
// this node's memory).
func readLimited(resp *http.Response, max int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("cluster: peer response exceeds %d bytes", max)
	}
	return data, nil
}
