package cluster

// Tests for the cluster's distributed-tracing story: one request entering
// at the front produces spans in at least two processes under one trace
// ID, and the merged Perfetto trace carries the full ancestry chain —
// front request span → owner request span → compile span — via the
// trace_id/span_id/parent_id args every distributed span exports.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/lifelong"
)

// tracedEvent is the span shape the merge emits, as the tests read it.
type tracedEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	PID   int               `json:"pid"`
	Args  map[string]string `json:"args"`
}

type tracedFile struct {
	TraceEvents []tracedEvent `json:"traceEvents"`
}

// launchTraced is launch with per-process tracers installed.
func launchTraced(t *testing.T, nodes int) *LocalCluster {
	t.Helper()
	lc, err := LaunchLocal(LocalOptions{
		Nodes: nodes,
		Dir:   t.TempDir(),
		Trace: true,
		Lifelong: lifelong.Config{
			DisableReopt: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

// mergedSpans exports the cluster's merged trace filtered to traceID and
// indexes the spans by span_id.
func mergedSpans(t *testing.T, lc *LocalCluster, traceID string) (spans map[string]tracedEvent, all []tracedEvent) {
	t.Helper()
	var buf bytes.Buffer
	if err := lc.MergedTrace(&buf, traceID); err != nil {
		t.Fatal(err)
	}
	var f tracedFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	spans = map[string]tracedEvent{}
	for _, ev := range f.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.Args["trace_id"] != traceID {
			t.Fatalf("trace filter leaked a span of trace %q: %+v", ev.Args["trace_id"], ev)
		}
		if id := ev.Args["span_id"]; id != "" {
			spans[id] = ev
		}
		all = append(all, ev)
	}
	return spans, all
}

// ancestorOf reports whether span a is an ancestor of span b via
// parent_id links within the indexed spans.
func ancestorOf(spans map[string]tracedEvent, a, b tracedEvent) bool {
	cur := b
	for depth := 0; depth < 32; depth++ {
		parent := cur.Args["parent_id"]
		if parent == "" {
			return false
		}
		if parent == a.Args["span_id"] {
			return true
		}
		next, ok := spans[parent]
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

// TestClusterMergedTraceAncestry pins the tentpole acceptance criterion:
// a cold /compile through the front yields one merged trace in which the
// front's request span is an ancestor of the owning node's compile span,
// with spans from at least two distinct processes under one trace ID.
func TestClusterMergedTraceAncestry(t *testing.T) {
	lc := launchTraced(t, 3)
	mod, _ := hotModule(t)

	resp, body := post(t, lc.FrontURL()+"/compile?raw=1", mod)
	if resp.StatusCode != 200 {
		t.Fatalf("cold compile via front: %d: %s", resp.StatusCode, body)
	}
	trace := resp.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("front response has no X-Trace-Id")
	}

	spans, all := mergedSpans(t, lc, trace)
	if len(all) == 0 {
		t.Fatal("merged trace is empty for the request's trace ID")
	}

	// Identify the chain's links: the front's request span is the only
	// root (no parent); the owner's request span and compile span follow.
	var front, ownerReq, compile tracedEvent
	for _, ev := range all {
		switch {
		case ev.Cat == "request" && ev.Args["parent_id"] == "":
			if front.Name != "" {
				t.Fatalf("two root spans in one trace: %+v and %+v", front, ev)
			}
			front = ev
		case ev.Cat == "request":
			ownerReq = ev
		case ev.Name == "compile":
			compile = ev
		}
	}
	if front.Name != "/compile" {
		t.Fatalf("no front root span; spans: %+v", all)
	}
	if ownerReq.Name != "/compile" {
		t.Fatalf("no owner request span; spans: %+v", all)
	}
	if compile.Name == "" {
		t.Fatalf("no compile span; spans: %+v", all)
	}

	// The ancestry chain crosses the process boundary: front request →
	// owner request → compile.
	if ownerReq.Args["parent_id"] != front.Args["span_id"] {
		t.Errorf("owner request parents under %q, want the front span %q",
			ownerReq.Args["parent_id"], front.Args["span_id"])
	}
	if !ancestorOf(spans, ownerReq, compile) {
		t.Errorf("owner request span is not an ancestor of the compile span:\nreq %+v\ncompile %+v", ownerReq, compile)
	}
	if !ancestorOf(spans, front, compile) {
		t.Errorf("front span is not an ancestor of the compile span across processes")
	}

	// Spans from at least two distinct processes under one trace ID, and
	// the merged timeline orders the front's arrival before the owner's.
	pids := map[int]bool{}
	for _, ev := range all {
		pids[ev.PID] = true
	}
	if len(pids) < 2 {
		t.Errorf("merged trace covers %d process(es), want >= 2", len(pids))
	}
	if front.PID == ownerReq.PID {
		t.Errorf("front and owner spans share pid %d; merge lost the process split", front.PID)
	}
	if ownerReq.TS < front.TS {
		t.Errorf("owner request (ts %d) precedes the front request (ts %d) after epoch alignment",
			ownerReq.TS, front.TS)
	}
}

// TestClusterFetchThroughTraceCrossesProcesses pins the other
// cross-process hop: a /compile at a non-owner fetches the artifact
// through from the owner, and the owner's /cluster/artifact request span
// parents under the non-owner's compile span in the merged trace.
func TestClusterFetchThroughTraceCrossesProcesses(t *testing.T) {
	lc := launchTraced(t, 3)
	mod, hash := hotModule(t)
	owner := lc.Front.Ring().Owner(hash)
	var ownerURL, otherURL string
	for _, n := range lc.Nodes {
		if n.Self() == owner {
			ownerURL = "http://" + n.Self()
		} else if otherURL == "" {
			otherURL = "http://" + n.Self()
		}
	}

	if r, _ := post(t, ownerURL+"/compile?raw=1", mod); r.Header.Get("X-Cache") != "miss" {
		t.Fatalf("owner compile: cache %q, want miss", r.Header.Get("X-Cache"))
	}
	r2, _ := post(t, otherURL+"/compile?raw=1", mod)
	if r2.Header.Get("X-Cache") != "remote" {
		t.Fatalf("non-owner compile: cache %q, want remote", r2.Header.Get("X-Cache"))
	}
	trace := r2.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("fetch-through response has no X-Trace-Id")
	}

	spans, all := mergedSpans(t, lc, trace)
	var compile, artifact tracedEvent
	for _, ev := range all {
		switch ev.Name {
		case "compile":
			compile = ev
		case "/cluster/artifact":
			artifact = ev
		}
	}
	if compile.Name == "" || artifact.Name == "" {
		t.Fatalf("merged trace missing compile or artifact span: %+v", all)
	}
	if artifact.Args["parent_id"] != compile.Args["span_id"] {
		t.Errorf("owner artifact span parents under %q, want the compile span %q",
			artifact.Args["parent_id"], compile.Args["span_id"])
	}
	if artifact.PID == compile.PID {
		t.Errorf("artifact and compile spans share pid %d, want two processes", artifact.PID)
	}
	if !ancestorOf(spans, compile, artifact) {
		t.Error("compile span is not an ancestor of the owner's artifact span")
	}
}
