package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/lifelong"
	"repro/internal/obs"
)

// LocalCluster is an in-process cluster: N full nodes plus one front, each
// on its own real loopback listener. Tests and llvm-bench use it to
// exercise the genuine wire protocol — ring routing, fetch-through, gzip,
// retry-next-peer — without external processes. StopNode kills a peer
// mid-flight to exercise the failure paths.
type LocalCluster struct {
	Nodes   []*Node
	Servers []*http.Server
	Front   *Front
	FrontLn net.Listener

	frontSrv  *http.Server
	listeners []net.Listener
	stopped   []bool
}

// LocalOptions shapes LaunchLocal.
type LocalOptions struct {
	// Nodes is the peer count (0 = 3).
	Nodes int
	// Dir is the parent directory for the per-node stores (required).
	Dir string
	// VNodes overrides the ring's virtual-node count (0 = DefaultVNodes).
	VNodes int
	// ProbeInterval overrides the health-probe period (0 = 200ms — local
	// clusters are for tests and benchmarks, so recover fast).
	ProbeInterval time.Duration
	// StoreBytes caps each node's store (0 = 256 MiB).
	StoreBytes int64
	// Lifelong seeds every node's daemon config; Store, Metrics, and the
	// cluster-owned hook fields are set per node by LaunchLocal.
	Lifelong lifelong.Config
	// Trace gives every node and the front its own obs.Tracer, labeled
	// with a distinct process ID and name, so MergedTrace can assemble the
	// whole cluster's spans into one Perfetto timeline.
	Trace bool
}

// LaunchLocal starts an in-process cluster. Listeners are bound first so
// every node learns the full membership (real 127.0.0.1:port addresses)
// before any node starts. Callers must Close the result.
func LaunchLocal(opts LocalOptions) (*LocalCluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("cluster: LaunchLocal needs a store directory")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 200 * time.Millisecond
	}
	if opts.StoreBytes <= 0 {
		opts.StoreBytes = 256 << 20
	}

	lc := &LocalCluster{}
	ok := false
	defer func() {
		if !ok {
			lc.Close()
		}
	}()

	// Bind all node listeners up front: the peer list must be complete
	// before the first ring is built.
	peers := make([]string, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lc.listeners = append(lc.listeners, ln)
		peers[i] = ln.Addr().String()
	}

	for i := 0; i < opts.Nodes; i++ {
		store, err := lifelong.Open(filepath.Join(opts.Dir, fmt.Sprintf("node%d", i)), opts.StoreBytes)
		if err != nil {
			return nil, err
		}
		ncfg := opts.Lifelong
		ncfg.Store = store
		ncfg.Metrics = nil
		if opts.Trace {
			tr := obs.NewTracer()
			tr.SetProcess(i+1, fmt.Sprintf("node%d %s", i, peers[i]))
			ncfg.Tracer = tr
		}
		node, err := NewNode(Config{
			Self:          peers[i],
			Peers:         peers,
			VNodes:        opts.VNodes,
			ProbeInterval: opts.ProbeInterval,
			Lifelong:      ncfg,
		})
		if err != nil {
			return nil, err
		}
		lc.Nodes = append(lc.Nodes, node)
		srv := &http.Server{Handler: node.Handler()}
		lc.Servers = append(lc.Servers, srv)
		lc.stopped = append(lc.stopped, false)
		go srv.Serve(lc.listeners[i])
	}

	fcfg := FrontConfig{
		Peers:         peers,
		VNodes:        opts.VNodes,
		ProbeInterval: opts.ProbeInterval,
		MaxBody:       opts.Lifelong.MaxBody,
	}
	if opts.Trace {
		tr := obs.NewTracer()
		tr.SetProcess(opts.Nodes+1, "front")
		fcfg.Tracer = tr
	}
	front, err := NewFront(fcfg)
	if err != nil {
		return nil, err
	}
	lc.Front = front
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lc.FrontLn = ln
	lc.frontSrv = &http.Server{Handler: front.Handler()}
	go lc.frontSrv.Serve(ln)

	ok = true
	return lc, nil
}

// MergedTrace exports every process's tracer (launched with Trace: true)
// and merges them into one Chrome trace-event file on w — the front's
// request span and each node's request/compile/pass spans on one aligned
// timeline. traceID, when non-empty, filters to that one request tree.
func (lc *LocalCluster) MergedTrace(w io.Writer, traceID string) error {
	var files [][]byte
	collect := func(tr *obs.Tracer) error {
		if tr == nil {
			return nil
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			return err
		}
		files = append(files, buf.Bytes())
		return nil
	}
	for _, n := range lc.Nodes {
		if err := collect(n.cfg.Lifelong.Tracer); err != nil {
			return err
		}
	}
	if lc.Front != nil {
		if err := collect(lc.Front.cfg.Tracer); err != nil {
			return err
		}
	}
	return obs.MergeTraces(w, traceID, files...)
}

// NodeURLs returns each node's base URL in launch order.
func (lc *LocalCluster) NodeURLs() []string {
	out := make([]string, len(lc.Nodes))
	for i, n := range lc.Nodes {
		out[i] = "http://" + n.Self()
	}
	return out
}

// FrontURL returns the front-end's base URL.
func (lc *LocalCluster) FrontURL() string {
	return "http://" + lc.FrontLn.Addr().String()
}

// StopNode kills node i's listener and daemon, simulating a peer crash.
// The address stays in every ring (membership is static); routing must
// absorb the loss via health marking and retry.
func (lc *LocalCluster) StopNode(i int) {
	if i < 0 || i >= len(lc.Nodes) || lc.stopped[i] {
		return
	}
	lc.stopped[i] = true
	lc.Servers[i].Close()
	lc.Nodes[i].Close()
}

// Close stops the front and every still-running node.
func (lc *LocalCluster) Close() {
	if lc.frontSrv != nil {
		lc.frontSrv.Close()
	}
	if lc.Front != nil {
		lc.Front.Close()
	}
	for i := range lc.Nodes {
		lc.StopNode(i)
	}
	// Listeners not yet owned by a server (partial launch) still need
	// closing.
	for i, ln := range lc.listeners {
		if i >= len(lc.Servers) {
			ln.Close()
		}
	}
	if lc.FrontLn != nil && lc.frontSrv == nil {
		lc.FrontLn.Close()
	}
}
