package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicPlacement: every node must route identically, so
// rings built from the same membership — in any order, with duplicates —
// agree on every key.
func TestRingDeterministicPlacement(t *testing.T) {
	a, err := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:3", "n1:1", "n2:2", "n1:1", " n3:3 "}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", a.VNodes(), DefaultVNodes)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("module-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owners differ across equivalent rings (%s vs %s)",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingOrderedIsOwnerFirstAndComplete: Ordered is the retry sequence —
// it must start at the owner and visit every distinct peer exactly once.
func TestRingOrderedIsOwnerFirstAndComplete(t *testing.T) {
	r, err := NewRing([]string{"n1:1", "n2:2", "n3:3", "n4:4"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("module-%d", i)
		ord := r.Ordered(key)
		if len(ord) != 4 {
			t.Fatalf("key %q: Ordered returned %d peers, want 4", key, len(ord))
		}
		if ord[0] != r.Owner(key) {
			t.Fatalf("key %q: Ordered[0] = %s, Owner = %s", key, ord[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, p := range ord {
			if seen[p] {
				t.Fatalf("key %q: Ordered repeats peer %s", key, p)
			}
			seen[p] = true
		}
	}
}

// TestRingBalance: with the default virtual-node count, ownership over a
// large keyspace should be roughly uniform — no peer starved, none
// dominant. The bounds are loose (hashing, not striping) but catch a
// broken ring that funnels everything to one peer.
func TestRingBalance(t *testing.T) {
	peers := []string{"n1:1", "n2:2", "n3:3"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 9000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("module-%d", i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of the keyspace (counts %v), outside [15%%, 55%%]",
				p, share*100, counts)
		}
	}
}

// TestRingRejectsEmpty: a ring needs at least one peer.
func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list should be rejected")
	}
	if _, err := NewRing([]string{" ", ""}, 0); err == nil {
		t.Fatal("blank-only peer list should be rejected")
	}
}
