package cluster

import (
	"net/http"
	"sync"
	"time"
)

// Health tracks peer liveness. Peers start optimistically up (so the
// first request tries the owner instead of waiting a probe period), a
// background prober corrects the view every interval, and request paths
// report failures reactively (MarkDown) so a dead peer stops receiving
// traffic before the next probe tick. All of it is advisory: routing
// fails open, a "down" peer is merely tried last, and a "up" peer that
// refuses a connection is retried elsewhere.
type Health struct {
	mu sync.Mutex
	up map[string]bool

	stop chan struct{}
	done chan struct{}
}

// newHealth starts a prober over peers (excluding self — a node never
// probes itself) with the given period. probe reports one peer's
// liveness; it must be safe for concurrent use.
func newHealth(peers []string, self string, interval time.Duration, probe func(peer string) bool) *Health {
	h := &Health{
		up:   map[string]bool{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var probed []string
	for _, p := range peers {
		h.up[p] = true
		if p != self {
			probed = append(probed, p)
		}
	}
	go func() {
		defer close(h.done)
		if probe == nil || len(probed) == 0 || interval <= 0 {
			return
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
			}
			for _, p := range probed {
				if probe(p) {
					h.MarkUp(p)
				} else {
					h.MarkDown(p)
				}
			}
		}
	}()
	return h
}

// Close stops the prober and waits for it to exit.
func (h *Health) Close() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// Up reports whether peer is believed alive (unknown peers are down).
func (h *Health) Up(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.up[peer]
}

// MarkUp records a successful contact with peer.
func (h *Health) MarkUp(peer string) {
	h.mu.Lock()
	if _, known := h.up[peer]; known {
		h.up[peer] = true
	}
	h.mu.Unlock()
}

// MarkDown records a failed contact with peer.
func (h *Health) MarkDown(peer string) {
	h.mu.Lock()
	if _, known := h.up[peer]; known {
		h.up[peer] = false
	}
	h.mu.Unlock()
}

// Snapshot returns the current liveness view, keyed by peer.
func (h *Health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.up))
	for p, u := range h.up {
		out[p] = u
	}
	return out
}

// httpProbe builds the standard liveness probe: GET /cluster/health with
// a short budget; any 200 counts as alive.
func httpProbe(client *http.Client) func(peer string) bool {
	return func(peer string) bool {
		resp, err := client.Get("http://" + peer + "/cluster/health")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
}
