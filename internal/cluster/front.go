package cluster

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/bytecode"
	"repro/internal/lifelong"
	"repro/internal/obs"
	"repro/internal/tooling"
)

// FrontConfig parameterizes the thin front-end.
type FrontConfig struct {
	// Peers is the cluster membership the front routes over (identical to
	// the nodes' lists).
	Peers []string
	// VNodes must match the nodes' ring configuration (0 = DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe period (0 = 2s).
	ProbeInterval time.Duration
	// PeerTimeout bounds each forwarded request (0 = 30s — forwarded
	// compiles do real pass work at the peer).
	PeerTimeout time.Duration
	// MaxBody caps request size (0 = tooling.MaxInputSize).
	MaxBody int64
	// Metrics is the front's registry (nil = a fresh one).
	Metrics *obs.Registry
	// Tracer, when set, records the front's request and routing spans. The
	// front is the cluster's edge: requests arriving without an X-Trace-Id
	// are assigned one here, and every forwarded hop carries it plus the
	// front's span as X-Span-Id, so the peer's spans parent under it.
	Tracer *obs.Tracer
	// AccessLog, when set, receives one JSON line per request (same schema
	// as the nodes' access logs).
	AccessLog io.Writer
	// Recorder is the front's flight recorder (nil = a fresh one at
	// obs.DefaultRecorderCap; always on).
	Recorder *obs.Recorder
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Front is the stateless cluster front-end: it owns no store and runs no
// passes. Each /compile, /run, or /check request is parsed just far
// enough to compute the module's content address, routed to the peer
// owning that hash range, and retried down the ring's successor order on
// failure — so one front address gives clients the whole cluster, and a
// dead peer costs a retry, not an error.
type Front struct {
	cfg      FrontConfig
	ring     *Ring
	health   *Health
	metrics  *obs.Registry
	client   *http.Client
	start    time.Time
	recorder *obs.Recorder
	httpObs  *obs.HTTPObs

	cRequests map[string]*obs.Counter // by endpoint
	cRetries  *obs.Counter
	cFailed   *obs.Counter
	// Per-peer outcome counters, labels bounded by the configured list.
	peerOK, peerErr map[string]*obs.Counter
}

// NewFront builds a front over the peer list and starts its health
// prober (callers must Close it).
func NewFront(cfg FrontConfig) (*Front, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 30 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = tooling.MaxInputSize
	}
	f := &Front{
		cfg:     cfg,
		ring:    ring,
		client:  &http.Client{Timeout: cfg.PeerTimeout},
		metrics: cfg.Metrics,
		start:   time.Now(),
	}
	if f.metrics == nil {
		f.metrics = obs.NewRegistry()
	}
	f.cRequests = map[string]*obs.Counter{}
	for _, ep := range []string{"compile", "run", "check"} {
		f.cRequests[ep] = f.metrics.Counter("llvm_front_requests_total", "endpoint", ep)
	}
	f.cRetries = f.metrics.Counter("llvm_front_retries_total")
	f.cFailed = f.metrics.Counter("llvm_front_failed_total")
	f.recorder = cfg.Recorder
	if f.recorder == nil {
		f.recorder = obs.NewRecorder(0)
	}
	f.httpObs = &obs.HTTPObs{
		Tracer:    cfg.Tracer,
		Recorder:  f.recorder,
		AccessLog: cfg.AccessLog,
		Endpoint:  frontEndpointLabel,
		Latency: func(endpoint string) *obs.Histogram {
			return f.metrics.Histogram("llvm_front_request_seconds",
				obs.ServeLatencyBuckets, "endpoint", endpoint)
		},
	}
	f.peerOK = map[string]*obs.Counter{}
	f.peerErr = map[string]*obs.Counter{}
	probeClient := &http.Client{Timeout: cfg.ProbeInterval}
	f.health = newHealth(ring.Peers(), "", cfg.ProbeInterval, httpProbe(probeClient))
	for _, p := range ring.Peers() {
		p := p
		f.peerOK[p] = f.metrics.Counter("llvm_front_peer_requests_total", "peer", p, "result", "ok")
		f.peerErr[p] = f.metrics.Counter("llvm_front_peer_requests_total", "peer", p, "result", "error")
		f.metrics.GaugeFunc("llvm_cluster_peer_up", func() float64 {
			if f.health.Up(p) {
				return 1
			}
			return 0
		}, "peer", p)
	}
	return f, nil
}

// Ring exposes the front's placement ring (tests, llvm-bench).
func (f *Front) Ring() *Ring { return f.ring }

// Metrics returns the front's registry.
func (f *Front) Metrics() *obs.Registry { return f.metrics }

// Close stops the health prober.
func (f *Front) Close() { f.health.Close() }

// Recorder returns the front's flight recorder.
func (f *Front) Recorder() *obs.Recorder { return f.recorder }

// frontEndpointLabel bounds the front's per-endpoint label space the same
// way the nodes' endpointLabel does.
func frontEndpointLabel(path string) string {
	switch path {
	case "/compile", "/run", "/check", "/cluster/health", "/cluster/peers", "/metrics":
		return path
	}
	if strings.HasPrefix(path, "/debug/") {
		return "/debug"
	}
	return "other"
}

// Handler returns the front's HTTP surface, wrapped in the same
// observability middleware the nodes use — the front is where trace IDs
// are minted for requests entering through it.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", f.route("compile"))
	mux.HandleFunc("/run", f.route("run"))
	mux.HandleFunc("/check", f.route("check"))
	mux.HandleFunc("/cluster/health", f.handleHealth)
	mux.HandleFunc("/cluster/peers", f.handlePeers)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		f.metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/requests", f.handleDebugRequests)
	mux.HandleFunc("/debug/trace/", f.handleDebugTrace)
	if f.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return f.httpObs.Middleware(mux)
}

// handleDebugRequests and handleDebugTrace mirror the nodes' /debug
// surface over the front's own recorder.
func (f *Front) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	recs := f.recorder.Snapshot()
	if recs == nil {
		recs = []obs.RequestRecord{}
	}
	clusterJSON(w, http.StatusOK, map[string]interface{}{
		"capacity": f.recorder.Cap(),
		"total":    f.recorder.Total(),
		"requests": recs,
	})
}

func (f *Front) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if !obs.ValidTraceID(id) {
		clusterError(w, http.StatusBadRequest, "invalid trace id")
		return
	}
	recs := f.recorder.ByTrace(id)
	if len(recs) == 0 {
		clusterError(w, http.StatusNotFound, "trace %s not in the flight recorder (evicted or never seen here)", id)
		return
	}
	clusterJSON(w, http.StatusOK, recs)
}

func (f *Front) handleHealth(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, healthResponse{
		Self:          "front",
		Role:          "front",
		Peers:         len(f.ring.Peers()),
		UptimeSeconds: time.Since(f.start).Seconds(),
	})
}

func (f *Front) handlePeers(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, peersResponse{
		Self:   "front",
		Role:   "front",
		VNodes: f.ring.VNodes(),
		Peers:  f.ring.Peers(),
		Up:     f.health.Snapshot(),
	})
}

// route builds the handler for one proxied endpoint: parse enough to
// hash, pick the owner, forward with retry-next-peer.
func (f *Front) route(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			clusterError(w, http.StatusMethodNotAllowed, "POST a module (bytecode or assembly) to this endpoint")
			return
		}
		f.cRequests[endpoint].Inc()
		body, err := lifelong.ReadBody(r, f.cfg.MaxBody)
		if err != nil {
			if errors.Is(err, lifelong.ErrBodyTooLarge) {
				clusterError(w, http.StatusRequestEntityTooLarge, "module exceeds the %d-byte limit", f.cfg.MaxBody)
			} else {
				clusterError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		m, err := tooling.LoadModuleBytes("request", body)
		if err != nil {
			clusterError(w, http.StatusUnprocessableEntity, "parsing module: %v", err)
			return
		}
		// Forward the canonical bytecode, not the client's original bytes:
		// the hash the peers key everything by is the canonical encoding's,
		// and bytecode is smaller than assembly before gzip even starts.
		canonical, err := bytecode.Encode(m)
		if err != nil {
			clusterError(w, http.StatusUnprocessableEntity, "encoding module: %v", err)
			return
		}
		hash := bytecode.HashBytes(canonical)

		var gzBody bytes.Buffer
		gz := gzip.NewWriter(&gzBody)
		gz.Write(canonical)
		gz.Close()

		// Owner first, then ring successors. Pass 0 tries peers believed
		// alive; pass 1 fails open through the rest — a fully-down health
		// view must not turn into a refused request if a peer is actually
		// reachable.
		order := f.ring.Ordered(hash)
		tried := map[string]bool{}
		attempts := 0
		for pass := 0; pass < 2; pass++ {
			for _, peer := range order {
				if tried[peer] || (pass == 0 && !f.health.Up(peer)) {
					continue
				}
				tried[peer] = true
				if attempts > 0 {
					f.cRetries.Inc()
				}
				attempts++
				if f.forward(w, r, peer, endpoint, gzBody.Bytes()) {
					return
				}
			}
		}
		f.cFailed.Inc()
		obs.RecordFromContext(r.Context()).SetError("no cluster peer could serve the request")
		clusterError(w, http.StatusBadGateway, "no cluster peer could serve the request (%d tried)", attempts)
	}
}

// forward sends the request to one peer and, on success, streams the
// response back to the client. Returns false when the next peer should be
// tried (transport error or 5xx); 4xx responses are the client's problem
// and are relayed as-is.
func (f *Front) forward(w http.ResponseWriter, r *http.Request, peer, endpoint string, gzBody []byte) bool {
	u := "http://" + peer + "/" + endpoint
	if q := r.URL.RawQuery; q != "" {
		u += "?" + q
	}
	rec := obs.RecordFromContext(r.Context())
	t0 := time.Now()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(gzBody))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("Content-Encoding", "gzip")
	// Trace context crosses the hop: the peer adopts this trace ID and
	// parents its request span under the front's span.
	obs.PropagateHeaders(r.Context(), req.Header)
	resp, err := f.client.Do(req)
	if err != nil {
		f.peerErr[peer].Inc()
		f.health.MarkDown(peer)
		rec.AddHop(peer, "route", "down", time.Since(t0))
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		f.peerErr[peer].Inc()
		f.health.MarkDown(peer)
		rec.AddHop(peer, "route", "error", time.Since(t0))
		return false
	}
	f.peerOK[peer].Inc()
	f.health.MarkUp(peer)
	rec.AddHop(peer, "route", "ok", time.Since(t0))
	rec.SetPeer(peer)
	if cache := resp.Header.Get("X-Cache"); cache != "" {
		rec.SetCache(cache)
	}
	// Relay the peer's response: identifying headers pass through, the
	// serving peer is named (it came from config, never request data), and
	// the body is re-compressed when this client accepts gzip (the peer
	// leg's gzip was already decoded by the transport).
	for name, vals := range resp.Header {
		if strings.HasPrefix(name, "X-") || name == "Content-Type" {
			w.Header()[name] = vals
		}
	}
	w.Header().Set("X-Cluster-Peer", peer)
	out, finish := lifelong.Compress(w, r)
	defer finish()
	out.WriteHeader(resp.StatusCode)
	io.Copy(out, io.LimitReader(resp.Body, f.cfg.MaxBody+(f.cfg.MaxBody/2)+1024))
	return true
}

// FrontUsage is a one-line reminder for llvm-serve's flag error paths.
const FrontUsage = "llvm-serve -front -peers host1:port,host2:port,... [-addr :8190]"
