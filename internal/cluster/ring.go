// Package cluster shards the lifelong compile service across llvm-serve
// peers. The content-addressed store makes the substrate trivially
// replicable — a module's SHA-256 names the same artifact on every node —
// so distribution reduces to three mechanisms: a consistent-hash ring
// assigning each module hash an owning peer, artifact fetch-through from
// the owner on local miss, and profile-count forwarding to the owner so
// epoch advancement sees cluster-wide heat. Every remote dependency fails
// open: a down owner costs a local compile (latency), never availability.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVNodes is the virtual-node count per peer. 64 points per peer
// keeps the ownership spread within a few percent of uniform for small
// clusters while the ring stays tiny (N*64 points).
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a fixed peer list. Placement is
// deterministic: every node configured with the same peer set (in any
// order) builds byte-identical rings, so routing decisions agree without
// any coordination. Keys are module hashes; owners are peer addresses.
type Ring struct {
	points []ringPoint // sorted ascending by point hash
	peers  []string    // sorted, deduplicated
	vnodes int
}

type ringPoint struct {
	h    uint64
	peer string
}

// pointHash maps a string onto the ring's 64-bit keyspace: the first 8
// bytes of its SHA-256, big-endian. SHA-256 keeps virtual nodes spread
// uniformly and reuses the hash the store's content addresses are built
// on.
func pointHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring of vnodes virtual points per peer (0 =
// DefaultVNodes). The peer list is sorted and deduplicated, so callers
// may pass it in any order.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: pointHash(fmt.Sprintf("%s#%d", p, v)), peer: p})
		}
	}
	// Ties (astronomically unlikely) break by peer name so placement
	// stays deterministic even then.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the ring's sorted peer list (callers must not mutate it).
func (r *Ring) Peers() []string { return r.peers }

// VNodes returns the configured virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// succIndex finds the first ring point at or after key's hash, wrapping.
func (r *Ring) succIndex(key string) int {
	h := pointHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the peer owning key: the peer whose virtual point is the
// key's clockwise successor on the ring.
func (r *Ring) Owner(key string) string {
	return r.points[r.succIndex(key)].peer
}

// Ordered returns every peer in ring order starting from key's owner —
// the retry sequence for routing: the owner first, then each distinct
// successor. Consistent across nodes, so two fronts retrying the same key
// walk the same peer sequence.
func (r *Ring) Ordered(key string) []string {
	out := make([]string, 0, len(r.peers))
	seen := map[string]bool{}
	start := r.succIndex(key)
	for i := 0; i < len(r.points) && len(out) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
