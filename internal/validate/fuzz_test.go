package validate_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/passes"
	"repro/internal/validate"
)

// FuzzValidate drives the zero-false-confirms contract with hostile IR:
// for any verifier-valid module the parser accepts, running the standard
// pipeline under the oracle must never yield a confirmed Miscompile — the
// real passes are correct, so every confirmation on them is a false one.
// Small budgets are deliberate: they can only push verdicts toward
// Inconclusive, never toward a wrong confirmation, and they keep each
// fuzz iteration cheap. The oracle itself must never panic (ValidatePass
// recovers internally and degrades to Inconclusive).
func FuzzValidate(f *testing.F) {
	f.Add(`
int %main() {
entry:
	%r = add int 40, 2
	ret int %r
}
`)
	f.Add(`
%g = global int 7
internal int %inc(int %a) {
entry:
	%v = load int* %g
	%s = add int %v, %a
	store int %s, int* %g
	ret int %s
}
int %main() {
entry:
	%a = call int %inc(int 1)
	%b = call int %inc(int 2)
	%r = add int %a, %b
	ret int %r
}
`)
	f.Add(`
int %loopy(int %n) {
entry:
	br label %head
head:
	%i = phi int [ 0, %entry ], [ %next, %head ]
	%next = add int %i, 1
	%done = setge int %next, %n
	br bool %done, label %out, label %head
out:
	ret int %i
}
`)
	f.Add(`
long %pun(int* %p) {
entry:
	%v = cast int* %p to long
	ret long %v
}
`)
	f.Add("int %m(int %a, int %b) {\nentry:\n\t%d = div int %a, %b\n\tret int %d\n}\n")
	oracle := validate.New(validate.Options{
		MaxVectors:   2,
		MaxSteps:     20_000,
		MaxHeapBytes: 4 << 20,
		MaxFunctions: 6,
	})
	f.Fuzz(func(t *testing.T, src string) {
		m, err := asm.ParseModule("fuzz", src)
		if err != nil {
			return
		}
		if err := core.Verify(m); err != nil {
			return
		}
		pm := passes.NewPassManager()
		pm.Policy = passes.SkipAndContinue
		pm.VerifyEach = true
		pm.Validator = oracle
		pm.AddStandardPipeline()
		if _, err := pm.Run(m); err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		for _, r := range pm.Results {
			if v := r.Validation; v != nil && v.Verdict == validate.Miscompile {
				t.Fatalf("false confirmed miscompile from %q: %s\nmodule:\n%s", r.Pass, v.Summary(), src)
			}
		}
	})
}
