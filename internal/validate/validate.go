// Package validate is the translation-validation oracle (DESIGN.md §11):
// after a pass transforms a module, it checks the before/after pair for
// semantic equivalence and renders one of three verdicts — Equivalent,
// Inconclusive, or Miscompile. Two engines back the check. A cheap
// equational engine proves pure-SSA rewrites (mem2reg, cse,
// reassociation-style simplification) correct against a small set of
// algebraic laws without executing anything. A differential engine runs
// both modules under the sandboxed interpreter on deterministic input
// vectors per function signature and compares every observable: return
// bits, program output, trap kinds, final global memory, and pointer-
// argument buffers.
//
// The verdict discipline is deliberately asymmetric, because the oracle's
// contract is zero false "confirmed" verdicts:
//
//   - Only differential evidence — two complete runs whose observables
//     disagree, or a run that traps with a defined program error where the
//     original returned normally — confirms a miscompile.
//   - Budget exhaustion (step limit, heap limit, stack overflow,
//     cancellation) is always Inconclusive, never a miscompile.
//   - A trap the pass removed is Inconclusive, not proof of equivalence
//     and not a miscompile: dead-code elimination legitimately deletes a
//     dead trapping instruction (a dead div or load has no side effects),
//     so "before traps, after returns" is exactly what a correct pass may
//     produce.
//   - The equational engine can only confirm equivalence; when its laws
//     don't apply it falls through to the differential engine.
package validate

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
)

// Verdict is the oracle's three-valued answer for one pass run.
type Verdict int

const (
	// Equivalent: every paired function was proven or differentially
	// indistinguishable on at least one conclusive probe, and nothing had
	// to be skipped.
	Equivalent Verdict = iota
	// Inconclusive: nothing disproved equivalence, but some function could
	// not be checked (budgets exhausted, signature changed, variadic).
	Inconclusive
	// Miscompile: differential execution found inputs on which the two
	// modules observably disagree.
	Miscompile
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case Inconclusive:
		return "inconclusive"
	case Miscompile:
		return "MISCOMPILE"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Defaults bound one differential probe. They are far below the
// interpreter's own defaults: the oracle runs after every pass, so a probe
// must be cheap, and an exhausted budget is only ever Inconclusive.
const (
	DefaultMaxVectors   = 5
	DefaultMaxSteps     = 500_000
	DefaultMaxHeapBytes = 16 << 20
)

// Options tune the oracle. The zero value means defaults.
type Options struct {
	// MaxVectors caps differential input vectors per function (functions
	// with no parameters always get exactly one probe).
	MaxVectors int
	// MaxSteps and MaxHeapBytes bound each probe's execution; exhausting
	// either makes the probe inconclusive.
	MaxSteps     int64
	MaxHeapBytes int64
	// MaxFunctions caps how many changed functions are probed
	// differentially per pass run (0 = no cap); functions beyond the cap
	// count as skipped, degrading the verdict to Inconclusive, never to a
	// false Equivalent.
	MaxFunctions int
	// Seed perturbs the extra (non-boundary) input vectors. The same seed
	// always yields the same vectors, so verdicts are deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxVectors <= 0 {
		o.MaxVectors = DefaultMaxVectors
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = DefaultMaxSteps
	}
	if o.MaxHeapBytes <= 0 {
		o.MaxHeapBytes = DefaultMaxHeapBytes
	}
	return o
}

// Oracle checks pass runs for semantic equivalence. It is stateless across
// calls and safe to share between sequential pass runs; one ValidatePass
// call runs single-threaded.
type Oracle struct {
	opts Options
}

// New returns an oracle with the given options (zero value = defaults).
func New(opts Options) *Oracle { return &Oracle{opts: opts.withDefaults()} }

// Default returns an oracle with default budgets.
func Default() *Oracle { return New(Options{}) }

// Result is the oracle's verdict for one pass run, plus the evidence
// breakdown the -validate table and the remarks stream render.
type Result struct {
	// Pass is the name of the validated pass run.
	Pass string
	// Verdict is the module-level verdict.
	Verdict Verdict
	// Method summarizes the decisive evidence: "identical", "equational",
	// "differential", or "mixed" for Equivalent verdicts; the limiting
	// cause for Inconclusive ones; "differential" for Miscompile.
	Method string
	// Functions counts definition pairs examined. Identical were textually
	// unchanged; Proven passed the equational engine; Tested passed
	// differential probing; Unresolved had no conclusive probe; Skipped
	// could not be paired (signature changed, variadic, capped). Deleted
	// counts definitions the pass removed (legal for inliners and global
	// DCE; their semantics are covered through the remaining callers).
	Functions  int
	Identical  int
	Proven     int
	Tested     int
	Unresolved int
	Skipped    int
	Deleted    int
	// Internal counts changed internal-linkage definitions, which are
	// never probed directly: an interprocedural pass may legally
	// specialize them against their known callers, so their behavior is
	// validated through the exported functions that reach them.
	Internal int
	// Probes counts differential executions (per module side).
	Probes int
	// Function, Counterexample, and Detail locate a miscompile: the
	// function, the raw input vector that exposed it, and what observable
	// disagreed.
	Function       string
	Counterexample []uint64
	Detail         string
	// Duration is the oracle's own wall-clock cost for this pass run.
	Duration time.Duration
}

// Pos returns the miscompile's position in the toolchain's shared
// diagnostic coordinates (empty when the verdict is not Miscompile).
func (r *Result) Pos() diag.Pos { return diag.Pos{Fn: r.Function} }

// Summary renders the one-line form used by remarks and error messages.
func (r *Result) Summary() string {
	if r.Verdict == Miscompile {
		return fmt.Sprintf("%s in %%%s on inputs %v: %s", r.Verdict, r.Function, r.Counterexample, r.Detail)
	}
	return fmt.Sprintf("%s (%s: %d identical, %d proven, %d tested, %d internal, %d unresolved, %d skipped; %d probes)",
		r.Verdict, r.Method, r.Identical, r.Proven, r.Tested, r.Internal, r.Unresolved, r.Skipped, r.Probes)
}

// ValidatePass checks one pass run: before is the module as the pass saw
// it, after the module the pass produced. Neither module is mutated. The
// verdict follows the package's asymmetric discipline; an internal oracle
// failure degrades to Inconclusive, never to a crash or a false verdict.
func (o *Oracle) ValidatePass(pass string, before, after *core.Module) (res *Result) {
	start := time.Now()
	res = &Result{Pass: pass, Verdict: Equivalent}
	defer func() { res.Duration = time.Since(start) }()
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = Inconclusive
			res.Method = "oracle-error"
			res.Detail = fmt.Sprintf("oracle panic: %v", r)
		}
	}()

	d := newDiffRunner(o.opts, before, after)
	affected := affectedFunctions(before, after)
	probed, exported := 0, 0
	for _, bf := range before.Funcs {
		if bf.IsDeclaration() {
			continue
		}
		af := after.Func(bf.Name())
		if af == nil || af.IsDeclaration() {
			res.Deleted++
			continue
		}
		res.Functions++
		if bf.Linkage != core.InternalLinkage {
			exported++
		}
		if bf.Sig.Variadic || af.Sig.Variadic || !core.TypesEqual(bf.Sig, af.Sig) {
			res.Skipped++
			continue
		}
		// The textual fast path is only sound when nothing the function
		// transitively depends on changed either: an unchanged caller of a
		// rewritten callee still needs differential probing, because its
		// observable behavior flows through the callee.
		if !affected[bf.Name()] && bf.String() == af.String() {
			res.Identical++
			continue
		}
		// The equational fragment excludes calls and global memory, so a
		// proof stands regardless of what changed elsewhere in the module.
		if equationallyEqual(bf, af) {
			res.Proven++
			continue
		}
		// An internal function has no contract of its own: every caller is
		// in this module, and an interprocedural pass may legally
		// specialize the body against them (propagate a constant argument,
		// drop a computation no caller observes). Probing it on free
		// inputs would compare executions the program can never perform —
		// a recipe for false confirmations. Its behavior is validated
		// through the exported functions that reach it: affectedFunctions
		// taints every transitive caller, so those entry points are probed
		// on this very pass run.
		if bf.Linkage == core.InternalLinkage {
			res.Internal++
			continue
		}
		if o.opts.MaxFunctions > 0 && probed >= o.opts.MaxFunctions {
			res.Skipped++
			continue
		}
		probed++
		fo := d.probeFunction(bf, af)
		res.Probes += fo.probes
		switch fo.verdict {
		case Miscompile:
			res.Verdict = Miscompile
			res.Method = "differential"
			res.Function = bf.Name()
			res.Counterexample = fo.counterexample
			res.Detail = fo.detail
			return res
		case Equivalent:
			res.Tested++
		default:
			res.Unresolved++
			if res.Detail == "" {
				res.Detail = fmt.Sprintf("%%%s: %s", bf.Name(), fo.detail)
			}
		}
	}

	switch {
	case res.Unresolved > 0:
		res.Verdict = Inconclusive
		res.Method = "budget"
	case res.Skipped > 0:
		res.Verdict = Inconclusive
		res.Method = "skipped"
	case res.Internal > 0 && exported == 0:
		// Internal functions changed but the module exports nothing that
		// could carry the evidence; without an observable entry point the
		// oracle cannot vouch for the change.
		res.Verdict = Inconclusive
		res.Method = "internal-only"
	case res.Proven > 0 && res.Tested > 0:
		res.Method = "mixed"
	case res.Tested > 0:
		res.Method = "differential"
	case res.Proven > 0:
		res.Method = "equational"
	default:
		res.Method = "identical"
	}
	return res
}

// affectedFunctions computes which functions' observable behavior may have
// changed: those whose text differs (or that were deleted), closed
// transitively over the before-module's caller edges. Indirect call sites
// and differing global initializers defeat the static call graph, so they
// conservatively taint the caller (respectively, every function). The set
// gates only the identical fast path — an over-approximation costs extra
// probes, never a wrong verdict.
func affectedFunctions(before, after *core.Module) map[string]bool {
	affected := map[string]bool{}
	anyChange := false
	for _, bf := range before.Funcs {
		if bf.IsDeclaration() {
			continue
		}
		af := after.Func(bf.Name())
		if af == nil || af.IsDeclaration() || bf.String() != af.String() {
			affected[bf.Name()] = true
			anyChange = true
		}
	}
	if globalsDiffer(before, after) {
		for _, bf := range before.Funcs {
			if !bf.IsDeclaration() {
				affected[bf.Name()] = true
			}
		}
		return affected
	}
	if !anyChange {
		return affected
	}

	callers := map[string][]string{}
	for _, f := range before.Funcs {
		if f.IsDeclaration() {
			continue
		}
		name := f.Name()
		f.ForEachInst(func(inst core.Instruction) bool {
			var callee core.Value
			switch c := inst.(type) {
			case *core.CallInst:
				callee = c.Callee()
			case *core.InvokeInst:
				callee = c.Callee()
			default:
				return true
			}
			if g, ok := callee.(*core.Function); ok {
				callers[g.Name()] = append(callers[g.Name()], name)
			} else {
				// An indirect call could reach any changed function.
				affected[name] = true
			}
			return true
		})
	}
	work := make([]string, 0, len(affected))
	for n := range affected {
		work = append(work, n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range callers[n] {
			if !affected[c] {
				affected[c] = true
				work = append(work, c)
			}
		}
	}
	return affected
}

// globalsDiffer reports whether any same-name global's type or initializer
// differs between the modules. A removed global cannot matter on its own —
// every function that referenced it necessarily changed text.
func globalsDiffer(before, after *core.Module) bool {
	for _, gb := range before.Globals {
		ga := after.Global(gb.Name())
		if ga == nil {
			continue
		}
		if !core.TypesEqual(gb.ValueType, ga.ValueType) || !constsEqual(gb.Init, ga.Init) {
			return true
		}
	}
	return false
}

// constsEqual structurally compares two constants (nil-tolerant). Unknown
// constant kinds compare unequal, erring toward more probing.
func constsEqual(a, b core.Constant) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if !core.TypesEqual(a.Type(), b.Type()) {
		return false
	}
	switch x := a.(type) {
	case *core.ConstantInt:
		y, ok := b.(*core.ConstantInt)
		return ok && x.Val == y.Val
	case *core.ConstantFloat:
		y, ok := b.(*core.ConstantFloat)
		return ok && x.Val == y.Val
	case *core.ConstantBool:
		y, ok := b.(*core.ConstantBool)
		return ok && x.Val == y.Val
	case *core.ConstantNull:
		_, ok := b.(*core.ConstantNull)
		return ok
	case *core.ConstantUndef:
		_, ok := b.(*core.ConstantUndef)
		return ok
	case *core.ConstantZero:
		_, ok := b.(*core.ConstantZero)
		return ok
	case *core.ConstantArray:
		y, ok := b.(*core.ConstantArray)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !constsEqual(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *core.ConstantStruct:
		y, ok := b.(*core.ConstantStruct)
		if !ok || len(x.Fields) != len(y.Fields) {
			return false
		}
		for i := range x.Fields {
			if !constsEqual(x.Fields[i], y.Fields[i]) {
				return false
			}
		}
		return true
	case *core.Function:
		y, ok := b.(*core.Function)
		return ok && x.Name() == y.Name()
	case *core.GlobalVariable:
		y, ok := b.(*core.GlobalVariable)
		return ok && x.Name() == y.Name()
	case *core.ConstantExpr:
		y, ok := b.(*core.ConstantExpr)
		if !ok || x.Op != y.Op || x.NumOperands() != y.NumOperands() {
			return false
		}
		for i := 0; i < x.NumOperands(); i++ {
			xc, okx := x.Operand(i).(core.Constant)
			yc, oky := y.Operand(i).(core.Constant)
			if !okx || !oky || !constsEqual(xc, yc) {
				return false
			}
		}
		return true
	}
	return false
}
