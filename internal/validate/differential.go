package validate

// The differential engine executes both modules on deterministic input
// vectors and compares every observable: return value (masked to the
// declared width; pointers by nullness only, since heap addresses
// legitimately shift when a pass deletes functions or allocations),
// program output bytes, trap kinds, the final bytes of pointer-free shared
// globals, and the final bytes of scratch buffers passed through pointer
// parameters. Probes are classified before comparison:
//
//	pOK      completed normally          — fully comparable
//	pExit    called exit(n)              — exit code + output comparable
//	pTrap    defined program error       — comparable by kind
//	pBudget  hit a sandbox budget        — inconclusive, never a verdict
//	pUnknown internal fault / other      — inconclusive, never a verdict
//
// The comparison applies the asymmetric trap rule: a trap only in the
// BEFORE module is inconclusive (dead-code elimination legally deletes a
// dead trapping instruction), while a defined trap only in the AFTER
// module on an execution the original completed is a miscompile — a
// correct transformation never introduces a defined error into a
// well-defined execution.

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interp"
)

// boundaryInputs are the raw argument bits every parameter position cycles
// through first: the classic edge cases (zero, one, all-ones, sign bits)
// before seeded pseudo-random extras.
var boundaryInputs = []uint64{
	0, 1, ^uint64(0), 2, 7, 0x80, 255, 1 << 31, 1<<31 - 1, 1000003,
}

type probeClass int

const (
	pOK probeClass = iota
	pExit
	pTrap
	pBudget
	pUnknown
)

// probeResult is one side's observation of one probe.
type probeResult struct {
	class    probeClass
	ret      uint64 // return bits (pOK) or exit code bits (pExit)
	trapKind string // stable kind label (pTrap)
	output   []byte // program output written during the run
	globals  []byte // concatenated final bytes of the shared globals
	bufs     []byte // concatenated final bytes of the scratch buffers
	detail   string // human-readable cause for inconclusive classes
	// Allocation profile of the run. When the two sides' profiles match
	// (and the static layout is stable), the deterministic bump allocator
	// guarantees identical addresses, making even address-punned
	// observables comparable.
	mallocs, mallocBytes, allocas int64
}

// funcOutcome is the engine's verdict for one function pair.
type funcOutcome struct {
	verdict        Verdict
	probes         int
	counterexample []uint64
	detail         string
}

// globalPair is a same-name global whose final memory image is comparable
// across the two modules: equal value types, recursively pointer-free (an
// address-bearing image legitimately differs when allocation order
// shifts), and a known nonzero size. Passes that change layout
// (fieldreorder, deadtypeelim) break type equality and drop the global
// from comparison rather than producing false mismatches.
type globalPair struct {
	before, after *core.GlobalVariable
	size          int
}

type diffRunner struct {
	opts          Options
	before, after *core.Module
	shared        []globalPair
	// punned: some cast in either module can reinterpret an address as
	// plain data, so any scalar observable may carry address bits.
	// layoutStable: both modules produce identical machine address maps
	// (same function-descriptor count, same global sizes in order), so
	// addresses — and therefore punned observables — are comparable anyway.
	punned       bool
	layoutStable bool
}

func newDiffRunner(opts Options, before, after *core.Module) *diffRunner {
	d := &diffRunner{opts: opts, before: before, after: after}
	d.punned = leaksAddresses(before) || leaksAddresses(after)
	d.layoutStable = layoutStable(before, after)
	for _, gb := range before.Globals {
		ga := after.Global(gb.Name())
		if ga == nil || !core.TypesEqual(gb.ValueType, ga.ValueType) {
			continue
		}
		if !pointerFree(gb.ValueType) {
			continue
		}
		if size := core.SizeOf(gb.ValueType); size > 0 {
			d.shared = append(d.shared, globalPair{before: gb, after: ga, size: size})
		}
	}
	return d
}

// layoutStable reports whether the two modules yield identical machine
// address maps. The interpreter's arena is deterministic: one descriptor
// per function in module order, then the globals in module order, then
// dynamic allocations. Equal function counts and an equal global size
// sequence therefore pin every static address, and — because the bump
// allocator is deterministic — runs performing the same allocations see
// the same dynamic addresses too.
func layoutStable(before, after *core.Module) bool {
	if len(before.Funcs) != len(after.Funcs) || len(before.Globals) != len(after.Globals) {
		return false
	}
	for i := range before.Globals {
		sb := core.SizeOf(before.Globals[i].ValueType)
		sa := core.SizeOf(after.Globals[i].ValueType)
		// NewMachine sizes unsized globals at 8 bytes.
		if sb == 0 {
			sb = 8
		}
		if sa == 0 {
			sa = 8
		}
		if sb != sa {
			return false
		}
	}
	return true
}

// leaksAddresses reports whether the module contains a cast that can move
// address bits across the pointer/data boundary: a value cast between
// pointer and scalar (either direction), or a pointer-to-pointer cast
// whose two views disagree about where pointers live — e.g. viewing a
// char arena as a struct with pointer fields plants addresses into
// statically pointer-free memory, and the reverse view reads them back as
// plain bytes. In such modules any scalar observable and any
// "pointer-free" memory image may encode addresses, which legitimately
// differ once a pass changes the memory layout.
func leaksAddresses(m *core.Module) bool {
	castLeaks := func(src, dst core.Type) bool {
		sp, dp := src.Kind() == core.PointerKind, dst.Kind() == core.PointerKind
		if sp != dp {
			return true
		}
		if sp && dp {
			se := src.(*core.PointerType).Elem
			de := dst.(*core.PointerType).Elem
			return pointerFree(se) != pointerFree(de)
		}
		return false
	}
	var constLeaks func(c core.Constant) bool
	constLeaks = func(c core.Constant) bool {
		ce, ok := c.(*core.ConstantExpr)
		if !ok {
			return false
		}
		if ce.Op == core.OpCast && castLeaks(ce.Operand(0).Type(), ce.Type()) {
			return true
		}
		for i := 0; i < ce.NumOperands(); i++ {
			if oc, ok := ce.Operand(i).(core.Constant); ok && constLeaks(oc) {
				return true
			}
		}
		return false
	}
	for _, g := range m.Globals {
		if g.Init != nil && constLeaks(g.Init) {
			return true
		}
	}
	leaks := false
	for _, f := range m.Funcs {
		f.ForEachInst(func(inst core.Instruction) bool {
			if c, ok := inst.(*core.CastInst); ok && castLeaks(c.Operand(0).Type(), c.Type()) {
				leaks = true
				return false
			}
			for i := 0; i < inst.NumOperands(); i++ {
				if oc, ok := inst.Operand(i).(core.Constant); ok && constLeaks(oc) {
					leaks = true
					return false
				}
			}
			return true
		})
		if leaks {
			return true
		}
	}
	return false
}

// pointerFree reports whether a value of type t can never contain an
// address (so its raw bytes are comparable across heap layouts).
func pointerFree(t core.Type) bool {
	switch t.Kind() {
	case core.BoolKind, core.SByteKind, core.UByteKind, core.ShortKind, core.UShortKind,
		core.IntKind, core.UIntKind, core.LongKind, core.ULongKind,
		core.FloatKind, core.DoubleKind:
		return true
	case core.ArrayKind:
		return pointerFree(t.(*core.ArrayType).Elem)
	case core.StructKind:
		for _, f := range t.(*core.StructType).Fields {
			if !pointerFree(f) {
				return false
			}
		}
		return true
	}
	return false
}

// probeFunction runs the function pair on the deterministic vectors. One
// conclusive-equal probe with no disagreement anywhere is enough for
// Equivalent; any disagreement on comparable observables is Miscompile;
// otherwise Inconclusive.
func (d *diffRunner) probeFunction(bf, af *core.Function) funcOutcome {
	for _, p := range bf.Sig.Params {
		if !core.IsFirstClass(p) {
			return funcOutcome{verdict: Inconclusive, detail: fmt.Sprintf("unsupported parameter type %s", p)}
		}
	}

	out := funcOutcome{verdict: Inconclusive, detail: "no conclusive probe"}
	conclusive := false
	for _, vec := range d.vectors(bf) {
		out.probes++
		rb := d.runProbe(d.before, bf, vec)
		ra := d.runProbe(d.after, af, vec)
		eq, concl, detail := d.compareProbes(rb, ra)
		if !eq {
			return funcOutcome{
				verdict:        Miscompile,
				probes:         out.probes,
				counterexample: vec,
				detail:         detail,
			}
		}
		if concl {
			conclusive = true
		} else if detail != "" {
			out.detail = detail
		}
	}
	if conclusive {
		out.verdict = Equivalent
		out.detail = ""
	}
	return out
}

// vectors yields the raw input vectors for f: boundary values rotated per
// parameter position, then splitmix64-seeded extras. A niladic function
// gets exactly one (empty) probe.
func (d *diffRunner) vectors(f *core.Function) [][]uint64 {
	n := len(f.Sig.Params)
	if n == 0 {
		return [][]uint64{nil}
	}
	count := d.opts.MaxVectors
	vecs := make([][]uint64, 0, count)
	rng := d.opts.Seed ^ 0x9e3779b97f4a7c15
	for j := 0; j < count; j++ {
		vec := make([]uint64, n)
		for i := range vec {
			if j < len(boundaryInputs) {
				vec[i] = boundaryInputs[(i+j)%len(boundaryInputs)]
			} else {
				rng = splitmix64(rng)
				vec[i] = rng
			}
		}
		vecs = append(vecs, vec)
	}
	return vecs
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// scratchBytes bounds one pointer-parameter scratch buffer: enough for
// small loops to do observable work, small enough to stay cheap.
const scratchBytes = 256

// runProbe executes f in mod on one vector under a fresh machine, so
// global state never leaks between probes, and collects every observable.
func (d *diffRunner) runProbe(mod *core.Module, f *core.Function, vec []uint64) probeResult {
	var out bytes.Buffer
	mc, err := interp.NewMachine(mod, &out)
	if err != nil {
		return probeResult{class: pUnknown, detail: fmt.Sprintf("machine setup: %v", err)}
	}
	mc.MaxSteps = d.opts.MaxSteps
	mc.MaxHeapBytes = d.opts.MaxHeapBytes

	// Materialize arguments: scalars from the raw vector bits, pointer
	// parameters as deterministic scratch buffers (or null when the
	// pointee's bytes would not be comparable anyway).
	args := make([]uint64, len(vec))
	type scratch struct {
		addr uint64
		size int
	}
	var bufs []scratch
	for i, p := range f.Sig.Params {
		d0 := vec[i]
		switch {
		case p.Kind() == core.PointerKind:
			elem := p.(*core.PointerType).Elem
			size := core.SizeOf(elem)
			if size <= 0 || !pointerFree(elem) {
				args[i] = 0 // null: traps compare by kind on both sides
				continue
			}
			if size < scratchBytes {
				size = scratchBytes - scratchBytes%size
			}
			addr, err := mc.Malloc(uint64(size))
			if err != nil {
				return probeResult{class: pUnknown, detail: fmt.Sprintf("scratch alloc: %v", err)}
			}
			fill := make([]byte, size)
			seed := d0 ^ uint64(i)*0x9e3779b97f4a7c15
			for k := range fill {
				seed = splitmix64(seed)
				fill[k] = byte(seed)
			}
			if err := mc.WriteBytes(addr, fill); err != nil {
				return probeResult{class: pUnknown, detail: fmt.Sprintf("scratch fill: %v", err)}
			}
			bufs = append(bufs, scratch{addr: addr, size: size})
			args[i] = addr
		case p.Kind() == core.BoolKind:
			args[i] = d0 & 1
		case p.Kind() == core.FloatKind || p.Kind() == core.DoubleKind:
			// Small integral values exercise FP arithmetic without NaN
			// noise; the same bits reach both sides either way.
			args[i] = floatArgBits(p, d0)
		default:
			args[i] = maskExtend(d0, p)
		}
	}

	ret, err := mc.RunFunction(f, args...)
	res := probeResult{output: out.Bytes()}
	res.mallocs, res.mallocBytes = mc.NumMallocs, mc.MallocBytes
	res.allocas = mc.OpCounts[core.OpAlloca]
	if err != nil {
		var ee *interp.ExitError
		switch {
		case errors.As(err, &ee):
			res.class = pExit
			res.ret = uint64(ee.Code)
		case errors.Is(err, interp.ErrMaxSteps), errors.Is(err, interp.ErrStackOverflow),
			errors.Is(err, interp.ErrHeapLimit), errors.Is(err, interp.ErrCancelled):
			res.class = pBudget
			res.detail = fmt.Sprintf("budget exhausted (%s)", interp.TrapKind(err))
			return res
		case errors.Is(err, interp.ErrNullDeref), errors.Is(err, interp.ErrOutOfBounds),
			errors.Is(err, interp.ErrDivideByZero), errors.Is(err, interp.ErrDoubleFree),
			errors.Is(err, interp.ErrBadIndirectCall), errors.Is(err, interp.ErrUncaughtUnwind):
			res.class = pTrap
			res.trapKind = interp.TrapKind(err)
			return res
		default:
			res.class = pUnknown
			res.detail = fmt.Sprintf("execution fault (%v)", err)
			return res
		}
	} else {
		res.class = pOK
		res.ret = normalizeRet(f.Sig.Ret, ret)
	}

	// Final memory images, only reached on normal completion or exit —
	// after a trap the machine stopped mid-operation and its memory is not
	// a defined observable.
	for _, gp := range d.shared {
		g := gp.before
		if mod == d.after {
			g = gp.after
		}
		img, err := mc.ReadBytes(mc.GlobalAddr(g), gp.size)
		if err != nil {
			res.class = pUnknown
			res.detail = fmt.Sprintf("global readback: %v", err)
			return res
		}
		res.globals = append(res.globals, img...)
	}
	for _, b := range bufs {
		img, err := mc.ReadBytes(b.addr, b.size)
		if err != nil {
			// The function may free() its argument; that is an observable
			// the allocator tracks, not a comparison failure.
			img = []byte{0xf7}
		}
		res.bufs = append(res.bufs, img...)
	}
	return res
}

// maskExtend truncates raw bits to t's width and sign-extends signed
// types, matching the interpreter's in-register value convention.
func maskExtend(d uint64, t core.Type) uint64 {
	w := core.BitWidth(t)
	if w <= 0 || w >= 64 {
		return d
	}
	d &= 1<<uint(w) - 1
	if core.IsSigned(t) && d&(1<<uint(w-1)) != 0 {
		d |= ^uint64(0) << uint(w)
	}
	return d
}

func floatArgBits(t core.Type, d uint64) uint64 {
	v := float64(int64(d%1024) - 512)
	if t.Kind() == core.FloatKind {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// normalizeRet projects a raw return value onto its comparable bits: the
// declared width for scalars, nullness only for pointers (addresses shift
// legitimately across heap layouts), nothing for void.
func normalizeRet(t core.Type, v uint64) uint64 {
	switch {
	case t.Kind() == core.VoidKind:
		return 0
	case t.Kind() == core.PointerKind:
		if v == 0 {
			return 0
		}
		return 1
	case t.Kind() == core.BoolKind:
		return v & 1
	default:
		return maskExtend(v, t)
	}
}

// compareProbes applies the verdict discipline to one probe pair:
// eq=false means confirmed disagreement (miscompile), conclusive=true
// means this probe affirmatively witnessed equal behavior.
//
// In an address-punning module a scalar observable may encode an address,
// and addresses legitimately move when a pass changes the memory layout
// (deleting a function shifts every global; removing an allocation shifts
// everything after it). There a disagreement only confirms a miscompile
// when the address maps of the two runs provably coincided: stable static
// layout plus identical allocation profiles. Otherwise the mismatch
// degrades to Inconclusive — never a false confirmation. Modules without
// such casts are unaffected: no observable can carry address bits, so
// every disagreement confirms.
func (d *diffRunner) compareProbes(rb, ra probeResult) (eq, conclusive bool, detail string) {
	// A budgeted or internally-faulted run on either side says nothing.
	if rb.class == pBudget || rb.class == pUnknown {
		return true, false, rb.detail
	}
	if ra.class == pBudget || ra.class == pUnknown {
		return true, false, ra.detail
	}

	strict := !d.punned || (d.layoutStable &&
		rb.mallocs == ra.mallocs && rb.mallocBytes == ra.mallocBytes && rb.allocas == ra.allocas)
	// A trapped run's allocation profile stops at the trap, so only the
	// static half of the address argument applies to trap comparisons.
	strictTrap := !d.punned || d.layoutStable
	const shifted = " in an address-punning module with a changed memory layout; not confirmable"

	switch {
	case rb.class == pTrap && ra.class == pTrap:
		// Same defined error with identical output to that point is a
		// witnessed match; anything else proves nothing either way.
		if rb.trapKind == ra.trapKind && bytes.Equal(rb.output, ra.output) {
			return true, true, ""
		}
		return true, false, fmt.Sprintf("diverging traps (%s vs %s)", rb.trapKind, ra.trapKind)

	case rb.class == pTrap:
		// The pass removed a trap: legal for dead-code elimination.
		return true, false, fmt.Sprintf("trap (%s) only before the pass", rb.trapKind)

	case ra.class == pTrap:
		// The pass introduced a defined error into an execution the
		// original completed: never legal — unless the trap could stem
		// from an address that moved with the layout.
		if !strictTrap {
			return true, false, fmt.Sprintf("introduced %s trap%s", ra.trapKind, shifted)
		}
		return false, true, fmt.Sprintf("pass introduced a %s trap", ra.trapKind)

	case rb.class != ra.class:
		// Normal return vs explicit exit(): the call graph changed shape
		// in a way this harness cannot attribute; stay conservative.
		return true, false, "normal return vs exit divergence"

	case rb.class == pExit:
		if rb.ret != ra.ret {
			if !strict {
				return true, false, "exit code differs" + shifted
			}
			return false, true, fmt.Sprintf("exit code %d became %d", int64(rb.ret), int64(ra.ret))
		}
		if !bytes.Equal(rb.output, ra.output) {
			if !strict {
				return true, false, "program output differs" + shifted
			}
			return false, true, "program output differs"
		}
		return true, true, ""

	default: // both pOK: every observable is comparable
		var mismatch string
		switch {
		case rb.ret != ra.ret:
			mismatch = fmt.Sprintf("return value %#x became %#x", rb.ret, ra.ret)
		case !bytes.Equal(rb.output, ra.output):
			mismatch = "program output differs"
		case !bytes.Equal(rb.globals, ra.globals):
			mismatch = "final global memory differs"
		case !bytes.Equal(rb.bufs, ra.bufs):
			mismatch = "pointer-argument buffer contents differ"
		default:
			return true, true, ""
		}
		if !strict {
			return true, false, mismatch + shifted
		}
		return false, true, mismatch
	}
}
