package validate

// Unit tests for the oracle's two engines and its verdict discipline. The
// corpus tests (corpus_test.go) cover the end-to-end pipeline behavior;
// these pin the internals: equational laws, the asymmetric trap rule,
// budget handling, and the fast-path soundness gates.

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

func mustParse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

// validatePair parses two module texts and validates them as one pass run.
func validatePair(t *testing.T, before, after string) *Result {
	t.Helper()
	return Default().ValidatePass("test", mustParse(t, before), mustParse(t, after))
}

func TestIdenticalModulesEquivalent(t *testing.T) {
	src := `
int %f(int %a) {
entry:
	%r = add int %a, 1
	ret int %r
}
`
	res := validatePair(t, src, src)
	if res.Verdict != Equivalent || res.Identical != 1 {
		t.Fatalf("got %s, want identical-equivalent", res.Summary())
	}
}

// TestEquationalProvesReassociation: (a+b)+c vs a+(c+b) must be proven
// without any execution.
func TestEquationalProvesReassociation(t *testing.T) {
	before := `
int %f(int %a, int %b, int %c) {
entry:
	%t = add int %a, %b
	%r = add int %t, %c
	ret int %r
}
`
	after := `
int %f(int %a, int %b, int %c) {
entry:
	%t = add int %c, %b
	%r = add int %a, %t
	ret int %r
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Equivalent || res.Proven != 1 {
		t.Fatalf("got %s, want equational proof", res.Summary())
	}
	if res.Probes != 0 {
		t.Fatalf("equational proof must not execute, ran %d probes", res.Probes)
	}
}

// TestEquationalProvesSubIdentity: a-a vs 0, via the sub -> add(a, -a)
// rewrite plus xor-style cancellation in the AC normalizer.
func TestEquationalProvesConstFold(t *testing.T) {
	before := `
int %f(int %a) {
entry:
	%t = mul int %a, 1
	%u = add int %t, 0
	ret int %u
}
`
	after := `
int %f(int %a) {
entry:
	ret int %a
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Equivalent || res.Proven != 1 {
		t.Fatalf("got %s, want equational proof of identity laws", res.Summary())
	}
}

// TestEquationalProvesMem2Reg: promoting a first-class alloca to SSA form
// is inside the equational fragment (cells start zeroed, loads forward).
func TestEquationalProvesMem2Reg(t *testing.T) {
	before := `
int %f(int %a) {
entry:
	%p = alloca int
	store int %a, int* %p
	%v = load int* %p
	%r = add int %v, 2
	ret int %r
}
`
	after := `
int %f(int %a) {
entry:
	%r = add int %a, 2
	ret int %r
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Equivalent || res.Proven != 1 {
		t.Fatalf("got %s, want equational mem2reg proof", res.Summary())
	}
}

// TestDifferentialCatchesWrongConstant: a direct scalar miscompile on an
// exported function must be confirmed differentially.
func TestDifferentialCatchesWrongConstant(t *testing.T) {
	before := `
int %f(int %a) {
entry:
	%r = add int %a, 1
	ret int %r
}
`
	after := `
int %f(int %a) {
entry:
	%r = add int %a, 2
	ret int %r
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Miscompile {
		t.Fatalf("got %s, want MISCOMPILE", res.Summary())
	}
	if res.Function != "f" || len(res.Counterexample) == 0 {
		t.Fatalf("miscompile must carry a counterexample, got %q %v", res.Function, res.Counterexample)
	}
}

// TestInternalDisagreementNotConfirmed: the same wrong-constant rewrite on
// an internal function must NOT confirm — interprocedural passes may
// legally specialize internal bodies against their known callers.
func TestInternalDisagreementNotConfirmed(t *testing.T) {
	before := `
internal int %f(int %a) {
entry:
	%r = add int %a, 1
	ret int %r
}
int %main() {
entry:
	ret int 0
}
`
	after := `
internal int %f(int %a) {
entry:
	%r = add int %a, 2
	ret int %r
}
int %main() {
entry:
	ret int 0
}
`
	res := validatePair(t, before, after)
	if res.Verdict == Miscompile {
		t.Fatalf("internal-only change must not confirm: %s", res.Summary())
	}
	if res.Internal != 1 {
		t.Fatalf("changed internal function not counted: %s", res.Summary())
	}
}

// TestInternalOnlyModuleInconclusive: with no exported definition to carry
// the evidence, a changed internal function leaves the oracle agnostic.
func TestInternalOnlyModuleInconclusive(t *testing.T) {
	before := `
internal int %f(int %a) {
entry:
	%r = add int %a, 1
	ret int %r
}
`
	after := `
internal int %f(int %a) {
entry:
	%r = add int %a, 2
	ret int %r
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Inconclusive || res.Method != "internal-only" {
		t.Fatalf("got %s, want inconclusive/internal-only", res.Summary())
	}
}

// TestUnchangedCallerOfChangedCalleeProbed: the identical-text fast path
// must not swallow a caller whose callee was rewritten; the miscompile
// surfaces through the caller.
func TestUnchangedCallerOfChangedCalleeProbed(t *testing.T) {
	before := `
internal int %callee(int %a) {
entry:
	%r = mul int %a, 2
	ret int %r
}
int %main() {
entry:
	%r = call int %callee(int 21)
	ret int %r
}
`
	after := `
internal int %callee(int %a) {
entry:
	%r = mul int %a, 3
	ret int %r
}
int %main() {
entry:
	%r = call int %callee(int 21)
	ret int %r
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Miscompile || res.Function != "main" {
		t.Fatalf("got %s, want MISCOMPILE via %%main", res.Summary())
	}
}

// TestRemovedTrapInconclusive: before traps, after returns — legal for
// DCE, so never a miscompile and never a proof of equivalence.
func TestRemovedTrapInconclusive(t *testing.T) {
	before := `
int %f(int %a) {
entry:
	%d = div int %a, 0
	ret int 7
}
`
	after := `
int %f(int %a) {
entry:
	ret int 7
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Inconclusive {
		t.Fatalf("got %s, want inconclusive (trap removed is legal)", res.Summary())
	}
}

// TestIntroducedTrapMiscompile: after traps where before returned — never
// legal, confirmed immediately.
func TestIntroducedTrapMiscompile(t *testing.T) {
	before := `
int %f(int %a) {
entry:
	ret int 7
}
`
	after := `
int %f(int %a) {
entry:
	%d = div int 1, 0
	ret int 7
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Miscompile || !strings.Contains(res.Detail, "introduced") {
		t.Fatalf("got %s, want introduced-trap MISCOMPILE", res.Summary())
	}
}

// TestBudgetExhaustionInconclusive: an infinite loop exhausts MaxSteps on
// both sides; the verdict must be Inconclusive, never Miscompile and
// never Equivalent.
func TestBudgetExhaustionInconclusive(t *testing.T) {
	src := `
int %f(int %a) {
entry:
	br label %loop
loop:
	br label %loop
}
`
	o := New(Options{MaxSteps: 100, MaxVectors: 2})
	res := o.ValidatePass("test", mustParse(t, src), mustParse(t, `
int %f(int %a) {
entry:
	br label %spin
spin:
	br label %spin
}
`))
	if res.Verdict != Inconclusive || res.Unresolved != 1 {
		t.Fatalf("got %s, want budget-inconclusive", res.Summary())
	}
}

// TestSignatureChangeSkipped: a pass that changes a function's signature
// (dead-argument elimination) leaves that function uncheckable.
func TestSignatureChangeSkipped(t *testing.T) {
	before := `
int %f(int %a, int %dead) {
entry:
	ret int %a
}
`
	after := `
int %f(int %a) {
entry:
	ret int %a
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Inconclusive || res.Skipped != 1 {
		t.Fatalf("got %s, want skipped-inconclusive", res.Summary())
	}
}

// TestDeletedFunctionTolerated: deleting an internal function (inliner,
// global DCE) is not by itself suspicious.
func TestDeletedFunctionTolerated(t *testing.T) {
	before := `
internal int %gone() {
entry:
	ret int 1
}
int %main() {
entry:
	ret int 3
}
`
	after := `
int %main() {
entry:
	ret int 3
}
`
	res := validatePair(t, before, after)
	if res.Verdict == Miscompile || res.Deleted != 1 {
		t.Fatalf("got %s, want deletion tolerated", res.Summary())
	}
}

// TestGlobalMemoryMiscompile: a pass that corrupts a store into a shared
// global is caught through the final-memory observable.
func TestGlobalMemoryMiscompile(t *testing.T) {
	before := `
%g = global int 0
void %f(int %a) {
entry:
	store int %a, int* %g
	ret void
}
`
	after := `
%g = global int 0
void %f(int %a) {
entry:
	%t = add int %a, 1
	store int %t, int* %g
	ret void
}
`
	res := validatePair(t, before, after)
	if res.Verdict != Miscompile || !strings.Contains(res.Detail, "global memory") {
		t.Fatalf("got %s, want global-memory MISCOMPILE", res.Summary())
	}
}

// TestDeterministicVerdicts: the same pair yields byte-identical results
// across repeated runs (the remarks golden depends on this).
func TestDeterministicVerdicts(t *testing.T) {
	before := `
int %f(int %a, int %b) {
entry:
	%r = mul int %a, %b
	ret int %r
}
`
	after := `
int %f(int %a, int %b) {
entry:
	%r = mul int %b, %a
	ret int %r
}
`
	first := validatePair(t, before, after)
	for i := 0; i < 3; i++ {
		again := validatePair(t, before, after)
		if again.Summary() != first.Summary() {
			t.Fatalf("verdict not deterministic: %q vs %q", first.Summary(), again.Summary())
		}
	}
}

// TestLeaksAddressesDetection pins the punning detector on the three cast
// shapes that move address bits across the pointer/data boundary.
func TestLeaksAddressesDetection(t *testing.T) {
	clean := mustParse(t, `
int %f(int* %p) {
entry:
	%v = load int* %p
	ret int %v
}
`)
	if leaksAddresses(clean) {
		t.Error("clean module flagged as punning")
	}
	punned := mustParse(t, `
long %f(int* %p) {
entry:
	%v = cast int* %p to long
	ret long %v
}
`)
	if !leaksAddresses(punned) {
		t.Error("pointer-to-scalar cast not flagged")
	}
}
