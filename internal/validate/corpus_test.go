package validate_test

// The seeded-miscompile corpus test: every deliberately broken pass in
// examples/validate must be flagged by the oracle, and the real pipelines
// must never draw a confirmed-miscompile verdict over any example or
// workload module (the zero-false-confirms contract).

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/tooling"
	"repro/internal/validate"
	"repro/internal/workload"
)

// corpusFiles returns the seeded corpus; each file is named after the
// broken pass it exposes.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../examples/validate/*.ll")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus modules found: %v", err)
	}
	return files
}

// TestOracleCatchesSeededMiscompiles runs each broken pass over its corpus
// module and requires a confirmed Miscompile verdict. It also pins the
// property that makes the corpus meaningful: the broken output still
// passes the verifier, so only semantic validation can reject it.
func TestOracleCatchesSeededMiscompiles(t *testing.T) {
	for _, file := range corpusFiles(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".ll")
		t.Run(name, func(t *testing.T) {
			p, ok := passes.BrokenPassByName(name)
			if !ok {
				t.Fatalf("no broken pass registered for corpus file %s", file)
			}
			before, err := tooling.LoadModule(file)
			if err != nil {
				t.Fatalf("loading %s: %v", file, err)
			}
			after := core.CloneModule(before)
			if n := p.RunOnModule(after); n == 0 {
				t.Fatalf("%s made no changes on its own corpus module", name)
			}
			if err := core.Verify(after); err != nil {
				t.Fatalf("broken output must be verifier-valid (only the oracle may reject it): %v", err)
			}
			res := validate.Default().ValidatePass(name, before, after)
			if res.Verdict != validate.Miscompile {
				t.Fatalf("oracle verdict = %s, want MISCOMPILE (%s)", res.Verdict, res.Summary())
			}
			if res.Function == "" {
				t.Error("miscompile verdict carries no function")
			}
			t.Logf("caught: %s", res.Summary())
		})
	}
}

// runValidated runs a pipeline with the oracle installed and fails the
// test on any confirmed miscompile among the results.
func runValidated(t *testing.T, m *core.Module, linktime bool, oracle *validate.Oracle) {
	t.Helper()
	pm := passes.NewPassManager()
	pm.Policy = passes.SkipAndContinue
	pm.VerifyEach = true
	pm.Validator = oracle
	if linktime {
		pm.AddLinkTimePipeline()
	} else {
		pm.AddStandardPipeline()
	}
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	for _, r := range pm.Results {
		if v := r.Validation; v != nil && v.Verdict == validate.Miscompile {
			t.Errorf("false confirmed miscompile from real pass %q: %s", r.Pass, v.Summary())
		}
	}
}

// TestNoFalseConfirmsExamples runs the full std pipeline with validation
// over every checked-in example module, including the corpus modules
// themselves (the seeded bugs live in the passes, not the modules).
func TestNoFalseConfirmsExamples(t *testing.T) {
	var files []string
	for _, dir := range []string{"validate", "checker", "linktime"} {
		fs, _ := filepath.Glob("../../examples/" + dir + "/*.ll")
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Fatal("no example modules found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(filepath.Dir(file))+"/"+filepath.Base(file), func(t *testing.T) {
			t.Parallel()
			m, err := tooling.LoadModule(file)
			if err != nil {
				t.Fatalf("loading %s: %v", file, err)
			}
			runValidated(t, m, false, validate.Default())
		})
	}
}

// buildRaw links a workload program from unoptimized front-end output, so
// the validated pipeline transforms realistic modules.
func buildRaw(t testing.TB, p workload.Profile) *core.Module {
	t.Helper()
	prog := workload.Generate(p)
	mods := make([]*core.Module, 0, len(prog.Units))
	for i, src := range prog.Units {
		m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
		if err != nil {
			t.Fatalf("%s unit %d: %v", p.Name, i, err)
		}
		mods = append(mods, m)
	}
	m, err := linker.Link(p.Name, mods...)
	if err != nil {
		t.Fatalf("link %s: %v", p.Name, err)
	}
	return m
}

// TestNoFalseConfirmsWorkload runs validated std and linktime pipelines
// over the synthetic workload suite. The oracle gets reduced budgets to
// bound test time — reduced budgets can only add Inconclusive results,
// never a false Miscompile, which is exactly the property under test.
func TestNoFalseConfirmsWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep is slow")
	}
	oracle := validate.New(validate.Options{
		MaxVectors:   3,
		MaxSteps:     100_000,
		MaxHeapBytes: 8 << 20,
		MaxFunctions: 12,
	})
	for _, p := range workload.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			runValidated(t, buildRaw(t, p), false, oracle)
			runValidated(t, buildRaw(t, p), true, oracle)
		})
	}
}
