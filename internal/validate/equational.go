package validate

// The equational engine proves pure-SSA rewrites correct without executing
// anything, against a small set of algebraic laws from the equational
// theory of SSA: constant folding, commutativity, associativity of the
// wraparound integer ring operations, arithmetic identities, and
// canonicalization of comparisons. It handles exactly the fragment the
// pure scalar passes (mem2reg, sroa, cse, instcombine's reassociation)
// rewrite: a single basic block of straight-line code over non-escaping
// stack cells, ending in a ret. Anything outside the fragment — control
// flow, calls, escaping memory, floats (whose addition does not
// associate), undef — makes it decline, falling through to the
// differential engine. Declining is always sound: the engine can only
// confirm equivalence, never a miscompile.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// equationallyEqual reports whether bf and af provably compute the same
// return value. Both functions must already have equal signatures.
func equationallyEqual(bf, af *core.Function) bool {
	sb, ok := summarize(bf)
	if !ok {
		return false
	}
	sa, ok := summarize(af)
	if !ok {
		return false
	}
	return sb == sa
}

// sym is a symbolic value: a constant, a parameter, or an operator applied
// to symbolic operands. Trees are compared through their canonical
// rendering, so normalize must produce one spelling per equivalence class.
type sym struct {
	op   core.Opcode // valid when kind == symOp
	kind symKind
	typ  core.Type
	val  uint64 // constant bits (symConst) or parameter index (symArg)
	args []*sym
}

type symKind int

const (
	symConst symKind = iota
	symArg
	symOp
)

// summarize builds the normalized symbolic return value of f, or declines
// (ok=false) when f is outside the pure straight-line fragment. Void
// functions in the fragment summarize to "void": with no calls, no escaping
// stores, and no control flow they have no observables at all.
func summarize(f *core.Function) (string, bool) {
	if len(f.Blocks) != 1 {
		return "", false
	}
	b := f.Blocks[0]
	ret, ok := b.Terminator().(*core.RetInst)
	if !ok {
		return "", false
	}

	env := map[core.Value]*sym{}   // SSA value -> symbolic value
	cells := map[core.Value]*sym{} // non-escaping alloca -> current content
	for _, inst := range b.Instrs {
		if inst == core.Instruction(ret) {
			break
		}
		switch i := inst.(type) {
		case *core.AllocaInst:
			if i.NumElems() != nil || !core.IsFirstClass(i.AllocType) || escapes(i) {
				return "", false
			}
			// The interpreter zeroes alloca memory, so a cell starts as the
			// zero constant of its type.
			cells[i] = &sym{kind: symConst, typ: i.AllocType, val: 0}
		case *core.LoadInst:
			cell, tracked := cells[i.Ptr()]
			if !tracked {
				return "", false
			}
			env[i] = cell
		case *core.StoreInst:
			if _, tracked := cells[i.Ptr()]; !tracked {
				return "", false
			}
			v, ok := symFor(env, i.Val())
			if !ok {
				return "", false
			}
			cells[i.Ptr()] = v
		case *core.BinaryInst:
			lhs, ok1 := symFor(env, i.LHS())
			rhs, ok2 := symFor(env, i.RHS())
			if !ok1 || !ok2 {
				return "", false
			}
			t := i.Type()
			if core.IsFloatingPoint(t) || core.IsFloatingPoint(i.LHS().Type()) {
				return "", false
			}
			// div/rem are not pure terms: they trap on a zero divisor, so
			// deleting or introducing one changes behavior even when the
			// result is unused. Only a provably nonzero constant divisor
			// keeps them inside the equational fragment.
			if op := i.Opcode(); op == core.OpDiv || op == core.OpRem {
				if rhs.kind != symConst || rhs.val == 0 {
					return "", false
				}
			}
			env[i] = normalize(&sym{kind: symOp, op: i.Opcode(), typ: t, args: []*sym{lhs, rhs}})
		case *core.CastInst:
			v, ok := symFor(env, i.Val())
			if !ok {
				return "", false
			}
			env[i] = normalize(&sym{kind: symOp, op: core.OpCast, typ: i.Type(), args: []*sym{v}})
		default:
			return "", false
		}
	}

	if ret.Value() == nil {
		return "void", true
	}
	v, ok := symFor(env, ret.Value())
	if !ok {
		return "", false
	}
	return render(v), true
}

// escapes reports whether an alloca's address is used as anything but the
// pointer operand of a load or store — the condition under which its cell
// contents stay private to the symbolic evaluation.
func escapes(a *core.AllocaInst) bool {
	for _, u := range a.Uses() {
		switch i := u.User.(type) {
		case *core.LoadInst:
			// ok: the load reads the cell
		case *core.StoreInst:
			if i.Ptr() != core.Value(a) {
				return true // the address itself is stored somewhere
			}
		default:
			return true
		}
	}
	return false
}

// symFor resolves an operand: an already-summarized instruction, a
// function parameter, or an integer/bool constant. Undef is opaque — the
// engine declines rather than pick a value for it.
func symFor(env map[core.Value]*sym, v core.Value) (*sym, bool) {
	if s, ok := env[v]; ok {
		return s, true
	}
	switch c := v.(type) {
	case *core.Argument:
		return &sym{kind: symArg, typ: c.Type(), val: uint64(c.Index())}, true
	case *core.ConstantInt:
		return &sym{kind: symConst, typ: c.Type(), val: c.Val}, true
	case *core.ConstantBool:
		var bits uint64
		if c.Val {
			bits = 1
		}
		return &sym{kind: symConst, typ: c.Type(), val: bits}, true
	}
	return nil, false
}

// allOnes is the all-ones bit pattern of t's width: the additive inverse
// of 1 in the wraparound ring, used to rewrite subtraction as addition.
func allOnes(t core.Type) uint64 {
	w := core.BitWidth(t)
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

func isConst(s *sym, v uint64) bool { return s.kind == symConst && s.val == v }

// normalize rewrites s to the canonical representative of its equivalence
// class. Children are assumed already normalized (summarize builds bottom-
// up). All integer laws here hold in two's-complement wraparound
// semantics, which is what EvalIntBinary implements.
func normalize(s *sym) *sym {
	if s.kind != symOp {
		return s
	}

	// Constant folding, including casts between foldable scalar kinds.
	if s.op == core.OpCast {
		a := s.args[0]
		if a.kind == symConst && core.IsInteger(a.typ) && (core.IsInteger(s.typ) || s.typ.Kind() == core.BoolKind) {
			if s.typ.Kind() == core.BoolKind {
				v := uint64(0)
				if a.val != 0 {
					v = 1
				}
				return &sym{kind: symConst, typ: s.typ, val: v}
			}
			return &sym{kind: symConst, typ: s.typ, val: core.EvalIntCast(a.typ, s.typ, a.val)}
		}
		if core.TypesEqual(a.typ, s.typ) {
			return a
		}
		return s
	}

	a, b := s.args[0], s.args[1]
	intLike := core.IsInteger(a.typ)
	if a.kind == symConst && b.kind == symConst && intLike {
		if core.IsComparisonOp(s.op) {
			if r, ok := core.EvalIntCompare(s.op, a.typ, a.val, b.val); ok {
				v := uint64(0)
				if r {
					v = 1
				}
				return &sym{kind: symConst, typ: s.typ, val: v}
			}
		} else if r, ok := core.EvalIntBinary(s.op, s.typ, a.val, b.val); ok {
			return &sym{kind: symConst, typ: s.typ, val: r}
		}
	}

	if !intLike {
		return s
	}

	switch s.op {
	case core.OpSub:
		// a - b  ≡  a + b*(-1)  under wraparound semantics.
		neg := normalize(&sym{kind: symOp, op: core.OpMul, typ: s.typ,
			args: []*sym{b, {kind: symConst, typ: s.typ, val: allOnes(s.typ)}}})
		return normalize(&sym{kind: symOp, op: core.OpAdd, typ: s.typ, args: []*sym{a, neg}})

	case core.OpAdd, core.OpMul, core.OpAnd, core.OpOr, core.OpXor:
		return normalizeACOp(s)

	case core.OpShl, core.OpShr:
		if isConst(b, 0) {
			return a
		}

	case core.OpSetGT:
		return normalize(&sym{kind: symOp, op: core.OpSetLT, typ: s.typ, args: []*sym{b, a}})
	case core.OpSetGE:
		return normalize(&sym{kind: symOp, op: core.OpSetLE, typ: s.typ, args: []*sym{b, a}})
	case core.OpSetEQ, core.OpSetNE:
		if render(a) > render(b) {
			return &sym{kind: symOp, op: s.op, typ: s.typ, args: []*sym{b, a}}
		}
	}
	return s
}

// normalizeACOp canonicalizes an associative-commutative integer
// operation: flatten nested applications, fold all constants into one,
// apply identity and absorbing elements, cancel xor pairs, and sort the
// remaining operands into one canonical order.
func normalizeACOp(s *sym) *sym {
	var flat []*sym
	var collect func(v *sym)
	collect = func(v *sym) {
		if v.kind == symOp && v.op == s.op && core.TypesEqual(v.typ, s.typ) {
			for _, c := range v.args {
				collect(c)
			}
			return
		}
		flat = append(flat, v)
	}
	collect(s)

	// Fold every constant operand into a single accumulated constant.
	var identity uint64
	switch s.op {
	case core.OpMul:
		identity = 1
	case core.OpAnd:
		identity = allOnes(s.typ)
	}
	acc := identity
	terms := flat[:0]
	for _, v := range flat {
		if v.kind == symConst {
			if r, ok := core.EvalIntBinary(s.op, s.typ, acc, v.val); ok {
				acc = r
				continue
			}
		}
		terms = append(terms, v)
	}

	// Absorbing elements collapse the whole expression.
	if (s.op == core.OpMul || s.op == core.OpAnd) && acc == 0 {
		return &sym{kind: symConst, typ: s.typ, val: 0}
	}
	if s.op == core.OpOr && acc == allOnes(s.typ) {
		return &sym{kind: symConst, typ: s.typ, val: acc}
	}

	// x ^ x cancels pairwise.
	if s.op == core.OpXor {
		counts := map[string][]*sym{}
		for _, v := range terms {
			counts[render(v)] = append(counts[render(v)], v)
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		terms = terms[:0]
		for _, k := range keys {
			if len(counts[k])%2 == 1 {
				terms = append(terms, counts[k][0])
			}
		}
	}

	if acc != identity {
		terms = append(terms, &sym{kind: symConst, typ: s.typ, val: acc})
	}
	if len(terms) == 0 {
		return &sym{kind: symConst, typ: s.typ, val: identity}
	}
	if len(terms) == 1 {
		return terms[0]
	}
	sort.SliceStable(terms, func(i, j int) bool { return render(terms[i]) < render(terms[j]) })
	return &sym{kind: symOp, op: s.op, typ: s.typ, args: terms}
}

// render spells a symbolic value canonically; normalized trees are equal
// iff their renderings are.
func render(s *sym) string {
	switch s.kind {
	case symConst:
		return fmt.Sprintf("%s:%d", s.typ, s.val)
	case symArg:
		return fmt.Sprintf("%%arg%d", s.val)
	}
	parts := make([]string, 0, len(s.args)+2)
	parts = append(parts, s.op.String(), s.typ.String())
	for _, a := range s.args {
		parts = append(parts, render(a))
	}
	return "(" + strings.Join(parts, " ") + ")"
}
