package lifelong

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightGroupSharesConcurrentCalls: followers arriving while the
// leader's fn runs share its result (and report shared=true); the fn runs
// exactly once.
func TestFlightGroupSharesConcurrentCalls(t *testing.T) {
	var g flightGroup
	ran := 0
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	want := &CompileResult{ModuleHash: "abc"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	sharedCount := 0
	leaderShared := false

	wg.Add(1)
	go func() {
		defer wg.Done()
		res, leaderTrace, shared, err := g.Do("k", "trace-leader", func() (*CompileResult, error) {
			ran++
			close(leaderIn)
			<-release
			return want, nil
		})
		if err != nil || res != want {
			t.Errorf("leader: res=%v err=%v", res, err)
		}
		if leaderTrace != "" {
			t.Errorf("leader got leaderTrace %q, want empty", leaderTrace)
		}
		leaderShared = shared
	}()

	<-leaderIn // the leader is now inside fn; followers must share
	const followers = 5
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, leaderTrace, shared, err := g.Do("k", "trace-follower", func() (*CompileResult, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
			if err != nil || res != want {
				t.Errorf("follower: res=%v err=%v", res, err)
			}
			// Dedup attribution: every follower learns whose pipeline run
			// it joined.
			if leaderTrace != "trace-leader" {
				t.Errorf("follower got leaderTrace %q, want trace-leader", leaderTrace)
			}
			if shared {
				mu.Lock()
				sharedCount++
				mu.Unlock()
			}
		}()
	}
	// Hold the leader until every follower is provably waiting on the
	// in-flight call; releasing earlier would let a follower arrive after
	// the key is deleted and become a second leader.
	for g.followersOf("k") != followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if ran != 1 {
		t.Fatalf("fn ran %d times, want 1", ran)
	}
	if leaderShared {
		t.Fatal("leader reported shared=true")
	}
	if sharedCount != followers {
		t.Fatalf("%d followers reported shared, want %d", sharedCount, followers)
	}
}

// TestFlightGroupKeysIndependent: different keys never share, and a
// completed flight's key is reusable (the leader removes it on exit).
func TestFlightGroupKeysIndependent(t *testing.T) {
	var g flightGroup
	ran := 0
	fn := func() (*CompileResult, error) { ran++; return &CompileResult{}, nil }
	if _, _, shared, _ := g.Do("a", "t1", fn); shared {
		t.Fatal("first call shared")
	}
	if _, _, shared, _ := g.Do("b", "t2", fn); shared {
		t.Fatal("distinct key shared")
	}
	if _, _, shared, _ := g.Do("a", "t3", fn); shared {
		t.Fatal("sequential reuse of a completed key shared")
	}
	if ran != 3 {
		t.Fatalf("fn ran %d times, want 3", ran)
	}
}

// TestFlightGroupPropagatesError: followers receive the leader's error.
func TestFlightGroupPropagatesError(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, _, _, err := g.Do("k", "t", func() (*CompileResult, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestStatsReportsDeduped: the /stats requests block and /metrics expose
// the single-flight dedup counter.
func TestStatsReportsDeduped(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableReopt: true})
	getJSON := func(url string, out interface{}) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	var st statsResponse
	getJSON(ts.URL+"/stats", &st)
	if st.Requests.Deduped != 0 {
		t.Fatalf("fresh server deduped = %d, want 0", st.Requests.Deduped)
	}
	s.cDedup.Inc()
	getJSON(ts.URL+"/stats", &st)
	if st.Requests.Deduped != 1 {
		t.Fatalf("deduped = %d after increment, want 1", st.Requests.Deduped)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "llvm_serve_singleflight_shared_total 1") {
		t.Fatal("/metrics does not expose the single-flight counter")
	}
}
