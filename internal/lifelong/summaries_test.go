package lifelong

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/dsa"
)

const summarySrc = `
%g = internal global int 0

internal void %writeg(int %v) {
entry:
	store int %v, int* %g
	ret void
}

int %main() {
entry:
	%a = alloca int
	%b = alloca int
	store int 1, int* %a
	store int 2, int* %b
	call void %writeg(int 3)
	%v = load int* %a
	ret int %v
}
`

func TestSummariesPersistAndReuse(t *testing.T) {
	st := openStore(t, 0)
	m := parse(t, summarySrc)
	hash, canonical, err := st.PutModule(m)
	if err != nil {
		t.Fatal(err)
	}

	r1, reused := SummariesFor(st, hash, m)
	if reused {
		t.Fatal("first computation claimed reuse")
	}
	if r1.Restored() {
		t.Fatal("fresh analysis marked restored")
	}
	if st.Stats().Summaries != 1 {
		t.Fatalf("summary blob count = %d, want 1", st.Stats().Summaries)
	}

	// A second round trip through the store — fresh decode of the same
	// canonical bytes — must reuse the persisted blob, not recompute.
	m2, err := bytecode.Decode(canonical)
	if err != nil {
		t.Fatal(err)
	}
	r2, reused := SummariesFor(st, hash, m2)
	if !reused {
		t.Fatal("unchanged module did not reuse persisted summaries")
	}
	if !r2.Restored() {
		t.Fatal("reused result not marked restored")
	}

	// The restored result answers the same queries: the two allocas of
	// main are distinct, and writeg's effects are visible.
	f := m2.Func("main")
	entry := f.Blocks[0]
	a, b := entry.Instrs[0], entry.Instrs[1]
	if got := r2.Alias(a, b); got != dsa.NoAlias {
		t.Fatalf("restored Alias(%%a, %%b) = %v, want no", got)
	}
	if got := r2.Alias(a, a); got != dsa.MustAlias {
		t.Fatalf("restored Alias(%%a, %%a) = %v, want must", got)
	}
	fe := r2.Effects(m2.Func("writeg"))
	if fe == nil || !fe.Mod[r2.NodeFor(m2.Global("g"))] {
		t.Fatal("restored effects lost writeg's mod of the global")
	}
}

func TestSummariesInvalidatedByModuleChange(t *testing.T) {
	st := openStore(t, 0)
	m := parse(t, summarySrc)
	hash, _, err := st.PutModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, reused := SummariesFor(st, hash, m); reused {
		t.Fatal("cold store claimed reuse")
	}

	// A changed module has a different content address: the lookup misses
	// structurally, so stale summaries can never be consulted.
	changed := parse(t, strings.Replace(summarySrc, "int 1", "int 42", 1))
	hash2, _, err := st.PutModule(changed)
	if err != nil {
		t.Fatal(err)
	}
	if hash2 == hash {
		t.Fatal("mutated module hashed identically")
	}
	if _, reused := SummariesFor(st, hash2, changed); reused {
		t.Fatal("mutated module reused stale summaries")
	}

	// Defense in depth: even a blob planted under the right hash is
	// rejected by the decoder when it does not describe the module, and
	// recomputed instead of trusted.
	bigger := parse(t, summarySrc+`
int %extra(int %x) {
entry:
	ret int %x
}
`)
	hash3, _, err := st.PutModule(bigger)
	if err != nil {
		t.Fatal(err)
	}
	foreign, ok := st.GetSummaries(hash)
	if !ok {
		t.Fatal("original blob vanished")
	}
	if err := st.PutSummaries(hash3, foreign); err != nil {
		t.Fatal(err)
	}
	r, reused := SummariesFor(st, hash3, bigger)
	if reused {
		t.Fatal("foreign summary blob accepted for a different module")
	}
	if r == nil || r.Restored() {
		t.Fatal("fallback recomputation missing or mislabeled")
	}
}

// TestCheckEndpointReusesSummaries pins the acceptance criterion: a warm
// /check round trip reuses the persisted summaries (reuse counter > 0) and
// a mutated module never does.
func TestCheckEndpointReusesSummaries(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableReopt: true})

	var cold, warm, mutated checkResponse
	if resp := postJSON(t, ts.URL+"/check", []byte(summarySrc), &cold); resp.StatusCode != 200 {
		t.Fatalf("cold check status %d", resp.StatusCode)
	}
	if cold.SummariesReused {
		t.Fatal("cold check claimed summary reuse")
	}
	if resp := postJSON(t, ts.URL+"/check", []byte(summarySrc), &warm); resp.StatusCode != 200 {
		t.Fatalf("warm check status %d", resp.StatusCode)
	}
	if !warm.SummariesReused {
		t.Fatal("warm check did not reuse persisted summaries")
	}
	if warm.ModuleHash != cold.ModuleHash {
		t.Fatal("module hash unstable across checks")
	}
	// Same module, same diagnostics, either path.
	if len(warm.Diagnostics) != len(cold.Diagnostics) || warm.Errors != cold.Errors {
		t.Fatalf("restored summaries changed diagnostics: %d/%d vs %d/%d",
			len(warm.Diagnostics), warm.Errors, len(cold.Diagnostics), cold.Errors)
	}
	if v := s.cAliasReuse.Value(); v < 1 {
		t.Fatalf("llvm_alias_summary_reuse_total = %v, want >= 1", v)
	}

	src2 := strings.Replace(summarySrc, "int 1", "int 42", 1)
	if resp := postJSON(t, ts.URL+"/check", []byte(src2), &mutated); resp.StatusCode != 200 {
		t.Fatalf("mutated check status %d", resp.StatusCode)
	}
	if mutated.SummariesReused {
		t.Fatal("mutated module reused stale summaries")
	}
	if mutated.ModuleHash == cold.ModuleHash {
		t.Fatal("mutated module kept the same content address")
	}
	if st := s.store.Stats(); st.Summaries != 2 {
		t.Fatalf("summary blobs = %d, want 2 (one per distinct module)", st.Summaries)
	}
}
