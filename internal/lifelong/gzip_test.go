package lifelong

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"testing"
)

// TestCompileGzipRequest: a gzip-compressed request body compiles to the
// same artifact as the identity encoding.
func TestCompileGzipRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	_, plain := post(t, ts.URL+"/compile?raw=1", mod)

	var gzBody bytes.Buffer
	zw := gzip.NewWriter(&gzBody)
	zw.Write(mod)
	zw.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile?raw=1", &gzBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("gzip request: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("gzip request cache %q: encodings must share one cache entry", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, plain) {
		t.Fatal("gzip request produced a different artifact")
	}
}

// TestCompileGzipResponse: Accept-Encoding: gzip gets a gzip body that
// decodes to the identity response; clients not asking get identity.
func TestCompileGzipResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	_, plain := post(t, ts.URL+"/compile?raw=1", mod)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile?raw=1", bytes.NewReader(mod))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	// RoundTrip (not Do) so the transport neither adds its own
	// Accept-Encoding nor transparently decompresses the response.
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, plain) {
		t.Fatal("gzip response does not decode to the identity artifact")
	}
}

// TestReadBodyBombGuard: the size cap applies to DECODED bytes, so a tiny
// gzip body expanding past the limit is rejected with 413, not buffered.
func TestReadBodyBombGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true, MaxBody: 2048})

	// ~1MB of zeros compresses to ~1KB: under the cap on the wire, far
	// over it decoded.
	var gzBody bytes.Buffer
	zw := gzip.NewWriter(&gzBody)
	zw.Write(make([]byte, 1<<20))
	zw.Close()
	if gzBody.Len() > 2048 {
		t.Fatalf("test premise broken: compressed bomb is %d bytes", gzBody.Len())
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile", &gzBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("bomb status %d, want 413", resp.StatusCode)
	}
}

// TestReadBodyRejectsUnknownEncoding: an unsupported Content-Encoding is
// a 400, not silent misparsing.
func TestReadBodyRejectsUnknownEncoding(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/compile", bytes.NewReader(hotModuleText(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "br")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown encoding status %d, want 400", resp.StatusCode)
	}
}
