package lifelong

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/frontend/minic"
)

// hotSrc has a call site the profile-guided reoptimizer provably inlines
// (see profile.TestReoptimizeInlinesHotSites), so the epoch>0 artifact
// differs from the plain pipeline's output.
const hotSrc = `
static int hotwork(int x) {
	int r = x;
	int i;
	for (i = 0; i < 3; i++) r = r * 2 + i;
	return r % 1000;
}
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 500; i++) acc = (acc + hotwork(i)) % 100000;
	return acc % 251;
}
`

// hotModuleText compiles hotSrc to textual IR, the form a client would
// POST. The standard pipeline must NOT have run on it — the daemon does
// that — but minic.Compile output is raw front-end IR, which is what we
// want.
func hotModuleText(t *testing.T) []byte {
	t.Helper()
	m, err := minic.Compile("hot", hotSrc)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(m.String())
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func postJSON(t *testing.T, url string, body []byte, out interface{}) *http.Response {
	t.Helper()
	resp, data := post(t, url, body)
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", url, data, err)
	}
	return resp
}

// TestCompileWarmHitIsByteIdentical pins the acceptance criterion: the
// second /compile of an unchanged module is a cache hit, does zero pass
// work, and returns byte-identical bytecode.
func TestCompileWarmHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	r1, cold := post(t, ts.URL+"/compile?raw=1", mod)
	if r1.StatusCode != 200 || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold compile: status %d cache %q", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	r2, warm := post(t, ts.URL+"/compile?raw=1", mod)
	if r2.StatusCode != 200 || r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm compile: status %d cache %q", r2.StatusCode, r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm artifact not byte-identical (%d vs %d bytes)", len(cold), len(warm))
	}
	if r1.Header.Get("X-Module-Hash") != r2.Header.Get("X-Module-Hash") {
		t.Fatal("module hash unstable across requests")
	}

	// JSON mode reports the same result with the bytecode inline.
	var jr compileResponse
	if resp := postJSON(t, ts.URL+"/compile", mod, &jr); resp.StatusCode != 200 {
		t.Fatalf("json compile status %d", resp.StatusCode)
	}
	if !jr.Hit || jr.Size != len(cold) {
		t.Fatalf("json compile: hit=%v size=%d want hit with %d bytes", jr.Hit, jr.Size, len(cold))
	}
}

// TestCompilePipelinesKeyedSeparately: the same module through different
// pipeline specs yields independently cached artifacts.
func TestCompilePipelinesKeyedSeparately(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	r1, _ := post(t, ts.URL+"/compile?raw=1&pipeline=std", mod)
	r2, _ := post(t, ts.URL+"/compile?raw=1&pipeline=linktime", mod)
	if r1.Header.Get("X-Cache") != "miss" || r2.Header.Get("X-Cache") != "miss" {
		t.Fatal("distinct pipelines should each compile cold")
	}
	r3, _ := post(t, ts.URL+"/compile?raw=1&pipeline=linktime", mod)
	if r3.Header.Get("X-Cache") != "hit" {
		t.Fatal("second linktime compile should hit")
	}
	r4, _ := post(t, ts.URL+"/compile?raw=1&pipeline=mem2reg,nosuchpass", mod)
	if r4.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad pipeline spec: status %d", r4.StatusCode)
	}
}

// TestRunAccumulatesProfileAndEpochs: /run executes in the sandbox,
// returns the program's result, and folds per-run profiles into the
// store with the doubling epoch rule.
func TestRunAccumulatesProfileAndEpochs(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	var r1 runResponse
	if resp := postJSON(t, ts.URL+"/run", mod, &r1); resp.StatusCode != 200 {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if r1.Trap != "" || r1.Steps == 0 {
		t.Fatalf("run: trap=%q steps=%d", r1.Trap, r1.Steps)
	}
	if !r1.Profiled || r1.ProfileEpoch != 1 || !r1.EpochAdvanced {
		t.Fatalf("first run: %+v, want epoch 1 advanced", r1)
	}
	var r2 runResponse
	postJSON(t, ts.URL+"/run", mod, &r2)
	if r2.ProfileEpoch != 2 || !r2.EpochAdvanced {
		t.Fatalf("second run: %+v, want epoch 2", r2)
	}
	var r3 runResponse
	postJSON(t, ts.URL+"/run", mod, &r3)
	if r3.EpochAdvanced || r3.ProfileEpoch != 2 {
		t.Fatalf("third run: %+v, want no advance", r3)
	}

	// profile=0 opts out.
	var r4 runResponse
	postJSON(t, ts.URL+"/run?profile=0", mod, &r4)
	if r4.Profiled {
		t.Fatal("profile=0 still profiled")
	}

	// The store has the module interned for the idle reoptimizer.
	if _, ok := s.store.GetModuleBytes(r1.ModuleHash); !ok {
		t.Fatal("/run did not intern the module")
	}
}

// TestRunReusesTranslations: repeated /run requests for the same module
// execute against one resident module object and one shared translation
// cache, so the second request reuses the first's tier translations
// instead of recompiling them per machine.
func TestRunReusesTranslations(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	var r1, r2 runResponse
	postJSON(t, ts.URL+"/run", mod, &r1)
	st1, n1 := s.progs.stats()
	postJSON(t, ts.URL+"/run", mod, &r2)
	st2, n2 := s.progs.stats()

	if r1.Trap != "" || r2.Trap != "" || r1.ExitCode != r2.ExitCode {
		t.Fatalf("runs disagree: %+v vs %+v", r1, r2)
	}
	if n1 != 1 || n2 != 1 {
		t.Fatalf("resident programs: %d then %d, want 1", n1, n2)
	}
	compiles1 := st1.T1Compiles + st1.T2Compiles
	compiles2 := st2.T1Compiles + st2.T2Compiles
	if compiles1 == 0 {
		t.Fatal("first run compiled nothing")
	}
	if compiles2 != compiles1 {
		t.Fatalf("second run retranslated: %d compiles then %d", compiles1, compiles2)
	}
	if reuses := st2.T1Reused + st2.T2Reused; reuses == 0 {
		t.Fatal("second run reused no translations")
	}

	// The reuse counters surface on /stats for operators.
	var stats statsResponse
	resp, body := post(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.ResidentPrograms != 1 || stats.Engine.T1Reused+stats.Engine.T2Reused == 0 {
		t.Fatalf("stats engine block: %+v", stats.Engine)
	}
}

// TestRunOutputAndTrap: program output is captured, and traps surface as
// diagnostics, not failures.
func TestRunOutputAndTrap(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})

	hello := []byte(`
%fmt = internal constant [4 x sbyte] c"hi\0A\00"
declare int %printf(sbyte*, ...)
int %main() {
entry:
	%p = getelementptr [4 x sbyte]* %fmt, long 0, long 0
	%r = call int %printf(sbyte* %p)
	ret int 7
}
`)
	var rr runResponse
	postJSON(t, ts.URL+"/run", hello, &rr)
	if rr.ExitCode != 7 || rr.Output != "hi\n" {
		t.Fatalf("hello run: %+v", rr)
	}

	trap := []byte(`
int %main() {
entry:
	%p = cast long 0 to int*
	%v = load int* %p
	ret int %v
}
`)
	var tr runResponse
	resp := postJSON(t, ts.URL+"/run", trap, &tr)
	if resp.StatusCode != 200 || !strings.Contains(tr.Trap, "null pointer") {
		t.Fatalf("trap run: status %d %+v", resp.StatusCode, tr)
	}
}

// TestCheckEndpoint: /check reports the checker's positioned diagnostics.
func TestCheckEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})

	buggy := []byte(`
int %main() {
entry:
	%p = malloc int
	free int* %p
	free int* %p
	ret int 0
}
`)
	var cr checkResponse
	if resp := postJSON(t, ts.URL+"/check", buggy, &cr); resp.StatusCode != 200 {
		t.Fatalf("check status %d", resp.StatusCode)
	}
	if cr.Errors == 0 {
		t.Fatalf("double free not caught: %+v", cr)
	}

	var clean checkResponse
	postJSON(t, ts.URL+"/check", hotModuleText(t), &clean)
	if clean.Errors != 0 {
		t.Fatalf("clean module flagged: %+v", clean)
	}
}

// TestLifelongCycle is the subsystem's end-to-end story: compile, run
// until the profile epoch advances, reoptimize, and observe the daemon
// serving a different — profile-guided — artifact for the same module.
func TestLifelongCycle(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	_, epoch0 := post(t, ts.URL+"/compile?raw=1", mod)

	// Two profiled runs advance the epoch to 2.
	var rr runResponse
	postJSON(t, ts.URL+"/run", mod, &rr)
	postJSON(t, ts.URL+"/run", mod, &rr)
	if rr.ProfileEpoch == 0 {
		t.Fatalf("no profile accumulated: %+v", rr)
	}

	// The stale window: profile is ahead, epoch-0 artifact still serves.
	var stale compileResponse
	postJSON(t, ts.URL+"/compile", mod, &stale)
	if !stale.Hit || !stale.Stale || stale.Reoptimized {
		t.Fatalf("pre-reopt compile: %+v", stale.CompileResult)
	}

	// Drain the reoptimizer (the idle loop's work, run synchronously for
	// determinism).
	built, err := s.ReoptimizeAll()
	if err != nil || built == 0 {
		t.Fatalf("reoptimize: built=%d err=%v", built, err)
	}

	r2, reopt := post(t, ts.URL+"/compile?raw=1", mod)
	if r2.Header.Get("X-Cache") != "hit" || r2.Header.Get("X-Reoptimized") != "true" {
		t.Fatalf("post-reopt compile headers: cache=%q reopt=%q",
			r2.Header.Get("X-Cache"), r2.Header.Get("X-Reoptimized"))
	}
	if bytes.Equal(epoch0, reopt) {
		t.Fatal("profile-guided artifact identical to unprofiled one; reopt did nothing")
	}

	// The reoptimized artifact stays cached and byte-stable.
	_, again := post(t, ts.URL+"/compile?raw=1", mod)
	if !bytes.Equal(reopt, again) {
		t.Fatal("reoptimized artifact not byte-stable across hits")
	}
}

// TestIdleReoptimizerRuns: with a short idle delay, the daemon's own
// background loop builds the profile-guided artifact with no further
// requests.
func TestIdleReoptimizerRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{IdleDelay: 20 * time.Millisecond})
	mod := hotModuleText(t)

	var rr runResponse
	postJSON(t, ts.URL+"/run", mod, &rr)
	if rr.ProfileEpoch == 0 {
		t.Fatalf("run did not profile: %+v", rr)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var st statsResponse
		gresp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(gresp.Body)
		gresp.Body.Close()
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("stats JSON: %v (%q)", err, data)
		}
		if st.Reopt.ArtifactsBuilt > 0 {
			if st.Reopt.LastModule != rr.ModuleHash || st.Reopt.LastEpoch != rr.ProfileEpoch {
				t.Fatalf("reopt stats name wrong module: %+v vs run %+v", st.Reopt, rr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle reoptimizer never ran: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var cr compileResponse
	postJSON(t, ts.URL+"/compile", mod, &cr)
	if !cr.Hit || !cr.Reoptimized {
		t.Fatalf("idle-built artifact not served: %+v", cr.CompileResult)
	}
}

// TestServerRejectsBadInput: malformed and oversized bodies, wrong
// methods.
func TestServerRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true, MaxBody: 256})

	resp, _ := post(t, ts.URL+"/compile", []byte("int %f( {{{"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage module: status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/compile", bytes.Repeat([]byte("; x\n"), 200))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized module: status %d", resp.StatusCode)
	}
	g, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status %d", g.StatusCode)
	}
}

// TestReoptimizeStoredDeterministic: two stores fed the same module and
// profile produce byte-identical reoptimized artifacts (the parallel
// pipeline's determinism carried through the lifelong layer).
func TestReoptimizeStoredDeterministic(t *testing.T) {
	mod := hotModuleText(t)
	var artifacts [][]byte
	for i := 0; i < 2; i++ {
		st, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(Config{Store: st, DisableReopt: true})
		ts := httptest.NewServer(s.Handler())
		var rr runResponse
		postJSON(t, ts.URL+"/run", mod, &rr)
		if _, err := s.ReoptimizeAll(); err != nil {
			t.Fatal(err)
		}
		data, ok := st.GetArtifact(rr.ModuleHash, "std", rr.ProfileEpoch)
		if !ok {
			t.Fatal("reoptimized artifact missing")
		}
		artifacts = append(artifacts, data)
		ts.Close()
		s.Close()
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		t.Fatal("reoptimization not deterministic across stores")
	}
}
