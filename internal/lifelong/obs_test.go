package lifelong

// Tests for the daemon's observability surface: /metrics must expose the
// pass, analysis-cache, interpreter, store, and request series after real
// traffic; /stats must agree with /metrics (both render the same
// counters); every response must carry a trace id, and the access log one
// JSON line per request keyed by it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// scrape fetches /metrics and returns the Prometheus text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	return string(data)
}

func TestMetricsExposesAllSubsystems(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)
	if resp, _ := post(t, ts.URL+"/compile", mod); resp.StatusCode != http.StatusOK {
		t.Fatalf("/compile: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/run", mod); resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: %d", resp.StatusCode)
	}
	out := scrape(t, ts.URL)
	for _, series := range []string{
		`llvm_pass_runs_total{pass="mem2reg"}`,
		"llvm_pass_wall_seconds_bucket",
		"llvm_pass_cpu_seconds_total",
		"llvm_analysis_cache_hits_total",
		"llvm_analysis_cache_misses_total",
		"llvm_interp_runs_total 1",
		"llvm_interp_instructions_total",
		"llvm_store_artifact_misses_total 1",
		"llvm_store_module_hits_total",
		`llvm_serve_requests_total{endpoint="compile"} 1`,
		`llvm_serve_requests_total{endpoint="run"} 1`,
		`llvm_serve_request_seconds_count{endpoint="/compile"} 1`,
		"llvm_serve_inflight",
		"llvm_reopt_builds_total 0",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

// TestRequestMetricLabelCardinality checks that unknown request paths do
// not mint new histogram series: each distinct path would otherwise become
// a permanent registry entry, letting any client grow daemon memory and
// /metrics output without bound.
func TestRequestMetricLabelCardinality(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	for _, p := range []string{"/nope", "/nope/2", "/admin", "/x/y/z"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	out := scrape(t, ts.URL)
	if !strings.Contains(out, `llvm_serve_request_seconds_count{endpoint="other"} 4`) {
		t.Errorf("unknown paths not collapsed to endpoint=\"other\":\n%s", out)
	}
	for _, leaked := range []string{`endpoint="/nope"`, `endpoint="/admin"`, `endpoint="/x/y/z"`} {
		if strings.Contains(out, leaked) {
			t.Errorf("/metrics leaked per-path series %s", leaked)
		}
	}
}

// TestStatsAgreesWithMetrics drives traffic, then checks the /stats JSON
// and the /metrics scrape report identical request and store counts —
// the rebuilt /stats reads the registry, so disagreement is structural
// breakage, not a race.
func TestStatsAgreesWithMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/compile", mod)
	}
	post(t, ts.URL+"/run", mod)
	post(t, ts.URL+"/check", mod)

	var st statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	out := scrape(t, ts.URL)
	for series, want := range map[string]uint64{
		`llvm_serve_requests_total{endpoint="compile"}`: st.Requests.Compile,
		`llvm_serve_requests_total{endpoint="run"}`:     st.Requests.Run,
		`llvm_serve_requests_total{endpoint="check"}`:   st.Requests.Check,
		"llvm_serve_rejected_total":                     st.Requests.Rejected,
		"llvm_store_artifact_hits_total":                st.Store.ArtifactHits,
		"llvm_store_artifact_misses_total":              st.Store.ArtifactMisses,
		"llvm_store_evictions_total":                    st.Store.Evictions,
		"llvm_reopt_builds_total":                       st.Reopt.ArtifactsBuilt,
	} {
		line := fmt.Sprintf("%s %d\n", series, want)
		if !strings.Contains(out, line) {
			t.Errorf("/metrics disagrees with /stats: want line %q in:\n%s", line, out)
		}
	}
	if st.Requests.Compile != 3 || st.Requests.Run != 1 || st.Requests.Check != 1 {
		t.Errorf("stats = %+v, want 3 compiles / 1 run / 1 check", st.Requests)
	}
}

// syncBuffer is a goroutine-safe log sink (requests log concurrently).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestTraceIDsAndAccessLog(t *testing.T) {
	var log syncBuffer
	tr := obs.NewTracer()
	_, ts := newTestServer(t, Config{DisableReopt: true, AccessLog: &log, Tracer: tr})
	mod := hotModuleText(t)

	resp, _ := post(t, ts.URL+"/compile", mod)
	id1 := resp.Header.Get("X-Trace-Id")
	resp2, _ := post(t, ts.URL+"/compile", mod)
	id2 := resp2.Header.Get("X-Trace-Id")
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Fatalf("trace ids not unique: %q vs %q", id1, id2)
	}

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), log.String())
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	if rec.TraceID != id1 || rec.Path != "/compile" || rec.Status != http.StatusOK ||
		rec.Method != http.MethodPost || rec.Bytes <= 0 {
		t.Errorf("access record = %+v, want trace %s POST /compile 200", rec, id1)
	}

	// The tracer saw the request span plus the compile span with per-pass
	// children (first request was a miss, so the pipeline ran).
	if tr.Len() == 0 {
		t.Fatal("server tracer recorded no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	for _, name := range []string{`"/compile"`, `"compile"`, `"mem2reg"`} {
		if !strings.Contains(trace, name) {
			t.Errorf("trace missing span %s", name)
		}
	}
}
