package lifelong

// End-to-end quarantine: when the idle reoptimizer produces a miscompiled
// artifact, the translation-validation oracle must catch it, the poisoned
// bytes must go to quarantine (never the serving path), and /compile must
// keep serving the prior-epoch artifact. The corrupting "reoptimizer" is
// injected through the reoptTransform hook; everything else — store,
// oracle, daemon, HTTP surface — is the real code.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// getText GETs a URL and returns the body as text.
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// getStats GETs /stats and decodes it.
func getStats(t *testing.T, url string, out *statsResponse) {
	t.Helper()
	if err := json.Unmarshal([]byte(getText(t, url)), out); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
}

// corruptReopt performs the real profile-guided rebuild, then sabotages
// the first external function's return value — the kind of semantic
// damage a buggy optimizer inflicts while still producing verifier-valid
// IR.
func corruptReopt(m *core.Module, d *profile.Data, opts profile.ReoptOptions) profile.ReoptResult {
	res := profile.Reoptimize(m, d, opts)
	for _, f := range m.Funcs {
		if f.IsDeclaration() || f.Linkage == core.InternalLinkage {
			continue
		}
		for _, b := range f.Blocks {
			for _, inst := range b.Instrs {
				r, ok := inst.(*core.RetInst)
				if !ok || r.NumOperands() == 0 || !core.IsInteger(r.Operand(0).Type()) {
					continue
				}
				r.SetOperand(0, core.NewInt(r.Operand(0).Type(), 987654))
				return res
			}
		}
	}
	return res
}

func TestQuarantineBlocksMiscompiledArtifact(t *testing.T) {
	orig := reoptTransform
	reoptTransform = corruptReopt
	defer func() { reoptTransform = orig }()

	s, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	// Epoch 0: the honest pipeline artifact.
	_, epoch0 := post(t, ts.URL+"/compile?raw=1", mod)

	// Profiled runs advance the epoch so the reoptimizer has work.
	var rr runResponse
	postJSON(t, ts.URL+"/run", mod, &rr)
	postJSON(t, ts.URL+"/run", mod, &rr)
	if rr.ProfileEpoch == 0 {
		t.Fatalf("no profile accumulated: %+v", rr)
	}

	// The reoptimizer rebuilds — and the oracle must condemn the rebuild.
	built, err := s.ReoptimizeAll()
	if err != nil {
		t.Fatalf("reoptimize: %v", err)
	}
	if built != 0 {
		t.Fatalf("miscompiled artifact was counted as built (%d)", built)
	}

	// The poisoned artifact is on disk for post-mortem, with the verdict.
	if !s.store.IsQuarantined(rr.ModuleHash, "std", rr.ProfileEpoch) {
		t.Fatal("artifact not quarantined")
	}
	if reason, ok := s.store.QuarantineReason(rr.ModuleHash, "std", rr.ProfileEpoch); !ok || !strings.Contains(reason, "MISCOMPILE") {
		t.Fatalf("quarantine reason missing or wrong: %q", reason)
	}
	// ...but never in the serving path.
	if _, ok := s.store.GetArtifact(rr.ModuleHash, "std", rr.ProfileEpoch); ok {
		t.Fatal("poisoned artifact is retrievable from the artifact store")
	}

	// /compile falls back to the epoch-0 artifact, marked stale — the
	// client gets a slower program, never a wrong one.
	var cr compileResponse
	postJSON(t, ts.URL+"/compile", mod, &cr)
	if !cr.Hit || !cr.Stale || cr.Reoptimized {
		t.Fatalf("post-quarantine compile: %+v", cr.CompileResult)
	}
	r2, served := post(t, ts.URL+"/compile?raw=1", mod)
	if r2.Header.Get("X-Cache") != "hit" || r2.Header.Get("X-Artifact-Epoch") != "0" {
		t.Fatalf("post-quarantine headers: cache=%q epoch=%q",
			r2.Header.Get("X-Cache"), r2.Header.Get("X-Artifact-Epoch"))
	}
	if !bytes.Equal(served, epoch0) {
		t.Fatal("served bytes differ from the epoch-0 artifact")
	}

	// A second drain is a no-op: the quarantined epoch is skipped, not
	// rebuilt forever.
	if built, err := s.ReoptimizeAll(); err != nil || built != 0 {
		t.Fatalf("re-drain after quarantine: built=%d err=%v", built, err)
	}

	// /stats and /metrics expose the event.
	var st statsResponse
	getStats(t, ts.URL+"/stats", &st)
	if !st.Validate.Enabled || st.Validate.Runs == 0 || st.Validate.Miscompiles == 0 || st.Validate.Quarantined == 0 {
		t.Fatalf("stats validate block: %+v", st.Validate)
	}
	if st.Store.Quarantined != 1 {
		t.Fatalf("stats store quarantined = %d, want 1", st.Store.Quarantined)
	}
	metrics := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`llvm_validate_runs_total{pass="reoptimize"}`,
		`llvm_validate_confirmed_miscompiles_total{pass="reoptimize"}`,
		"llvm_reopt_quarantined_total 1",
		"llvm_store_quarantines_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHonestReoptValidatesClean: with the real reoptimizer, validation
// runs and the artifact ships — the oracle never quarantines a correct
// rebuild of the hot module.
func TestHonestReoptValidatesClean(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)

	var rr runResponse
	postJSON(t, ts.URL+"/run", mod, &rr)
	postJSON(t, ts.URL+"/run", mod, &rr)
	built, err := s.ReoptimizeAll()
	if err != nil || built != 1 {
		t.Fatalf("reoptimize: built=%d err=%v", built, err)
	}
	if s.store.IsQuarantined(rr.ModuleHash, "std", rr.ProfileEpoch) {
		t.Fatal("honest rebuild quarantined")
	}
	var st statsResponse
	getStats(t, ts.URL+"/stats", &st)
	if st.Validate.Runs == 0 || st.Validate.Miscompiles != 0 {
		t.Fatalf("stats validate block: %+v", st.Validate)
	}
}

// TestDisableValidateSkipsOracle: -no-validate turns the oracle off; the
// corrupt artifact ships (the pre-PR behavior, now opt-in).
func TestDisableValidateSkipsOracle(t *testing.T) {
	orig := reoptTransform
	reoptTransform = corruptReopt
	defer func() { reoptTransform = orig }()

	s, ts := newTestServer(t, Config{DisableReopt: true, DisableValidate: true})
	mod := hotModuleText(t)
	var rr runResponse
	postJSON(t, ts.URL+"/run", mod, &rr)
	postJSON(t, ts.URL+"/run", mod, &rr)
	built, err := s.ReoptimizeAll()
	if err != nil || built != 1 {
		t.Fatalf("reoptimize: built=%d err=%v", built, err)
	}
	if s.store.IsQuarantined(rr.ModuleHash, "std", rr.ProfileEpoch) {
		t.Fatal("quarantine ran despite DisableValidate")
	}
	var st statsResponse
	getStats(t, ts.URL+"/stats", &st)
	if st.Validate.Enabled || st.Validate.Runs != 0 {
		t.Fatalf("stats validate block should be off: %+v", st.Validate)
	}
}
