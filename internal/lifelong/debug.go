package lifelong

import (
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
)

// The /debug tree is the daemon's flight-recorder surface: always on,
// bounded, and read-only, so "what did that slow request five minutes ago
// actually do" is answerable on any node without pre-arranged tracing.
//
//	/debug/requests    recent requests, newest first (ring of Recorder.Cap)
//	/debug/trace/<id>  the recorded requests carrying one trace ID
//	/debug/pprof/*     net/http/pprof, only when Config.EnablePprof
func (s *Server) addDebugHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Recorder returns the daemon's flight recorder (for the cluster layer's
// hop annotations and for tests).
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// debugRequestsResponse is /debug/requests' JSON shape.
type debugRequestsResponse struct {
	// Capacity and Total bound what the ring can say: Total - len(Requests)
	// requests have already been evicted.
	Capacity int                 `json:"capacity"`
	Total    uint64              `json:"total"`
	Requests []obs.RequestRecord `json:"requests"`
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	recs := s.recorder.Snapshot()
	if recs == nil {
		recs = []obs.RequestRecord{}
	}
	writeJSON(w, http.StatusOK, debugRequestsResponse{
		Capacity: s.recorder.Cap(),
		Total:    s.recorder.Total(),
		Requests: recs,
	})
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if !obs.ValidTraceID(id) {
		httpError(w, http.StatusBadRequest, "invalid trace id")
		return
	}
	recs := s.recorder.ByTrace(id)
	if len(recs) == 0 {
		httpError(w, http.StatusNotFound, "trace %s not in the flight recorder (evicted or never seen here)", id)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}
