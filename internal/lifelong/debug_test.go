package lifelong

// Tests for the flight recorder's /debug surface, the /stats latency
// quantiles' agreement with the /metrics histograms, and the satellite
// guarantees around error paths: a terminated request — 503 on
// saturation, 413 on the body cap — still carries an X-Trace-Id and lands
// in the access log with its real status, and a single-flight follower's
// log line names the leader's trace.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/obs"
	"repro/internal/tooling"
)

func TestDebugRequestsAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)
	resp, _ := post(t, ts.URL+"/compile", mod)
	trace := resp.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("no X-Trace-Id on /compile")
	}

	var dbg debugRequestsResponse
	r2, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Capacity != obs.DefaultRecorderCap {
		t.Errorf("capacity = %d, want %d", dbg.Capacity, obs.DefaultRecorderCap)
	}
	if dbg.Total < 1 || len(dbg.Requests) < 1 {
		t.Fatalf("debug response = %+v, want at least the /compile request", dbg)
	}
	var found *obs.RequestRecord
	for i := range dbg.Requests {
		if dbg.Requests[i].TraceID == trace {
			found = &dbg.Requests[i]
		}
	}
	if found == nil {
		t.Fatalf("/debug/requests does not contain trace %s", trace)
	}
	if found.Endpoint != "/compile" || found.Status != http.StatusOK || found.Cache != "miss" {
		t.Errorf("recorded request = %+v, want /compile 200 cache=miss", found)
	}
	var phases []string
	for _, p := range found.Phases {
		phases = append(phases, p.Name)
	}
	if fmt.Sprint(phases) != "[read-parse compile]" {
		t.Errorf("recorded phases = %v, want [read-parse compile]", phases)
	}

	// /debug/trace/<id> finds the same record; unknown IDs 404, invalid 400.
	r3, err := http.Get(ts.URL + "/debug/trace/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var recs []obs.RequestRecord
	if err := json.NewDecoder(r3.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TraceID != trace {
		t.Errorf("/debug/trace/%s = %+v", trace, recs)
	}
	if r4, err := http.Get(ts.URL + "/debug/trace/never-seen-here"); err != nil {
		t.Fatal(err)
	} else if r4.Body.Close(); r4.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", r4.StatusCode)
	}
	if r5, err := http.Get(ts.URL + `/debug/trace/bad"id`); err != nil {
		t.Fatal(err)
	} else if r5.Body.Close(); r5.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid trace id: status %d, want 400", r5.StatusCode)
	}
}

// scrapeBuckets parses one endpoint's llvm_serve_request_seconds buckets
// out of a /metrics scrape into the (bounds, cum) shape
// obs.QuantileFromBuckets takes.
func scrapeBuckets(t *testing.T, text, endpoint string) (bounds []float64, cum []uint64) {
	t.Helper()
	prefix := fmt.Sprintf(`llvm_serve_request_seconds_bucket{endpoint=%q,le="`, endpoint)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := strings.TrimPrefix(line, prefix)
		i := strings.Index(rest, `"} `)
		if i < 0 {
			t.Fatalf("unparseable bucket line %q", line)
		}
		le, countText := rest[:i], rest[i+3:]
		count, err := strconv.ParseFloat(countText, 64)
		if err != nil {
			t.Fatalf("bucket count %q: %v", countText, err)
		}
		cum = append(cum, uint64(count))
		if le == "+Inf" {
			continue // +Inf is the implicit last cum entry, not a bound
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bucket bound %q: %v", le, err)
		}
		bounds = append(bounds, bound)
	}
	return bounds, cum
}

// TestStatsLatencyAgreesWithMetricsHistogram pins the acceptance
// criterion: the p50/p95/p99 /stats reports for an endpoint equal a
// recomputation from the text a /metrics scrape renders, using the same
// exported interpolation — one histogram, two views, zero drift.
func TestStatsLatencyAgreesWithMetricsHistogram(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableReopt: true})
	mod := hotModuleText(t)
	const n = 5
	for i := 0; i < n; i++ {
		if resp, _ := post(t, ts.URL+"/compile", mod); resp.StatusCode != http.StatusOK {
			t.Fatalf("/compile: %d", resp.StatusCode)
		}
	}

	var st statsResponse
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	sum, ok := st.Latency["/compile"]
	if !ok || sum.Count != n {
		t.Fatalf("stats latency = %+v, want /compile with count %d", st.Latency, n)
	}
	if sum.P50 <= 0 || sum.P50 > sum.P95 || sum.P95 > sum.P99 {
		t.Errorf("implausible quantiles: %+v", sum)
	}

	bounds, cum := scrapeBuckets(t, scrape(t, ts.URL), "/compile")
	if len(bounds) != len(obs.ServeLatencyBuckets) || len(cum) != len(bounds)+1 {
		t.Fatalf("scraped %d bounds / %d buckets, want %d / %d",
			len(bounds), len(cum), len(obs.ServeLatencyBuckets), len(obs.ServeLatencyBuckets)+1)
	}
	for q, want := range map[float64]float64{0.50: sum.P50, 0.95: sum.P95, 0.99: sum.P99} {
		if got := obs.QuantileFromBuckets(bounds, cum, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("p%v recomputed from /metrics = %v, /stats says %v", q*100, got, want)
		}
	}
}

// getJSON GETs url and decodes the JSON body.
func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return resp
}

// lastLogRecord returns the newest access-log line matching status.
func lastLogRecord(t *testing.T, log *syncBuffer, status int) *accessRecord {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		var rec accessRecord
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("access log line %q: %v", lines[i], err)
		}
		if rec.Status == status {
			return &rec
		}
	}
	return nil
}

// TestSaturation503CarriesTraceID pins the error-path satellite for
// overload: with every worker slot held, a request is refused 503 under
// its budget — and the refusal carries an X-Trace-Id, logs with status
// 503, and records why in the flight recorder.
func TestSaturation503CarriesTraceID(t *testing.T) {
	var log syncBuffer
	s, ts := newTestServer(t, Config{
		DisableReopt:   true,
		Workers:        1,
		RequestTimeout: 30 * time.Millisecond,
		AccessLog:      &log,
	})
	// Occupy the only worker slot directly; the next request cannot get a
	// slot within its 30ms budget and must be refused.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	resp, body := post(t, ts.URL+"/compile", hotModuleText(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	trace := resp.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Error("503 response has no X-Trace-Id")
	}
	rec := lastLogRecord(t, &log, http.StatusServiceUnavailable)
	if rec == nil {
		t.Fatalf("no 503 line in access log:\n%s", log.String())
	}
	if rec.TraceID != trace || !strings.Contains(rec.Error, "saturated") {
		t.Errorf("503 log record = %+v, want trace %s and a saturation error", rec, trace)
	}
	if recs := s.Recorder().ByTrace(trace); len(recs) != 1 || recs[0].Status != 503 {
		t.Errorf("flight recorder for %s = %+v, want one 503 record", trace, recs)
	}
}

// TestBodyCap413CarriesTraceID pins the same satellite for the gzip-bomb
// guard: a decoded body past MaxBody is rejected 413 with a trace ID and
// an access-log line carrying the status and the why.
func TestBodyCap413CarriesTraceID(t *testing.T) {
	var log syncBuffer
	_, ts := newTestServer(t, Config{DisableReopt: true, MaxBody: 2048, AccessLog: &log})
	var gzBody bytes.Buffer
	zw := gzip.NewWriter(&gzBody)
	zw.Write(bytes.Repeat([]byte{'A'}, 1<<20)) // 1MiB of air, tiny on the wire
	zw.Close()
	req, err := http.NewRequest("POST", ts.URL+"/compile", &gzBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	trace := resp.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Error("413 response has no X-Trace-Id")
	}
	rec := lastLogRecord(t, &log, http.StatusRequestEntityTooLarge)
	if rec == nil {
		t.Fatalf("no 413 line in access log:\n%s", log.String())
	}
	if rec.TraceID != trace || rec.Error == "" {
		t.Errorf("413 log record = %+v, want trace %s with an error detail", rec, trace)
	}
}

// TestFollowerLogsJoinedTrace pins the single-flight satellite: a request
// that joins another request's in-flight pipeline run is marked
// dedup=follower in the access log and the flight recorder, with
// joined_trace naming the leader — the shared work stays attributable. A
// leader is installed directly in the flight group (held open on a
// channel) so the join is deterministic, not a race.
func TestFollowerLogsJoinedTrace(t *testing.T) {
	var log syncBuffer
	s, ts := newTestServer(t, Config{DisableReopt: true, AccessLog: &log})
	mod := hotModuleText(t)
	m, err := tooling.LoadModuleBytes("request", mod)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := bytecode.ModuleHash(m)
	if err != nil {
		t.Fatal(err)
	}
	// The exact key handleCompile will build: no profile yet, so epoch 0.
	key := fmt.Sprintf("%s\x1f%s\x1f%d", hash, s.cfg.DefaultPipeline, 0)

	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := s.flight.Do(key, "trace-leader", func() (*CompileResult, error) {
			close(started)
			<-release
			return CompileWith(s.store, m, s.cfg.DefaultPipeline, CompileOpts{})
		})
		leaderDone <- err
	}()
	<-started

	// The HTTP request now joins the held-open leader; release it once the
	// follower has had time to arrive (it blocks in Do until released
	// regardless, so an early release only risks leading, not failing).
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	resp, body := post(t, ts.URL+"/compile", mod)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compile: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Dedup") != "follower" {
		t.Fatalf("X-Dedup = %q, want follower (response joined the held leader)", resp.Header.Get("X-Dedup"))
	}
	if got := resp.Header.Get("X-Dedup-Joined"); got != "trace-leader" {
		t.Errorf("X-Dedup-Joined = %q, want trace-leader", got)
	}
	trace := resp.Header.Get("X-Trace-Id")
	rec := lastLogRecord(t, &log, http.StatusOK)
	if rec == nil {
		t.Fatalf("no 200 line in access log:\n%s", log.String())
	}
	if rec.Dedup != "follower" || rec.JoinedTrace != "trace-leader" {
		t.Errorf("follower log record = %+v, want dedup=follower joined_trace=trace-leader", rec)
	}
	if recs := s.Recorder().ByTrace(trace); len(recs) != 1 ||
		recs[0].Dedup != "follower" || recs[0].JoinedTrace != "trace-leader" {
		t.Errorf("flight recorder follower record = %+v", recs)
	}
}

// TestPprofGatedByFlag: the pprof tree must not exist unless asked for.
func TestPprofGatedByFlag(t *testing.T) {
	_, off := newTestServer(t, Config{DisableReopt: true})
	if resp, err := http.Get(off.URL + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode == http.StatusOK {
		t.Error("pprof served without EnablePprof")
	}
	_, on := newTestServer(t, Config{DisableReopt: true, EnablePprof: true})
	if resp, err := http.Get(on.URL + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with EnablePprof: status %d, want 200", resp.StatusCode)
	}
}
