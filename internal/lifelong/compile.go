package lifelong

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/tooling"
)

// CompileResult describes one compile served through the store.
type CompileResult struct {
	// ModuleHash is the content address of the input's canonical bytecode.
	ModuleHash string `json:"module_hash"`
	// Spec is the pipeline spec the artifact is keyed by.
	Spec string `json:"pipeline"`
	// Hit reports the artifact came from the cache with zero pass work.
	Hit bool `json:"cache_hit"`
	// ArtifactEpoch is the profile epoch the served artifact was built
	// against (0 = plain pipeline output, no profile).
	ArtifactEpoch int64 `json:"artifact_epoch"`
	// ProfileEpoch is the module's current accumulated-profile epoch.
	ProfileEpoch int64 `json:"profile_epoch"`
	// Reoptimized reports the artifact was built by the profile-guided
	// reoptimizer rather than the plain pipeline.
	Reoptimized bool `json:"reoptimized"`
	// RemoteHit reports the artifact was fetched through from the cluster
	// peer owning this module's hash range rather than found locally or
	// compiled here (Hit is also true: no pass work happened on this node).
	RemoteHit bool `json:"remote_hit,omitempty"`
	// Stale reports the profile has advanced past the served artifact; the
	// idle reoptimizer will close the gap.
	Stale bool `json:"stale"`
	// Data is the optimized bytecode.
	Data []byte `json:"-"`
}

// RemoteFetch asks the cluster peer owning modHash's ring range for its
// best artifact under (modHash, spec). It returns the artifact bytes and
// the profile epoch they were built against, or ok=false on any miss,
// unhealthy owner, or transport failure — the caller then compiles
// locally (fail-open: a peer outage costs latency, never availability).
// ctx carries the request's trace context (obs.SpanFromContext) for
// header propagation and its flight-recorder record for hop annotation.
type RemoteFetch func(ctx context.Context, modHash, spec string) (data []byte, epoch int64, ok bool)

// CompileOpts threads observability into a store-backed compile: the
// tracer records a span for the whole compile plus the pipeline's per-pass
// spans on miss, and the registry receives the pass pipeline's metrics.
// Remote, when set, is consulted between the local cache probe and the
// pipeline (cluster fetch-through). Ctx and Parent attach the compile to
// a distributed trace: the compile span parents under Parent (the serving
// request's span), and Ctx — which must carry the same span context —
// flows to the remote fetch so the cross-node hop stays in the tree.
type CompileOpts struct {
	Ctx     context.Context
	Parent  obs.SpanContext
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	Remote  RemoteFetch
}

// CacheWord renders the result's cache disposition for the X-Cache header
// and trace spans: "hit" (local), "remote" (peer fetch-through), "miss".
func (r *CompileResult) CacheWord() string {
	switch {
	case r.RemoteHit:
		return "remote"
	case r.Hit:
		return "hit"
	}
	return "miss"
}

// Compile optimizes m through the store: the module is interned at its
// content address, and the artifact for (hash, spec, epoch) is served
// from cache when present — preferring the artifact built against the
// current profile epoch, falling back to the unprofiled epoch-0 artifact
// (marked stale) — or compiled via the pass pipeline on miss and stored.
// The caller's module is never mutated: on miss the pipeline runs on a
// private decode of the canonical bytes.
func Compile(st *Store, m *core.Module, spec string) (*CompileResult, error) {
	return CompileWith(st, m, spec, CompileOpts{})
}

// CompileWith is Compile with observability attached.
func CompileWith(st *Store, m *core.Module, spec string, opts CompileOpts) (res *CompileResult, err error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Tracer != nil {
		// The compile span parents under the serving request's span, so in a
		// merged cluster trace the owner's /compile request span contains
		// this compile, which contains the pass manager's per-pass spans.
		sp := opts.Tracer.StartSpan("compile", "lifelong", 0, opts.Parent)
		if sc := sp.Context(); sc.Trace != "" {
			ctx = obs.ContextWithSpan(ctx, sc)
		}
		defer func() {
			args := map[string]string{"pipeline": spec}
			if res != nil {
				args["hash"] = shortHash(res.ModuleHash)
				args["cache"] = res.CacheWord()
			}
			sp.EndArgs(args)
		}()
	}
	hash, canonical, err := st.PutModule(m)
	if err != nil {
		return nil, err
	}
	res = &CompileResult{ModuleHash: hash, Spec: spec}
	if f, ok := st.GetProfile(hash); ok {
		res.ProfileEpoch = f.Epoch
	}

	// Prefer the artifact matching the current profile epoch.
	if res.ProfileEpoch > 0 {
		if data, ok := st.GetArtifact(hash, spec, res.ProfileEpoch); ok {
			res.Hit = true
			res.ArtifactEpoch = res.ProfileEpoch
			res.Reoptimized = true
			res.Data = data
			return res, nil
		}
	}
	if data, ok := st.GetArtifact(hash, spec, 0); ok {
		res.Hit = true
		res.Stale = res.ProfileEpoch > 0
		res.Data = data
		return res, nil
	}

	// Local miss: fetch through from the cluster peer owning this hash
	// range before spending pass work. The fetched bytes are cached
	// locally at the epoch the owner reported, so repeat requests at this
	// node stay local as long as its profile view agrees.
	if opts.Remote != nil {
		t0 := time.Now()
		if data, epoch, ok := opts.Remote(ctx, hash, spec); ok {
			obs.RecordFromContext(ctx).AddPhase("fetch-through", time.Since(t0))
			if err := st.PutArtifact(hash, spec, epoch, data); err != nil {
				return nil, err
			}
			res.Hit = true
			res.RemoteHit = true
			res.ArtifactEpoch = epoch
			res.Reoptimized = epoch > 0
			res.Data = data
			return res, nil
		}
	}

	// Miss: run the pipeline on a private copy and store the result.
	opts.Metrics.Counter("llvm_lifelong_compiles_total").Inc()
	work, err := bytecode.Decode(canonical)
	if err != nil {
		return nil, fmt.Errorf("lifelong: re-decoding %s: %w", shortHash(hash), err)
	}
	pm := passes.NewPassManager()
	pm.Tracer = opts.Tracer
	pm.Metrics = opts.Metrics
	if err := tooling.AddPipelineSpec(pm, spec); err != nil {
		return nil, err
	}
	// Seed the pipeline's analysis cache with persisted points-to summaries
	// for this content address, when present: sound because `work` is a
	// fresh decode of exactly the canonical bytes the blob was computed
	// against, and the first transforming pass that does not preserve
	// dsa.Key invalidates the seed like any cached analysis.
	if data, ok := st.GetSummaries(hash); ok {
		if pt, derr := dsa.Decode(data, work); derr == nil {
			pm.AM = analysis.NewManager()
			pm.AM.ModuleExt(dsa.Key, work, func(*core.Module) interface{} { return pt })
		}
	}
	if _, err := pm.Run(work); err != nil {
		return nil, fmt.Errorf("lifelong: pipeline %q on %s: %w", spec, shortHash(hash), err)
	}
	if err := core.Verify(work); err != nil {
		return nil, fmt.Errorf("lifelong: pipeline %q corrupted %s: %w", spec, shortHash(hash), err)
	}
	data, err := bytecode.Encode(work)
	if err != nil {
		return nil, err
	}
	if err := st.PutArtifact(hash, spec, 0, data); err != nil {
		return nil, err
	}
	res.Stale = res.ProfileEpoch > 0
	res.Data = data
	return res, nil
}
