package lifelong

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/tooling"
	"repro/internal/validate"
)

// Config parameterizes the lifelong compilation daemon.
type Config struct {
	// Store is the persistent module store (required).
	Store *Store
	// Workers bounds concurrently-served requests (0 = GOMAXPROCS).
	Workers int
	// RequestTimeout is the per-request wall-clock budget, enforced by the
	// sandbox's cooperative cancellation for /run and by the worker-slot
	// wait for queued requests (0 = 30s).
	RequestTimeout time.Duration
	// DefaultPipeline is the /compile pipeline spec when the request names
	// none ("" = "std").
	DefaultPipeline string
	// MaxBody caps request size (0 = tooling.MaxInputSize).
	MaxBody int64
	// MaxSteps and MaxHeapBytes bound /run execution (0 = interp defaults).
	MaxSteps     int64
	MaxHeapBytes int64
	// IdleDelay is how long the request queue must stay empty before the
	// idle reoptimizer picks up a module (0 = 1s).
	IdleDelay time.Duration
	// DisableReopt turns the idle-time reoptimizer off.
	DisableReopt bool
	// DisableValidate turns off translation validation of reoptimized
	// artifacts (llvm-serve -no-validate). Validation is on by default:
	// a reoptimized artifact the oracle confirms miscompiled goes to
	// quarantine and the daemon keeps serving the prior-epoch artifact.
	DisableValidate bool
	// Metrics is the registry /metrics exposes and /stats reads (nil = the
	// server creates its own). Request, store, reopt, and interpreter
	// counters all live here, so the two endpoints can never disagree.
	Metrics *obs.Registry
	// Tracer, when set, records request spans, per-pass compile spans, and
	// store cache events (llvm-serve -trace-out).
	Tracer *obs.Tracer
	// AccessLog, when set, receives one JSON line per request with the
	// request's trace id (also returned in the X-Trace-Id header), method,
	// path, status, and latency.
	AccessLog io.Writer
	// Recorder is the flight recorder /debug/requests serves (nil = the
	// server creates its own at obs.DefaultRecorderCap — the recorder is
	// always on; its cost is one small struct copy per request).
	Recorder *obs.Recorder
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (llvm-serve
	// -pprof). Off by default: the profiling surface can stall the process
	// and belongs behind an operator's explicit flag.
	EnablePprof bool
	// RemoteFetch, when set, is consulted on a local artifact miss before
	// compiling: the cluster layer's fetch-through to the peer owning the
	// module's hash range. A remote miss (or a down owner) degrades to a
	// local compile — fail-open.
	RemoteFetch RemoteFetch
	// ProfileSink, when set, is offered each run's profile counts before
	// the local store merge. Returning handled=true means the counts were
	// routed to their cluster owner (whose epoch and advancement the /run
	// response then reports); handled=false falls back to the local merge,
	// so a down owner degrades to local accumulation instead of dropping
	// end-user evidence.
	// ctx carries the request's trace context for header propagation and
	// its flight-recorder record for hop annotation.
	ProfileSink func(ctx context.Context, modHash string, c *profile.Counts) (epoch int64, advanced bool, handled bool)
	// ExtraHandlers adds endpoints to Handler()'s mux — the cluster
	// layer's /cluster/* surface. They run under the observability
	// middleware (trace ids, latency histogram, access log) but not the
	// worker pool: peer health probes must answer even when every worker
	// slot is busy.
	ExtraHandlers map[string]http.Handler
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.DefaultPipeline == "" {
		out.DefaultPipeline = "std"
	}
	if out.MaxBody <= 0 {
		out.MaxBody = tooling.MaxInputSize
	}
	if out.MaxSteps <= 0 {
		out.MaxSteps = interp.DefaultMaxSteps
	}
	if out.MaxHeapBytes <= 0 {
		out.MaxHeapBytes = interp.DefaultMaxHeapBytes
	}
	if out.IdleDelay <= 0 {
		out.IdleDelay = time.Second
	}
	return out
}

// Server is the lifelong compilation daemon: /compile serves optimized
// bytecode from the store (compiling on miss), /run executes modules in
// the sandbox and folds their profiles back into the store, /check runs
// the static memory-safety checker, and /stats reports cache and
// reoptimizer activity. A bounded worker pool backs all serving paths,
// and an idle-time goroutine reoptimizes the hottest profiled modules
// whenever the request queue goes quiet.
type Server struct {
	cfg     Config
	store   *Store
	sem     chan struct{}
	metrics *obs.Registry
	// progs keeps hot modules resident with their shared translation
	// caches, so repeated /run requests never retranslate a function.
	progs *progCache

	inflight     atomic.Int64
	lastActivity atomic.Int64 // UnixNano of the last request start/finish
	start        time.Time

	// recorder is the always-on flight recorder; httpObs is the shared
	// observability middleware wrapping Handler()'s mux.
	recorder *obs.Recorder
	httpObs  *obs.HTTPObs

	// Request and reopt counters live in the metrics registry; /stats reads
	// them back from there (see handleStats) so the JSON and Prometheus
	// views are two renderings of one set of counters.
	cCompile, cRun, cCheck, cRejected *obs.Counter
	cReoptBuilt, cReoptErrors         *obs.Counter
	// Validation counters share the llvm_validate_* names the pass
	// manager uses, labeled pass="reoptimize", plus the quarantine total.
	cValidateRuns, cValidateMiscompiles, cValidateInconclusive *obs.Counter
	cQuarantined                                               *obs.Counter
	// Alias-summary persistence counters: reuse counts /check requests
	// served from a stored summary blob, computed counts fresh analyses
	// (which are then persisted for the next request).
	cAliasReuse, cAliasComputed *obs.Counter
	// flight deduplicates concurrent identical /compile requests; cDedup
	// counts the followers that shared another request's pipeline run.
	flight flightGroup
	cDedup *obs.Counter

	// oracle checks reoptimized artifacts (nil when DisableValidate).
	oracle *validate.Oracle

	reoptMu    sync.Mutex
	reoptLast  string
	reoptEpoch int64

	stop chan struct{}
	done chan struct{}
}

// NewServer builds a daemon over st and starts its idle reoptimizer
// (unless disabled). Callers must Close it.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		store: cfg.Store,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.metrics = s.cfg.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.cCompile = s.metrics.Counter("llvm_serve_requests_total", "endpoint", "compile")
	s.cRun = s.metrics.Counter("llvm_serve_requests_total", "endpoint", "run")
	s.cCheck = s.metrics.Counter("llvm_serve_requests_total", "endpoint", "check")
	s.cRejected = s.metrics.Counter("llvm_serve_rejected_total")
	s.cReoptBuilt = s.metrics.Counter("llvm_reopt_builds_total")
	s.cReoptErrors = s.metrics.Counter("llvm_reopt_errors_total")
	s.cValidateRuns = s.metrics.Counter("llvm_validate_runs_total", "pass", "reoptimize")
	s.cValidateMiscompiles = s.metrics.Counter("llvm_validate_confirmed_miscompiles_total", "pass", "reoptimize")
	s.cValidateInconclusive = s.metrics.Counter("llvm_validate_inconclusive_total", "pass", "reoptimize")
	s.cQuarantined = s.metrics.Counter("llvm_reopt_quarantined_total")
	s.cAliasReuse = s.metrics.Counter("llvm_alias_summary_reuse_total")
	s.cAliasComputed = s.metrics.Counter("llvm_alias_summary_computed_total")
	s.cDedup = s.metrics.Counter("llvm_serve_singleflight_shared_total")
	for _, b := range []struct {
		result string
		get    func(dsa.QueryStats) int64
	}{
		{"no", func(st dsa.QueryStats) int64 { return st.No }},
		{"may", func(st dsa.QueryStats) int64 { return st.May }},
		{"must", func(st dsa.QueryStats) int64 { return st.Must }},
	} {
		b := b
		s.metrics.CounterFunc("llvm_alias_queries_total", func() float64 {
			return float64(b.get(dsa.Stats()))
		}, "result", b.result)
	}
	if !s.cfg.DisableValidate {
		s.oracle = validate.Default()
	}
	s.progs = newProgCache(defaultProgCacheSize)
	for _, b := range []struct {
		name, tier string
		get        func(interp.ProgramStats) int64
	}{
		{"llvm_interp_translation_compiles_total", "1", func(st interp.ProgramStats) int64 { return st.T1Compiles }},
		{"llvm_interp_translation_compiles_total", "2", func(st interp.ProgramStats) int64 { return st.T2Compiles }},
		{"llvm_interp_translation_reuses_total", "1", func(st interp.ProgramStats) int64 { return st.T1Reused }},
		{"llvm_interp_translation_reuses_total", "2", func(st interp.ProgramStats) int64 { return st.T2Reused }},
	} {
		b := b
		s.metrics.CounterFunc(b.name, func() float64 {
			st, _ := s.progs.stats()
			return float64(b.get(st))
		}, "tier", b.tier)
	}
	s.metrics.GaugeFunc("llvm_serve_resident_programs", func() float64 {
		_, n := s.progs.stats()
		return float64(n)
	})
	s.metrics.GaugeFunc("llvm_serve_inflight", func() float64 { return float64(s.inflight.Load()) })
	s.metrics.GaugeFunc("llvm_serve_uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })
	s.store.RegisterMetrics(s.metrics)
	if s.cfg.Tracer != nil {
		s.store.Tracer = s.cfg.Tracer
	}
	s.recorder = s.cfg.Recorder
	if s.recorder == nil {
		s.recorder = obs.NewRecorder(0)
	}
	s.httpObs = &obs.HTTPObs{
		Tracer:    s.cfg.Tracer,
		Recorder:  s.recorder,
		AccessLog: s.cfg.AccessLog,
		Endpoint:  endpointLabel,
		Latency: func(endpoint string) *obs.Histogram {
			return s.metrics.Histogram("llvm_serve_request_seconds",
				obs.ServeLatencyBuckets, "endpoint", endpoint)
		},
	}
	s.sem = make(chan struct{}, s.cfg.Workers)
	s.lastActivity.Store(time.Now().UnixNano())
	if s.cfg.DisableReopt {
		close(s.done)
	} else {
		go s.idleLoop()
	}
	return s
}

// Metrics returns the server's registry (for tests and embedding callers).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Close stops the idle reoptimizer and waits for it to exit.
func (s *Server) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Handler returns the daemon's HTTP mux. Every request is wrapped in the
// shared observability middleware (obs.HTTPObs): a trace id — adopted
// from a valid X-Trace-Id header or minted here, echoed back in the
// response header and the access log — a request span parented under the
// sender's X-Span-Id, a flight-recorder entry, and a per-endpoint latency
// histogram.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.withWorker(s.handleCompile))
	mux.HandleFunc("/run", s.withWorker(s.handleRun))
	mux.HandleFunc("/check", s.withWorker(s.handleCheck))
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.addDebugHandlers(mux)
	for path, h := range s.cfg.ExtraHandlers {
		mux.Handle(path, h)
	}
	return s.httpObs.Middleware(mux)
}

// accessRecord is one structured access-log line — the flight recorder's
// request record rendered as JSON; one schema for both surfaces.
type accessRecord = obs.RequestRecord

// endpointLabel maps a request path to the llvm_serve_request_seconds
// endpoint label. Unknown paths collapse to "other": the label set is the
// registry's series key, so labeling raw paths would let any client mint
// a new histogram series per 404 and grow /metrics without bound. The
// /debug tree collapses to one label for the same reason (trace IDs in
// /debug/trace/<id> paths are client-chosen).
func endpointLabel(path string) string {
	switch path {
	case "/compile", "/run", "/check", "/stats", "/metrics",
		"/cluster/artifact", "/cluster/profile", "/cluster/health", "/cluster/peers":
		return path
	}
	if strings.HasPrefix(path, "/debug/") {
		return "/debug"
	}
	return "other"
}

// handleMetrics serves the registry in the Prometheus text exposition
// format: pass, analysis-cache, interpreter, store, reopt, and request
// series in one scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// withWorker funnels a handler through the bounded pool: the request
// waits for a slot under its deadline and is rejected with 503 when the
// budget elapses first, so overload degrades to fast refusals instead of
// unbounded queueing.
func (s *Server) withWorker(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST a module (bytecode or assembly) to this endpoint")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.cRejected.Inc()
			// The middleware already stamped X-Trace-Id on the response and
			// will log this 503 with its status; the record keeps the why.
			obs.RecordFromContext(r.Context()).SetError("saturated: no worker slot within the request budget")
			httpError(w, http.StatusServiceUnavailable, "server saturated: no worker slot within the request budget")
			return
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		s.lastActivity.Store(time.Now().UnixNano())
		defer func() {
			s.inflight.Add(-1)
			s.lastActivity.Store(time.Now().UnixNano())
		}()
		h(w, r.WithContext(ctx))
	}
}

// readModule reads and parses the request body as a module, transparently
// decoding gzipped bodies (Content-Encoding: gzip); the size cap applies
// to the decoded bytes.
func (s *Server) readModule(w http.ResponseWriter, r *http.Request) (*core.Module, bool) {
	body, err := ReadBody(r, s.cfg.MaxBody)
	if err != nil {
		obs.RecordFromContext(r.Context()).SetError(err.Error())
		if errors.Is(err, ErrBodyTooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "module exceeds the %d-byte limit", s.cfg.MaxBody)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return nil, false
	}
	m, err := tooling.LoadModuleBytes("request", body)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "parsing module: %v", err)
		return nil, false
	}
	if err := core.Verify(m); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "module invalid: %v", err)
		return nil, false
	}
	return m, true
}

// compileResponse is /compile's JSON shape (raw=1 returns the bytecode
// bytes directly, with the metadata in X- headers).
type compileResponse struct {
	CompileResult
	BytecodeB64 string `json:"bytecode_b64"`
	Size        int    `json:"size"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.cCompile.Inc()
	rec := obs.RecordFromContext(r.Context())
	sc := obs.SpanFromContext(r.Context())
	// /compile responses (raw bytecode or base64 JSON) compress well;
	// honor Accept-Encoding before any body bytes are written.
	w, finish := Compress(w, r)
	defer finish()
	tRead := time.Now()
	m, ok := s.readModule(w, r)
	if !ok {
		return
	}
	rec.AddPhase("read-parse", time.Since(tRead))
	spec := r.URL.Query().Get("pipeline")
	if spec == "" {
		spec = s.cfg.DefaultPipeline
	}
	// Single-flight: concurrent identical requests — same module content,
	// same pipeline, same profile epoch — share one pipeline run. The key
	// includes the epoch so a request racing an epoch advance never shares
	// a stale-epoch result.
	hash, err := bytecode.ModuleHash(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hashing module: %v", err)
		return
	}
	var epoch int64
	if f, ok := s.store.GetProfile(hash); ok {
		epoch = f.Epoch
	}
	key := fmt.Sprintf("%s\x1f%s\x1f%d", hash, spec, epoch)
	tCompile := time.Now()
	res, leaderTrace, shared, err := s.flight.Do(key, sc.Trace, func() (*CompileResult, error) {
		return CompileWith(s.store, m, spec, CompileOpts{
			Ctx:     r.Context(),
			Parent:  sc,
			Tracer:  s.cfg.Tracer,
			Metrics: s.metrics,
			Remote:  s.cfg.RemoteFetch,
		})
	})
	rec.AddPhase("compile", time.Since(tCompile))
	if shared {
		// This request joined another request's in-flight pipeline run.
		// Attribute the shared work: the follower's log line and recorder
		// entry name the leader's trace, and the response says so too.
		s.cDedup.Inc()
		rec.SetDedup("follower", leaderTrace)
		w.Header().Set("X-Dedup", "follower")
		if leaderTrace != "" {
			w.Header().Set("X-Dedup-Joined", leaderTrace)
		}
	}
	if err != nil {
		rec.SetError(err.Error())
		httpError(w, http.StatusInternalServerError, "compile: %v", err)
		return
	}
	rec.SetCache(res.CacheWord())
	if r.URL.Query().Get("raw") == "1" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Module-Hash", res.ModuleHash)
		w.Header().Set("X-Cache", res.CacheWord())
		w.Header().Set("X-Artifact-Epoch", fmt.Sprint(res.ArtifactEpoch))
		w.Header().Set("X-Profile-Epoch", fmt.Sprint(res.ProfileEpoch))
		w.Header().Set("X-Reoptimized", fmt.Sprint(res.Reoptimized))
		w.Write(res.Data)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse{
		CompileResult: *res,
		BytecodeB64:   base64.StdEncoding.EncodeToString(res.Data),
		Size:          len(res.Data),
	})
}

// runResponse is /run's JSON shape.
type runResponse struct {
	ModuleHash string `json:"module_hash"`
	ExitCode   int64  `json:"exit_code"`
	Output     string `json:"output"`
	Steps      int64  `json:"steps"`
	Trap       string `json:"trap,omitempty"`
	// Profiled reports the run's counts were merged into the store;
	// ProfileEpoch is the accumulated epoch afterwards, and EpochAdvanced
	// that this run crossed the materiality threshold.
	Profiled      bool  `json:"profiled"`
	ProfileEpoch  int64 `json:"profile_epoch"`
	EpochAdvanced bool  `json:"epoch_advanced"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.cRun.Inc()
	m, ok := s.readModule(w, r)
	if !ok {
		return
	}
	profiled := r.URL.Query().Get("profile") != "0"

	// Intern the module first: the profile is keyed by its hash, and the
	// idle reoptimizer needs the canonical bytes to rebuild from.
	hash, _, err := s.store.PutModule(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "storing module: %v", err)
		return
	}
	// Run the resident module object so the shared translation cache
	// applies; the freshly parsed copy is only used on first sight.
	mod, prog, _ := s.progs.fetch(hash, m)
	var out bytes.Buffer
	mc, err := interp.NewMachine(mod, &out)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "preparing machine: %v", err)
		return
	}
	mc.MaxSteps = s.cfg.MaxSteps
	mc.MaxHeapBytes = s.cfg.MaxHeapBytes
	mc.Metrics = s.metrics
	mc.SetTier(interp.TierAuto)
	if err := mc.AttachProgram(prog); err != nil {
		httpError(w, http.StatusInternalServerError, "attaching program: %v", err)
		return
	}
	if profiled {
		// The engine counts blocks itself — no instrumentation probes, so
		// the resident module is never mutated and stays shareable.
		mc.EnableProfile()
	}
	// Lifelong seeding: the store's accumulated cross-run profile marks
	// warm functions hot at start, skipping the baseline tier.
	if pf, ok := s.store.GetProfile(hash); ok {
		mc.SeedProfile(pf.Counts.Funcs)
	}

	rec := obs.RecordFromContext(r.Context())
	resp := runResponse{ModuleHash: hash}
	tRun := time.Now()
	code, runErr := mc.RunMainContext(r.Context())
	rec.AddPhase("execute", time.Since(tRun))
	resp.Steps = mc.Steps
	resp.Output = out.String()
	var ee *interp.ExitError
	switch {
	case runErr == nil:
		resp.ExitCode = code
	case errors.As(runErr, &ee):
		resp.ExitCode = ee.Code
		runErr = nil
	default:
		resp.Trap = runErr.Error()
		rec.SetError(runErr.Error())
	}

	// A trapped or cancelled run still profiled the blocks it executed;
	// partial profiles are real end-user evidence, so merge them too. In
	// cluster mode the sink routes counts to the peer owning this hash
	// range, so epoch advancement sees cluster-wide heat; a down owner
	// falls back to the local merge.
	if profiled {
		if c := profile.CountsFromBlocks(mc.BlockCounts()); c.Total > 0 {
			handled := false
			if s.cfg.ProfileSink != nil {
				if epoch, advanced, ok := s.cfg.ProfileSink(r.Context(), hash, c); ok {
					resp.Profiled = true
					resp.ProfileEpoch = epoch
					resp.EpochAdvanced = advanced
					handled = true
				}
			}
			if !handled {
				f, bumped, err := s.store.MergeProfile(hash, c)
				if err == nil {
					resp.Profiled = true
					resp.ProfileEpoch = f.Epoch
					resp.EpochAdvanced = bumped
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkResponse is /check's JSON shape.
type checkResponse struct {
	ModuleHash  string            `json:"module_hash"`
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
	Errors      int               `json:"errors"`
	// SummariesReused reports the points-to / mod-ref summaries came from
	// the store's persisted blob instead of a fresh bottom-up analysis.
	SummariesReused bool `json:"summaries_reused"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.cCheck.Inc()
	m, ok := s.readModule(w, r)
	if !ok {
		return
	}
	hash, _, err := s.store.PutModule(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "storing module: %v", err)
		return
	}
	// Lifelong summaries: reuse the persisted points-to result for this
	// content address when one exists, and seed it into the checker's
	// analysis cache so the run never recomputes it.
	pt, reused := SummariesFor(s.store, hash, m)
	if reused {
		s.cAliasReuse.Inc()
	} else {
		s.cAliasComputed.Inc()
	}
	am := analysis.NewManager()
	am.ModuleExt(dsa.Key, m, func(*core.Module) interface{} { return pt })
	ck := checker.New()
	ck.AM = am
	rep, err := ck.Check(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "check: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{
		ModuleHash:      hash,
		Diagnostics:     rep.Diags,
		Errors:          diag.CountErrors(rep.Diags),
		SummariesReused: reused,
	})
}

// statsResponse is /stats's JSON shape.
type statsResponse struct {
	UptimeSeconds float64    `json:"uptime_seconds"`
	Store         StoreStats `json:"store"`
	Requests      struct {
		Compile  uint64 `json:"compile"`
		Run      uint64 `json:"run"`
		Check    uint64 `json:"check"`
		Rejected uint64 `json:"rejected"`
		Active   int64  `json:"active"`
		// Deduped counts /compile requests that shared another request's
		// in-flight pipeline run (single-flight by hash/spec/epoch).
		Deduped uint64 `json:"deduped"`
	} `json:"requests"`
	Reopt struct {
		Enabled        bool   `json:"enabled"`
		ArtifactsBuilt uint64 `json:"artifacts_built"`
		Errors         uint64 `json:"errors"`
		LastModule     string `json:"last_module,omitempty"`
		LastEpoch      int64  `json:"last_epoch,omitempty"`
	} `json:"reopt"`
	Validate struct {
		Enabled      bool   `json:"enabled"`
		Runs         uint64 `json:"runs"`
		Miscompiles  uint64 `json:"confirmed_miscompiles"`
		Inconclusive uint64 `json:"inconclusive"`
		Quarantined  uint64 `json:"quarantined"`
	} `json:"validate"`
	Engine struct {
		ResidentPrograms int   `json:"resident_programs"`
		T1Compiles       int64 `json:"t1_compiles"`
		T1Reused         int64 `json:"t1_reused"`
		T2Compiles       int64 `json:"t2_compiles"`
		T2Reused         int64 `json:"t2_reused"`
	} `json:"engine"`
	Alias struct {
		SummariesReused   uint64 `json:"summaries_reused"`
		SummariesComputed uint64 `json:"summaries_computed"`
		QueriesNo         int64  `json:"queries_no"`
		QueriesMay        int64  `json:"queries_may"`
		QueriesMust       int64  `json:"queries_must"`
	} `json:"alias"`
	// Latency summarizes the per-endpoint request-duration histograms.
	// The quantiles are computed (obs.QuantileFromBuckets) from exactly
	// the cumulative buckets a /metrics scrape renders for
	// llvm_serve_request_seconds, so the two endpoints cannot disagree —
	// a test pins this by recomputing from the scraped text.
	Latency map[string]LatencySummary `json:"latency,omitempty"`
}

// LatencySummary is /stats' quantile view of one endpoint's
// request-duration histogram.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// handleStats renders the JSON view of the same counters /metrics scrapes:
// request and reopt totals are read back from the registry's series, and
// the store block from the same atomics the llvm_store_* bridges poll, so
// the two endpoints cannot drift apart.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Store = s.store.Stats()
	resp.Requests.Compile = uint64(s.cCompile.Value())
	resp.Requests.Run = uint64(s.cRun.Value())
	resp.Requests.Check = uint64(s.cCheck.Value())
	resp.Requests.Rejected = uint64(s.cRejected.Value())
	resp.Requests.Active = s.inflight.Load()
	resp.Requests.Deduped = uint64(s.cDedup.Value())
	resp.Reopt.Enabled = !s.cfg.DisableReopt
	resp.Reopt.ArtifactsBuilt = uint64(s.cReoptBuilt.Value())
	resp.Reopt.Errors = uint64(s.cReoptErrors.Value())
	resp.Validate.Enabled = s.oracle != nil
	resp.Validate.Runs = uint64(s.cValidateRuns.Value())
	resp.Validate.Miscompiles = uint64(s.cValidateMiscompiles.Value())
	resp.Validate.Inconclusive = uint64(s.cValidateInconclusive.Value())
	resp.Validate.Quarantined = uint64(s.cQuarantined.Value())
	est, n := s.progs.stats()
	resp.Engine.ResidentPrograms = n
	resp.Engine.T1Compiles = est.T1Compiles
	resp.Engine.T1Reused = est.T1Reused
	resp.Engine.T2Compiles = est.T2Compiles
	resp.Engine.T2Reused = est.T2Reused
	resp.Alias.SummariesReused = uint64(s.cAliasReuse.Value())
	resp.Alias.SummariesComputed = uint64(s.cAliasComputed.Value())
	qs := dsa.Stats()
	resp.Alias.QueriesNo = qs.No
	resp.Alias.QueriesMay = qs.May
	resp.Alias.QueriesMust = qs.Must
	resp.Latency = map[string]LatencySummary{}
	for _, ep := range []string{"/compile", "/run", "/check", "/stats", "/metrics", "other"} {
		h := s.httpObs.Latency(ep)
		if h.Count() == 0 {
			continue
		}
		resp.Latency[ep] = LatencySummary{
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	s.reoptMu.Lock()
	resp.Reopt.LastModule = s.reoptLast
	resp.Reopt.LastEpoch = s.reoptEpoch
	s.reoptMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// idleLoop is the idle-time reoptimizer (§3.6): whenever the request
// queue has been empty for IdleDelay, it rebuilds the hottest profiled
// module whose current-epoch artifact is missing — one module per tick,
// so an arriving request never waits behind a long reoptimization batch.
func (s *Server) idleLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.IdleDelay)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		if s.inflight.Load() != 0 {
			continue
		}
		idleFor := time.Since(time.Unix(0, s.lastActivity.Load()))
		if idleFor < s.cfg.IdleDelay {
			continue
		}
		target := nextReoptTarget(s.store, s.cfg.DefaultPipeline)
		if target == "" {
			continue
		}
		sp := s.cfg.Tracer.Begin("reoptimize", "reopt", 0)
		res, err := ReoptimizeStoredWith(s.store, target, s.cfg.DefaultPipeline, s.oracle)
		if err != nil {
			s.cReoptErrors.Inc()
		} else if res != nil {
			s.recordReopt(res)
		}
		if s.cfg.Tracer != nil {
			args := map[string]string{"module": shortHash(target)}
			if err != nil {
				args["error"] = err.Error()
			}
			sp.EndArgs(args)
		}
	}
}

// recordReopt folds one reoptimization's outcome into the daemon's
// counters: build vs quarantine, plus the oracle's verdict tallies.
func (s *Server) recordReopt(res *ReoptResult) {
	if v := res.Verdict; v != nil {
		s.cValidateRuns.Inc()
		switch v.Verdict {
		case validate.Miscompile:
			s.cValidateMiscompiles.Inc()
		case validate.Inconclusive:
			s.cValidateInconclusive.Inc()
		}
	}
	if res.Quarantined {
		s.cQuarantined.Inc()
		return
	}
	s.cReoptBuilt.Inc()
	s.reoptMu.Lock()
	s.reoptLast = res.ModHash
	s.reoptEpoch = res.Epoch
	s.reoptMu.Unlock()
}

// ReoptimizeAll drains the reopt queue synchronously: every profiled
// module is brought up to its current epoch (or quarantined when the
// oracle condemns the rebuild). Used by tests and by llvm-serve's
// -reopt-now flag; the daemon path is idleLoop.
func (s *Server) ReoptimizeAll() (built int, err error) {
	for {
		target := nextReoptTarget(s.store, s.cfg.DefaultPipeline)
		if target == "" {
			return built, nil
		}
		res, rerr := ReoptimizeStoredWith(s.store, target, s.cfg.DefaultPipeline, s.oracle)
		if rerr != nil {
			return built, rerr
		}
		if res == nil {
			return built, nil
		}
		s.recordReopt(res)
		if !res.Quarantined {
			built++
		}
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(v)
}

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
