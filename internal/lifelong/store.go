// Package lifelong implements the paper's defining claim (§1, §4.1–4.2)
// as a running system: IR that persists across compile-, link-, run-, and
// idle-time. Its pieces are a content-addressed on-disk store for modules
// and their optimized artifacts, cross-run profile accumulation keyed by
// module hash, a cache-aware compile path, and an HTTP daemon
// (cmd/llvm-serve) whose idle-time reoptimizer turns accumulated end-user
// profiles into better artifacts while no requests are in flight — the
// offline reoptimizer of §3.6.
package lifelong

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/tooling"
)

// Store is the persistent, content-addressed module store. Modules are
// keyed by the SHA-256 of their canonical bytecode (bytecode.ModuleHash);
// optimized artifacts by (module hash, pipeline spec, profile epoch);
// accumulated profiles by module hash. All writes are atomic
// (temp-file-and-rename), every read re-verifies the blob's recorded
// digest so corruption is detected rather than decoded, and total blob
// size is bounded by an LRU cap — except profiles, which are tiny and
// irreplaceable (they encode end-user history no recompile can recover).
type Store struct {
	dir      string
	maxBytes int64

	// Tracer, when set, records cache hits, misses, and evictions as
	// instant events on the store track of the pipeline trace.
	Tracer *obs.Tracer

	mu  sync.Mutex
	idx *index

	// Counters are atomics so /stats can read them without the lock.
	moduleHits, moduleMisses     atomic.Uint64
	artifactHits, artifactMisses atomic.Uint64
	summaryHits, summaryMisses   atomic.Uint64
	evictions, corruptions       atomic.Uint64
	quarantines                  atomic.Uint64
}

// RegisterMetrics bridges the store's atomic counters and size gauges into
// reg under the llvm_store_* names, polled at scrape time so /stats (which
// reads the same atomics) and /metrics can never disagree.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.CounterFunc("llvm_store_module_hits_total", func() float64 { return float64(s.moduleHits.Load()) })
	reg.CounterFunc("llvm_store_module_misses_total", func() float64 { return float64(s.moduleMisses.Load()) })
	reg.CounterFunc("llvm_store_artifact_hits_total", func() float64 { return float64(s.artifactHits.Load()) })
	reg.CounterFunc("llvm_store_artifact_misses_total", func() float64 { return float64(s.artifactMisses.Load()) })
	reg.CounterFunc("llvm_store_summary_hits_total", func() float64 { return float64(s.summaryHits.Load()) })
	reg.CounterFunc("llvm_store_summary_misses_total", func() float64 { return float64(s.summaryMisses.Load()) })
	reg.CounterFunc("llvm_store_evictions_total", func() float64 { return float64(s.evictions.Load()) })
	reg.CounterFunc("llvm_store_corruptions_total", func() float64 { return float64(s.corruptions.Load()) })
	reg.CounterFunc("llvm_store_quarantines_total", func() float64 { return float64(s.quarantines.Load()) })
	reg.GaugeFunc("llvm_store_bytes", func() float64 { return float64(s.Stats().Bytes) })
	reg.GaugeFunc("llvm_store_blobs", func() float64 {
		st := s.Stats()
		return float64(st.Modules + st.Artifacts + st.Profiles)
	})
}

// index is the store's bookkeeping sidecar (index.json): per-blob size,
// digest, and LRU recency. It is a cache of the blobs' own state — Open
// rebuilds it from the blobs when missing or corrupt.
type index struct {
	Clock   int64                  `json:"clock"`
	Entries map[string]*indexEntry `json:"entries"`
}

type indexEntry struct {
	Size int64  `json:"size"`
	SHA  string `json:"sha256"`
	Used int64  `json:"used"`
	// Spec records an artifact's pipeline spec for observability; empty
	// for modules and profiles.
	Spec string `json:"spec,omitempty"`
}

const (
	modulesDir   = "modules"
	artifactsDir = "artifacts"
	profilesDir  = "profiles"
	// summariesDir holds serialized whole-program points-to / mod/ref
	// summaries (internal/dsa encoding), keyed by module hash. They are a
	// pure cache over the module blob — evictable, rebuilt on demand — but
	// persisting them is what lets repeat /check calls and idle-time
	// analysis skip the bottom-up recomputation entirely.
	summariesDir = "summaries"
	// quarantineDir holds poisoned-artifact markers: artifacts the
	// translation-validation oracle confirmed miscompiled. Quarantine
	// blobs live outside the index — they are never served, never count
	// as cache hits, and never compete with real blobs for the LRU cap.
	quarantineDir = "quarantine"
	indexFile     = "index.json"
)

// DefaultMaxBytes caps the store at 256 MiB unless configured otherwise.
const DefaultMaxBytes = 256 << 20

// Open opens (creating if needed) a store rooted at dir. maxBytes bounds
// the total size of evictable blobs (0 = DefaultMaxBytes, negative =
// unlimited). A missing or corrupt index is rebuilt by re-hashing the
// blobs, so a crash between a blob write and its index write loses
// nothing but LRU recency.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	for _, sub := range []string{modulesDir, artifactsDir, profilesDir, summariesDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) loadIndex() error {
	s.idx = &index{Entries: map[string]*indexEntry{}}
	data, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if err == nil {
		var idx index
		if json.Unmarshal(data, &idx) == nil && idx.Entries != nil {
			s.idx = &idx
		}
	}
	// Reconcile with the blobs actually on disk: drop entries whose blob
	// vanished, adopt blobs the index never heard of.
	seen := map[string]bool{}
	for _, sub := range []string{modulesDir, artifactsDir, profilesDir, summariesDir} {
		entries, err := os.ReadDir(filepath.Join(s.dir, sub))
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			rel := filepath.Join(sub, e.Name())
			seen[rel] = true
			if _, ok := s.idx.Entries[rel]; ok {
				continue
			}
			blob, err := os.ReadFile(filepath.Join(s.dir, rel))
			if err != nil {
				return err
			}
			s.idx.Entries[rel] = &indexEntry{
				Size: int64(len(blob)),
				SHA:  bytecode.HashBytes(blob),
				Used: s.idx.Clock,
			}
		}
	}
	for rel := range s.idx.Entries {
		if !seen[rel] {
			delete(s.idx.Entries, rel)
		}
	}
	return s.flushIndexLocked()
}

// flushIndexLocked persists the index atomically; callers hold mu (or are
// in single-threaded Open).
func (s *Store) flushIndexLocked() error {
	data, err := json.MarshalIndent(s.idx, "", "\t")
	if err != nil {
		return err
	}
	return tooling.AtomicWriteFile(filepath.Join(s.dir, indexFile), data, 0o644)
}

// touchLocked bumps a blob's LRU recency.
func (s *Store) touchLocked(rel string) {
	if e, ok := s.idx.Entries[rel]; ok {
		s.idx.Clock++
		e.Used = s.idx.Clock
	}
}

// putBlobLocked writes a blob atomically and records it in the index.
func (s *Store) putBlobLocked(rel, spec string, data []byte) error {
	if err := tooling.AtomicWriteFile(filepath.Join(s.dir, rel), data, 0o644); err != nil {
		return err
	}
	s.idx.Clock++
	s.idx.Entries[rel] = &indexEntry{
		Size: int64(len(data)),
		SHA:  bytecode.HashBytes(data),
		Used: s.idx.Clock,
		Spec: spec,
	}
	s.evictLocked()
	return s.flushIndexLocked()
}

// getBlobLocked reads a blob and verifies its digest. Corrupt blobs are
// deleted and reported as missing, so a bit-flipped artifact degrades to
// a recompile instead of serving garbage.
func (s *Store) getBlobLocked(rel string) ([]byte, bool) {
	e, ok := s.idx.Entries[rel]
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, rel))
	if err != nil || bytecode.HashBytes(data) != e.SHA {
		s.corruptions.Add(1)
		os.Remove(filepath.Join(s.dir, rel))
		delete(s.idx.Entries, rel)
		s.flushIndexLocked()
		return nil, false
	}
	s.touchLocked(rel)
	return data, true
}

// evictLocked removes least-recently-used evictable blobs (modules and
// artifacts; never profiles, never the index) until the cap is met.
func (s *Store) evictLocked() {
	if s.maxBytes < 0 {
		return
	}
	type cand struct {
		rel  string
		used int64
		size int64
	}
	for {
		var total int64
		var cands []cand
		for rel, e := range s.idx.Entries {
			if filepath.Dir(rel) == profilesDir {
				continue
			}
			total += e.Size
			cands = append(cands, cand{rel, e.Used, e.Size})
		}
		if total <= s.maxBytes || len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].used < cands[j].used })
		victim := cands[0]
		os.Remove(filepath.Join(s.dir, victim.rel))
		delete(s.idx.Entries, victim.rel)
		s.evictions.Add(1)
		s.Tracer.Instant("evict", "store", 0, map[string]string{"blob": victim.rel})
	}
}

// ---------------------------------------------------------------------------
// Modules

func modulePath(hash string) string { return filepath.Join(modulesDir, hash+".bc") }

// PutModule stores a module under its content address, returning the hash
// and the canonical bytes (already present is not an error — the write is
// skipped and the entry's recency bumped).
func (s *Store) PutModule(m *core.Module) (hash string, canonical []byte, err error) {
	canonical, err = bytecode.Encode(m)
	if err != nil {
		return "", nil, err
	}
	hash = bytecode.HashBytes(canonical)
	s.mu.Lock()
	defer s.mu.Unlock()
	rel := modulePath(hash)
	if _, ok := s.idx.Entries[rel]; ok {
		s.touchLocked(rel)
		return hash, canonical, s.flushIndexLocked()
	}
	return hash, canonical, s.putBlobLocked(rel, "", canonical)
}

// GetModuleBytes returns a module's canonical bytecode by content address.
func (s *Store) GetModuleBytes(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.getBlobLocked(modulePath(hash))
	if ok && bytecode.HashBytes(data) != hash {
		// Digest matched the index but not the address: the index itself
		// lied (e.g. rebuilt over a tampered blob). Same treatment.
		s.corruptions.Add(1)
		os.Remove(filepath.Join(s.dir, modulePath(hash)))
		delete(s.idx.Entries, modulePath(hash))
		s.flushIndexLocked()
		ok = false
	}
	if ok {
		s.moduleHits.Add(1)
	} else {
		s.moduleMisses.Add(1)
	}
	if s.Tracer != nil {
		s.Tracer.Instant("module-"+cacheWord(ok), "store", 0, map[string]string{"hash": shortHash(hash)})
	}
	return data, ok
}

// GetModule materializes a stored module through the hardened decoder.
func (s *Store) GetModule(hash string) (*core.Module, error) {
	data, ok := s.GetModuleBytes(hash)
	if !ok {
		return nil, fmt.Errorf("lifelong: module %s not in store", shortHash(hash))
	}
	return bytecode.Decode(data)
}

// ---------------------------------------------------------------------------
// Artifacts

// artifactPath keys an optimized artifact by (module hash, pipeline spec,
// profile epoch). The spec is folded to a digest so arbitrary pass lists
// stay filesystem-safe.
func artifactPath(modHash, spec string, epoch int64) string {
	specSum := bytecode.HashBytes([]byte(spec))[:16]
	return filepath.Join(artifactsDir, fmt.Sprintf("%s.%s.e%d.bc", modHash, specSum, epoch))
}

// PutArtifact stores optimized bytecode for (modHash, spec, epoch).
func (s *Store) PutArtifact(modHash, spec string, epoch int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putBlobLocked(artifactPath(modHash, spec, epoch), spec, data)
}

// HasArtifact reports whether an artifact exists, without touching LRU
// recency or the hit/miss counters — the idle reoptimizer's probe, which
// would otherwise skew the serving-path statistics every idle tick.
func (s *Store) HasArtifact(modHash, spec string, epoch int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx.Entries[artifactPath(modHash, spec, epoch)]
	return ok
}

// GetArtifact returns the optimized bytecode for (modHash, spec, epoch),
// verifying its digest; a corrupt artifact counts as a miss.
func (s *Store) GetArtifact(modHash, spec string, epoch int64) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.getBlobLocked(artifactPath(modHash, spec, epoch))
	s.mu.Unlock()
	if ok {
		s.artifactHits.Add(1)
	} else {
		s.artifactMisses.Add(1)
	}
	if s.Tracer != nil {
		s.Tracer.Instant("artifact-"+cacheWord(ok), "store", 0,
			map[string]string{"hash": shortHash(modHash), "epoch": fmt.Sprint(epoch)})
	}
	return data, ok
}

// ---------------------------------------------------------------------------
// Points-to summaries

func summaryPath(modHash string) string { return filepath.Join(summariesDir, modHash+".pts") }

// PutSummaries stores the serialized points-to / mod-ref summaries for the
// module at modHash (internal/dsa encoding). The blob is keyed purely by
// the module's content address: a changed module has a different hash, so
// stale summaries are structurally unreachable, and the dsa decoder
// additionally rejects any blob that does not describe the module it is
// bound to.
func (s *Store) PutSummaries(modHash string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putBlobLocked(summaryPath(modHash), "", data)
}

// GetSummaries returns the serialized summaries for modHash, verifying the
// blob digest; corrupt blobs count as misses and are removed.
func (s *Store) GetSummaries(modHash string) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.getBlobLocked(summaryPath(modHash))
	s.mu.Unlock()
	if ok {
		s.summaryHits.Add(1)
	} else {
		s.summaryMisses.Add(1)
	}
	if s.Tracer != nil {
		s.Tracer.Instant("summary-"+cacheWord(ok), "store", 0, map[string]string{"hash": shortHash(modHash)})
	}
	return data, ok
}

// HasSummaries reports whether summaries exist for modHash without touching
// the LRU recency or hit/miss counters (the idle loop's probe).
func (s *Store) HasSummaries(modHash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx.Entries[summaryPath(modHash)]
	return ok
}

// ---------------------------------------------------------------------------
// Quarantine

// quarantinePath mirrors artifactPath's key under quarantineDir with the
// .poisoned suffix; the blob next to it (.reason) records why.
func quarantinePath(modHash, spec string, epoch int64) string {
	base := filepath.Base(artifactPath(modHash, spec, epoch))
	return filepath.Join(quarantineDir, base+".poisoned")
}

// QuarantineArtifact records that the artifact for (modHash, spec, epoch)
// is a confirmed miscompile: the poisoned bytes are preserved for
// post-mortem debugging (as the .poisoned blob) together with the
// oracle's verdict (.reason), and any previously stored artifact under
// the same key is removed so the serving path can never hand it out. A
// quarantined key stays quarantined until the store directory is cleaned
// by hand — the reoptimizer skips it instead of rebuilding the same
// miscompile every idle tick.
func (s *Store) QuarantineArtifact(modHash, spec string, epoch int64, data []byte, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rel := quarantinePath(modHash, spec, epoch)
	if err := tooling.AtomicWriteFile(filepath.Join(s.dir, rel), data, 0o644); err != nil {
		return err
	}
	if err := tooling.AtomicWriteFile(filepath.Join(s.dir, rel+".reason"), []byte(reason+"\n"), 0o644); err != nil {
		return err
	}
	// Evict any live artifact under the same key: quarantine wins.
	art := artifactPath(modHash, spec, epoch)
	if _, ok := s.idx.Entries[art]; ok {
		os.Remove(filepath.Join(s.dir, art))
		delete(s.idx.Entries, art)
		if err := s.flushIndexLocked(); err != nil {
			return err
		}
	}
	s.quarantines.Add(1)
	s.Tracer.Instant("quarantine", "store", 0, map[string]string{
		"hash": shortHash(modHash), "epoch": fmt.Sprint(epoch),
	})
	return nil
}

// IsQuarantined reports whether (modHash, spec, epoch) has been condemned.
func (s *Store) IsQuarantined(modHash, spec string, epoch int64) bool {
	_, err := os.Stat(filepath.Join(s.dir, quarantinePath(modHash, spec, epoch)))
	return err == nil
}

// QuarantineReason returns the recorded verdict for a quarantined key.
func (s *Store) QuarantineReason(modHash, spec string, epoch int64) (string, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, quarantinePath(modHash, spec, epoch)+".reason"))
	if err != nil {
		return "", false
	}
	return string(data), true
}

// ---------------------------------------------------------------------------
// Profiles

func profilePath(modHash string) string { return filepath.Join(profilesDir, modHash+".json") }

// MergeProfile accumulates a run's counts into the module's persistent
// profile and reports the resulting file plus whether the merge advanced
// the epoch (invalidating artifacts keyed to older epochs).
func (s *Store) MergeProfile(modHash string, c *profile.Counts) (*profile.File, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &profile.File{}
	if data, ok := s.getBlobLocked(profilePath(modHash)); ok {
		if g, err := profile.DecodeFile(data); err == nil {
			f = g
		} else {
			s.corruptions.Add(1)
		}
	}
	bumped := f.Merge(c)
	data, err := profile.EncodeFile(f)
	if err != nil {
		return nil, false, err
	}
	if err := s.putBlobLocked(profilePath(modHash), "", data); err != nil {
		return nil, false, err
	}
	return f, bumped, nil
}

// GetProfile returns the accumulated profile for a module, if any.
func (s *Store) GetProfile(modHash string) (*profile.File, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.getBlobLocked(profilePath(modHash))
	if !ok {
		return nil, false
	}
	f, err := profile.DecodeFile(data)
	if err != nil {
		s.corruptions.Add(1)
		os.Remove(filepath.Join(s.dir, profilePath(modHash)))
		delete(s.idx.Entries, profilePath(modHash))
		s.flushIndexLocked()
		return nil, false
	}
	return f, true
}

// ProfileInfo summarizes one module's accumulated profile for the idle
// reoptimizer's hottest-first scheduling.
type ProfileInfo struct {
	ModHash string
	Epoch   int64
	Total   int64
}

// Profiles lists all accumulated profiles, hottest (largest total) first.
func (s *Store) Profiles() []ProfileInfo {
	s.mu.Lock()
	var rels []string
	for rel := range s.idx.Entries {
		if filepath.Dir(rel) == profilesDir {
			rels = append(rels, rel)
		}
	}
	s.mu.Unlock()
	var out []ProfileInfo
	for _, rel := range rels {
		hash := filepath.Base(rel)
		hash = hash[:len(hash)-len(".json")]
		if f, ok := s.GetProfile(hash); ok {
			out = append(out, ProfileInfo{ModHash: hash, Epoch: f.Epoch, Total: f.Counts.Total})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].ModHash < out[j].ModHash
	})
	return out
}

// ---------------------------------------------------------------------------
// Stats

// StoreStats is a point-in-time snapshot of the store for /stats and
// llvm-bench.
type StoreStats struct {
	Modules   int `json:"modules"`
	Artifacts int `json:"artifacts"`
	Profiles  int `json:"profiles"`
	// Summaries counts persisted points-to summary blobs.
	Summaries int `json:"summaries"`
	// Quarantined counts poisoned artifacts on disk (confirmed
	// miscompiles the serving path refuses to touch).
	Quarantined int   `json:"quarantined"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`

	ModuleHits     uint64 `json:"module_hits"`
	ModuleMisses   uint64 `json:"module_misses"`
	ArtifactHits   uint64 `json:"artifact_hits"`
	ArtifactMisses uint64 `json:"artifact_misses"`
	SummaryHits    uint64 `json:"summary_hits"`
	SummaryMisses  uint64 `json:"summary_misses"`
	Evictions      uint64 `json:"evictions"`
	Corruptions    uint64 `json:"corruptions"`
}

// Stats snapshots the store's contents and counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		MaxBytes:       s.maxBytes,
		ModuleHits:     s.moduleHits.Load(),
		ModuleMisses:   s.moduleMisses.Load(),
		ArtifactHits:   s.artifactHits.Load(),
		ArtifactMisses: s.artifactMisses.Load(),
		SummaryHits:    s.summaryHits.Load(),
		SummaryMisses:  s.summaryMisses.Load(),
		Evictions:      s.evictions.Load(),
		Corruptions:    s.corruptions.Load(),
	}
	if entries, err := os.ReadDir(filepath.Join(s.dir, quarantineDir)); err == nil {
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".poisoned" {
				st.Quarantined++
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for rel, e := range s.idx.Entries {
		st.Bytes += e.Size
		switch filepath.Dir(rel) {
		case modulesDir:
			st.Modules++
		case artifactsDir:
			st.Artifacts++
		case profilesDir:
			st.Profiles++
		case summariesDir:
			st.Summaries++
		}
	}
	return st
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
