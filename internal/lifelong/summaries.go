package lifelong

import (
	"repro/internal/core"
	"repro/internal/dsa"
)

// SummariesFor returns the whole-program points-to / mod-ref result for a
// module already interned in the store under hash, reusing the persisted
// encoding when one exists and computing (then persisting) it otherwise.
// reused reports which path was taken.
//
// Safety of reuse rests on two independent checks: the key is the module's
// content address, so a changed module looks up a different blob, and the
// dsa decoder positionally validates the blob against the module it is
// being bound to, so even a blob planted under the wrong hash is rejected
// and recomputed rather than trusted.
func SummariesFor(st *Store, hash string, m *core.Module) (res *dsa.Result, reused bool) {
	if data, ok := st.GetSummaries(hash); ok {
		if r, err := dsa.Decode(data, m); err == nil {
			return r, true
		}
		// The blob does not describe this module (stale or foreign): fall
		// through and overwrite it with a fresh computation.
	}
	r := dsa.Analyze(m)
	st.PutSummaries(hash, r.Encode(m))
	return r, false
}
