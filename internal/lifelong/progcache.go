package lifelong

// progCache keeps the daemon's hot modules resident together with their
// shared interp.Program translation caches, keyed by module hash. A
// Program's translations are bound to one module object (constant
// resolution bakes that object's deterministic layout), so the cache must
// hand every /run of the same bytes the same module object — repeated
// requests then reuse tier-1/tier-2 translations instead of retranslating
// per machine, and the Program's reuse counters prove it.

import (
	"sync"

	"repro/internal/core"
	"repro/internal/interp"
)

const defaultProgCacheSize = 32

type progEntry struct {
	mod  *core.Module
	prog *interp.Program
}

type progCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*progEntry
	order   []string // LRU order, most recently used last
}

func newProgCache(cap int) *progCache {
	if cap <= 0 {
		cap = defaultProgCacheSize
	}
	return &progCache{cap: cap, entries: map[string]*progEntry{}}
}

// fetch returns the resident module and translation cache for hash,
// adopting m (the freshly parsed request module) on first sight. hit
// reports whether the entry already existed.
func (c *progCache) fetch(hash string, m *core.Module) (*core.Module, *interp.Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		c.touch(hash)
		return e.mod, e.prog, true
	}
	e := &progEntry{mod: m, prog: interp.NewProgram(m)}
	c.entries[hash] = e
	c.order = append(c.order, hash)
	if len(c.order) > c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, evict)
	}
	return e.mod, e.prog, false
}

func (c *progCache) touch(hash string) {
	for i, h := range c.order {
		if h == hash {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), hash)
			return
		}
	}
}

// stats sums translation traffic across every resident program.
func (c *progCache) stats() (interp.ProgramStats, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var agg interp.ProgramStats
	for _, e := range c.entries {
		st := e.prog.Stats()
		agg.T1Compiles += st.T1Compiles
		agg.T1Reused += st.T1Reused
		agg.T2Compiles += st.T2Compiles
		agg.T2Reused += st.T2Reused
	}
	return agg, len(c.entries)
}
