package lifelong

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ErrBodyTooLarge reports a request body above the caller's size cap. The
// cap applies to the *decoded* bytes, so a gzipped request cannot smuggle
// an oversized module past the limit (decompression-bomb guard).
var ErrBodyTooLarge = errors.New("request body exceeds the size limit")

// ReadBody reads a request body of at most max decoded bytes, honoring
// Content-Encoding: gzip. Module bodies compress 3-5x (bytecode is full of
// repeated opcodes and symbol bytes), so the cluster's peer-to-peer
// transfers and front-end forwards all ship gzip instead of whole
// uncompressed modules.
func ReadBody(r *http.Request, max int64) ([]byte, error) {
	var rd io.Reader = r.Body
	switch ce := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))); ce {
	case "", "identity":
	case "gzip", "x-gzip":
		zr, err := gzip.NewReader(rd)
		if err != nil {
			return nil, fmt.Errorf("gzip body: %w", err)
		}
		defer zr.Close()
		rd = zr
	default:
		return nil, fmt.Errorf("unsupported Content-Encoding %q", ce)
	}
	data, err := io.ReadAll(io.LimitReader(rd, max+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if int64(len(data)) > max {
		return nil, ErrBodyTooLarge
	}
	return data, nil
}

// acceptsGzip reports whether the client's Accept-Encoding admits gzip.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		if i := strings.IndexByte(enc, ';'); i >= 0 {
			enc = strings.TrimSpace(enc[:i])
		}
		if strings.EqualFold(enc, "gzip") || strings.EqualFold(enc, "x-gzip") {
			return true
		}
	}
	return false
}

// gzipResponseWriter funnels the handler's writes through a gzip stream;
// headers and status pass through to the wrapped writer untouched.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) { return g.gz.Write(p) }

// Compress wraps w in a gzip encoder when the request's Accept-Encoding
// admits it, returning the writer handlers should use plus a finish
// function that flushes the stream (call it after the handler returns —
// deferred). When the client did not ask for gzip, w comes back unchanged
// and finish is a no-op.
func Compress(w http.ResponseWriter, r *http.Request) (http.ResponseWriter, func()) {
	if !acceptsGzip(r) {
		return w, func() {}
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Del("Content-Length")
	gz := gzip.NewWriter(w)
	return &gzipResponseWriter{ResponseWriter: w, gz: gz}, func() { gz.Close() }
}
