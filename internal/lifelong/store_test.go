package lifelong

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/profile"
)

const storeSrc = `
int %double(int %x) {
entry:
	%y = add int %x, %x
	ret int %y
}

int %main() {
entry:
	%r = call int %double(int 21)
	ret int %r
}
`

func parse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openStore(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreModuleRoundTrip(t *testing.T) {
	s := openStore(t, 0)
	m := parse(t, storeSrc)
	hash, canonical, err := s.PutModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if hash != bytecode.HashBytes(canonical) {
		t.Fatal("PutModule hash does not address its canonical bytes")
	}
	data, ok := s.GetModuleBytes(hash)
	if !ok || string(data) != string(canonical) {
		t.Fatal("stored module bytes differ")
	}
	m2, err := s.GetModule(hash)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != m2.String() {
		t.Fatal("module changed through the store")
	}
	// Re-putting is idempotent.
	hash2, _, err := s.PutModule(m)
	if err != nil || hash2 != hash {
		t.Fatalf("re-put changed address: %v %s", err, hash2)
	}
	if st := s.Stats(); st.Modules != 1 {
		t.Fatalf("store holds %d modules, want 1", st.Modules)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := parse(t, storeSrc)
	hash, canonical, err := s.PutModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact(hash, "std", 0, canonical); err != nil {
		t.Fatal(err)
	}

	// Reopen with the index deleted: blobs must be rediscovered.
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetModuleBytes(hash); !ok {
		t.Fatal("module lost after index rebuild")
	}
	if _, ok := s2.GetArtifact(hash, "std", 0); !ok {
		t.Fatal("artifact lost after index rebuild")
	}
}

func TestStoreDetectsCorruption(t *testing.T) {
	s := openStore(t, 0)
	m := parse(t, storeSrc)
	hash, canonical, err := s.PutModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact(hash, "std", 0, canonical); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the artifact blob on disk.
	rel := artifactPath(hash, "std", 0)
	path := filepath.Join(s.Dir(), rel)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetArtifact(hash, "std", 0); ok {
		t.Fatal("corrupt artifact served")
	}
	if st := s.Stats(); st.Corruptions == 0 {
		t.Fatal("corruption not counted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt blob not removed")
	}
	// The module, untouched, still reads fine.
	if _, ok := s.GetModuleBytes(hash); !ok {
		t.Fatal("healthy module misreported")
	}
}

func TestStoreArtifactKeying(t *testing.T) {
	s := openStore(t, 0)
	hash := "deadbeef"
	if err := s.PutArtifact(hash, "std", 0, []byte("LLBC-std-e0")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact(hash, "std", 1, []byte("LLBC-std-e1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact(hash, "linktime", 0, []byte("LLBC-lt-e0")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		spec  string
		epoch int64
		want  string
	}{{"std", 0, "LLBC-std-e0"}, {"std", 1, "LLBC-std-e1"}, {"linktime", 0, "LLBC-lt-e0"}} {
		data, ok := s.GetArtifact(hash, tc.spec, tc.epoch)
		if !ok || string(data) != tc.want {
			t.Fatalf("(%s,e%d) = %q, %v; want %q", tc.spec, tc.epoch, data, ok, tc.want)
		}
	}
	if _, ok := s.GetArtifact(hash, "std", 2); ok {
		t.Fatal("phantom epoch served")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	// Cap small enough for two 1 KiB artifacts but not three.
	s := openStore(t, 2500)
	blob := make([]byte, 1024)
	if err := s.PutArtifact("aaaa", "std", 0, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact("bbbb", "std", 0, blob); err != nil {
		t.Fatal(err)
	}
	// Touch aaaa so bbbb is the LRU victim when cccc arrives.
	if _, ok := s.GetArtifact("aaaa", "std", 0); !ok {
		t.Fatal("aaaa missing before eviction")
	}
	if err := s.PutArtifact("cccc", "std", 0, blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetArtifact("aaaa", "std", 0); !ok {
		t.Fatal("recently-used artifact evicted")
	}
	if _, ok := s.GetArtifact("bbbb", "std", 0); ok {
		t.Fatal("LRU artifact survived past the cap")
	}
	if _, ok := s.GetArtifact("cccc", "std", 0); !ok {
		t.Fatal("newest artifact evicted")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestStoreProfilesExemptFromEviction(t *testing.T) {
	s := openStore(t, 1500)
	c := &profile.Counts{Funcs: map[string][]int64{"main": {10, 5}}, Total: 15}
	if _, _, err := s.MergeProfile("aaaa", c); err != nil {
		t.Fatal(err)
	}
	// Blow past the cap with artifacts; the profile must survive.
	blob := make([]byte, 1024)
	if err := s.PutArtifact("aaaa", "std", 0, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact("bbbb", "std", 0, blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetProfile("aaaa"); !ok {
		t.Fatal("profile evicted by size pressure")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("expected artifact evictions under the cap")
	}
}

func TestStoreProfileAccumulationAndEpochs(t *testing.T) {
	s := openStore(t, 0)
	c := &profile.Counts{Funcs: map[string][]int64{"main": {100}}, Total: 100}
	f1, bumped, err := s.MergeProfile("aaaa", c)
	if err != nil || !bumped || f1.Epoch != 1 {
		t.Fatalf("first merge: %v bumped=%v epoch=%d", err, bumped, f1.Epoch)
	}
	f2, bumped, err := s.MergeProfile("aaaa", c)
	if err != nil || !bumped || f2.Epoch != 2 {
		t.Fatalf("second merge: %v bumped=%v epoch=%d", err, bumped, f2.Epoch)
	}
	f3, bumped, err := s.MergeProfile("aaaa", c)
	if err != nil || bumped || f3.Counts.Total != 300 {
		t.Fatalf("third merge: %v bumped=%v total=%d", err, bumped, f3.Counts.Total)
	}

	// Hottest-first listing.
	cHot := &profile.Counts{Funcs: map[string][]int64{"main": {100000}}, Total: 100000}
	if _, _, err := s.MergeProfile("bbbb", cHot); err != nil {
		t.Fatal(err)
	}
	infos := s.Profiles()
	if len(infos) != 2 || infos[0].ModHash != "bbbb" || infos[1].ModHash != "aaaa" {
		t.Fatalf("profiles not hottest-first: %+v", infos)
	}
}
