package lifelong

import (
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/validate"
)

// reoptTransform is the profile-guided rebuild step, indirected so tests
// can inject a corrupting transform and exercise the quarantine path.
var reoptTransform = func(m *core.Module, d *profile.Data, opts profile.ReoptOptions) profile.ReoptResult {
	return profile.Reoptimize(m, d, opts)
}

// ReoptResult reports one stored-module reoptimization.
type ReoptResult struct {
	ModHash string
	Epoch   int64
	// HotInlined and Reordered are the reoptimizer's work counts.
	HotInlined int
	Reordered  int
	// Verdict is the translation-validation oracle's result for the
	// rebuild (nil when validation was disabled).
	Verdict *validate.Result
	// Quarantined reports the rebuilt artifact was a confirmed miscompile
	// and went to quarantine instead of the store's serving path.
	Quarantined bool
}

// ReoptimizeStored builds the profile-guided artifact for a stored module
// at its current profile epoch, with the rebuild checked by the default
// translation-validation oracle — see ReoptimizeStoredWith.
func ReoptimizeStored(st *Store, modHash, spec string) (*ReoptResult, error) {
	return ReoptimizeStoredWith(st, modHash, spec, validate.Default())
}

// ReoptimizeStoredWith is the §3.6 offline reoptimizer run against the
// store instead of a single process: the canonical module is decoded, the
// accumulated cross-run counts bound onto its blocks, and
// profile.Reoptimize applies hot-call inlining, scalar clean-up, and
// hottest-first block layout. Returns (nil, nil) when there is nothing to
// do: no profile yet, the artifact for the current epoch already exists,
// or that epoch is quarantined.
//
// When oracle is non-nil the rebuild is treated as one big pass run: the
// oracle compares the pre-reopt module with the transformed one, and a
// confirmed Miscompile sends the artifact to quarantine — preserved for
// debugging, never stored, never served. The daemon keeps serving the
// epoch-0 artifact for the module (marked stale), which is the correct
// degraded behavior: a slower program beats a wrong one. An Inconclusive
// verdict ships the artifact — inconclusive means "could not re-prove",
// not "found a bug", and refusing to ship on it would disable
// profile-guided reoptimization for any module with an input-dependent
// hot path.
func ReoptimizeStoredWith(st *Store, modHash, spec string, oracle *validate.Oracle) (*ReoptResult, error) {
	f, ok := st.GetProfile(modHash)
	if !ok || f.Epoch == 0 {
		return nil, nil
	}
	if st.HasArtifact(modHash, spec, f.Epoch) || st.IsQuarantined(modHash, spec, f.Epoch) {
		return nil, nil
	}
	m, err := st.GetModule(modHash)
	if err != nil {
		return nil, err
	}
	// Idle-time analysis warming: make sure the canonical module's
	// points-to summaries are persisted (computed here, off the serving
	// path, if missing) so the next /check or seeded /compile of this hash
	// reuses them. Must happen before the transform mutates m.
	if !st.HasSummaries(modHash) {
		SummariesFor(st, modHash, m)
	}
	d, err := f.Counts.Bind(m)
	if err != nil {
		return nil, err
	}
	var before *core.Module
	if oracle != nil {
		before = core.CloneModule(m)
	}
	res := reoptTransform(m, d, profile.DefaultReoptOptions())
	if err := core.Verify(m); err != nil {
		return nil, err
	}
	out := &ReoptResult{
		ModHash:    modHash,
		Epoch:      f.Epoch,
		HotInlined: res.HotInlined,
		Reordered:  res.Reordered,
	}
	data, err := bytecode.Encode(m)
	if err != nil {
		return nil, err
	}
	if oracle != nil {
		v := oracle.ValidatePass("reoptimize", before, m)
		out.Verdict = v
		if v.Verdict == validate.Miscompile {
			out.Quarantined = true
			if err := st.QuarantineArtifact(modHash, spec, f.Epoch, data, v.Summary()); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	if err := st.PutArtifact(modHash, spec, f.Epoch, data); err != nil {
		return nil, err
	}
	return out, nil
}

// nextReoptTarget returns the hottest stored profile whose current-epoch
// artifact is missing and not quarantined, or "" when the store is fully
// reoptimized. Skipping quarantined epochs keeps the idle loop from
// rebuilding the same confirmed miscompile every tick.
func nextReoptTarget(st *Store, spec string) string {
	for _, info := range st.Profiles() {
		if info.Epoch == 0 {
			continue
		}
		if st.HasArtifact(info.ModHash, spec, info.Epoch) || st.IsQuarantined(info.ModHash, spec, info.Epoch) {
			continue
		}
		return info.ModHash
	}
	return ""
}
