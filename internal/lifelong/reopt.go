package lifelong

import (
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/profile"
)

// ReoptResult reports one stored-module reoptimization.
type ReoptResult struct {
	ModHash string
	Epoch   int64
	// HotInlined and Reordered are the reoptimizer's work counts.
	HotInlined int
	Reordered  int
}

// ReoptimizeStored builds the profile-guided artifact for a stored module
// at its current profile epoch — the §3.6 offline reoptimizer run against
// the store instead of a single process: the canonical module is decoded,
// the accumulated cross-run counts bound onto its blocks, and
// profile.Reoptimize applies hot-call inlining, scalar clean-up, and
// hottest-first block layout. Returns (nil, nil) when there is nothing to
// do: no profile yet, or the artifact for the current epoch already
// exists. Epoch>0 artifacts are the reoptimizer's output for every spec;
// the spec still keys the artifact so distinct serving pipelines never
// collide.
func ReoptimizeStored(st *Store, modHash, spec string) (*ReoptResult, error) {
	f, ok := st.GetProfile(modHash)
	if !ok || f.Epoch == 0 {
		return nil, nil
	}
	if st.HasArtifact(modHash, spec, f.Epoch) {
		return nil, nil
	}
	m, err := st.GetModule(modHash)
	if err != nil {
		return nil, err
	}
	d, err := f.Counts.Bind(m)
	if err != nil {
		return nil, err
	}
	res := profile.Reoptimize(m, d, profile.DefaultReoptOptions())
	if err := core.Verify(m); err != nil {
		return nil, err
	}
	data, err := bytecode.Encode(m)
	if err != nil {
		return nil, err
	}
	if err := st.PutArtifact(modHash, spec, f.Epoch, data); err != nil {
		return nil, err
	}
	return &ReoptResult{
		ModHash:    modHash,
		Epoch:      f.Epoch,
		HotInlined: res.HotInlined,
		Reordered:  res.Reordered,
	}, nil
}

// nextReoptTarget returns the hottest stored profile whose current-epoch
// artifact is missing, or "" when the store is fully reoptimized.
func nextReoptTarget(st *Store, spec string) string {
	for _, info := range st.Profiles() {
		if info.Epoch == 0 {
			continue
		}
		if !st.HasArtifact(info.ModHash, spec, info.Epoch) {
			return info.ModHash
		}
	}
	return ""
}
