package lifelong

import "sync"

// flightGroup is a minimal in-repo single-flight: concurrent calls that
// share a key share one execution of fn and all receive its result. The
// daemon keys /compile by (module hash, pipeline spec, profile epoch), so
// a front-end fanning identical requests in — the common cluster pattern —
// costs one pipeline run instead of N. No external dependency: the whole
// mechanism is a map of in-flight calls and a WaitGroup per call.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg        sync.WaitGroup
	followers int
	trace     string // the leader's trace ID, for follower attribution
	res       *CompileResult
	err       error
}

// followersOf reports how many callers are currently waiting on key's
// in-flight call (0 when none is in flight). Test hook.
func (g *flightGroup) followersOf(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.followers
	}
	return 0
}

// Do executes fn once per concurrent set of callers sharing key. trace is
// this caller's trace ID; the leader's is remembered on the in-flight call
// and returned to every follower as leaderTrace, so a follower's access-log
// line and flight-recorder entry can name the request whose pipeline run it
// joined. shared is true for every follower, false for the leader. Results
// are shared by reference, so callers must treat them as immutable.
func (g *flightGroup) Do(key, trace string, fn func() (*CompileResult, error)) (res *CompileResult, leaderTrace string, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.followers++
		g.mu.Unlock()
		c.wg.Wait()
		return c.res, c.trace, true, c.err
	}
	c := &flightCall{trace: trace}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.res, "", false, c.err
}
