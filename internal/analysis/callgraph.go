package analysis

import (
	"sort"

	"repro/internal/core"
)

// CallGraph records which functions each function may call. Direct call
// and invoke sites produce precise edges; indirect call sites add an edge
// to every address-taken function with a compatible signature (a sound,
// conservative approximation), and calls to external declarations are
// flagged because their behaviour is unknown.
type CallGraph struct {
	M     *core.Module
	Nodes map[*core.Function]*CallGraphNode
}

// CallGraphNode is one function's entry in the call graph.
type CallGraphNode struct {
	Fn *core.Function
	// Callees are the functions this node may call directly or indirectly.
	Callees []*core.Function
	// Callers are the reverse edges.
	Callers []*core.Function
	// CallsExternal is set if the function calls a declaration (unknown
	// body) or makes an indirect call that may leave the module.
	CallsExternal bool
	// NumCallSites counts call/invoke instructions in the body.
	NumCallSites int
}

// NewCallGraph builds the call graph of a module.
func NewCallGraph(m *core.Module) *CallGraph {
	cg := &CallGraph{M: m, Nodes: map[*core.Function]*CallGraphNode{}}
	for _, f := range m.Funcs {
		cg.Nodes[f] = &CallGraphNode{Fn: f}
	}

	// Address-taken functions, grouped by signature string, for resolving
	// indirect calls.
	bySig := map[string][]*core.Function{}
	for f := range AddressTakenFunctions(m) {
		key := f.Sig.String()
		bySig[key] = append(bySig[key], f)
	}

	addEdge := func(from, to *core.Function) {
		fn := cg.Nodes[from]
		for _, c := range fn.Callees {
			if c == to {
				return
			}
		}
		fn.Callees = append(fn.Callees, to)
		cg.Nodes[to].Callers = append(cg.Nodes[to].Callers, from)
	}

	for _, f := range m.Funcs {
		node := cg.Nodes[f]
		f.ForEachInst(func(inst core.Instruction) bool {
			var callee core.Value
			switch c := inst.(type) {
			case *core.CallInst:
				callee = c.Callee()
			case *core.InvokeInst:
				callee = c.Callee()
			default:
				return true
			}
			node.NumCallSites++
			if target, ok := callee.(*core.Function); ok {
				if target.IsDeclaration() {
					node.CallsExternal = true
				}
				addEdge(f, target)
				return true
			}
			// Indirect call. When every value that can flow into the
			// callee pointer is a known function constant (e.g. a load
			// from a constant function-pointer table), the callee set is
			// fully resolved: precise edges, and the call provably cannot
			// leave the module.
			if targets, ok := ResolveCallees(callee); ok && len(targets) > 0 {
				for _, cand := range targets {
					if cand.IsDeclaration() {
						node.CallsExternal = true
					}
					addEdge(f, cand)
				}
				return true
			}
			// Unresolved: add edges to compatible address-taken functions;
			// the pointer may also have come from outside.
			ft := core.CalleeFunctionType(callee)
			if ft != nil {
				for _, cand := range bySig[ft.String()] {
					addEdge(f, cand)
				}
			}
			node.CallsExternal = true
			return true
		})
	}
	return cg
}

// PostOrder returns the functions in bottom-up (callee-before-caller)
// order, the order interprocedural analyses like DSA and the inliner
// process functions in. Cycles (recursion) are broken arbitrarily but
// deterministically.
func (cg *CallGraph) PostOrder() []*core.Function {
	var order []*core.Function
	state := map[*core.Function]int{} // 0 unvisited, 1 on stack, 2 done
	var visit func(f *core.Function)
	visit = func(f *core.Function) {
		state[f] = 1
		node := cg.Nodes[f]
		callees := append([]*core.Function(nil), node.Callees...)
		sort.Slice(callees, func(i, j int) bool { return callees[i].Name() < callees[j].Name() })
		for _, c := range callees {
			if state[c] == 0 {
				visit(c)
			}
		}
		state[f] = 2
		order = append(order, f)
	}
	funcs := append([]*core.Function(nil), cg.M.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name() < funcs[j].Name() })
	for _, f := range funcs {
		if state[f] == 0 {
			visit(f)
		}
	}
	return order
}

// MayUnwind computes, interprocedurally, which functions can unwind the
// stack: a function unwinds if it contains a reachable unwind instruction,
// or calls (outside an enclosing invoke for that callee... conservatively,
// anywhere) a function that may unwind, or calls external/unknown code.
// This powers the exception-handler pruning optimization (§4.1.2: "an
// interprocedural analysis to eliminate unused exception handlers").
func (cg *CallGraph) MayUnwind() map[*core.Function]bool {
	may := map[*core.Function]bool{}
	// Seed: functions containing unwind, and external declarations.
	for _, f := range cg.M.Funcs {
		if f.IsDeclaration() {
			may[f] = true
			continue
		}
		f.ForEachInst(func(inst core.Instruction) bool {
			if inst.Opcode() == core.OpUnwind {
				may[f] = true
				return false
			}
			return true
		})
	}
	// Propagate up the call graph to a fixed point. A call to a
	// may-unwind function makes the caller may-unwind, except that an
	// invoke catches the unwind (it transfers to the unwind label instead
	// of propagating), so invokes do not propagate the bit; the handler
	// block may then re-unwind, which the seed already captured.
	for changed := true; changed; {
		changed = false
		for _, f := range cg.M.Funcs {
			if may[f] || f.IsDeclaration() {
				continue
			}
			node := cg.Nodes[f]
			esc := node.CallsExternal
			if !esc {
				f.ForEachInst(func(inst core.Instruction) bool {
					if call, ok := inst.(*core.CallInst); ok {
						target := call.CalledFunction()
						if target == nil || may[target] {
							esc = true
							return false
						}
					}
					return true
				})
			}
			if esc {
				may[f] = true
				changed = true
			}
		}
	}
	return may
}

// AddressTakenFunctions returns the set of functions whose address escapes:
// used outside a direct call/invoke callee slot, or referenced from a
// global variable initializer (aggregate initializers do not participate
// in use lists, so they are scanned explicitly).
func AddressTakenFunctions(m *core.Module) map[*core.Function]bool {
	out := map[*core.Function]bool{}
	for _, f := range m.Funcs {
		if f.HasAddressTaken() {
			out[f] = true
		}
	}
	var scan func(c core.Constant)
	scan = func(c core.Constant) {
		switch cc := c.(type) {
		case *core.Function:
			out[cc] = true
		case *core.ConstantArray:
			for _, e := range cc.Elems {
				scan(e)
			}
		case *core.ConstantStruct:
			for _, f := range cc.Fields {
				scan(f)
			}
		case *core.ConstantExpr:
			for _, op := range cc.Operands() {
				if oc, ok := op.(core.Constant); ok {
					scan(oc)
				}
			}
		}
	}
	for _, g := range m.Globals {
		if g.Init != nil {
			scan(g.Init)
		}
	}
	return out
}
