package analysis

import (
	"repro/internal/core"
)

// ResolveCallees attempts to prove the complete set of functions an
// indirect call through the pointer value v can reach. It returns
// (targets, true) only when every value that can flow into v is a known
// function constant: direct function references, loads out of *constant*
// global function-pointer tables, phis over resolvable values, and
// pointer casts of resolvable values. Any other source — a mutable
// global, a pointer loaded from writable memory, an argument, an
// integer cast — makes the set unprovable and the result is (nil, false).
//
// The resolved set is what lets Mod/Ref treat an indirect call like a
// union of direct calls instead of the worst-case ModAny|RefAny cliff,
// and the checker join candidate callee summaries instead of assuming
// any address-taken function may run.
func ResolveCallees(v core.Value) ([]*core.Function, bool) {
	seen := map[core.Value]bool{}
	set := map[*core.Function]bool{}
	if !resolveInto(v, set, seen) {
		return nil, false
	}
	out := make([]*core.Function, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	// Deterministic order for everything downstream (summaries, remarks).
	sortFuncsByName(out)
	return out, true
}

func sortFuncsByName(fs []*core.Function) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Name() < fs[j-1].Name(); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// resolveInto adds every function v may evaluate to into set, returning
// false as soon as an unprovable source appears. The seen map breaks
// phi cycles: a value already being resolved contributes nothing new.
func resolveInto(v core.Value, set map[*core.Function]bool, seen map[core.Value]bool) bool {
	if seen[v] {
		return true
	}
	seen[v] = true
	switch x := v.(type) {
	case *core.Function:
		set[x] = true
		return true
	case *core.PhiInst:
		for k := 0; k < x.NumIncoming(); k++ {
			in, _ := x.Incoming(k)
			if !resolveInto(in, set, seen) {
				return false
			}
		}
		return true
	case *core.CastInst:
		if x.Val().Type().Kind() != core.PointerKind {
			return false // integer materialization: unknown provenance
		}
		return resolveInto(x.Val(), set, seen)
	case *core.ConstantExpr:
		if x.Op == core.OpCast && x.Operand(0).Type().Kind() == core.PointerKind {
			return resolveInto(x.Operand(0), set, seen)
		}
		return false
	case *core.LoadInst:
		return resolveLoadedTable(x.Ptr(), set)
	}
	return false
}

// resolveLoadedTable handles a function pointer loaded from memory: only a
// load out of a constant (read-only, fully initialized) global resolves.
// A constant-index GEP selects one table entry; a variable index means any
// entry may be selected, so all of them join the set.
func resolveLoadedTable(ptr core.Value, set map[*core.Function]bool) bool {
	// Peel one optional GEP to find the table and the element path.
	var indices []core.Value
	base := ptr
	switch p := ptr.(type) {
	case *core.GetElementPtrInst:
		base, indices = p.Base(), p.Indices()
	case *core.ConstantExpr:
		if p.Op == core.OpGetElementPtr {
			base = p.Operand(0)
			ops := p.Operands()
			indices = append([]core.Value{}, ops[1:]...)
		}
	}
	g, ok := base.(*core.GlobalVariable)
	if !ok || !g.IsConst || g.Init == nil {
		return false
	}
	// Walk the initializer along the GEP path. Index 0 steps through the
	// pointer itself; later indices select aggregate elements.
	cur := g.Init
	for k, idx := range indices {
		if k == 0 {
			ci, ok := idx.(*core.ConstantInt)
			if !ok || ci.SExt() != 0 {
				return false
			}
			continue
		}
		ci, isConst := idx.(*core.ConstantInt)
		switch agg := cur.(type) {
		case *core.ConstantArray:
			if !isConst {
				// Unknown element: every entry is a candidate.
				for _, e := range agg.Elems {
					if !constantFunc(e, set) {
						return false
					}
				}
				return true
			}
			i := int(ci.SExt())
			if i < 0 || i >= len(agg.Elems) {
				return false
			}
			cur = agg.Elems[i]
		case *core.ConstantStruct:
			if !isConst {
				return false
			}
			i := int(ci.SExt())
			if i < 0 || i >= len(agg.Fields) {
				return false
			}
			cur = agg.Fields[i]
		default:
			return false
		}
	}
	return constantFunc(cur, set)
}

// constantFunc adds a function-valued constant to set; casts of functions
// unwrap. Anything else (null slot, integer) is unresolvable.
func constantFunc(c core.Constant, set map[*core.Function]bool) bool {
	switch x := c.(type) {
	case *core.Function:
		set[x] = true
		return true
	case *core.ConstantExpr:
		if x.Op == core.OpCast {
			if inner, ok := x.Operand(0).(core.Constant); ok {
				return constantFunc(inner, set)
			}
		}
	}
	return false
}
