// Package analysis provides the CFG analyses the optimizer builds on:
// dominator trees and dominance frontiers (Cooper-Harvey-Kennedy), natural
// loop detection, reverse postorder, and call-graph construction. These are
// the "explicit CFG" facilities the paper credits for fast transformations
// (§2.1, §4.1.4).
package analysis

import (
	"repro/internal/core"
)

// DomTree is the dominator tree of a function. Unreachable blocks have no
// entry (Idom returns nil and Dominates returns false for them).
type DomTree struct {
	fn       *core.Function
	idom     map[*core.BasicBlock]*core.BasicBlock
	children map[*core.BasicBlock][]*core.BasicBlock
	// Pre/post numbering of the dominator tree for O(1) Dominates queries.
	pre, post map[*core.BasicBlock]int
	rpo       []*core.BasicBlock
}

// NewDomTree computes the dominator tree with the iterative
// Cooper-Harvey-Kennedy algorithm over reverse postorder.
func NewDomTree(f *core.Function) *DomTree {
	dt := &DomTree{
		fn:       f,
		idom:     map[*core.BasicBlock]*core.BasicBlock{},
		children: map[*core.BasicBlock][]*core.BasicBlock{},
		pre:      map[*core.BasicBlock]int{},
		post:     map[*core.BasicBlock]int{},
	}
	if len(f.Blocks) == 0 {
		return dt
	}
	entry := f.Entry()
	dt.rpo = ReversePostorder(f)
	num := map[*core.BasicBlock]int{}
	for i, b := range dt.rpo {
		num[b] = i
	}

	dt.idom[entry] = entry
	intersect := func(a, b *core.BasicBlock) *core.BasicBlock {
		for a != b {
			for num[a] > num[b] {
				a = dt.idom[a]
			}
			for num[b] > num[a] {
				b = dt.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range dt.rpo {
			if b == entry {
				continue
			}
			var newIdom *core.BasicBlock
			for _, p := range b.Preds() {
				if dt.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && dt.idom[b] != newIdom {
				dt.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Children lists and Euler numbering for Dominates queries.
	for _, b := range dt.rpo {
		if b == entry {
			continue
		}
		if id := dt.idom[b]; id != nil {
			dt.children[id] = append(dt.children[id], b)
		}
	}
	counter := 0
	var dfs func(b *core.BasicBlock)
	dfs = func(b *core.BasicBlock) {
		counter++
		dt.pre[b] = counter
		for _, c := range dt.children[b] {
			dfs(c)
		}
		counter++
		dt.post[b] = counter
	}
	dfs(entry)
	return dt
}

// Function returns the function the tree was built for.
func (dt *DomTree) Function() *core.Function { return dt.fn }

// Idom returns the immediate dominator of b (nil for the entry block and
// for unreachable blocks).
func (dt *DomTree) Idom(b *core.BasicBlock) *core.BasicBlock {
	id := dt.idom[b]
	if id == b {
		return nil
	}
	return id
}

// Reachable reports whether b is reachable from the entry block.
func (dt *DomTree) Reachable(b *core.BasicBlock) bool {
	_, ok := dt.idom[b]
	return ok
}

// Dominates reports whether a dominates b (every block dominates itself).
func (dt *DomTree) Dominates(a, b *core.BasicBlock) bool {
	pa, oka := dt.pre[a]
	pb, okb := dt.pre[b]
	if !oka || !okb {
		return false
	}
	return pa <= pb && dt.post[a] >= dt.post[b]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (dt *DomTree) StrictlyDominates(a, b *core.BasicBlock) bool {
	return a != b && dt.Dominates(a, b)
}

// Children returns the dominator-tree children of b.
func (dt *DomTree) Children(b *core.BasicBlock) []*core.BasicBlock { return dt.children[b] }

// RPO returns the reachable blocks in reverse postorder.
func (dt *DomTree) RPO() []*core.BasicBlock { return dt.rpo }

// DominatesValueUse reports whether the definition of v dominates the use
// (user, opIdx), handling phi uses (which must dominate the incoming edge's
// predecessor terminator) and non-instruction definitions (constants,
// arguments, globals dominate everything).
func (dt *DomTree) DominatesValueUse(v core.Value, user core.Instruction, opIdx int) bool {
	def, ok := v.(core.Instruction)
	if !ok {
		return true
	}
	db := def.Parent()
	if phi, isPhi := user.(*core.PhiInst); isPhi {
		// Operand layout: value at even index, block at odd.
		pred, okBlk := phi.Operand(opIdx + 1).(*core.BasicBlock)
		if !okBlk {
			return false
		}
		return dt.Dominates(db, pred)
	}
	ub := user.Parent()
	if db == ub {
		return db.IndexOf(def) < ub.IndexOf(user)
	}
	return dt.Dominates(db, ub)
}

// DomFrontier maps each block to its dominance frontier, the set used for
// φ placement in SSA construction (Cytron et al.).
type DomFrontier map[*core.BasicBlock][]*core.BasicBlock

// NewDomFrontier computes dominance frontiers from the dominator tree.
func NewDomFrontier(dt *DomTree) DomFrontier {
	df := DomFrontier{}
	for _, b := range dt.rpo {
		preds := b.Preds()
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			if !dt.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != dt.idom[b] {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				if dt.idom[runner] == runner {
					break // entry
				}
				runner = dt.idom[runner]
			}
		}
	}
	return df
}

func containsBlock(s []*core.BasicBlock, b *core.BasicBlock) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder (a topological order ignoring back edges).
func ReversePostorder(f *core.Function) []*core.BasicBlock {
	if len(f.Blocks) == 0 {
		return nil
	}
	var post []*core.BasicBlock
	seen := map[*core.BasicBlock]bool{}
	var dfs func(b *core.BasicBlock)
	dfs = func(b *core.BasicBlock) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// ReachableBlocks returns the set of blocks reachable from entry.
func ReachableBlocks(f *core.Function) map[*core.BasicBlock]bool {
	out := map[*core.BasicBlock]bool{}
	for _, b := range ReversePostorder(f) {
		out[b] = true
	}
	return out
}
