package analysis

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Preserved is a bitmask naming the analyses a pass keeps valid on IR it
// changed. It is the contract side of LLVM's AnalysisUsage: a pass declares
// what survives its edits, and the Manager drops only the rest. Analyses of
// functions a pass did not change are always kept.
type Preserved uint32

// One bit per cached analysis.
const (
	PreserveDomTree Preserved = 1 << iota
	PreserveDomFrontier
	PreserveLoopInfo
	PreserveCallGraph
	PreserveModRef
)

// Composite masks. A pass that only rewrites instructions inside blocks
// (never edits edges, calls, or the function list) preserves everything; a
// pass that restructures control flow preserves nothing per-function but may
// still keep the module-level call graph.
//
// Extension analyses registered with NewModuleKey take bits above the
// built-in ones and are deliberately NOT part of PreserveAll: a pass that
// claims "preserves all" still invalidates extension analyses it has never
// heard of, which is the conservative direction.
const (
	PreserveNone           Preserved = 0
	PreserveCFG                      = PreserveDomTree | PreserveDomFrontier | PreserveLoopInfo
	PreserveModuleAnalyses           = PreserveCallGraph | PreserveModRef
	PreserveAll                      = PreserveCFG | PreserveModuleAnalyses
)

// numBuiltinPreserved is the count of built-in Preserved bits above.
const numBuiltinPreserved = 5

// ModuleKey identifies an extension module-level analysis cached by the
// Manager on behalf of a package outside internal/analysis (the static
// checker's interprocedural summaries, DSA results, ...). Each key owns one
// Preserved bit, so a pass that keeps the analysis valid can declare it in
// Preserves() by OR-ing in key.Mask(); every other pass invalidates it.
type ModuleKey struct {
	name string
	mask Preserved
}

var (
	extBitMu   sync.Mutex
	nextExtBit = numBuiltinPreserved
)

// NewModuleKey registers a new extension analysis and allocates its
// Preserved bit. Keys are created once per analysis at package init; the 32
// bits of Preserved bound the total number of analyses.
func NewModuleKey(name string) *ModuleKey {
	extBitMu.Lock()
	defer extBitMu.Unlock()
	if nextExtBit >= 32 {
		panic("analysis.NewModuleKey: out of Preserved bits")
	}
	k := &ModuleKey{name: name, mask: 1 << uint(nextExtBit)}
	nextExtBit++
	return k
}

// Name returns the analysis name the key was registered with.
func (k *ModuleKey) Name() string { return k.name }

// Mask returns the key's Preserved bit for use in Preserves() claims.
func (k *ModuleKey) Mask() Preserved { return k.mask }

// Stats is a snapshot of the manager's cache counters.
type Stats struct {
	Hits          uint64 // analysis requests served from cache
	Misses        uint64 // requests that computed the analysis
	Invalidations uint64 // cached analyses dropped by invalidation
}

// funcEntry caches the per-function analyses. Its mutex serializes compute
// for one function while letting different functions compute concurrently;
// the parallel pass scheduler gives each function to exactly one worker, so
// the per-entry lock is uncontended in practice.
type funcEntry struct {
	mu sync.Mutex
	dt *DomTree
	df DomFrontier
	li *LoopInfo
}

// Manager caches analyses across passes: DomTree/DomFrontier/LoopInfo per
// function, CallGraph/ModRef per module. Passes fetch analyses through it
// instead of constructing them; the pass manager invalidates a function's
// entries only when a pass reports changes on that function and does not
// declare the analysis preserved.
//
// All methods are safe for concurrent use, and all are safe on a nil
// *Manager: a nil manager computes every analysis fresh and caches nothing,
// which is how passes behave when called directly (outside a PassManager)
// or when caching is disabled for ablation.
type Manager struct {
	mu    sync.Mutex
	funcs map[*core.Function]*funcEntry

	cgModule *core.Module
	cg       *CallGraph
	mrModule *core.Module
	modref   map[*core.Function]*ModRefInfo
	ext      map[*ModuleKey]*extEntry

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// NewManager returns an empty analysis cache.
func NewManager() *Manager {
	return &Manager{funcs: map[*core.Function]*funcEntry{}}
}

// Stats returns a snapshot of the cache counters.
func (am *Manager) Stats() Stats {
	if am == nil {
		return Stats{}
	}
	return Stats{
		Hits:          am.hits.Load(),
		Misses:        am.misses.Load(),
		Invalidations: am.invalidations.Load(),
	}
}

// extEntry caches one extension analysis's result. Like funcEntry, its
// mutex serializes compute per key while letting different analyses (and
// the built-in ones) proceed concurrently.
type extEntry struct {
	mu  sync.Mutex
	mod *core.Module
	val interface{}
}

// ModuleExt returns the cached result of the extension analysis key for m,
// calling compute on a miss (or on a cached result for a different module —
// the pass manager runs isolated passes against scratch clones). On a nil
// manager it computes fresh and caches nothing.
func (am *Manager) ModuleExt(key *ModuleKey, m *core.Module, compute func(*core.Module) interface{}) interface{} {
	if am == nil {
		return compute(m)
	}
	am.mu.Lock()
	if am.ext == nil {
		am.ext = map[*ModuleKey]*extEntry{}
	}
	e := am.ext[key]
	if e == nil {
		e = &extEntry{}
		am.ext[key] = e
	}
	am.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.val != nil && e.mod == m {
		am.hits.Add(1)
		return e.val
	}
	am.misses.Add(1)
	e.val = compute(m)
	e.mod = m
	return e.val
}

// entry returns (creating if needed) the cache slot for f.
func (am *Manager) entry(f *core.Function) *funcEntry {
	am.mu.Lock()
	e := am.funcs[f]
	if e == nil {
		e = &funcEntry{}
		am.funcs[f] = e
	}
	am.mu.Unlock()
	return e
}

// DomTree returns f's dominator tree, computing and caching it on a miss.
func (am *Manager) DomTree(f *core.Function) *DomTree {
	if am == nil {
		return NewDomTree(f)
	}
	e := am.entry(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	return am.domTreeLocked(e, f)
}

// domTreeLocked fills e.dt under e.mu, counting the hit or miss.
func (am *Manager) domTreeLocked(e *funcEntry, f *core.Function) *DomTree {
	if e.dt != nil {
		am.hits.Add(1)
		return e.dt
	}
	am.misses.Add(1)
	e.dt = NewDomTree(f)
	return e.dt
}

// DomFrontier returns f's dominance frontier, computing the dominator tree
// first if it is not cached either.
func (am *Manager) DomFrontier(f *core.Function) DomFrontier {
	if am == nil {
		return NewDomFrontier(NewDomTree(f))
	}
	e := am.entry(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.df != nil {
		am.hits.Add(1)
		return e.df
	}
	am.misses.Add(1)
	e.df = NewDomFrontier(am.domTreeLocked(e, f))
	return e.df
}

// LoopInfo returns f's natural-loop nest, computing the dominator tree first
// if it is not cached either.
func (am *Manager) LoopInfo(f *core.Function) *LoopInfo {
	if am == nil {
		return NewLoopInfo(f, NewDomTree(f))
	}
	e := am.entry(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.li != nil {
		am.hits.Add(1)
		return e.li
	}
	am.misses.Add(1)
	e.li = NewLoopInfo(f, am.domTreeLocked(e, f))
	return e.li
}

// CallGraph returns m's call graph, computing and caching it on a miss.
// A cached graph for a different module is replaced (the pass manager runs
// isolated passes against scratch clones).
func (am *Manager) CallGraph(m *core.Module) *CallGraph {
	if am == nil {
		return NewCallGraph(m)
	}
	am.mu.Lock()
	defer am.mu.Unlock()
	if am.cg != nil && am.cgModule == m {
		am.hits.Add(1)
		return am.cg
	}
	am.misses.Add(1)
	am.cg = NewCallGraph(m)
	am.cgModule = m
	return am.cg
}

// ModRef returns m's interprocedural mod/ref summaries, reusing the cached
// call graph when valid.
func (am *Manager) ModRef(m *core.Module) map[*core.Function]*ModRefInfo {
	if am == nil {
		return ModRef(m, NewCallGraph(m))
	}
	am.mu.Lock()
	if am.modref != nil && am.mrModule == m {
		am.hits.Add(1)
		mr := am.modref
		am.mu.Unlock()
		return mr
	}
	am.mu.Unlock()
	cg := am.CallGraph(m)
	mr := ModRef(m, cg)
	am.mu.Lock()
	am.misses.Add(1)
	am.modref = mr
	am.mrModule = m
	am.mu.Unlock()
	return mr
}

// InvalidateFunction drops f's cached analyses that preserved does not
// cover. DomFrontier and LoopInfo are derived from DomTree, so dropping the
// tree drops them too regardless of their own bits.
func (am *Manager) InvalidateFunction(f *core.Function, preserved Preserved) {
	if am == nil {
		return
	}
	am.mu.Lock()
	e := am.funcs[f]
	am.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	am.invalidateEntryLocked(e, preserved)
	e.mu.Unlock()
}

func (am *Manager) invalidateEntryLocked(e *funcEntry, preserved Preserved) {
	keepDT := preserved&PreserveDomTree != 0
	if !keepDT && e.dt != nil {
		e.dt = nil
		am.invalidations.Add(1)
	}
	if (!keepDT || preserved&PreserveDomFrontier == 0) && e.df != nil {
		e.df = nil
		am.invalidations.Add(1)
	}
	if (!keepDT || preserved&PreserveLoopInfo == 0) && e.li != nil {
		e.li = nil
		am.invalidations.Add(1)
	}
}

// InvalidateModule applies preserved to the module-level analyses and to
// every cached function entry. ModRef is derived from the call graph, so
// dropping the graph drops it too.
func (am *Manager) InvalidateModule(preserved Preserved) {
	if am == nil {
		return
	}
	am.mu.Lock()
	keepCG := preserved&PreserveCallGraph != 0
	if !keepCG && am.cg != nil {
		am.cg = nil
		am.cgModule = nil
		am.invalidations.Add(1)
	}
	if (!keepCG || preserved&PreserveModRef == 0) && am.modref != nil {
		am.modref = nil
		am.mrModule = nil
		am.invalidations.Add(1)
	}
	entries := make([]*funcEntry, 0, len(am.funcs))
	if preserved&PreserveCFG != PreserveCFG {
		for _, e := range am.funcs {
			entries = append(entries, e)
		}
	}
	var exts []*extEntry
	for key, e := range am.ext {
		if preserved&key.mask == 0 {
			exts = append(exts, e)
		}
	}
	am.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		am.invalidateEntryLocked(e, preserved)
		e.mu.Unlock()
	}
	for _, e := range exts {
		e.mu.Lock()
		if e.val != nil {
			e.val = nil
			e.mod = nil
			am.invalidations.Add(1)
		}
		e.mu.Unlock()
	}
}

// Prune drops cache entries for functions that no longer belong to m:
// functions deleted by IPO, or originals replaced when the pass manager
// commits a scratch clone (whose functions, now adopted into m, keep their
// entries). Module-level analyses computed for a module other than m are
// dropped too.
func (am *Manager) Prune(m *core.Module) {
	if am == nil {
		return
	}
	am.mu.Lock()
	for f := range am.funcs {
		if f.Parent() != m {
			delete(am.funcs, f)
			am.invalidations.Add(1)
		}
	}
	if am.cg != nil && am.cgModule != m {
		am.cg = nil
		am.cgModule = nil
		am.invalidations.Add(1)
	}
	if am.modref != nil && am.mrModule != m {
		am.modref = nil
		am.mrModule = nil
		am.invalidations.Add(1)
	}
	var exts []*extEntry
	for _, e := range am.ext {
		exts = append(exts, e)
	}
	am.mu.Unlock()
	for _, e := range exts {
		e.mu.Lock()
		if e.val != nil && e.mod != m {
			e.val = nil
			e.mod = nil
			am.invalidations.Add(1)
		}
		e.mu.Unlock()
	}
}
