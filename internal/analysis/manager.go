package analysis

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Preserved is a bitmask naming the analyses a pass keeps valid on IR it
// changed. It is the contract side of LLVM's AnalysisUsage: a pass declares
// what survives its edits, and the Manager drops only the rest. Analyses of
// functions a pass did not change are always kept.
type Preserved uint32

// One bit per cached analysis.
const (
	PreserveDomTree Preserved = 1 << iota
	PreserveDomFrontier
	PreserveLoopInfo
	PreserveCallGraph
	PreserveModRef
)

// Composite masks. A pass that only rewrites instructions inside blocks
// (never edits edges, calls, or the function list) preserves everything; a
// pass that restructures control flow preserves nothing per-function but may
// still keep the module-level call graph.
const (
	PreserveNone           Preserved = 0
	PreserveCFG                      = PreserveDomTree | PreserveDomFrontier | PreserveLoopInfo
	PreserveModuleAnalyses           = PreserveCallGraph | PreserveModRef
	PreserveAll                      = PreserveCFG | PreserveModuleAnalyses
)

// Stats is a snapshot of the manager's cache counters.
type Stats struct {
	Hits          uint64 // analysis requests served from cache
	Misses        uint64 // requests that computed the analysis
	Invalidations uint64 // cached analyses dropped by invalidation
}

// funcEntry caches the per-function analyses. Its mutex serializes compute
// for one function while letting different functions compute concurrently;
// the parallel pass scheduler gives each function to exactly one worker, so
// the per-entry lock is uncontended in practice.
type funcEntry struct {
	mu sync.Mutex
	dt *DomTree
	df DomFrontier
	li *LoopInfo
}

// Manager caches analyses across passes: DomTree/DomFrontier/LoopInfo per
// function, CallGraph/ModRef per module. Passes fetch analyses through it
// instead of constructing them; the pass manager invalidates a function's
// entries only when a pass reports changes on that function and does not
// declare the analysis preserved.
//
// All methods are safe for concurrent use, and all are safe on a nil
// *Manager: a nil manager computes every analysis fresh and caches nothing,
// which is how passes behave when called directly (outside a PassManager)
// or when caching is disabled for ablation.
type Manager struct {
	mu    sync.Mutex
	funcs map[*core.Function]*funcEntry

	cgModule *core.Module
	cg       *CallGraph
	mrModule *core.Module
	modref   map[*core.Function]*ModRefInfo

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// NewManager returns an empty analysis cache.
func NewManager() *Manager {
	return &Manager{funcs: map[*core.Function]*funcEntry{}}
}

// Stats returns a snapshot of the cache counters.
func (am *Manager) Stats() Stats {
	if am == nil {
		return Stats{}
	}
	return Stats{
		Hits:          am.hits.Load(),
		Misses:        am.misses.Load(),
		Invalidations: am.invalidations.Load(),
	}
}

// entry returns (creating if needed) the cache slot for f.
func (am *Manager) entry(f *core.Function) *funcEntry {
	am.mu.Lock()
	e := am.funcs[f]
	if e == nil {
		e = &funcEntry{}
		am.funcs[f] = e
	}
	am.mu.Unlock()
	return e
}

// DomTree returns f's dominator tree, computing and caching it on a miss.
func (am *Manager) DomTree(f *core.Function) *DomTree {
	if am == nil {
		return NewDomTree(f)
	}
	e := am.entry(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	return am.domTreeLocked(e, f)
}

// domTreeLocked fills e.dt under e.mu, counting the hit or miss.
func (am *Manager) domTreeLocked(e *funcEntry, f *core.Function) *DomTree {
	if e.dt != nil {
		am.hits.Add(1)
		return e.dt
	}
	am.misses.Add(1)
	e.dt = NewDomTree(f)
	return e.dt
}

// DomFrontier returns f's dominance frontier, computing the dominator tree
// first if it is not cached either.
func (am *Manager) DomFrontier(f *core.Function) DomFrontier {
	if am == nil {
		return NewDomFrontier(NewDomTree(f))
	}
	e := am.entry(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.df != nil {
		am.hits.Add(1)
		return e.df
	}
	am.misses.Add(1)
	e.df = NewDomFrontier(am.domTreeLocked(e, f))
	return e.df
}

// LoopInfo returns f's natural-loop nest, computing the dominator tree first
// if it is not cached either.
func (am *Manager) LoopInfo(f *core.Function) *LoopInfo {
	if am == nil {
		return NewLoopInfo(f, NewDomTree(f))
	}
	e := am.entry(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.li != nil {
		am.hits.Add(1)
		return e.li
	}
	am.misses.Add(1)
	e.li = NewLoopInfo(f, am.domTreeLocked(e, f))
	return e.li
}

// CallGraph returns m's call graph, computing and caching it on a miss.
// A cached graph for a different module is replaced (the pass manager runs
// isolated passes against scratch clones).
func (am *Manager) CallGraph(m *core.Module) *CallGraph {
	if am == nil {
		return NewCallGraph(m)
	}
	am.mu.Lock()
	defer am.mu.Unlock()
	if am.cg != nil && am.cgModule == m {
		am.hits.Add(1)
		return am.cg
	}
	am.misses.Add(1)
	am.cg = NewCallGraph(m)
	am.cgModule = m
	return am.cg
}

// ModRef returns m's interprocedural mod/ref summaries, reusing the cached
// call graph when valid.
func (am *Manager) ModRef(m *core.Module) map[*core.Function]*ModRefInfo {
	if am == nil {
		return ModRef(m, NewCallGraph(m))
	}
	am.mu.Lock()
	if am.modref != nil && am.mrModule == m {
		am.hits.Add(1)
		mr := am.modref
		am.mu.Unlock()
		return mr
	}
	am.mu.Unlock()
	cg := am.CallGraph(m)
	mr := ModRef(m, cg)
	am.mu.Lock()
	am.misses.Add(1)
	am.modref = mr
	am.mrModule = m
	am.mu.Unlock()
	return mr
}

// InvalidateFunction drops f's cached analyses that preserved does not
// cover. DomFrontier and LoopInfo are derived from DomTree, so dropping the
// tree drops them too regardless of their own bits.
func (am *Manager) InvalidateFunction(f *core.Function, preserved Preserved) {
	if am == nil {
		return
	}
	am.mu.Lock()
	e := am.funcs[f]
	am.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	am.invalidateEntryLocked(e, preserved)
	e.mu.Unlock()
}

func (am *Manager) invalidateEntryLocked(e *funcEntry, preserved Preserved) {
	keepDT := preserved&PreserveDomTree != 0
	if !keepDT && e.dt != nil {
		e.dt = nil
		am.invalidations.Add(1)
	}
	if (!keepDT || preserved&PreserveDomFrontier == 0) && e.df != nil {
		e.df = nil
		am.invalidations.Add(1)
	}
	if (!keepDT || preserved&PreserveLoopInfo == 0) && e.li != nil {
		e.li = nil
		am.invalidations.Add(1)
	}
}

// InvalidateModule applies preserved to the module-level analyses and to
// every cached function entry. ModRef is derived from the call graph, so
// dropping the graph drops it too.
func (am *Manager) InvalidateModule(preserved Preserved) {
	if am == nil {
		return
	}
	am.mu.Lock()
	keepCG := preserved&PreserveCallGraph != 0
	if !keepCG && am.cg != nil {
		am.cg = nil
		am.cgModule = nil
		am.invalidations.Add(1)
	}
	if (!keepCG || preserved&PreserveModRef == 0) && am.modref != nil {
		am.modref = nil
		am.mrModule = nil
		am.invalidations.Add(1)
	}
	entries := make([]*funcEntry, 0, len(am.funcs))
	if preserved&PreserveCFG != PreserveCFG {
		for _, e := range am.funcs {
			entries = append(entries, e)
		}
	}
	am.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		am.invalidateEntryLocked(e, preserved)
		e.mu.Unlock()
	}
}

// Prune drops cache entries for functions that no longer belong to m:
// functions deleted by IPO, or originals replaced when the pass manager
// commits a scratch clone (whose functions, now adopted into m, keep their
// entries). Module-level analyses computed for a module other than m are
// dropped too.
func (am *Manager) Prune(m *core.Module) {
	if am == nil {
		return
	}
	am.mu.Lock()
	for f := range am.funcs {
		if f.Parent() != m {
			delete(am.funcs, f)
			am.invalidations.Add(1)
		}
	}
	if am.cg != nil && am.cgModule != m {
		am.cg = nil
		am.cgModule = nil
		am.invalidations.Add(1)
	}
	if am.modref != nil && am.mrModule != m {
		am.modref = nil
		am.mrModule = nil
		am.invalidations.Add(1)
	}
	am.mu.Unlock()
}
