package analysis

import (
	"repro/internal/core"
)

// ModRefInfo summarizes which memory a function may read or write — the
// Mod/Ref analysis the paper lists among LLVM's link-time interprocedural
// analyses (§3.3). Globals are tracked individually, writes and reads
// through pointer arguments are tracked per argument, and only memory the
// summary cannot name at all (pointers loaded out of memory, unresolved
// indirect callees, external code) collapses into the ModAny/RefAny bits.
type ModRefInfo struct {
	// Mod and Ref are the global variables the function (transitively)
	// may write / read.
	Mod map[*core.GlobalVariable]bool
	Ref map[*core.GlobalVariable]bool
	// ArgMod/ArgRef report, per pointer argument, whether the function
	// (transitively) may write/read memory addressed *directly* by that
	// argument (through gep/cast chains). Writes through pointers loaded
	// out of the argument's object are not argument effects; they fold
	// into ModAny/RefAny.
	ArgMod []bool
	ArgRef []bool
	// ModAny/RefAny: the function may write/read memory we cannot name
	// (pointers from memory, heap objects that escaped, external
	// callees, unresolved indirect calls).
	ModAny bool
	RefAny bool
}

// Writes reports whether the function may modify g.
func (i *ModRefInfo) Writes(g *core.GlobalVariable) bool { return i.ModAny || i.Mod[g] }

// Reads reports whether the function may read g.
func (i *ModRefInfo) Reads(g *core.GlobalVariable) bool { return i.RefAny || i.Ref[g] }

// WritesArg reports whether the function may write through argument k.
func (i *ModRefInfo) WritesArg(k int) bool {
	return i.ModAny || (k < len(i.ArgMod) && i.ArgMod[k])
}

// ReadsArg reports whether the function may read through argument k.
func (i *ModRefInfo) ReadsArg(k int) bool {
	return i.RefAny || (k < len(i.ArgRef) && i.ArgRef[k])
}

// Pure reports whether the function provably has no memory effects at all.
func (i *ModRefInfo) Pure() bool {
	if i.ModAny || i.RefAny || len(i.Mod) > 0 || len(i.Ref) > 0 {
		return false
	}
	for k := range i.ArgMod {
		if i.ArgMod[k] || i.ArgRef[k] {
			return false
		}
	}
	return true
}

// BaseKind classifies what a pointer provably addresses.
type BaseKind uint8

const (
	// BaseUnknown: the chain passed through a load, a call result, an
	// integer cast, or another untraceable producer.
	BaseUnknown BaseKind = iota
	// BaseGlobal: a specific global variable (returned as base).
	BaseGlobal
	// BaseFrame: an alloca in the current function.
	BaseFrame
	// BaseHeap: a malloc instruction in the current function — memory
	// that did not exist before the function was entered.
	BaseHeap
	// BaseArg: a pointer argument of the current function (returned as
	// base).
	BaseArg
)

// PointerBase walks gep/cast chains to the object a pointer provably
// addresses. Loads break the chain: a pointer fetched from memory has
// unknown base.
func PointerBase(p core.Value) (core.Value, BaseKind) {
	for {
		switch v := p.(type) {
		case *core.GlobalVariable:
			return v, BaseGlobal
		case *core.AllocaInst:
			return v, BaseFrame
		case *core.MallocInst:
			return v, BaseHeap
		case *core.Argument:
			return v, BaseArg
		case *core.GetElementPtrInst:
			p = v.Base()
		case *core.CastInst:
			if v.Val().Type().Kind() != core.PointerKind {
				return nil, BaseUnknown
			}
			p = v.Val()
		case *core.ConstantExpr:
			if v.Op == core.OpGetElementPtr || v.Op == core.OpCast {
				op := v.Operand(0)
				if op.Type().Kind() != core.PointerKind {
					return nil, BaseUnknown
				}
				p = op
				continue
			}
			return nil, BaseUnknown
		default:
			return nil, BaseUnknown
		}
	}
}

// modRefCallSite is one call whose callee set is known: a direct call, or
// an indirect call ResolveCallees fully resolved. Argument effects of the
// callees bind through the actuals during the fixpoint.
type modRefCallSite struct {
	targets []*core.Function
	args    []core.Value
}

// ModRef computes Mod/Ref summaries for every function, bottom-up over the
// call graph to a fixed point.
func ModRef(m *core.Module, cg *CallGraph) map[*core.Function]*ModRefInfo {
	info := map[*core.Function]*ModRefInfo{}
	for _, f := range m.Funcs {
		mi := &ModRefInfo{
			Mod:    map[*core.GlobalVariable]bool{},
			Ref:    map[*core.GlobalVariable]bool{},
			ArgMod: make([]bool, len(f.Args)),
			ArgRef: make([]bool, len(f.Args)),
		}
		if f.IsDeclaration() {
			mi.ModAny, mi.RefAny = true, true
			for k := range mi.ArgMod {
				mi.ArgMod[k], mi.ArgRef[k] = true, true
			}
		}
		info[f] = mi
	}

	// Local effects, and the call sites the fixpoint will propagate
	// through. Address-taken functions may additionally be called from
	// outside any site we see, but that affects callers, not summaries.
	sites := map[*core.Function][]modRefCallSite{}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		mi := info[f]
		recordAccess := func(p core.Value, write bool) {
			base, kind := PointerBase(p)
			switch kind {
			case BaseGlobal:
				if write {
					mi.Mod[base.(*core.GlobalVariable)] = true
				} else {
					mi.Ref[base.(*core.GlobalVariable)] = true
				}
			case BaseFrame, BaseHeap:
				// Invisible to callers: the frame dies with the call and
				// heap allocated here did not exist before it.
			case BaseArg:
				k := base.(*core.Argument).Index()
				if write {
					mi.ArgMod[k] = true
				} else {
					mi.ArgRef[k] = true
				}
			default:
				if write {
					mi.ModAny = true
				} else {
					mi.RefAny = true
				}
			}
		}
		addCall := func(callee core.Value, args []core.Value) {
			if target, ok := callee.(*core.Function); ok {
				sites[f] = append(sites[f], modRefCallSite{targets: []*core.Function{target}, args: args})
				return
			}
			if targets, ok := ResolveCallees(callee); ok && len(targets) > 0 {
				sites[f] = append(sites[f], modRefCallSite{targets: targets, args: args})
				return
			}
			mi.ModAny, mi.RefAny = true, true
		}
		f.ForEachInst(func(inst core.Instruction) bool {
			switch i := inst.(type) {
			case *core.LoadInst:
				recordAccess(i.Ptr(), false)
			case *core.StoreInst:
				recordAccess(i.Ptr(), true)
			case *core.FreeInst:
				// Deallocation modifies the pointed-to memory.
				recordAccess(i.Ptr(), true)
			case *core.CallInst:
				addCall(i.Callee(), i.Args())
			case *core.InvokeInst:
				addCall(i.Callee(), i.Args())
			}
			return true
		})
	}

	// Transitive closure: callee effects flow to callers, with per-arg
	// effects rebound through the call site's actual arguments.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			mi := info[f]
			for _, cs := range sites[f] {
				for _, callee := range cs.targets {
					ci := info[callee]
					if ci == nil {
						// Callee resolved into a function outside m
						// (possible after partial links): unknown body.
						if !mi.ModAny || !mi.RefAny {
							mi.ModAny, mi.RefAny = true, true
							changed = true
						}
						continue
					}
					if applyCallee(mi, ci, cs.args) {
						changed = true
					}
				}
			}
		}
	}
	return info
}

// applyCallee folds one callee summary into the caller's at a call site,
// returning whether the caller summary grew.
func applyCallee(mi, ci *ModRefInfo, args []core.Value) bool {
	changed := false
	set := func(b *bool) {
		if !*b {
			*b = true
			changed = true
		}
	}
	if ci.ModAny && !mi.ModAny {
		set(&mi.ModAny)
	}
	if ci.RefAny && !mi.RefAny {
		set(&mi.RefAny)
	}
	for g := range ci.Mod {
		if !mi.Mod[g] {
			mi.Mod[g] = true
			changed = true
		}
	}
	for g := range ci.Ref {
		if !mi.Ref[g] {
			mi.Ref[g] = true
			changed = true
		}
	}
	// Rebind per-argument effects through the actuals. Actuals beyond the
	// formal list (variadic extras) have no ArgMod slot; treat a pointer
	// extra as both read and written.
	bind := func(a core.Value, write bool) {
		if a.Type().Kind() != core.PointerKind {
			return
		}
		base, kind := PointerBase(a)
		switch kind {
		case BaseGlobal:
			g := base.(*core.GlobalVariable)
			if write {
				if !mi.Mod[g] {
					mi.Mod[g] = true
					changed = true
				}
			} else if !mi.Ref[g] {
				mi.Ref[g] = true
				changed = true
			}
		case BaseFrame, BaseHeap:
			// The callee writes this function's frame or fresh heap:
			// invisible to this function's callers.
		case BaseArg:
			k := base.(*core.Argument).Index()
			if write {
				set(&mi.ArgMod[k])
			} else {
				set(&mi.ArgRef[k])
			}
		default:
			if write {
				set(&mi.ModAny)
			} else {
				set(&mi.RefAny)
			}
		}
	}
	for k, a := range args {
		if k < len(ci.ArgMod) {
			if ci.ArgMod[k] {
				bind(a, true)
			}
			if ci.ArgRef[k] {
				bind(a, false)
			}
		} else {
			bind(a, true)
			bind(a, false)
		}
	}
	return changed
}

// CallTargets returns the provable callee set of a call instruction's
// callee operand: the single function for a direct call, the resolved set
// for a provable indirect call, and (nil, false) otherwise.
func CallTargets(callee core.Value) ([]*core.Function, bool) {
	if f, ok := callee.(*core.Function); ok {
		return []*core.Function{f}, true
	}
	return ResolveCallees(callee)
}

// CallWritesGlobal reports whether a call with the given callee summary and
// actual arguments may modify g: named directly in the callee's Mod set,
// anything via ModAny, or through a pointer argument that may address g.
func CallWritesGlobal(ci *ModRefInfo, args []core.Value, g *core.GlobalVariable) bool {
	if ci == nil || ci.ModAny || ci.Mod[g] {
		return true
	}
	for k, a := range args {
		if a.Type().Kind() != core.PointerKind {
			continue
		}
		argMod := k >= len(ci.ArgMod) || ci.ArgMod[k]
		if !argMod {
			continue
		}
		base, kind := PointerBase(a)
		switch kind {
		case BaseGlobal:
			if base == g {
				return true
			}
			// A distinct global's storage never overlaps g's.
		case BaseFrame, BaseHeap:
			// Frame and fresh heap memory are disjoint from every global.
		default:
			return true // could be g
		}
	}
	return false
}

// TraceToGlobal walks GEP/cast chains back to the base object. It returns
// (global, true) when the pointer provably addresses that global, and
// (nil, false) otherwise. The second result is false also when the base is
// a local alloca (check PointsToLocalFrame for that case).
func TraceToGlobal(p core.Value) (*core.GlobalVariable, bool) {
	if base, kind := PointerBase(p); kind == BaseGlobal {
		return base.(*core.GlobalVariable), true
	}
	return nil, false
}

// PointsToLocalFrame reports whether the pointer provably addresses the
// current frame (an alloca that never escapes tracing through GEPs/casts);
// such accesses are invisible to callers and excluded from Mod/Ref.
func PointsToLocalFrame(p core.Value) bool {
	_, kind := PointerBase(p)
	return kind == BaseFrame
}
