package analysis

import (
	"repro/internal/core"
)

// ModRefInfo summarizes which memory a function may read or write — the
// Mod/Ref analysis the paper lists among LLVM's link-time interprocedural
// analyses (§3.3). Globals are tracked individually; everything else
// (pointer arguments, heap objects, unknown code) collapses into the
// ModAny/RefAny bits.
type ModRefInfo struct {
	// Mod and Ref are the global variables the function (transitively)
	// may write / read.
	Mod map[*core.GlobalVariable]bool
	Ref map[*core.GlobalVariable]bool
	// ModAny/RefAny: the function may write/read memory we cannot name
	// (through pointer arguments, heap pointers, external callees,
	// indirect calls).
	ModAny bool
	RefAny bool
}

// Writes reports whether the function may modify g.
func (i *ModRefInfo) Writes(g *core.GlobalVariable) bool { return i.ModAny || i.Mod[g] }

// Reads reports whether the function may read g.
func (i *ModRefInfo) Reads(g *core.GlobalVariable) bool { return i.RefAny || i.Ref[g] }

// Pure reports whether the function provably has no memory effects at all.
func (i *ModRefInfo) Pure() bool {
	return !i.ModAny && !i.RefAny && len(i.Mod) == 0 && len(i.Ref) == 0
}

// ModRef computes Mod/Ref summaries for every function, bottom-up over the
// call graph to a fixed point.
func ModRef(m *core.Module, cg *CallGraph) map[*core.Function]*ModRefInfo {
	info := map[*core.Function]*ModRefInfo{}
	for _, f := range m.Funcs {
		mi := &ModRefInfo{Mod: map[*core.GlobalVariable]bool{}, Ref: map[*core.GlobalVariable]bool{}}
		if f.IsDeclaration() {
			mi.ModAny, mi.RefAny = true, true
		}
		info[f] = mi
	}

	// Local effects.
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		mi := info[f]
		f.ForEachInst(func(inst core.Instruction) bool {
			switch i := inst.(type) {
			case *core.LoadInst:
				g, exact := TraceToGlobal(i.Ptr())
				if exact {
					mi.Ref[g] = true
				} else if g == nil && !PointsToLocalFrame(i.Ptr()) {
					mi.RefAny = true
				}
			case *core.StoreInst:
				g, exact := TraceToGlobal(i.Ptr())
				if exact {
					mi.Mod[g] = true
				} else if g == nil && !PointsToLocalFrame(i.Ptr()) {
					mi.ModAny = true
				}
			case *core.FreeInst:
				mi.ModAny = true
			case *core.CallInst:
				if i.CalledFunction() == nil {
					mi.ModAny, mi.RefAny = true, true
				}
			case *core.InvokeInst:
				if _, direct := i.Callee().(*core.Function); !direct {
					mi.ModAny, mi.RefAny = true, true
				}
			}
			return true
		})
	}

	// Transitive closure over direct call edges.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			mi := info[f]
			for _, callee := range cg.Nodes[f].Callees {
				ci := info[callee]
				if ci.ModAny && !mi.ModAny {
					mi.ModAny = true
					changed = true
				}
				if ci.RefAny && !mi.RefAny {
					mi.RefAny = true
					changed = true
				}
				for g := range ci.Mod {
					if !mi.Mod[g] {
						mi.Mod[g] = true
						changed = true
					}
				}
				for g := range ci.Ref {
					if !mi.Ref[g] {
						mi.Ref[g] = true
						changed = true
					}
				}
			}
		}
	}
	return info
}

// TraceToGlobal walks GEP/cast chains back to the base object. It returns
// (global, true) when the pointer provably addresses that global, and
// (nil, false) otherwise. The second result is false also when the base is
// a local alloca (check PointsToLocalFrame for that case).
func TraceToGlobal(p core.Value) (*core.GlobalVariable, bool) {
	for {
		switch v := p.(type) {
		case *core.GlobalVariable:
			return v, true
		case *core.GetElementPtrInst:
			p = v.Base()
		case *core.CastInst:
			if v.Val().Type().Kind() != core.PointerKind {
				return nil, false
			}
			p = v.Val()
		case *core.ConstantExpr:
			if v.Op == core.OpGetElementPtr || v.Op == core.OpCast {
				p = v.Operand(0)
				continue
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// PointsToLocalFrame reports whether the pointer provably addresses the
// current frame (an alloca that never escapes tracing through GEPs/casts);
// such accesses are invisible to callers and excluded from Mod/Ref.
func PointsToLocalFrame(p core.Value) bool {
	for {
		switch v := p.(type) {
		case *core.AllocaInst:
			return true
		case *core.GetElementPtrInst:
			p = v.Base()
		case *core.CastInst:
			if v.Val().Type().Kind() != core.PointerKind {
				return false
			}
			p = v.Val()
		default:
			return false
		}
	}
}
