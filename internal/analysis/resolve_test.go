package analysis

import (
	"testing"

	"repro/internal/core"
)

// findCallee digs the callee operand out of the first indirect call in f.
func findCallee(t *testing.T, f *core.Function) core.Value {
	t.Helper()
	var callee core.Value
	f.ForEachInst(func(inst core.Instruction) bool {
		if c, ok := inst.(*core.CallInst); ok && c.CalledFunction() == nil {
			callee = c.Callee()
			return false
		}
		return true
	})
	if callee == nil {
		t.Fatal("no indirect call in function")
	}
	return callee
}

func TestResolveCalleesConstTable(t *testing.T) {
	m := parse(t, `
%table = constant [2 x int (int)*] [ int (int)* %double, int (int)* %square ]

internal int %double(int %x) {
entry:
	%r = add int %x, %x
	ret int %r
}

internal int %square(int %x) {
entry:
	%r = mul int %x, %x
	ret int %r
}

internal int %apply(int %i, int %x) {
entry:
	%slot = getelementptr [2 x int (int)*]* %table, long 0, long %i
	%fp = load int (int)** %slot
	%r = call int %fp(int %x)
	ret int %r
}
`)
	targets, ok := ResolveCallees(findCallee(t, m.Func("apply")))
	if !ok {
		t.Fatal("constant function-pointer table must resolve")
	}
	if len(targets) != 2 || targets[0].Name() != "double" || targets[1].Name() != "square" {
		t.Fatalf("resolved set = %v, want [double square] in name order", targets)
	}
}

func TestResolveCalleesConstIndexSingleTarget(t *testing.T) {
	m := parse(t, `
%table = constant [2 x int (int)*] [ int (int)* %double, int (int)* %square ]

internal int %double(int %x) {
entry:
	%r = add int %x, %x
	ret int %r
}

internal int %square(int %x) {
entry:
	%r = mul int %x, %x
	ret int %r
}

internal int %applySecond(int %x) {
entry:
	%slot = getelementptr [2 x int (int)*]* %table, long 0, long 1
	%fp = load int (int)** %slot
	%r = call int %fp(int %x)
	ret int %r
}
`)
	targets, ok := ResolveCallees(findCallee(t, m.Func("applySecond")))
	if !ok || len(targets) != 1 || targets[0].Name() != "square" {
		t.Fatalf("constant index must resolve to the single entry, got %v ok=%v", targets, ok)
	}
}

func TestResolveCalleesPhiOverFunctions(t *testing.T) {
	m := parse(t, `
internal int %a(int %x) {
entry:
	ret int %x
}

internal int %b(int %x) {
entry:
	%r = sub int 0, %x
	ret int %r
}

internal int %pick(bool %c, int %x) {
entry:
	br bool %c, label %then, label %else
then:
	br label %join
else:
	br label %join
join:
	%fp = phi int (int)* [ %a, %then ], [ %b, %else ]
	%r = call int %fp(int %x)
	ret int %r
}
`)
	targets, ok := ResolveCallees(findCallee(t, m.Func("pick")))
	if !ok || len(targets) != 2 {
		t.Fatalf("phi over function constants must resolve, got %v ok=%v", targets, ok)
	}
}

func TestResolveCalleesMutableGlobalFails(t *testing.T) {
	m := parse(t, `
%fp = global void ()* null

internal void %callIt() {
entry:
	%f = load void ()** %fp
	call void %f()
	ret void
}
`)
	if _, ok := ResolveCallees(findCallee(t, m.Func("callIt"))); ok {
		t.Fatal("load from mutable global must not resolve")
	}
}

func TestCallGraphUsesResolvedTargets(t *testing.T) {
	// The call graph must give a resolved indirect call precise edges and
	// not mark the caller as possibly calling external code.
	m := parse(t, `
%table = constant [1 x void ()*] [ void ()* %only ]
%decoy = global void ()* %other

internal void %only() {
entry:
	ret void
}

internal void %other() {
entry:
	ret void
}

internal void %go() {
entry:
	%slot = getelementptr [1 x void ()*]* %table, long 0, long 0
	%f = load void ()** %slot
	call void %f()
	ret void
}
`)
	cg := NewCallGraph(m)
	node := cg.Nodes[m.Func("go")]
	if node.CallsExternal {
		t.Error("resolved indirect call wrongly flagged CallsExternal")
	}
	if len(node.Callees) != 1 || node.Callees[0].Name() != "only" {
		t.Errorf("callees = %v, want exactly [only]", node.Callees)
	}
}
