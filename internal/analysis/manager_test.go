package analysis

import (
	"sync"
	"testing"

	"repro/internal/core"
)

const managerSrc = `
int %callee(int %x) {
entry:
	%c = setgt int %x, 0
	br bool %c, label %pos, label %neg
pos:
	ret int %x
neg:
	ret int 0
}

int %caller(int %x) {
entry:
	%r = call int %callee(int %x)
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %n, %loop ]
	%n = add int %i, 1
	%c = setlt int %n, %r
	br bool %c, label %loop, label %out
out:
	ret int %n
}
`

func TestManagerHitMiss(t *testing.T) {
	m := parse(t, managerSrc)
	f := m.Func("callee")
	am := NewManager()

	dt1 := am.DomTree(f)
	if s := am.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("first DomTree: stats %+v, want 1 miss", s)
	}
	dt2 := am.DomTree(f)
	if dt1 != dt2 {
		t.Error("second DomTree not served from cache")
	}
	if s := am.Stats(); s.Hits != 1 {
		t.Errorf("second DomTree: stats %+v, want 1 hit", s)
	}

	// DomFrontier and LoopInfo reuse the cached tree (one hit each for the
	// tree, one miss each for themselves).
	am.DomFrontier(f)
	am.LoopInfo(f)
	if s := am.Stats(); s.Misses != 3 || s.Hits != 3 {
		t.Errorf("after derived analyses: stats %+v, want 3 miss / 3 hits", s)
	}
}

func TestManagerInvalidation(t *testing.T) {
	m := parse(t, managerSrc)
	f := m.Func("caller")
	am := NewManager()
	am.DomTree(f)
	am.DomFrontier(f)
	am.LoopInfo(f)

	// Preserving everything must keep the whole entry.
	am.InvalidateFunction(f, PreserveAll)
	if s := am.Stats(); s.Invalidations != 0 {
		t.Fatalf("PreserveAll invalidated %d analyses", s.Invalidations)
	}
	am.DomTree(f)
	if s := am.Stats(); s.Hits != 3 {
		t.Fatalf("DomTree after PreserveAll: stats %+v, want hit", s)
	}

	// Dropping the dominator tree drops the analyses derived from it even
	// though their own bits are set.
	am.InvalidateFunction(f, PreserveDomFrontier|PreserveLoopInfo)
	if s := am.Stats(); s.Invalidations != 3 {
		t.Fatalf("dropping DomTree: %d invalidations, want 3 (tree + 2 derived)", s.Invalidations)
	}
	before := am.Stats()
	am.DomFrontier(f)
	if s := am.Stats(); s.Misses != before.Misses+2 {
		t.Errorf("DomFrontier after invalidation should recompute tree+frontier: %+v", s)
	}
}

func TestManagerModuleAnalyses(t *testing.T) {
	m := parse(t, managerSrc)
	am := NewManager()

	cg1 := am.CallGraph(m)
	cg2 := am.CallGraph(m)
	if cg1 != cg2 {
		t.Error("CallGraph not cached")
	}
	am.ModRef(m)
	am.ModRef(m)
	// Three hits: the repeated CallGraph, the graph reused inside the first
	// ModRef computation, and the repeated ModRef.
	if s := am.Stats(); s.Hits != 3 || s.Misses != 2 {
		t.Errorf("module analyses: stats %+v, want 3 hits / 2 misses", s)
	}

	// Preserving the call graph but not mod/ref drops only mod/ref.
	am.InvalidateModule(PreserveCallGraph)
	before := am.Stats()
	if before.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (modref only)", before.Invalidations)
	}
	if am.CallGraph(m) != cg1 {
		t.Error("call graph should have survived")
	}

	// Dropping the call graph drops mod/ref with it.
	am.ModRef(m)
	am.InvalidateModule(PreserveModRef)
	if s := am.Stats(); s.Invalidations != before.Invalidations+2 {
		t.Errorf("invalidations = %d, want +2 (graph + derived modref)", s.Invalidations)
	}
}

func TestManagerPrune(t *testing.T) {
	m := parse(t, managerSrc)
	f := m.Func("callee")
	am := NewManager()
	am.DomTree(f)
	am.CallGraph(m)

	// Prune against the owning module keeps everything.
	am.Prune(m)
	am.DomTree(f)
	if s := am.Stats(); s.Hits != 1 {
		t.Fatalf("entry lost by no-op prune: %+v", s)
	}

	// A function removed from the module loses its entry.
	core.ReplaceAllUses(f, core.NewNull(f.Type().(*core.PointerType)))
	f.Blocks = nil
	m.RemoveFunc(f)
	am.Prune(m)
	before := am.Stats()
	am.DomTree(f)
	if s := am.Stats(); s.Misses != before.Misses+1 {
		t.Errorf("pruned entry still served: %+v", s)
	}
}

func TestNilManagerComputesFresh(t *testing.T) {
	m := parse(t, managerSrc)
	f := m.Func("caller")
	var am *Manager
	if am.DomTree(f) == nil || am.DomFrontier(f) == nil || am.LoopInfo(f) == nil {
		t.Fatal("nil manager returned nil analysis")
	}
	if am.CallGraph(m) == nil || am.ModRef(m) == nil {
		t.Fatal("nil manager returned nil module analysis")
	}
	if s := am.Stats(); s != (Stats{}) {
		t.Errorf("nil manager counted stats: %+v", s)
	}
	am.InvalidateFunction(f, PreserveNone)
	am.InvalidateModule(PreserveNone)
	am.Prune(m)
}

// TestManagerConcurrent exercises the cache from many goroutines under
// -race: concurrent fetches of the same and different functions, mixed with
// invalidation, must be safe.
func TestManagerConcurrent(t *testing.T) {
	m := parse(t, managerSrc)
	fns := []*core.Function{m.Func("callee"), m.Func("caller")}
	am := NewManager()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := fns[w%len(fns)]
			for i := 0; i < 50; i++ {
				if am.DomTree(f) == nil || am.LoopInfo(f) == nil {
					t.Error("nil analysis")
					return
				}
				am.CallGraph(m)
				if i%10 == 9 {
					am.InvalidateFunction(f, PreserveNone)
				}
			}
		}()
	}
	wg.Wait()
}
