package analysis

import (
	"sort"

	"repro/internal/core"
)

// Loop is a natural loop: a header block plus the set of blocks that can
// reach a back edge to the header without leaving the loop.
type Loop struct {
	Header *core.BasicBlock
	Blocks map[*core.BasicBlock]bool
	Parent *Loop
	Subs   []*Loop
	// Latches are the blocks with back edges to the header.
	Latches []*core.BasicBlock
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *core.BasicBlock) bool { return l.Blocks[b] }

// Depth returns the nesting depth (outermost loop = 1).
func (l *Loop) Depth() int {
	d := 0
	for x := l; x != nil; x = x.Parent {
		d++
	}
	return d
}

// Exits returns the blocks outside the loop that are branched to from
// inside it, in a stable order.
func (l *Loop) Exits() []*core.BasicBlock {
	var out []*core.BasicBlock
	seen := map[*core.BasicBlock]bool{}
	for b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Preheader returns the unique predecessor of the header outside the loop,
// or nil if there is none (or more than one).
func (l *Loop) Preheader() *core.BasicBlock {
	var ph *core.BasicBlock
	for _, p := range l.Header.Preds() {
		if l.Blocks[p] {
			continue
		}
		if ph != nil {
			return nil
		}
		ph = p
	}
	return ph
}

// LoopInfo holds every natural loop of a function.
type LoopInfo struct {
	// TopLevel lists outermost loops in header-RPO order.
	TopLevel []*Loop
	// ByHeader maps a header block to its (innermost) loop.
	ByHeader map[*core.BasicBlock]*Loop
	// loopOf maps each block to the innermost loop containing it.
	loopOf map[*core.BasicBlock]*Loop
}

// LoopFor returns the innermost loop containing b, or nil.
func (li *LoopInfo) LoopFor(b *core.BasicBlock) *Loop { return li.loopOf[b] }

// Depth returns the loop nesting depth of b (0 = not in a loop).
func (li *LoopInfo) Depth(b *core.BasicBlock) int {
	if l := li.loopOf[b]; l != nil {
		return l.Depth()
	}
	return 0
}

// All returns every loop, outer loops before their subloops.
func (li *LoopInfo) All() []*Loop {
	var out []*Loop
	var walk func(l *Loop)
	walk = func(l *Loop) {
		out = append(out, l)
		for _, s := range l.Subs {
			walk(s)
		}
	}
	for _, l := range li.TopLevel {
		walk(l)
	}
	return out
}

// NewLoopInfo identifies natural loops from back edges (edges whose target
// dominates their source), merging loops that share a header and nesting
// loops by block containment.
func NewLoopInfo(f *core.Function, dt *DomTree) *LoopInfo {
	li := &LoopInfo{ByHeader: map[*core.BasicBlock]*Loop{}, loopOf: map[*core.BasicBlock]*Loop{}}

	// Find back edges and collect loop bodies.
	for _, b := range dt.RPO() {
		for _, s := range b.Succs() {
			if dt.Dominates(s, b) {
				loop := li.ByHeader[s]
				if loop == nil {
					loop = &Loop{Header: s, Blocks: map[*core.BasicBlock]bool{s: true}}
					li.ByHeader[s] = loop
				}
				loop.Latches = append(loop.Latches, b)
				// Walk predecessors backward from the latch to the header.
				work := []*core.BasicBlock{b}
				for len(work) > 0 {
					x := work[len(work)-1]
					work = work[:len(work)-1]
					if loop.Blocks[x] || !dt.Reachable(x) {
						continue
					}
					loop.Blocks[x] = true
					for _, p := range x.Preds() {
						work = append(work, p)
					}
				}
			}
		}
	}

	// Establish nesting: visit headers in RPO; a loop is a subloop of the
	// innermost loop already known to contain its header (other than itself).
	var headers []*core.BasicBlock
	for _, b := range dt.RPO() {
		if li.ByHeader[b] != nil {
			headers = append(headers, b)
		}
	}
	// Sort outer loops first (bigger block sets first for same header order).
	sort.SliceStable(headers, func(i, j int) bool {
		return len(li.ByHeader[headers[i]].Blocks) > len(li.ByHeader[headers[j]].Blocks)
	})
	for _, h := range headers {
		loop := li.ByHeader[h]
		// Find enclosing loop: innermost loop of the header other than loop.
		if enc := li.loopOf[h]; enc != nil && enc != loop {
			loop.Parent = enc
			enc.Subs = append(enc.Subs, loop)
		} else {
			li.TopLevel = append(li.TopLevel, loop)
		}
		// Claim blocks for this (inner-more) loop.
		for b := range loop.Blocks {
			cur := li.loopOf[b]
			if cur == nil || len(cur.Blocks) > len(loop.Blocks) {
				li.loopOf[b] = loop
			}
		}
	}
	return li
}
