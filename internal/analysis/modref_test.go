package analysis

import (
	"testing"
)

func TestModRefBasic(t *testing.T) {
	m := parse(t, `
%g1 = global int 0
%g2 = global int 0

internal void %writer() {
entry:
	store int 1, int* %g1
	ret void
}

internal int %reader() {
entry:
	%v = load int* %g2
	ret int %v
}

internal int %both() {
entry:
	call void %writer()
	%v = call int %reader()
	ret int %v
}

internal int %pure(int %x) {
entry:
	%y = mul int %x, %x
	ret int %y
}

internal void %localonly() {
entry:
	%p = alloca int
	store int 5, int* %p
	%v = load int* %p
	ret void
}
`)
	cg := NewCallGraph(m)
	mr := ModRef(m, cg)
	g1, g2 := m.Global("g1"), m.Global("g2")

	w := mr[m.Func("writer")]
	if !w.Writes(g1) || w.Writes(g2) || w.Reads(g1) {
		t.Errorf("writer mod/ref wrong: %+v", w)
	}
	r := mr[m.Func("reader")]
	if !r.Reads(g2) || r.Writes(g2) || r.Reads(g1) {
		t.Errorf("reader mod/ref wrong: %+v", r)
	}
	bo := mr[m.Func("both")]
	if !bo.Writes(g1) || !bo.Reads(g2) {
		t.Error("transitive mod/ref not propagated")
	}
	if bo.Writes(g2) || bo.Reads(g1) {
		t.Error("mod/ref over-approximates named globals")
	}
	if !mr[m.Func("pure")].Pure() {
		t.Error("pure function not recognized")
	}
	if !mr[m.Func("localonly")].Pure() {
		t.Error("frame-local accesses should not appear in mod/ref")
	}
}

func TestModRefUnknownMemory(t *testing.T) {
	m := parse(t, `
declare void %external()

internal void %throughArg(int* %p) {
entry:
	store int 1, int* %p
	ret void
}

internal void %callsExternal() {
entry:
	call void %external()
	ret void
}
`)
	cg := NewCallGraph(m)
	mr := ModRef(m, cg)
	ta := mr[m.Func("throughArg")]
	if !ta.WritesArg(0) {
		t.Error("store through argument must set ArgMod[0]")
	}
	if ta.ModAny {
		t.Error("store through a traced argument must not poison ModAny")
	}
	if ta.ReadsArg(0) {
		t.Error("write-only argument reported as read")
	}
	ce := mr[m.Func("callsExternal")]
	if !ce.ModAny || !ce.RefAny {
		t.Error("external call must poison mod/ref")
	}
}

func TestModRefPerArgBinding(t *testing.T) {
	// Callee argument effects rebind through the caller's actuals: a
	// global actual lands in Mod, a frame actual vanishes, an unknown
	// actual poisons ModAny.
	m := parse(t, `
%g = global int 0

internal void %setp(int* %p) {
entry:
	store int 1, int* %p
	ret void
}

internal void %viaGlobal() {
entry:
	call void %setp(int* %g)
	ret void
}

internal void %viaFrame() {
entry:
	%s = alloca int
	call void %setp(int* %s)
	ret void
}

internal void %viaFresh() {
entry:
	%h = malloc int
	call void %setp(int* %h)
	ret void
}

internal void %viaArg(int* %q) {
entry:
	call void %setp(int* %q)
	ret void
}

internal void %viaLoaded(int** %pp) {
entry:
	%p = load int** %pp
	call void %setp(int* %p)
	ret void
}
`)
	mr := ModRef(m, NewCallGraph(m))
	g := m.Global("g")
	if vg := mr[m.Func("viaGlobal")]; !vg.Writes(g) || vg.ModAny {
		t.Errorf("global actual must land in Mod, not ModAny: %+v", vg)
	}
	if vf := mr[m.Func("viaFrame")]; !vf.Pure() {
		t.Errorf("frame actual is caller-invisible, want pure: %+v", vf)
	}
	if vh := mr[m.Func("viaFresh")]; !vh.Pure() {
		t.Errorf("fresh-heap actual is caller-invisible, want pure: %+v", vh)
	}
	if va := mr[m.Func("viaArg")]; !va.WritesArg(0) || va.ModAny {
		t.Errorf("argument actual must rebind to ArgMod: %+v", va)
	}
	if vl := mr[m.Func("viaLoaded")]; !vl.ModAny {
		t.Errorf("pointer loaded from memory must poison ModAny: %+v", vl)
	}
}

func TestModRefResolvedIndirectCall(t *testing.T) {
	// An indirect call through a constant function-pointer table must not
	// hit the ModAny|RefAny cliff: the callee set is fully resolved, so
	// the caller's summary is the join of the candidates' summaries.
	m := parse(t, `
%g = global int 0
%table = constant [2 x void (int*)*] [ void (int*)* %setArg, void (int*)* %setGlobal ]

internal void %setArg(int* %p) {
entry:
	store int 1, int* %p
	ret void
}

internal void %setGlobal(int* %p) {
entry:
	store int 2, int* %g
	ret void
}

internal void %dispatch(int %i, int* %out) {
entry:
	%slot = getelementptr [2 x void (int*)*]* %table, long 0, long %i
	%fp = load void (int*)** %slot
	call void %fp(int* %out)
	ret void
}
`)
	mr := ModRef(m, NewCallGraph(m))
	di := mr[m.Func("dispatch")]
	if di.ModAny || di.RefAny {
		t.Fatalf("fully resolved indirect call must not poison Any bits: %+v", di)
	}
	if !di.Writes(m.Global("g")) {
		t.Error("candidate setGlobal's Mod must propagate to dispatch")
	}
	if !di.WritesArg(1) {
		t.Error("candidate setArg's ArgMod must rebind to dispatch's out argument")
	}
	if di.ReadsArg(1) {
		t.Error("no candidate reads the argument; ArgRef over-approximates")
	}
}

func TestModRefUnresolvedIndirectCallStaysConservative(t *testing.T) {
	// A function pointer loaded from a *mutable* global is unresolvable:
	// the worst-case bits must stay.
	m := parse(t, `
%fp = global void ()* null

internal void %callIt() {
entry:
	%f = load void ()** %fp
	call void %f()
	ret void
}
`)
	mr := ModRef(m, NewCallGraph(m))
	ci := mr[m.Func("callIt")]
	if !ci.ModAny || !ci.RefAny {
		t.Errorf("unresolved indirect call must keep ModAny|RefAny: %+v", ci)
	}
}

func TestModRefThroughGEPAndCast(t *testing.T) {
	m := parse(t, `
%arr = global [4 x int] zeroinitializer

internal void %f() {
entry:
	%p = getelementptr [4 x int]* %arr, long 0, long 2
	store int 9, int* %p
	%c = cast [4 x int]* %arr to int*
	%v = load int* %c
	ret void
}
`)
	cg := NewCallGraph(m)
	mr := ModRef(m, cg)
	fi := mr[m.Func("f")]
	arr := m.Global("arr")
	if !fi.Writes(arr) || !fi.Reads(arr) {
		t.Error("GEP/cast access not traced to its global")
	}
	if fi.ModAny || fi.RefAny {
		t.Error("precisely-traced accesses should not poison Any bits")
	}
}
