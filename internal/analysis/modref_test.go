package analysis

import (
	"testing"
)

func TestModRefBasic(t *testing.T) {
	m := parse(t, `
%g1 = global int 0
%g2 = global int 0

internal void %writer() {
entry:
	store int 1, int* %g1
	ret void
}

internal int %reader() {
entry:
	%v = load int* %g2
	ret int %v
}

internal int %both() {
entry:
	call void %writer()
	%v = call int %reader()
	ret int %v
}

internal int %pure(int %x) {
entry:
	%y = mul int %x, %x
	ret int %y
}

internal void %localonly() {
entry:
	%p = alloca int
	store int 5, int* %p
	%v = load int* %p
	ret void
}
`)
	cg := NewCallGraph(m)
	mr := ModRef(m, cg)
	g1, g2 := m.Global("g1"), m.Global("g2")

	w := mr[m.Func("writer")]
	if !w.Writes(g1) || w.Writes(g2) || w.Reads(g1) {
		t.Errorf("writer mod/ref wrong: %+v", w)
	}
	r := mr[m.Func("reader")]
	if !r.Reads(g2) || r.Writes(g2) || r.Reads(g1) {
		t.Errorf("reader mod/ref wrong: %+v", r)
	}
	bo := mr[m.Func("both")]
	if !bo.Writes(g1) || !bo.Reads(g2) {
		t.Error("transitive mod/ref not propagated")
	}
	if bo.Writes(g2) || bo.Reads(g1) {
		t.Error("mod/ref over-approximates named globals")
	}
	if !mr[m.Func("pure")].Pure() {
		t.Error("pure function not recognized")
	}
	if !mr[m.Func("localonly")].Pure() {
		t.Error("frame-local accesses should not appear in mod/ref")
	}
}

func TestModRefUnknownMemory(t *testing.T) {
	m := parse(t, `
declare void %external()

internal void %throughArg(int* %p) {
entry:
	store int 1, int* %p
	ret void
}

internal void %callsExternal() {
entry:
	call void %external()
	ret void
}
`)
	cg := NewCallGraph(m)
	mr := ModRef(m, cg)
	if !mr[m.Func("throughArg")].ModAny {
		t.Error("store through argument must set ModAny")
	}
	ce := mr[m.Func("callsExternal")]
	if !ce.ModAny || !ce.RefAny {
		t.Error("external call must poison mod/ref")
	}
}

func TestModRefThroughGEPAndCast(t *testing.T) {
	m := parse(t, `
%arr = global [4 x int] zeroinitializer

internal void %f() {
entry:
	%p = getelementptr [4 x int]* %arr, long 0, long 2
	store int 9, int* %p
	%c = cast [4 x int]* %arr to int*
	%v = load int* %c
	ret void
}
`)
	cg := NewCallGraph(m)
	mr := ModRef(m, cg)
	fi := mr[m.Func("f")]
	arr := m.Global("arr")
	if !fi.Writes(arr) || !fi.Reads(arr) {
		t.Error("GEP/cast access not traced to its global")
	}
	if fi.ModAny || fi.RefAny {
		t.Error("precisely-traced accesses should not poison Any bits")
	}
}
