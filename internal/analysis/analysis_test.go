package analysis

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

func parse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func block(f *core.Function, name string) *core.BasicBlock {
	for _, b := range f.Blocks {
		if b.Name() == name {
			return b
		}
	}
	return nil
}

const diamondSrc = `
int %f(bool %c) {
entry:
	br bool %c, label %then, label %else
then:
	br label %join
else:
	br label %join
join:
	%x = phi int [ 1, %then ], [ 2, %else ]
	ret int %x
}
`

func TestDomTreeDiamond(t *testing.T) {
	m := parse(t, diamondSrc)
	f := m.Func("f")
	dt := NewDomTree(f)
	entry, then, els, join := block(f, "entry"), block(f, "then"), block(f, "else"), block(f, "join")

	if dt.Idom(entry) != nil {
		t.Error("entry should have no idom")
	}
	if dt.Idom(then) != entry || dt.Idom(els) != entry || dt.Idom(join) != entry {
		t.Error("idoms wrong in diamond")
	}
	if !dt.Dominates(entry, join) || dt.Dominates(then, join) {
		t.Error("dominance wrong")
	}
	if !dt.Dominates(join, join) {
		t.Error("block must dominate itself")
	}
	df := NewDomFrontier(dt)
	if len(df[then]) != 1 || df[then][0] != join {
		t.Errorf("DF(then) = %v", df[then])
	}
	if len(df[entry]) != 0 {
		t.Errorf("DF(entry) = %v", df[entry])
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	m := parse(t, `
void %f() {
entry:
	ret void
dead:
	br label %dead2
dead2:
	br label %dead
}
`)
	f := m.Func("f")
	dt := NewDomTree(f)
	if dt.Reachable(block(f, "dead")) {
		t.Error("dead block reported reachable")
	}
	if dt.Dominates(block(f, "dead"), block(f, "entry")) {
		t.Error("unreachable block dominates entry")
	}
	if len(dt.RPO()) != 1 {
		t.Error("RPO should contain only entry")
	}
}

const nestedLoopSrc = `
int %nest(int %n) {
entry:
	br label %outer
outer:
	%i = phi int [ 0, %entry ], [ %i2, %outer.latch ]
	br label %inner
inner:
	%j = phi int [ 0, %outer ], [ %j2, %inner ]
	%j2 = add int %j, 1
	%jc = setlt int %j2, %n
	br bool %jc, label %inner, label %outer.latch
outer.latch:
	%i2 = add int %i, 1
	%ic = setlt int %i2, %n
	br bool %ic, label %outer, label %exit
exit:
	ret int 0
}
`

func TestLoopInfoNested(t *testing.T) {
	m := parse(t, nestedLoopSrc)
	f := m.Func("nest")
	dt := NewDomTree(f)
	li := NewLoopInfo(f, dt)

	outer := li.ByHeader[block(f, "outer")]
	inner := li.ByHeader[block(f, "inner")]
	if outer == nil || inner == nil {
		t.Fatal("loops not found")
	}
	if inner.Parent != outer {
		t.Error("inner loop not nested in outer")
	}
	if outer.Depth() != 1 || inner.Depth() != 2 {
		t.Errorf("depths: outer=%d inner=%d", outer.Depth(), inner.Depth())
	}
	if !outer.Contains(block(f, "inner")) || !outer.Contains(block(f, "outer.latch")) {
		t.Error("outer loop blocks wrong")
	}
	if inner.Contains(block(f, "outer.latch")) {
		t.Error("inner loop too big")
	}
	if li.Depth(block(f, "inner")) != 2 || li.Depth(block(f, "entry")) != 0 {
		t.Error("block depths wrong")
	}
	if ph := outer.Preheader(); ph != block(f, "entry") {
		t.Errorf("outer preheader = %v", ph)
	}
	exits := outer.Exits()
	if len(exits) != 1 || exits[0] != block(f, "exit") {
		t.Errorf("outer exits = %v", exits)
	}
	if len(li.TopLevel) != 1 || len(li.All()) != 2 {
		t.Error("loop forest shape wrong")
	}
}

func TestCallGraph(t *testing.T) {
	m := parse(t, `
declare void %external()

internal void %leaf() {
entry:
	ret void
}

internal void %mid() {
entry:
	call void %leaf()
	ret void
}

void %main() {
entry:
	call void %mid()
	call void %external()
	ret void
}
`)
	cg := NewCallGraph(m)
	mainN := cg.Nodes[m.Func("main")]
	if len(mainN.Callees) != 2 {
		t.Errorf("main callees = %d", len(mainN.Callees))
	}
	if !mainN.CallsExternal {
		t.Error("main should call external")
	}
	if cg.Nodes[m.Func("leaf")].CallsExternal {
		t.Error("leaf should not call external")
	}
	if len(cg.Nodes[m.Func("leaf")].Callers) != 1 {
		t.Error("leaf callers wrong")
	}

	order := cg.PostOrder()
	pos := map[string]int{}
	for i, f := range order {
		pos[f.Name()] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["main"]) {
		t.Errorf("post order wrong: %v", pos)
	}
}

func TestCallGraphIndirect(t *testing.T) {
	m := parse(t, `
%fp = global void ()* %target

internal void %target() {
entry:
	ret void
}

void %caller() {
entry:
	%p = load void ()** %fp
	call void %p()
	ret void
}
`)
	cg := NewCallGraph(m)
	callerN := cg.Nodes[m.Func("caller")]
	found := false
	for _, c := range callerN.Callees {
		if c == m.Func("target") {
			found = true
		}
	}
	if !found {
		t.Error("indirect call edge to address-taken function missing")
	}
	if !callerN.CallsExternal {
		t.Error("indirect call should be flagged external-possible")
	}
}

func TestMayUnwind(t *testing.T) {
	m := parse(t, `
declare void %extern()

internal void %thrower() {
entry:
	unwind
}

internal void %callsThrower() {
entry:
	call void %thrower()
	ret void
}

internal void %pure() {
entry:
	ret void
}

internal void %catches() {
entry:
	invoke void %thrower() to label %ok unwind to label %ex
ok:
	ret void
ex:
	ret void
}

void %main() {
entry:
	call void %pure()
	call void %catches()
	ret void
}
`)
	cg := NewCallGraph(m)
	may := cg.MayUnwind()
	if !may[m.Func("thrower")] {
		t.Error("thrower must unwind")
	}
	if !may[m.Func("callsThrower")] {
		t.Error("callsThrower must propagate unwind")
	}
	if may[m.Func("pure")] {
		t.Error("pure cannot unwind")
	}
	if may[m.Func("catches")] {
		t.Error("catches handles the unwind; should not propagate")
	}
	if may[m.Func("main")] {
		t.Error("main calls only non-unwinding functions")
	}
	if !may[m.Func("extern")] {
		t.Error("external declarations may unwind")
	}
}

func TestDominatesValueUse(t *testing.T) {
	m := parse(t, diamondSrc)
	f := m.Func("f")
	dt := NewDomTree(f)
	join := block(f, "join")
	phi := join.Phis()[0]
	// Constant incoming values dominate trivially.
	if !dt.DominatesValueUse(phi.Operand(0), phi, 0) {
		t.Error("constant should dominate phi use")
	}
	// Same-block ordering.
	ret := join.Instrs[1]
	if !dt.DominatesValueUse(phi, ret, 0) {
		t.Error("phi should dominate later ret in same block")
	}
	if dt.DominatesValueUse(ret, phi, 0) {
		t.Error("later instruction must not dominate earlier one")
	}
}
