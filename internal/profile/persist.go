package profile

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// Counts is the persistable form of an execution profile. Where Data keys
// counts by *core.BasicBlock identity (valid only within one process),
// Counts keys them by function name and block layout index, which survive
// a bytecode round trip: instrumentation probes are stripped in place, so
// the counted blocks are the source module's own blocks, and the canonical
// encoding preserves block order. Counts from different runs of the same
// module therefore line up slot for slot and can be accumulated.
type Counts struct {
	// Funcs maps a function name to its per-block counts in layout order.
	Funcs map[string][]int64 `json:"funcs"`
	// Total is the sum of all block counts.
	Total int64 `json:"total"`
}

// ToCounts converts a profile to its persistable form against the module
// it was collected on.
func (d *Data) ToCounts(m *core.Module) *Counts {
	c := &Counts{Funcs: map[string][]int64{}}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		per := make([]int64, len(f.Blocks))
		any := false
		for i, b := range f.Blocks {
			per[i] = d.Count(b)
			if per[i] != 0 {
				any = true
			}
			c.Total += per[i]
		}
		if any {
			c.Funcs[f.Name()] = per
		}
	}
	return c
}

// CountsFromBlocks wraps the execution engine's own per-block counters
// (interp.Machine.BlockCounts: function name -> counts in block layout
// order) as a persistable profile. The engine counts every tier without
// instrumenting the module, so this is the zero-probe path into the same
// lifelong store ToCounts feeds; the shapes match slot for slot, and
// Machine.SeedProfile consumes the Funcs map on the way back in.
func CountsFromBlocks(funcs map[string][]int64) *Counts {
	c := &Counts{Funcs: map[string][]int64{}}
	for fn, per := range funcs {
		cp := append([]int64(nil), per...)
		c.Funcs[fn] = cp
		for _, n := range cp {
			c.Total += n
		}
	}
	return c
}

// Bind resolves persisted counts against a module with the same block
// structure, producing a Data usable by HotRegions/Reoptimize. Functions
// missing from the module are skipped (the profile may predate a rename);
// a count slice longer than the function's block list is an error, since
// it means the profile was collected on a different layout and binding it
// would attribute heat to the wrong blocks.
func (c *Counts) Bind(m *core.Module) (*Data, error) {
	d := &Data{Counts: map[*core.BasicBlock]int64{}}
	for _, f := range m.Funcs {
		per, ok := c.Funcs[f.Name()]
		if !ok {
			continue
		}
		if len(per) > len(f.Blocks) {
			return nil, fmt.Errorf("profile: function %%%s has %d blocks but profile has %d slots", f.Name(), len(f.Blocks), len(per))
		}
		for i, n := range per {
			d.Counts[f.Blocks[i]] = n
			d.Total += n
		}
	}
	return d, nil
}

// Merge accumulates o into c slot for slot (missing functions are adopted,
// shorter slices extended), the cross-run accumulation of §4.2's lifelong
// profile gathering.
func (c *Counts) Merge(o *Counts) {
	if c.Funcs == nil {
		c.Funcs = map[string][]int64{}
	}
	for fn, per := range o.Funcs {
		dst := c.Funcs[fn]
		for len(dst) < len(per) {
			dst = append(dst, 0)
		}
		for i, n := range per {
			dst[i] += n
		}
		c.Funcs[fn] = dst
	}
	c.Total += o.Total
}

// Equal reports whether two profiles hold identical counts.
func (c *Counts) Equal(o *Counts) bool {
	if c.Total != o.Total || len(c.Funcs) != len(o.Funcs) {
		return false
	}
	for fn, per := range c.Funcs {
		op, ok := o.Funcs[fn]
		if !ok || len(per) != len(op) {
			return false
		}
		for i := range per {
			if per[i] != op[i] {
				return false
			}
		}
	}
	return true
}

// File is the on-disk profile format shared by llvm-run's
// -profile-out/-profile-in and the lifelong store: the accumulated counts
// plus the epoch bookkeeping that invalidates stale optimized artifacts.
type File struct {
	// Epoch counts material profile changes. Optimized artifacts are keyed
	// by (module hash, pipeline, epoch); when Merge advances the epoch,
	// artifacts built against the previous epoch stop being served and the
	// idle reoptimizer rebuilds them against the richer profile.
	Epoch int64 `json:"epoch"`
	// EpochTotal is Counts.Total at the last epoch advance; the baseline
	// the materiality test compares against.
	EpochTotal int64  `json:"epoch_total"`
	Counts     Counts `json:"counts"`
}

// Merge accumulates a run's counts and reports whether the profile changed
// materially — defined as the accumulated total at least doubling since
// the last epoch advance (or the first nonzero counts arriving). Doubling
// means each epoch's artifacts were built on at most half the evidence now
// available, while the logarithmic growth keeps reoptimization from
// churning on every run.
func (f *File) Merge(c *Counts) (bumped bool) {
	f.Counts.Merge(c)
	if f.Counts.Total > 0 && (f.EpochTotal == 0 || f.Counts.Total >= 2*f.EpochTotal) {
		f.Epoch++
		f.EpochTotal = f.Counts.Total
		return true
	}
	return false
}

// EncodeFile serializes a profile file as deterministic JSON (object keys
// sort, so byte-identical profiles mean identical counts).
func EncodeFile(f *File) ([]byte, error) {
	return json.MarshalIndent(f, "", "\t")
}

// DecodeFile parses a profile file, rejecting structurally invalid input.
func DecodeFile(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("profile: corrupt profile file: %w", err)
	}
	var total int64
	for fn, per := range f.Counts.Funcs {
		for _, n := range per {
			if n < 0 {
				return nil, fmt.Errorf("profile: negative count in %%%s", fn)
			}
			total += n
		}
	}
	if total != f.Counts.Total {
		return nil, fmt.Errorf("profile: total %d does not match summed counts %d", f.Counts.Total, total)
	}
	return &f, nil
}
