package profile

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
)

// runCounts compiles src, runs it instrumented, and returns the persisted
// counts plus the module (post-strip).
func runCounts(t *testing.T, src string) (*Counts, *core.Module) {
	t.Helper()
	m := build(t, src)
	d, _ := runProfiled(t, m)
	return d.ToCounts(m), m
}

// TestMergedRunsEqualDoubledRun: running twice and merging must produce
// exactly the profile of one run with every count doubled — the contract
// that makes cross-run accumulation meaningful.
func TestMergedRunsEqualDoubledRun(t *testing.T) {
	once, _ := runCounts(t, loopProg)

	merged := &Counts{}
	r1, _ := runCounts(t, loopProg)
	r2, _ := runCounts(t, loopProg)
	merged.Merge(r1)
	merged.Merge(r2)

	doubled := &Counts{Funcs: map[string][]int64{}}
	for fn, per := range once.Funcs {
		dp := make([]int64, len(per))
		for i, n := range per {
			dp[i] = 2 * n
		}
		doubled.Funcs[fn] = dp
	}
	doubled.Total = 2 * once.Total

	if !merged.Equal(doubled) {
		t.Fatalf("two merged runs != one doubled run:\nmerged: %+v\ndoubled: %+v", merged, doubled)
	}
}

// TestCountsRoundTripThroughBytecodeAndBind: counts persisted from one
// process must bind onto a module decoded from canonical bytecode in
// "another" (same block structure), with hot regions surviving.
func TestCountsRoundTripThroughBytecodeAndBind(t *testing.T) {
	c, m := runCounts(t, loopProg)

	data, err := bytecode.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := bytecode.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Bind(m2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Total != c.Total {
		t.Fatalf("bound total %d != persisted total %d", d2.Total, c.Total)
	}
	regions := d2.HotRegions(m2, 0.5)
	if len(regions) == 0 || regions[0].Fn.Name() != "main" {
		t.Fatalf("hot region lost across persist+bind: %+v", regions)
	}
}

// TestBindRejectsMismatchedLayout: more profile slots than blocks means the
// profile came from a different module layout; binding must refuse.
func TestBindRejectsMismatchedLayout(t *testing.T) {
	c, m := runCounts(t, loopProg)
	var victim string
	for fn := range c.Funcs {
		victim = fn
		break
	}
	c.Funcs[victim] = append(c.Funcs[victim], make([]int64, 50)...)
	if _, err := c.Bind(m); err == nil {
		t.Fatal("Bind accepted a profile with more slots than blocks")
	}
}

// TestFileEpochAdvancesOnDoubling: the epoch advances on the first counts
// and then whenever the accumulated total doubles — not on every merge.
func TestFileEpochAdvancesOnDoubling(t *testing.T) {
	run, _ := runCounts(t, loopProg)
	var f File
	if bumped := f.Merge(run); !bumped || f.Epoch != 1 {
		t.Fatalf("first merge: bumped=%v epoch=%d, want bump to 1", bumped, f.Epoch)
	}
	if bumped := f.Merge(run); !bumped || f.Epoch != 2 {
		t.Fatalf("second merge doubles the baseline: bumped=%v epoch=%d", bumped, f.Epoch)
	}
	if bumped := f.Merge(run); bumped {
		t.Fatalf("third merge is 1.5x the baseline, must not bump (epoch=%d)", f.Epoch)
	}
	if bumped := f.Merge(run); !bumped || f.Epoch != 3 {
		t.Fatalf("fourth merge doubles again: bumped=%v epoch=%d", bumped, f.Epoch)
	}
}

// TestFileEncodeDecode: the on-disk format round-trips, is deterministic,
// and corruption is detected rather than silently accepted.
func TestFileEncodeDecode(t *testing.T) {
	run, _ := runCounts(t, loopProg)
	var f File
	f.Merge(run)

	data, err := EncodeFile(&f)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := EncodeFile(&f)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("profile encoding not deterministic")
	}
	g, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Epoch != f.Epoch || g.EpochTotal != f.EpochTotal || !g.Counts.Equal(&f.Counts) {
		t.Fatal("profile file did not round-trip")
	}

	if _, err := DecodeFile([]byte(`{"epoch":1,"counts":{"funcs":{"main":[5]},"total":99}}`)); err == nil {
		t.Fatal("mismatched total not rejected")
	}
	if _, err := DecodeFile([]byte(`{"epoch":1,"counts":{"funcs":{"main":[-5]},"total":-5}}`)); err == nil {
		t.Fatal("negative count not rejected")
	}
	if _, err := DecodeFile([]byte("not json")); err == nil {
		t.Fatal("garbage not rejected")
	}
}

// TestReoptimizeFromPersistedCounts: the full lifelong path — profile one
// machine, persist, bind onto a fresh decode of the module, reoptimize —
// must still find and inline the hot call site.
func TestReoptimizeFromPersistedCounts(t *testing.T) {
	src := `
static int hotwork(int x) {
	int r = x;
	int i;
	for (i = 0; i < 3; i++) r = r * 2 + i;
	return r % 1000;
}
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 500; i++) acc = (acc + hotwork(i)) % 100000;
	return acc % 251;
}
`
	c, m := runCounts(t, src)
	data, err := bytecode.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := bytecode.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	mcBefore, _ := interp.NewMachine(m2, nil)
	want, err := mcBefore.RunMain()
	if err != nil {
		t.Fatal(err)
	}

	d, err := c.Bind(m2)
	if err != nil {
		t.Fatal(err)
	}
	res := Reoptimize(m2, d, DefaultReoptOptions())
	if res.HotInlined == 0 {
		t.Fatal("persisted profile did not drive hot inlining")
	}
	if err := core.Verify(m2); err != nil {
		t.Fatalf("module invalid after reopt from persisted counts: %v", err)
	}
	mcAfter, _ := interp.NewMachine(m2, nil)
	got, err := mcAfter.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reopt from persisted counts changed result: %d vs %d", got, want)
	}
}
