package profile

import (
	"sort"

	"repro/internal/core"
	"repro/internal/passes"
)

// ReoptOptions controls the offline (idle-time) reoptimizer of §3.6: "a
// modified version of the link-time interprocedural optimizer, but with a
// greater emphasis on profile-driven and target-specific optimizations".
type ReoptOptions struct {
	// HotCallFraction: call sites in blocks whose count is at least this
	// fraction of the profile total are inlined regardless of callee size
	// (bounded by MaxCalleeSize).
	HotCallFraction float64
	// MaxCalleeSize bounds profile-guided inlining.
	MaxCalleeSize int
	// LayoutBlocks reorders each function's blocks hottest-first (entry
	// stays first), improving locality in generated code.
	LayoutBlocks bool
}

// DefaultReoptOptions returns the standard configuration.
func DefaultReoptOptions() ReoptOptions {
	return ReoptOptions{HotCallFraction: 0.01, MaxCalleeSize: 400, LayoutBlocks: true}
}

// ReoptResult reports what the reoptimizer did.
type ReoptResult struct {
	HotInlined int
	Reordered  int
	ScalarOpts int
}

// Reoptimize applies end-user-profile-driven optimization to a module.
// The caller strips instrumentation first; block identities in the profile
// survive because Strip edits blocks in place.
func Reoptimize(m *core.Module, d *Data, opts ReoptOptions) ReoptResult {
	var res ReoptResult
	if d.Total == 0 {
		return res
	}
	threshold := int64(float64(d.Total) * opts.HotCallFraction)
	if threshold < 1 {
		threshold = 1
	}

	// Profile-guided inlining: unlike the static inliner's size heuristic,
	// hot call sites justify much larger callees.
	for _, f := range append([]*core.Function(nil), m.Funcs...) {
		if f.IsDeclaration() {
			continue
		}
		for {
			site := findHotSite(f, d, threshold, opts.MaxCalleeSize)
			if site == nil {
				break
			}
			passes.InlineCall(site)
			res.HotInlined++
		}
	}

	// Clean up the inlined bodies.
	pm := passes.NewPassManager()
	pm.AddStandardPipeline()
	n, _ := pm.Run(m)
	res.ScalarOpts = n

	if opts.LayoutBlocks {
		for _, f := range m.Funcs {
			if layoutHotFirst(f, d) {
				res.Reordered++
			}
		}
	}
	return res
}

// findHotSite locates a direct call in a hot block whose callee is worth
// integrating.
func findHotSite(f *core.Function, d *Data, threshold int64, maxCallee int) *core.CallInst {
	if f.NumInstructions() > 20000 {
		return nil
	}
	var found *core.CallInst
	f.ForEachInst(func(inst core.Instruction) bool {
		call, ok := inst.(*core.CallInst)
		if !ok {
			return true
		}
		if d.Count(call.Parent()) < threshold {
			return true
		}
		callee := call.CalledFunction()
		if callee == nil || callee.IsDeclaration() || callee == f || callee.Sig.Variadic {
			return true
		}
		if callee.NumInstructions() > maxCallee {
			return true
		}
		// Skip recursive callees.
		for _, cs := range callee.Callers() {
			if cs.Parent() != nil && cs.Parent().Parent() == callee {
				return true
			}
		}
		found = call
		return false
	})
	return found
}

// layoutHotFirst reorders blocks by descending execution count, keeping
// the entry block first. Reports whether the order changed.
func layoutHotFirst(f *core.Function, d *Data) bool {
	if len(f.Blocks) < 3 {
		return false
	}
	rest := append([]*core.BasicBlock(nil), f.Blocks[1:]...)
	sort.SliceStable(rest, func(i, j int) bool { return d.Count(rest[i]) > d.Count(rest[j]) })
	changed := false
	for i, b := range rest {
		if f.Blocks[1+i] != b {
			changed = true
		}
		f.Blocks[1+i] = b
	}
	return changed
}
