package profile

import (
	"testing"
)

// The cluster merges run counts at a module's owning peer, so the merge
// algebra is what makes distribution invisible: counts accumulated from
// any interleaving of node forwards must equal a single node seeing the
// same runs. These tests pin the two layers separately — Counts.Merge is
// a commutative monoid (order never matters for the accumulated counts),
// while File.Merge's epoch bookkeeping is sequence-dependent by design
// (doubling test against the running total), so cluster and single-node
// agree when they see the same sequence — exactly what owner-forwarding
// guarantees.

func c(total ...int64) *Counts {
	out := &Counts{Funcs: map[string][]int64{"main": append([]int64(nil), total...)}}
	for _, n := range total {
		out.Total += n
	}
	return out
}

func merged(parts ...*Counts) *Counts {
	acc := &Counts{}
	for _, p := range parts {
		acc.Merge(p)
	}
	return acc
}

// TestCountsMergeCommutative: A+B == B+A, including when the operands
// cover different functions and different block-vector lengths.
func TestCountsMergeCommutative(t *testing.T) {
	a := c(10, 5, 0)
	b := &Counts{Funcs: map[string][]int64{"main": {1, 2, 3, 4}, "aux": {7}}, Total: 17}
	if !merged(a, b).Equal(merged(b, a)) {
		t.Fatalf("merge not commutative: %+v vs %+v", merged(a, b), merged(b, a))
	}
}

// TestCountsMergeAssociative: (A+B)+C == A+(B+C) for the three-node
// shape the cluster actually produces.
func TestCountsMergeAssociative(t *testing.T) {
	a := c(10, 5)
	b := c(3, 3, 3)
	bc := merged(b, c(1))
	left := merged(merged(a, b), c(1))
	right := merged(a, bc)
	if !left.Equal(right) {
		t.Fatalf("merge not associative: %+v vs %+v", left, right)
	}
}

// TestCountsMergeAllPermutations: every arrival order of three nodes'
// counts at the owner yields identical accumulated counts.
func TestCountsMergeAllPermutations(t *testing.T) {
	nodes := []*Counts{
		c(10, 5, 1),
		{Funcs: map[string][]int64{"main": {2, 2}, "helper": {9}}, Total: 13},
		c(0, 0, 7),
	}
	want := merged(nodes[0], nodes[1], nodes[2])
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		got := merged(nodes[p[0]], nodes[p[1]], nodes[p[2]])
		if !got.Equal(want) {
			t.Fatalf("permutation %v accumulated %+v, want %+v", p, got, want)
		}
	}
}

// TestFileMergeClusterEqualsSingleNode: three simulated nodes forwarding
// equal-sized runs to one owner File advance its epoch exactly as a
// single node merging the same sequence — same epochs, same bump points,
// same accumulated counts.
func TestFileMergeClusterEqualsSingleNode(t *testing.T) {
	runs := []*Counts{c(100, 50), c(100, 50), c(100, 50), c(100, 50)}

	var owner File                               // the cluster owner receiving forwarded counts
	var single File                              // a standalone node seeing the runs directly
	wantBumps := []bool{true, true, false, true} // 150, 300, 450, 600 vs doubling thresholds
	for i, r := range runs {
		ob := owner.Merge(r)
		sb := single.Merge(r)
		if ob != sb {
			t.Fatalf("run %d: owner bumped=%v, single-node bumped=%v", i, ob, sb)
		}
		if ob != wantBumps[i] {
			t.Fatalf("run %d: bumped=%v, want %v (doubling rule)", i, ob, wantBumps[i])
		}
		if owner.Epoch != single.Epoch {
			t.Fatalf("run %d: owner epoch %d != single epoch %d", i, owner.Epoch, single.Epoch)
		}
	}
	if !owner.Counts.Equal(&single.Counts) {
		t.Fatal("owner and single-node accumulated counts differ")
	}
	if owner.Epoch != 3 {
		t.Fatalf("final epoch %d, want 3", owner.Epoch)
	}
}

// TestFileMergeEpochMonotone: whatever the interleaving of forwarded
// counts, epochs only move forward and the final accumulated counts are
// permutation-independent (the epoch COUNT may differ across orders —
// the doubling test is sequence-dependent — but the evidence never is).
func TestFileMergeEpochMonotone(t *testing.T) {
	nodes := []*Counts{c(10), c(1), c(1)}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	want := merged(nodes[0], nodes[1], nodes[2])
	for _, p := range perms {
		var f File
		last := int64(0)
		for _, i := range p {
			f.Merge(nodes[i])
			if f.Epoch < last {
				t.Fatalf("permutation %v: epoch went backwards (%d -> %d)", p, last, f.Epoch)
			}
			last = f.Epoch
		}
		if !f.Counts.Equal(want) {
			t.Fatalf("permutation %v: accumulated %+v, want %+v", p, f.Counts, want)
		}
		if f.Epoch < 1 {
			t.Fatalf("permutation %v: no epoch ever advanced", p)
		}
	}
}
