// Package profile implements the paper's runtime path-profiling and
// reoptimization strategy (§3.5, §3.6): light-weight instrumentation
// inserted into the code identifies frequently executed regions; hot loop
// regions are detected at run time; the most frequent path through a hot
// region is extracted as a trace; and an offline ("idle-time") reoptimizer
// uses the end-user profile for aggressive profile-driven transformation —
// here, profile-guided inlining of hot call sites and hot-first code
// layout. (The paper's own evaluation defers runtime-optimizer results,
// §3.5: "that work is outside the scope of this paper"; this package
// implements the strategy it describes.)
package profile

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interp"
)

// CounterGlobalName is the symbol holding the profile counters.
const CounterGlobalName = "__prof_counters"

// Instrumentation records what Instrument inserted so counts can be read
// back and the probes stripped.
type Instrumentation struct {
	M        *core.Module
	Counters *core.GlobalVariable
	// blocks[i] is the block whose execution count lives in slot i.
	blocks []*core.BasicBlock
	// inserted maps each block to its three probe instructions.
	inserted map[*core.BasicBlock][]core.Instruction
}

// Instrument inserts a counter increment at the top of every basic block
// of every defined function — the "light-weight instrumentation to detect
// frequently executed code regions" of §3.4. Returns the handle used to
// read and strip the probes.
func Instrument(m *core.Module) *Instrumentation {
	ins := &Instrumentation{M: m, inserted: map[*core.BasicBlock][]core.Instruction{}}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			ins.blocks = append(ins.blocks, b)
		}
	}
	n := len(ins.blocks)
	if n == 0 {
		return ins
	}
	arrTy := core.NewArray(core.LongType, n)
	g := core.NewGlobal(m.UniqueSymbol(CounterGlobalName), arrTy, core.NewZero(arrTy))
	g.Linkage = core.InternalLinkage
	m.AddGlobal(g)
	ins.Counters = g

	for idx, b := range ins.blocks {
		gep := core.NewGEP(g, core.NewInt(core.LongType, 0), core.NewInt(core.LongType, int64(idx)))
		ld := core.NewLoad(gep)
		add := core.NewBinary(core.OpAdd, ld, core.NewInt(core.LongType, 1))
		st := core.NewStore(add, gep)
		pos := b.FirstNonPhi()
		b.InsertAt(pos, gep)
		b.InsertAt(pos+1, ld)
		b.InsertAt(pos+2, add)
		b.InsertAt(pos+3, st)
		ins.inserted[b] = []core.Instruction{gep, ld, add, st}
	}
	return ins
}

// Data is an execution profile: per-block counts from an end-user run.
type Data struct {
	Counts map[*core.BasicBlock]int64
	Total  int64
}

// ReadCounts extracts the counter values from a machine that ran the
// instrumented module.
func (ins *Instrumentation) ReadCounts(mc *interp.Machine) (*Data, error) {
	d := &Data{Counts: map[*core.BasicBlock]int64{}}
	if ins.Counters == nil {
		return d, nil
	}
	base := mc.GlobalAddr(ins.Counters)
	for i, b := range ins.blocks {
		w, err := mc.ReadWord(base + uint64(8*i))
		if err != nil {
			return nil, fmt.Errorf("profile: reading counter %d: %w", i, err)
		}
		d.Counts[b] = int64(w)
		d.Total += int64(w)
	}
	return d, nil
}

// Strip removes the probes, leaving the module as before instrumentation.
func (ins *Instrumentation) Strip() {
	for b, probes := range ins.inserted {
		// Delete in reverse: store, add, load, gep.
		for i := len(probes) - 1; i >= 0; i-- {
			b.Erase(probes[i])
		}
	}
	ins.inserted = map[*core.BasicBlock][]core.Instruction{}
	if ins.Counters != nil {
		ins.M.RemoveGlobal(ins.Counters)
		ins.Counters = nil
	}
}

// Count returns the execution count of b (0 if never executed or unknown).
func (d *Data) Count(b *core.BasicBlock) int64 { return d.Counts[b] }

// HotRegion is a frequently-executed loop region.
type HotRegion struct {
	Fn   *core.Function
	Loop *analysis.Loop
	// HeaderCount is the loop header's execution count.
	HeaderCount int64
	// Coverage is the fraction of all executed blocks spent in the region.
	Coverage float64
}

// HotRegions identifies loops whose bodies account for at least minCoverage
// of total execution, outermost first, hottest first — the runtime
// optimizer's region-detection step.
func (d *Data) HotRegions(m *core.Module, minCoverage float64) []HotRegion {
	var out []HotRegion
	if d.Total == 0 {
		return out
	}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		dt := analysis.NewDomTree(f)
		li := analysis.NewLoopInfo(f, dt)
		for _, loop := range li.All() {
			var inLoop int64
			for b := range loop.Blocks {
				inLoop += d.Count(b)
			}
			cov := float64(inLoop) / float64(d.Total)
			if cov >= minCoverage {
				out = append(out, HotRegion{Fn: f, Loop: loop,
					HeaderCount: d.Count(loop.Header), Coverage: cov})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Coverage > out[j].Coverage })
	return out
}

// Trace is the most frequently executed path through a hot region,
// beginning at the loop header and following the hottest successor edge
// until the path leaves the loop or closes the back edge (§3.5's
// "frequently-executed paths within that region").
type Trace struct {
	Region HotRegion
	Blocks []*core.BasicBlock
	// Complete is true when the path returns to the header (a whole-loop
	// trace rather than a path that exits the loop).
	Complete bool
	// Coverage is the fraction of the region's execution on the trace.
	Coverage float64
}

// FormTrace extracts the hot path through a region.
func (d *Data) FormTrace(r HotRegion) *Trace {
	tr := &Trace{Region: r}
	seen := map[*core.BasicBlock]bool{}
	cur := r.Loop.Header
	var onTrace int64
	var inRegion int64
	for b := range r.Loop.Blocks {
		inRegion += d.Count(b)
	}
	for {
		tr.Blocks = append(tr.Blocks, cur)
		seen[cur] = true
		onTrace += d.Count(cur)
		// Pick the hottest successor.
		var next *core.BasicBlock
		var best int64 = -1
		for _, s := range cur.Succs() {
			if d.Count(s) > best {
				best = d.Count(s)
				next = s
			}
		}
		if next == nil || !r.Loop.Blocks[next] {
			break // path exits the region
		}
		if next == r.Loop.Header {
			tr.Complete = true
			break
		}
		if seen[next] {
			break // inner cycle; stop rather than loop forever
		}
		cur = next
	}
	if inRegion > 0 {
		tr.Coverage = float64(onTrace) / float64(inRegion)
	}
	return tr
}

// String renders the trace for reports.
func (t *Trace) String() string {
	s := fmt.Sprintf("trace in %%%s (%.0f%% of region):", t.Region.Fn.Name(), 100*t.Coverage)
	for _, b := range t.Blocks {
		s += " %" + b.Name()
	}
	if t.Complete {
		s += " (closes back edge)"
	}
	return s
}
