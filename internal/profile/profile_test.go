package profile

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/passes"
)

const loopProg = `
static int hotwork(int x) { return x * 3 + 1; }
static int coldwork(int x) { return x - 2; }

int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 1000; i++) {
		if (i % 100 == 0) {
			acc += coldwork(i);
		} else {
			acc += hotwork(i);
		}
	}
	return acc % 251;
}
`

func build(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := minic.Compile("prof", src)
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewPassManager()
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// runProfiled instruments, runs, reads counts, and strips.
func runProfiled(t *testing.T, m *core.Module) (*Data, int64) {
	t.Helper()
	ins := Instrument(m)
	if err := core.Verify(m); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := mc.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	d, err := ins.ReadCounts(mc)
	if err != nil {
		t.Fatal(err)
	}
	ins.Strip()
	if err := core.Verify(m); err != nil {
		t.Fatalf("module invalid after strip: %v", err)
	}
	return d, ret
}

func TestInstrumentationCountsBlocks(t *testing.T) {
	m := build(t, loopProg)
	d, _ := runProfiled(t, m)
	if d.Total == 0 {
		t.Fatal("no counts collected")
	}
	// The loop body must be counted ~1000 times; find the hottest block.
	var hottest int64
	for _, c := range d.Counts {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < 990 || hottest > 1010 {
		t.Fatalf("hottest block count = %d, want ~1000", hottest)
	}
}

func TestInstrumentationStripRestoresBehavior(t *testing.T) {
	m1 := build(t, loopProg)
	m2 := build(t, loopProg)
	mc1, _ := interp.NewMachine(m1, nil)
	want, err := mc1.RunMain()
	if err != nil {
		t.Fatal(err)
	}

	_, gotDuring := runProfiled(t, m2) // instrumented run
	if gotDuring != want {
		t.Fatalf("instrumentation changed behavior: %d vs %d", gotDuring, want)
	}
	mc2, _ := interp.NewMachine(m2, nil)
	gotAfter, err := mc2.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if gotAfter != want {
		t.Fatalf("strip left residue: %d vs %d", gotAfter, want)
	}
	if m2.Global(CounterGlobalName) != nil {
		t.Fatal("counter global not removed")
	}
}

func TestHotRegionDetection(t *testing.T) {
	m := build(t, loopProg)
	d, _ := runProfiled(t, m)
	regions := d.HotRegions(m, 0.5)
	if len(regions) == 0 {
		t.Fatal("main loop not detected as hot region")
	}
	r := regions[0]
	if r.Fn.Name() != "main" {
		t.Fatalf("hot region in %%%s, want main", r.Fn.Name())
	}
	if r.Coverage < 0.5 {
		t.Fatalf("coverage = %f", r.Coverage)
	}
	if r.HeaderCount < 900 {
		t.Fatalf("header count = %d", r.HeaderCount)
	}
}

func TestTraceFormationFollowsHotPath(t *testing.T) {
	// A loop with a 99%-biased branch: the trace must follow the hot arm.
	m, err := asm.ParseModule("t", `
int %main() {
entry:
	br label %header
header:
	%i = phi int [ 0, %entry ], [ %i2, %latch ]
	%acc = phi int [ 0, %entry ], [ %acc2, %latch ]
	%r = rem int %i, 100
	%cold = seteq int %r, 0
	br bool %cold, label %coldpath, label %hotpath
coldpath:
	%ca = add int %acc, 100
	br label %latch
hotpath:
	%ha = add int %acc, 1
	br label %latch
latch:
	%acc2 = phi int [ %ca, %coldpath ], [ %ha, %hotpath ]
	%i2 = add int %i, 1
	%c = setlt int %i2, 1000
	br bool %c, label %header, label %exit
exit:
	ret int %acc2
}
`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := runProfiled(t, m)
	regions := d.HotRegions(m, 0.5)
	if len(regions) == 0 {
		t.Fatal("no hot region")
	}
	tr := d.FormTrace(regions[0])
	if !tr.Complete {
		t.Fatalf("trace did not close the loop: %s", tr)
	}
	names := map[string]bool{}
	for _, b := range tr.Blocks {
		names[b.Name()] = true
	}
	if !names["hotpath"] || names["coldpath"] {
		t.Fatalf("trace took the wrong arm: %s", tr)
	}
	if tr.Coverage < 0.7 {
		t.Fatalf("trace coverage = %f", tr.Coverage)
	}
}

func TestReoptimizeInlinesHotSites(t *testing.T) {
	// hotwork is called ~990 times from the loop; the reoptimizer must
	// integrate it even though static inlining thresholds might not.
	src := `
static int hotwork(int x) {
	int r = x;
	int i;
	for (i = 0; i < 3; i++) r = r * 2 + i;
	return r % 1000;
}
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 500; i++) acc = (acc + hotwork(i)) % 100000;
	return acc % 251;
}
`
	m := build(t, src)
	mcBefore, _ := interp.NewMachine(m, nil)
	want, err := mcBefore.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	stepsBefore := mcBefore.Steps

	d, _ := runProfiled(t, m)
	res := Reoptimize(m, d, DefaultReoptOptions())
	if res.HotInlined == 0 {
		t.Fatal("reoptimizer inlined nothing")
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("module invalid after reopt: %v", err)
	}
	mcAfter, _ := interp.NewMachine(m, nil)
	got, err := mcAfter.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reoptimization changed result: %d vs %d", got, want)
	}
	if mcAfter.Steps >= stepsBefore {
		t.Errorf("reoptimized program not faster: %d vs %d steps", mcAfter.Steps, stepsBefore)
	}
}

func TestReoptimizeLayout(t *testing.T) {
	m := build(t, loopProg)
	d, _ := runProfiled(t, m)
	opts := DefaultReoptOptions()
	opts.HotCallFraction = 2.0 // disable inlining; test layout alone
	res := Reoptimize(m, d, opts)
	if res.Reordered == 0 {
		t.Error("no function had blocks reordered")
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("layout broke module: %v", err)
	}
	mc, _ := interp.NewMachine(m, nil)
	if _, err := mc.RunMain(); err != nil {
		t.Fatalf("run after layout: %v", err)
	}
}

func TestProfileOnEmptyModule(t *testing.T) {
	m := core.NewModule("empty")
	ins := Instrument(m)
	mc, _ := interp.NewMachine(m, nil)
	d, err := ins.ReadCounts(mc)
	if err != nil || d.Total != 0 {
		t.Fatalf("empty module: %v %d", err, d.Total)
	}
	ins.Strip()
	if len(d.HotRegions(m, 0.1)) != 0 {
		t.Fatal("hot regions in empty module")
	}
}
