// Package tooling holds the small amount of file I/O logic shared by the
// command-line tools: loading a module from either textual assembly or
// bytecode (detected by magic), and saving in either form.
package tooling

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/passes"
)

// MaxInputSize caps how much LoadModule will read from one file. Modules
// are parsed fully in memory, so an oversized (or hostile) input would
// otherwise exhaust it; tools that really need more can raise this.
var MaxInputSize int64 = 64 << 20

// LoadModule reads path and parses it as bytecode (if it starts with the
// magic) or assembly text. Errors identify the file: decode failures carry
// the byte offset, parse failures the source line.
func LoadModule(path string) (*core.Module, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() > MaxInputSize {
		return nil, fmt.Errorf("%s: input is %d bytes, above the %d-byte limit", path, st.Size(), MaxInputSize)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, bytecode.Magic[:]) {
		m, err := bytecode.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return m, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	m, err := asm.ParseModule(name, string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// SaveModule writes m to path as bytecode (binary=true) or assembly text.
func SaveModule(path string, m *core.Module, binary bool) error {
	var data []byte
	if binary {
		var err error
		data, err = bytecode.Encode(m)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else {
		data = []byte(m.String())
	}
	if path == "-" || path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// PassByName constructs a pass from its command-line name.
func PassByName(name string) (passes.ModulePass, bool) {
	switch name {
	case "mem2reg":
		return passes.AdaptFunctionPass(passes.NewMem2Reg()), true
	case "sroa":
		return passes.AdaptFunctionPass(passes.NewSROA()), true
	case "instcombine":
		return passes.AdaptFunctionPass(passes.NewInstCombine()), true
	case "sccp":
		return passes.AdaptFunctionPass(passes.NewSCCP()), true
	case "adce":
		return passes.AdaptFunctionPass(passes.NewADCE()), true
	case "cse":
		return passes.AdaptFunctionPass(passes.NewCSE()), true
	case "licm":
		return passes.AdaptFunctionPass(passes.NewLICM()), true
	case "simplifycfg":
		return passes.AdaptFunctionPass(passes.NewSimplifyCFG()), true
	case "inline":
		return passes.NewInline(passes.DefaultInlineThreshold), true
	case "dge":
		return passes.NewDeadGlobalElim(), true
	case "dae":
		return passes.NewDeadArgElim(), true
	case "ipcp":
		return passes.NewIPConstProp(), true
	case "deadtypeelim":
		return passes.NewDeadTypeElim(), true
	case "pruneeh":
		return passes.NewPruneEH(), true
	case "gloadelim":
		return passes.NewGlobalLoadElim(), true
	case "fieldreorder":
		return passes.NewFieldReorder(), true
	case "boundscheck":
		return passes.NewBoundsCheck(), true
	case "internalize":
		return passes.NewInternalize(), true
	case "check":
		return checker.NewPass(nil), true
	}
	return nil, false
}

// Fatalf prints an error and exits with status 1.
func Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// ExitOnPanic is the tools' last-resort boundary: deferred first thing in
// main, it turns any panic that slipped past the library-level recover
// boundaries into a one-line diagnostic and exit status 2, so no input can
// make a tool dump a Go stack trace.
func ExitOnPanic(tool string) {
	if r := recover(); r != nil {
		fmt.Fprintf(os.Stderr, "%s: internal error: %v\n", tool, r)
		os.Exit(2)
	}
}
