// Package tooling holds the small amount of file I/O logic shared by the
// command-line tools: loading a module from either textual assembly or
// bytecode (detected by magic), and saving in either form.
package tooling

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/passes"
)

// MaxInputSize caps how much LoadModule will read from one file. Modules
// are parsed fully in memory, so an oversized (or hostile) input would
// otherwise exhaust it; tools that really need more can raise this.
var MaxInputSize int64 = 64 << 20

// LoadModule reads path and parses it as bytecode (if it starts with the
// magic) or assembly text. Errors identify the file: decode failures carry
// the byte offset, parse failures the source line.
func LoadModule(path string) (*core.Module, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() > MaxInputSize {
		return nil, fmt.Errorf("%s: input is %d bytes, above the %d-byte limit", path, st.Size(), MaxInputSize)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	m, err := LoadModuleBytes(name, data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// LoadModuleBytes parses an in-memory module image, bytecode or assembly
// detected by magic — the same hardened path LoadModule uses, for callers
// (the lifelong daemon, tests) whose input never touches a file.
func LoadModuleBytes(name string, data []byte) (*core.Module, error) {
	if bytes.HasPrefix(data, bytecode.Magic[:]) {
		return bytecode.Decode(data)
	}
	return asm.ParseModule(name, string(data))
}

// SaveModule writes m to path as bytecode (binary=true) or assembly text.
// The write is crash-safe: an interrupted save can never leave a truncated
// module behind (see AtomicWriteFile).
func SaveModule(path string, m *core.Module, binary bool) error {
	var data []byte
	if binary {
		var err error
		data, err = bytecode.Encode(m)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else {
		data = []byte(m.String())
	}
	if path == "-" || path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return AtomicWriteFile(path, data, 0o644)
}

// AtomicWriteFile writes data to path by way of a temporary file in the
// destination directory followed by a rename, so a reader (or a tool
// killed mid-write) can only ever observe the old contents or the new —
// never a truncated hybrid. The temp file is created in the destination
// directory because rename is only atomic within one filesystem.
func AtomicWriteFile(path string, data []byte, mode os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// On any failure, remove the temp file so interrupted writes don't
	// accumulate debris next to the target.
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmpName, mode)
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%s: %w", path, werr)
	}
	return nil
}

// PassByName constructs a pass from its command-line name.
func PassByName(name string) (passes.ModulePass, bool) {
	switch name {
	case "mem2reg":
		return passes.AdaptFunctionPass(passes.NewMem2Reg()), true
	case "sroa":
		return passes.AdaptFunctionPass(passes.NewSROA()), true
	case "instcombine":
		return passes.AdaptFunctionPass(passes.NewInstCombine()), true
	case "sccp":
		return passes.AdaptFunctionPass(passes.NewSCCP()), true
	case "adce":
		return passes.AdaptFunctionPass(passes.NewADCE()), true
	case "cse":
		return passes.AdaptFunctionPass(passes.NewCSE()), true
	case "licm":
		return passes.AdaptFunctionPass(passes.NewLICM()), true
	case "dse":
		return passes.AdaptFunctionPass(passes.NewDSE()), true
	case "simplifycfg":
		return passes.AdaptFunctionPass(passes.NewSimplifyCFG()), true
	case "inline":
		return passes.NewInline(passes.DefaultInlineThreshold), true
	case "dge":
		return passes.NewDeadGlobalElim(), true
	case "dae":
		return passes.NewDeadArgElim(), true
	case "ipcp":
		return passes.NewIPConstProp(), true
	case "deadtypeelim":
		return passes.NewDeadTypeElim(), true
	case "pruneeh":
		return passes.NewPruneEH(), true
	case "gloadelim":
		return passes.NewGlobalLoadElim(), true
	case "fieldreorder":
		return passes.NewFieldReorder(), true
	case "boundscheck":
		return passes.NewBoundsCheck(), true
	case "internalize":
		return passes.NewInternalize(), true
	case "check":
		return checker.NewPass(nil), true
	}
	// The deliberately miscompiling corpus passes exist to exercise the
	// translation-validation oracle; they are reachable only behind an
	// explicit environment gate so no production pipeline spec can name one
	// by accident.
	if os.Getenv("LLVM_BROKEN_PASSES") == "1" {
		return passes.BrokenPassByName(name)
	}
	return nil, false
}

// AddPipelineSpec populates pm from a pipeline spec string: "std" (the
// standard scalar clean-up), "linktime" (the interprocedural link-time
// pipeline), or a comma-separated list of pass names accepted by
// PassByName. Specs are the serialization of a pipeline the lifelong
// store keys optimized artifacts by, so the mapping must stay stable.
func AddPipelineSpec(pm *passes.PassManager, spec string) error {
	switch spec {
	case "std":
		pm.AddStandardPipeline()
		return nil
	case "linktime":
		pm.AddLinkTimePipeline()
		return nil
	}
	for _, name := range strings.Split(spec, ",") {
		p, ok := PassByName(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("unknown pass %q in pipeline spec %q", name, spec)
		}
		pm.Add(p)
	}
	return nil
}

// Fatalf prints an error and exits with status 1.
func Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// ExitOnPanic is the tools' last-resort boundary: deferred first thing in
// main, it turns any panic that slipped past the library-level recover
// boundaries into a one-line diagnostic and exit status 2, so no input can
// make a tool dump a Go stack trace.
func ExitOnPanic(tool string) {
	if r := recover(); r != nil {
		fmt.Fprintf(os.Stderr, "%s: internal error: %v\n", tool, r)
		os.Exit(2)
	}
}
