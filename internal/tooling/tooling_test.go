package tooling

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
)

const src = `
int %f(int %x) {
entry:
	%y = add int %x, 1
	ret int %y
}
`

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ll := filepath.Join(dir, "m.ll")
	if err := os.WriteFile(ll, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(ll)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Save as bytecode, reload (magic detection), compare prints.
	bc := filepath.Join(dir, "m.bc")
	if err := SaveModule(bc, m, true); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModule(bc)
	if err != nil {
		t.Fatal(err)
	}
	m2.Name = m.Name // ModuleID tracks the file name
	if m.String() != m2.String() {
		t.Fatal("text/bytecode load mismatch")
	}
	// Save as text, reload.
	ll2 := filepath.Join(dir, "m2.ll")
	if err := SaveModule(ll2, m2, false); err != nil {
		t.Fatal(err)
	}
	m3, err := LoadModule(ll2)
	if err != nil {
		t.Fatal(err)
	}
	m3.Name = m.Name
	if m.String() != m3.String() {
		t.Fatal("text round trip mismatch")
	}
}

func TestPassByNameCoversPipeline(t *testing.T) {
	names := []string{"mem2reg", "sroa", "instcombine", "sccp", "adce", "cse",
		"licm", "simplifycfg", "inline", "dge", "dae", "ipcp", "deadtypeelim",
		"pruneeh", "gloadelim", "fieldreorder", "boundscheck", "internalize"}
	for _, n := range names {
		p, ok := PassByName(n)
		if !ok {
			t.Errorf("pass %q not registered", n)
			continue
		}
		if p.Name() == "" {
			t.Errorf("pass %q has empty name", n)
		}
	}
	if _, ok := PassByName("nosuchpass"); ok {
		t.Error("unknown pass accepted")
	}
}

func TestLoadModuleErrorsCarryPathAndPosition(t *testing.T) {
	dir := t.TempDir()

	// Malformed assembly: error must name the file and the line.
	bad := filepath.Join(dir, "bad.ll")
	if err := os.WriteFile(bad, []byte("int %f(int %x) {\nentry:\n\t%y = bogus int %x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadModule(bad)
	if err == nil {
		t.Fatal("malformed assembly accepted")
	}
	if !strings.Contains(err.Error(), "bad.ll") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should carry path and line: %v", err)
	}

	// Malformed bytecode: error must name the file and the byte offset.
	badBC := filepath.Join(dir, "bad.bc")
	if err := os.WriteFile(badBC, append(append([]byte(nil), bytecode.Magic[:]...), 0x01, 0xFF, 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadModule(badBC)
	if err == nil {
		t.Fatal("malformed bytecode accepted")
	}
	if !strings.Contains(err.Error(), "bad.bc") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error should carry path and offset: %v", err)
	}
}

func TestLoadModuleSizeLimit(t *testing.T) {
	dir := t.TempDir()
	big := filepath.Join(dir, "big.ll")
	if err := os.WriteFile(big, []byte("; padding\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := MaxInputSize
	MaxInputSize = 4
	defer func() { MaxInputSize = old }()
	_, err := LoadModule(big)
	if err == nil {
		t.Fatal("oversized input accepted")
	}
	if !strings.Contains(err.Error(), "big.ll") || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("limit error should carry path: %v", err)
	}
}
