package tooling

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

const src = `
int %f(int %x) {
entry:
	%y = add int %x, 1
	ret int %y
}
`

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ll := filepath.Join(dir, "m.ll")
	if err := os.WriteFile(ll, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(ll)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Save as bytecode, reload (magic detection), compare prints.
	bc := filepath.Join(dir, "m.bc")
	if err := SaveModule(bc, m, true); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModule(bc)
	if err != nil {
		t.Fatal(err)
	}
	m2.Name = m.Name // ModuleID tracks the file name
	if m.String() != m2.String() {
		t.Fatal("text/bytecode load mismatch")
	}
	// Save as text, reload.
	ll2 := filepath.Join(dir, "m2.ll")
	if err := SaveModule(ll2, m2, false); err != nil {
		t.Fatal(err)
	}
	m3, err := LoadModule(ll2)
	if err != nil {
		t.Fatal(err)
	}
	m3.Name = m.Name
	if m.String() != m3.String() {
		t.Fatal("text round trip mismatch")
	}
}

func TestPassByNameCoversPipeline(t *testing.T) {
	names := []string{"mem2reg", "sroa", "instcombine", "sccp", "adce", "cse",
		"licm", "simplifycfg", "inline", "dge", "dae", "ipcp", "deadtypeelim",
		"pruneeh", "gloadelim", "fieldreorder", "boundscheck", "internalize"}
	for _, n := range names {
		p, ok := PassByName(n)
		if !ok {
			t.Errorf("pass %q not registered", n)
			continue
		}
		if p.Name() == "" {
			t.Errorf("pass %q has empty name", n)
		}
	}
	if _, ok := PassByName("nosuchpass"); ok {
		t.Error("unknown pass accepted")
	}
}
