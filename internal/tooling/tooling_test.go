package tooling

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/passes"
)

const src = `
int %f(int %x) {
entry:
	%y = add int %x, 1
	ret int %y
}
`

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ll := filepath.Join(dir, "m.ll")
	if err := os.WriteFile(ll, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(ll)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Save as bytecode, reload (magic detection), compare prints.
	bc := filepath.Join(dir, "m.bc")
	if err := SaveModule(bc, m, true); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModule(bc)
	if err != nil {
		t.Fatal(err)
	}
	m2.Name = m.Name // ModuleID tracks the file name
	if m.String() != m2.String() {
		t.Fatal("text/bytecode load mismatch")
	}
	// Save as text, reload.
	ll2 := filepath.Join(dir, "m2.ll")
	if err := SaveModule(ll2, m2, false); err != nil {
		t.Fatal(err)
	}
	m3, err := LoadModule(ll2)
	if err != nil {
		t.Fatal(err)
	}
	m3.Name = m.Name
	if m.String() != m3.String() {
		t.Fatal("text round trip mismatch")
	}
}

func TestPassByNameCoversPipeline(t *testing.T) {
	names := []string{"mem2reg", "sroa", "instcombine", "sccp", "adce", "cse",
		"licm", "simplifycfg", "inline", "dge", "dae", "ipcp", "deadtypeelim",
		"pruneeh", "gloadelim", "fieldreorder", "boundscheck", "internalize"}
	for _, n := range names {
		p, ok := PassByName(n)
		if !ok {
			t.Errorf("pass %q not registered", n)
			continue
		}
		if p.Name() == "" {
			t.Errorf("pass %q has empty name", n)
		}
	}
	if _, ok := PassByName("nosuchpass"); ok {
		t.Error("unknown pass accepted")
	}
}

func TestLoadModuleErrorsCarryPathAndPosition(t *testing.T) {
	dir := t.TempDir()

	// Malformed assembly: error must name the file and the line.
	bad := filepath.Join(dir, "bad.ll")
	if err := os.WriteFile(bad, []byte("int %f(int %x) {\nentry:\n\t%y = bogus int %x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadModule(bad)
	if err == nil {
		t.Fatal("malformed assembly accepted")
	}
	if !strings.Contains(err.Error(), "bad.ll") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should carry path and line: %v", err)
	}

	// Malformed bytecode: error must name the file and the byte offset.
	badBC := filepath.Join(dir, "bad.bc")
	if err := os.WriteFile(badBC, append(append([]byte(nil), bytecode.Magic[:]...), 0x01, 0xFF, 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadModule(badBC)
	if err == nil {
		t.Fatal("malformed bytecode accepted")
	}
	if !strings.Contains(err.Error(), "bad.bc") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error should carry path and offset: %v", err)
	}
}

func TestSaveModuleAtomic(t *testing.T) {
	dir := t.TempDir()
	m, err := LoadModuleBytes("m", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "out.bc")

	// Seed the destination with old content, overwrite, and confirm the
	// directory holds exactly the final file — no temp debris — and that
	// the content is the complete new module.
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveModule(path, m, true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.bc" {
		t.Fatalf("directory not clean after save: %v", entries)
	}
	m2, err := LoadModule(path)
	if err != nil {
		t.Fatalf("saved module unreadable: %v", err)
	}
	m2.Name = m.Name
	if m.String() != m2.String() {
		t.Fatal("atomic save corrupted module")
	}

	// A failing write (unencodable target directory) must not leave temp
	// files behind either.
	if err := AtomicWriteFile(filepath.Join(dir, "no", "such", "dir", "x"), []byte("d"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("failed write left debris: %v", entries)
	}
}

func TestAddPipelineSpec(t *testing.T) {
	for _, spec := range []string{"std", "linktime", "mem2reg,dge", "check"} {
		pm := passes.NewPassManager()
		if err := AddPipelineSpec(pm, spec); err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
			continue
		}
		if pm.Spec() == "" {
			t.Errorf("spec %q produced an empty pipeline", spec)
		}
	}
	pm := passes.NewPassManager()
	if err := AddPipelineSpec(pm, "mem2reg,nosuchpass"); err == nil {
		t.Error("unknown pass in spec accepted")
	}
	// The std spec's canonical Spec string is what artifact cache keys
	// embed; pin it so a silent pipeline change invalidates consciously.
	std := passes.NewPassManager()
	std.AddStandardPipeline()
	if got := std.Spec(); got != "sroa,mem2reg,instcombine,sccp,cse,licm,dse,adce,simplifycfg" {
		t.Errorf("standard pipeline spec changed: %q", got)
	}
}

func TestLoadModuleSizeLimit(t *testing.T) {
	dir := t.TempDir()
	big := filepath.Join(dir, "big.ll")
	if err := os.WriteFile(big, []byte("; padding\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := MaxInputSize
	MaxInputSize = 4
	defer func() { MaxInputSize = old }()
	_, err := LoadModule(big)
	if err == nil {
		t.Fatal("oversized input accepted")
	}
	if !strings.Contains(err.Error(), "big.ll") || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("limit error should carry path: %v", err)
	}
}
