package bytecode

import (
	"bytes"
	"compress/flate"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

// roundTrip encodes m, decodes the bytes, and checks the decoded module
// verifies and prints identically to the original.
// mustEnc encodes m, failing the test on error.
func mustEnc(t testing.TB, m *core.Module) []byte {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// mustEncStripped is mustEnc without local symbol names.
func mustEncStripped(t testing.TB, m *core.Module) []byte {
	t.Helper()
	data, err := EncodeStripped(m)
	if err != nil {
		t.Fatalf("encode stripped: %v", err)
	}
	return data
}

func roundTrip(t *testing.T, m *core.Module) *core.Module {
	t.Helper()
	data := mustEnc(t, m)
	m2, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := core.Verify(m2); err != nil {
		t.Fatalf("decoded module invalid: %v", err)
	}
	want, got := m.String(), m2.String()
	if want != got {
		t.Fatalf("round trip mismatch:\n--- original ---\n%s\n--- decoded ---\n%s", want, got)
	}
	return m2
}

func parseSrc(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("bctest", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

const loopSrc = `
int %sum(int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%s = phi int [ 0, %entry ], [ %s2, %loop ]
	%s2 = add int %s, %i
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %s2
}
`

func TestRoundTripLoop(t *testing.T) {
	roundTrip(t, parseSrc(t, loopSrc))
}

func TestRoundTripFullFeatures(t *testing.T) {
	src := `
%pair = type { int, float }
%list = type { int, %list* }
%counter = global int 0
%table = internal constant [3 x int] [ int 1, int 2, int 3 ]
%str = internal constant [6 x sbyte] c"hello\00"
%strp = global sbyte* getelementptr ([6 x sbyte]* %str, long 0, long 0)
%pval = global %pair { int 4, float 2.5 }
%ext = external global double

declare int %printf(sbyte*, ...)
declare void %mayThrow()

internal int %helper(int %x, float %y) {
entry:
	%c = cast float %y to int
	%z = add int %x, %c
	ret int %z
}

int %main() {
entry:
	%l = malloc %list
	%hd = getelementptr %list* %l, long 0, ubyte 0
	store int 10, int* %hd
	%buf = alloca [16 x sbyte]
	%s = getelementptr [6 x sbyte]* %str, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %s, int 42)
	%h = call int %helper(int %r, float 1.5)
	invoke void %mayThrow() to label %ok unwind to label %ex
ok:
	switch int %h, label %done [
		int 0, label %zero ]
zero:
	free %list* %l
	br label %done
done:
	%p = phi int [ %h, %ok ], [ 0, %zero ]
	ret int %p
ex:
	unwind
}
`
	m := parseSrc(t, src)
	roundTrip(t, m)
}

func TestRoundTripVarArgsAndVAArg(t *testing.T) {
	roundTrip(t, parseSrc(t, `
int %va(int %n, ...) {
entry:
	%ap = alloca sbyte*
	%v = vaarg sbyte** %ap, int
	%w = add int %v, %n
	ret int %w
}
`))
}

func TestRoundTripShifts(t *testing.T) {
	roundTrip(t, parseSrc(t, `
ulong %sh(ulong %x) {
entry:
	%a = shl ulong %x, ubyte 3
	%b = shr ulong %a, ubyte 1
	ret ulong %b
}
`))
}

func TestRoundTripRecursiveTypes(t *testing.T) {
	roundTrip(t, parseSrc(t, `
%list = type { int, %list* }

%list* %next(%list* %l) {
entry:
	%p = getelementptr %list* %l, long 0, ubyte 1
	%n = load %list** %p
	ret %list* %n
}
`))
}

func TestCompactEncodingDensity(t *testing.T) {
	// The straight-line arithmetic in this function should encode almost
	// entirely in single 32-bit words: the per-instruction cost must stay
	// close to 4 bytes (the paper's "most instructions require a single
	// 32-bit word", §4.1.3).
	src := `
int %math(int %a, int %b) {
entry:
	%t0 = add int %a, %b
	%t1 = sub int %t0, %a
	%t2 = mul int %t1, %b
	%t3 = div int %t2, %a
	%t4 = rem int %t3, %b
	%t5 = and int %t4, %a
	%t6 = or int %t5, %b
	%t7 = xor int %t6, %a
	%t8 = add int %t7, %t0
	%t9 = add int %t8, %t1
	%t10 = add int %t9, %t2
	%t11 = add int %t10, %t3
	ret int %t11
}
`
	m := parseSrc(t, src)
	stripped := mustEncStripped(t, m)
	full := mustEnc(t, m)
	if len(full) <= len(stripped) {
		t.Errorf("symbol table should add size: full=%d stripped=%d", len(full), len(stripped))
	}
	// 13 instructions; allow generous fixed overhead for header/types.
	perInst := float64(len(stripped)-40) / 13
	if perInst > 6.0 {
		t.Errorf("per-instruction size %.1f bytes; compact form not effective (total %d)", perInst, len(stripped))
	}
	roundTrip(t, m)
}

func TestStrippedRoundTripSemantics(t *testing.T) {
	m := parseSrc(t, loopSrc)
	data := mustEncStripped(t, m)
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m2); err != nil {
		t.Fatalf("stripped module invalid: %v", err)
	}
	f := m2.Func("sum")
	if f == nil || f.NumInstructions() != 8 || len(f.Blocks) != 3 {
		t.Fatal("stripped module structure wrong")
	}
	// Local names are gone.
	if f.Blocks[1].Phis()[0].Name() != "" {
		t.Error("stripped module retains local names")
	}
}

func TestDecodeErrors(t *testing.T) {
	m := parseSrc(t, loopSrc)
	data := mustEnc(t, m)

	if _, err := Decode([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(data[:4]); err == nil {
		t.Error("truncated header accepted")
	}
	// Truncations anywhere must error, never panic.
	for cut := 5; cut < len(data); cut += 7 {
		if _, err := Decode(data[:cut]); err == nil {
			// Some prefixes may decode if trailing data is optional; the
			// full module must still be recoverable from the whole image.
			if _, err2 := Decode(data); err2 != nil {
				t.Fatalf("full image broken: %v", err2)
			}
		}
	}
	// Corrupt the version byte.
	bad := append([]byte(nil), data...)
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func TestBytecodeCompressibility(t *testing.T) {
	// §4.1.3: general-purpose compression roughly halves bytecode size,
	// indicating headroom in the encoding. Use a repetitive module, as
	// real programs are.
	var src bytes.Buffer
	src.WriteString("int %f0(int %x) {\nentry:\n\t%y = add int %x, 1\n\tret int %y\n}\n")
	for i := 1; i < 40; i++ {
		src.WriteString("int %f")
		src.WriteByte(byte('0' + i/10))
		src.WriteByte(byte('0' + i%10))
		src.WriteString("(int %x) {\nentry:\n\t%a = add int %x, 2\n\t%b = mul int %a, 3\n\t%c = sub int %b, 4\n\tret int %c\n}\n")
	}
	m := parseSrc(t, src.String())
	data := mustEnc(t, m)
	var comp bytes.Buffer
	zw, _ := flate.NewWriter(&comp, flate.BestCompression)
	zw.Write(data)
	zw.Close()
	ratio := float64(comp.Len()) / float64(len(data))
	if ratio > 0.8 {
		t.Errorf("compression ratio %.2f; expected substantial redundancy (paper reports ~0.5)", ratio)
	}
}

func TestVarintEdgeCases(t *testing.T) {
	var w writer
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1}
	for _, v := range vals {
		w.uvarint(v)
	}
	svals := []int64{0, -1, 1, -64, 64, -1 << 40, 1<<62 - 1}
	for _, v := range svals {
		w.svarint(v)
	}
	r := &reader{buf: w.bytes()}
	for _, want := range vals {
		got, err := r.uvarint()
		if err != nil || got != want {
			t.Fatalf("uvarint(%d) = %d, %v", want, got, err)
		}
	}
	for _, want := range svals {
		got, err := r.svarint()
		if err != nil || got != want {
			t.Fatalf("svarint(%d) = %d, %v", want, got, err)
		}
	}
	if _, err := r.uvarint(); err == nil {
		t.Error("read past end did not error")
	}
}

func TestSizeComparableToText(t *testing.T) {
	// Bytecode should be substantially smaller than the textual form.
	m := parseSrc(t, loopSrc)
	text := len(m.String())
	bc := len(mustEncStripped(t, m))
	if bc >= text {
		t.Errorf("bytecode (%d) not smaller than text (%d)", bc, text)
	}
}
