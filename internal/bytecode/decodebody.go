package bytecode

import (
	"fmt"

	"repro/internal/core"
)

// bodyDecoder holds per-function decode state.
type bodyDecoder struct {
	d      *decoder
	f      *core.Function
	blocks []*core.BasicBlock
	values []core.Value
	fwd    map[uint64]*core.Placeholder
}

func (d *decoder) readFunctionBody(f *core.Function) error {
	bd := &bodyDecoder{d: d, f: f, fwd: map[uint64]*core.Placeholder{}}

	nBlocks, err := d.r.uvarint()
	if err != nil {
		return err
	}
	if nBlocks > uint64(d.r.remaining())+1 {
		return ErrTruncated
	}
	bd.blocks = make([]*core.BasicBlock, nBlocks)
	for i := range bd.blocks {
		bd.blocks[i] = core.NewBlock("")
		f.AddBlock(bd.blocks[i])
	}

	// Constant pool.
	nPool, err := d.r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nPool; i++ {
		c, err := d.readConstant()
		if err != nil {
			return err
		}
		bd.values = append(bd.values, c)
	}
	for _, a := range f.Args {
		bd.values = append(bd.values, a)
	}

	// Block instruction counts.
	counts := make([]uint64, nBlocks)
	for i := range counts {
		if counts[i], err = d.r.uvarint(); err != nil {
			return err
		}
	}

	// Instructions.
	for bi, blk := range bd.blocks {
		for k := uint64(0); k < counts[bi]; k++ {
			inst, err := bd.readInstruction()
			if err != nil {
				return err
			}
			blk.Append(inst)
			bd.values = append(bd.values, inst)
		}
	}

	// Resolve forward references.
	for id, ph := range bd.fwd {
		if id >= uint64(len(bd.values)) {
			return fmt.Errorf("bytecode: forward value id %d never defined", id)
		}
		core.ReplaceAllUses(ph, bd.values[id])
	}

	// Symbol tables.
	nNamed, err := d.r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nNamed; i++ {
		vid, err := d.r.uvarint()
		if err != nil {
			return err
		}
		sid, err := d.r.uvarint()
		if err != nil {
			return err
		}
		name, err := lookupString(d.strs, sid)
		if err != nil {
			return err
		}
		if vid >= uint64(len(bd.values)) {
			return fmt.Errorf("bytecode: symbol value id %d out of range", vid)
		}
		bd.values[vid].SetName(name)
	}
	nNamedBlocks, err := d.r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nNamedBlocks; i++ {
		bid, err := d.r.uvarint()
		if err != nil {
			return err
		}
		sid, err := d.r.uvarint()
		if err != nil {
			return err
		}
		name, err := lookupString(d.strs, sid)
		if err != nil {
			return err
		}
		if bid >= uint64(len(bd.blocks)) {
			return fmt.Errorf("bytecode: symbol block id %d out of range", bid)
		}
		bd.blocks[bid].SetName(name)
	}
	return nil
}

// value resolves a value id, creating a typed placeholder for forward refs.
func (bd *bodyDecoder) value(id uint64, t core.Type) (core.Value, error) {
	if id < uint64(len(bd.values)) {
		return bd.values[id], nil
	}
	if ph, ok := bd.fwd[id]; ok {
		return ph, nil
	}
	if t == nil {
		return nil, fmt.Errorf("bytecode: untyped forward reference to value %d", id)
	}
	ph := core.NewPlaceholder(fmt.Sprintf("fwd.%d", id), t)
	bd.fwd[id] = ph
	return ph, nil
}

// definedValue resolves a value id that must already be defined (compact
// encoding guarantees backward references).
func (bd *bodyDecoder) definedValue(id uint64) (core.Value, error) {
	if id >= uint64(len(bd.values)) {
		return nil, fmt.Errorf("bytecode: compact operand %d is a forward reference", id)
	}
	return bd.values[id], nil
}

func (bd *bodyDecoder) block(id uint64) (*core.BasicBlock, error) {
	if id >= uint64(len(bd.blocks)) {
		return nil, fmt.Errorf("bytecode: block id %d out of range", id)
	}
	return bd.blocks[id], nil
}

// typedOperand reads (type id, value id).
func (bd *bodyDecoder) typedOperand() (core.Value, error) {
	t, err := bd.d.readType()
	if err != nil {
		return nil, err
	}
	id, err := bd.d.r.uvarint()
	if err != nil {
		return nil, err
	}
	return bd.value(id, t)
}

func (bd *bodyDecoder) readInstruction() (core.Instruction, error) {
	first, err := bd.d.r.peek()
	if err != nil {
		return nil, err
	}
	if first&0x80 != 0 {
		return bd.readEscape()
	}
	return bd.readCompact()
}

func (bd *bodyDecoder) readCompact() (core.Instruction, error) {
	word, err := bd.d.r.u32()
	if err != nil {
		return nil, err
	}
	op := core.Opcode(word >> 26)
	typeID := uint64(word >> 17 & 0x1FF)
	op1 := uint64(word >> 9 & 0xFF)
	op2 := uint64(word & 0x1FF)

	t, err := bd.d.typeByID(typeID)
	if err != nil {
		return nil, err
	}
	getOp := func(id uint64) (core.Value, error) { return bd.definedValue(id) }

	switch op {
	case core.OpRet:
		if op1 == noOp1 {
			return core.NewRet(nil), nil
		}
		v, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		return core.NewRet(v), nil
	case core.OpBr:
		blk, err := bd.block(op1)
		if err != nil {
			return nil, err
		}
		return core.NewBr(blk), nil
	case core.OpUnwind:
		return core.NewUnwind(), nil
	case core.OpMalloc, core.OpAlloca:
		var n core.Value
		if op1 != noOp1 {
			if n, err = getOp(op1); err != nil {
				return nil, err
			}
		}
		if op == core.OpMalloc {
			return core.NewMalloc(t, n), nil
		}
		return core.NewAlloca(t, n), nil
	case core.OpFree:
		p, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		return core.NewFree(p), nil
	case core.OpLoad:
		p, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		if p.Type().Kind() != core.PointerKind {
			return nil, fmt.Errorf("bytecode: load of non-pointer")
		}
		return core.NewLoad(p), nil
	case core.OpStore:
		v, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		p, err := getOp(op2)
		if err != nil {
			return nil, err
		}
		return core.NewStore(v, p), nil
	case core.OpCast:
		v, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		return core.NewCast(v, t), nil
	case core.OpVAArg:
		v, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		return core.NewVAArg(v, t), nil
	}
	if core.IsBinaryOp(op) || core.IsComparisonOp(op) {
		lhs, err := getOp(op1)
		if err != nil {
			return nil, err
		}
		rhs, err := getOp(op2)
		if err != nil {
			return nil, err
		}
		return core.NewBinary(op, lhs, rhs), nil
	}
	return nil, fmt.Errorf("bytecode: opcode %s not valid in compact form", op)
}

func (bd *bodyDecoder) readEscape() (core.Instruction, error) {
	b, err := bd.d.r.u8()
	if err != nil {
		return nil, err
	}
	op := core.Opcode(b & 0x7F)
	r := bd.d.r

	switch {
	case op == core.OpRet:
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		if has == 0 {
			return core.NewRet(nil), nil
		}
		v, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		return core.NewRet(v), nil

	case op == core.OpBr:
		cond, err := r.u8()
		if err != nil {
			return nil, err
		}
		if cond == 0 {
			bid, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			blk, err := bd.block(bid)
			if err != nil {
				return nil, err
			}
			return core.NewBr(blk), nil
		}
		c, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		tid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		fid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		tb, err := bd.block(tid)
		if err != nil {
			return nil, err
		}
		fb, err := bd.block(fid)
		if err != nil {
			return nil, err
		}
		return core.NewCondBr(c, tb, fb), nil

	case op == core.OpSwitch:
		v, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		defID, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		def, err := bd.block(defID)
		if err != nil {
			return nil, err
		}
		sw := core.NewSwitch(v, def)
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			cid, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			bidv, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			cv, err := bd.definedValue(cid)
			if err != nil {
				return nil, err
			}
			ci, ok := cv.(*core.ConstantInt)
			if !ok {
				return nil, fmt.Errorf("bytecode: switch case is not an integer constant")
			}
			blk, err := bd.block(bidv)
			if err != nil {
				return nil, err
			}
			sw.AddCase(ci, blk)
		}
		return sw, nil

	case op == core.OpInvoke, op == core.OpCall:
		callee, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		if core.CalleeFunctionType(callee) == nil {
			return nil, fmt.Errorf("bytecode: callee is not a function pointer")
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.remaining())+1 {
			return nil, ErrTruncated
		}
		args := make([]core.Value, n)
		for i := range args {
			if args[i], err = bd.typedOperand(); err != nil {
				return nil, err
			}
		}
		if op == core.OpCall {
			return core.NewCall(callee, args...), nil
		}
		nid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		uid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		nb, err := bd.block(nid)
		if err != nil {
			return nil, err
		}
		ub, err := bd.block(uid)
		if err != nil {
			return nil, err
		}
		return core.NewInvoke(callee, args, nb, ub), nil

	case op == core.OpUnwind:
		return core.NewUnwind(), nil

	case core.IsBinaryOp(op) || core.IsComparisonOp(op):
		t, err := bd.d.readType()
		if err != nil {
			return nil, err
		}
		lid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		lhs, err := bd.value(lid, t)
		if err != nil {
			return nil, err
		}
		rt := t
		if op == core.OpShl || op == core.OpShr {
			rt = core.UByteType
		}
		rhs, err := bd.value(rid, rt)
		if err != nil {
			return nil, err
		}
		return core.NewBinary(op, lhs, rhs), nil

	case op == core.OpMalloc, op == core.OpAlloca:
		t, err := bd.d.readType()
		if err != nil {
			return nil, err
		}
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		var n core.Value
		if has != 0 {
			if n, err = bd.typedOperand(); err != nil {
				return nil, err
			}
		}
		if op == core.OpMalloc {
			return core.NewMalloc(t, n), nil
		}
		return core.NewAlloca(t, n), nil

	case op == core.OpFree:
		p, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		return core.NewFree(p), nil

	case op == core.OpLoad:
		p, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		if p.Type().Kind() != core.PointerKind {
			return nil, fmt.Errorf("bytecode: load of non-pointer")
		}
		return core.NewLoad(p), nil

	case op == core.OpStore:
		v, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		p, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		return core.NewStore(v, p), nil

	case op == core.OpGetElementPtr:
		base, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.remaining())+1 {
			return nil, ErrTruncated
		}
		idx := make([]core.Value, n)
		for i := range idx {
			if idx[i], err = bd.typedOperand(); err != nil {
				return nil, err
			}
		}
		if _, err := core.GEPResultType(base.Type(), idx); err != nil {
			return nil, fmt.Errorf("bytecode: %w", err)
		}
		return core.NewGEP(base, idx...), nil

	case op == core.OpPhi:
		t, err := bd.d.readType()
		if err != nil {
			return nil, err
		}
		phi := core.NewPhi(t)
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			vid, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			bid, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			v, err := bd.value(vid, t)
			if err != nil {
				return nil, err
			}
			blk, err := bd.block(bid)
			if err != nil {
				return nil, err
			}
			phi.AddIncoming(v, blk)
		}
		return phi, nil

	case op == core.OpCast:
		t, err := bd.d.readType()
		if err != nil {
			return nil, err
		}
		v, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		return core.NewCast(v, t), nil

	case op == core.OpVAArg:
		t, err := bd.d.readType()
		if err != nil {
			return nil, err
		}
		v, err := bd.typedOperand()
		if err != nil {
			return nil, err
		}
		return core.NewVAArg(v, t), nil
	}
	return nil, fmt.Errorf("bytecode: bad escape opcode %d", op)
}
