package bytecode

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

// fuzzSeedSources are small but feature-dense modules whose encodings seed
// the corpus: loops with phis, named/recursive types, aggregate and
// constexpr initializers, calls, invoke/unwind, varargs.
var fuzzSeedSources = []string{
	loopSrc,
	`
%pair = type { int, float }
%list = type { int, %list* }
%counter = global int 0
%table = internal constant [3 x int] [ int 1, int 2, int 3 ]
%str = internal constant [6 x sbyte] c"hello\00"
%strp = global sbyte* getelementptr ([6 x sbyte]* %str, long 0, long 0)

declare int %printf(sbyte*, ...)

internal int %helper(int %x) {
entry:
	%z = add int %x, 1
	ret int %z
}

int %main() {
entry:
	%l = malloc %list
	%hd = getelementptr %list* %l, long 0, ubyte 0
	store int 10, int* %hd
	%v = load int* %hd
	%r = call int %helper(int %v)
	free %list* %l
	ret int %r
}
`,
	`
void %thrower() {
entry:
	unwind
}

int %main() {
entry:
	invoke void %thrower() to label %ok unwind to label %bad
ok:
	ret int 0
bad:
	ret int 1
}
`,
}

func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for i, src := range fuzzSeedSources {
		m, err := asm.ParseModule("seed", src)
		if err != nil {
			f.Fatalf("seed %d: parse: %v", i, err)
		}
		for _, strip := range []bool{false, true} {
			data, err := EncodeWithOptions(m, strip)
			if err != nil {
				f.Fatalf("seed %d: encode: %v", i, err)
			}
			seeds = append(seeds, data)
		}
	}
	return seeds
}

// FuzzDecode: arbitrary bytes must produce a module or an error — never a
// panic, unbounded allocation, or hang.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	// Malformed prefixes so the fuzzer starts with the header space mapped.
	f.Add([]byte{})
	f.Add([]byte("LLBC"))
	f.Add([]byte("LLBC\x01"))
	f.Add([]byte("XXXX\x01\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err == nil && m == nil {
			t.Fatal("Decode returned nil module and nil error")
		}
	})
}

// FuzzRoundTrip: when hostile bytes happen to decode, re-encoding must not
// panic either, and an image that verifies must survive a second trip with
// its printed form intact.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		out, err := Encode(m)
		if err != nil {
			// The decoder accepted a module the encoder cannot represent;
			// tolerable only if the module is itself invalid.
			if verr := core.Verify(m); verr == nil {
				t.Fatalf("valid module failed to re-encode: %v", err)
			}
			return
		}
		if core.Verify(m) != nil {
			return
		}
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded module failed: %v", err)
		}
		if m.String() != m2.String() {
			t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", m, m2)
		}
	})
}
