// Package bytecode implements the compact binary ("bytecode") encoding of
// IR modules described in §2.5 and §4.1.3 of the paper: a flat, linear
// layout in which most instructions occupy a single 32-bit word, with a
// variable-length escape encoding for instructions whose operands, types,
// or value numbers do not fit. Encoding and decoding are lossless: a module
// round-trips through bytecode to an identical textual form.
package bytecode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic identifies bytecode files ("llvm" in the original; "LLBC" here).
var Magic = [4]byte{'L', 'L', 'B', 'C'}

// Version of the encoding format.
const Version = 1

// ErrTruncated is returned when the input ends mid-record.
var ErrTruncated = errors.New("truncated input")

// writer accumulates the output byte stream.
type writer struct{ buf []byte }

func (w *writer) bytes() []byte { return w.buf }

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }

// u32 writes a big-endian 32-bit word (compact instruction records).
func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// uvarint writes an unsigned LEB128 value.
func (w *writer) uvarint(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// svarint writes a signed value with zigzag encoding.
func (w *writer) svarint(v int64) {
	w.uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

func (w *writer) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf = append(w.buf, b[:]...)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// reader consumes the input byte stream.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) u8() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// peek returns the next byte without consuming it.
func (r *reader) peek() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	return r.buf[r.pos], nil
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.u8()
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, fmt.Errorf("bytecode: varint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}

func (r *reader) svarint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *reader) f64() (float64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", ErrTruncated
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// stringTable dedupes strings during encoding; index 0 is reserved for "".
type stringTable struct {
	byVal map[string]uint64
	list  []string
}

func newStringTable() *stringTable {
	return &stringTable{byVal: map[string]uint64{"": 0}, list: []string{""}}
}

func (st *stringTable) id(s string) uint64 {
	if id, ok := st.byVal[s]; ok {
		return id
	}
	id := uint64(len(st.list))
	st.byVal[s] = id
	st.list = append(st.list, s)
	return id
}
