package bytecode

import (
	"fmt"

	"repro/internal/core"
)

// Constant record kinds.
const (
	ckModRef byte = iota // reference to a module-level function/global
	ckInt
	ckFloat
	ckBool
	ckNull
	ckUndef
	ckZero
	ckArray
	ckStruct
	ckExprCast
	ckExprGEP
)

// Global/function header flag bits.
const (
	flagConst    = 1 << 0
	flagInternal = 1 << 1
	flagHasInit  = 1 << 2 // globals: has initializer; functions: has body
)

// Compact-instruction field limits: [0|opcode:5|type:9|op1:8|op2:9].
const (
	maxCompactType = 510
	noOp1          = 255 // sentinel: no operands
	maxCompactOp1  = 254
	noOp2          = 511 // sentinel: one operand
	maxCompactOp2  = 510
)

// Encode serializes the module, including the symbol tables that preserve
// local value and block names (lossless round trip). A module containing
// constructs the format cannot represent is reported as an error, never a
// panic.
func Encode(m *core.Module) ([]byte, error) { return EncodeWithOptions(m, false) }

// EncodeStripped serializes the module without local symbol names, like a
// stripped executable; module-level symbols are always kept (they define
// linkage identity).
func EncodeStripped(m *core.Module) ([]byte, error) { return EncodeWithOptions(m, true) }

// EncodeWithOptions serializes with explicit control over symbol stripping.
func EncodeWithOptions(m *core.Module, strip bool) ([]byte, error) {
	e := &encoder{
		m:      m,
		strs:   newStringTable(),
		types:  newTypeTable(),
		modIDs: map[core.Value]uint64{},
		strip:  strip,
	}
	return e.run()
}

type encoder struct {
	m      *core.Module
	strs   *stringTable
	types  *typeTable
	modIDs map[core.Value]uint64
	strip  bool
}

func (e *encoder) run() ([]byte, error) {
	for i, f := range e.m.Funcs {
		e.modIDs[f] = uint64(i)
	}
	for i, g := range e.m.Globals {
		e.modIDs[g] = uint64(len(e.m.Funcs) + i)
	}

	var hdr, inits, bodies writer

	// Named module types.
	names := e.m.TypeNames()
	hdr.uvarint(uint64(len(names)))
	for _, n := range names {
		t, _ := e.m.NamedType(n)
		hdr.uvarint(e.strs.id(n))
		hdr.uvarint(e.types.id(t))
	}

	// Global headers.
	hdr.uvarint(uint64(len(e.m.Globals)))
	for _, g := range e.m.Globals {
		hdr.uvarint(e.strs.id(g.Name()))
		hdr.uvarint(e.types.id(g.ValueType))
		var flags byte
		if g.IsConst {
			flags |= flagConst
		}
		if g.Linkage == core.InternalLinkage {
			flags |= flagInternal
		}
		if g.Init != nil {
			flags |= flagHasInit
		}
		hdr.u8(flags)
	}

	// Function headers.
	hdr.uvarint(uint64(len(e.m.Funcs)))
	for _, f := range e.m.Funcs {
		hdr.uvarint(e.strs.id(f.Name()))
		hdr.uvarint(e.types.id(f.Sig))
		var flags byte
		if f.Linkage == core.InternalLinkage {
			flags |= flagInternal
		}
		if !f.IsDeclaration() {
			flags |= flagHasInit
		}
		hdr.u8(flags)
	}

	// Global initializers.
	for _, g := range e.m.Globals {
		if g.Init != nil {
			if err := e.writeConstant(&inits, g.Init); err != nil {
				return nil, fmt.Errorf("global %%%s: %w", g.Name(), err)
			}
		}
	}

	// Function bodies.
	for _, f := range e.m.Funcs {
		if !f.IsDeclaration() {
			if err := e.writeFunctionBody(&bodies, f); err != nil {
				return nil, fmt.Errorf("function %%%s: %w", f.Name(), err)
			}
		}
	}

	// Serialize the type table before the string table is emitted: a named
	// struct may appear only inside the type graph, so writing its record
	// can register a string the table must still include.
	var typesBuf writer
	if err := e.types.write(&typesBuf, e.strs); err != nil {
		return nil, err
	}

	// Assemble: magic, version, strings, types, header, inits, bodies.
	var out writer
	out.buf = append(out.buf, Magic[:]...)
	out.u8(Version)
	out.uvarint(uint64(len(e.strs.list)))
	for _, s := range e.strs.list {
		out.str(s)
	}
	out.uvarint(uint64(len(e.m.Name)))
	out.buf = append(out.buf, e.m.Name...)
	out.buf = append(out.buf, typesBuf.buf...)
	out.buf = append(out.buf, hdr.buf...)
	out.buf = append(out.buf, inits.buf...)
	out.buf = append(out.buf, bodies.buf...)
	return out.bytes(), nil
}

// writeConstant emits a constant record (recursively for aggregates).
func (e *encoder) writeConstant(w *writer, c core.Constant) error {
	switch cc := c.(type) {
	case *core.Function, *core.GlobalVariable:
		w.u8(ckModRef)
		w.uvarint(e.modIDs[c])
	case *core.ConstantInt:
		w.u8(ckInt)
		w.uvarint(e.types.id(cc.Type()))
		w.svarint(cc.SExt())
	case *core.ConstantFloat:
		w.u8(ckFloat)
		w.uvarint(e.types.id(cc.Type()))
		w.f64(cc.Val)
	case *core.ConstantBool:
		w.u8(ckBool)
		if cc.Val {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case *core.ConstantNull:
		w.u8(ckNull)
		w.uvarint(e.types.id(cc.Type()))
	case *core.ConstantUndef:
		w.u8(ckUndef)
		w.uvarint(e.types.id(cc.Type()))
	case *core.ConstantZero:
		w.u8(ckZero)
		w.uvarint(e.types.id(cc.Type()))
	case *core.ConstantArray:
		w.u8(ckArray)
		w.uvarint(e.types.id(cc.Type()))
		for _, el := range cc.Elems {
			if err := e.writeConstant(w, el); err != nil {
				return err
			}
		}
	case *core.ConstantStruct:
		w.u8(ckStruct)
		w.uvarint(e.types.id(cc.Type()))
		for _, f := range cc.Fields {
			if err := e.writeConstant(w, f); err != nil {
				return err
			}
		}
	case *core.ConstantExpr:
		switch cc.Op {
		case core.OpCast:
			w.u8(ckExprCast)
			w.uvarint(e.types.id(cc.Type()))
			return e.writeConstant(w, cc.Operand(0).(core.Constant))
		case core.OpGetElementPtr:
			w.u8(ckExprGEP)
			ops := cc.Operands()
			w.uvarint(uint64(len(ops) - 1))
			for _, op := range ops {
				if err := e.writeConstant(w, op.(core.Constant)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("bytecode: unsupported constant expression %s", cc.Op)
		}
	default:
		return fmt.Errorf("bytecode: cannot encode constant %T", c)
	}
	return nil
}

// funcLayout numbers every value in a function: constant-pool entries,
// then arguments, then instructions in block order.
type funcLayout struct {
	pool     []core.Constant
	valueIDs map[core.Value]uint64
	blockIDs map[*core.BasicBlock]uint64
	poolKeys map[string]uint64
}

func (e *encoder) layoutFunction(f *core.Function) *funcLayout {
	l := &funcLayout{
		valueIDs: map[core.Value]uint64{},
		blockIDs: map[*core.BasicBlock]uint64{},
		poolKeys: map[string]uint64{},
	}
	for i, b := range f.Blocks {
		l.blockIDs[b] = uint64(i)
	}
	// Collect constant operands into the pool.
	f.ForEachInst(func(inst core.Instruction) bool {
		for _, op := range inst.Operands() {
			if c, ok := op.(core.Constant); ok {
				e.poolAdd(l, c)
			}
		}
		return true
	})
	next := uint64(len(l.pool))
	for _, a := range f.Args {
		l.valueIDs[a] = next
		next++
	}
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			l.valueIDs[inst] = next
			next++
		}
	}
	return l
}

// poolAdd registers a constant in the pool, deduplicating simple literals
// by value and everything else by identity.
func (e *encoder) poolAdd(l *funcLayout, c core.Constant) uint64 {
	if id, ok := l.valueIDs[c]; ok {
		return id
	}
	key := e.poolKey(c)
	if key != "" {
		if id, ok := l.poolKeys[key]; ok {
			l.valueIDs[c] = id
			return id
		}
	}
	id := uint64(len(l.pool))
	l.pool = append(l.pool, c)
	l.valueIDs[c] = id
	if key != "" {
		l.poolKeys[key] = id
	}
	return id
}

func (e *encoder) poolKey(c core.Constant) string {
	switch cc := c.(type) {
	case *core.ConstantInt:
		return fmt.Sprintf("i|%d|%d", e.types.id(cc.Type()), cc.Val)
	case *core.ConstantFloat:
		return fmt.Sprintf("f|%d|%x", e.types.id(cc.Type()), cc.Val)
	case *core.ConstantBool:
		return fmt.Sprintf("b|%v", cc.Val)
	case *core.ConstantNull:
		return fmt.Sprintf("n|%d", e.types.id(cc.Type()))
	case *core.ConstantUndef:
		return fmt.Sprintf("u|%d", e.types.id(cc.Type()))
	case *core.ConstantZero:
		return fmt.Sprintf("z|%d", e.types.id(cc.Type()))
	case *core.Function, *core.GlobalVariable:
		return fmt.Sprintf("m|%d", e.modIDs[c])
	}
	return "" // aggregates and expressions: identity only
}

func (e *encoder) writeFunctionBody(w *writer, f *core.Function) error {
	l := e.layoutFunction(f)

	w.uvarint(uint64(len(f.Blocks)))
	w.uvarint(uint64(len(l.pool)))
	for _, c := range l.pool {
		if err := e.writeConstant(w, c); err != nil {
			return err
		}
	}
	for _, b := range f.Blocks {
		w.uvarint(uint64(len(b.Instrs)))
	}
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if err := e.writeInstruction(w, l, inst); err != nil {
				return err
			}
		}
	}

	// Symbol table.
	if e.strip {
		w.uvarint(0)
		w.uvarint(0)
		return nil
	}
	var named []core.Value
	for _, a := range f.Args {
		if a.Name() != "" {
			named = append(named, a)
		}
	}
	f.ForEachInst(func(inst core.Instruction) bool {
		if inst.Name() != "" && inst.Type() != core.VoidType {
			named = append(named, inst)
		}
		return true
	})
	w.uvarint(uint64(len(named)))
	for _, v := range named {
		w.uvarint(l.valueIDs[v])
		w.uvarint(e.strs.id(v.Name()))
	}
	var namedBlocks []*core.BasicBlock
	for _, b := range f.Blocks {
		if b.Name() != "" {
			namedBlocks = append(namedBlocks, b)
		}
	}
	w.uvarint(uint64(len(namedBlocks)))
	for _, b := range namedBlocks {
		w.uvarint(l.blockIDs[b])
		w.uvarint(e.strs.id(b.Name()))
	}
	return nil
}

// writeInstruction emits one instruction: a single 32-bit word when the
// opcode, type id, and operand ids fit and all operands are backward
// references; otherwise the variable-length escape form (high bit set on
// the first byte).
func (e *encoder) writeInstruction(w *writer, l *funcLayout, inst core.Instruction) error {
	if word, ok := e.compactWord(l, inst); ok {
		w.u32(word)
		return nil
	}
	return e.writeEscape(w, l, inst)
}

// compactWord attempts the one-word encoding.
func (e *encoder) compactWord(l *funcLayout, inst core.Instruction) (uint32, bool) {
	myID := l.valueIDs[inst]
	fit := func(id uint64, max uint64) bool { return id <= max }
	backward := func(v core.Value) bool {
		id, ok := l.valueIDs[v]
		return ok && id < myID
	}

	var typeID, op1, op2 uint64 = 0, noOp1, noOp2
	switch i := inst.(type) {
	case *core.RetInst:
		if v := i.Value(); v != nil {
			if !backward(v) {
				return 0, false
			}
			op1 = l.valueIDs[v]
		}
	case *core.BranchInst:
		if i.IsConditional() {
			return 0, false
		}
		op1 = l.blockIDs[i.TrueDest()]
	case *core.UnwindInst:
		// no fields
	case *core.BinaryInst:
		if !backward(i.LHS()) || !backward(i.RHS()) {
			return 0, false
		}
		typeID = e.types.id(i.LHS().Type())
		op1, op2 = l.valueIDs[i.LHS()], l.valueIDs[i.RHS()]
	case *core.MallocInst:
		typeID = e.types.id(i.AllocType)
		if n := i.NumElems(); n != nil {
			if !backward(n) {
				return 0, false
			}
			op1 = l.valueIDs[n]
		}
	case *core.AllocaInst:
		typeID = e.types.id(i.AllocType)
		if n := i.NumElems(); n != nil {
			if !backward(n) {
				return 0, false
			}
			op1 = l.valueIDs[n]
		}
	case *core.FreeInst:
		if !backward(i.Ptr()) {
			return 0, false
		}
		op1 = l.valueIDs[i.Ptr()]
	case *core.LoadInst:
		if !backward(i.Ptr()) {
			return 0, false
		}
		op1 = l.valueIDs[i.Ptr()]
	case *core.StoreInst:
		if !backward(i.Val()) || !backward(i.Ptr()) {
			return 0, false
		}
		op1, op2 = l.valueIDs[i.Val()], l.valueIDs[i.Ptr()]
	case *core.CastInst:
		if !backward(i.Val()) {
			return 0, false
		}
		typeID = e.types.id(i.Type())
		op1 = l.valueIDs[i.Val()]
	case *core.VAArgInst:
		if !backward(i.List()) {
			return 0, false
		}
		typeID = e.types.id(i.Type())
		op1 = l.valueIDs[i.List()]
	default:
		return 0, false // switch, invoke, gep, phi, call: always escape
	}

	if !fit(typeID, maxCompactType) || (op1 != noOp1 && !fit(op1, maxCompactOp1)) ||
		(op2 != noOp2 && !fit(op2, maxCompactOp2)) {
		return 0, false
	}
	word := uint32(inst.Opcode())<<26 | uint32(typeID)<<17 | uint32(op1)<<9 | uint32(op2)
	return word, true
}

// typedOperand emits (type id, value id).
func (e *encoder) typedOperand(w *writer, l *funcLayout, v core.Value) {
	w.uvarint(e.types.id(v.Type()))
	w.uvarint(l.valueIDs[v])
}

func (e *encoder) writeEscape(w *writer, l *funcLayout, inst core.Instruction) error {
	w.u8(0x80 | byte(inst.Opcode()))
	switch i := inst.(type) {
	case *core.RetInst:
		if v := i.Value(); v != nil {
			w.u8(1)
			e.typedOperand(w, l, v)
		} else {
			w.u8(0)
		}
	case *core.BranchInst:
		if i.IsConditional() {
			w.u8(1)
			e.typedOperand(w, l, i.Cond())
			w.uvarint(l.blockIDs[i.TrueDest()])
			w.uvarint(l.blockIDs[i.FalseDest()])
		} else {
			w.u8(0)
			w.uvarint(l.blockIDs[i.TrueDest()])
		}
	case *core.SwitchInst:
		e.typedOperand(w, l, i.Value())
		w.uvarint(l.blockIDs[i.Default()])
		w.uvarint(uint64(i.NumCases()))
		for n := 0; n < i.NumCases(); n++ {
			val, dest := i.Case(n)
			w.uvarint(l.valueIDs[val])
			w.uvarint(l.blockIDs[dest])
		}
	case *core.InvokeInst:
		e.typedOperand(w, l, i.Callee())
		args := i.Args()
		w.uvarint(uint64(len(args)))
		for _, a := range args {
			e.typedOperand(w, l, a)
		}
		w.uvarint(l.blockIDs[i.NormalDest()])
		w.uvarint(l.blockIDs[i.UnwindDest()])
	case *core.UnwindInst:
		// no payload
	case *core.BinaryInst:
		w.uvarint(e.types.id(i.LHS().Type()))
		w.uvarint(l.valueIDs[i.LHS()])
		w.uvarint(l.valueIDs[i.RHS()])
	case *core.MallocInst:
		w.uvarint(e.types.id(i.AllocType))
		if n := i.NumElems(); n != nil {
			w.u8(1)
			e.typedOperand(w, l, n)
		} else {
			w.u8(0)
		}
	case *core.AllocaInst:
		w.uvarint(e.types.id(i.AllocType))
		if n := i.NumElems(); n != nil {
			w.u8(1)
			e.typedOperand(w, l, n)
		} else {
			w.u8(0)
		}
	case *core.FreeInst:
		e.typedOperand(w, l, i.Ptr())
	case *core.LoadInst:
		e.typedOperand(w, l, i.Ptr())
	case *core.StoreInst:
		e.typedOperand(w, l, i.Val())
		e.typedOperand(w, l, i.Ptr())
	case *core.GetElementPtrInst:
		e.typedOperand(w, l, i.Base())
		idx := i.Indices()
		w.uvarint(uint64(len(idx)))
		for _, ix := range idx {
			e.typedOperand(w, l, ix)
		}
	case *core.PhiInst:
		w.uvarint(e.types.id(i.Type()))
		w.uvarint(uint64(i.NumIncoming()))
		for n := 0; n < i.NumIncoming(); n++ {
			v, blk := i.Incoming(n)
			w.uvarint(l.valueIDs[v])
			w.uvarint(l.blockIDs[blk])
		}
	case *core.CastInst:
		w.uvarint(e.types.id(i.Type()))
		e.typedOperand(w, l, i.Val())
	case *core.CallInst:
		e.typedOperand(w, l, i.Callee())
		args := i.Args()
		w.uvarint(uint64(len(args)))
		for _, a := range args {
			e.typedOperand(w, l, a)
		}
	case *core.VAArgInst:
		w.uvarint(e.types.id(i.Type()))
		e.typedOperand(w, l, i.List())
	default:
		return fmt.Errorf("bytecode: cannot encode instruction %T", inst)
	}
	return nil
}
