package bytecode

import (
	"fmt"

	"repro/internal/core"
)

// Primitive types occupy fixed slots 0..12 in every type table; derived
// types are numbered from firstDerivedType in order of first use.
const firstDerivedType = 13

var primBySlot = []core.Type{
	core.VoidType, core.BoolType,
	core.SByteType, core.UByteType, core.ShortType, core.UShortType,
	core.IntType, core.UIntType, core.LongType, core.ULongType,
	core.FloatType, core.DoubleType, core.LabelType,
}

// Derived-type record kinds.
const (
	tkPointer byte = iota
	tkArray
	tkStruct
	tkFunction
	tkOpaque
)

// typeTable assigns dense ids to every type reachable from a module.
type typeTable struct {
	ids     map[core.Type]uint64
	derived []core.Type
}

func newTypeTable() *typeTable {
	tt := &typeTable{ids: map[core.Type]uint64{}}
	for i, t := range primBySlot {
		tt.ids[t] = uint64(i)
	}
	return tt
}

// id returns the id for t, registering it (and its components) on first use.
func (tt *typeTable) id(t core.Type) uint64 {
	if id, ok := tt.ids[t]; ok {
		return id
	}
	if pt, ok := t.(*core.PrimitiveType); ok {
		// Distinct pointer instances of primitives can't occur (singletons),
		// but guard against hand-built ones.
		for i, p := range primBySlot {
			if p.Kind() == pt.Kind() {
				return uint64(i)
			}
		}
	}
	// Register the shell first so recursive types terminate.
	id := uint64(firstDerivedType + len(tt.derived))
	tt.ids[t] = id
	tt.derived = append(tt.derived, t)
	// Force registration of components.
	switch tp := t.(type) {
	case *core.PointerType:
		tt.id(tp.Elem)
	case *core.ArrayType:
		tt.id(tp.Elem)
	case *core.StructType:
		for _, f := range tp.Fields {
			tt.id(f)
		}
	case *core.FunctionType:
		tt.id(tp.Ret)
		for _, p := range tp.Params {
			tt.id(p)
		}
	}
	return id
}

// write emits the derived-type records. Component references use type ids,
// which may point forward (recursive types); the decoder patches in a
// second pass.
func (tt *typeTable) write(w *writer, strs *stringTable) error {
	w.uvarint(uint64(len(tt.derived)))
	for _, t := range tt.derived {
		switch tp := t.(type) {
		case *core.PointerType:
			w.u8(tkPointer)
			w.uvarint(tt.ids[tp.Elem])
		case *core.ArrayType:
			w.u8(tkArray)
			w.uvarint(uint64(tp.Len))
			w.uvarint(tt.ids[tp.Elem])
		case *core.StructType:
			w.u8(tkStruct)
			w.uvarint(strs.id(tp.Name))
			w.uvarint(uint64(len(tp.Fields)))
			for _, f := range tp.Fields {
				w.uvarint(tt.ids[f])
			}
		case *core.FunctionType:
			w.u8(tkFunction)
			w.uvarint(tt.ids[tp.Ret])
			w.uvarint(uint64(len(tp.Params)))
			for _, pr := range tp.Params {
				w.uvarint(tt.ids[pr])
			}
			if tp.Variadic {
				w.u8(1)
			} else {
				w.u8(0)
			}
		case *core.OpaqueType:
			w.u8(tkOpaque)
			w.uvarint(strs.id(tp.Name))
		default:
			return fmt.Errorf("bytecode: cannot encode type %T", t)
		}
	}
	return nil
}

// readTypeTable decodes the derived types in two passes: shells first so
// recursive references resolve, then payloads.
func readTypeTable(r *reader, strs []string) ([]core.Type, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, ErrTruncated
	}
	types := make([]core.Type, firstDerivedType+int(n))
	copy(types, primBySlot)

	type rawType struct {
		kind   byte
		name   string
		length uint64
		refs   []uint64
		vararg bool
	}
	raws := make([]rawType, n)
	for i := range raws {
		k, err := r.u8()
		if err != nil {
			return nil, err
		}
		raws[i].kind = k
		switch k {
		case tkPointer:
			e, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			raws[i].refs = []uint64{e}
			types[firstDerivedType+i] = &core.PointerType{}
		case tkArray:
			l, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			// Cap declared lengths so int(l) can't go negative and layout
			// arithmetic downstream can't overflow.
			if l > 1<<40 {
				return nil, fmt.Errorf("bytecode: array type length %d out of range", l)
			}
			e, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			raws[i].length = l
			raws[i].refs = []uint64{e}
			types[firstDerivedType+i] = &core.ArrayType{Len: int(l)}
		case tkStruct:
			nameID, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			nf, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if nf > uint64(r.remaining())+1 {
				return nil, ErrTruncated
			}
			refs := make([]uint64, nf)
			for j := range refs {
				if refs[j], err = r.uvarint(); err != nil {
					return nil, err
				}
			}
			name, err := lookupString(strs, nameID)
			if err != nil {
				return nil, err
			}
			raws[i].name = name
			raws[i].refs = refs
			types[firstDerivedType+i] = &core.StructType{Name: name}
		case tkFunction:
			ret, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			np, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if np > uint64(r.remaining())+1 {
				return nil, ErrTruncated
			}
			refs := make([]uint64, 0, np+1)
			refs = append(refs, ret)
			for j := uint64(0); j < np; j++ {
				p, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				refs = append(refs, p)
			}
			va, err := r.u8()
			if err != nil {
				return nil, err
			}
			raws[i].refs = refs
			raws[i].vararg = va != 0
			types[firstDerivedType+i] = &core.FunctionType{Variadic: va != 0}
		case tkOpaque:
			nameID, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			name, err := lookupString(strs, nameID)
			if err != nil {
				return nil, err
			}
			types[firstDerivedType+i] = &core.OpaqueType{Name: name}
		default:
			return nil, fmt.Errorf("bytecode: bad type kind %d", k)
		}
	}
	// Second pass: patch component references.
	lookup := func(id uint64) (core.Type, error) {
		if id >= uint64(len(types)) {
			return nil, fmt.Errorf("bytecode: type id %d out of range", id)
		}
		return types[id], nil
	}
	for i, raw := range raws {
		t := types[firstDerivedType+i]
		switch raw.kind {
		case tkPointer:
			e, err := lookup(raw.refs[0])
			if err != nil {
				return nil, err
			}
			t.(*core.PointerType).Elem = e
		case tkArray:
			e, err := lookup(raw.refs[0])
			if err != nil {
				return nil, err
			}
			t.(*core.ArrayType).Elem = e
		case tkStruct:
			st := t.(*core.StructType)
			st.Fields = make([]core.Type, len(raw.refs))
			for j, ref := range raw.refs {
				f, err := lookup(ref)
				if err != nil {
					return nil, err
				}
				st.Fields[j] = f
			}
		case tkFunction:
			ft := t.(*core.FunctionType)
			ret, err := lookup(raw.refs[0])
			if err != nil {
				return nil, err
			}
			ft.Ret = ret
			ft.Params = make([]core.Type, len(raw.refs)-1)
			for j, ref := range raw.refs[1:] {
				p, err := lookup(ref)
				if err != nil {
					return nil, err
				}
				ft.Params[j] = p
			}
		}
	}
	// Reject malformed graphs (self-referential function types, pointer
	// cycles without a named struct, infinite-size structs): they would
	// hang printing or layout computation downstream.
	for i := firstDerivedType; i < len(types); i++ {
		if err := core.ValidateTypeGraph(types[i]); err != nil {
			return nil, fmt.Errorf("bytecode: %w", err)
		}
	}
	return types, nil
}

func lookupString(strs []string, id uint64) (string, error) {
	if id >= uint64(len(strs)) {
		return "", fmt.Errorf("bytecode: string id %d out of range", id)
	}
	return strs[id], nil
}
