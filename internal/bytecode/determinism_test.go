package bytecode

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
)

// exampleModules parses every textual IR module under examples/. The
// lifelong store keys modules and optimized artifacts by a hash of their
// canonical bytecode, so these tests pin the property that hash depends
// on: Encode is a pure function of the in-memory module.
func exampleModules(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.ll"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no examples/**/*.ll modules found")
	}
	out := map[string]string{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(data)
	}
	// Add the feature-dense fuzz seeds so determinism covers invoke/unwind,
	// named recursive types, constexpr initializers, and varargs even if the
	// examples corpus never exercises them.
	for i, src := range fuzzSeedSources {
		out[string(rune('a'+i))+"_fuzzseed"] = src
	}
	return out
}

// TestEncodeDeterministic: encoding the same module twice must be
// byte-identical.
func TestEncodeDeterministic(t *testing.T) {
	for name, src := range exampleModules(t) {
		m, err := asm.ParseModule(name, src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		first, err := Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		second, err := Encode(m)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two encodes of the same module differ (%d vs %d bytes)", name, len(first), len(second))
		}
	}
}

// TestEncodeRoundTripStable: encode→decode→encode must reproduce the exact
// bytes, so a module loaded from the store re-hashes to its own address.
func TestEncodeRoundTripStable(t *testing.T) {
	for name, src := range exampleModules(t) {
		m, err := asm.ParseModule(name, src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		first, err := Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		m2, err := Decode(first)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		second, err := Encode(m2)
		if err != nil {
			t.Fatalf("%s: encode after decode: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: encode→decode→encode not byte-identical (%d vs %d bytes)", name, len(first), len(second))
		}
		if HashBytes(first) != HashBytes(second) {
			t.Errorf("%s: content hash changed across round trip", name)
		}
	}
}

// TestModuleHashStable: ModuleHash of a decoded module equals the hash of
// the bytes it was decoded from.
func TestModuleHashStable(t *testing.T) {
	for name, src := range exampleModules(t) {
		m, err := asm.ParseModule(name, src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		m2, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		h, err := ModuleHash(m2)
		if err != nil {
			t.Fatalf("%s: hash: %v", name, err)
		}
		if h != HashBytes(data) {
			t.Errorf("%s: ModuleHash(decode(b)) != HashBytes(b)", name)
		}
	}
}
