package bytecode

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/core"
)

// ModuleHash returns the stable content address of a module: the SHA-256
// hex digest of its canonical bytecode. "Canonical" means the full
// (symbol-preserving) encoding of the in-memory module, so two modules
// hash equal exactly when their lossless serializations are byte-equal —
// the property the lifelong store's cache keys rest on, pinned by the
// encoding-determinism tests in this package.
func ModuleHash(m *core.Module) (string, error) {
	data, err := Encode(m)
	if err != nil {
		return "", err
	}
	return HashBytes(data), nil
}

// HashBytes returns the SHA-256 hex digest of already-encoded bytecode.
// Callers that hold canonical bytes (e.g. a store re-verifying a blob
// against its content address) use this to avoid a decode/encode cycle.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
