package bytecode

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property tests: randomly generated constants and functions must survive
// the bytecode round trip with identical printed form.

// randConstant builds a random constant tree of bounded depth.
func randConstant(r *rand.Rand, depth int) core.Constant {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return core.NewInt(core.IntType, r.Int63())
		case 1:
			return core.NewInt(core.UByteType, int64(r.Intn(256)))
		case 2:
			return core.NewFloat(core.DoubleType, r.NormFloat64())
		case 3:
			return core.NewBool(r.Intn(2) == 0)
		default:
			return core.NewNull(core.NewPointer(core.IntType))
		}
	}
	switch r.Intn(3) {
	case 0:
		n := 1 + r.Intn(4)
		elems := make([]core.Constant, n)
		var et core.Type
		for i := range elems {
			if i == 0 {
				elems[i] = randConstant(r, depth-1)
				et = elems[i].Type()
			} else {
				// Arrays are homogeneous: regenerate until type matches.
				for {
					c := randConstant(r, depth-1)
					if core.TypesEqual(c.Type(), et) {
						elems[i] = c
						break
					}
				}
			}
		}
		return core.NewArrayConst(et, elems)
	case 1:
		n := 1 + r.Intn(4)
		fields := make([]core.Constant, n)
		types := make([]core.Type, n)
		for i := range fields {
			fields[i] = randConstant(r, depth-1)
			types[i] = fields[i].Type()
		}
		return core.NewStructConst(core.NewStruct(types...), fields)
	default:
		return randConstant(r, 0)
	}
}

func TestPropConstantRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := core.NewModule("prop")
		for i := 0; i < 5; i++ {
			c := randConstant(r, 2)
			g := core.NewGlobal(m.UniqueSymbol("g"), c.Type(), c)
			m.AddGlobal(g)
		}
		data, err := Encode(m)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		m2, err := Decode(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return m.String() == m2.String()
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randFunction builds a random straight-line-plus-diamond function.
func randFunction(r *rand.Rand, m *core.Module, name string) *core.Function {
	f := core.NewFunction(name, core.NewFunctionType(core.IntType, core.IntType, core.IntType))
	m.AddFunc(f)
	entry := core.NewBlock("entry")
	thenB := core.NewBlock("t")
	elseB := core.NewBlock("e")
	join := core.NewBlock("j")
	f.AddBlock(entry)
	f.AddBlock(thenB)
	f.AddBlock(elseB)
	f.AddBlock(join)

	b := core.NewBuilder()
	b.SetInsertPoint(entry)
	vals := []core.Value{f.Args[0], f.Args[1]}
	binOps := []core.Opcode{core.OpAdd, core.OpSub, core.OpMul, core.OpAnd, core.OpOr, core.OpXor}
	for i := 0; i < 2+r.Intn(8); i++ {
		op := binOps[r.Intn(len(binOps))]
		x := vals[r.Intn(len(vals))]
		y := vals[r.Intn(len(vals))]
		if r.Intn(3) == 0 {
			y = core.NewInt(core.IntType, int64(r.Intn(100)))
		}
		vals = append(vals, b.CreateBinary(op, x, y, ""))
	}
	cond := b.CreateSetLT(vals[len(vals)-1], core.NewInt(core.IntType, 50), "")
	b.CreateCondBr(cond, thenB, elseB)

	b.SetInsertPoint(thenB)
	tv := b.CreateAdd(vals[r.Intn(len(vals))], core.NewInt(core.IntType, 1), "")
	b.CreateBr(join)
	b.SetInsertPoint(elseB)
	ev := b.CreateMul(vals[r.Intn(len(vals))], core.NewInt(core.IntType, 2), "")
	b.CreateBr(join)

	b.SetInsertPoint(join)
	phi := b.CreatePhi(core.IntType, "")
	phi.AddIncoming(tv, thenB)
	phi.AddIncoming(ev, elseB)
	b.CreateRet(phi)
	return f
}

func TestPropFunctionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := core.NewModule("prop")
		for i := 0; i < 1+r.Intn(4); i++ {
			randFunction(r, m, m.UniqueSymbol("f"))
		}
		if err := core.Verify(m); err != nil {
			t.Logf("generated invalid module: %v", err)
			return false
		}
		data, err := Encode(m)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		m2, err := Decode(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if err := core.Verify(m2); err != nil {
			t.Logf("decoded invalid: %v", err)
			return false
		}
		return m.String() == m2.String()
	}
	cfg := &quick.Config{MaxCount: 150, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropDecodeNeverPanics: arbitrary mutations of a valid image must
// produce errors, never panics or corrupted successes that fail
// verification silently.
func TestPropDecodeNeverPanics(t *testing.T) {
	base := func() []byte {
		m := core.NewModule("t")
		randFunction(rand.New(rand.NewSource(42)), m, "f")
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return data
	}()
	f := func(pos uint16, val byte) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] ^= val | 1
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("decode panicked: %v", p)
			}
		}()
		m, err := Decode(data)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted: the module must at least be structurally printable.
		_ = m.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
