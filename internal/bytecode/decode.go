package bytecode

import (
	"bytes"
	"fmt"

	"repro/internal/core"
)

// Decode parses a bytecode image back into a Module. Hostile input is
// contained: every malformation — including one that trips an internal
// panic in an IR constructor — is reported as an error carrying the byte
// offset where decoding stopped, never as a Go panic.
func Decode(data []byte) (m *core.Module, err error) {
	r := &reader{buf: data}
	defer func() {
		if rec := recover(); rec != nil {
			m, err = nil, fmt.Errorf("bytecode: offset %d: invalid input: %v", r.pos, rec)
		} else if err != nil {
			err = fmt.Errorf("bytecode: offset %d: %w", r.pos, err)
		}
	}()
	var magic [4]byte
	for i := range magic {
		b, err := r.u8()
		if err != nil {
			return nil, err
		}
		magic[i] = b
	}
	if !bytes.Equal(magic[:], Magic[:]) {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("unsupported version %d", ver)
	}

	d := &decoder{r: r}
	return d.run()
}

type decoder struct {
	r     *reader
	strs  []string
	types []core.Type
	m     *core.Module
	// Module-level values: functions then globals, by encoder order.
	modValues []core.Value
}

func (d *decoder) run() (*core.Module, error) {
	// String table.
	n, err := d.r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.r.remaining()) {
		return nil, ErrTruncated
	}
	d.strs = make([]string, n)
	for i := range d.strs {
		if d.strs[i], err = d.r.str(); err != nil {
			return nil, err
		}
	}
	modName, err := d.r.str()
	if err != nil {
		return nil, err
	}
	d.m = core.NewModule(modName)

	// Types.
	if d.types, err = readTypeTable(d.r, d.strs); err != nil {
		return nil, err
	}

	// Named module types.
	nNamed, err := d.r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nNamed; i++ {
		nameID, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		typeID, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		name, err := lookupString(d.strs, nameID)
		if err != nil {
			return nil, err
		}
		t, err := d.typeByID(typeID)
		if err != nil {
			return nil, err
		}
		d.m.AddTypeName(name, t)
	}

	// Global headers.
	nGlobals, err := d.r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each header is at least 3 bytes (two varints and a flag byte); a
	// declared count beyond that is hostile — reject before preallocating.
	if nGlobals > uint64(d.r.remaining())/3 {
		return nil, ErrTruncated
	}
	type gHdr struct {
		g       *core.GlobalVariable
		hasInit bool
	}
	gHdrs := make([]gHdr, 0, nGlobals)
	for i := uint64(0); i < nGlobals; i++ {
		nameID, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		typeID, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		flags, err := d.r.u8()
		if err != nil {
			return nil, err
		}
		name, err := lookupString(d.strs, nameID)
		if err != nil {
			return nil, err
		}
		vt, err := d.typeByID(typeID)
		if err != nil {
			return nil, err
		}
		g := core.NewGlobal(name, vt, nil)
		g.IsConst = flags&flagConst != 0
		if flags&flagInternal != 0 {
			g.Linkage = core.InternalLinkage
		}
		gHdrs = append(gHdrs, gHdr{g, flags&flagHasInit != 0})
	}

	// Function headers.
	nFuncs, err := d.r.uvarint()
	if err != nil {
		return nil, err
	}
	if nFuncs > uint64(d.r.remaining())/3 {
		return nil, ErrTruncated
	}
	type fHdr struct {
		f       *core.Function
		hasBody bool
	}
	fHdrs := make([]fHdr, 0, nFuncs)
	for i := uint64(0); i < nFuncs; i++ {
		nameID, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		typeID, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		flags, err := d.r.u8()
		if err != nil {
			return nil, err
		}
		name, err := lookupString(d.strs, nameID)
		if err != nil {
			return nil, err
		}
		t, err := d.typeByID(typeID)
		if err != nil {
			return nil, err
		}
		sig, ok := t.(*core.FunctionType)
		if !ok {
			return nil, fmt.Errorf("bytecode: function %q has non-function type %s", name, t)
		}
		f := core.NewFunction(name, sig)
		if flags&flagInternal != 0 {
			f.Linkage = core.InternalLinkage
		}
		fHdrs = append(fHdrs, fHdr{f, flags&flagHasInit != 0})
	}

	// Register module values in encoder order: functions then globals.
	for _, fh := range fHdrs {
		d.m.AddFunc(fh.f)
		d.modValues = append(d.modValues, fh.f)
	}
	for _, gh := range gHdrs {
		d.m.AddGlobal(gh.g)
	}
	for _, gh := range gHdrs {
		d.modValues = append(d.modValues, gh.g)
	}

	// Global initializers.
	for _, gh := range gHdrs {
		if gh.hasInit {
			c, err := d.readConstant()
			if err != nil {
				return nil, err
			}
			gh.g.Init = c
		}
	}

	// Function bodies.
	for _, fh := range fHdrs {
		if fh.hasBody {
			if err := d.readFunctionBody(fh.f); err != nil {
				return nil, fmt.Errorf("function %%%s: %w", fh.f.Name(), err)
			}
		}
	}
	return d.m, nil
}

func (d *decoder) typeByID(id uint64) (core.Type, error) {
	if id >= uint64(len(d.types)) {
		return nil, fmt.Errorf("bytecode: type id %d out of range", id)
	}
	return d.types[id], nil
}

func (d *decoder) readConstant() (core.Constant, error) {
	kind, err := d.r.u8()
	if err != nil {
		return nil, err
	}
	switch kind {
	case ckModRef:
		id, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		if id >= uint64(len(d.modValues)) {
			return nil, fmt.Errorf("bytecode: module value id %d out of range", id)
		}
		return d.modValues[id].(core.Constant), nil
	case ckInt:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		v, err := d.r.svarint()
		if err != nil {
			return nil, err
		}
		if !core.IsInteger(t) {
			return nil, fmt.Errorf("bytecode: int constant of type %s", t)
		}
		return core.NewInt(t, v), nil
	case ckFloat:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		v, err := d.r.f64()
		if err != nil {
			return nil, err
		}
		if !core.IsFloatingPoint(t) {
			return nil, fmt.Errorf("bytecode: float constant of type %s", t)
		}
		return core.NewFloat(t, v), nil
	case ckBool:
		b, err := d.r.u8()
		if err != nil {
			return nil, err
		}
		return core.NewBool(b != 0), nil
	case ckNull:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		pt, ok := t.(*core.PointerType)
		if !ok {
			return nil, fmt.Errorf("bytecode: null constant of type %s", t)
		}
		return core.NewNull(pt), nil
	case ckUndef:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		return core.NewUndef(t), nil
	case ckZero:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		return core.NewZero(t), nil
	case ckArray:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		at, ok := t.(*core.ArrayType)
		if !ok {
			return nil, fmt.Errorf("bytecode: array constant of type %s", t)
		}
		// Each element record is at least one byte, so a length beyond the
		// remaining input is a lie; reject before allocating for it.
		if at.Len < 0 || at.Len > d.r.remaining() {
			return nil, ErrTruncated
		}
		elems := make([]core.Constant, at.Len)
		for i := range elems {
			if elems[i], err = d.readConstant(); err != nil {
				return nil, err
			}
		}
		return core.NewArrayConst(at.Elem, elems), nil
	case ckStruct:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		st, ok := t.(*core.StructType)
		if !ok {
			return nil, fmt.Errorf("bytecode: struct constant of type %s", t)
		}
		fields := make([]core.Constant, len(st.Fields))
		for i := range fields {
			if fields[i], err = d.readConstant(); err != nil {
				return nil, err
			}
		}
		return core.NewStructConst(st, fields), nil
	case ckExprCast:
		t, err := d.readType()
		if err != nil {
			return nil, err
		}
		v, err := d.readConstant()
		if err != nil {
			return nil, err
		}
		return core.NewConstCast(v, t), nil
	case ckExprGEP:
		n, err := d.r.uvarint()
		if err != nil {
			return nil, err
		}
		base, err := d.readConstant()
		if err != nil {
			return nil, err
		}
		idx := make([]core.Constant, n)
		for i := range idx {
			if idx[i], err = d.readConstant(); err != nil {
				return nil, err
			}
		}
		ivals := make([]core.Value, len(idx))
		for i, x := range idx {
			ivals[i] = x
		}
		if _, err := core.GEPResultType(base.Type(), ivals); err != nil {
			return nil, fmt.Errorf("bytecode: %w", err)
		}
		return core.NewConstGEP(base, idx...), nil
	}
	return nil, fmt.Errorf("bytecode: bad constant kind %d", kind)
}

func (d *decoder) readType() (core.Type, error) {
	id, err := d.r.uvarint()
	if err != nil {
		return nil, err
	}
	return d.typeByID(id)
}
