// Package workload generates the synthetic benchmark suite that substitutes
// for the SPEC CPU2000 C programs in the paper's evaluation (see DESIGN.md
// §3). Each of the fifteen programs is produced as MiniC source from a
// shape profile controlling the code properties the paper's experiments
// actually measure: how much of the code allocates through custom void*
// pool allocators (drives Table 1's untyped accesses), how much type
// punning it contains, how many dead globals/functions/arguments it carries
// (drives Table 2's DGE/DAE work), call-graph fan-out and function sizes
// (drives inlining), and overall code volume (drives Figure 5's sizes).
//
// Generation is deterministic: the same profile always yields byte-equal
// source, so experiments are reproducible.
package workload

import (
	"fmt"
	"strings"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC-style benchmark name (e.g. "164.gzip").
	Name string
	// Units is the number of separately-compiled translation units.
	Units int
	// FuncsPerUnit is the number of worker functions per unit.
	FuncsPerUnit int
	// Structs is the number of distinct struct types.
	Structs int
	// PoolAllocEvery makes every k'th allocating function use the custom
	// pool allocator instead of typed malloc (0 = never). Custom
	// allocators are the paper's leading cause of lost type information.
	PoolAllocEvery int
	// PunEvery makes every k'th struct-using function reuse another
	// struct type through an incompatible cast (0 = never) — the paper's
	// "different structure types for the same objects".
	PunEvery int
	// DeadGlobals and DeadFuncs per unit feed dead global elimination.
	DeadGlobals int
	DeadFuncs   int
	// DeadArgs adds an unused trailing parameter to every worker.
	DeadArgs bool
	// LoopIters scales runtime work (kept small: programs must terminate
	// quickly under the interpreter).
	LoopIters int
	// ListLen is the linked-list length data-structure workers build.
	ListLen int
	// Seed perturbs constants so programs differ beyond shape.
	Seed int64
}

// rng is a tiny deterministic generator (no math/rand dependency keeps
// generation byte-stable across Go versions).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Program is the generated benchmark: one MiniC source per translation
// unit (unit 0 contains main).
type Program struct {
	Profile Profile
	Units   []string
}

// Source returns the concatenation of all units (for single-module use;
// extern declarations resolve within the merged text).
func (p *Program) Source() string { return strings.Join(p.Units, "\n") }

// Generate builds the program for a profile.
func Generate(p Profile) *Program {
	g := &gen{p: p, r: rng{s: uint64(p.Seed)*2654435761 + 12345}}
	return g.run()
}

type gen struct {
	p Profile
	r rng
}

func (g *gen) run() *Program {
	prog := &Program{Profile: g.p}

	var structDefs strings.Builder
	for s := 0; s < g.p.Structs; s++ {
		// The pad array makes every struct structurally distinct, so
		// casting between them is a genuine reinterpreting cast.
		fmt.Fprintf(&structDefs, "struct S%d { int tag; long key%d; double w; struct S%d *next; int pad%d[%d]; };\n",
			s, s, s, s, s+1)
	}
	// The shared pool allocator (classic custom allocator shape).
	pool := `
static char pool_arena[16384];
static int pool_pos = 0;
static char *pool_alloc(int n) {
	char *p;
	if (pool_pos + n > 16384) { pool_pos = 0; }
	p = &pool_arena[pool_pos];
	pool_pos += n;
	return p;
}
`

	for u := 0; u < g.p.Units; u++ {
		var b strings.Builder
		fmt.Fprintf(&b, "/* %s - unit %d (generated) */\n", g.p.Name, u)
		b.WriteString(structDefs.String())
		if g.p.PoolAllocEvery > 0 {
			if u == 0 {
				b.WriteString(pool)
			} else {
				b.WriteString("extern char *pool_alloc(int n);\n")
			}
		}
		// Cross-unit externs for the unit entry points.
		for v := 0; v < g.p.Units; v++ {
			if v != u {
				fmt.Fprintf(&b, "extern int unit%d_entry(int x);\n", v)
			}
		}

		g.emitDeadCode(&b, u)
		funcNames := g.emitWorkers(&b, u)
		g.emitUnitEntry(&b, u, funcNames)
		if u == 0 {
			g.emitMain(&b)
		}
		prog.Units = append(prog.Units, b.String())
	}
	return prog
}

// emitDeadCode writes globals and functions nothing references.
func (g *gen) emitDeadCode(b *strings.Builder, unit int) {
	for i := 0; i < g.p.DeadGlobals; i++ {
		switch g.r.intn(3) {
		case 0:
			fmt.Fprintf(b, "static int dead_g%d_%d = %d;\n", unit, i, g.r.intn(1000))
		case 1:
			fmt.Fprintf(b, "static long dead_tab%d_%d[8] = {%d, %d};\n", unit, i, g.r.intn(99), g.r.intn(99))
		default:
			fmt.Fprintf(b, "static double dead_d%d_%d = %d.5;\n", unit, i, g.r.intn(50))
		}
	}
	for i := 0; i < g.p.DeadFuncs; i++ {
		// Dead functions call each other in pairs so only the
		// assume-dead-until-proven-live discipline deletes them.
		fmt.Fprintf(b, "static int dead_f%d_%d(int x);\n", unit, i)
	}
	for i := 0; i < g.p.DeadFuncs; i++ {
		peer := (i + 1) % g.p.DeadFuncs
		fmt.Fprintf(b, "static int dead_f%d_%d(int x) { if (x > 0) return dead_f%d_%d(x - 1); return x; }\n",
			unit, i, unit, peer)
	}
}

// emitWorkers writes the worker functions and returns their names.
func (g *gen) emitWorkers(b *strings.Builder, unit int) []string {
	var names []string
	for i := 0; i < g.p.FuncsPerUnit; i++ {
		name := fmt.Sprintf("work%d_%d", unit, i)
		names = append(names, name)
		kind := i % 4
		switch kind {
		case 0:
			g.emitListWorker(b, name, i)
		case 1:
			g.emitLoopWorker(b, name, i)
		case 2:
			g.emitSwitchWorker(b, name, i)
		default:
			g.emitArrayWorker(b, name, i)
		}
	}
	return names
}

func (g *gen) deadParam() string {
	if g.p.DeadArgs {
		return ", int unused"
	}
	return ""
}

func (g *gen) deadArg() string {
	if g.p.DeadArgs {
		return ", 0"
	}
	return ""
}

// emitListWorker builds and traverses a linked list; allocation style and
// punning are controlled by the profile.
func (g *gen) emitListWorker(b *strings.Builder, name string, idx int) {
	s := idx % max(1, g.p.Structs)
	usePool := g.p.PoolAllocEvery > 0 && idx%g.p.PoolAllocEvery == 0
	pun := g.p.PunEvery > 0 && idx%g.p.PunEvery == 1 && g.p.Structs > 1

	alloc := fmt.Sprintf("(struct S%d*)malloc(sizeof(struct S%d))", s, s)
	if usePool {
		alloc = fmt.Sprintf("(struct S%d*)pool_alloc(%d)", s, 32)
	}
	fmt.Fprintf(b, "static int %s(int n%s) {\n", name, g.deadParam())
	fmt.Fprintf(b, "\tstruct S%d *head = 0;\n\tint i;\n", s)
	fmt.Fprintf(b, "\tfor (i = 0; i < %d; i++) {\n", g.p.ListLen)
	fmt.Fprintf(b, "\t\tstruct S%d *nd = %s;\n", s, alloc)
	fmt.Fprintf(b, "\t\tnd->tag = i + n;\n\t\tnd->key%d = (long)(i * %d);\n", s, 3+g.r.intn(9))
	fmt.Fprintf(b, "\t\tnd->next = head;\n\t\thead = nd;\n\t}\n")
	if pun {
		o := (s + 1) % g.p.Structs
		fmt.Fprintf(b, "\t{\n\t\tstruct S%d *alias = (struct S%d*)head;\n", o, o)
		fmt.Fprintf(b, "\t\talias->tag = alias->tag + 1;\n\t}\n")
	}
	fmt.Fprintf(b, "\tint sum = 0;\n\tstruct S%d *cur = head;\n", s)
	fmt.Fprintf(b, "\twhile (cur) {\n\t\tsum += cur->tag + (int)cur->key%d;\n", s)
	if usePool {
		fmt.Fprintf(b, "\t\tcur = cur->next;\n\t}\n")
	} else {
		fmt.Fprintf(b, "\t\tstruct S%d *dead = cur;\n\t\tcur = cur->next;\n\t\tfree(dead);\n\t}\n", s)
	}
	fmt.Fprintf(b, "\treturn sum;\n}\n")
}

// emitLoopWorker writes nested arithmetic loops (hot-region material for
// the profiling experiments).
func (g *gen) emitLoopWorker(b *strings.Builder, name string, idx int) {
	c1, c2 := 1+g.r.intn(7), 1+g.r.intn(5)
	fmt.Fprintf(b, "static int %s(int n%s) {\n", name, g.deadParam())
	fmt.Fprintf(b, "\tint acc = %d;\n\tint i; int j;\n", g.r.intn(100))
	fmt.Fprintf(b, "\tfor (i = 0; i < %d; i++) {\n", g.p.LoopIters)
	fmt.Fprintf(b, "\t\tfor (j = 0; j < %d; j++) {\n", 4+g.r.intn(4))
	fmt.Fprintf(b, "\t\t\tacc = acc * %d + j * %d + n;\n", c1, c2)
	fmt.Fprintf(b, "\t\t\tacc = acc %% 100003;\n\t\t}\n\t}\n")
	fmt.Fprintf(b, "\treturn acc;\n}\n")
}

// emitSwitchWorker writes interpreter-style dispatch.
func (g *gen) emitSwitchWorker(b *strings.Builder, name string, idx int) {
	fmt.Fprintf(b, "static int %s(int n%s) {\n", name, g.deadParam())
	fmt.Fprintf(b, "\tint state = n;\n\tint i;\n")
	fmt.Fprintf(b, "\tfor (i = 0; i < %d; i++) {\n", g.p.LoopIters)
	fmt.Fprintf(b, "\t\tswitch (state %% 5) {\n")
	for c := 0; c < 4; c++ {
		fmt.Fprintf(b, "\t\tcase %d: state = state * %d + %d; break;\n", c, 2+g.r.intn(4), g.r.intn(10))
	}
	fmt.Fprintf(b, "\t\tdefault: state = state / 2 + 1; break;\n\t\t}\n")
	fmt.Fprintf(b, "\t\tstate = state %% 65521;\n\t\tif (state < 0) state = -state;\n\t}\n")
	fmt.Fprintf(b, "\treturn state;\n}\n")
}

// emitArrayWorker writes array/matrix traffic, with the profile's punning
// style occasionally reading the bytes of an int array as chars.
func (g *gen) emitArrayWorker(b *strings.Builder, name string, idx int) {
	pun := g.p.PunEvery > 0 && idx%g.p.PunEvery == 0
	fmt.Fprintf(b, "static int %s(int n%s) {\n", name, g.deadParam())
	fmt.Fprintf(b, "\tint buf[16];\n\tint i;\n")
	fmt.Fprintf(b, "\tfor (i = 0; i < 16; i++) buf[i] = i * n + %d;\n", g.r.intn(16))
	if pun {
		fmt.Fprintf(b, "\t{\n\t\tchar *bytes = (char*)buf;\n\t\tint k;\n")
		fmt.Fprintf(b, "\t\tfor (k = 0; k < 16; k++) bytes[k] = (char)(bytes[k] + 1);\n\t}\n")
	}
	fmt.Fprintf(b, "\tint sum = 0;\n")
	fmt.Fprintf(b, "\tfor (i = 0; i < 16; i++) sum += buf[i];\n")
	fmt.Fprintf(b, "\treturn sum;\n}\n")
}

// emitUnitEntry writes the per-unit entry that chains the workers.
func (g *gen) emitUnitEntry(b *strings.Builder, unit int, workers []string) {
	fmt.Fprintf(b, "int unit%d_entry(int x) {\n\tint r = x;\n", unit)
	for i, w := range workers {
		// Half the calls pass a constant (IPCP fodder), half chain.
		if i%2 == 0 {
			fmt.Fprintf(b, "\tr = r + %s(%d%s);\n", w, 3+i, g.deadArg())
		} else {
			fmt.Fprintf(b, "\tr = r + %s(r %% 97%s);\n", w, g.deadArg())
		}
	}
	fmt.Fprintf(b, "\treturn r %% 1000003;\n}\n")
}

func (g *gen) emitMain(b *strings.Builder) {
	fmt.Fprintf(b, "int main() {\n\tint total = 0;\n")
	for u := 0; u < g.p.Units; u++ {
		fmt.Fprintf(b, "\ttotal = total + unit%d_entry(%d);\n", u, u+1)
	}
	fmt.Fprintf(b, "\treturn total %% 251;\n}\n")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
