package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/passes"
)

// compileProgram builds a program's units and links them.
func compileProgram(t *testing.T, prog *Program) *core.Module {
	t.Helper()
	var mods []*core.Module
	for i, src := range prog.Units {
		m, err := minic.Compile(prog.Profile.Name+".u"+string(rune('0'+i)), src)
		if err != nil {
			t.Fatalf("%s unit %d: %v", prog.Profile.Name, i, err)
		}
		mods = append(mods, m)
	}
	linked, err := linker.Link(prog.Profile.Name, mods...)
	if err != nil {
		t.Fatalf("%s link: %v", prog.Profile.Name, err)
	}
	if err := core.Verify(linked); err != nil {
		t.Fatalf("%s verify: %v", prog.Profile.Name, err)
	}
	return linked
}

func TestGenerationDeterministic(t *testing.T) {
	p, _ := ByName("176.gcc")
	a, b := Generate(p), Generate(p)
	if a.Source() != b.Source() {
		t.Fatal("generation is not deterministic")
	}
}

func TestAllBenchmarksCompileLinkRun(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := Generate(p)
			m := compileProgram(t, prog)
			mc, err := interp.NewMachine(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			mc.MaxSteps = 50_000_000
			v1, err := mc.RunMain()
			if err != nil {
				t.Fatalf("run: %v", err)
			}

			// Optimized build must agree.
			m2 := compileProgram(t, Generate(p))
			pm := passes.NewPassManager()
			pm.Add(passes.NewInternalize())
			pm.AddLinkTimePipeline()
			if _, err := pm.Run(m2); err != nil {
				t.Fatal(err)
			}
			if err := core.Verify(m2); err != nil {
				t.Fatalf("optimized module invalid: %v", err)
			}
			mc2, _ := interp.NewMachine(m2, nil)
			mc2.MaxSteps = 50_000_000
			v2, err := mc2.RunMain()
			if err != nil {
				t.Fatalf("optimized run: %v", err)
			}
			if v1 != v2 {
				t.Fatalf("optimization changed result: %d vs %d", v1, v2)
			}
			if mc2.Steps >= mc.Steps {
				t.Errorf("optimized build does less work? %d vs %d steps", mc2.Steps, mc.Steps)
			}
		})
	}
}

func TestDGEFindsDeadCode(t *testing.T) {
	p, _ := ByName("176.gcc")
	m := compileProgram(t, Generate(p))
	passes.NewInternalize().RunOnModule(m)
	dge := passes.NewDeadGlobalElim()
	dge.RunOnModule(m)
	if dge.NumFuncs < p.DeadFuncs*p.Units {
		t.Errorf("DGE deleted %d functions, profile plants at least %d", dge.NumFuncs, p.DeadFuncs*p.Units)
	}
	if dge.NumGlobals < p.DeadGlobals*p.Units {
		t.Errorf("DGE deleted %d globals, profile plants at least %d", dge.NumGlobals, p.DeadGlobals*p.Units)
	}
}

// scalarCleanup runs the compile-time per-function pipeline (what the
// paper's front-end invokes before link time, §3.2), so measurements see
// optimizer-grade code rather than raw stack traffic.
func scalarCleanup(t *testing.T, m *core.Module) {
	t.Helper()
	pm := passes.NewPassManager()
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestDAEFindsDeadArgs(t *testing.T) {
	p, _ := ByName("255.vortex")
	m := compileProgram(t, Generate(p))
	passes.NewInternalize().RunOnModule(m)
	scalarCleanup(t, m)
	dae := passes.NewDeadArgElim()
	dae.RunOnModule(m)
	if dae.NumArgs == 0 {
		t.Error("DAE found no dead arguments despite DeadArgs profile")
	}
}

func TestTypedAccessSpread(t *testing.T) {
	// The cross-suite shape of Table 1: disciplined programs score high,
	// custom-allocator programs score low, and the suite average sits in
	// the paper's mid-60s to low-70s band.
	var clean, dirty []float64
	var sum float64
	n := 0
	for _, p := range Suite() {
		m := compileProgram(t, Generate(p))
		passes.NewInternalize().RunOnModule(m)
		scalarCleanup(t, m)
		pct := dsa.Analyze(m).TypedPercent()
		sum += pct
		n++
		switch p.Name {
		case "164.gzip", "179.art", "181.mcf", "256.bzip2":
			clean = append(clean, pct)
		case "197.parser", "254.gap", "255.vortex":
			dirty = append(dirty, pct)
		}
		t.Logf("%-12s typed=%.1f%%", p.Name, pct)
	}
	for _, c := range clean {
		if c < 80 {
			t.Errorf("clean benchmark scored %.1f%%, want >= 80%%", c)
		}
	}
	for _, d := range dirty {
		if d > 75 {
			t.Errorf("allocator-heavy benchmark scored %.1f%%, want < 75%%", d)
		}
	}
	avg := sum / float64(n)
	if avg < 50 || avg > 90 {
		t.Errorf("suite average %.1f%% outside the plausible band (paper: 68%%)", avg)
	}
	t.Logf("suite average typed: %.1f%% (paper reports 68.04%%)", avg)
}

func TestProgramSizesVary(t *testing.T) {
	gcc := compileProgram(t, Generate(mustProfile(t, "176.gcc")))
	mcf := compileProgram(t, Generate(mustProfile(t, "181.mcf")))
	if gcc.NumInstructions() <= 2*mcf.NumInstructions() {
		t.Errorf("176.gcc (%d instrs) should dwarf 181.mcf (%d instrs)",
			gcc.NumInstructions(), mcf.NumInstructions())
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return p
}

// TestJITMatchesInterpreterOnSuite runs every benchmark under both
// execution-engine paths (§3.4: offline interpreter vs function-at-a-time
// JIT) and requires identical results.
func TestJITMatchesInterpreterOnSuite(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := compileProgram(t, Generate(p))
			mc1, _ := interp.NewMachine(m, nil)
			mc1.MaxSteps = 50_000_000
			v1, err1 := mc1.RunMain()
			mc2, _ := interp.NewMachine(m, nil)
			mc2.MaxSteps = 50_000_000
			mc2.EnableJIT()
			v2, err2 := mc2.RunMain()
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v / %v", err1, err2)
			}
			if v1 != v2 {
				t.Fatalf("JIT divergence: %d vs %d", v1, v2)
			}
		})
	}
}

// TestOptimizedSuiteUnderJIT runs the fully link-time-optimized programs
// under the JIT as well — the deepest cross-product of the pipelines.
func TestOptimizedSuiteUnderJIT(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := compileProgram(t, Generate(p))
			ref, _ := interp.NewMachine(m, nil)
			ref.MaxSteps = 50_000_000
			want, err := ref.RunMain()
			if err != nil {
				t.Fatal(err)
			}
			pm := passes.NewPassManager()
			pm.Add(passes.NewInternalize())
			pm.AddLinkTimePipeline()
			if _, err := pm.Run(m); err != nil {
				t.Fatal(err)
			}
			mc, _ := interp.NewMachine(m, nil)
			mc.MaxSteps = 50_000_000
			mc.EnableJIT()
			got, err := mc.RunMain()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("optimized+JIT divergence: %d vs %d", got, want)
			}
		})
	}
}
