package workload

// Suite returns the fifteen SPEC CPU2000 C benchmark analogues. The shape
// parameters follow the paper's per-program characterization (§4.1.1):
//
//   - 164, 175, 179, 181, 183, 186, 256, 300: "a surprisingly high
//     proportion of memory accesses with reliable type information" —
//     little or no custom allocation or punning.
//   - 197, 254, 255: custom memory allocators are the leading cause of
//     lost type information.
//   - 176, 253, 254: inherently non-type-safe constructs (the same objects
//     used at different structure types).
//   - 177, 188: imprecision (mixed generic code paths).
//
// Sizes (units x funcs) roughly track relative SPEC program sizes, with
// 176.gcc the largest.
func Suite() []Profile {
	return []Profile{
		{Name: "164.gzip", Units: 2, FuncsPerUnit: 8, Structs: 2,
			DeadGlobals: 3, DeadFuncs: 2, LoopIters: 24, ListLen: 12, Seed: 164},
		{Name: "175.vpr", Units: 3, FuncsPerUnit: 10, Structs: 3, PunEvery: 16,
			DeadGlobals: 4, DeadFuncs: 3, DeadArgs: true, LoopIters: 20, ListLen: 10, Seed: 175},
		{Name: "176.gcc", Units: 6, FuncsPerUnit: 16, Structs: 6, PunEvery: 3,
			DeadGlobals: 10, DeadFuncs: 6, DeadArgs: true, LoopIters: 12, ListLen: 8, Seed: 176},
		{Name: "177.mesa", Units: 4, FuncsPerUnit: 12, Structs: 4, PunEvery: 5, PoolAllocEvery: 9,
			DeadGlobals: 6, DeadFuncs: 3, LoopIters: 16, ListLen: 8, Seed: 177},
		{Name: "179.art", Units: 1, FuncsPerUnit: 8, Structs: 2,
			DeadGlobals: 2, DeadFuncs: 2, LoopIters: 32, ListLen: 10, Seed: 179},
		{Name: "181.mcf", Units: 1, FuncsPerUnit: 7, Structs: 2,
			DeadGlobals: 2, DeadFuncs: 2, DeadArgs: true, LoopIters: 28, ListLen: 16, Seed: 181},
		{Name: "183.equake", Units: 2, FuncsPerUnit: 8, Structs: 2,
			DeadGlobals: 3, DeadFuncs: 2, LoopIters: 24, ListLen: 8, Seed: 183},
		{Name: "186.crafty", Units: 3, FuncsPerUnit: 12, Structs: 3, PunEvery: 20,
			DeadGlobals: 5, DeadFuncs: 3, LoopIters: 20, ListLen: 8, Seed: 186},
		{Name: "188.ammp", Units: 3, FuncsPerUnit: 10, Structs: 4, PunEvery: 6, PoolAllocEvery: 10,
			DeadGlobals: 4, DeadFuncs: 3, LoopIters: 18, ListLen: 10, Seed: 188},
		{Name: "197.parser", Units: 3, FuncsPerUnit: 12, Structs: 4, PoolAllocEvery: 2,
			DeadGlobals: 5, DeadFuncs: 4, DeadArgs: true, LoopIters: 16, ListLen: 10, Seed: 197},
		{Name: "253.perlbmk", Units: 4, FuncsPerUnit: 14, Structs: 5, PunEvery: 3,
			DeadGlobals: 8, DeadFuncs: 5, DeadArgs: true, LoopIters: 14, ListLen: 8, Seed: 253},
		{Name: "254.gap", Units: 4, FuncsPerUnit: 14, Structs: 5, PunEvery: 4, PoolAllocEvery: 3,
			DeadGlobals: 8, DeadFuncs: 5, DeadArgs: true, LoopIters: 14, ListLen: 8, Seed: 254},
		{Name: "255.vortex", Units: 5, FuncsPerUnit: 14, Structs: 5, PoolAllocEvery: 2,
			DeadGlobals: 9, DeadFuncs: 6, DeadArgs: true, LoopIters: 12, ListLen: 8, Seed: 255},
		{Name: "256.bzip2", Units: 2, FuncsPerUnit: 8, Structs: 2,
			DeadGlobals: 3, DeadFuncs: 2, LoopIters: 26, ListLen: 10, Seed: 256},
		{Name: "300.twolf", Units: 3, FuncsPerUnit: 11, Structs: 3, PunEvery: 22,
			DeadGlobals: 5, DeadFuncs: 3, LoopIters: 20, ListLen: 10, Seed: 300},
	}
}

// ByName returns the profile for a benchmark name, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
