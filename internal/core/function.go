package core

// Linkage describes symbol visibility at link time. Internal symbols can be
// eliminated or transformed aggressively by the link-time optimizer because
// no other module can reference them.
type Linkage int

// Linkage kinds.
const (
	ExternalLinkage Linkage = iota
	InternalLinkage
)

// String returns the assembly keyword for the linkage ("" for external).
func (l Linkage) String() string {
	if l == InternalLinkage {
		return "internal"
	}
	return ""
}

// Argument is a formal parameter of a Function.
type Argument struct {
	valueBase
	parent *Function
	index  int
}

// Parent returns the function owning the argument.
func (a *Argument) Parent() *Function { return a.parent }

// Index returns the argument's position.
func (a *Argument) Index() int { return a.index }

// Function is a global function: a signature plus (for definitions) a list
// of basic blocks, the first of which is the entry block. A Function value
// has pointer-to-function type, so it can be used directly as a call or
// invoke callee and stored in memory like any other pointer.
type Function struct {
	valueBase
	parent  *Module
	Sig     *FunctionType
	Linkage Linkage
	Args    []*Argument
	Blocks  []*BasicBlock
}

// NewFunction creates a detached function with the given name and
// signature; arguments are created unnamed.
func NewFunction(name string, sig *FunctionType) *Function {
	f := &Function{Sig: sig}
	f.name = name
	f.typ = NewPointer(sig)
	f.markShared()
	for i := range sig.Params {
		a := &Argument{parent: f, index: i}
		a.typ = sig.Params[i]
		f.Args = append(f.Args, a)
	}
	return f
}

// Parent returns the module containing the function, or nil.
func (f *Function) Parent() *Module { return f.parent }

// IsDeclaration reports whether the function has no body (an external
// declaration to be resolved at link time).
func (f *Function) IsDeclaration() bool { return len(f.Blocks) == 0 }

// Entry returns the entry basic block, or nil for declarations.
func (f *Function) Entry() *BasicBlock {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// AddBlock appends a block to the function.
func (f *Function) AddBlock(b *BasicBlock) {
	b.parent = f
	f.Blocks = append(f.Blocks, b)
}

// InsertBlockAfter inserts nb immediately after mark.
func (f *Function) InsertBlockAfter(nb, mark *BasicBlock) {
	nb.parent = f
	for i, b := range f.Blocks {
		if b == mark {
			f.Blocks = append(f.Blocks, nil)
			copy(f.Blocks[i+2:], f.Blocks[i+1:])
			f.Blocks[i+1] = nb
			return
		}
	}
	panic("core.InsertBlockAfter: mark not in function")
}

// RemoveBlock unlinks b from the function. The caller is responsible for
// fixing any dangling references (phis, branches).
func (f *Function) RemoveBlock(b *BasicBlock) {
	for i, x := range f.Blocks {
		if x == b {
			copy(f.Blocks[i:], f.Blocks[i+1:])
			f.Blocks = f.Blocks[:len(f.Blocks)-1]
			b.parent = nil
			return
		}
	}
}

// EraseBlock unlinks b and drops all operand uses of its instructions.
func (f *Function) EraseBlock(b *BasicBlock) {
	for _, inst := range b.Instrs {
		DropOperands(inst)
	}
	b.Instrs = nil
	f.RemoveBlock(b)
}

// NumInstructions returns the total instruction count across all blocks.
func (f *Function) NumInstructions() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ForEachInst invokes fn on every instruction in block order; if fn returns
// false iteration stops.
func (f *Function) ForEachInst(fn func(Instruction) bool) {
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if !fn(inst) {
				return
			}
		}
	}
}

// HasAddressTaken reports whether the function's address escapes: it is
// referenced by something other than the callee slot of a direct call or
// invoke. Functions whose address is taken can be called indirectly, so
// interprocedural transforms must be conservative about them.
func (f *Function) HasAddressTaken() bool {
	for _, u := range f.Uses() {
		switch inst := u.User.(type) {
		case *CallInst:
			if u.Index != 0 {
				return true
			}
			_ = inst
		case *InvokeInst:
			if u.Index != 0 {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// Callers returns the direct call/invoke sites targeting f.
func (f *Function) Callers() []Instruction {
	var out []Instruction
	for _, u := range f.Uses() {
		switch inst := u.User.(type) {
		case *CallInst:
			if u.Index == 0 {
				out = append(out, inst)
			}
		case *InvokeInst:
			if u.Index == 0 {
				out = append(out, inst)
			}
		}
	}
	return out
}

// GlobalVariable is a module-level memory object. Per the paper's unified
// memory model (§2.3), the global's *symbol* denotes the address of the
// object, so the value's type is a pointer to ValueType.
type GlobalVariable struct {
	valueBase
	parent    *Module
	ValueType Type
	Init      Constant // nil for external declarations
	IsConst   bool
	Linkage   Linkage
}

// NewGlobal creates a detached global variable definition.
func NewGlobal(name string, valueType Type, init Constant) *GlobalVariable {
	g := &GlobalVariable{ValueType: valueType, Init: init}
	g.name = name
	g.typ = NewPointer(valueType)
	g.markShared()
	return g
}

// Parent returns the module containing the global, or nil.
func (g *GlobalVariable) Parent() *Module { return g.parent }

// IsDeclaration reports whether the global has no initializer.
func (g *GlobalVariable) IsDeclaration() bool { return g.Init == nil }

// Functions and global variables are constants: their value is a
// compile-time-known address, so they may appear in global initializers and
// constant expressions (like LLVM's GlobalValue).
func (f *Function) isConstant()       {}
func (g *GlobalVariable) isConstant() {}
