package core_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

// cloneSource exercises the constructs CloneModule must remap: named and
// recursive struct types, globals with aggregate and constant-expression
// initializers, function pointers, and bodies using every reference kind.
const cloneSource = `; ModuleID = 'clonesrc'

%pair = type { int, float }
%node = type { int, %node* }

%origin = global %pair { int 1, float 2.5 }
%table = internal constant [3 x int] [ int 10, int 20, int 30 ]
%tp = global int* getelementptr ([3 x int]* %table, long 0, long 0)
%fp = global int (int)* %double

int %double(int %x) {
entry:
	%r = add int %x, %x
	ret int %r
}

int %main() {
entry:
	%p = alloca %pair
	%f0 = getelementptr %pair* %p, long 0, ubyte 0
	store int 7, int* %f0
	%v = load int* %f0
	%n = malloc %node
	%link = getelementptr %node* %n, long 0, ubyte 1
	store %node* null, %node** %link
	free %node* %n
	%d = call int %double(int %v)
	ret int %d
}
`

func parseClone(t *testing.T) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("clonesrc", cloneSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify source: %v", err)
	}
	return m
}

func TestCloneModulePrintsIdentically(t *testing.T) {
	m := parseClone(t)
	c := core.CloneModule(m)
	if err := core.Verify(c); err != nil {
		t.Fatalf("clone fails verify: %v", err)
	}
	if got, want := c.String(), m.String(); got != want {
		t.Fatalf("clone prints differently:\n--- original ---\n%s\n--- clone ---\n%s", want, got)
	}
}

func TestCloneModuleIsolation(t *testing.T) {
	m := parseClone(t)
	before := m.String()
	c := core.CloneModule(m)

	// Mutating the clone's type graph, globals, and function bodies must
	// leave the original untouched.
	pt, ok := c.NamedType("pair")
	if !ok {
		t.Fatal("clone lost named type pair")
	}
	st := pt.(*core.StructType)
	st.Fields[0], st.Fields[1] = st.Fields[1], st.Fields[0]

	g := c.Global("origin")
	if g == nil {
		t.Fatal("clone lost global origin")
	}
	g.Init = core.NewZero(g.ValueType)

	f := c.Func("main")
	if f == nil || f.IsDeclaration() {
		t.Fatal("clone lost function main")
	}
	f.Blocks = nil

	if got := m.String(); got != before {
		t.Fatalf("mutating clone changed original:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}
}

func TestAdoptFrom(t *testing.T) {
	m := parseClone(t)
	snap := core.CloneModule(m)
	// Wreck m, then roll back by adopting the snapshot.
	m.Func("main").Blocks = nil
	m.AdoptFrom(snap)
	if err := core.Verify(m); err != nil {
		t.Fatalf("restored module fails verify: %v", err)
	}
	if !strings.Contains(m.String(), "call int %double") {
		t.Fatal("restored module lost function body")
	}
	if m.Func("main").Parent() != m {
		t.Fatal("adopted function not re-parented")
	}
}
