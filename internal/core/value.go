package core

import "sync"

// Value is anything that can be used as an operand: instructions, constants,
// function arguments, basic blocks (as branch targets), global variables,
// and functions. Every value has a type; SSA virtual registers are simply
// instructions whose type is first-class.
type Value interface {
	// Name returns the value's name without the leading sigil. Unnamed
	// values get printed with slot numbers by the printer.
	Name() string
	// SetName renames the value.
	SetName(string)
	// Type returns the value's type.
	Type() Type
	// Uses returns the list of (user, operand-index) pairs referencing
	// this value. The returned slice must not be mutated.
	Uses() []Use

	addUse(u Use)
	removeUse(u Use)
	numUses() int
}

// Use records a single reference to a value: the using instruction (or
// other User) and the operand index within it.
type Use struct {
	User  User
	Index int
}

// User is a Value that references other values as operands.
type User interface {
	Value
	// Operands returns the operand list. The returned slice must not be
	// mutated directly; use SetOperand.
	Operands() []Value
	// Operand returns the i'th operand.
	Operand(i int) Value
	// NumOperands returns the operand count.
	NumOperands() int
	// SetOperand replaces the i'th operand, maintaining use lists.
	SetOperand(i int, v Value)
}

// valueBase supplies the common Value bookkeeping; concrete values embed it.
//
// Values that can be referenced from more than one function — constants,
// functions, global variables — are marked shared at construction. Their use
// lists are guarded by a mutex so function-at-a-time transforms may run
// concurrently (the parallel funcPassAdapter in internal/passes): erasing an
// instruction or rewriting a call site in one function edits the use list of
// its callee or of a constant that other functions reference too. Values that
// live inside a single function (instructions, arguments, blocks) stay
// lock-free; exactly one goroutine ever touches them.
type valueBase struct {
	name   string
	typ    Type
	uses   []Use
	shared bool
	mu     sync.Mutex
}

func (v *valueBase) Name() string        { return v.name }
func (v *valueBase) SetName(name string) { v.name = name }
func (v *valueBase) Type() Type          { return v.typ }

// markShared flags the value as reachable from multiple functions; set once
// at construction, before the value can be visible to any other goroutine.
func (v *valueBase) markShared() { v.shared = true }

// Uses returns the use list. For shared values it is a snapshot copy taken
// under the lock, so callers may iterate while other functions' transforms
// add or remove uses concurrently.
func (v *valueBase) Uses() []Use {
	if !v.shared {
		return v.uses
	}
	v.mu.Lock()
	out := append([]Use(nil), v.uses...)
	v.mu.Unlock()
	return out
}

func (v *valueBase) addUse(u Use) {
	if v.shared {
		v.mu.Lock()
		v.uses = append(v.uses, u)
		v.mu.Unlock()
		return
	}
	v.uses = append(v.uses, u)
}

func (v *valueBase) removeUse(u Use) {
	if v.shared {
		v.mu.Lock()
		defer v.mu.Unlock()
	}
	for i, x := range v.uses {
		if x.User == u.User && x.Index == u.Index {
			last := len(v.uses) - 1
			v.uses[i] = v.uses[last]
			v.uses = v.uses[:last]
			return
		}
	}
}

// numUses reads the use count without copying the list.
func (v *valueBase) numUses() int {
	if !v.shared {
		return len(v.uses)
	}
	v.mu.Lock()
	n := len(v.uses)
	v.mu.Unlock()
	return n
}

// NumUses returns the number of uses of v.
func NumUses(v Value) int { return v.numUses() }

// HasUses reports whether v has at least one use.
func HasUses(v Value) bool { return v.numUses() > 0 }

// ReplaceAllUses rewrites every use of old to refer to new instead
// (LLVM's replaceAllUsesWith). The two values should have equal types.
func ReplaceAllUses(old, new Value) {
	if old == new {
		return
	}
	// Copy because SetOperand mutates the use list.
	uses := append([]Use(nil), old.Uses()...)
	for _, u := range uses {
		u.User.SetOperand(u.Index, new)
	}
}

// userBase supplies operand bookkeeping for Users. The embedding value must
// call initOperands (or appendOperand) so use lists stay consistent, and
// dropOperands before being discarded.
type userBase struct {
	valueBase
	ops []Value
}

func (u *userBase) Operands() []Value   { return u.ops }
func (u *userBase) Operand(i int) Value { return u.ops[i] }
func (u *userBase) NumOperands() int    { return len(u.ops) }

// setOperands installs the initial operand list for user 'self' (the
// concrete value embedding this base), registering uses.
func (u *userBase) setOperands(self User, ops []Value) {
	u.ops = make([]Value, len(ops))
	for i, v := range ops {
		u.ops[i] = v
		if v != nil {
			v.addUse(Use{User: self, Index: i})
		}
	}
}

// appendOperand adds one operand to the end of the list.
func (u *userBase) appendOperand(self User, v Value) {
	idx := len(u.ops)
	u.ops = append(u.ops, v)
	if v != nil {
		v.addUse(Use{User: self, Index: idx})
	}
}

// setOperandAt implements SetOperand for the concrete user 'self'.
func (u *userBase) setOperandAt(self User, i int, v Value) {
	old := u.ops[i]
	if old == v {
		return
	}
	if old != nil {
		old.removeUse(Use{User: self, Index: i})
	}
	u.ops[i] = v
	if v != nil {
		v.addUse(Use{User: self, Index: i})
	}
}

// dropOperandsFrom removes all operand uses; call before deleting the user.
func (u *userBase) dropOperandsFrom(self User) {
	for i, v := range u.ops {
		if v != nil {
			v.removeUse(Use{User: self, Index: i})
		}
	}
	u.ops = nil
}

// truncateOperands removes operands [n:] from the list (used by phi and
// switch editing), maintaining use lists.
func (u *userBase) truncateOperands(self User, n int) {
	for i := n; i < len(u.ops); i++ {
		if u.ops[i] != nil {
			u.ops[i].removeUse(Use{User: self, Index: i})
		}
	}
	u.ops = u.ops[:n]
}
