package core

// BasicBlock is a maximal straight-line sequence of instructions ending in
// exactly one terminator. Blocks are Values of label type so terminators
// can reference them as operands; a block's use list therefore identifies
// its predecessors (plus any blockaddress-like constant uses, which this IR
// does not have).
type BasicBlock struct {
	valueBase
	parent *Function
	Instrs []Instruction
}

// NewBlock creates a detached basic block with the given name.
func NewBlock(name string) *BasicBlock {
	b := &BasicBlock{}
	b.name = name
	b.typ = LabelType
	return b
}

// Parent returns the containing function, or nil for a detached block.
func (b *BasicBlock) Parent() *Function { return b.parent }

// Append adds inst at the end of the block.
func (b *BasicBlock) Append(inst Instruction) {
	inst.setParent(b)
	b.Instrs = append(b.Instrs, inst)
}

// InsertAt inserts inst before position i.
func (b *BasicBlock) InsertAt(i int, inst Instruction) {
	inst.setParent(b)
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = inst
}

// InsertBefore inserts inst immediately before mark (which must be in b).
func (b *BasicBlock) InsertBefore(inst, mark Instruction) {
	for i, x := range b.Instrs {
		if x == mark {
			b.InsertAt(i, inst)
			return
		}
	}
	panic("core.InsertBefore: mark not in block")
}

// IndexOf returns the position of inst in the block, or -1.
func (b *BasicBlock) IndexOf(inst Instruction) int {
	for i, x := range b.Instrs {
		if x == inst {
			return i
		}
	}
	return -1
}

// Remove unlinks inst from the block without dropping its operand uses,
// so it can be re-inserted elsewhere.
func (b *BasicBlock) Remove(inst Instruction) {
	i := b.IndexOf(inst)
	if i < 0 {
		panic("core.Remove: instruction not in block")
	}
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	inst.setParent(nil)
}

// Erase unlinks inst and drops its operand uses; the instruction must have
// no remaining users.
func (b *BasicBlock) Erase(inst Instruction) {
	b.Remove(inst)
	DropOperands(inst)
}

// DropOperands removes all operand uses of a user, detaching it from the
// use-def graph prior to deletion.
func DropOperands(u User) {
	for i := u.NumOperands() - 1; i >= 0; i-- {
		if u.Operand(i) != nil {
			u.SetOperand(i, nil)
		}
	}
}

// Terminator returns the block's terminator instruction, or nil if the
// block is not (yet) well-formed.
func (b *BasicBlock) Terminator() Instruction {
	if n := len(b.Instrs); n > 0 {
		if t := b.Instrs[n-1]; t.IsTerminator() {
			return t
		}
	}
	return nil
}

// Succs returns the successor blocks in terminator operand order.
func (b *BasicBlock) Succs() []*BasicBlock {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch term := t.(type) {
	case *BranchInst:
		if term.IsConditional() {
			return []*BasicBlock{term.TrueDest(), term.FalseDest()}
		}
		return []*BasicBlock{term.TrueDest()}
	case *SwitchInst:
		out := []*BasicBlock{term.Default()}
		for i := 0; i < term.NumCases(); i++ {
			_, dest := term.Case(i)
			out = append(out, dest)
		}
		return out
	case *InvokeInst:
		return []*BasicBlock{term.NormalDest(), term.UnwindDest()}
	}
	return nil // ret, unwind
}

// Preds returns the predecessor blocks (blocks whose terminators reference
// b), deduplicated, in a stable order.
func (b *BasicBlock) Preds() []*BasicBlock {
	var out []*BasicBlock
	seen := map[*BasicBlock]bool{}
	for _, u := range b.uses {
		inst, ok := u.User.(Instruction)
		if !ok || !inst.IsTerminator() {
			continue
		}
		p := inst.Parent()
		if p != nil && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Phis returns the phi instructions at the head of the block.
func (b *BasicBlock) Phis() []*PhiInst {
	var out []*PhiInst
	for _, inst := range b.Instrs {
		p, ok := inst.(*PhiInst)
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *BasicBlock) FirstNonPhi() int {
	for i, inst := range b.Instrs {
		if _, ok := inst.(*PhiInst); !ok {
			return i
		}
	}
	return len(b.Instrs)
}

// RemovePredecessor updates phis in b after pred stops being a predecessor
// (e.g. its branch was rewritten away).
func (b *BasicBlock) RemovePredecessor(pred *BasicBlock) {
	for _, phi := range b.Phis() {
		for n := phi.NumIncoming() - 1; n >= 0; n-- {
			if _, blk := phi.Incoming(n); blk == pred {
				phi.RemoveIncoming(n)
			}
		}
	}
}

// ReplaceSuccessor rewrites the block terminator's references of oldSucc to
// newSucc.
func (b *BasicBlock) ReplaceSuccessor(oldSucc, newSucc *BasicBlock) {
	t := b.Terminator()
	if t == nil {
		return
	}
	for i := 0; i < t.NumOperands(); i++ {
		if t.Operand(i) == Value(oldSucc) {
			t.SetOperand(i, newSucc)
		}
	}
}

// MoveTailTo moves instructions [i:] from b to the end of dest (used when
// splitting a block at a program point). Phi edges in b's old successors
// are the caller's responsibility.
func (b *BasicBlock) MoveTailTo(i int, dest *BasicBlock) {
	moved := append([]Instruction(nil), b.Instrs[i:]...)
	b.Instrs = b.Instrs[:i]
	for _, inst := range moved {
		inst.setParent(dest)
		dest.Instrs = append(dest.Instrs, inst)
	}
}
