package core

import "math"

// This file defines the evaluation semantics of the arithmetic, logical,
// comparison, and cast operations, over raw bit patterns. Integer values
// are carried in a uint64 truncated to the type's width; floating-point
// values as float64 (float32 values are rounded at each step). The same
// functions drive the constant folder, SCCP, and the execution engine, so
// compile-time and run-time evaluation cannot disagree.

// EvalIntBinary applies an integer binary operator in type t to bit
// patterns a and b. ok is false when the operation is undefined (divide or
// remainder by zero) or the opcode is not an integer binary op.
func EvalIntBinary(op Opcode, t Type, a, b uint64) (uint64, bool) {
	bits := BitWidth(t)
	signed := IsSigned(t)
	sext := func(v uint64) int64 {
		if bits >= 64 {
			return int64(v)
		}
		shift := uint(64 - bits)
		return int64(v<<shift) >> shift
	}
	var r uint64
	switch op {
	case OpAdd:
		r = a + b
	case OpSub:
		r = a - b
	case OpMul:
		r = a * b
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		if signed {
			r = uint64(sext(a) / sext(b))
		} else {
			r = a / b
		}
	case OpRem:
		if b == 0 {
			return 0, false
		}
		if signed {
			r = uint64(sext(a) % sext(b))
		} else {
			r = a % b
		}
	case OpAnd:
		r = a & b
	case OpOr:
		r = a | b
	case OpXor:
		r = a ^ b
	case OpShl:
		sh := b & 0xFF
		if sh >= uint64(bits) {
			r = 0
		} else {
			r = a << sh
		}
	case OpShr:
		sh := b & 0xFF
		if signed {
			// Arithmetic shift on the sign-extended value.
			if sh >= 64 {
				sh = 63
			}
			r = uint64(sext(a) >> sh)
		} else {
			if sh >= uint64(bits) {
				r = 0
			} else {
				r = a >> sh
			}
		}
	default:
		return 0, false
	}
	return truncToWidth(r, bits), true
}

// EvalIntCompare applies a set* comparison in type t to bit patterns a, b.
func EvalIntCompare(op Opcode, t Type, a, b uint64) (bool, bool) {
	signed := IsSigned(t)
	bits := BitWidth(t)
	a, b = truncToWidth(a, bits), truncToWidth(b, bits)
	var lt bool
	if signed {
		shift := uint(64 - bits)
		if bits >= 64 {
			shift = 0
		}
		lt = int64(a<<shift)>>shift < int64(b<<shift)>>shift
	} else {
		lt = a < b
	}
	switch op {
	case OpSetEQ:
		return a == b, true
	case OpSetNE:
		return a != b, true
	case OpSetLT:
		return lt, true
	case OpSetGT:
		return !lt && a != b, true
	case OpSetLE:
		return lt || a == b, true
	case OpSetGE:
		return !lt, true
	}
	return false, false
}

// EvalFloatBinary applies a binary operator in float type t.
func EvalFloatBinary(op Opcode, t Type, a, b float64) (float64, bool) {
	var r float64
	switch op {
	case OpAdd:
		r = a + b
	case OpSub:
		r = a - b
	case OpMul:
		r = a * b
	case OpDiv:
		r = a / b // IEEE: inf/nan, not a trap
	case OpRem:
		r = math.Mod(a, b)
	default:
		return 0, false
	}
	if t.Kind() == FloatKind {
		r = float64(float32(r))
	}
	return r, true
}

// EvalFloatCompare applies a set* comparison to floats.
func EvalFloatCompare(op Opcode, a, b float64) (bool, bool) {
	switch op {
	case OpSetEQ:
		return a == b, true
	case OpSetNE:
		return a != b, true
	case OpSetLT:
		return a < b, true
	case OpSetGT:
		return a > b, true
	case OpSetLE:
		return a <= b, true
	case OpSetGE:
		return a >= b, true
	}
	return false, false
}

// EvalIntCast converts an integer bit pattern from type 'from' to integer
// type 'to' (sign- or zero-extension per the source type's signedness,
// truncation when narrowing).
func EvalIntCast(from, to Type, v uint64) uint64 {
	fb, tb := BitWidth(from), BitWidth(to)
	if fb < 64 {
		if IsSigned(from) {
			shift := uint(64 - fb)
			v = uint64(int64(v<<shift) >> shift)
		} else {
			v = truncToWidth(v, fb)
		}
	}
	return truncToWidth(v, tb)
}

// EvalIntToFloat converts an integer bit pattern to a float value.
func EvalIntToFloat(from, to Type, v uint64) float64 {
	var f float64
	if IsSigned(from) {
		bits := BitWidth(from)
		shift := uint(64 - bits)
		if bits >= 64 {
			shift = 0
		}
		f = float64(int64(v<<shift) >> shift)
	} else {
		f = float64(truncToWidth(v, BitWidth(from)))
	}
	if to.Kind() == FloatKind {
		f = float64(float32(f))
	}
	return f
}

// EvalFloatToInt converts a float value to an integer bit pattern in type
// to (C-style truncation toward zero; out-of-range is clamped).
func EvalFloatToInt(to Type, f float64) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	t := math.Trunc(f)
	if IsSigned(to) {
		if t > math.MaxInt64 {
			t = math.MaxInt64
		}
		if t < math.MinInt64 {
			t = math.MinInt64
		}
		return truncToWidth(uint64(int64(t)), BitWidth(to))
	}
	if t < 0 {
		t = 0
	}
	if t > math.MaxUint64 {
		return truncToWidth(^uint64(0), BitWidth(to))
	}
	return truncToWidth(uint64(t), BitWidth(to))
}

// FoldBinary evaluates a binary operator or comparison over constants,
// returning nil when it cannot fold (division by zero, non-constant
// operands, unhandled kinds).
func FoldBinary(op Opcode, lhs, rhs Constant) Constant {
	switch a := lhs.(type) {
	case *ConstantInt:
		b, ok := rhs.(*ConstantInt)
		if !ok {
			return nil
		}
		if IsComparisonOp(op) {
			r, ok := EvalIntCompare(op, a.Type(), a.Val, b.Val)
			if !ok {
				return nil
			}
			return NewBool(r)
		}
		r, ok := EvalIntBinary(op, a.Type(), a.Val, b.Val)
		if !ok {
			return nil
		}
		return NewInt(a.Type(), int64(r))
	case *ConstantFloat:
		b, ok := rhs.(*ConstantFloat)
		if !ok {
			return nil
		}
		if IsComparisonOp(op) {
			r, ok := EvalFloatCompare(op, a.Val, b.Val)
			if !ok {
				return nil
			}
			return NewBool(r)
		}
		r, ok := EvalFloatBinary(op, a.Type(), a.Val, b.Val)
		if !ok {
			return nil
		}
		return NewFloat(a.Type(), r)
	case *ConstantBool:
		b, ok := rhs.(*ConstantBool)
		if !ok {
			return nil
		}
		switch op {
		case OpAnd:
			return NewBool(a.Val && b.Val)
		case OpOr:
			return NewBool(a.Val || b.Val)
		case OpXor:
			return NewBool(a.Val != b.Val)
		case OpSetEQ:
			return NewBool(a.Val == b.Val)
		case OpSetNE:
			return NewBool(a.Val != b.Val)
		}
		return nil
	case *ConstantNull:
		if _, ok := rhs.(*ConstantNull); ok {
			switch op {
			case OpSetEQ, OpSetLE, OpSetGE:
				return NewBool(true)
			case OpSetNE, OpSetLT, OpSetGT:
				return NewBool(false)
			}
		}
		return nil
	}
	return nil
}

// FoldCast evaluates "cast c to t" over a constant, or nil.
func FoldCast(c Constant, to Type) Constant {
	from := c.Type()
	if TypesEqual(from, to) {
		return c
	}
	switch cc := c.(type) {
	case *ConstantInt:
		switch {
		case IsInteger(to):
			return NewInt(to, int64(EvalIntCast(from, to, cc.Val)))
		case IsFloatingPoint(to):
			return NewFloat(to, EvalIntToFloat(from, to, cc.Val))
		case to.Kind() == BoolKind:
			return NewBool(cc.Val != 0)
		}
	case *ConstantFloat:
		switch {
		case IsInteger(to):
			return NewInt(to, int64(EvalFloatToInt(to, cc.Val)))
		case IsFloatingPoint(to):
			return NewFloat(to, cc.Val)
		}
	case *ConstantBool:
		if IsInteger(to) {
			if cc.Val {
				return NewInt(to, 1)
			}
			return NewInt(to, 0)
		}
	case *ConstantNull:
		if pt, ok := to.(*PointerType); ok {
			return NewNull(pt)
		}
		if IsInteger(to) {
			return NewInt(to, 0)
		}
	case *ConstantUndef:
		if IsFirstClass(to) {
			return NewUndef(to)
		}
	}
	return nil
}
