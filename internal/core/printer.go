package core

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the module in the textual assembly syntax; the result can
// be parsed back by internal/asm with no information loss (the IR's
// equivalent text/binary/in-memory property, §2.5).
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; ModuleID = '%s'\n", m.Name)
	if len(m.typeOrder) > 0 {
		b.WriteString("\n")
		for _, name := range m.typeOrder {
			t := m.typeNames[name]
			if st, ok := t.(*StructType); ok && st.Name == name {
				fmt.Fprintf(&b, "%%%s = type %s\n", name, st.LiteralString())
			} else if _, ok := t.(*OpaqueType); ok {
				fmt.Fprintf(&b, "%%%s = type opaque\n", name)
			} else {
				fmt.Fprintf(&b, "%%%s = type %s\n", name, t.String())
			}
		}
	}
	if len(m.Globals) > 0 {
		b.WriteString("\n")
		for _, g := range m.Globals {
			b.WriteString(globalString(g))
			b.WriteString("\n")
		}
	}
	for _, f := range m.Funcs {
		b.WriteString("\n")
		b.WriteString(f.String())
	}
	return b.String()
}

func globalString(g *GlobalVariable) string {
	kw := "global"
	if g.IsConst {
		kw = "constant"
	}
	link := ""
	if g.Linkage == InternalLinkage {
		link = "internal "
	}
	if g.Init == nil {
		return fmt.Sprintf("%%%s = external %s %s", g.Name(), kw, g.ValueType)
	}
	return fmt.Sprintf("%%%s = %s%s %s %s", g.Name(), link, kw, g.ValueType, valueRef(g.Init))
}

// String renders a single function (definition or declaration).
func (f *Function) String() string {
	var b strings.Builder
	p := newFuncPrinter(f)
	proto := p.prototype()
	if f.IsDeclaration() {
		return "declare " + proto + "\n"
	}
	link := ""
	if f.Linkage == InternalLinkage {
		link = "internal "
	}
	b.WriteString(link + proto + " {\n")
	for i, blk := range f.Blocks {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s:\n", p.blockLabel(blk))
		for _, inst := range blk.Instrs {
			b.WriteString("\t")
			b.WriteString(p.instString(inst))
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// funcPrinter assigns printable names (explicit or numeric slots) to every
// local value in a function.
type funcPrinter struct {
	f     *Function
	names map[Value]string
}

func newFuncPrinter(f *Function) *funcPrinter {
	p := &funcPrinter{f: f, names: map[Value]string{}}
	taken := map[string]bool{}
	slot := 0
	assign := func(v Value) {
		name := v.Name()
		if name != "" && !taken[name] {
			taken[name] = true
			p.names[v] = name
			return
		}
		if name != "" {
			// Uniquify a clashing explicit name.
			for i := 1; ; i++ {
				cand := fmt.Sprintf("%s.%d", name, i)
				if !taken[cand] {
					taken[cand] = true
					p.names[v] = cand
					return
				}
			}
		}
		for {
			cand := fmt.Sprintf("%d", slot)
			slot++
			if !taken[cand] {
				taken[cand] = true
				p.names[v] = cand
				return
			}
		}
	}
	for _, a := range f.Args {
		assign(a)
	}
	for _, blk := range f.Blocks {
		assign(blk)
		for _, inst := range blk.Instrs {
			if inst.Type() != VoidType {
				assign(inst)
			}
		}
	}
	return p
}

func (p *funcPrinter) prototype() string {
	var b strings.Builder
	b.WriteString(p.f.Sig.Ret.String())
	b.WriteString(" %")
	b.WriteString(p.f.Name())
	b.WriteString("(")
	for i, a := range p.f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Type().String())
		if !p.f.IsDeclaration() {
			b.WriteString(" %")
			b.WriteString(p.names[a])
		}
	}
	if p.f.Sig.Variadic {
		if len(p.f.Args) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	return b.String()
}

func (p *funcPrinter) blockLabel(b *BasicBlock) string { return p.names[b] }

// ref spells a value as an operand (without its type).
func (p *funcPrinter) ref(v Value) string {
	if v == nil {
		return "<null operand!>"
	}
	if name, ok := p.names[v]; ok {
		return "%" + name
	}
	switch v.(type) {
	case *GlobalVariable, *Function:
		return "%" + v.Name()
	}
	return valueRef(v)
}

// opnd spells "type ref".
func (p *funcPrinter) opnd(v Value) string {
	if v == nil {
		return "<null operand!>"
	}
	return v.Type().String() + " " + p.ref(v)
}

// calleeTypeString spells the callee's type for a call/invoke: just the
// return type for simple direct calls, or the full function-pointer type
// when the signature is variadic or otherwise not inferable.
func calleeTypeString(callee Value) string {
	ft := CalleeFunctionType(callee)
	if ft == nil {
		return callee.Type().String()
	}
	if ft.Variadic {
		return ft.String() + "*"
	}
	return ft.Ret.String()
}

func (p *funcPrinter) instString(inst Instruction) string {
	var b strings.Builder
	if inst.Type() != VoidType {
		fmt.Fprintf(&b, "%%%s = ", p.names[inst])
	}
	switch i := inst.(type) {
	case *RetInst:
		if i.Value() == nil {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s", p.opnd(i.Value()))
		}
	case *BranchInst:
		if i.IsConditional() {
			fmt.Fprintf(&b, "br %s, label %s, label %s",
				p.opnd(i.Cond()), p.ref(i.TrueDest()), p.ref(i.FalseDest()))
		} else {
			fmt.Fprintf(&b, "br label %s", p.ref(i.TrueDest()))
		}
	case *SwitchInst:
		fmt.Fprintf(&b, "switch %s, label %s [", p.opnd(i.Value()), p.ref(i.Default()))
		for n := 0; n < i.NumCases(); n++ {
			val, dest := i.Case(n)
			fmt.Fprintf(&b, "\n\t\t%s %s, label %s", val.Type(), val, p.ref(dest))
		}
		b.WriteString(" ]")
	case *InvokeInst:
		fmt.Fprintf(&b, "invoke %s %s(", calleeTypeString(i.Callee()), p.ref(i.Callee()))
		for n, a := range i.Args() {
			if n > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.opnd(a))
		}
		fmt.Fprintf(&b, ") to label %s unwind to label %s", p.ref(i.NormalDest()), p.ref(i.UnwindDest()))
	case *UnwindInst:
		b.WriteString("unwind")
	case *BinaryInst:
		fmt.Fprintf(&b, "%s %s, %s", i.Opcode(), p.opnd(i.LHS()), p.ref(i.RHS()))
	case *MallocInst:
		fmt.Fprintf(&b, "malloc %s", i.AllocType)
		if i.NumElems() != nil {
			fmt.Fprintf(&b, ", %s", p.opnd(i.NumElems()))
		}
	case *AllocaInst:
		fmt.Fprintf(&b, "alloca %s", i.AllocType)
		if i.NumElems() != nil {
			fmt.Fprintf(&b, ", %s", p.opnd(i.NumElems()))
		}
	case *FreeInst:
		fmt.Fprintf(&b, "free %s", p.opnd(i.Ptr()))
	case *LoadInst:
		fmt.Fprintf(&b, "load %s", p.opnd(i.Ptr()))
	case *StoreInst:
		fmt.Fprintf(&b, "store %s, %s", p.opnd(i.Val()), p.opnd(i.Ptr()))
	case *GetElementPtrInst:
		fmt.Fprintf(&b, "getelementptr %s", p.opnd(i.Base()))
		for _, idx := range i.Indices() {
			fmt.Fprintf(&b, ", %s", p.opnd(idx))
		}
	case *PhiInst:
		fmt.Fprintf(&b, "phi %s ", i.Type())
		for n := 0; n < i.NumIncoming(); n++ {
			v, blk := i.Incoming(n)
			if n > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[ %s, %s ]", p.ref(v), p.ref(blk))
		}
	case *CastInst:
		fmt.Fprintf(&b, "cast %s to %s", p.opnd(i.Val()), i.Type())
	case *CallInst:
		fmt.Fprintf(&b, "call %s %s(", calleeTypeString(i.Callee()), p.ref(i.Callee()))
		for n, a := range i.Args() {
			if n > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.opnd(a))
		}
		b.WriteString(")")
	case *VAArgInst:
		fmt.Fprintf(&b, "vaarg %s, %s", p.opnd(i.List()), i.Type())
	default:
		fmt.Fprintf(&b, "<unknown instruction %s>", inst.Opcode())
	}
	return b.String()
}

// InstDebugString renders a single instruction for diagnostics, without the
// full-function slot numbering (unnamed operands print as %?).
func InstDebugString(inst Instruction) string {
	if inst.Parent() != nil && inst.Parent().Parent() != nil {
		p := newFuncPrinter(inst.Parent().Parent())
		return p.instString(inst)
	}
	var parts []string
	for _, op := range inst.Operands() {
		if op == nil {
			parts = append(parts, "<nil>")
		} else {
			parts = append(parts, op.Type().String()+" "+valueRef(op))
		}
	}
	return inst.Opcode().String() + " " + strings.Join(parts, ", ")
}

// SortedFuncNames returns the module's function names sorted, a convenience
// for deterministic reporting.
func (m *Module) SortedFuncNames() []string {
	names := make([]string, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		names = append(names, f.Name())
	}
	sort.Strings(names)
	return names
}
