package core

import (
	"errors"
	"fmt"
)

// Opcode enumerates the instruction set. There are exactly 31 opcodes, as
// the paper states (§2.1): five terminators, ten arithmetic/logical ops,
// six comparisons, six memory ops, and phi/cast/call/vaarg.
type Opcode int

// The 31 opcodes of the LLVM 1.x instruction set.
const (
	// Terminators.
	OpRet Opcode = iota
	OpBr
	OpSwitch
	OpInvoke
	OpUnwind
	// Binary arithmetic (overloaded across integer and FP types).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	// Bitwise / shifts (integer only; shift amount is ubyte).
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// Comparisons (result bool).
	OpSetEQ
	OpSetNE
	OpSetLT
	OpSetGT
	OpSetLE
	OpSetGE
	// Memory.
	OpMalloc
	OpFree
	OpAlloca
	OpLoad
	OpStore
	OpGetElementPtr
	// Other.
	OpPhi
	OpCast
	OpCall
	OpVAArg

	numOpcodes
)

// NumOpcodes is the size of the instruction set (31).
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	OpRet: "ret", OpBr: "br", OpSwitch: "switch", OpInvoke: "invoke", OpUnwind: "unwind",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpSetEQ: "seteq", OpSetNE: "setne", OpSetLT: "setlt", OpSetGT: "setgt",
	OpSetLE: "setle", OpSetGE: "setge",
	OpMalloc: "malloc", OpFree: "free", OpAlloca: "alloca", OpLoad: "load",
	OpStore: "store", OpGetElementPtr: "getelementptr",
	OpPhi: "phi", OpCast: "cast", OpCall: "call", OpVAArg: "vaarg",
}

// String returns the assembly mnemonic for the opcode.
func (op Opcode) String() string {
	if op >= 0 && int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// OpcodeByName maps a mnemonic back to its Opcode; ok is false for unknown
// mnemonics.
func OpcodeByName(name string) (Opcode, bool) {
	for op, n := range opcodeNames {
		if n == name {
			return Opcode(op), true
		}
	}
	return 0, false
}

// IsTerminatorOp reports whether op ends a basic block.
func IsTerminatorOp(op Opcode) bool { return op <= OpUnwind }

// IsBinaryOp reports whether op is one of the ten binary arithmetic/logical
// operators.
func IsBinaryOp(op Opcode) bool { return op >= OpAdd && op <= OpShr }

// IsComparisonOp reports whether op is one of the six set* comparisons.
func IsComparisonOp(op Opcode) bool { return op >= OpSetEQ && op <= OpSetGE }

// IsCommutative reports whether the binary operator commutes.
func IsCommutative(op Opcode) bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpSetEQ, OpSetNE:
		return true
	}
	return false
}

// Instruction is a single IR operation. Instructions live in basic blocks
// and are Users (they reference operands) and Values (their result may be
// used by other instructions; instructions of void type produce no value).
type Instruction interface {
	User
	Opcode() Opcode
	Parent() *BasicBlock
	setParent(*BasicBlock)
	IsTerminator() bool
}

// instrBase supplies the shared Instruction plumbing.
type instrBase struct {
	userBase
	parent *BasicBlock
	op     Opcode
}

func (i *instrBase) Opcode() Opcode          { return i.op }
func (i *instrBase) Parent() *BasicBlock     { return i.parent }
func (i *instrBase) setParent(b *BasicBlock) { i.parent = b }
func (i *instrBase) IsTerminator() bool      { return IsTerminatorOp(i.op) }

// ---------------------------------------------------------------------------
// Terminators

// RetInst returns from the function, optionally with a value.
// Operands: [value] or [].
type RetInst struct{ instrBase }

// NewRet creates "ret <ty> <val>" or "ret void" when v is nil.
func NewRet(v Value) *RetInst {
	r := &RetInst{}
	r.op = OpRet
	r.typ = VoidType
	if v != nil {
		r.setOperands(r, []Value{v})
	}
	return r
}

// SetOperand replaces the i'th operand.
func (i *RetInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Value returns the returned value, or nil for "ret void".
func (i *RetInst) Value() Value {
	if len(i.ops) == 0 {
		return nil
	}
	return i.ops[0]
}

// BranchInst is a conditional or unconditional branch.
// Operands: [dest] or [cond, ifTrue, ifFalse].
type BranchInst struct{ instrBase }

// NewBr creates an unconditional branch to dest.
func NewBr(dest *BasicBlock) *BranchInst {
	b := &BranchInst{}
	b.op = OpBr
	b.typ = VoidType
	b.setOperands(b, []Value{dest})
	return b
}

// NewCondBr creates "br bool %cond, label %ifTrue, label %ifFalse".
func NewCondBr(cond Value, ifTrue, ifFalse *BasicBlock) *BranchInst {
	b := &BranchInst{}
	b.op = OpBr
	b.typ = VoidType
	b.setOperands(b, []Value{cond, ifTrue, ifFalse})
	return b
}

// SetOperand replaces the i'th operand.
func (i *BranchInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// IsConditional reports whether the branch has a condition.
func (i *BranchInst) IsConditional() bool { return len(i.ops) == 3 }

// Cond returns the branch condition (conditional branches only).
func (i *BranchInst) Cond() Value { return i.ops[0] }

// TrueDest returns the taken-destination of a conditional branch, or the
// sole destination of an unconditional one.
func (i *BranchInst) TrueDest() *BasicBlock {
	if i.IsConditional() {
		return i.ops[1].(*BasicBlock)
	}
	return i.ops[0].(*BasicBlock)
}

// FalseDest returns the not-taken destination (conditional branches only).
func (i *BranchInst) FalseDest() *BasicBlock {
	return i.ops[2].(*BasicBlock)
}

// MakeUnconditional rewrites a conditional branch into "br label %dest".
func (i *BranchInst) MakeUnconditional(dest *BasicBlock) {
	i.dropOperandsFrom(i)
	i.setOperands(i, []Value{dest})
}

// SwitchInst is a multiway branch on an integer value.
// Operands: [val, defaultDest, case0Val, case0Dest, case1Val, case1Dest...].
type SwitchInst struct{ instrBase }

// NewSwitch creates a switch on v with the given default destination.
func NewSwitch(v Value, def *BasicBlock) *SwitchInst {
	s := &SwitchInst{}
	s.op = OpSwitch
	s.typ = VoidType
	s.setOperands(s, []Value{v, def})
	return s
}

// SetOperand replaces the i'th operand.
func (i *SwitchInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Value returns the switched-on value.
func (i *SwitchInst) Value() Value { return i.ops[0] }

// Default returns the default destination.
func (i *SwitchInst) Default() *BasicBlock { return i.ops[1].(*BasicBlock) }

// NumCases returns the number of non-default cases.
func (i *SwitchInst) NumCases() int { return (len(i.ops) - 2) / 2 }

// Case returns the i'th case's value and destination.
func (i *SwitchInst) Case(n int) (*ConstantInt, *BasicBlock) {
	return i.ops[2+2*n].(*ConstantInt), i.ops[3+2*n].(*BasicBlock)
}

// AddCase appends a case.
func (i *SwitchInst) AddCase(val *ConstantInt, dest *BasicBlock) {
	i.appendOperand(i, val)
	i.appendOperand(i, dest)
}

// RemoveCase deletes the n'th case.
func (i *SwitchInst) RemoveCase(n int) {
	// Shift remaining cases down, then truncate.
	for j := 2 + 2*n; j+2 < len(i.ops); j++ {
		i.setOperandAt(i, j, i.ops[j+2])
	}
	i.truncateOperands(i, len(i.ops)-2)
}

// InvokeInst is a call with exceptional control flow: control transfers to
// the normal label on return, or to the unwind label if the callee (or
// anything below it) executes unwind.
// Operands: [callee, args..., normalDest, unwindDest].
type InvokeInst struct{ instrBase }

// NewInvoke creates "invoke <ty> %callee(args) to label %normal unwind to
// label %unwind".
func NewInvoke(callee Value, args []Value, normal, unwind *BasicBlock) *InvokeInst {
	iv := &InvokeInst{}
	iv.op = OpInvoke
	iv.typ = calleeReturnType(callee)
	ops := make([]Value, 0, len(args)+3)
	ops = append(ops, callee)
	ops = append(ops, args...)
	ops = append(ops, normal, unwind)
	iv.setOperands(iv, ops)
	return iv
}

// SetOperand replaces the i'th operand.
func (i *InvokeInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Callee returns the invoked function (pointer).
func (i *InvokeInst) Callee() Value { return i.ops[0] }

// Args returns the argument operands.
func (i *InvokeInst) Args() []Value { return i.ops[1 : len(i.ops)-2] }

// NormalDest returns the label control reaches after a normal return.
func (i *InvokeInst) NormalDest() *BasicBlock { return i.ops[len(i.ops)-2].(*BasicBlock) }

// UnwindDest returns the label control reaches on unwind.
func (i *InvokeInst) UnwindDest() *BasicBlock { return i.ops[len(i.ops)-1].(*BasicBlock) }

// UnwindInst unwinds the stack to the nearest dynamically-enclosing invoke.
type UnwindInst struct{ instrBase }

// NewUnwind creates an "unwind" terminator.
func NewUnwind() *UnwindInst {
	u := &UnwindInst{}
	u.op = OpUnwind
	u.typ = VoidType
	return u
}

// SetOperand replaces the i'th operand.
func (i *UnwindInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// ---------------------------------------------------------------------------
// Binary operators and comparisons

// BinaryInst covers the ten arithmetic/logical binary operators and the six
// comparisons; the opcode distinguishes them. Comparisons produce bool, the
// others produce the operand type. Operands: [lhs, rhs].
type BinaryInst struct{ instrBase }

// NewBinary creates a binary operator instruction. For comparison opcodes
// the result type is bool; otherwise it is lhs's type.
func NewBinary(op Opcode, lhs, rhs Value) *BinaryInst {
	if !IsBinaryOp(op) && !IsComparisonOp(op) {
		panic("core.NewBinary: bad opcode " + op.String())
	}
	b := &BinaryInst{}
	b.op = op
	if IsComparisonOp(op) {
		b.typ = BoolType
	} else {
		b.typ = lhs.Type()
	}
	b.setOperands(b, []Value{lhs, rhs})
	return b
}

// SetOperand replaces the i'th operand.
func (i *BinaryInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// LHS returns the first operand.
func (i *BinaryInst) LHS() Value { return i.ops[0] }

// RHS returns the second operand.
func (i *BinaryInst) RHS() Value { return i.ops[1] }

// ---------------------------------------------------------------------------
// Memory

// MallocInst allocates AllocType (or an array of them) on the heap and
// yields a typed pointer. Operands: [] or [numElems].
type MallocInst struct {
	instrBase
	AllocType Type
}

// NewMalloc creates "malloc <ty>" or "malloc <ty>, uint %n" when n != nil.
func NewMalloc(t Type, n Value) *MallocInst {
	m := &MallocInst{AllocType: t}
	m.op = OpMalloc
	m.typ = NewPointer(t)
	if n != nil {
		m.setOperands(m, []Value{n})
	}
	return m
}

// SetOperand replaces the i'th operand.
func (i *MallocInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// NumElems returns the element-count operand, or nil for a single element.
func (i *MallocInst) NumElems() Value {
	if len(i.ops) == 0 {
		return nil
	}
	return i.ops[0]
}

// AllocaInst allocates AllocType in the current stack frame; the memory is
// freed automatically on return. Operands: [] or [numElems].
type AllocaInst struct {
	instrBase
	AllocType Type
}

// NewAlloca creates "alloca <ty>" or "alloca <ty>, uint %n" when n != nil.
func NewAlloca(t Type, n Value) *AllocaInst {
	a := &AllocaInst{AllocType: t}
	a.op = OpAlloca
	a.typ = NewPointer(t)
	if n != nil {
		a.setOperands(a, []Value{n})
	}
	return a
}

// SetOperand replaces the i'th operand.
func (i *AllocaInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// NumElems returns the element-count operand, or nil for a single element.
func (i *AllocaInst) NumElems() Value {
	if len(i.ops) == 0 {
		return nil
	}
	return i.ops[0]
}

// FreeInst releases memory obtained from malloc. Operands: [ptr].
type FreeInst struct{ instrBase }

// NewFree creates "free <ty>* %p".
func NewFree(ptr Value) *FreeInst {
	f := &FreeInst{}
	f.op = OpFree
	f.typ = VoidType
	f.setOperands(f, []Value{ptr})
	return f
}

// SetOperand replaces the i'th operand.
func (i *FreeInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Ptr returns the freed pointer.
func (i *FreeInst) Ptr() Value { return i.ops[0] }

// LoadInst reads through a typed pointer. Operands: [ptr].
type LoadInst struct{ instrBase }

// NewLoad creates "load <ty>* %p"; the result type is the pointee type.
func NewLoad(ptr Value) *LoadInst {
	pt, ok := ptr.Type().(*PointerType)
	if !ok {
		panic("core.NewLoad: non-pointer operand of type " + ptr.Type().String())
	}
	l := &LoadInst{}
	l.op = OpLoad
	l.typ = pt.Elem
	l.setOperands(l, []Value{ptr})
	return l
}

// SetOperand replaces the i'th operand.
func (i *LoadInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Ptr returns the loaded-from pointer.
func (i *LoadInst) Ptr() Value { return i.ops[0] }

// StoreInst writes through a typed pointer. Operands: [val, ptr].
type StoreInst struct{ instrBase }

// NewStore creates "store <ty> %v, <ty>* %p".
func NewStore(val, ptr Value) *StoreInst {
	s := &StoreInst{}
	s.op = OpStore
	s.typ = VoidType
	s.setOperands(s, []Value{val, ptr})
	return s
}

// SetOperand replaces the i'th operand.
func (i *StoreInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Val returns the stored value.
func (i *StoreInst) Val() Value { return i.ops[0] }

// Ptr returns the stored-to pointer.
func (i *StoreInst) Ptr() Value { return i.ops[1] }

// GetElementPtrInst performs typed address arithmetic: given a pointer to an
// aggregate, it computes the address of a sub-element without accessing
// memory, preserving type information (§2.2 of the paper). The first index
// steps over the pointer itself; subsequent indices select struct fields
// (constant ubyte) or array elements (long).
// Operands: [base, idx0, idx1, ...].
type GetElementPtrInst struct{ instrBase }

// NewGEP creates a getelementptr instruction. It panics if the index path
// does not match the pointed-to type; use GEPResultType to validate first.
func NewGEP(base Value, indices ...Value) *GetElementPtrInst {
	rt, err := GEPResultType(base.Type(), indices)
	if err != nil {
		panic("core.NewGEP: " + err.Error())
	}
	g := &GetElementPtrInst{}
	g.op = OpGetElementPtr
	g.typ = rt
	ops := make([]Value, 0, len(indices)+1)
	ops = append(ops, base)
	ops = append(ops, indices...)
	g.setOperands(g, ops)
	return g
}

// SetOperand replaces the i'th operand.
func (i *GetElementPtrInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Base returns the base pointer.
func (i *GetElementPtrInst) Base() Value { return i.ops[0] }

// Indices returns the index operands.
func (i *GetElementPtrInst) Indices() []Value { return i.ops[1:] }

// GEPResultType computes the pointer type produced by indexing baseType
// (which must be a pointer) with the given index path, or an error if the
// path is invalid.
func GEPResultType(baseType Type, indices []Value) (Type, error) {
	pt, ok := baseType.(*PointerType)
	if !ok {
		return nil, fmt.Errorf("getelementptr base is not a pointer: %s", baseType)
	}
	if len(indices) == 0 {
		return nil, errors.New("getelementptr requires at least one index")
	}
	cur := pt.Elem
	for k, idx := range indices {
		if k == 0 {
			// First index steps over the pointer; any integer works.
			if !IsInteger(idx.Type()) {
				return nil, fmt.Errorf("getelementptr index 0 must be an integer, got %s", idx.Type())
			}
			continue
		}
		switch ct := cur.(type) {
		case *StructType:
			ci, ok := idx.(*ConstantInt)
			if !ok {
				return nil, errors.New("getelementptr struct index must be a constant")
			}
			f := int(ci.SExt())
			if f < 0 || f >= len(ct.Fields) {
				return nil, fmt.Errorf("getelementptr struct index %d out of range (%d fields)", f, len(ct.Fields))
			}
			cur = ct.Fields[f]
		case *ArrayType:
			if !IsInteger(idx.Type()) {
				return nil, fmt.Errorf("getelementptr array index must be an integer, got %s", idx.Type())
			}
			cur = ct.Elem
		default:
			return nil, fmt.Errorf("getelementptr cannot index into %s", cur)
		}
	}
	return NewPointer(cur), nil
}

// ---------------------------------------------------------------------------
// Other

// PhiInst is the SSA φ-function: it selects among incoming values based on
// the predecessor through which control entered the block.
// Operands: [val0, pred0, val1, pred1, ...].
type PhiInst struct{ instrBase }

// NewPhi creates an empty phi of type t; add incoming edges with AddIncoming.
func NewPhi(t Type) *PhiInst {
	p := &PhiInst{}
	p.op = OpPhi
	p.typ = t
	return p
}

// SetOperand replaces the i'th operand.
func (i *PhiInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// AddIncoming appends an (value, predecessor) pair.
func (i *PhiInst) AddIncoming(v Value, pred *BasicBlock) {
	i.appendOperand(i, v)
	i.appendOperand(i, pred)
}

// NumIncoming returns the number of incoming edges.
func (i *PhiInst) NumIncoming() int { return len(i.ops) / 2 }

// Incoming returns the n'th (value, predecessor) pair.
func (i *PhiInst) Incoming(n int) (Value, *BasicBlock) {
	return i.ops[2*n], i.ops[2*n+1].(*BasicBlock)
}

// IncomingFor returns the value flowing in from pred, or nil if pred is not
// an incoming block.
func (i *PhiInst) IncomingFor(pred *BasicBlock) Value {
	for n := 0; n < i.NumIncoming(); n++ {
		if v, b := i.Incoming(n); b == pred {
			return v
		}
	}
	return nil
}

// RemoveIncoming deletes the n'th incoming pair.
func (i *PhiInst) RemoveIncoming(n int) {
	for j := 2 * n; j+2 < len(i.ops); j++ {
		i.setOperandAt(i, j, i.ops[j+2])
	}
	i.truncateOperands(i, len(i.ops)-2)
}

// CastInst converts a value to another type; it is the only way to perform
// type conversions, making all of them explicit (§2.2).
// Operands: [val]. The destination type is the instruction's type.
type CastInst struct{ instrBase }

// NewCast creates "cast <ty> %v to <destTy>".
func NewCast(v Value, dest Type) *CastInst {
	c := &CastInst{}
	c.op = OpCast
	c.typ = dest
	c.setOperands(c, []Value{v})
	return c
}

// SetOperand replaces the i'th operand.
func (i *CastInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Val returns the value being converted.
func (i *CastInst) Val() Value { return i.ops[0] }

// IsLossless reports whether this cast provably preserves information.
func (i *CastInst) IsLossless() bool { return IsLosslesslyConvertible(i.Val().Type(), i.typ) }

// CallInst calls through a typed function pointer, abstracting the machine
// calling convention. Operands: [callee, args...].
type CallInst struct{ instrBase }

// NewCall creates "call <retty> %callee(args...)".
func NewCall(callee Value, args ...Value) *CallInst {
	c := &CallInst{}
	c.op = OpCall
	c.typ = calleeReturnType(callee)
	ops := make([]Value, 0, len(args)+1)
	ops = append(ops, callee)
	ops = append(ops, args...)
	c.setOperands(c, ops)
	return c
}

// SetOperand replaces the i'th operand.
func (i *CallInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// Callee returns the called function (pointer) operand.
func (i *CallInst) Callee() Value { return i.ops[0] }

// Args returns the argument operands.
func (i *CallInst) Args() []Value { return i.ops[1:] }

// CalledFunction returns the statically-known callee Function, or nil for
// indirect calls.
func (i *CallInst) CalledFunction() *Function {
	f, _ := i.ops[0].(*Function)
	return f
}

// CalledFunctionOf returns the direct callee of a call or invoke, or nil.
func CalledFunctionOf(inst Instruction) *Function {
	switch c := inst.(type) {
	case *CallInst:
		return c.CalledFunction()
	case *InvokeInst:
		f, _ := c.Callee().(*Function)
		return f
	}
	return nil
}

// VAArgInst extracts the next argument from a variadic argument list.
// Operands: [valist]. The result type is the instruction's type.
type VAArgInst struct{ instrBase }

// NewVAArg creates "vaarg <ty>* %ap, <argty>".
func NewVAArg(valist Value, t Type) *VAArgInst {
	v := &VAArgInst{}
	v.op = OpVAArg
	v.typ = t
	v.setOperands(v, []Value{valist})
	return v
}

// SetOperand replaces the i'th operand.
func (i *VAArgInst) SetOperand(n int, v Value) { i.setOperandAt(i, n, v) }

// List returns the va_list operand.
func (i *VAArgInst) List() Value { return i.ops[0] }

// calleeReturnType extracts the return type from a function-pointer value.
func calleeReturnType(callee Value) Type {
	t := callee.Type()
	if pt, ok := t.(*PointerType); ok {
		t = pt.Elem
	}
	if ft, ok := t.(*FunctionType); ok {
		return ft.Ret
	}
	panic("core: callee is not a function pointer: " + callee.Type().String())
}

// CalleeFunctionType extracts the FunctionType from a function-pointer
// value's type, or nil if it is not one.
func CalleeFunctionType(callee Value) *FunctionType {
	t := callee.Type()
	if pt, ok := t.(*PointerType); ok {
		t = pt.Elem
	}
	ft, _ := t.(*FunctionType)
	return ft
}
