// Package core implements the LLVM 1.x-style intermediate representation
// described in "LLVM: A Compilation Framework for Lifelong Program Analysis &
// Transformation" (CGO 2004): a typed, SSA-based, low-level instruction set
// with exactly 31 opcodes, a language-independent type system, explicit
// memory allocation, and invoke/unwind exception primitives.
//
// The package provides the in-memory representation (Module, Function,
// BasicBlock, the Instruction hierarchy), the textual printer for the
// assembly syntax used by the paper, an IRBuilder for constructing code, and
// a Verifier that enforces the type and SSA rules.
package core

import (
	"fmt"
	"strings"
)

// TypeKind discriminates the concrete implementations of Type.
type TypeKind int

// The kinds of types in the LLVM 1.x type system: primitive types with
// predefined sizes, plus exactly four derived types (pointer, array,
// struct, function). Label is the type of basic blocks; Opaque stands for
// a named type whose definition is not (yet) known.
const (
	VoidKind TypeKind = iota
	BoolKind
	SByteKind  // signed 8-bit
	UByteKind  // unsigned 8-bit
	ShortKind  // signed 16-bit
	UShortKind // unsigned 16-bit
	IntKind    // signed 32-bit
	UIntKind   // unsigned 32-bit
	LongKind   // signed 64-bit
	ULongKind  // unsigned 64-bit
	FloatKind  // IEEE single
	DoubleKind // IEEE double
	LabelKind
	PointerKind
	ArrayKind
	StructKind
	FunctionKind
	OpaqueKind
)

// Type is the interface implemented by every type in the IR. Types are
// immutable after construction except for named struct bodies, which may be
// filled in once to form recursive types.
type Type interface {
	Kind() TypeKind
	String() string
}

// PrimitiveType is one of the predefined-size primitive types (and label).
type PrimitiveType struct{ kind TypeKind }

// Kind returns the type's kind.
func (t *PrimitiveType) Kind() TypeKind { return t.kind }

// String returns the assembly spelling of the type.
func (t *PrimitiveType) String() string {
	switch t.kind {
	case VoidKind:
		return "void"
	case BoolKind:
		return "bool"
	case SByteKind:
		return "sbyte"
	case UByteKind:
		return "ubyte"
	case ShortKind:
		return "short"
	case UShortKind:
		return "ushort"
	case IntKind:
		return "int"
	case UIntKind:
		return "uint"
	case LongKind:
		return "long"
	case ULongKind:
		return "ulong"
	case FloatKind:
		return "float"
	case DoubleKind:
		return "double"
	case LabelKind:
		return "label"
	}
	return "<badprim>"
}

// Singleton instances of the primitive types. All IR construction shares
// these; comparing primitive types by pointer identity is valid.
var (
	VoidType   = &PrimitiveType{VoidKind}
	BoolType   = &PrimitiveType{BoolKind}
	SByteType  = &PrimitiveType{SByteKind}
	UByteType  = &PrimitiveType{UByteKind}
	ShortType  = &PrimitiveType{ShortKind}
	UShortType = &PrimitiveType{UShortKind}
	IntType    = &PrimitiveType{IntKind}
	UIntType   = &PrimitiveType{UIntKind}
	LongType   = &PrimitiveType{LongKind}
	ULongType  = &PrimitiveType{ULongKind}
	FloatType  = &PrimitiveType{FloatKind}
	DoubleType = &PrimitiveType{DoubleKind}
	LabelType  = &PrimitiveType{LabelKind}
)

// PointerType is a typed pointer to Elem.
type PointerType struct{ Elem Type }

// NewPointer returns the pointer type *elem.
func NewPointer(elem Type) *PointerType { return &PointerType{Elem: elem} }

// Kind returns PointerKind.
func (t *PointerType) Kind() TypeKind { return PointerKind }

// String returns the assembly spelling, e.g. "int*".
func (t *PointerType) String() string { return t.Elem.String() + "*" }

// ArrayType is a fixed-size array [Len x Elem].
type ArrayType struct {
	Elem Type
	Len  int
}

// NewArray returns the array type [n x elem].
func NewArray(elem Type, n int) *ArrayType { return &ArrayType{Elem: elem, Len: n} }

// Kind returns ArrayKind.
func (t *ArrayType) Kind() TypeKind { return ArrayKind }

// String returns the assembly spelling, e.g. "[10 x int]".
func (t *ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.Len, t.Elem) }

// StructType is a structure with an ordered field list. A StructType may be
// named (registered in a Module's type table); named structs may be
// recursive, in which case identity (pointer) equality is used.
type StructType struct {
	Name   string // optional; "" for literal struct types
	Fields []Type
}

// NewStruct returns a literal (unnamed) struct type with the given fields.
func NewStruct(fields ...Type) *StructType { return &StructType{Fields: fields} }

// Kind returns StructKind.
func (t *StructType) Kind() TypeKind { return StructKind }

// String returns the struct's name if it has one, else its literal spelling.
func (t *StructType) String() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	return t.LiteralString()
}

// LiteralString returns the literal spelling "{ f1, f2, ... }" regardless of
// whether the struct is named. Recursive named structs must not call this on
// themselves via their fields.
func (t *StructType) LiteralString() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteString(" }")
	return b.String()
}

// FunctionType is a function signature.
type FunctionType struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

// NewFunctionType returns the function type ret(params...).
func NewFunctionType(ret Type, params ...Type) *FunctionType {
	return &FunctionType{Ret: ret, Params: params}
}

// Kind returns FunctionKind.
func (t *FunctionType) Kind() TypeKind { return FunctionKind }

// String returns the assembly spelling, e.g. "int (int, sbyte*)".
func (t *FunctionType) String() string {
	var b strings.Builder
	b.WriteString(t.Ret.String())
	b.WriteString(" (")
	for i, p := range t.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if t.Variadic {
		if len(t.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	return b.String()
}

// OpaqueType is a named type with an unknown body, used while parsing
// forward references; it should not appear in verified modules except
// behind a pointer.
type OpaqueType struct{ Name string }

// Kind returns OpaqueKind.
func (t *OpaqueType) Kind() TypeKind { return OpaqueKind }

// String returns the opaque type's spelling.
func (t *OpaqueType) String() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	return "opaque"
}

// IsInteger reports whether t is one of the eight integer types.
func IsInteger(t Type) bool {
	switch t.Kind() {
	case SByteKind, UByteKind, ShortKind, UShortKind, IntKind, UIntKind, LongKind, ULongKind:
		return true
	}
	return false
}

// IsSigned reports whether t is a signed integer type.
func IsSigned(t Type) bool {
	switch t.Kind() {
	case SByteKind, ShortKind, IntKind, LongKind:
		return true
	}
	return false
}

// IsUnsigned reports whether t is an unsigned integer type.
func IsUnsigned(t Type) bool {
	switch t.Kind() {
	case UByteKind, UShortKind, UIntKind, ULongKind:
		return true
	}
	return false
}

// IsFloatingPoint reports whether t is float or double.
func IsFloatingPoint(t Type) bool {
	k := t.Kind()
	return k == FloatKind || k == DoubleKind
}

// IsArithmetic reports whether t supports the arithmetic binary operators.
func IsArithmetic(t Type) bool { return IsInteger(t) || IsFloatingPoint(t) }

// IsSized reports whether objects of type t have a well-defined allocation
// size: primitives except void and label, pointers, and aggregates built
// from sized types. Function and opaque types are unsized — they cannot be
// allocated, loaded, stored, or freed by value.
func IsSized(t Type) bool {
	switch tt := t.(type) {
	case *PrimitiveType:
		return tt.kind != VoidKind && tt.kind != LabelKind
	case *PointerType:
		return true
	case *ArrayType:
		return IsSized(tt.Elem)
	case *StructType:
		for _, f := range tt.Fields {
			if !IsSized(f) {
				return false
			}
		}
		return true
	}
	return false
}

// IsFirstClass reports whether values of type t can live in virtual
// registers: bool, the integers, the floats, and pointers.
func IsFirstClass(t Type) bool {
	return t.Kind() == BoolKind || IsInteger(t) || IsFloatingPoint(t) || t.Kind() == PointerKind
}

// BitWidth returns the width in bits of a primitive first-class type
// (pointers report 64). It returns 0 for aggregate and void types.
func BitWidth(t Type) int {
	switch t.Kind() {
	case BoolKind:
		return 1
	case SByteKind, UByteKind:
		return 8
	case ShortKind, UShortKind:
		return 16
	case IntKind, UIntKind:
		return 32
	case LongKind, ULongKind, PointerKind:
		return 64
	case FloatKind:
		return 32
	case DoubleKind:
		return 64
	}
	return 0
}

// SizeOf returns the size in bytes a value of type t occupies in the
// abstract memory model (pointers are 8 bytes). Aggregates are laid out
// with natural alignment.
func SizeOf(t Type) int {
	switch tt := t.(type) {
	case *PrimitiveType:
		switch tt.kind {
		case BoolKind, SByteKind, UByteKind:
			return 1
		case ShortKind, UShortKind:
			return 2
		case IntKind, UIntKind, FloatKind:
			return 4
		case LongKind, ULongKind, DoubleKind:
			return 8
		}
		return 0
	case *PointerType:
		return 8
	case *ArrayType:
		return tt.Len * SizeOf(tt.Elem)
	case *StructType:
		size := 0
		for _, f := range tt.Fields {
			a := AlignOf(f)
			size = alignUp(size, a)
			size += SizeOf(f)
		}
		return alignUp(size, AlignOf(tt))
	}
	return 0
}

// AlignOf returns the natural alignment in bytes of type t.
func AlignOf(t Type) int {
	switch tt := t.(type) {
	case *PrimitiveType:
		s := SizeOf(t)
		if s == 0 {
			return 1
		}
		return s
	case *PointerType:
		return 8
	case *ArrayType:
		return AlignOf(tt.Elem)
	case *StructType:
		a := 1
		for _, f := range tt.Fields {
			if fa := AlignOf(f); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

// FieldOffset returns the byte offset of field i within struct type st.
func FieldOffset(st *StructType, i int) int {
	off := 0
	for j := 0; j <= i; j++ {
		f := st.Fields[j]
		off = alignUp(off, AlignOf(f))
		if j == i {
			return off
		}
		off += SizeOf(f)
	}
	return off
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// TypesEqual reports structural equality of two types. Struct types —
// including named, possibly recursive ones — compare structurally, using
// coinductive assumptions so recursion terminates; structurally identical
// types from different modules therefore unify at link time.
func TypesEqual(a, b Type) bool {
	return typesEq(a, b, nil)
}

type typePair struct{ a, b Type }

func typesEq(a, b Type, assume map[typePair]bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch at := a.(type) {
	case *PrimitiveType:
		return at.Kind() == b.Kind()
	case *PointerType:
		return typesEq(at.Elem, b.(*PointerType).Elem, assume)
	case *ArrayType:
		bt := b.(*ArrayType)
		return at.Len == bt.Len && typesEq(at.Elem, bt.Elem, assume)
	case *StructType:
		bt := b.(*StructType)
		if len(at.Fields) != len(bt.Fields) {
			return false
		}
		pair := typePair{a, b}
		if assume[pair] {
			return true // coinductive hypothesis for recursive types
		}
		if assume == nil {
			assume = map[typePair]bool{}
		}
		assume[pair] = true
		for i := range at.Fields {
			if !typesEq(at.Fields[i], bt.Fields[i], assume) {
				return false
			}
		}
		return true
	case *FunctionType:
		bt := b.(*FunctionType)
		if at.Variadic != bt.Variadic || len(at.Params) != len(bt.Params) || !typesEq(at.Ret, bt.Ret, assume) {
			return false
		}
		for i := range at.Params {
			if !typesEq(at.Params[i], bt.Params[i], assume) {
				return false
			}
		}
		return true
	case *OpaqueType:
		return a == b
	}
	return false
}

// IsLosslesslyConvertible reports whether a cast from 'from' to 'to' cannot
// lose information (same bit width integers, pointer-to-pointer, etc.).
// This mirrors the "physical subtyping" casts the paper distinguishes from
// reinterpreting casts.
func IsLosslesslyConvertible(from, to Type) bool {
	if TypesEqual(from, to) {
		return true
	}
	if IsInteger(from) && IsInteger(to) {
		return BitWidth(to) >= BitWidth(from)
	}
	if from.Kind() == PointerKind && to.Kind() == PointerKind {
		return true
	}
	return false
}
