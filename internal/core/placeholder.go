package core

// Placeholder is a temporary stand-in value used by parsers and decoders
// for forward references: a value may be used before the instruction or
// global defining it has been seen. Once the real value is known, resolve
// the placeholder with ReplaceAllUses. Placeholders must never survive into
// a finished module; the verifier does not accept them.
//
// Placeholder implements Constant so it can also stand in inside aggregate
// constant initializers.
type Placeholder struct{ valueBase }

// NewPlaceholder creates a placeholder with the given name and type.
func NewPlaceholder(name string, t Type) *Placeholder {
	p := &Placeholder{}
	p.name = name
	p.typ = t
	return p
}

func (p *Placeholder) isConstant() {}

// String identifies the placeholder in diagnostics.
func (p *Placeholder) String() string { return "<forward ref %" + p.name + ">" }
