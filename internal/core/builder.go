package core

// Builder constructs IR instruction-by-instruction at an insertion point,
// in the style of LLVM's IRBuilder. All Create* methods append to the
// current block and return the new instruction (as a Value where that is
// more convenient).
type Builder struct {
	block *BasicBlock
	tmp   int
}

// NewBuilder returns a builder with no insertion point.
func NewBuilder() *Builder { return &Builder{} }

// SetInsertPoint directs subsequent instructions to the end of b.
func (bld *Builder) SetInsertPoint(b *BasicBlock) { bld.block = b }

// Block returns the current insertion block.
func (bld *Builder) Block() *BasicBlock { return bld.block }

// Insert appends inst at the insertion point and returns it.
func (bld *Builder) Insert(inst Instruction) Instruction {
	if bld.block == nil {
		panic("core.Builder: no insertion point")
	}
	bld.block.Append(inst)
	return inst
}

// CreateRet emits "ret <v>"; v may be nil for void.
func (bld *Builder) CreateRet(v Value) *RetInst {
	return bld.Insert(NewRet(v)).(*RetInst)
}

// CreateBr emits an unconditional branch.
func (bld *Builder) CreateBr(dest *BasicBlock) *BranchInst {
	return bld.Insert(NewBr(dest)).(*BranchInst)
}

// CreateCondBr emits a conditional branch.
func (bld *Builder) CreateCondBr(cond Value, t, f *BasicBlock) *BranchInst {
	return bld.Insert(NewCondBr(cond, t, f)).(*BranchInst)
}

// CreateSwitch emits a switch with the given default destination.
func (bld *Builder) CreateSwitch(v Value, def *BasicBlock) *SwitchInst {
	return bld.Insert(NewSwitch(v, def)).(*SwitchInst)
}

// CreateInvoke emits an invoke.
func (bld *Builder) CreateInvoke(callee Value, args []Value, normal, unwind *BasicBlock, name string) *InvokeInst {
	iv := NewInvoke(callee, args, normal, unwind)
	iv.SetName(name)
	return bld.Insert(iv).(*InvokeInst)
}

// CreateUnwind emits an unwind terminator.
func (bld *Builder) CreateUnwind() *UnwindInst {
	return bld.Insert(NewUnwind()).(*UnwindInst)
}

// CreateBinary emits a binary operator or comparison.
func (bld *Builder) CreateBinary(op Opcode, lhs, rhs Value, name string) *BinaryInst {
	b := NewBinary(op, lhs, rhs)
	b.SetName(name)
	return bld.Insert(b).(*BinaryInst)
}

// Convenience wrappers for the common binary operators.
func (bld *Builder) CreateAdd(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpAdd, l, r, name)
}
func (bld *Builder) CreateSub(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSub, l, r, name)
}
func (bld *Builder) CreateMul(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpMul, l, r, name)
}
func (bld *Builder) CreateDiv(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpDiv, l, r, name)
}
func (bld *Builder) CreateRem(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpRem, l, r, name)
}
func (bld *Builder) CreateAnd(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpAnd, l, r, name)
}
func (bld *Builder) CreateOr(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpOr, l, r, name)
}
func (bld *Builder) CreateXor(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpXor, l, r, name)
}
func (bld *Builder) CreateShl(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpShl, l, r, name)
}
func (bld *Builder) CreateShr(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpShr, l, r, name)
}
func (bld *Builder) CreateSetEQ(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSetEQ, l, r, name)
}
func (bld *Builder) CreateSetNE(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSetNE, l, r, name)
}
func (bld *Builder) CreateSetLT(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSetLT, l, r, name)
}
func (bld *Builder) CreateSetGT(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSetGT, l, r, name)
}
func (bld *Builder) CreateSetLE(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSetLE, l, r, name)
}
func (bld *Builder) CreateSetGE(l, r Value, name string) *BinaryInst {
	return bld.CreateBinary(OpSetGE, l, r, name)
}

// CreateMalloc emits "malloc <t>[, uint n]".
func (bld *Builder) CreateMalloc(t Type, n Value, name string) *MallocInst {
	m := NewMalloc(t, n)
	m.SetName(name)
	return bld.Insert(m).(*MallocInst)
}

// CreateAlloca emits "alloca <t>[, uint n]".
func (bld *Builder) CreateAlloca(t Type, n Value, name string) *AllocaInst {
	a := NewAlloca(t, n)
	a.SetName(name)
	return bld.Insert(a).(*AllocaInst)
}

// CreateFree emits "free <p>".
func (bld *Builder) CreateFree(p Value) *FreeInst {
	return bld.Insert(NewFree(p)).(*FreeInst)
}

// CreateLoad emits "load <p>".
func (bld *Builder) CreateLoad(p Value, name string) *LoadInst {
	l := NewLoad(p)
	l.SetName(name)
	return bld.Insert(l).(*LoadInst)
}

// CreateStore emits "store <v>, <p>".
func (bld *Builder) CreateStore(v, p Value) *StoreInst {
	return bld.Insert(NewStore(v, p)).(*StoreInst)
}

// CreateGEP emits a getelementptr.
func (bld *Builder) CreateGEP(base Value, indices []Value, name string) *GetElementPtrInst {
	g := NewGEP(base, indices...)
	g.SetName(name)
	return bld.Insert(g).(*GetElementPtrInst)
}

// CreateStructGEP emits a two-index GEP selecting field f of the struct
// pointed to by base: getelementptr base, long 0, ubyte f.
func (bld *Builder) CreateStructGEP(base Value, f int, name string) *GetElementPtrInst {
	return bld.CreateGEP(base, []Value{NewInt(LongType, 0), NewInt(UByteType, int64(f))}, name)
}

// CreatePhi emits an (initially empty) phi node.
func (bld *Builder) CreatePhi(t Type, name string) *PhiInst {
	p := NewPhi(t)
	p.SetName(name)
	return bld.Insert(p).(*PhiInst)
}

// CreateCast emits "cast <v> to <t>". If the value already has type t it is
// returned unchanged (no-op casts are never emitted).
func (bld *Builder) CreateCast(v Value, t Type, name string) Value {
	if TypesEqual(v.Type(), t) {
		return v
	}
	c := NewCast(v, t)
	c.SetName(name)
	return bld.Insert(c)
}

// CreateCall emits a call.
func (bld *Builder) CreateCall(callee Value, args []Value, name string) *CallInst {
	c := NewCall(callee, args...)
	c.SetName(name)
	return bld.Insert(c).(*CallInst)
}

// CreateVAArg emits a vaarg instruction.
func (bld *Builder) CreateVAArg(list Value, t Type, name string) *VAArgInst {
	v := NewVAArg(list, t)
	v.SetName(name)
	return bld.Insert(v).(*VAArgInst)
}

// FreshName returns a unique temporary name with the given prefix, for
// callers that want stable printable names.
func (bld *Builder) FreshName(prefix string) string {
	bld.tmp++
	return prefix + itoa(bld.tmp)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
