package core

import "fmt"

// CloneBlocks deep-copies the body of src. vmap seeds the value remapping
// (typically src arguments to replacement values); it is extended with
// every cloned block and instruction, so the caller can look up the clone
// of any original value afterwards. The returned blocks are detached; the
// caller inserts them into a function.
//
// Operands not present in vmap and not defined inside src (constants,
// globals, functions) are shared, not copied.
func CloneBlocks(src *Function, vmap map[Value]Value) []*BasicBlock {
	clones := make([]*BasicBlock, len(src.Blocks))
	for i, b := range src.Blocks {
		nb := NewBlock(b.Name())
		clones[i] = nb
		vmap[b] = nb
	}
	// Forward references (phis, and branches to later blocks are already
	// mapped) are patched through placeholders.
	pending := map[Value]*Placeholder{}
	lookup := func(v Value) Value {
		if v == nil {
			return nil
		}
		if mv, ok := vmap[v]; ok {
			return mv
		}
		// Values defined inside src must be remapped; placeholders cover
		// instructions not yet cloned.
		if inst, ok := v.(Instruction); ok && inst.Parent() != nil && inst.Parent().Parent() == src {
			if ph, ok := pending[v]; ok {
				return ph
			}
			ph := NewPlaceholder(v.Name(), v.Type())
			pending[v] = ph
			return ph
		}
		return v // constant, global, argument of another function, ...
	}

	for i, b := range src.Blocks {
		nb := clones[i]
		for _, inst := range b.Instrs {
			ni := cloneInstruction(inst, lookup)
			ni.SetName(inst.Name())
			nb.Append(ni)
			vmap[inst] = ni
		}
	}
	// Resolve placeholders now that every instruction has a clone.
	for orig, ph := range pending {
		ReplaceAllUses(ph, vmap[orig])
	}
	return clones
}

// cloneInstruction copies one instruction, remapping operands with lookup.
func cloneInstruction(inst Instruction, lookup func(Value) Value) Instruction {
	switch i := inst.(type) {
	case *RetInst:
		return NewRet(lookup(i.Value()))
	case *BranchInst:
		if i.IsConditional() {
			return NewCondBr(lookup(i.Cond()), lookup(i.TrueDest()).(*BasicBlock), lookup(i.FalseDest()).(*BasicBlock))
		}
		return NewBr(lookup(i.TrueDest()).(*BasicBlock))
	case *SwitchInst:
		sw := NewSwitch(lookup(i.Value()), lookup(i.Default()).(*BasicBlock))
		for n := 0; n < i.NumCases(); n++ {
			v, d := i.Case(n)
			sw.AddCase(v, lookup(d).(*BasicBlock))
		}
		return sw
	case *InvokeInst:
		args := make([]Value, len(i.Args()))
		for k, a := range i.Args() {
			args[k] = lookup(a)
		}
		return NewInvoke(lookup(i.Callee()), args, lookup(i.NormalDest()).(*BasicBlock), lookup(i.UnwindDest()).(*BasicBlock))
	case *UnwindInst:
		return NewUnwind()
	case *BinaryInst:
		return NewBinary(i.Opcode(), lookup(i.LHS()), lookup(i.RHS()))
	case *MallocInst:
		return NewMalloc(i.AllocType, lookup(i.NumElems()))
	case *AllocaInst:
		return NewAlloca(i.AllocType, lookup(i.NumElems()))
	case *FreeInst:
		return NewFree(lookup(i.Ptr()))
	case *LoadInst:
		return NewLoad(lookup(i.Ptr()))
	case *StoreInst:
		return NewStore(lookup(i.Val()), lookup(i.Ptr()))
	case *GetElementPtrInst:
		idx := make([]Value, len(i.Indices()))
		for k, ix := range i.Indices() {
			idx[k] = lookup(ix)
		}
		return NewGEP(lookup(i.Base()), idx...)
	case *PhiInst:
		phi := NewPhi(i.Type())
		for n := 0; n < i.NumIncoming(); n++ {
			v, b := i.Incoming(n)
			phi.AddIncoming(lookup(v), lookup(b).(*BasicBlock))
		}
		return phi
	case *CastInst:
		return NewCast(lookup(i.Val()), i.Type())
	case *CallInst:
		args := make([]Value, len(i.Args()))
		for k, a := range i.Args() {
			args[k] = lookup(a)
		}
		return NewCall(lookup(i.Callee()), args...)
	case *VAArgInst:
		return NewVAArg(lookup(i.List()), i.Type())
	}
	panic(fmt.Sprintf("core.CloneBlocks: unhandled instruction %T", inst))
}

// CloneFunction returns a complete copy of f (same signature) named name.
// The clone is detached from any module.
func CloneFunction(f *Function, name string) *Function {
	nf := NewFunction(name, f.Sig)
	nf.Linkage = f.Linkage
	vmap := map[Value]Value{}
	for i, a := range f.Args {
		nf.Args[i].SetName(a.Name())
		vmap[a] = nf.Args[i]
	}
	for _, b := range CloneBlocks(f, vmap) {
		nf.AddBlock(b)
	}
	return nf
}
