package core

import "fmt"

// CloneBlocks deep-copies the body of src. vmap seeds the value remapping
// (typically src arguments to replacement values); it is extended with
// every cloned block and instruction, so the caller can look up the clone
// of any original value afterwards. The returned blocks are detached; the
// caller inserts them into a function.
//
// Operands not present in vmap and not defined inside src (constants,
// globals, functions) are shared, not copied.
func CloneBlocks(src *Function, vmap map[Value]Value) []*BasicBlock {
	return cloneBlocksMapped(src, vmap, func(t Type) Type { return t })
}

// cloneBlocksMapped is CloneBlocks with an explicit type remapping, used by
// CloneModule so instruction-carried types (alloca/malloc element types,
// cast/phi/vaarg result types) point into the clone's type graph.
func cloneBlocksMapped(src *Function, vmap map[Value]Value, mapType func(Type) Type) []*BasicBlock {
	clones := make([]*BasicBlock, len(src.Blocks))
	for i, b := range src.Blocks {
		nb := NewBlock(b.Name())
		clones[i] = nb
		vmap[b] = nb
	}
	// Forward references (phis, and branches to later blocks are already
	// mapped) are patched through placeholders.
	pending := map[Value]*Placeholder{}
	lookup := func(v Value) Value {
		if v == nil {
			return nil
		}
		if mv, ok := vmap[v]; ok {
			return mv
		}
		// Values defined inside src must be remapped; placeholders cover
		// instructions not yet cloned.
		if inst, ok := v.(Instruction); ok && inst.Parent() != nil && inst.Parent().Parent() == src {
			if ph, ok := pending[v]; ok {
				return ph
			}
			ph := NewPlaceholder(v.Name(), v.Type())
			pending[v] = ph
			return ph
		}
		return v // constant, global, argument of another function, ...
	}

	for i, b := range src.Blocks {
		nb := clones[i]
		for _, inst := range b.Instrs {
			ni := cloneInstruction(inst, lookup, mapType)
			ni.SetName(inst.Name())
			nb.Append(ni)
			vmap[inst] = ni
		}
	}
	// Resolve placeholders now that every instruction has a clone.
	for orig, ph := range pending {
		ReplaceAllUses(ph, vmap[orig])
	}
	return clones
}

// cloneInstruction copies one instruction, remapping operands with lookup
// and instruction-carried types with mapType.
func cloneInstruction(inst Instruction, lookup func(Value) Value, mapType func(Type) Type) Instruction {
	switch i := inst.(type) {
	case *RetInst:
		return NewRet(lookup(i.Value()))
	case *BranchInst:
		if i.IsConditional() {
			return NewCondBr(lookup(i.Cond()), lookup(i.TrueDest()).(*BasicBlock), lookup(i.FalseDest()).(*BasicBlock))
		}
		return NewBr(lookup(i.TrueDest()).(*BasicBlock))
	case *SwitchInst:
		sw := NewSwitch(lookup(i.Value()), lookup(i.Default()).(*BasicBlock))
		for n := 0; n < i.NumCases(); n++ {
			v, d := i.Case(n)
			sw.AddCase(v, lookup(d).(*BasicBlock))
		}
		return sw
	case *InvokeInst:
		args := make([]Value, len(i.Args()))
		for k, a := range i.Args() {
			args[k] = lookup(a)
		}
		return NewInvoke(lookup(i.Callee()), args, lookup(i.NormalDest()).(*BasicBlock), lookup(i.UnwindDest()).(*BasicBlock))
	case *UnwindInst:
		return NewUnwind()
	case *BinaryInst:
		return NewBinary(i.Opcode(), lookup(i.LHS()), lookup(i.RHS()))
	case *MallocInst:
		return NewMalloc(mapType(i.AllocType), lookup(i.NumElems()))
	case *AllocaInst:
		return NewAlloca(mapType(i.AllocType), lookup(i.NumElems()))
	case *FreeInst:
		return NewFree(lookup(i.Ptr()))
	case *LoadInst:
		return NewLoad(lookup(i.Ptr()))
	case *StoreInst:
		return NewStore(lookup(i.Val()), lookup(i.Ptr()))
	case *GetElementPtrInst:
		idx := make([]Value, len(i.Indices()))
		for k, ix := range i.Indices() {
			idx[k] = lookup(ix)
		}
		return NewGEP(lookup(i.Base()), idx...)
	case *PhiInst:
		phi := NewPhi(mapType(i.Type()))
		for n := 0; n < i.NumIncoming(); n++ {
			v, b := i.Incoming(n)
			phi.AddIncoming(lookup(v), lookup(b).(*BasicBlock))
		}
		return phi
	case *CastInst:
		return NewCast(lookup(i.Val()), mapType(i.Type()))
	case *CallInst:
		args := make([]Value, len(i.Args()))
		for k, a := range i.Args() {
			args[k] = lookup(a)
		}
		return NewCall(lookup(i.Callee()), args...)
	case *VAArgInst:
		return NewVAArg(lookup(i.List()), mapType(i.Type()))
	}
	panic(fmt.Sprintf("core.CloneBlocks: unhandled instruction %T", inst))
}

// CloneFunction returns a complete copy of f (same signature) named name.
// The clone is detached from any module.
func CloneFunction(f *Function, name string) *Function {
	nf := NewFunction(name, f.Sig)
	nf.Linkage = f.Linkage
	vmap := map[Value]Value{}
	for i, a := range f.Args {
		nf.Args[i].SetName(a.Name())
		vmap[a] = nf.Args[i]
	}
	for _, b := range CloneBlocks(f, vmap) {
		nf.AddBlock(b)
	}
	return nf
}

// moduleCloner carries the shared remapping state of one CloneModule call:
// the type graph (struct bodies are mutable, so the clone must not share
// them), module-level values, and already-cloned constants.
type moduleCloner struct {
	tmap map[Type]Type
	vmap map[Value]Value
	cmap map[Constant]Constant
}

// typ deep-copies a derived type, sharing the primitive singletons.
// Recursive types terminate because the shell is memoized before its
// components are visited.
func (cl *moduleCloner) typ(t Type) Type {
	if t == nil {
		return nil
	}
	if nt, ok := cl.tmap[t]; ok {
		return nt
	}
	switch tt := t.(type) {
	case *PointerType:
		np := &PointerType{}
		cl.tmap[t] = np
		np.Elem = cl.typ(tt.Elem)
		return np
	case *ArrayType:
		na := &ArrayType{Len: tt.Len}
		cl.tmap[t] = na
		na.Elem = cl.typ(tt.Elem)
		return na
	case *StructType:
		ns := &StructType{Name: tt.Name}
		cl.tmap[t] = ns
		ns.Fields = make([]Type, len(tt.Fields))
		for i, f := range tt.Fields {
			ns.Fields[i] = cl.typ(f)
		}
		return ns
	case *FunctionType:
		nf := &FunctionType{Variadic: tt.Variadic}
		cl.tmap[t] = nf
		nf.Ret = cl.typ(tt.Ret)
		nf.Params = make([]Type, len(tt.Params))
		for i, p := range tt.Params {
			nf.Params[i] = cl.typ(p)
		}
		return nf
	case *OpaqueType:
		nt := &OpaqueType{Name: tt.Name}
		cl.tmap[t] = nt
		return nt
	default:
		cl.tmap[t] = t // primitive singleton
		return t
	}
}

// constant remaps a constant into the clone. Scalars over primitive types
// are immutable and shared; aggregates, constant expressions, and anything
// carrying a derived type are rebuilt (passes like fieldreorder mutate
// struct constants and their types in place).
func (cl *moduleCloner) constant(c Constant) Constant {
	if v, ok := cl.vmap[c]; ok {
		return v.(Constant)
	}
	if nc, ok := cl.cmap[c]; ok {
		return nc
	}
	var nc Constant
	switch cc := c.(type) {
	case *ConstantInt, *ConstantFloat, *ConstantBool:
		nc = c
	case *ConstantNull:
		nc = NewNull(cl.typ(cc.Type()).(*PointerType))
	case *ConstantUndef:
		nc = NewUndef(cl.typ(cc.Type()))
	case *ConstantZero:
		nc = NewZero(cl.typ(cc.Type()))
	case *ConstantArray:
		at := cc.Type().(*ArrayType)
		elems := make([]Constant, len(cc.Elems))
		for i, e := range cc.Elems {
			elems[i] = cl.constant(e)
		}
		nc = NewArrayConst(cl.typ(at.Elem), elems)
	case *ConstantStruct:
		fields := make([]Constant, len(cc.Fields))
		for i, f := range cc.Fields {
			fields[i] = cl.constant(f)
		}
		nc = NewStructConst(cl.typ(cc.Type()).(*StructType), fields)
	case *ConstantExpr:
		switch cc.Op {
		case OpCast:
			nc = NewConstCast(cl.constant(cc.Operand(0).(Constant)), cl.typ(cc.Type()))
		case OpGetElementPtr:
			ops := cc.Operands()
			base := cl.constant(ops[0].(Constant))
			idx := make([]Constant, len(ops)-1)
			for i, op := range ops[1:] {
				idx[i] = cl.constant(op.(Constant))
			}
			nc = NewConstGEP(base, idx...)
		default:
			nc = c
		}
	default:
		// Functions/globals of other modules, placeholders: share.
		nc = c
	}
	cl.cmap[c] = nc
	return nc
}

// CloneModule returns a complete, independent deep copy of src: functions,
// globals, initializers, named types, and the mutable parts of the type
// graph. The clone prints identically to src and shares no mutable state
// with it, so it can serve as a rollback snapshot while passes transform
// (and possibly corrupt) the original — or vice versa.
func CloneModule(src *Module) *Module {
	cl := &moduleCloner{
		tmap: map[Type]Type{},
		vmap: map[Value]Value{},
		cmap: map[Constant]Constant{},
	}
	dst := NewModule(src.Name)
	for _, name := range src.TypeNames() {
		t, _ := src.NamedType(name)
		dst.AddTypeName(name, cl.typ(t))
	}
	for _, f := range src.Funcs {
		nf := NewFunction(f.Name(), cl.typ(f.Sig).(*FunctionType))
		nf.Linkage = f.Linkage
		for i, a := range f.Args {
			nf.Args[i].SetName(a.Name())
		}
		dst.AddFunc(nf)
		cl.vmap[f] = nf
	}
	for _, g := range src.Globals {
		ng := NewGlobal(g.Name(), cl.typ(g.ValueType), nil)
		ng.IsConst = g.IsConst
		ng.Linkage = g.Linkage
		dst.AddGlobal(ng)
		cl.vmap[g] = ng
	}
	for i, g := range src.Globals {
		if g.Init != nil {
			dst.Globals[i].Init = cl.constant(g.Init)
		}
	}
	for i, f := range src.Funcs {
		if f.IsDeclaration() {
			continue
		}
		nf := dst.Funcs[i]
		vmap := make(map[Value]Value, len(cl.vmap)+len(f.Args))
		for k, v := range cl.vmap {
			vmap[k] = v
		}
		for j, a := range f.Args {
			vmap[a] = nf.Args[j]
		}
		// Pre-map constant operands so aggregates, constant expressions,
		// and derived-typed scalars land in the clone's type graph.
		f.ForEachInst(func(inst Instruction) bool {
			for _, op := range inst.Operands() {
				if c, ok := op.(Constant); ok {
					if _, seen := vmap[c]; !seen {
						vmap[c] = cl.constant(c)
					}
				}
			}
			return true
		})
		for _, b := range cloneBlocksMapped(f, vmap, cl.typ) {
			nf.AddBlock(b)
		}
	}
	return dst
}
