package core

import (
	"strings"
	"testing"
)

// Regression tests for the memory-instruction preconditions the static
// checker relies on: free takes a sized-pointee pointer, loads and stores
// never go through void*, and allocations have a computable size.

// badFn builds a void function whose entry block runs build() then returns,
// and asserts Verify rejects it with a message containing want.
func badFn(t *testing.T, want string, build func(bb *BasicBlock)) {
	t.Helper()
	m := NewModule("bad")
	f := NewFunction("f", NewFunctionType(VoidType))
	m.AddFunc(f)
	bb := NewBlock("entry")
	f.AddBlock(bb)
	build(bb)
	bb.Append(NewRet(nil))
	err := Verify(m)
	if err == nil {
		t.Fatalf("verifier accepted invalid IR, want %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestVerifierRejectsFreeOfNonPointer(t *testing.T) {
	badFn(t, "free of non-pointer", func(bb *BasicBlock) {
		bb.Append(NewFree(NewInt(IntType, 3)))
	})
}

func TestVerifierRejectsFreeThroughVoidPtr(t *testing.T) {
	badFn(t, "no allocation size", func(bb *BasicBlock) {
		p := NewMalloc(IntType, nil)
		bb.Append(p)
		c := NewCast(p, NewPointer(VoidType))
		bb.Append(c)
		bb.Append(NewFree(c))
	})
}

func TestVerifierRejectsFreeOfFunctionPointer(t *testing.T) {
	badFn(t, "no allocation size", func(bb *BasicBlock) {
		g := NewFunction("g", NewFunctionType(VoidType))
		bb.Parent().Parent().AddFunc(g)
		bb.Append(NewFree(g))
	})
}

func TestVerifierRejectsLoadThroughVoidPtr(t *testing.T) {
	badFn(t, "void*-typed address", func(bb *BasicBlock) {
		p := NewMalloc(IntType, nil)
		bb.Append(p)
		c := NewCast(p, NewPointer(VoidType))
		bb.Append(c)
		bb.Append(NewLoad(c))
	})
}

func TestVerifierRejectsStoreThroughVoidPtr(t *testing.T) {
	badFn(t, "store through void*", func(bb *BasicBlock) {
		p := NewMalloc(IntType, nil)
		bb.Append(p)
		c := NewCast(p, NewPointer(VoidType))
		bb.Append(c)
		bb.Append(NewStore(NewInt(IntType, 1), c))
	})
}

func TestVerifierRejectsUnsizedMalloc(t *testing.T) {
	badFn(t, "malloc of unsized", func(bb *BasicBlock) {
		bb.Append(NewMalloc(VoidType, nil))
	})
}

func TestVerifierRejectsUnsizedAlloca(t *testing.T) {
	badFn(t, "alloca of unsized", func(bb *BasicBlock) {
		bb.Append(NewAlloca(NewFunctionType(VoidType), nil))
	})
}

func TestVerifierAcceptsSizedAllocAndFree(t *testing.T) {
	m := NewModule("ok")
	f := NewFunction("f", NewFunctionType(VoidType))
	m.AddFunc(f)
	bb := NewBlock("entry")
	f.AddBlock(bb)
	st := NewStruct(IntType, NewPointer(IntType))
	p := NewMalloc(st, nil)
	bb.Append(p)
	bb.Append(NewFree(p))
	bb.Append(NewRet(nil))
	if err := Verify(m); err != nil {
		t.Fatalf("valid IR rejected: %v", err)
	}
}

func TestIsSized(t *testing.T) {
	cases := []struct {
		t    Type
		want bool
	}{
		{IntType, true},
		{VoidType, false},
		{LabelType, false},
		{NewPointer(VoidType), true}, // the pointer itself is sized
		{NewArray(IntType, 4), true},
		{NewStruct(IntType, DoubleType), true},
		{NewFunctionType(IntType), false},
	}
	for _, c := range cases {
		if got := IsSized(c.t); got != c.want {
			t.Errorf("IsSized(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}
