package core

import "fmt"

// Module is a translation unit: named types, global variables, and
// functions. Modules are the unit of separate compilation; the linker
// merges them (preserving the representation for later stages, per the
// paper's lifelong-compilation model).
type Module struct {
	Name string

	// TypeNames maps %name to its type, in declaration order for printing.
	typeNames    map[string]Type
	typeOrder    []string
	Globals      []*GlobalVariable
	Funcs        []*Function
	globalByName map[string]*GlobalVariable
	funcByName   map[string]*Function
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:         name,
		typeNames:    map[string]Type{},
		globalByName: map[string]*GlobalVariable{},
		funcByName:   map[string]*Function{},
	}
}

// AddTypeName registers "%name = type ..." in the module's symbol table.
// If the type is an unnamed struct it becomes named.
func (m *Module) AddTypeName(name string, t Type) {
	if _, dup := m.typeNames[name]; !dup {
		m.typeOrder = append(m.typeOrder, name)
	}
	m.typeNames[name] = t
	if st, ok := t.(*StructType); ok && st.Name == "" {
		st.Name = name
	}
}

// NamedType looks up a type by name.
func (m *Module) NamedType(name string) (Type, bool) {
	t, ok := m.typeNames[name]
	return t, ok
}

// TypeNames returns the registered type names in declaration order.
func (m *Module) TypeNames() []string { return m.typeOrder }

// RemoveTypeName deletes a named type entry (dead type elimination).
func (m *Module) RemoveTypeName(name string) {
	if _, ok := m.typeNames[name]; !ok {
		return
	}
	delete(m.typeNames, name)
	for i, n := range m.typeOrder {
		if n == name {
			m.typeOrder = append(m.typeOrder[:i], m.typeOrder[i+1:]...)
			break
		}
	}
}

// AddGlobal inserts g into the module. The name must be unique among
// globals and functions.
func (m *Module) AddGlobal(g *GlobalVariable) {
	if m.globalByName[g.Name()] != nil || m.funcByName[g.Name()] != nil {
		panic(fmt.Sprintf("core: duplicate global symbol %%%s", g.Name()))
	}
	g.parent = m
	m.Globals = append(m.Globals, g)
	m.globalByName[g.Name()] = g
}

// AddFunc inserts f into the module. The name must be unique among globals
// and functions.
func (m *Module) AddFunc(f *Function) {
	if m.globalByName[f.Name()] != nil || m.funcByName[f.Name()] != nil {
		panic(fmt.Sprintf("core: duplicate function symbol %%%s", f.Name()))
	}
	f.parent = m
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.Name()] = f
}

// Global looks up a global variable by name.
func (m *Module) Global(name string) *GlobalVariable { return m.globalByName[name] }

// Func looks up a function by name.
func (m *Module) Func(name string) *Function { return m.funcByName[name] }

// RemoveGlobal unlinks g from the module; its uses must already be gone.
func (m *Module) RemoveGlobal(g *GlobalVariable) {
	for i, x := range m.Globals {
		if x == g {
			m.Globals = append(m.Globals[:i], m.Globals[i+1:]...)
			delete(m.globalByName, g.Name())
			g.parent = nil
			return
		}
	}
}

// RemoveFunc unlinks f from the module; its uses must already be gone.
func (m *Module) RemoveFunc(f *Function) {
	for i, x := range m.Funcs {
		if x == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			delete(m.funcByName, f.Name())
			f.parent = nil
			return
		}
	}
}

// RenameFunc changes a function's symbol name, keeping lookup maps
// consistent. The new name must be free.
func (m *Module) RenameFunc(f *Function, newName string) {
	if m.funcByName[newName] != nil || m.globalByName[newName] != nil {
		panic("core.RenameFunc: symbol already exists: " + newName)
	}
	delete(m.funcByName, f.Name())
	f.SetName(newName)
	m.funcByName[newName] = f
}

// UniqueSymbol returns base if it is unused, else base.N for the smallest
// free N. Useful when the linker must rename internal symbols.
func (m *Module) UniqueSymbol(base string) string {
	if m.funcByName[base] == nil && m.globalByName[base] == nil {
		return base
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s.%d", base, i)
		if m.funcByName[cand] == nil && m.globalByName[cand] == nil {
			return cand
		}
	}
}

// NumInstructions returns the total instruction count of the module.
func (m *Module) NumInstructions() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstructions()
	}
	return n
}

// GetOrInsertFunction returns the function named name, creating an external
// declaration with the given signature if absent.
func (m *Module) GetOrInsertFunction(name string, sig *FunctionType) *Function {
	if f := m.funcByName[name]; f != nil {
		return f
	}
	f := NewFunction(name, sig)
	m.AddFunc(f)
	return f
}

// AdoptFrom moves the entire contents of src into m, replacing whatever m
// held. Functions and globals are re-parented to m; src must not be used
// afterwards. The pass manager uses this to commit a transformed scratch
// clone back into the caller's module (or, symmetrically, to roll a module
// back to a snapshot) without invalidating the caller's *Module pointer.
func (m *Module) AdoptFrom(src *Module) {
	m.Name = src.Name
	m.typeNames = src.typeNames
	m.typeOrder = src.typeOrder
	m.Globals = src.Globals
	m.Funcs = src.Funcs
	m.globalByName = src.globalByName
	m.funcByName = src.funcByName
	for _, f := range m.Funcs {
		f.parent = m
	}
	for _, g := range m.Globals {
		g.parent = m
	}
}

// MoveTypeNameToEnd reorders a named type to the end of the declaration
// order; parsers use it so printing reflects declaration order even when a
// type was first seen as a forward reference.
func (m *Module) MoveTypeNameToEnd(name string) {
	for i, n := range m.typeOrder {
		if n == name {
			m.typeOrder = append(m.typeOrder[:i], m.typeOrder[i+1:]...)
			m.typeOrder = append(m.typeOrder, name)
			return
		}
	}
}
