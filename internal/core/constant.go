package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Constant is a Value whose bits are known at compile time: integer, float
// and bool literals, null pointers, undef, aggregate literals, and constant
// expressions (cast/getelementptr over other constants, used chiefly in
// global initializers).
type Constant interface {
	Value
	isConstant()
}

// ConstantInt is an integer literal of one of the eight integer types.
// The value is stored sign-agnostically in a uint64 and interpreted
// according to the type's signedness and width.
type ConstantInt struct {
	valueBase
	Val uint64
}

// NewInt returns an integer constant of type t holding v (truncated to the
// type's width).
func NewInt(t Type, v int64) *ConstantInt {
	if !IsInteger(t) {
		panic("core.NewInt: non-integer type " + t.String())
	}
	c := &ConstantInt{Val: truncToWidth(uint64(v), BitWidth(t))}
	c.typ = t
	c.markShared()
	return c
}

func truncToWidth(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

func (c *ConstantInt) isConstant() {}

// SExt returns the value sign- or zero-extended to int64 per the type.
func (c *ConstantInt) SExt() int64 {
	bits := BitWidth(c.typ)
	if IsSigned(c.typ) && bits < 64 {
		shift := uint(64 - bits)
		return int64(c.Val<<shift) >> shift
	}
	return int64(c.Val)
}

// IsZero reports whether the constant is zero.
func (c *ConstantInt) IsZero() bool { return c.Val == 0 }

// String returns the literal spelling.
func (c *ConstantInt) String() string {
	if IsSigned(c.typ) {
		return strconv.FormatInt(c.SExt(), 10)
	}
	return strconv.FormatUint(c.Val, 10)
}

// ConstantFloat is a float or double literal.
type ConstantFloat struct {
	valueBase
	Val float64
}

// NewFloat returns a floating-point constant of type t (float or double).
func NewFloat(t Type, v float64) *ConstantFloat {
	if !IsFloatingPoint(t) {
		panic("core.NewFloat: non-FP type " + t.String())
	}
	if t.Kind() == FloatKind {
		v = float64(float32(v))
	}
	c := &ConstantFloat{Val: v}
	c.typ = t
	c.markShared()
	return c
}

func (c *ConstantFloat) isConstant() {}

// String returns the literal spelling.
func (c *ConstantFloat) String() string {
	s := strconv.FormatFloat(c.Val, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eEnI") {
		s += ".0"
	}
	return s
}

// ConstantBool is "true" or "false".
type ConstantBool struct {
	valueBase
	Val bool
}

// NewBool returns a bool constant.
func NewBool(v bool) *ConstantBool {
	c := &ConstantBool{Val: v}
	c.typ = BoolType
	c.markShared()
	return c
}

// True and False construct fresh bool constants.
func True() *ConstantBool  { return NewBool(true) }
func False() *ConstantBool { return NewBool(false) }

func (c *ConstantBool) isConstant() {}

// String returns "true" or "false".
func (c *ConstantBool) String() string {
	if c.Val {
		return "true"
	}
	return "false"
}

// ConstantNull is the null pointer of a given pointer type.
type ConstantNull struct{ valueBase }

// NewNull returns the null constant of pointer type t.
func NewNull(t *PointerType) *ConstantNull {
	c := &ConstantNull{}
	c.typ = t
	c.markShared()
	return c
}

func (c *ConstantNull) isConstant() {}

// String returns "null".
func (c *ConstantNull) String() string { return "null" }

// ConstantUndef is an undefined value of any first-class type. Reading it
// yields an unspecified bit pattern; optimizers may fold it freely.
type ConstantUndef struct{ valueBase }

// NewUndef returns an undef constant of type t.
func NewUndef(t Type) *ConstantUndef {
	c := &ConstantUndef{}
	c.typ = t
	c.markShared()
	return c
}

func (c *ConstantUndef) isConstant() {}

// String returns "undef".
func (c *ConstantUndef) String() string { return "undef" }

// ConstantZero is the zero-initializer of an aggregate (or any) type,
// spelled "zeroinitializer" in assembly.
type ConstantZero struct{ valueBase }

// NewZero returns the all-zero constant of type t.
func NewZero(t Type) *ConstantZero {
	c := &ConstantZero{}
	c.typ = t
	c.markShared()
	return c
}

func (c *ConstantZero) isConstant() {}

// String returns "zeroinitializer".
func (c *ConstantZero) String() string { return "zeroinitializer" }

// ConstantArray is an array literal. Elems has exactly the array length.
type ConstantArray struct {
	valueBase
	Elems []Constant
}

// NewArrayConst returns an array constant with the given elements; its type
// is [len(elems) x elem].
func NewArrayConst(elem Type, elems []Constant) *ConstantArray {
	c := &ConstantArray{Elems: elems}
	c.typ = NewArray(elem, len(elems))
	c.markShared()
	return c
}

// NewString returns a constant [n x sbyte] array holding s plus a
// terminating NUL, matching how C front-ends emit string literals.
func NewString(s string) *ConstantArray {
	elems := make([]Constant, len(s)+1)
	for i := 0; i < len(s); i++ {
		elems[i] = NewInt(SByteType, int64(s[i]))
	}
	elems[len(s)] = NewInt(SByteType, 0)
	return NewArrayConst(SByteType, elems)
}

func (c *ConstantArray) isConstant() {}

// AsString decodes a NUL-terminated sbyte array back into a Go string,
// reporting ok=false if the array is not printable string data.
func (c *ConstantArray) AsString() (string, bool) {
	var b strings.Builder
	for i, e := range c.Elems {
		ci, ok := e.(*ConstantInt)
		if !ok {
			return "", false
		}
		if i == len(c.Elems)-1 && ci.Val == 0 {
			return b.String(), true
		}
		b.WriteByte(byte(ci.Val))
	}
	return "", false
}

// String returns the literal spelling, using the c"..." shorthand for
// printable NUL-terminated sbyte arrays.
func (c *ConstantArray) String() string {
	if s, ok := c.AsString(); ok && isPrintable(s) {
		return "c" + quoteLL(s+"\x00")
	}
	var b strings.Builder
	b.WriteString("[ ")
	for i, e := range c.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Type().String())
		b.WriteString(" ")
		b.WriteString(valueRef(e))
	}
	b.WriteString(" ]")
	return b.String()
}

func isPrintable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x7f {
			return false
		}
	}
	return true
}

func quoteLL(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= 0x20 && ch < 0x7f && ch != '"' && ch != '\\' {
			b.WriteByte(ch)
		} else {
			fmt.Fprintf(&b, "\\%02X", ch)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// ConstantStruct is a struct literal.
type ConstantStruct struct {
	valueBase
	Fields []Constant
}

// NewStructConst returns a struct constant of type st with the given fields.
func NewStructConst(st *StructType, fields []Constant) *ConstantStruct {
	c := &ConstantStruct{Fields: fields}
	c.typ = st
	c.markShared()
	return c
}

func (c *ConstantStruct) isConstant() {}

// String returns the literal spelling "{ ty v, ty v }".
func (c *ConstantStruct) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, f := range c.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Type().String())
		b.WriteString(" ")
		b.WriteString(valueRef(f))
	}
	b.WriteString(" }")
	return b.String()
}

// ConstantExpr is a constant expression: a cast or getelementptr applied to
// other constants. These appear mainly in global initializers (e.g. a
// pointer to the first character of a string global).
type ConstantExpr struct {
	userBase
	Op Opcode
}

// NewConstCast returns the constant expression "cast (c to t)".
func NewConstCast(c Constant, t Type) *ConstantExpr {
	e := &ConstantExpr{Op: OpCast}
	e.typ = t
	e.markShared()
	e.setOperands(e, []Value{c})
	return e
}

// NewConstGEP returns the constant expression
// "getelementptr (base, indices...)". Its type is computed from the
// index path like the getelementptr instruction's.
func NewConstGEP(base Constant, indices ...Constant) *ConstantExpr {
	ivals := make([]Value, 0, len(indices)+1)
	ivals = append(ivals, base)
	idxVals := make([]Value, len(indices))
	for i, ix := range indices {
		idxVals[i] = ix
	}
	ivals = append(ivals, idxVals...)
	rt, err := GEPResultType(base.Type(), idxVals[0:])
	if err != nil {
		panic("core.NewConstGEP: " + err.Error())
	}
	e := &ConstantExpr{Op: OpGetElementPtr}
	e.typ = rt
	e.markShared()
	e.setOperands(e, ivals)
	return e
}

func (e *ConstantExpr) isConstant() {}

// SetOperand replaces the i'th operand.
func (e *ConstantExpr) SetOperand(i int, v Value) { e.setOperandAt(e, i, v) }

// String returns the expression spelling, e.g.
// "getelementptr ([5 x sbyte]* %str, long 0, long 0)".
func (e *ConstantExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Op.String())
	b.WriteString(" (")
	for i, op := range e.ops {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(op.Type().String())
		b.WriteString(" ")
		b.WriteString(valueRef(op))
	}
	if e.Op == OpCast {
		b.WriteString(" to ")
		b.WriteString(e.typ.String())
	}
	b.WriteString(")")
	return b.String()
}

// valueRef returns how a value is spelled when used as an operand: literal
// text for constants, %name for registers/blocks, @-less %name for globals
// (LLVM 1.x used % for globals too).
func valueRef(v Value) string {
	switch c := v.(type) {
	case *ConstantInt:
		return c.String()
	case *ConstantFloat:
		return c.String()
	case *ConstantBool:
		return c.String()
	case *ConstantNull:
		return "null"
	case *ConstantUndef:
		return "undef"
	case *ConstantZero:
		return "zeroinitializer"
	case *ConstantArray:
		return c.String()
	case *ConstantStruct:
		return c.String()
	case *ConstantExpr:
		return c.String()
	case nil:
		return "<nil>"
	}
	return "%" + v.Name()
}

// ZeroValueOf returns the canonical zero constant for a first-class or
// aggregate type.
func ZeroValueOf(t Type) Constant {
	switch {
	case IsInteger(t):
		return NewInt(t, 0)
	case IsFloatingPoint(t):
		return NewFloat(t, 0)
	case t.Kind() == BoolKind:
		return NewBool(false)
	case t.Kind() == PointerKind:
		return NewNull(t.(*PointerType))
	default:
		return NewZero(t)
	}
}

// IsConstantZero reports whether c is a zero of its type.
func IsConstantZero(c Constant) bool {
	switch cc := c.(type) {
	case *ConstantInt:
		return cc.Val == 0
	case *ConstantFloat:
		return cc.Val == 0
	case *ConstantBool:
		return !cc.Val
	case *ConstantNull, *ConstantZero:
		return true
	}
	return false
}
