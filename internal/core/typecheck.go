package core

import "fmt"

// ValidateTypeGraph checks that a type constructed by a parser or decoder
// is well-founded:
//
//  1. no type contains itself by value (struct fields and array elements
//     form the containment relation) — such a type would have infinite
//     size;
//  2. every reference cycle (including through pointers and function
//     signatures) passes through a *named* struct — the only construct
//     whose printing and structural traversal terminate on cycles.
//
// Hand-built IR normally satisfies both by construction; untrusted inputs
// (bytecode images, assembly text) must be checked or a malformed type can
// hang SizeOf or String.
func ValidateTypeGraph(t Type) error {
	if err := checkContainment(t, map[Type]int{}); err != nil {
		return err
	}
	return checkCycles(t, nil, map[Type]bool{})
}

// checkContainment rejects by-value self-containment. state: 1 = on the
// current path, 2 = proven finite.
func checkContainment(t Type, state map[Type]int) error {
	switch tt := t.(type) {
	case *StructType:
		switch state[t] {
		case 1:
			// Don't render the literal form here: a cyclic unnamed struct
			// would make the printer recurse the same way.
			name := tt.Name
			if name == "" {
				name = "<anonymous struct>"
			}
			return fmt.Errorf("type %s contains itself by value (infinite size)", name)
		case 2:
			return nil
		}
		state[t] = 1
		for _, f := range tt.Fields {
			if err := checkContainment(f, state); err != nil {
				return err
			}
		}
		state[t] = 2
	case *ArrayType:
		switch state[t] {
		case 1:
			return fmt.Errorf("array type contains itself by value (infinite size)")
		case 2:
			return nil
		}
		state[t] = 1
		if err := checkContainment(tt.Elem, state); err != nil {
			return err
		}
		state[t] = 2
	}
	// Pointers and function types refer, they do not contain.
	return nil
}

// checkCycles walks every reference edge; a cycle whose path segment holds
// no named struct cannot be printed or compared and is rejected.
func checkCycles(t Type, stack []Type, done map[Type]bool) error {
	if done[t] {
		return nil
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == t {
			// Cycle: the segment stack[i:] + t must include a named struct.
			for _, s := range stack[i:] {
				if st, ok := s.(*StructType); ok && st.Name != "" {
					return nil
				}
			}
			if st, ok := t.(*StructType); ok && st.Name != "" {
				return nil
			}
			return fmt.Errorf("type cycle without a named struct (unprintable): %T", t)
		}
	}
	stack = append(stack, t)
	var err error
	switch tt := t.(type) {
	case *PointerType:
		err = checkCycles(tt.Elem, stack, done)
	case *ArrayType:
		err = checkCycles(tt.Elem, stack, done)
	case *StructType:
		for _, f := range tt.Fields {
			if err = checkCycles(f, stack, done); err != nil {
				break
			}
		}
	case *FunctionType:
		if err = checkCycles(tt.Ret, stack, done); err == nil {
			for _, p := range tt.Params {
				if err = checkCycles(p, stack, done); err != nil {
					break
				}
			}
		}
	}
	if err != nil {
		return err
	}
	done[t] = true
	return nil
}
