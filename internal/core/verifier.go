package core

import (
	"fmt"
	"strings"
)

// VerifyError aggregates all problems found in a module or function.
type VerifyError struct{ Problems []string }

// Error joins the problems into one message.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("verifier: %d problem(s):\n  %s", len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// Verify checks the module against the IR's structural, type, and SSA rules
// and returns a *VerifyError describing every violation, or nil. As the
// paper notes (§2.2), strict type rules make many optimizer bugs manifest
// as verifier failures rather than silent miscompiles.
func Verify(m *Module) error {
	v := &verifier{}
	for _, g := range m.Globals {
		v.verifyGlobal(g)
	}
	for _, f := range m.Funcs {
		v.verifyFunction(f)
	}
	if len(v.problems) > 0 {
		return &VerifyError{Problems: v.problems}
	}
	return nil
}

// VerifyFunction checks a single function.
func VerifyFunction(f *Function) error {
	v := &verifier{}
	v.verifyFunction(f)
	if len(v.problems) > 0 {
		return &VerifyError{Problems: v.problems}
	}
	return nil
}

type verifier struct {
	problems []string
	fn       *Function
}

func (v *verifier) errf(format string, args ...interface{}) {
	where := ""
	if v.fn != nil {
		where = "in %" + v.fn.Name() + ": "
	}
	v.problems = append(v.problems, where+fmt.Sprintf(format, args...))
}

func (v *verifier) verifyGlobal(g *GlobalVariable) {
	if g.Init != nil && !TypesEqual(g.Init.Type(), g.ValueType) {
		v.errf("global %%%s initializer type %s does not match value type %s",
			g.Name(), g.Init.Type(), g.ValueType)
	}
}

func (v *verifier) verifyFunction(f *Function) {
	v.fn = f
	defer func() { v.fn = nil }()

	if len(f.Args) != len(f.Sig.Params) {
		v.errf("argument count %d does not match signature %s", len(f.Args), f.Sig)
		return
	}
	for i, a := range f.Args {
		if !TypesEqual(a.Type(), f.Sig.Params[i]) {
			v.errf("argument %d has type %s, signature says %s", i, a.Type(), f.Sig.Params[i])
		}
	}
	if f.IsDeclaration() {
		return
	}

	inFunc := map[*BasicBlock]bool{}
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	if len(f.Entry().Preds()) > 0 {
		v.errf("entry block %%%s has predecessors", f.Entry().Name())
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			v.errf("block %%%s is empty", b.Name())
			continue
		}
		for k, inst := range b.Instrs {
			isLast := k == len(b.Instrs)-1
			if inst.IsTerminator() != isLast {
				if isLast {
					v.errf("block %%%s does not end with a terminator", b.Name())
				} else {
					v.errf("terminator %s in the middle of block %%%s", inst.Opcode(), b.Name())
				}
			}
			if _, isPhi := inst.(*PhiInst); isPhi && k >= b.FirstNonPhi() {
				v.errf("phi after non-phi instruction in block %%%s", b.Name())
			}
			v.verifyInst(inst, inFunc)
		}
	}

	v.verifyPhisMatchPreds(f)
	v.verifySSADominance(f)
}

func (v *verifier) verifyInst(inst Instruction, inFunc map[*BasicBlock]bool) {
	// All operands present, blocks belong to the function, instruction
	// operands belong to some block of the same function.
	for i := 0; i < inst.NumOperands(); i++ {
		op := inst.Operand(i)
		if op == nil {
			v.errf("%s has nil operand %d", inst.Opcode(), i)
			return
		}
		if blk, ok := op.(*BasicBlock); ok && !inFunc[blk] {
			v.errf("%s references block %%%s from another function", inst.Opcode(), blk.Name())
		}
		if oi, ok := op.(Instruction); ok {
			if oi.Parent() == nil || oi.Parent().Parent() != inst.Parent().Parent() {
				v.errf("%s uses instruction not inserted in this function", inst.Opcode())
			}
		}
	}

	switch i := inst.(type) {
	case *RetInst:
		ret := i.Parent().Parent().Sig.Ret
		if i.Value() == nil {
			if ret != VoidType {
				v.errf("ret void in function returning %s", ret)
			}
		} else if !TypesEqual(i.Value().Type(), ret) {
			v.errf("ret %s in function returning %s", i.Value().Type(), ret)
		}
	case *BranchInst:
		if i.IsConditional() && i.Cond().Type() != BoolType {
			v.errf("br condition has type %s, want bool", i.Cond().Type())
		}
	case *SwitchInst:
		if !IsInteger(i.Value().Type()) {
			v.errf("switch on non-integer type %s", i.Value().Type())
		}
		for n := 0; n < i.NumCases(); n++ {
			val, _ := i.Case(n)
			if !TypesEqual(val.Type(), i.Value().Type()) {
				v.errf("switch case %d type %s does not match value type %s", n, val.Type(), i.Value().Type())
			}
		}
	case *BinaryInst:
		v.verifyBinary(i)
	case *MallocInst:
		v.verifyAllocSize(i.Opcode(), i.NumElems())
		if !IsSized(i.AllocType) {
			v.errf("malloc of unsized type %s", i.AllocType)
		}
	case *AllocaInst:
		v.verifyAllocSize(i.Opcode(), i.NumElems())
		if !IsSized(i.AllocType) {
			v.errf("alloca of unsized type %s", i.AllocType)
		}
	case *FreeInst:
		pt, ok := i.Ptr().Type().(*PointerType)
		if !ok {
			v.errf("free of non-pointer type %s", i.Ptr().Type())
		} else if !IsSized(pt.Elem) {
			v.errf("free through %s: pointee %s has no allocation size", i.Ptr().Type(), pt.Elem)
		}
	case *LoadInst:
		pt, ok := i.Ptr().Type().(*PointerType)
		if !ok {
			v.errf("load from non-pointer type %s", i.Ptr().Type())
		} else if pt.Elem.Kind() == VoidKind {
			v.errf("load through void*-typed address: void values cannot be loaded")
		} else if !TypesEqual(pt.Elem, i.Type()) {
			v.errf("load result type %s does not match pointee %s", i.Type(), pt.Elem)
		} else if !IsFirstClass(pt.Elem) {
			v.errf("load of non-first-class type %s", pt.Elem)
		}
	case *StoreInst:
		pt, ok := i.Ptr().Type().(*PointerType)
		if !ok {
			v.errf("store to non-pointer type %s", i.Ptr().Type())
		} else if pt.Elem.Kind() == VoidKind {
			v.errf("store through void*-typed address: void values cannot be stored")
		} else if !TypesEqual(pt.Elem, i.Val().Type()) {
			v.errf("store of %s through %s", i.Val().Type(), i.Ptr().Type())
		} else if !IsFirstClass(i.Val().Type()) {
			v.errf("store of non-first-class type %s", i.Val().Type())
		}
	case *GetElementPtrInst:
		rt, err := GEPResultType(i.Base().Type(), i.Indices())
		if err != nil {
			v.errf("%v", err)
		} else if !TypesEqual(rt, i.Type()) {
			v.errf("getelementptr result type %s, computed %s", i.Type(), rt)
		}
	case *PhiInst:
		if !IsFirstClass(i.Type()) {
			v.errf("phi of non-first-class type %s", i.Type())
		}
		for n := 0; n < i.NumIncoming(); n++ {
			val, _ := i.Incoming(n)
			if !TypesEqual(val.Type(), i.Type()) {
				v.errf("phi incoming value %d has type %s, want %s", n, val.Type(), i.Type())
			}
		}
	case *CastInst:
		src, dst := i.Val().Type(), i.Type()
		if !castAllowed(src, dst) {
			v.errf("invalid cast from %s to %s", src, dst)
		}
	case *CallInst:
		v.verifyCallArgs(i.Callee(), i.Args(), i.Type())
	case *InvokeInst:
		v.verifyCallArgs(i.Callee(), i.Args(), i.Type())
	case *VAArgInst:
		if i.List().Type().Kind() != PointerKind {
			v.errf("vaarg list has non-pointer type %s", i.List().Type())
		}
	}
}

func (v *verifier) verifyAllocSize(op Opcode, n Value) {
	if n != nil && !IsInteger(n.Type()) {
		v.errf("%s element count has non-integer type %s", op, n.Type())
	}
}

func (v *verifier) verifyBinary(i *BinaryInst) {
	lt, rt := i.LHS().Type(), i.RHS().Type()
	switch i.Opcode() {
	case OpShl, OpShr:
		if !IsInteger(lt) {
			v.errf("%s of non-integer type %s", i.Opcode(), lt)
		}
		if rt.Kind() != UByteKind {
			v.errf("%s shift amount must be ubyte, got %s", i.Opcode(), rt)
		}
		return
	case OpAnd, OpOr, OpXor:
		if !IsInteger(lt) && lt.Kind() != BoolKind {
			v.errf("%s of non-integral type %s", i.Opcode(), lt)
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		if !IsArithmetic(lt) {
			v.errf("%s of non-arithmetic type %s", i.Opcode(), lt)
		}
	case OpSetEQ, OpSetNE, OpSetLT, OpSetGT, OpSetLE, OpSetGE:
		if !IsFirstClass(lt) {
			v.errf("%s of non-first-class type %s", i.Opcode(), lt)
		}
		if i.Type() != BoolType {
			v.errf("%s result must be bool", i.Opcode())
		}
	}
	if !TypesEqual(lt, rt) {
		v.errf("%s operand types differ: %s vs %s", i.Opcode(), lt, rt)
	}
	if IsBinaryOp(i.Opcode()) && !TypesEqual(i.Type(), lt) {
		v.errf("%s result type %s does not match operands %s", i.Opcode(), i.Type(), lt)
	}
}

func (v *verifier) verifyCallArgs(callee Value, args []Value, resultType Type) {
	ft := CalleeFunctionType(callee)
	if ft == nil {
		v.errf("call of non-function-pointer type %s", callee.Type())
		return
	}
	if !TypesEqual(resultType, ft.Ret) {
		v.errf("call result type %s does not match callee return %s", resultType, ft.Ret)
	}
	if ft.Variadic {
		if len(args) < len(ft.Params) {
			v.errf("call has %d args, variadic callee needs at least %d", len(args), len(ft.Params))
			return
		}
	} else if len(args) != len(ft.Params) {
		v.errf("call has %d args, callee takes %d", len(args), len(ft.Params))
		return
	}
	for i := range ft.Params {
		if !TypesEqual(args[i].Type(), ft.Params[i]) {
			v.errf("call argument %d has type %s, callee wants %s", i, args[i].Type(), ft.Params[i])
		}
	}
}

// castAllowed implements the cast rules: any first-class type can be cast
// to any other first-class type (bit conversions, truncations, extensions,
// and pointer reinterpretation are all spelled "cast").
func castAllowed(src, dst Type) bool {
	return IsFirstClass(src) && IsFirstClass(dst)
}

// verifyPhisMatchPreds checks each phi has exactly one entry per CFG
// predecessor.
func (v *verifier) verifyPhisMatchPreds(f *Function) {
	for _, b := range f.Blocks {
		preds := b.Preds()
		predSet := map[*BasicBlock]int{}
		for _, p := range preds {
			predSet[p]++
		}
		for _, phi := range b.Phis() {
			seen := map[*BasicBlock]int{}
			for n := 0; n < phi.NumIncoming(); n++ {
				_, blk := phi.Incoming(n)
				seen[blk]++
			}
			for p := range predSet {
				if seen[p] == 0 {
					v.errf("phi %%%s in block %%%s missing entry for predecessor %%%s", phi.Name(), b.Name(), p.Name())
				}
			}
			for s, n := range seen {
				if predSet[s] == 0 {
					v.errf("phi %%%s in block %%%s has entry for non-predecessor %%%s", phi.Name(), b.Name(), s.Name())
				} else if n > 1 {
					v.errf("phi %%%s in block %%%s has duplicate entries for %%%s", phi.Name(), b.Name(), s.Name())
				}
			}
		}
	}
}

// verifySSADominance checks every use is dominated by its definition.
func (v *verifier) verifySSADominance(f *Function) {
	dom := computeDominators(f)
	if dom == nil {
		return
	}
	dominates := func(a, b *BasicBlock) bool {
		for x := b; x != nil; x = dom[x] {
			if x == a {
				return true
			}
			if dom[x] == x {
				return x == a
			}
		}
		return false
	}
	idx := map[Instruction]int{}
	for _, b := range f.Blocks {
		for k, inst := range b.Instrs {
			idx[inst] = k
		}
	}
	for _, b := range f.Blocks {
		if _, reachable := dom[b]; !reachable {
			continue // SSA dominance is only meaningful in reachable code
		}
		for _, inst := range b.Instrs {
			if phi, ok := inst.(*PhiInst); ok {
				for n := 0; n < phi.NumIncoming(); n++ {
					val, pred := phi.Incoming(n)
					def, ok := val.(Instruction)
					if !ok {
						continue
					}
					// Value must dominate the end of the incoming block.
					db := def.Parent()
					if db == pred {
						continue
					}
					if !dominates(db, pred) {
						v.errf("phi %%%s incoming %%%s does not dominate predecessor %%%s",
							phi.Name(), val.Name(), pred.Name())
					}
				}
				continue
			}
			for i := 0; i < inst.NumOperands(); i++ {
				def, ok := inst.Operand(i).(Instruction)
				if !ok {
					continue
				}
				db := def.Parent()
				if db == b {
					if idx[def] >= idx[inst] {
						v.errf("use of %%%s in block %%%s before its definition", def.Name(), b.Name())
					}
				} else if !dominates(db, b) {
					v.errf("definition of %%%s (block %%%s) does not dominate use in block %%%s",
						def.Name(), db.Name(), b.Name())
				}
			}
		}
	}
}

// computeDominators returns the immediate-dominator map using the
// Cooper-Harvey-Kennedy iterative algorithm; the entry block maps to
// itself. Unreachable blocks are absent from the map (uses in unreachable
// code are not dominance-checked).
func computeDominators(f *Function) map[*BasicBlock]*BasicBlock {
	if len(f.Blocks) == 0 {
		return nil
	}
	entry := f.Blocks[0]
	// Reverse postorder.
	var order []*BasicBlock
	num := map[*BasicBlock]int{}
	visited := map[*BasicBlock]bool{}
	var dfs func(*BasicBlock)
	dfs = func(b *BasicBlock) {
		visited[b] = true
		for _, s := range b.Succs() {
			if !visited[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(entry)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		num[b] = i
	}

	idom := map[*BasicBlock]*BasicBlock{entry: entry}
	intersect := func(a, b *BasicBlock) *BasicBlock {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *BasicBlock
			for _, p := range b.Preds() {
				if idom[p] == nil {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}
