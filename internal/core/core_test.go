package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPrimitiveTypeProperties(t *testing.T) {
	cases := []struct {
		t      Type
		str    string
		signed bool
		width  int
		size   int
	}{
		{VoidType, "void", false, 0, 0},
		{BoolType, "bool", false, 1, 1},
		{SByteType, "sbyte", true, 8, 1},
		{UByteType, "ubyte", false, 8, 1},
		{ShortType, "short", true, 16, 2},
		{UShortType, "ushort", false, 16, 2},
		{IntType, "int", true, 32, 4},
		{UIntType, "uint", false, 32, 4},
		{LongType, "long", true, 64, 8},
		{ULongType, "ulong", false, 64, 8},
		{FloatType, "float", false, 32, 4},
		{DoubleType, "double", false, 64, 8},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if got := IsSigned(c.t); got != c.signed {
			t.Errorf("IsSigned(%s) = %v, want %v", c.str, got, c.signed)
		}
		if got := BitWidth(c.t); got != c.width {
			t.Errorf("BitWidth(%s) = %d, want %d", c.str, got, c.width)
		}
		if got := SizeOf(c.t); got != c.size {
			t.Errorf("SizeOf(%s) = %d, want %d", c.str, got, c.size)
		}
	}
}

func TestDerivedTypeStrings(t *testing.T) {
	pt := NewPointer(IntType)
	if pt.String() != "int*" {
		t.Errorf("pointer: %q", pt.String())
	}
	at := NewArray(SByteType, 10)
	if at.String() != "[10 x sbyte]" {
		t.Errorf("array: %q", at.String())
	}
	st := NewStruct(IntType, NewPointer(FloatType))
	if st.String() != "{ int, float* }" {
		t.Errorf("struct: %q", st.String())
	}
	ft := NewFunctionType(IntType, IntType, NewPointer(SByteType))
	if ft.String() != "int (int, sbyte*)" {
		t.Errorf("func: %q", ft.String())
	}
	vt := &FunctionType{Ret: VoidType, Params: []Type{NewPointer(SByteType)}, Variadic: true}
	if vt.String() != "void (sbyte*, ...)" {
		t.Errorf("variadic: %q", vt.String())
	}
}

func TestStructLayout(t *testing.T) {
	// { sbyte, int, sbyte, long } -> offsets 0, 4, 8, 16; size 24 (align 8).
	st := NewStruct(SByteType, IntType, SByteType, LongType)
	wantOff := []int{0, 4, 8, 16}
	for i, w := range wantOff {
		if got := FieldOffset(st, i); got != w {
			t.Errorf("FieldOffset(%d) = %d, want %d", i, got, w)
		}
	}
	if got := SizeOf(st); got != 24 {
		t.Errorf("SizeOf = %d, want 24", got)
	}
	if got := AlignOf(st); got != 8 {
		t.Errorf("AlignOf = %d, want 8", got)
	}
}

func TestTypesEqualStructural(t *testing.T) {
	a := NewPointer(NewArray(IntType, 4))
	b := NewPointer(NewArray(IntType, 4))
	if !TypesEqual(a, b) {
		t.Error("structurally equal pointer-to-array types compare unequal")
	}
	c := NewPointer(NewArray(IntType, 5))
	if TypesEqual(a, c) {
		t.Error("different array lengths compare equal")
	}
	// Named structs compare structurally (cross-module link unification).
	s1 := &StructType{Name: "pair", Fields: []Type{IntType, IntType}}
	s2 := &StructType{Name: "pair", Fields: []Type{IntType, IntType}}
	if !TypesEqual(s1, s2) {
		t.Error("structurally identical named structs compare unequal")
	}
	s3 := &StructType{Name: "pair", Fields: []Type{IntType, FloatType}}
	if TypesEqual(s1, s3) {
		t.Error("different bodies compare equal")
	}
	// Recursive types: two separate copies of %list = { int, %list* }.
	r1 := &StructType{Name: "list"}
	r1.Fields = []Type{IntType, NewPointer(r1)}
	r2 := &StructType{Name: "list"}
	r2.Fields = []Type{IntType, NewPointer(r2)}
	if !TypesEqual(r1, r2) {
		t.Error("isomorphic recursive types compare unequal")
	}
}

func TestRecursiveType(t *testing.T) {
	// %list = type { int, %list* }
	list := &StructType{Name: "list"}
	list.Fields = []Type{IntType, NewPointer(list)}
	if got := list.String(); got != "%list" {
		t.Errorf("recursive struct String() = %q", got)
	}
	if got := list.LiteralString(); got != "{ int, %list* }" {
		t.Errorf("LiteralString() = %q", got)
	}
	if SizeOf(list) != 16 {
		t.Errorf("SizeOf(list) = %d, want 16", SizeOf(list))
	}
}

func TestConstantIntSExt(t *testing.T) {
	c := NewInt(SByteType, -1)
	if c.Val != 0xFF {
		t.Errorf("stored bits = %#x, want 0xFF", c.Val)
	}
	if c.SExt() != -1 {
		t.Errorf("SExt = %d, want -1", c.SExt())
	}
	u := NewInt(UByteType, 255)
	if u.SExt() != 255 {
		t.Errorf("unsigned SExt = %d, want 255", u.SExt())
	}
	if got := c.String(); got != "-1" {
		t.Errorf("signed String = %q", got)
	}
	if got := u.String(); got != "255" {
		t.Errorf("unsigned String = %q", got)
	}
}

func TestConstantTruncationProperty(t *testing.T) {
	// Property: for any int64, an int-typed constant round-trips through
	// SExt, and a truncated type keeps only the low bits.
	f := func(v int64) bool {
		c := NewInt(IntType, v)
		return c.SExt() == int64(int32(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v int64) bool {
		c := NewInt(UShortType, v)
		return c.Val == uint64(uint16(v))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestStringConstant(t *testing.T) {
	s := NewString("hello")
	at := s.Type().(*ArrayType)
	if at.Len != 6 || at.Elem != SByteType {
		t.Fatalf("string type = %s", at)
	}
	back, ok := s.AsString()
	if !ok || back != "hello" {
		t.Fatalf("AsString = %q, %v", back, ok)
	}
	if got := s.String(); got != `c"hello\00"` {
		t.Errorf("String() = %q", got)
	}
}

func TestUseDefChains(t *testing.T) {
	a := NewInt(IntType, 1)
	b := NewInt(IntType, 2)
	add := NewBinary(OpAdd, a, b)
	if NumUses(a) != 1 || NumUses(b) != 1 {
		t.Fatalf("uses after create: a=%d b=%d", NumUses(a), NumUses(b))
	}
	c := NewInt(IntType, 3)
	add.SetOperand(0, c)
	if NumUses(a) != 0 {
		t.Errorf("old operand still has %d uses", NumUses(a))
	}
	if NumUses(c) != 1 {
		t.Errorf("new operand has %d uses, want 1", NumUses(c))
	}
	// ReplaceAllUses.
	mul := NewBinary(OpMul, add, add)
	if NumUses(add) != 2 {
		t.Fatalf("add uses = %d, want 2", NumUses(add))
	}
	repl := NewBinary(OpSub, c, b)
	ReplaceAllUses(add, repl)
	if NumUses(add) != 0 || NumUses(repl) != 2 {
		t.Errorf("after RAUW: add=%d repl=%d", NumUses(add), NumUses(repl))
	}
	if mul.LHS() != Value(repl) || mul.RHS() != Value(repl) {
		t.Error("mul operands not rewritten")
	}
}

func TestGEPResultType(t *testing.T) {
	// %xty = { int, float, [4 x short] }, X: %xty*
	xty := NewStruct(IntType, FloatType, NewArray(ShortType, 4))
	base := NewGlobal("X", NewArray(xty, 10), nil)

	// getelementptr [10 x %xty]* %X, long %i, ubyte 2, long %j -> short*
	rt, err := GEPResultType(base.Type(), []Value{
		NewInt(LongType, 0), NewInt(LongType, 3), NewInt(UByteType, 2), NewInt(LongType, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.String() != "short*" {
		t.Errorf("GEP result = %s, want short*", rt)
	}
	// Out-of-range struct index.
	_, err = GEPResultType(NewPointer(xty), []Value{NewInt(LongType, 0), NewInt(UByteType, 9)})
	if err == nil {
		t.Error("out-of-range field index not rejected")
	}
	// Non-constant struct index.
	arg := &Argument{}
	arg.typ = LongType
	_, err = GEPResultType(NewPointer(xty), []Value{NewInt(LongType, 0), arg})
	if err == nil {
		t.Error("non-constant struct index not rejected")
	}
}

// buildTestFunction creates:
//
//	int %sum(int %n) {
//	entry:   br label %loop
//	loop:    %i = phi int [0,entry],[%i2,loop]
//	         %s = phi int [0,entry],[%s2,loop]
//	         %s2 = add int %s, %i
//	         %i2 = add int %i, 1
//	         %c = setlt int %i2, %n
//	         br bool %c, label %loop, label %exit
//	exit:    ret int %s2
//	}
func buildTestFunction() (*Module, *Function) {
	m := NewModule("test")
	f := NewFunction("sum", NewFunctionType(IntType, IntType))
	f.Args[0].SetName("n")
	m.AddFunc(f)

	entry := NewBlock("entry")
	loop := NewBlock("loop")
	exit := NewBlock("exit")
	f.AddBlock(entry)
	f.AddBlock(loop)
	f.AddBlock(exit)

	b := NewBuilder()
	b.SetInsertPoint(entry)
	b.CreateBr(loop)

	b.SetInsertPoint(loop)
	i := b.CreatePhi(IntType, "i")
	s := b.CreatePhi(IntType, "s")
	s2 := b.CreateAdd(s, i, "s2")
	i2 := b.CreateAdd(i, NewInt(IntType, 1), "i2")
	c := b.CreateSetLT(i2, f.Args[0], "c")
	b.CreateCondBr(c, loop, exit)

	i.AddIncoming(NewInt(IntType, 0), entry)
	i.AddIncoming(i2, loop)
	s.AddIncoming(NewInt(IntType, 0), entry)
	s.AddIncoming(s2, loop)

	b.SetInsertPoint(exit)
	b.CreateRet(s2)
	return m, f
}

func TestBuilderAndVerifier(t *testing.T) {
	m, f := buildTestFunction()
	if err := Verify(m); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
	if f.NumInstructions() != 8 {
		t.Errorf("instruction count = %d, want 8", f.NumInstructions())
	}
}

func TestCFGEdges(t *testing.T) {
	_, f := buildTestFunction()
	entry, loop, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	if s := entry.Succs(); len(s) != 1 || s[0] != loop {
		t.Errorf("entry succs = %v", s)
	}
	if s := loop.Succs(); len(s) != 2 || s[0] != loop || s[1] != exit {
		t.Errorf("loop succs wrong")
	}
	preds := loop.Preds()
	if len(preds) != 2 {
		t.Errorf("loop preds = %d, want 2", len(preds))
	}
	if p := exit.Preds(); len(p) != 1 || p[0] != loop {
		t.Errorf("exit preds wrong")
	}
	if len(exit.Succs()) != 0 {
		t.Error("ret should have no successors")
	}
}

func TestVerifierCatchesTypeMismatch(t *testing.T) {
	m := NewModule("bad")
	f := NewFunction("f", NewFunctionType(IntType))
	m.AddFunc(f)
	bb := NewBlock("entry")
	f.AddBlock(bb)
	bld := NewBuilder()
	bld.SetInsertPoint(bb)
	// add int, long operands differ.
	bad := NewBinary(OpAdd, NewInt(IntType, 1), NewInt(LongType, 2))
	bb.Append(bad)
	bld.CreateRet(bad)
	err := Verify(m)
	if err == nil {
		t.Fatal("type mismatch not caught")
	}
	if !strings.Contains(err.Error(), "operand types differ") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVerifierCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := NewFunction("f", NewFunctionType(VoidType))
	m.AddFunc(f)
	bb := NewBlock("entry")
	f.AddBlock(bb)
	bb.Append(NewBinary(OpAdd, NewInt(IntType, 1), NewInt(IntType, 2)))
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("missing terminator not caught: %v", err)
	}
}

func TestVerifierCatchesDominanceViolation(t *testing.T) {
	m := NewModule("bad")
	f := NewFunction("f", NewFunctionType(IntType, BoolType))
	m.AddFunc(f)
	entry := NewBlock("entry")
	thenB := NewBlock("then")
	join := NewBlock("join")
	f.AddBlock(entry)
	f.AddBlock(thenB)
	f.AddBlock(join)
	b := NewBuilder()
	b.SetInsertPoint(entry)
	b.CreateCondBr(f.Args[0], thenB, join)
	b.SetInsertPoint(thenB)
	x := b.CreateAdd(NewInt(IntType, 1), NewInt(IntType, 2), "x")
	b.CreateBr(join)
	b.SetInsertPoint(join)
	b.CreateRet(x) // x does not dominate join
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "dominate") {
		t.Fatalf("dominance violation not caught: %v", err)
	}
}

func TestVerifierCatchesBadPhi(t *testing.T) {
	_, f := buildTestFunction()
	loop := f.Blocks[1]
	phi := loop.Phis()[0]
	phi.RemoveIncoming(0) // now missing the entry edge
	err := VerifyFunction(f)
	if err == nil || !strings.Contains(err.Error(), "missing entry") {
		t.Fatalf("bad phi not caught: %v", err)
	}
}

func TestPrinterOutput(t *testing.T) {
	m, _ := buildTestFunction()
	out := m.String()
	for _, want := range []string{
		"int %sum(int %n) {",
		"%i = phi int [ 0, %entry ], [ %i2, %loop ]",
		"%s2 = add int %s, %i",
		"%c = setlt int %i2, %n",
		"br bool %c, label %loop, label %exit",
		"ret int %s2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q\n%s", want, out)
		}
	}
}

func TestPhiEditing(t *testing.T) {
	phi := NewPhi(IntType)
	b1, b2, b3 := NewBlock("a"), NewBlock("b"), NewBlock("c")
	v1, v2, v3 := NewInt(IntType, 1), NewInt(IntType, 2), NewInt(IntType, 3)
	phi.AddIncoming(v1, b1)
	phi.AddIncoming(v2, b2)
	phi.AddIncoming(v3, b3)
	if phi.NumIncoming() != 3 {
		t.Fatal("wrong incoming count")
	}
	if got := phi.IncomingFor(b2); got != Value(v2) {
		t.Error("IncomingFor wrong")
	}
	phi.RemoveIncoming(1)
	if phi.NumIncoming() != 2 {
		t.Fatal("remove failed")
	}
	if v, blk := phi.Incoming(1); v != Value(v3) || blk != b3 {
		t.Error("incoming pairs shifted wrong")
	}
	if NumUses(v2) != 0 {
		t.Error("removed value still used")
	}
	if NumUses(b3) != 1 {
		t.Errorf("b3 uses = %d, want 1", NumUses(b3))
	}
}

func TestSwitchEditing(t *testing.T) {
	def, c1, c2 := NewBlock("def"), NewBlock("c1"), NewBlock("c2")
	sw := NewSwitch(NewInt(IntType, 0), def)
	sw.AddCase(NewInt(IntType, 1), c1)
	sw.AddCase(NewInt(IntType, 2), c2)
	if sw.NumCases() != 2 {
		t.Fatal("case count")
	}
	sw.RemoveCase(0)
	if sw.NumCases() != 1 {
		t.Fatal("remove case")
	}
	v, d := sw.Case(0)
	if v.SExt() != 2 || d != c2 {
		t.Error("wrong remaining case")
	}
}

func TestFunctionAddressTaken(t *testing.T) {
	m := NewModule("t")
	callee := NewFunction("callee", NewFunctionType(VoidType))
	m.AddFunc(callee)
	caller := NewFunction("caller", NewFunctionType(VoidType))
	m.AddFunc(caller)
	bb := NewBlock("entry")
	caller.AddBlock(bb)
	b := NewBuilder()
	b.SetInsertPoint(bb)
	call := b.CreateCall(callee, nil, "")
	b.CreateRet(nil)
	if callee.HasAddressTaken() {
		t.Error("direct call should not count as address-taken")
	}
	if len(callee.Callers()) != 1 {
		t.Error("caller not found")
	}
	_ = call
	// Storing the function pointer takes its address.
	g := NewGlobal("fp", callee.Type(), nil)
	m.AddGlobal(g)
	bb.InsertAt(1, NewStore(callee, g))
	if !callee.HasAddressTaken() {
		t.Error("stored function pointer should be address-taken")
	}
}

func TestModuleSymbolTables(t *testing.T) {
	m := NewModule("t")
	f := NewFunction("f", NewFunctionType(VoidType))
	m.AddFunc(f)
	if m.Func("f") != f {
		t.Error("function lookup failed")
	}
	g := NewGlobal("g", IntType, NewInt(IntType, 7))
	m.AddGlobal(g)
	if m.Global("g") != g {
		t.Error("global lookup failed")
	}
	if got := m.UniqueSymbol("f"); got != "f.1" {
		t.Errorf("UniqueSymbol = %q", got)
	}
	m.RenameFunc(f, "f2")
	if m.Func("f2") != f || m.Func("f") != nil {
		t.Error("rename broke lookup")
	}
	m.RemoveFunc(f)
	if m.Func("f2") != nil || len(m.Funcs) != 0 {
		t.Error("remove broke lookup")
	}
}

func TestEraseInstruction(t *testing.T) {
	_, f := buildTestFunction()
	loop := f.Blocks[1]
	// Erase %c's defining compare after replacing its use.
	var cmp Instruction
	for _, inst := range loop.Instrs {
		if inst.Name() == "c" {
			cmp = inst
		}
	}
	ReplaceAllUses(cmp, NewBool(true))
	loop.Erase(cmp)
	if err := VerifyFunction(f); err != nil {
		t.Fatalf("function invalid after erase: %v", err)
	}
	if loop.IndexOf(cmp) != -1 {
		t.Error("instruction still in block")
	}
}

func TestVerifierRejectsEntryPredecessors(t *testing.T) {
	m := NewModule("bad")
	f := NewFunction("f", NewFunctionType(VoidType))
	m.AddFunc(f)
	entry := NewBlock("entry")
	f.AddBlock(entry)
	b := NewBuilder()
	b.SetInsertPoint(entry)
	b.CreateBr(entry) // loop back to entry
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "entry block") {
		t.Fatalf("entry predecessor not rejected: %v", err)
	}
}

func TestValidateTypeGraph(t *testing.T) {
	// Legal: recursion through a named struct behind a pointer.
	list := &StructType{Name: "list"}
	list.Fields = []Type{IntType, NewPointer(list)}
	if err := ValidateTypeGraph(list); err != nil {
		t.Errorf("legal recursive type rejected: %v", err)
	}
	// Illegal: struct containing itself by value.
	inf := &StructType{Name: "inf"}
	inf.Fields = []Type{IntType, inf}
	if err := ValidateTypeGraph(inf); err == nil {
		t.Error("infinite-size struct accepted")
	}
	// Illegal: self-referential pointer with no named struct.
	p := &PointerType{}
	p.Elem = p
	if err := ValidateTypeGraph(p); err == nil {
		t.Error("pointer self-cycle accepted")
	}
	// Illegal: function type returning itself.
	f := &FunctionType{}
	f.Ret = f
	if err := ValidateTypeGraph(f); err == nil {
		t.Error("self-referential function type accepted")
	}
	// Illegal: array containing its own struct by value through nesting.
	s := &StructType{Name: "s"}
	s.Fields = []Type{NewArray(s, 2)}
	if err := ValidateTypeGraph(s); err == nil {
		t.Error("array-embedded self-containment accepted")
	}
}
