package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the core data structures:
// arithmetic evaluation, type layout, constant folding vs. direct
// evaluation, and use-list bookkeeping under random edits.

var intTypes = []Type{SByteType, UByteType, ShortType, UShortType, IntType, UIntType, LongType, ULongType}

// randIntType picks an integer type from a quick-generated index.
func randIntType(sel uint8) Type { return intTypes[int(sel)%len(intTypes)] }

func TestPropIntArithmeticMatchesGo(t *testing.T) {
	// For 32-bit signed int, EvalIntBinary must agree with Go's int32
	// arithmetic for every operator.
	f := func(a, b int32) bool {
		ops := map[Opcode]func(x, y int32) int32{
			OpAdd: func(x, y int32) int32 { return x + y },
			OpSub: func(x, y int32) int32 { return x - y },
			OpMul: func(x, y int32) int32 { return x * y },
			OpAnd: func(x, y int32) int32 { return x & y },
			OpOr:  func(x, y int32) int32 { return x | y },
			OpXor: func(x, y int32) int32 { return x ^ y },
		}
		for op, ref := range ops {
			got, ok := EvalIntBinary(op, IntType, uint64(uint32(a)), uint64(uint32(b)))
			if !ok || uint32(got) != uint32(ref(a, b)) {
				return false
			}
		}
		if b != 0 {
			got, ok := EvalIntBinary(OpDiv, IntType, uint64(uint32(a)), uint64(uint32(b)))
			if a == math.MinInt32 && b == -1 {
				// Go would panic; we wrap. Just require a result.
				if !ok {
					return false
				}
			} else if !ok || int32(uint32(got)) != a/b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropUnsignedDivision(t *testing.T) {
	f := func(a, b uint32) bool {
		if b == 0 {
			_, ok := EvalIntBinary(OpDiv, UIntType, uint64(a), uint64(b))
			return !ok // division by zero must be rejected, not folded
		}
		got, ok := EvalIntBinary(OpDiv, UIntType, uint64(a), uint64(b))
		return ok && uint32(got) == a/b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareTotalOrder(t *testing.T) {
	// For any type and values: exactly one of <, ==, > holds; <= is
	// (< or ==); != is !(==).
	f := func(sel uint8, a, b uint64) bool {
		ty := randIntType(sel)
		lt, _ := EvalIntCompare(OpSetLT, ty, a, b)
		gt, _ := EvalIntCompare(OpSetGT, ty, a, b)
		eq, _ := EvalIntCompare(OpSetEQ, ty, a, b)
		le, _ := EvalIntCompare(OpSetLE, ty, a, b)
		ne, _ := EvalIntCompare(OpSetNE, ty, a, b)
		count := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				count++
			}
		}
		return count == 1 && le == (lt || eq) && ne == !eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropCastRoundTripWidening(t *testing.T) {
	// Widening then narrowing an integer returns the original truncated
	// value; widening is value-preserving for the source width.
	f := func(sel uint8, v uint64) bool {
		from := randIntType(sel)
		bits := BitWidth(from)
		v = truncToWidth(v, bits)
		wide := EvalIntCast(from, LongType, v)
		back := EvalIntCast(LongType, from, wide)
		return back == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropFoldBinaryAgreesWithEval(t *testing.T) {
	// The constant folder and the raw evaluator must agree (they feed the
	// optimizer and the interpreter respectively).
	ops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSetEQ, OpSetLT, OpSetGE}
	f := func(sel uint8, opSel uint8, a, b int64) bool {
		ty := randIntType(sel)
		op := ops[int(opSel)%len(ops)]
		ca, cb := NewInt(ty, a), NewInt(ty, b)
		folded := FoldBinary(op, ca, cb)
		if folded == nil {
			return false
		}
		if IsComparisonOp(op) {
			want, _ := EvalIntCompare(op, ty, ca.Val, cb.Val)
			return folded.(*ConstantBool).Val == want
		}
		want, _ := EvalIntBinary(op, ty, ca.Val, cb.Val)
		return folded.(*ConstantInt).Val == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropStructLayoutInvariants(t *testing.T) {
	// For random field lists: offsets are non-decreasing, each offset is
	// aligned for its field, fields do not overlap, and the struct size
	// is a multiple of its alignment and contains every field.
	f := func(sels []uint8) bool {
		if len(sels) == 0 || len(sels) > 12 {
			return true
		}
		fieldPool := []Type{SByteType, ShortType, IntType, LongType, DoubleType,
			NewPointer(IntType), NewArray(SByteType, 3), NewStruct(IntType, SByteType)}
		var fields []Type
		for _, s := range sels {
			fields = append(fields, fieldPool[int(s)%len(fieldPool)])
		}
		st := NewStruct(fields...)
		size, align := SizeOf(st), AlignOf(st)
		if size%align != 0 {
			return false
		}
		prevEnd := 0
		for i, ft := range fields {
			off := FieldOffset(st, i)
			if off < prevEnd {
				return false // overlap
			}
			if off%AlignOf(ft) != 0 {
				return false // misaligned
			}
			prevEnd = off + SizeOf(ft)
		}
		return prevEnd <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropUseListsConsistentUnderRandomEdits(t *testing.T) {
	// Random sequences of SetOperand/RAUW edits must keep the use-def
	// graph consistent: every operand edge has a matching use edge and
	// vice versa.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// A pool of constants and instructions.
		pool := []Value{NewInt(IntType, 1), NewInt(IntType, 2), NewInt(IntType, 3)}
		var instrs []*BinaryInst
		for i := 0; i < 8; i++ {
			a := pool[r.Intn(len(pool))]
			bb := pool[r.Intn(len(pool))]
			in := NewBinary(OpAdd, a, bb)
			instrs = append(instrs, in)
			pool = append(pool, in)
		}
		for step := 0; step < 30; step++ {
			in := instrs[r.Intn(len(instrs))]
			v := pool[r.Intn(len(pool))]
			// Avoid self-cycles for sanity.
			if v == Value(in) {
				continue
			}
			switch r.Intn(3) {
			case 0:
				in.SetOperand(r.Intn(2), v)
			case 1:
				old := pool[r.Intn(len(pool))]
				if old != v {
					ReplaceAllUses(old, v)
				}
			default:
				// no-op step
			}
		}
		// Check consistency both directions.
		for _, in := range instrs {
			for idx, op := range in.Operands() {
				if op == nil {
					continue
				}
				found := false
				for _, u := range op.Uses() {
					if u.User == User(in) && u.Index == idx {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		for _, v := range pool {
			for _, u := range v.Uses() {
				if u.Index >= u.User.NumOperands() || u.User.Operand(u.Index) != v {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropFloatCastRoundTrip(t *testing.T) {
	// int -> double -> int is exact for 32-bit values (double has 53
	// mantissa bits).
	f := func(v int32) bool {
		d := EvalIntToFloat(IntType, DoubleType, uint64(uint32(v)))
		back := EvalFloatToInt(IntType, d)
		return int32(uint32(back)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropShiftBounds(t *testing.T) {
	// Shifts by >= width yield 0 (logical) and never panic; arithmetic
	// right shift of negatives saturates to -1.
	f := func(v uint32, amt uint8) bool {
		got, ok := EvalIntBinary(OpShl, UIntType, uint64(v), uint64(amt))
		if !ok {
			return false
		}
		if amt >= 32 && got != 0 {
			return false
		}
		gotR, ok := EvalIntBinary(OpShr, IntType, uint64(0xFFFFFFFF), uint64(amt))
		if !ok {
			return false
		}
		// -1 >> anything (arithmetic) is -1.
		return uint32(gotR) == 0xFFFFFFFF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
