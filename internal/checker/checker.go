// Package checker is a flow-sensitive, interprocedural static checker over
// the IR. It predicts the memory faults the execution sandbox can only
// observe — use-after-free, double-free, free of non-heap memory, loads of
// uninitialized stack slots, null dereferences — plus IR-lint findings
// (unreachable code, dead stores), and reports them as positioned
// diagnostics (internal/diag) at the same fn/block/inst coordinates the
// interpreter's Traps use.
//
// Severity policy: an Error is emitted only for facts proven on every
// execution reaching the position (singleton abstract states); everything
// "possible" is a Warning. This is the zero-false-error contract: a clean
// program never produces an error-level diagnostic.
package checker

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/obs"
)

// Diagnostic kinds emitted by the checker.
const (
	KindUseAfterFree = "use-after-free"
	KindDoubleFree   = "double-free"
	KindFreeOfStack  = "free-of-stack"
	KindFreeOfGlobal = "free-of-global"
	KindUninitLoad   = "uninitialized-load"
	KindNullDeref    = "null-deref"
	KindUnreachable  = "unreachable-code"
	KindDeadStore    = "dead-store"
)

// Cache keys under which the checker registers its module-level results in
// the shared analysis.Manager. The preservation bits are deliberately not
// part of PreserveAll, so any transforming pass invalidates them unless it
// names them explicitly.
var (
	// SummaryKey caches the bottom-up function-summary map. The points-to
	// result the checker refines free-target classification with is cached
	// under the shared dsa.Key, so the checker and the optimizer passes
	// reuse one computation per module.
	SummaryKey = analysis.NewModuleKey("checker-summaries")
)

// Abstract state of one tracked object, as a *set* of possible concrete
// states. Definite claims require a singleton set.
type objState uint8

const (
	stUninit objState = 1 << iota // allocated, never stored to
	stInit                        // allocated and possibly written
	stFreed                       // released
)

// Stats describes one checker run.
type Stats struct {
	Functions   int            `json:"functions"`    // bodies analyzed
	Diagnostics int            `json:"diagnostics"`  // total emitted
	Errors      int            `json:"errors"`       // error-severity subset
	ByKind      map[string]int `json:"by_kind"`      // tally per kind
	CacheHits   uint64         `json:"cache_hits"`   // analysis-manager hits during the run
	CacheMisses uint64         `json:"cache_misses"` // analysis-manager misses during the run
	Duration    time.Duration  `json:"duration_ns"`  // wall time of Check
}

// Report is the outcome of checking one module.
type Report struct {
	Diags []diag.Diagnostic
	Stats Stats
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []diag.Diagnostic { return diag.Filter(r.Diags, diag.Error) }

// Checker runs the analysis. The zero value is usable; AM and Parallelism
// are optional tuning knobs.
type Checker struct {
	// AM, when set, caches summaries/points-to/dominator trees across runs
	// with the pass manager's invalidation discipline.
	AM *analysis.Manager
	// Parallelism caps the per-function diagnostic workers (0 = GOMAXPROCS).
	// Output is deterministic at any setting: results are assembled in
	// module function order.
	Parallelism int
	// MinSeverity drops diagnostics below the given severity.
	MinSeverity diag.Severity
	// NoLint disables the warning-only lint kinds (unreachable-code,
	// dead-store), keeping only memory-safety findings.
	NoLint bool
	// Remarks, when set, receives one analysis remark per diagnostic, so a
	// -remarks run interleaves the checker's findings with the optimizer's
	// decisions in a single positioned stream.
	Remarks *obs.Remarks
}

// New returns a checker with default settings.
func New() *Checker { return &Checker{} }

// Check analyzes m and returns the report. Panics from malformed IR are
// recovered into an error (the same contract as the hardened decoder):
// hostile modules must not take the host down.
func (c *Checker) Check(m *core.Module) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = nil
			err = fmt.Errorf("checker: internal panic: %v", r)
		}
	}()
	start := time.Now()
	var h0, m0 uint64
	if c.AM != nil {
		s := c.AM.Stats()
		h0, m0 = s.Hits, s.Misses
	}

	cg := c.callGraph(m)
	mr := c.modRef(m, cg)
	sums := c.summaries(m, cg, mr)
	pt := c.pointsTo(m)

	// Per-function diagnostic runs are independent given the read-only
	// summaries; farm them out and reassemble in module order so the
	// output is identical at any worker count.
	funcs := make([]*core.Function, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			funcs = append(funcs, f)
		}
	}
	perFn := make([][]diag.Diagnostic, len(funcs))
	workers := c.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var workerErr error
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if workerErr == nil {
								workerErr = fmt.Errorf("checker: panic analyzing %%%s: %v", funcs[i].Name(), r)
							}
							mu.Unlock()
						}
					}()
					perFn[i] = c.checkFunction(funcs[i], sums, mr, pt)
				}(i)
			}
		}()
	}
	for i := range funcs {
		next <- i
	}
	close(next)
	wg.Wait()
	if workerErr != nil {
		return nil, workerErr
	}

	rep = &Report{}
	for _, ds := range perFn {
		for _, d := range ds {
			if d.Sev >= c.MinSeverity {
				rep.Diags = append(rep.Diags, d)
			}
		}
	}
	rep.Stats = Stats{
		Functions:   len(funcs),
		Diagnostics: len(rep.Diags),
		Errors:      diag.CountErrors(rep.Diags),
		ByKind:      diag.CountByKind(rep.Diags),
		Duration:    time.Since(start),
	}
	if c.AM != nil {
		s := c.AM.Stats()
		rep.Stats.CacheHits = s.Hits - h0
		rep.Stats.CacheMisses = s.Misses - m0
	}
	if c.Remarks.Enabled() {
		// Diagnostics are already in deterministic module order; replaying
		// them as analysis remarks keeps the remark stream worker-count-
		// independent too.
		c.Remarks.BeginPass()
		for _, d := range rep.Diags {
			c.Remarks.Analysisf("check", d.Pos, "%s: %s", d.Kind, d.Msg)
		}
	}
	return rep, nil
}

func (c *Checker) callGraph(m *core.Module) *analysis.CallGraph {
	if c.AM != nil {
		return c.AM.CallGraph(m)
	}
	return analysis.NewCallGraph(m)
}

func (c *Checker) modRef(m *core.Module, cg *analysis.CallGraph) map[*core.Function]*analysis.ModRefInfo {
	if c.AM != nil {
		return c.AM.ModRef(m)
	}
	return analysis.ModRef(m, cg)
}

func (c *Checker) summaries(m *core.Module, cg *analysis.CallGraph, mr map[*core.Function]*analysis.ModRefInfo) map[*core.Function]*funcSummary {
	if c.AM != nil {
		v := c.AM.ModuleExt(SummaryKey, m, func(m *core.Module) interface{} {
			return c.computeSummaries(m, cg, mr)
		})
		return v.(map[*core.Function]*funcSummary)
	}
	return c.computeSummaries(m, cg, mr)
}

func (c *Checker) pointsTo(m *core.Module) *dsa.Result {
	return dsa.Of(c.AM, m)
}

// domTree fetches f's dominator tree, via the manager when available.
func (c *Checker) domTree(f *core.Function) *analysis.DomTree {
	if c.AM != nil {
		return c.AM.DomTree(f)
	}
	return analysis.NewDomTree(f)
}

// fnCtx carries one function's analysis state.
type fnCtx struct {
	c    *Checker
	f    *core.Function
	sums map[*core.Function]*funcSummary
	mr   map[*core.Function]*analysis.ModRefInfo
	pt   *dsa.Result

	reach  map[*core.BasicBlock]bool
	sites  []*site
	siteOf map[core.Value]int
	org    map[core.Value]*originSet
	in     map[*core.BasicBlock][]objState
	guards map[core.Value][]*core.BasicBlock
	dt     *analysis.DomTree

	// Summary collection flags, set during transfer.
	argMayFree []bool
	argStored  []bool
	mayFreeAny bool

	emit func(inst core.Instruction, d diag.Diagnostic) // nil during fixpoint/summary runs
}

func (c *Checker) newFnCtx(f *core.Function, sums map[*core.Function]*funcSummary, mr map[*core.Function]*analysis.ModRefInfo) *fnCtx {
	return &fnCtx{
		c:          c,
		f:          f,
		sums:       sums,
		mr:         mr,
		reach:      analysis.ReachableBlocks(f),
		argMayFree: make([]bool, len(f.Args)),
		argStored:  make([]bool, len(f.Args)),
	}
}

// analyze builds sites, origins, escapes, and runs the forward fixpoint.
func (fc *fnCtx) analyze() {
	fc.collectSites()
	fc.computeOrigins()
	fc.computeEscapes()
	fc.runFixpoint()
}

// pos renders an instruction's diagnostic position, matching interp.Trap:
// the function name, the block label, and core.InstDebugString.
func (fc *fnCtx) pos(inst core.Instruction) diag.Pos {
	return diag.Pos{
		Fn:    fc.f.Name(),
		Block: inst.Parent().Name(),
		Inst:  core.InstDebugString(inst),
	}
}

func (fc *fnCtx) report(inst core.Instruction, kind string, sev diag.Severity, format string, args ...interface{}) {
	if fc.emit == nil {
		return
	}
	fc.emit(inst, diag.New(kind, sev, fc.pos(inst), format, args...))
}

// entryState is the dataflow value at function entry: argument objects are
// live caller memory (initialized as far as we can claim), everything else
// not yet allocated.
func (fc *fnCtx) entryState() []objState {
	st := make([]objState, len(fc.sites))
	for _, s := range fc.sites {
		if s.kind == siteArg {
			st[s.idx] = stInit
		}
	}
	return st
}

func cloneState(s []objState) []objState {
	out := make([]objState, len(s))
	copy(out, s)
	return out
}

// joinInto ORs src into dst; reports change.
func joinInto(dst, src []objState) bool {
	changed := false
	for i, v := range src {
		if dst[i]|v != dst[i] {
			dst[i] |= v
			changed = true
		}
	}
	return changed
}

// runFixpoint iterates the forward transfer to a fixpoint over reachable
// blocks. The lattice is tiny (3 bits per site), so convergence is fast.
func (fc *fnCtx) runFixpoint() {
	fc.in = map[*core.BasicBlock][]objState{}
	entry := fc.f.Entry()
	if entry == nil {
		return
	}
	fc.in[entry] = fc.entryState()
	for changed := true; changed; {
		changed = false
		for _, b := range fc.f.Blocks {
			if !fc.reach[b] {
				continue
			}
			st, ok := fc.in[b]
			if !ok {
				continue
			}
			cur := cloneState(st)
			for _, inst := range b.Instrs {
				fc.transfer(inst, cur)
			}
			for _, succ := range b.Succs() {
				if dst, ok := fc.in[succ]; ok {
					if joinInto(dst, cur) {
						changed = true
					}
				} else {
					fc.in[succ] = cloneState(cur)
					changed = true
				}
			}
		}
	}
}

// stateAtExit replays a block's transfer from its fixpoint entry state.
func (fc *fnCtx) stateAtExit(b *core.BasicBlock) []objState {
	st, ok := fc.in[b]
	if !ok {
		return make([]objState, len(fc.sites))
	}
	cur := cloneState(st)
	for _, inst := range b.Instrs {
		fc.transfer(inst, cur)
	}
	return cur
}

// transfer applies one instruction to the abstract state, emitting
// diagnostics when fc.emit is set.
func (fc *fnCtx) transfer(inst core.Instruction, st []objState) {
	switch x := inst.(type) {
	case *core.MallocInst:
		// Strong update: the site abstracts its most recent allocation.
		s := fc.siteOf[inst]
		st[s] = stUninit
		if fc.sites[s].escaped {
			st[s] |= stInit
		}
	case *core.AllocaInst:
		s := fc.siteOf[inst]
		st[s] = stUninit
		if fc.sites[s].escaped {
			st[s] |= stInit
		}
	case *core.LoadInst:
		fc.checkDeref(inst, x.Ptr(), st, true)
	case *core.StoreInst:
		fc.checkDeref(inst, x.Ptr(), st, false)
		o := fc.resolve(x.Ptr())
		if o.singleton() {
			s := o.sites[0]
			st[s] = (st[s] &^ stUninit) | stInit
			if fc.sites[s].kind == siteArg {
				fc.argStored[fc.sites[s].argIndex] = true
			}
		} else {
			for _, s := range o.sites {
				st[s] |= stInit
				if fc.sites[s].kind == siteArg {
					fc.argStored[fc.sites[s].argIndex] = true
				}
			}
		}
	case *core.FreeInst:
		fc.transferFree(x, st)
	case *core.CallInst:
		fc.transferCall(inst, x.Callee(), x.Args(), st)
	case *core.InvokeInst:
		fc.transferCall(inst, x.Callee(), x.Args(), st)
	}
}

// markFreed adds the freed possibility to a site, recording arg summaries.
func (fc *fnCtx) markFreed(s int, st []objState, strong bool) {
	if strong {
		st[s] = stFreed
	} else {
		st[s] |= stFreed
	}
	if fc.sites[s].kind == siteArg {
		fc.argMayFree[fc.sites[s].argIndex] = true
	}
}

// checkDeref reports null/UAF/uninit findings for a load or store address.
func (fc *fnCtx) checkDeref(inst core.Instruction, ptr core.Value, st []objState, isLoad bool) {
	o := fc.resolve(ptr)
	what := "store"
	if isLoad {
		what = "load"
	}
	if o.null && !fc.nullGuarded(ptr, inst.Parent()) {
		if len(o.sites) == 0 && !o.global && !o.unknown {
			fc.report(inst, KindNullDeref, diag.Error, "%s through pointer that is null on every path", what)
		} else {
			fc.report(inst, KindNullDeref, diag.Warning, "%s through possibly-null pointer", what)
		}
	}
	// Definite claims need the whole origin set to agree: every possible
	// target proven faulted, with no null/global/unknown escape hatch.
	// May-claims need a singleton origin — warning about an object the
	// pointer merely *might* be would drown real findings in loop code.
	pure := len(o.sites) > 0 && !o.null && !o.global && !o.unknown
	if pure && allStates(st, o.sites, func(s objState) bool { return s == stFreed }) {
		fc.report(inst, KindUseAfterFree, diag.Error, "%s of %s memory %s after it is freed on every path", what, fc.sites[o.sites[0]].kind, fc.sites[o.sites[0]].name)
	} else if o.singleton() && st[o.sites[0]]&stFreed != 0 {
		fc.report(inst, KindUseAfterFree, diag.Warning, "%s of %s memory %s that may already be freed", what, fc.sites[o.sites[0]].kind, fc.sites[o.sites[0]].name)
	}
	if isLoad && pure &&
		allSites(fc, o.sites, func(s *site) bool { return s.kind == siteAlloca }) &&
		allStates(st, o.sites, func(s objState) bool { return s == stUninit }) {
		fc.report(inst, KindUninitLoad, diag.Error, "load of alloca %s before any store reaches it", fc.sites[o.sites[0]].name)
	}
}

// allStates reports whether pred holds for the state of every listed site.
func allStates(st []objState, sites []int, pred func(objState) bool) bool {
	for _, s := range sites {
		if !pred(st[s]) {
			return false
		}
	}
	return true
}

// allSites reports whether pred holds for every listed site.
func allSites(fc *fnCtx, sites []int, pred func(*site) bool) bool {
	for _, s := range sites {
		if !pred(fc.sites[s]) {
			return false
		}
	}
	return true
}

// transferFree checks and applies a free instruction.
func (fc *fnCtx) transferFree(x *core.FreeInst, st []objState) {
	fc.mayFreeAny = true
	o := fc.resolve(x.Ptr())
	// free(null) is defined as a no-op by the runtime; stay silent.
	if o.null && len(o.sites) == 0 && !o.global && !o.unknown {
		return
	}
	if o.global {
		if len(o.sites) == 0 && !o.unknown && !o.null {
			fc.report(x, KindFreeOfGlobal, diag.Error, "free of global %s", o.gname)
		} else {
			fc.report(x, KindFreeOfGlobal, diag.Warning, "free may target global %s", o.gname)
		}
	}
	pure := len(o.sites) > 0 && !o.null && !o.global && !o.unknown
	for _, s := range o.sites {
		target := fc.sites[s]
		if target.kind == siteAlloca {
			if pure && allSites(fc, o.sites, func(s *site) bool { return s.kind == siteAlloca }) {
				fc.report(x, KindFreeOfStack, diag.Error, "free of stack memory %s (alloca)", target.name)
			} else {
				fc.report(x, KindFreeOfStack, diag.Warning, "free may target stack memory %s (alloca)", target.name)
			}
			break
		}
	}
	if pure && allStates(st, o.sites, func(s objState) bool { return s == stFreed }) {
		fc.report(x, KindDoubleFree, diag.Error, "double free of %s: already freed on every path", fc.sites[o.sites[0]].name)
	} else if o.singleton() && st[o.sites[0]]&stFreed != 0 {
		fc.report(x, KindDoubleFree, diag.Warning, "possible double free of %s", fc.sites[o.sites[0]].name)
	}
	// No local knowledge at all: ask points-to whether the target is
	// provably non-heap (e.g. an alloca address loaded back out of a
	// struct field — the interprocedural case local origins cannot see).
	if o.unknown && len(o.sites) == 0 && !o.global && fc.pt != nil {
		if n := fc.pt.NodeFor(x.Ptr()); n != nil && !n.Unknown && !n.Collapsed && !n.Heap && (n.Stack || n.Global) {
			where := "stack"
			if n.Global && !n.Stack {
				where = "global"
			}
			fc.report(x, KindFreeOfStack, diag.Error, "free of provably non-heap (%s) memory (points-to analysis)", where)
		}
	}
	if o.singleton() {
		fc.markFreed(o.sites[0], st, true)
	} else {
		for _, s := range o.sites {
			fc.markFreed(s, st, false)
		}
	}
}

// transferCall applies a call's effects: argument frees/writes from the
// callee summary, and may-free/may-write effects on escaped sites.
func (fc *fnCtx) transferCall(inst core.Instruction, callee core.Value, args []core.Value, st []objState) {
	target, direct := callee.(*core.Function)
	known := direct && !target.IsDeclaration()
	var sum *funcSummary
	if known {
		sum = fc.sums[target]
		if sum == nil {
			// Recursive SCC member on the first bottom-up visit.
			sum = conservativeSummary(target)
		}
	}
	// For an indirect call whose function-pointer targets fully resolve,
	// join the candidate summaries instead of assuming the worst.
	var resolvedTargets []*core.Function
	if !direct {
		if ts, ok := analysis.ResolveCallees(callee); ok && len(ts) > 0 {
			resolvedTargets = ts
		}
	}

	for k, a := range args {
		if a.Type().Kind() != core.PointerKind {
			continue
		}
		o := fc.resolve(a)
		var mayFree, mustFree, stores bool
		switch {
		case known && k < len(sum.mayFreeArg):
			mayFree, mustFree, stores = sum.mayFreeArg[k], sum.mustFreeArg[k], sum.storesToArg[k]
		case known:
			stores = true // variadic extras: assume written, not freed
		case direct:
			// External declaration: may write through the pointer but can
			// never free it — free is a first-class instruction, so only
			// defined functions release memory.
			stores = true
		case resolvedTargets != nil:
			// Resolved indirect call: an effect is possible only if some
			// candidate's summary has it. mustFree stays false — a
			// definite claim needs a single known callee.
			for _, t := range resolvedTargets {
				if t.IsDeclaration() {
					stores = true
					continue
				}
				tsum := fc.sums[t]
				if tsum == nil {
					tsum = conservativeSummary(t)
				}
				if k < len(tsum.mayFreeArg) {
					mayFree = mayFree || tsum.mayFreeArg[k]
					stores = stores || tsum.storesToArg[k]
				} else {
					stores = true
				}
			}
		default:
			// Unresolvable indirect call: could reach any address-taken
			// defined function, so both effects are possible.
			stores, mayFree = true, true
		}
		strong := o.singleton()
		for _, s := range o.sites {
			cur := st[s]
			if mustFree && strong {
				if cur == stFreed {
					fc.report(inst, KindDoubleFree, diag.Error, "double free of %s: callee %%%s frees its argument, but it is already freed on every path", fc.sites[s].name, target.Name())
				}
				fc.markFreed(s, st, true)
			} else if mayFree || mustFree {
				if cur&stFreed != 0 && fc.emit != nil && known {
					fc.report(inst, KindDoubleFree, diag.Warning, "possible double free of %s via callee %%%s", fc.sites[s].name, target.Name())
				}
				fc.markFreed(s, st, false)
			}
			if stores {
				st[s] |= stInit
				if fc.sites[s].kind == siteArg {
					fc.argStored[fc.sites[s].argIndex] = true
				}
			}
		}
	}

	// Effects through memory: a callee that writes or frees unnamed memory
	// can reach any site whose address escaped.
	var freesAny, modAny bool
	switch {
	case known:
		freesAny = sum.mayFreeAny
		modAny = true
		if mri := fc.mr[target]; mri != nil {
			modAny = mri.ModAny || len(mri.Mod) > 0
			// ModRef is a second gate: a callee that provably writes
			// nothing it wasn't handed cannot free reachable memory.
			freesAny = freesAny && mri.ModAny
		}
	case direct:
		freesAny, modAny = false, true // external: writes maybe, frees never
	case resolvedTargets != nil:
		// Resolved indirect: join the candidates' unnamed-memory effects.
		for _, t := range resolvedTargets {
			if t.IsDeclaration() {
				modAny = true
				continue
			}
			tsum := fc.sums[t]
			if tsum == nil {
				tsum = conservativeSummary(t)
			}
			fAny, mAny := tsum.mayFreeAny, true
			if mri := fc.mr[t]; mri != nil {
				mAny = mri.ModAny || len(mri.Mod) > 0
				fAny = fAny && mri.ModAny
			}
			freesAny = freesAny || fAny
			modAny = modAny || mAny
		}
	default:
		freesAny, modAny = true, true // unresolvable indirect
	}
	if known || !direct {
		fc.mayFreeAny = fc.mayFreeAny || freesAny
	}
	if modAny || freesAny {
		for _, s := range fc.sites {
			if !s.escaped {
				continue
			}
			if freesAny {
				fc.markFreed(s.idx, st, false)
			}
			if modAny {
				st[s.idx] |= stInit
				if s.kind == siteArg {
					fc.argStored[s.argIndex] = true
				}
			}
		}
	}
}

// --- null-guard detection -------------------------------------------------

// computeGuards finds the classic "if (p != null)" pattern: a conditional
// branch on a comparison of p against null whose non-null successor has the
// branch block as its only predecessor. Dominance by that successor then
// proves p non-null, suppressing null-deref findings in guarded code.
func (fc *fnCtx) computeGuards() {
	fc.guards = map[core.Value][]*core.BasicBlock{}
	for _, b := range fc.f.Blocks {
		if !fc.reach[b] {
			continue
		}
		br, ok := b.Terminator().(*core.BranchInst)
		if !ok || !br.IsConditional() {
			continue
		}
		cmp, ok := br.Cond().(*core.BinaryInst)
		if !ok {
			continue
		}
		isNull := func(v core.Value) bool { _, ok := v.(*core.ConstantNull); return ok }
		var ptr core.Value
		switch {
		case isNull(cmp.RHS()):
			ptr = cmp.LHS()
		case isNull(cmp.LHS()):
			ptr = cmp.RHS()
		default:
			continue
		}
		var nonnull *core.BasicBlock
		switch cmp.Opcode() {
		case core.OpSetNE:
			nonnull = br.TrueDest()
		case core.OpSetEQ:
			nonnull = br.FalseDest()
		default:
			continue
		}
		if nonnull == br.TrueDest() && nonnull == br.FalseDest() {
			continue
		}
		if len(nonnull.Preds()) == 1 {
			fc.guards[ptr] = append(fc.guards[ptr], nonnull)
		}
	}
}

// nullGuarded reports whether a dereference of ptr in block at is dominated
// by a non-null guard of ptr (or of the base it is derived from by
// gep/cast).
func (fc *fnCtx) nullGuarded(ptr core.Value, at *core.BasicBlock) bool {
	if len(fc.guards) == 0 || fc.dt == nil {
		return false
	}
	for v := ptr; v != nil; {
		for _, g := range fc.guards[v] {
			if fc.dt.Dominates(g, at) {
				return true
			}
		}
		switch x := v.(type) {
		case *core.GetElementPtrInst:
			v = x.Base()
		case *core.CastInst:
			if x.Val().Type().Kind() == core.PointerKind {
				v = x.Val()
			} else {
				return false
			}
		default:
			return false
		}
	}
	return false
}

// --- per-function diagnostic run ------------------------------------------

// checkFunction runs the full analysis on one function and returns its
// diagnostics in block/instruction order.
func (c *Checker) checkFunction(f *core.Function, sums map[*core.Function]*funcSummary, mr map[*core.Function]*analysis.ModRefInfo, pt *dsa.Result) []diag.Diagnostic {
	fc := c.newFnCtx(f, sums, mr)
	fc.pt = pt
	fc.dt = c.domTree(f)
	fc.analyze()
	fc.computeGuards()

	var out []diag.Diagnostic
	seen := map[string]bool{} // dedupe identical findings at one position
	fc.emit = func(inst core.Instruction, d diag.Diagnostic) {
		k := d.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, d)
	}

	// Replay every reachable block once from its fixpoint entry state,
	// emitting as we go.
	for _, b := range f.Blocks {
		if !fc.reach[b] {
			continue
		}
		st, ok := fc.in[b]
		if !ok {
			continue
		}
		cur := cloneState(st)
		for _, inst := range b.Instrs {
			fc.transfer(inst, cur)
		}
	}
	fc.emit = nil

	if !c.NoLint {
		out = append(out, fc.lintUnreachable()...)
		out = append(out, fc.lintDeadStores()...)
	}
	sortDiags(f, out)
	return out
}

// lintUnreachable reports blocks the CFG cannot reach from entry.
func (fc *fnCtx) lintUnreachable() []diag.Diagnostic {
	var out []diag.Diagnostic
	for _, b := range fc.f.Blocks {
		if fc.reach[b] || len(b.Instrs) == 0 {
			continue
		}
		out = append(out, diag.New(KindUnreachable, diag.Warning,
			diag.Pos{Fn: fc.f.Name(), Block: b.Name(), Inst: core.InstDebugString(b.Instrs[0])},
			"block %%%s is unreachable from entry", b.Name()))
	}
	return out
}

// lintDeadStores finds stores to non-escaped single-site targets whose
// value can never be read: no later load of the site on any path. Backward
// liveness over sites; a site is read by loads through any pointer whose
// origins include it and by calls that can see it.
func (fc *fnCtx) lintDeadStores() []diag.Diagnostic {
	n := len(fc.sites)
	if n == 0 {
		return nil
	}
	// liveOut per block, iterate to fixpoint (backward).
	liveIn := map[*core.BasicBlock][]bool{}
	gen := func(inst core.Instruction, live []bool) {
		switch x := inst.(type) {
		case *core.LoadInst:
			for _, s := range fc.resolve(x.Ptr()).sites {
				live[s] = true
			}
		case *core.StoreInst:
			// Kill only whole-object strong stores (the pointer is the
			// allocation itself, not an interior gep).
			if o := fc.resolve(x.Ptr()); o.singleton() {
				if _, whole := fc.siteOf[x.Ptr()]; whole {
					live[o.sites[0]] = false
				}
			}
		case *core.CallInst:
			fc.genCall(x.Args(), live)
		case *core.InvokeInst:
			fc.genCall(x.Args(), live)
		}
	}
	blockLive := func(b *core.BasicBlock) []bool {
		live := make([]bool, n)
		for _, succ := range b.Succs() {
			if li := liveIn[succ]; li != nil {
				for i, v := range li {
					if v {
						live[i] = true
					}
				}
			}
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			gen(b.Instrs[i], live)
		}
		return live
	}
	for changed := true; changed; {
		changed = false
		for i := len(fc.f.Blocks) - 1; i >= 0; i-- {
			b := fc.f.Blocks[i]
			if !fc.reach[b] {
				continue
			}
			live := blockLive(b)
			old := liveIn[b]
			if old == nil {
				liveIn[b] = live
				changed = true
				continue
			}
			for j, v := range live {
				if v && !old[j] {
					old[j] = true
					changed = true
				}
			}
		}
	}

	var out []diag.Diagnostic
	for _, b := range fc.f.Blocks {
		if !fc.reach[b] {
			continue
		}
		live := make([]bool, n)
		for _, succ := range b.Succs() {
			if li := liveIn[succ]; li != nil {
				for i, v := range li {
					if v {
						live[i] = true
					}
				}
			}
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			inst := b.Instrs[i]
			if st, ok := inst.(*core.StoreInst); ok {
				if o := fc.resolve(st.Ptr()); o.singleton() {
					s := o.sites[0]
					if !fc.sites[s].escaped && fc.sites[s].kind != siteArg && !live[s] {
						out = append(out, diag.New(KindDeadStore, diag.Warning, fc.pos(st),
							"store to %s is never read", fc.sites[s].name))
					}
				}
			}
			gen(inst, live)
		}
	}
	return out
}

// genCall marks sites visible to a callee as read: passed directly, or
// escaped (reachable through memory). Frees do not read contents, but a
// callee that receives the pointer may.
func (fc *fnCtx) genCall(args []core.Value, live []bool) {
	for _, a := range args {
		if a.Type().Kind() != core.PointerKind {
			continue
		}
		for _, s := range fc.resolve(a).sites {
			live[s] = true
		}
	}
	for _, s := range fc.sites {
		if s.escaped {
			live[s.idx] = true
		}
	}
}

// sortDiags orders diagnostics by block layout order, then instruction
// order, then kind — a stable order independent of emission interleaving.
func sortDiags(f *core.Function, ds []diag.Diagnostic) {
	blockIdx := map[string]int{}
	instIdx := map[string]map[string]int{}
	for bi, b := range f.Blocks {
		blockIdx[b.Name()] = bi
		im := map[string]int{}
		for ii, inst := range b.Instrs {
			s := core.InstDebugString(inst)
			if _, dup := im[s]; !dup {
				im[s] = ii
			}
		}
		instIdx[b.Name()] = im
	}
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if blockIdx[a.Pos.Block] != blockIdx[b.Pos.Block] {
			return blockIdx[a.Pos.Block] < blockIdx[b.Pos.Block]
		}
		ia := instIdx[a.Pos.Block][a.Pos.Inst]
		ib := instIdx[b.Pos.Block][b.Pos.Inst]
		if ia != ib {
			return ia < ib
		}
		return a.Kind < b.Kind
	})
}

// --- pass-manager integration ---------------------------------------------

// Pass adapts the checker as a read-only module pass ("check" in pipeline
// spellings). It never mutates IR (0 changes) and records its last report
// for the driver to print.
type Pass struct {
	C    *Checker
	Last *Report
	Err  error
}

// NewPass returns a checker pass wrapping c (nil for defaults).
func NewPass(c *Checker) *Pass {
	if c == nil {
		c = New()
	}
	return &Pass{C: c}
}

// Name implements passes.ModulePass.
func (p *Pass) Name() string { return "check" }

// RunOnModule implements passes.ModulePass.
func (p *Pass) RunOnModule(m *core.Module) int {
	p.Last, p.Err = p.C.Check(m)
	return 0
}

// Preserves declares the checker read-only: every cached analysis survives,
// including the checker's own module extensions.
func (p *Pass) Preserves() analysis.Preserved {
	return analysis.PreserveAll | SummaryKey.Mask() | dsa.Key.Mask()
}
