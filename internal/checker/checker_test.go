package checker

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
)

func mustParse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func check(t *testing.T, src string) *Report {
	t.Helper()
	rep, err := New().Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

// wantDiag asserts one diagnostic of the given kind/severity exists whose
// position instruction contains instFrag.
func wantDiag(t *testing.T, rep *Report, kind string, sev diag.Severity, instFrag string) diag.Diagnostic {
	t.Helper()
	for _, d := range rep.Diags {
		if d.Kind == kind && d.Sev == sev && strings.Contains(d.Pos.Inst, instFrag) {
			return d
		}
	}
	t.Fatalf("no %s %s at inst containing %q; got:\n%s", sev, kind, instFrag, renderAll(rep))
	return diag.Diagnostic{}
}

func renderAll(rep *Report) string {
	var sb strings.Builder
	for _, d := range rep.Diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	if sb.Len() == 0 {
		return "  (no diagnostics)"
	}
	return sb.String()
}

func TestUseAfterFree(t *testing.T) {
	rep := check(t, `
int %main() {
entry:
	%p = malloc int
	store int 1, int* %p
	free int* %p
	%v = load int* %p
	ret int %v
}
`)
	d := wantDiag(t, rep, KindUseAfterFree, diag.Error, "load int* %p")
	if d.Pos.Fn != "main" || d.Pos.Block != "entry" {
		t.Fatalf("bad position %+v", d.Pos)
	}
}

func TestDoubleFree(t *testing.T) {
	rep := check(t, `
void %main() {
entry:
	%p = malloc int
	free int* %p
	free int* %p
	ret void
}
`)
	wantDiag(t, rep, KindDoubleFree, diag.Error, "free int* %p")
}

func TestFreeOfAlloca(t *testing.T) {
	rep := check(t, `
void %main() {
entry:
	%a = alloca int
	free int* %a
	ret void
}
`)
	wantDiag(t, rep, KindFreeOfStack, diag.Error, "free int* %a")
}

func TestFreeOfGlobal(t *testing.T) {
	rep := check(t, `
%g = global int 0

void %main() {
entry:
	free int* %g
	ret void
}
`)
	d := wantDiag(t, rep, KindFreeOfGlobal, diag.Error, "free int* %g")
	if !strings.Contains(d.Msg, "%g") {
		t.Fatalf("message should name the global: %s", d.Msg)
	}
}

func TestUninitLoad(t *testing.T) {
	rep := check(t, `
int %main() {
entry:
	%a = alloca int
	%v = load int* %a
	ret int %v
}
`)
	wantDiag(t, rep, KindUninitLoad, diag.Error, "load int* %a")
}

func TestNullDeref(t *testing.T) {
	rep := check(t, `
int %main() {
entry:
	%v = load int* null
	ret int %v
}
`)
	wantDiag(t, rep, KindNullDeref, diag.Error, "load int* null")
}

func TestFreeOfNullIsSilent(t *testing.T) {
	rep := check(t, `
void %main() {
entry:
	free int* null
	ret void
}
`)
	if len(rep.Diags) != 0 {
		t.Fatalf("free(null) is a defined no-op, want no diagnostics:\n%s", renderAll(rep))
	}
}

func TestCleanProgramNoDiagnostics(t *testing.T) {
	rep := check(t, `
int %main() {
entry:
	%a = alloca int
	store int 1, int* %a
	%p = malloc int
	store int 2, int* %p
	%x = load int* %a
	%y = load int* %p
	%s = add int %x, %y
	free int* %p
	ret int %s
}
`)
	if len(rep.Diags) != 0 {
		t.Fatalf("clean program, want no diagnostics:\n%s", renderAll(rep))
	}
}

// A free on one path only must downgrade later uses to warnings — the
// zero-false-error contract forbids an error for a may-fact.
func TestMayFreeIsWarningNotError(t *testing.T) {
	rep := check(t, `
int %f(int %n) {
entry:
	%p = malloc int
	store int 1, int* %p
	%c = setgt int %n, 0
	br bool %c, label %doFree, label %join

doFree:
	free int* %p
	br label %join

join:
	%v = load int* %p
	ret int %v
}
`)
	wantDiag(t, rep, KindUseAfterFree, diag.Warning, "load int* %p")
	if n := rep.Stats.Errors; n != 0 {
		t.Fatalf("may-free must not produce errors, got %d:\n%s", n, renderAll(rep))
	}
}

// The classic "if (p != null)" guard suppresses null-deref findings in the
// dominated region.
func TestNullGuardSuppression(t *testing.T) {
	src := `
int %f(int %n) {
entry:
	%c0 = seteq int %n, 0
	br bool %c0, label %mk, label %merge

mk:
	%m = malloc int
	store int 7, int* %m
	br label %merge

merge:
	%p = phi int* [ null, %entry ], [ %m, %mk ]
	%c = setne int* %p, null
	br bool %c, label %deref, label %out

deref:
	%v = load int* %p
	ret int %v

out:
	ret int 0
}
`
	rep := check(t, src)
	for _, d := range rep.Diags {
		if d.Kind == KindNullDeref {
			t.Fatalf("guarded deref must not report null-deref: %s", d)
		}
	}

	// Remove the guard: the same dereference becomes a possible-null warning.
	unguarded := strings.Replace(src, "%c = setne int* %p, null", "%c = setne int %n, 5", 1)
	rep = check(t, unguarded)
	wantDiag(t, rep, KindNullDeref, diag.Warning, "load int* %p")
	if rep.Stats.Errors != 0 {
		t.Fatalf("possibly-null is a warning, got errors:\n%s", renderAll(rep))
	}
}

// Interprocedural: the callee's must-free summary turns the caller's second
// free into a definite double free.
func TestInterprocMustFree(t *testing.T) {
	rep := check(t, `
internal void %destroy(int* %p) {
entry:
	free int* %p
	ret void
}

void %main() {
entry:
	%p = malloc int
	call void %destroy(int* %p)
	free int* %p
	ret void
}
`)
	wantDiag(t, rep, KindDoubleFree, diag.Error, "free int* %p")
}

// Interprocedural: a callee proven to return fresh heap memory makes the
// returned pointer a tracked site, so free-then-use is a definite UAF.
func TestInterprocReturnsFresh(t *testing.T) {
	rep := check(t, `
internal int* %make() {
entry:
	%p = malloc int
	store int 1, int* %p
	ret int* %p
}

int %main() {
entry:
	%q = call int* %make()
	free int* %q
	%v = load int* %q
	ret int %v
}
`)
	wantDiag(t, rep, KindUseAfterFree, diag.Error, "load int* %q")
}

// An escaped pointer may be freed by any callee that can free reachable
// memory — uses after such a call are warnings, never errors.
func TestEscapedSiteMayFree(t *testing.T) {
	rep := check(t, `
%keep = global int* null

internal void %reaper() {
entry:
	%p = load int** %keep
	free int* %p
	ret void
}

int %main() {
entry:
	%p = malloc int
	store int 1, int* %p
	store int* %p, int** %keep
	call void %reaper()
	%v = load int* %p
	ret int %v
}
`)
	wantDiag(t, rep, KindUseAfterFree, diag.Warning, "load int* %p")
	if rep.Stats.Errors != 0 {
		t.Fatalf("escaped may-free must stay a warning:\n%s", renderAll(rep))
	}
}

// Points-to refinement: freeing a pointer loaded back out of a struct
// field is invisible to local origin tracking (loads resolve to unknown),
// but DSA proves the field only ever held a stack address.
func TestDSARefinedFreeOfStack(t *testing.T) {
	rep := check(t, `
%box = type { int*, int }

int %main() {
entry:
	%b = alloca %box
	%a = alloca int
	store int 5, int* %a
	%f0 = getelementptr %box* %b, long 0, ubyte 0
	store int* %a, int** %f0
	%p = load int** %f0
	free int* %p
	ret int 0
}
`)
	wantDiag(t, rep, KindFreeOfStack, diag.Error, "free int* %p")
}

func TestUnreachableCode(t *testing.T) {
	rep := check(t, `
int %main() {
entry:
	ret int 0

dead:
	ret int 1
}
`)
	d := wantDiag(t, rep, KindUnreachable, diag.Warning, "ret int 1")
	if d.Pos.Block != "dead" {
		t.Fatalf("bad block: %+v", d.Pos)
	}
}

func TestDeadStore(t *testing.T) {
	rep := check(t, `
int %main() {
entry:
	%a = alloca int
	store int 1, int* %a
	store int 2, int* %a
	%v = load int* %a
	ret int %v
}
`)
	wantDiag(t, rep, KindDeadStore, diag.Warning, "store int 1")
	for _, d := range rep.Diags {
		if d.Kind == KindDeadStore && strings.Contains(d.Pos.Inst, "store int 2") {
			t.Fatalf("live store flagged dead: %s", d)
		}
	}
}

// MinSeverity filters warnings out of the report.
func TestMinSeverity(t *testing.T) {
	c := New()
	c.MinSeverity = diag.Error
	rep, err := c.Check(mustParse(t, `
int %main() {
entry:
	ret int 0

dead:
	ret int 1
}
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diags) != 0 {
		t.Fatalf("warnings should be filtered:\n%s", renderAll(rep))
	}
}

const mixedModule = `
%keep = global int* null

internal void %destroy(int* %p) {
entry:
	free int* %p
	ret void
}

internal int* %make() {
entry:
	%p = malloc int
	store int 1, int* %p
	ret int* %p
}

internal int %uaf() {
entry:
	%p = malloc int
	free int* %p
	%v = load int* %p
	ret int %v
}

internal void %dfree() {
entry:
	%p = malloc int
	call void %destroy(int* %p)
	free int* %p
	ret void
}

internal int %uninit() {
entry:
	%a = alloca int
	%v = load int* %a
	ret int %v
}

internal int %clean(int %n) {
entry:
	%q = call int* %make()
	%v = load int* %q
	call void %destroy(int* %q)
	%s = add int %v, %n
	ret int %s
}

int %main() {
entry:
	%a = call int %uaf()
	%b = call int %uninit()
	%c = call int %clean(int 3)
	call void %dfree()
	%t0 = add int %a, %b
	%t1 = add int %t0, %c
	ret int %t1
}
`

// The diagnostic set must be byte-identical at any worker count.
func TestParallelDeterminism(t *testing.T) {
	m := mustParse(t, mixedModule)
	var want []string
	for _, j := range []int{1, 2, 8} {
		c := New()
		c.Parallelism = j
		rep, err := c.Check(m)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		var got []string
		for _, d := range rep.Diags {
			got = append(got, d.String())
		}
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("mixed module should produce diagnostics")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("j=%d: %d diags, want %d", j, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("j=%d diag %d:\n got %s\nwant %s", j, i, got[i], want[i])
			}
		}
	}
}

// With a shared manager, the second run serves summaries and points-to from
// the extension cache, and invalidation drops them unless the preserving
// pass names the checker's keys.
func TestManagerCaching(t *testing.T) {
	m := mustParse(t, mixedModule)
	am := analysis.NewManager()
	c := New()
	c.AM = am

	if _, err := c.Check(m); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.CacheHits == 0 {
		t.Fatal("second run should hit the extension cache")
	}

	// PreserveAll does NOT cover extension analyses.
	before := am.Stats().Invalidations
	am.InvalidateModule(analysis.PreserveAll)
	if am.Stats().Invalidations == before {
		t.Fatal("PreserveAll must invalidate extension entries")
	}

	// Naming the keys keeps them.
	if _, err := c.Check(m); err != nil {
		t.Fatal(err)
	}
	h0 := am.Stats().Hits
	am.InvalidateModule(analysis.PreserveAll | SummaryKey.Mask() | dsa.Key.Mask())
	if _, err := c.Check(m); err != nil {
		t.Fatal(err)
	}
	if am.Stats().Hits == h0 {
		t.Fatal("preserving the checker keys should keep its caches warm")
	}
}

// The pass adapter is read-only and preserves everything.
func TestPassAdapter(t *testing.T) {
	m := mustParse(t, mixedModule)
	p := NewPass(nil)
	if n := p.RunOnModule(m); n != 0 {
		t.Fatalf("checker pass must not report changes, got %d", n)
	}
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.Last == nil || p.Last.Stats.Diagnostics == 0 {
		t.Fatal("pass should record its report")
	}
	want := analysis.PreserveAll | SummaryKey.Mask() | dsa.Key.Mask()
	if p.Preserves() != want {
		t.Fatalf("Preserves() = %b, want %b", p.Preserves(), want)
	}
}

// Recursive functions must not wedge the bottom-up summary pass and must
// stay conservative (no definite claims through the cycle).
func TestRecursionConservative(t *testing.T) {
	rep := check(t, `
internal void %rec(int* %p, int %n) {
entry:
	%c = setgt int %n, 0
	br bool %c, label %again, label %done

again:
	%n1 = sub int %n, 1
	call void %rec(int* %p, int %n1)
	br label %done

done:
	ret void
}

void %main() {
entry:
	%p = malloc int
	store int 1, int* %p
	call void %rec(int* %p, int 3)
	free int* %p
	ret void
}
`)
	if rep.Stats.Errors != 0 {
		t.Fatalf("recursion must stay conservative (warnings only):\n%s", renderAll(rep))
	}
}
