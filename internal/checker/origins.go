// Origin resolution: a flow-insensitive may-point-to set for every pointer
// value in a function, expressed over tracked allocation sites plus coarse
// buckets (null / global / unknown). The checker's definite diagnostics
// (errors) require a singleton origin, so the resolution must converge to
// the *complete* set of possibilities under the transfer rules below; the
// `unknown` bucket absorbs every producer the rules do not model.
package checker

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
)

// siteKind classifies a tracked allocation site.
type siteKind int

const (
	// siteMalloc is a heap allocation: a malloc instruction, or a call to
	// an internal function whose summary proves it returns fresh heap
	// memory (interprocedural allocation tracking).
	siteMalloc siteKind = iota
	// siteAlloca is a stack allocation.
	siteAlloca
	// siteArg is the object a pointer-typed argument points to. Tracked so
	// free() effects on arguments surface in the function's summary.
	siteArg
)

func (k siteKind) String() string {
	switch k {
	case siteMalloc:
		return "heap"
	case siteAlloca:
		return "stack"
	default:
		return "argument"
	}
}

// site is one abstract memory object tracked flow-sensitively inside a
// single function.
type site struct {
	kind     siteKind
	val      core.Value // *MallocInst, *AllocaInst, fresh call, or *Argument
	idx      int        // dense index into state vectors
	argIndex int        // argument position, for siteArg
	escaped  bool       // address leaves the function's hands (see escape pre-pass)
	name     string     // for messages: "%p" or a rendered description
}

// originSet is the may-point-to set of one pointer value: tracked local
// sites plus coarse buckets for everything else.
type originSet struct {
	sites   []int // sorted site indices
	null    bool
	global  bool // some global variable or function address
	unknown bool // loads, int casts, external results, ...
	gname   string
}

var unknownOrigin = &originSet{unknown: true}
var nullOrigin = &originSet{null: true}
var emptyOrigin = &originSet{}

// singleton reports whether the set is exactly one tracked site — the
// precondition for strong updates and definite (error-level) claims.
func (o *originSet) singleton() bool {
	return len(o.sites) == 1 && !o.null && !o.global && !o.unknown
}

// hasSite reports whether site index s is a member.
func (o *originSet) hasSite(s int) bool {
	for _, x := range o.sites {
		if x == s {
			return true
		}
		if x > s {
			return false
		}
	}
	return false
}

// addSite inserts s keeping sites sorted; reports whether the set changed.
func (o *originSet) addSite(s int) bool {
	i := 0
	for i < len(o.sites) && o.sites[i] < s {
		i++
	}
	if i < len(o.sites) && o.sites[i] == s {
		return false
	}
	o.sites = append(o.sites, 0)
	copy(o.sites[i+1:], o.sites[i:])
	o.sites[i] = s
	return true
}

// unionFrom merges src into o; reports whether o changed.
func (o *originSet) unionFrom(src *originSet) bool {
	changed := false
	for _, s := range src.sites {
		if o.addSite(s) {
			changed = true
		}
	}
	if src.null && !o.null {
		o.null = true
		changed = true
	}
	if src.global && !o.global {
		o.global = true
		o.gname = src.gname
		changed = true
	}
	if src.unknown && !o.unknown {
		o.unknown = true
		changed = true
	}
	return changed
}

// siteName renders a value's spelling for messages.
func siteName(v core.Value) string {
	if n := v.Name(); n != "" {
		return "%" + n
	}
	if inst, ok := v.(core.Instruction); ok {
		return "'" + core.InstDebugString(inst) + "'"
	}
	return fmt.Sprintf("<%T>", v)
}

// collectSites enumerates the tracked sites of fc's function: pointer
// arguments, mallocs, allocas, and calls proven to return fresh heap memory.
func (fc *fnCtx) collectSites() {
	fc.siteOf = map[core.Value]int{}
	add := func(kind siteKind, v core.Value, argIdx int) {
		s := &site{kind: kind, val: v, idx: len(fc.sites), argIndex: argIdx, name: siteName(v)}
		fc.sites = append(fc.sites, s)
		fc.siteOf[v] = s.idx
	}
	for i, a := range fc.f.Args {
		if a.Type().Kind() == core.PointerKind {
			add(siteArg, a, i)
		}
	}
	for _, b := range fc.f.Blocks {
		if !fc.reach[b] {
			continue
		}
		for _, inst := range b.Instrs {
			switch inst.(type) {
			case *core.MallocInst:
				add(siteMalloc, inst, -1)
			case *core.AllocaInst:
				add(siteAlloca, inst, -1)
			case *core.CallInst, *core.InvokeInst:
				if inst.Type() != nil && inst.Type().Kind() == core.PointerKind {
					if sum := fc.summaryFor(core.CalledFunctionOf(inst)); sum != nil && sum.returnsFresh {
						add(siteMalloc, inst, -1)
					}
				}
			}
		}
	}
}

// resolve returns the origin set of v. Constants resolve directly;
// instructions and arguments read the current fixpoint state (empty until
// computeOrigins has propagated to them).
func (fc *fnCtx) resolve(v core.Value) *originSet {
	if idx, ok := fc.siteOf[v]; ok {
		return &originSet{sites: []int{idx}}
	}
	switch x := v.(type) {
	case *core.GlobalVariable:
		return &originSet{global: true, gname: "%" + x.Name()}
	case *core.Function:
		return &originSet{global: true, gname: "%" + x.Name()}
	case *core.ConstantNull:
		return nullOrigin
	case *core.ConstantExpr:
		switch x.Op {
		case core.OpGetElementPtr:
			return fc.resolve(x.Operand(0))
		case core.OpCast:
			if x.Operand(0).Type().Kind() == core.PointerKind {
				return fc.resolve(x.Operand(0))
			}
			return unknownOrigin
		}
		return unknownOrigin
	case core.Instruction:
		if o := fc.org[v]; o != nil {
			return o
		}
		return emptyOrigin
	case *core.Argument:
		// Non-pointer args have no site; pointer args were handled above.
		return unknownOrigin
	}
	return unknownOrigin
}

// originOf applies the transfer rule for one pointer-producing instruction.
func (fc *fnCtx) originOf(inst core.Instruction) *originSet {
	switch x := inst.(type) {
	case *core.GetElementPtrInst:
		return fc.resolve(x.Base())
	case *core.CastInst:
		if x.Val().Type().Kind() == core.PointerKind {
			return fc.resolve(x.Val())
		}
		return unknownOrigin // int-to-pointer: provenance laundered
	case *core.PhiInst:
		out := &originSet{}
		for n := 0; n < x.NumIncoming(); n++ {
			v, _ := x.Incoming(n)
			out.unionFrom(fc.resolve(v))
		}
		return out
	case *core.LoadInst:
		return unknownOrigin // memory contents are not tracked per-cell
	case *core.CallInst, *core.InvokeInst:
		// Fresh-returning calls are sites (handled by resolve via siteOf);
		// reaching here means the callee is unknown or not fresh.
		if sum := fc.summaryFor(core.CalledFunctionOf(inst)); sum != nil && sum.returnsFresh && sum.mayReturnNull {
			// Site origin plus the null possibility.
			out := &originSet{null: true}
			out.unionFrom(fc.resolve(inst))
			return out
		}
		return unknownOrigin
	case *core.VAArgInst:
		return unknownOrigin
	}
	return unknownOrigin
}

// computeOrigins runs the union fixpoint over all pointer-typed
// instructions. Phi cycles converge because the transfer is monotone over
// a finite lattice (site set + three booleans).
func (fc *fnCtx) computeOrigins() {
	fc.org = map[core.Value]*originSet{}
	// Seed fresh-call sites so resolve() on the call value finds the site
	// even before the loop reaches it; malloc/alloca/args resolve via
	// siteOf directly.
	for changed := true; changed; {
		changed = false
		for _, b := range fc.f.Blocks {
			if !fc.reach[b] {
				continue
			}
			for _, inst := range b.Instrs {
				if inst.Type() == nil || inst.Type().Kind() != core.PointerKind {
					continue
				}
				if _, isSite := fc.siteOf[inst]; isSite {
					continue // own-site origin is constant
				}
				ns := fc.originOf(inst)
				cur := fc.org[inst]
				if cur == nil {
					cur = &originSet{}
					fc.org[inst] = cur
				}
				if cur.unionFrom(ns) {
					changed = true
				}
			}
		}
	}
}

// computeEscapes marks sites whose address leaves the function: stored to
// memory, returned, cast to an integer, or passed to a callee that lets the
// argument escape (externals and indirect callees conservatively do).
// Escaped sites may be written or freed behind the checker's back, so they
// never produce definite uninitialized-load claims and become vulnerable to
// may-free effects of opaque calls.
func (fc *fnCtx) computeEscapes() {
	mark := func(v core.Value) {
		for _, s := range fc.resolve(v).sites {
			fc.sites[s].escaped = true
		}
	}
	for _, b := range fc.f.Blocks {
		if !fc.reach[b] {
			continue
		}
		for _, inst := range b.Instrs {
			switch x := inst.(type) {
			case *core.StoreInst:
				if x.Val().Type().Kind() == core.PointerKind {
					mark(x.Val())
				}
			case *core.RetInst:
				if v := x.Value(); v != nil && v.Type().Kind() == core.PointerKind {
					mark(v)
				}
			case *core.CastInst:
				if x.Val().Type().Kind() == core.PointerKind && x.Type().Kind() != core.PointerKind {
					mark(x.Val())
				}
			case *core.CallInst:
				fc.markCallEscapes(x.Callee(), x.Args(), mark)
			case *core.InvokeInst:
				fc.markCallEscapes(x.Callee(), x.Args(), mark)
			}
		}
	}
}

func (fc *fnCtx) markCallEscapes(callee core.Value, args []core.Value, mark func(core.Value)) {
	// Direct calls give a single callee; indirect calls through constant
	// function-pointer tables resolve to their full candidate set, so a
	// pointer argument escapes only if some candidate's summary says so.
	targets, resolved := analysis.CallTargets(callee)
	for k, a := range args {
		if a.Type().Kind() != core.PointerKind {
			continue
		}
		if resolved && !fc.argEscapesAny(targets, k) {
			continue
		}
		// Unresolvable callee, external declaration, variadic extra, or a
		// callee in our own SCC (summary not ready): assume escape.
		mark(a)
	}
}

// argEscapesAny joins "argument k escapes" over a resolved callee set.
func (fc *fnCtx) argEscapesAny(targets []*core.Function, k int) bool {
	for _, t := range targets {
		if t.IsDeclaration() {
			return true
		}
		sum := fc.summaryFor(t)
		if sum == nil || k >= len(sum.escapesArg) || sum.escapesArg[k] {
			return true
		}
	}
	return false
}
