package checker

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/interp"
)

// Cross-validation: when the sandboxed interpreter traps on a memory fault,
// the static checker must have predicted an error of the matching kind at
// the exact same fn/block/inst position. The shared diag.Pos vocabulary is
// what makes this comparison possible.

type xvalCase struct {
	name string
	src  string
	// cause the interpreter must trap with, and the checker kind that
	// predicts it.
	cause error
	kind  string
}

func runToTrap(t *testing.T, m *core.Module) *interp.Trap {
	t.Helper()
	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	_, err = mc.RunFunction(m.Func("main"))
	if err == nil {
		t.Fatal("program should trap")
	}
	var trap *interp.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want *Trap, got %T: %v", err, err)
	}
	return trap
}

func TestCheckerPredictsRuntimeTraps(t *testing.T) {
	cases := []xvalCase{
		{
			name: "null-deref",
			src: `
int %main() {
entry:
	%v = load int* null
	ret int %v
}
`,
			cause: interp.ErrNullDeref,
			kind:  KindNullDeref,
		},
		{
			name: "null-deref-store",
			src: `
int %main() {
entry:
	store int 3, int* null
	ret int 0
}
`,
			cause: interp.ErrNullDeref,
			kind:  KindNullDeref,
		},
		{
			name: "double-free",
			src: `
int %main() {
entry:
	%p = malloc int
	free int* %p
	free int* %p
	ret int 0
}
`,
			cause: interp.ErrDoubleFree,
			kind:  KindDoubleFree,
		},
		{
			name: "interproc-double-free",
			src: `
internal void %destroy(int* %p) {
entry:
	free int* %p
	ret void
}

int %main() {
entry:
	%p = malloc int
	call void %destroy(int* %p)
	free int* %p
	ret int 0
}
`,
			cause: interp.ErrDoubleFree,
			kind:  KindDoubleFree,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mustParse(t, tc.src)

			trap := runToTrap(t, m)
			if !errors.Is(trap, tc.cause) {
				t.Fatalf("trap cause = %v, want %v", trap.Cause, tc.cause)
			}

			rep, err := New().Check(m)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			want := trap.Pos()
			for _, d := range rep.Diags {
				if d.Kind == tc.kind && d.Sev == diag.Error && d.Pos == want {
					return // predicted, same kind, same position
				}
			}
			t.Fatalf("no %s error at trap position %v; trap=%v; diags:\n%s",
				tc.kind, want, trap, renderAll(rep))
		})
	}
}

// The converse demonstration: a use-after-free load does NOT trap in the
// interpreter (its flat arena only bounds-checks), yet the checker proves
// the fault statically. Static analysis catches what the sandbox misses.
func TestCheckerBeatsRuntimeOnUAF(t *testing.T) {
	m := mustParse(t, `
int %main() {
entry:
	%p = malloc int
	store int 7, int* %p
	free int* %p
	%v = load int* %p
	ret int %v
}
`)
	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.RunFunction(m.Func("main")); err != nil {
		t.Fatalf("interpreter unexpectedly trapped (update this test): %v", err)
	}
	rep, err := New().Check(m)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Diags {
		if d.Kind == KindUseAfterFree && d.Sev == diag.Error {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker should prove the UAF the runtime misses:\n%s", renderAll(rep))
	}
}
