// Interprocedural function summaries, computed bottom-up over the call
// graph. A summary answers the questions the intraprocedural dataflow asks
// at a call site: which pointer arguments may/must be freed or written, may
// the callee free *any* heap object it can reach, do its returned pointers
// always denote fresh heap memory, and may they be null.
package checker

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// funcSummary is the call-effect summary of one defined function. Indexed
// fields are per-parameter (pointer params only carry meaning).
type funcSummary struct {
	mayFreeArg    []bool // the object arg i points to may be freed
	mustFreeArg   []bool // ... is freed on every path to a return
	storesToArg   []bool // the callee may write through arg i
	escapesArg    []bool // arg i may be retained past the call (stored/returned)
	mayFreeAny    bool   // may free some object reachable through memory
	returnsFresh  bool   // every returned pointer is fresh heap memory
	mayReturnNull bool   // some return may yield null
}

// conservativeSummary is the worst-case assumption for callees without a
// computed summary: recursive SCC members on the first visit. External
// declarations are handled separately (they may write and retain pointers
// but can never free: free is a first-class IR instruction, so only defined
// functions release memory).
func conservativeSummary(f *core.Function) *funcSummary {
	n := len(f.Args)
	s := &funcSummary{
		mayFreeArg:  make([]bool, n),
		mustFreeArg: make([]bool, n),
		storesToArg: make([]bool, n),
		escapesArg:  make([]bool, n),
		mayFreeAny:  true,
	}
	for i, a := range f.Args {
		if a.Type().Kind() == core.PointerKind {
			s.mayFreeArg[i] = true
			s.storesToArg[i] = true
			s.escapesArg[i] = true
		}
	}
	return s
}

// summaryFor looks up the summary of a direct callee; nil means "no usable
// summary" (external, indirect, or not yet computed).
func (fc *fnCtx) summaryFor(f *core.Function) *funcSummary {
	if f == nil || f.IsDeclaration() {
		return nil
	}
	return fc.sums[f]
}

// computeSummaries runs the dataflow over every defined function in
// call-graph post-order (callees before callers) and extracts summaries.
// Recursive cycles see conservativeSummary for the not-yet-visited members,
// which only weakens claims (adds may-bits), never fabricates definite ones.
func (c *Checker) computeSummaries(m *core.Module, cg *analysis.CallGraph, mr map[*core.Function]*analysis.ModRefInfo) map[*core.Function]*funcSummary {
	sums := map[*core.Function]*funcSummary{}
	order := cg.PostOrder()
	seen := map[*core.Function]bool{}
	for _, f := range order {
		seen[f] = true
	}
	// PostOrder covers functions reachable from roots; sweep up the rest
	// (address-taken-only or dead functions) in module order afterwards.
	for _, f := range m.Funcs {
		if !seen[f] {
			order = append(order, f)
		}
	}
	for _, f := range order {
		if f.IsDeclaration() {
			continue
		}
		fc := c.newFnCtx(f, sums, mr)
		fc.analyze()
		sums[f] = fc.extractSummary()
	}
	return sums
}

// extractSummary reads the summary facts out of a completed dataflow run.
func (fc *fnCtx) extractSummary() *funcSummary {
	f := fc.f
	n := len(f.Args)
	s := &funcSummary{
		mayFreeArg:  make([]bool, n),
		mustFreeArg: make([]bool, n),
		storesToArg: make([]bool, n),
		escapesArg:  make([]bool, n),
		mayFreeAny:  fc.mayFreeAny,
	}
	for i := range f.Args {
		s.mayFreeArg[i] = fc.argMayFree[i]
		s.storesToArg[i] = fc.argStored[i]
	}
	for _, st := range fc.sites {
		if st.kind == siteArg && st.escaped {
			s.escapesArg[st.argIndex] = true
		}
	}

	// Return-site facts: must-free of arguments and freshness/nullness of
	// returned pointers are judged at every reachable return.
	retsSeen := 0
	mustFree := make([]bool, n)
	for i := range mustFree {
		mustFree[i] = true
	}
	fresh := true
	returnsPtr := f.Sig.Ret != nil && f.Sig.Ret.Kind() == core.PointerKind
	for _, b := range f.Blocks {
		if !fc.reach[b] {
			continue
		}
		ret, ok := b.Terminator().(*core.RetInst)
		if !ok {
			continue
		}
		retsSeen++
		exit := fc.stateAtExit(b)
		for _, st := range fc.sites {
			if st.kind == siteArg && exit[st.idx] != stFreed {
				mustFree[st.argIndex] = false
			}
		}
		if returnsPtr {
			if v := ret.Value(); v != nil {
				o := fc.resolve(v)
				if o.null {
					s.mayReturnNull = true
				}
				if o.global || o.unknown {
					fresh = false
				}
				for _, si := range o.sites {
					if fc.sites[si].kind != siteMalloc {
						fresh = false
					}
				}
				if len(o.sites) == 0 && !o.null {
					fresh = false // returns nothing we can vouch for
				}
			} else {
				fresh = false
			}
		}
	}
	if retsSeen > 0 {
		for i, a := range f.Args {
			if a.Type().Kind() == core.PointerKind && mustFree[i] {
				s.mustFreeArg[i] = true
			}
		}
	}
	s.returnsFresh = returnsPtr && retsSeen > 0 && fresh
	return s
}
