package checker

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/diag"
)

// The examples/checker corpus is the acceptance gate: every bug_* program
// must produce at least one error of the kind its filename names, and every
// clean_* program must produce no diagnostics at all — not even warnings.
// CI runs the llvm-check binary over the same files.

var corpusKinds = map[string]string{
	"bug_use_after_free": KindUseAfterFree,
	"bug_double_free":    KindDoubleFree,
	"bug_uninit_load":    KindUninitLoad,
	"bug_null_deref":     KindNullDeref,
	"bug_free_of_alloca": KindFreeOfStack,
}

func TestExamplesCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "checker", "*.ll"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (files=%d)", err, len(files))
	}
	sawBug, sawClean := 0, 0
	for _, path := range files {
		path := path
		base := strings.TrimSuffix(filepath.Base(path), ".ll")
		t.Run(base, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := asm.ParseModule(base, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := core.Verify(m); err != nil {
				t.Fatalf("verify: %v", err)
			}
			rep, err := New().Check(m)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			switch {
			case strings.HasPrefix(base, "bug_"):
				sawBug++
				kind, ok := corpusKinds[base]
				if !ok {
					t.Fatalf("bug file %s has no expected kind registered", base)
				}
				found := false
				for _, d := range rep.Diags {
					if d.Kind == kind && d.Sev == diag.Error {
						found = true
					}
				}
				if !found {
					t.Fatalf("want %s error, got:\n%s", kind, renderAll(rep))
				}
			case strings.HasPrefix(base, "clean_"):
				sawClean++
				if len(rep.Diags) != 0 {
					t.Fatalf("clean program produced diagnostics:\n%s", renderAll(rep))
				}
			default:
				t.Fatalf("corpus file %s must be bug_* or clean_*", base)
			}
		})
	}
	if sawBug == 0 || sawClean == 0 {
		t.Fatalf("corpus must contain both bug and clean programs (bug=%d clean=%d)", sawBug, sawClean)
	}
}
