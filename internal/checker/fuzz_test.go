package checker

import (
	"testing"

	"repro/internal/asm"
)

// FuzzCheck: any module the parser accepts must flow through the checker
// without taking the process down — Check either returns a report or a
// recovered error, never a panic (the PR-1 hostile-input contract). The
// checker runs even on modules the verifier rejects: llvm-check is a
// diagnostic tool, and half-formed IR is exactly when users reach for it.
func FuzzCheck(f *testing.F) {
	f.Add(mixedModule)
	f.Add(`
int %main() {
entry:
	%p = malloc int
	free int* %p
	%v = load int* %p
	ret int %v
}
`)
	f.Add(`
%g = global int* null
internal void %r() {
entry:
	%p = load int** %g
	free int* %p
	ret void
}
void %main() {
entry:
	call void %r()
	ret void
}
`)
	f.Add("int %m() {\nentry:\n\tret int 0\n}\n")
	f.Add("declare void %x()\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := asm.ParseModule("fuzz", src)
		if err != nil {
			return
		}
		c := New()
		rep, err := c.Check(m)
		if err == nil && rep == nil {
			t.Fatal("Check returned nil report and nil error")
		}
	})
}
