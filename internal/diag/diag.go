// Package diag defines the positioned-diagnostic vocabulary shared by the
// toolchain's fault reporters: the static checker (internal/checker) emits
// Diagnostics, and the execution engine's typed Traps (internal/interp)
// carry the same Pos, so a predicted fault and an observed one can be
// compared at the same fn/block/inst coordinates.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity ranks diagnostics. Errors are defects proven on every execution
// reaching the position (the checker's zero-false-error contract); warnings
// flag possible defects and code-quality findings.
type Severity int

// Severity levels, in increasing order.
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// ParseSeverity converts a command-line spelling to a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "warning", "warn", "w":
		return Warning, nil
	case "error", "err", "e":
		return Error, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want warning or error)", s)
}

// Pos locates a diagnostic in the IR the way the interpreter's Trap locates
// a runtime fault: function name, basic-block name, and the rendered
// instruction. Any field may be empty when unknown (e.g. a module-level
// finding has no block).
type Pos struct {
	Fn    string `json:"fn"`              // function name, without the % sigil
	Block string `json:"block,omitempty"` // basic block label ("" if unnamed/unknown)
	Inst  string `json:"inst,omitempty"`  // rendered instruction ("" if not instruction-level)
}

// String renders the position in the Trap spelling:
// "in %f, block %bb, at 'load int* %p'".
func (p Pos) String() string {
	if p.Fn == "" {
		return ""
	}
	msg := "in %" + p.Fn
	if p.Block != "" {
		msg += ", block %" + p.Block
	}
	if p.Inst != "" {
		msg += ", at '" + p.Inst + "'"
	}
	return msg
}

// Diagnostic is one finding: what kind of defect, how certain, where, and a
// human-readable explanation.
type Diagnostic struct {
	// Kind is a stable machine-readable category, e.g. "use-after-free",
	// "double-free", "free-of-stack", "uninitialized-load", "null-deref",
	// "unreachable-code", "dead-store".
	Kind string   `json:"kind"`
	Sev  Severity `json:"-"`
	// Severity is the JSON spelling of Sev.
	Severity string `json:"severity"`
	Pos      Pos    `json:"pos"`
	Msg      string `json:"message"`
}

// New constructs a diagnostic, filling the JSON severity spelling.
func New(kind string, sev Severity, pos Pos, format string, args ...interface{}) Diagnostic {
	return Diagnostic{
		Kind:     kind,
		Sev:      sev,
		Severity: sev.String(),
		Pos:      pos,
		Msg:      fmt.Sprintf(format, args...),
	}
}

// String renders "error: use-after-free: <msg> in %f, block %b, at '...'".
func (d Diagnostic) String() string {
	s := d.Sev.String() + ": " + d.Kind + ": " + d.Msg
	if loc := d.Pos.String(); loc != "" {
		s += " " + loc
	}
	return s
}

// Key is a stable identity for set-diffing two reports: kind, severity, and
// position. Two runs of the checker over the same module produce the same
// keys regardless of worker count.
func (d Diagnostic) Key() string {
	return d.Kind + "\x00" + d.Sev.String() + "\x00" + d.Pos.Fn + "\x00" + d.Pos.Block + "\x00" + d.Pos.Inst
}

// CountByKind tallies diagnostics per kind.
func CountByKind(ds []Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range ds {
		out[d.Kind]++
	}
	return out
}

// CountErrors returns how many diagnostics are errors.
func CountErrors(ds []Diagnostic) int {
	n := 0
	for _, d := range ds {
		if d.Sev == Error {
			n++
		}
	}
	return n
}

// Filter returns the diagnostics at or above min severity.
func Filter(ds []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Sev >= min {
			out = append(out, d)
		}
	}
	return out
}

// Diff compares two reports by Key and returns the diagnostics only in a
// (removed) and only in b (added), each in their original order. Duplicate
// keys are matched by multiplicity.
func Diff(a, b []Diagnostic) (removed, added []Diagnostic) {
	count := map[string]int{}
	for _, d := range a {
		count[d.Key()]++
	}
	for _, d := range b {
		if count[d.Key()] > 0 {
			count[d.Key()]--
		} else {
			added = append(added, d)
		}
	}
	// Rebuild counts consumed by matching to find a-only entries.
	count = map[string]int{}
	for _, d := range b {
		count[d.Key()]++
	}
	for _, d := range a {
		if count[d.Key()] > 0 {
			count[d.Key()]--
		} else {
			removed = append(removed, d)
		}
	}
	return removed, added
}

// SortKinds returns the kinds of a tally in deterministic order.
func SortKinds(byKind map[string]int) []string {
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
