package summary

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/linker"
	"repro/internal/workload"
)

func parse(t *testing.T, name, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSummaryRoundTrip(t *testing.T) {
	m := parse(t, "t", `
%g = global int 0
declare void %external()

internal void %thrower() {
entry:
	unwind
}

int %main() {
entry:
	store int 1, int* %g
	call void %thrower()
	call void %external()
	ret int 0
}
`)
	sums := Compute(m)
	back, err := Decode(Encode(sums))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sums, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", sums, back)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	valid := Encode(Compute(core.NewModule("x")))
	for cut := 1; cut < len(valid); cut++ {
		if _, err := Decode(valid[:cut]); err == nil && cut < len(valid) {
			// Short prefixes of an empty-module summary may parse; the
			// important property is no panic, which reaching here shows.
			break
		}
	}
}

// TestSolveMatchesFromScratch is the paper's §3.3 claim made precise:
// whole-program may-unwind and Mod/Ref computed from per-unit summaries
// (no bodies) must equal the from-scratch analyses on the linked module.
func TestSolveMatchesFromScratch(t *testing.T) {
	for _, p := range workload.Suite()[:6] {
		prog := workload.Generate(p)
		var units [][]FunctionSummary
		var mods []*core.Module
		for i, src := range prog.Units {
			m, err := minic.Compile(p.Name+".u"+string(rune('0'+i)), src)
			if err != nil {
				t.Fatal(err)
			}
			// Compile-time: summaries computed per unit and "attached".
			blob := Encode(Compute(m))
			sums, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			units = append(units, sums)
			mods = append(mods, m)
		}

		// Link-time: solve from summaries alone.
		solved := Solve(units...)

		// Ground truth from the linked bodies.
		linked, err := linker.Link(p.Name, mods...)
		if err != nil {
			t.Fatal(err)
		}
		cg := analysis.NewCallGraph(linked)
		wantUnwind := cg.MayUnwind()
		wantMR := analysis.ModRef(linked, cg)

		for _, f := range linked.Funcs {
			name := f.Name()
			if got, want := solved.MayUnwind[name], wantUnwind[f]; got != want {
				t.Errorf("%s/%s: may-unwind from summaries %v, from scratch %v", p.Name, name, got, want)
			}
			mi := wantMR[f]
			if got, want := solved.ModAny[name], mi.ModAny; got != want {
				t.Errorf("%s/%s: ModAny %v vs %v", p.Name, name, got, want)
			}
			if got, want := solved.RefAny[name], mi.RefAny; got != want {
				t.Errorf("%s/%s: RefAny %v vs %v", p.Name, name, got, want)
			}
			for g := range mi.Mod {
				if !solved.ModAny[name] && !solved.Mod[name][g.Name()] {
					t.Errorf("%s/%s: missing Mod %s in summary solve", p.Name, name, g.Name())
				}
			}
			for gname := range solved.Mod[name] {
				if linked.Global(gname) == nil {
					continue // internal renamed during linking: name-keyed only
				}
				if !mi.ModAny && !mi.Mod[linked.Global(gname)] {
					t.Errorf("%s/%s: summary Mod %s not in ground truth", p.Name, name, gname)
				}
			}
		}
	}
}

func TestIncrementalRecompilationScenario(t *testing.T) {
	// The §3.3 use case: three units; unit 1 changes. Only unit 1's
	// summary is recomputed; the solve over (cached, fresh, cached)
	// matches a full from-scratch analysis of the new program.
	unitA := `
static int helper_a(int x) { return x + 1; }
int entry_a(int x) { return helper_a(x); }
`
	unitB0 := `
extern int entry_a(int x);
int entry_b(int x) { return entry_a(x) * 2; }
`
	unitB1 := `
extern int entry_a(int x);
extern void mystery();
int entry_b(int x) { mystery(); return entry_a(x) * 3; }
`
	unitC := `
extern int entry_b(int x);
int main() { return entry_b(4); }
`
	compile := func(name, src string) ([]FunctionSummary, *core.Module) {
		m, err := minic.Compile(name, src)
		if err != nil {
			t.Fatal(err)
		}
		return Compute(m), m
	}
	sumA, _ := compile("a", unitA)
	sumB0, _ := compile("b", unitB0)
	sumC, _ := compile("c", unitC)

	before := Solve(sumA, sumB0, sumC)
	if before.ModAny["main"] {
		t.Fatal("clean program should not have ModAny main")
	}

	// Unit B changes: recompute only its summary.
	sumB1, mB1 := compile("b", unitB1)
	after := Solve(sumA, sumB1, sumC)
	if !after.ModAny["main"] {
		t.Fatal("mystery() call must poison main transitively via cached summaries")
	}

	// Sanity: matches a full rebuild.
	mA, _ := minic.Compile("a", unitA)
	mC, _ := minic.Compile("c", unitC)
	linked, err := linker.Link("prog", mA, mB1, mC)
	if err != nil {
		t.Fatal(err)
	}
	_ = mB1
	cg := analysis.NewCallGraph(linked)
	mr := analysis.ModRef(linked, cg)
	if got := mr[linked.Func("main")].ModAny; got != after.ModAny["main"] {
		t.Fatalf("incremental solve diverges from full rebuild: %v vs %v", after.ModAny["main"], got)
	}
}
