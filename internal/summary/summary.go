// Package summary implements the interprocedural summaries of §3.3: "At
// compile-time, interprocedural summaries can be computed for each function
// in the program and attached to the bytecode. The link-time
// interprocedural optimizer can then process these interprocedural
// summaries as input instead of having to compute results from scratch.
// This technique can dramatically speed up incremental compilation when a
// small number of translation units are modified."
//
// A FunctionSummary captures what the link-time analyses need from a
// function body: its direct callees, whether it can unwind or escape to
// unknown code, its Mod/Ref global sets, and its size. Summaries serialize
// to a compact binary sidecar; Solve recomputes the whole-program
// may-unwind and Mod/Ref fixed points from summaries alone — without the
// bodies — and tests verify the result matches the from-scratch analyses.
package summary

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
)

// FunctionSummary is the per-function abstraction attached to bytecode.
type FunctionSummary struct {
	Name string
	// IsDeclaration marks externals (everything unknown).
	IsDeclaration bool
	// Internal mirrors linkage (affects link-time assumptions).
	Internal bool
	// NumInstructions sizes the body (inlining decisions).
	NumInstructions int
	// Callees are direct call/invoke targets by name.
	Callees []string
	// HasUnwind: the body contains an unwind instruction.
	HasUnwind bool
	// CallsIndirect: contains an indirect call (unknown callee).
	CallsIndirect bool
	// UncaughtCallees lists direct callees invoked as plain calls (their
	// unwinds propagate); invoked-with-handler callees are excluded, as
	// the invoke catches the unwind.
	UncaughtCallees []string
	// Mod/Ref sets over named globals, plus unknown-memory bits.
	ModGlobals []string
	RefGlobals []string
	ModAny     bool
	RefAny     bool
}

// Compute builds summaries for every function in a module (the compile-time
// half of the technique; runs per translation unit).
func Compute(m *core.Module) []FunctionSummary {
	cg := analysis.NewCallGraph(m)
	mr := analysis.ModRef(m, cg)

	var out []FunctionSummary
	for _, f := range m.Funcs {
		s := FunctionSummary{
			Name:            f.Name(),
			IsDeclaration:   f.IsDeclaration(),
			Internal:        f.Linkage == core.InternalLinkage,
			NumInstructions: f.NumInstructions(),
		}
		seen := map[string]bool{}
		seenUncaught := map[string]bool{}
		f.ForEachInst(func(inst core.Instruction) bool {
			switch i := inst.(type) {
			case *core.UnwindInst:
				s.HasUnwind = true
			case *core.CallInst:
				if t := i.CalledFunction(); t != nil {
					if !seen[t.Name()] {
						seen[t.Name()] = true
						s.Callees = append(s.Callees, t.Name())
					}
					if !seenUncaught[t.Name()] {
						seenUncaught[t.Name()] = true
						s.UncaughtCallees = append(s.UncaughtCallees, t.Name())
					}
				} else {
					s.CallsIndirect = true
				}
			case *core.InvokeInst:
				if t, ok := i.Callee().(*core.Function); ok {
					if !seen[t.Name()] {
						seen[t.Name()] = true
						s.Callees = append(s.Callees, t.Name())
					}
				} else {
					s.CallsIndirect = true
				}
			}
			return true
		})
		// Local Mod/Ref (the per-function component only: the summary
		// consumer performs the interprocedural propagation itself, so we
		// must not bake transitive effects in — recompute locally).
		local := localModRef(f)
		s.ModAny, s.RefAny = local.modAny, local.refAny
		for g := range local.mod {
			s.ModGlobals = append(s.ModGlobals, g)
		}
		for g := range local.ref {
			s.RefGlobals = append(s.RefGlobals, g)
		}
		sort.Strings(s.ModGlobals)
		sort.Strings(s.RefGlobals)
		sort.Strings(s.Callees)
		sort.Strings(s.UncaughtCallees)
		out = append(out, s)
	}
	_ = mr // full results are available to callers who want them eagerly
	return out
}

type localMR struct {
	mod, ref       map[string]bool
	modAny, refAny bool
}

// localModRef computes a single function's own memory effects (no call
// propagation), mirroring analysis.ModRef's local pass.
func localModRef(f *core.Function) localMR {
	l := localMR{mod: map[string]bool{}, ref: map[string]bool{}}
	if f.IsDeclaration() {
		l.modAny, l.refAny = true, true
		return l
	}
	f.ForEachInst(func(inst core.Instruction) bool {
		switch i := inst.(type) {
		case *core.LoadInst:
			if g, ok := analysis.TraceToGlobal(i.Ptr()); ok {
				l.ref[g.Name()] = true
			} else if !analysis.PointsToLocalFrame(i.Ptr()) {
				l.refAny = true
			}
		case *core.StoreInst:
			if g, ok := analysis.TraceToGlobal(i.Ptr()); ok {
				l.mod[g.Name()] = true
			} else if !analysis.PointsToLocalFrame(i.Ptr()) {
				l.modAny = true
			}
		case *core.FreeInst:
			l.modAny = true
		case *core.CallInst:
			if i.CalledFunction() == nil {
				l.modAny, l.refAny = true, true
			}
		case *core.InvokeInst:
			if _, direct := i.Callee().(*core.Function); !direct {
				l.modAny, l.refAny = true, true
			}
		}
		return true
	})
	return l
}

// ---------------------------------------------------------------------------
// Whole-program solving from summaries (the link-time half)

// Solved is the whole-program result derived from summaries alone.
type Solved struct {
	// MayUnwind per function name.
	MayUnwind map[string]bool
	// Mod/Ref per function name over global names.
	Mod, Ref       map[string]map[string]bool
	ModAny, RefAny map[string]bool
}

// Solve merges per-unit summaries (later definitions override earlier
// declarations of the same name, as the linker would) and computes the
// interprocedural fixed points without any function bodies.
func Solve(units ...[]FunctionSummary) *Solved {
	byName := map[string]FunctionSummary{}
	for _, unit := range units {
		for _, s := range unit {
			if prev, ok := byName[s.Name]; ok && !prev.IsDeclaration {
				continue // keep the definition
			}
			byName[s.Name] = s
		}
	}

	sv := &Solved{
		MayUnwind: map[string]bool{},
		Mod:       map[string]map[string]bool{},
		Ref:       map[string]map[string]bool{},
		ModAny:    map[string]bool{},
		RefAny:    map[string]bool{},
	}
	// Seed.
	for name, s := range byName {
		sv.MayUnwind[name] = s.IsDeclaration || s.HasUnwind
		mod := map[string]bool{}
		ref := map[string]bool{}
		for _, g := range s.ModGlobals {
			mod[g] = true
		}
		for _, g := range s.RefGlobals {
			ref[g] = true
		}
		sv.Mod[name], sv.Ref[name] = mod, ref
		sv.ModAny[name] = s.ModAny || s.IsDeclaration
		sv.RefAny[name] = s.RefAny || s.IsDeclaration
	}
	// Propagate to a fixed point.
	for changed := true; changed; {
		changed = false
		for name, s := range byName {
			if s.IsDeclaration {
				continue
			}
			// Unwind flows through plain calls (not invokes) and unknown
			// callees.
			if !sv.MayUnwind[name] {
				esc := s.CallsIndirect
				for _, c := range s.UncaughtCallees {
					if _, known := byName[c]; !known || sv.MayUnwind[c] {
						esc = true
						break
					}
				}
				if esc {
					sv.MayUnwind[name] = true
					changed = true
				}
			}
			// Mod/Ref flows through every call edge.
			for _, c := range s.Callees {
				if _, known := byName[c]; !known {
					if !sv.ModAny[name] || !sv.RefAny[name] {
						sv.ModAny[name], sv.RefAny[name] = true, true
						changed = true
					}
					continue
				}
				if sv.ModAny[c] && !sv.ModAny[name] {
					sv.ModAny[name] = true
					changed = true
				}
				if sv.RefAny[c] && !sv.RefAny[name] {
					sv.RefAny[name] = true
					changed = true
				}
				for g := range sv.Mod[c] {
					if !sv.Mod[name][g] {
						sv.Mod[name][g] = true
						changed = true
					}
				}
				for g := range sv.Ref[c] {
					if !sv.Ref[name][g] {
						sv.Ref[name][g] = true
						changed = true
					}
				}
			}
			if s.CallsIndirect && (!sv.ModAny[name] || !sv.RefAny[name]) {
				sv.ModAny[name], sv.RefAny[name] = true, true
				changed = true
			}
		}
	}
	return sv
}

// ---------------------------------------------------------------------------
// Serialization (the "attached to the bytecode" part)

// Magic identifies a summary sidecar blob.
var Magic = [4]byte{'L', 'L', 'S', 'M'}

// Encode serializes summaries to the compact sidecar format.
func Encode(sums []FunctionSummary) []byte {
	var out []byte
	out = append(out, Magic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	vu := func(v uint64) { out = append(out, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	str := func(s string) { vu(uint64(len(s))); out = append(out, s...) }
	strs := func(ss []string) {
		vu(uint64(len(ss)))
		for _, s := range ss {
			str(s)
		}
	}
	vu(uint64(len(sums)))
	for _, s := range sums {
		str(s.Name)
		var flags byte
		if s.IsDeclaration {
			flags |= 1
		}
		if s.Internal {
			flags |= 2
		}
		if s.HasUnwind {
			flags |= 4
		}
		if s.CallsIndirect {
			flags |= 8
		}
		if s.ModAny {
			flags |= 16
		}
		if s.RefAny {
			flags |= 32
		}
		out = append(out, flags)
		vu(uint64(s.NumInstructions))
		strs(s.Callees)
		strs(s.UncaughtCallees)
		strs(s.ModGlobals)
		strs(s.RefGlobals)
	}
	return out
}

// Decode parses a summary sidecar.
func Decode(data []byte) ([]FunctionSummary, error) {
	if len(data) < 4 || string(data[:4]) != string(Magic[:]) {
		return nil, errors.New("summary: bad magic")
	}
	pos := 4
	vu := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, errors.New("summary: truncated varint")
		}
		pos += n
		return v, nil
	}
	str := func() (string, error) {
		n, err := vu()
		if err != nil {
			return "", err
		}
		if pos+int(n) > len(data) {
			return "", errors.New("summary: truncated string")
		}
		s := string(data[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	strs := func() ([]string, error) {
		n, err := vu()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)) {
			return nil, errors.New("summary: bad list length")
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			s, err := str()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}

	count, err := vu()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(data)) {
		return nil, fmt.Errorf("summary: implausible count %d", count)
	}
	sums := make([]FunctionSummary, 0, count)
	for i := uint64(0); i < count; i++ {
		var s FunctionSummary
		if s.Name, err = str(); err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, errors.New("summary: truncated flags")
		}
		flags := data[pos]
		pos++
		s.IsDeclaration = flags&1 != 0
		s.Internal = flags&2 != 0
		s.HasUnwind = flags&4 != 0
		s.CallsIndirect = flags&8 != 0
		s.ModAny = flags&16 != 0
		s.RefAny = flags&32 != 0
		ni, err := vu()
		if err != nil {
			return nil, err
		}
		s.NumInstructions = int(ni)
		if s.Callees, err = strs(); err != nil {
			return nil, err
		}
		if s.UncaughtCallees, err = strs(); err != nil {
			return nil, err
		}
		if s.ModGlobals, err = strs(); err != nil {
			return nil, err
		}
		if s.RefGlobals, err = strs(); err != nil {
			return nil, err
		}
		sums = append(sums, s)
	}
	return sums, nil
}
