package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// StatusClientClosed is the access-log status for a request that
// terminated without a response being written — the client went away (or
// the per-request budget expired) mid-flight. 499 is nginx's convention;
// logging it beats the old behavior of recording such aborts as 200.
const StatusClientClosed = 499

// HTTPObs is the serving layer's observability middleware, shared by the
// lifelong daemon and the cluster front so every process speaks the same
// trace-context protocol: adopt the request's X-Trace-Id (minting one at
// the cluster's edge), parent a request span under the sender's
// X-Span-Id, expose both to the handler through the request context,
// and finalize one RequestRecord per request into the access log, the
// flight recorder, and the per-endpoint latency histogram.
//
// Every field is optional; a zero HTTPObs still attaches trace IDs, which
// is the invariant the satellite tests pin: no terminated request —
// 503 on saturation, 413 on the body-size guard, timeouts — escapes
// without an X-Trace-Id and a log line carrying its final status.
type HTTPObs struct {
	Tracer    *Tracer
	Recorder  *Recorder
	AccessLog io.Writer
	// Endpoint maps a request path to its bounded metric/record label
	// (nil = identity; callers that serve untrusted paths must collapse
	// unknown ones to keep label cardinality bounded).
	Endpoint func(path string) string
	// Latency returns the request-duration histogram for an endpoint
	// label (nil = no latency recording).
	Latency func(endpoint string) *Histogram

	logMu sync.Mutex
}

// statusWriter captures the response status and size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Middleware wraps next in the observability envelope.
func (o *HTTPObs) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(HeaderTraceID)
		if !ValidTraceID(trace) {
			trace = NewTraceID()
		}
		endpoint := r.URL.Path
		if o.Endpoint != nil {
			endpoint = o.Endpoint(endpoint)
		}
		// The span parents under the sender's span when the request came
		// from another cluster process; at the edge the parent is empty
		// and this span is the trace's root.
		parent := SpanContext{Trace: trace}
		if p := r.Header.Get(HeaderSpanID); ValidTraceID(p) {
			parent.Span = p
		}
		sp := o.Tracer.StartSpan(endpoint, "request", 0, parent)
		sc := sp.Context()
		if sc.Trace == "" {
			// Tracer disabled: the trace identity still propagates so
			// downstream processes that do trace join the same tree.
			sc = parent
		}
		w.Header().Set(HeaderTraceID, trace)

		t0 := time.Now()
		rec := &RequestRecord{
			Time:     t0.UTC(),
			TraceID:  trace,
			SpanID:   sc.Span,
			Method:   r.Method,
			Path:     r.URL.Path,
			Endpoint: endpoint,
		}
		ctx := ContextWithSpan(r.Context(), sc)
		ctx = ContextWithRecord(ctx, rec)
		sw := &statusWriter{ResponseWriter: w}

		next.ServeHTTP(sw, r.WithContext(ctx))

		dur := time.Since(t0)
		if sw.status == 0 {
			// Nothing was written. A live client would have gotten an
			// implicit 200; a handler that bailed because the client (or
			// the request budget) went away wrote nothing and must not be
			// logged as success.
			if r.Context().Err() != nil {
				sw.status = StatusClientClosed
			} else {
				sw.status = http.StatusOK
			}
		}
		rec.Status = sw.status
		rec.Bytes = sw.bytes
		rec.Duration = dur.Seconds()
		sp.EndArgs(map[string]string{"status": strconv.Itoa(sw.status)})
		if o.Latency != nil {
			o.Latency(endpoint).Observe(dur.Seconds())
		}
		o.Recorder.Add(*rec)
		if o.AccessLog != nil {
			if line, err := json.Marshal(rec); err == nil {
				o.logMu.Lock()
				o.AccessLog.Write(append(line, '\n'))
				o.logMu.Unlock()
			}
		}
	})
}

// PropagateHeaders stamps the trace-context headers on an outbound
// cluster hop from the span carried by ctx. No-op without a trace.
func PropagateHeaders(ctx context.Context, h http.Header) {
	sc := SpanFromContext(ctx)
	if sc.Trace == "" {
		return
	}
	h.Set(HeaderTraceID, sc.Trace)
	if sc.Span != "" {
		h.Set(HeaderSpanID, sc.Span)
	}
}
