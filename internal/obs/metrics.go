// Package obs is the toolchain's observability layer: a span tracer that
// exports Chrome trace-event JSON (loadable in about:tracing / Perfetto),
// an optimization-remarks stream (LLVM's -Rpass analogue: applied, missed,
// and analysis remarks keyed by pass, function, and diag.Pos), and a
// dependency-free metrics registry (atomic counters, gauges, histograms)
// exported in Prometheus text format by llvm-serve's /metrics endpoint.
//
// Every entry point is safe on a nil receiver and the nil (disabled) paths
// perform no allocation, so instrumented hot paths — the pass scheduler's
// per-function loop, the interpreter's run boundary — cost nothing when
// observability is off. bench_test.go guards this with an allocation test.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter discards updates.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down. A nil *Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultDurationBuckets are histogram bounds (in seconds) spanning the
// latencies the toolchain sees: sub-millisecond pass runs up to multi-second
// requests.
var DefaultDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ServeLatencyBuckets are the request-duration bounds (seconds) for the
// daemon's per-endpoint histograms. They must resolve both tails the
// serving layer actually has: warm cache hits complete in tens of
// microseconds (three sub-100µs bounds), cold compiles and saturated
// queues run to multi-second (bounds to 30s, past the default request
// timeout, so a timed-out request still lands in a finite bucket).
var ServeLatencyBuckets = []float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram counts observations into cumulative buckets, Prometheus-style.
// A nil *Histogram discards observations.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    Counter
	total  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Cumulative returns the histogram's upper bounds and cumulative bucket
// counts (the +Inf bucket last), exactly the numbers a /metrics scrape
// renders — so a quantile computed here and one recomputed from the
// scraped text cannot disagree.
func (h *Histogram) Cumulative() (bounds []float64, cum []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = h.bounds
	cum = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return bounds, cum
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the recorded
// buckets, Prometheus histogram_quantile-style: find the bucket the rank
// falls in and interpolate linearly inside it. Observations in the +Inf
// bucket clamp to the highest finite bound. Returns 0 on nil or empty.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Cumulative()
	return QuantileFromBuckets(bounds, cum, q)
}

// QuantileFromBuckets is Quantile over explicit cumulative bucket counts
// (len(cum) == len(bounds)+1, +Inf last). It is exported so tests can
// recompute quantiles from a parsed /metrics scrape with bit-identical
// arithmetic to the /stats summary.
func QuantileFromBuckets(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(bounds)+1 {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := 0
	for i < len(bounds) && float64(cum[i]) < rank {
		i++
	}
	if i == len(bounds) {
		// Rank lands in the +Inf bucket: the best finite statement is the
		// largest finite bound.
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	prev := uint64(0)
	if i > 0 {
		lower = bounds[i-1]
		prev = cum[i-1]
	}
	inBucket := float64(cum[i] - prev)
	if inBucket == 0 {
		return bounds[i]
	}
	return lower + (bounds[i]-lower)*(rank-float64(prev))/inBucket
}

// series is one labeled instance of a metric family.
type series struct {
	labels string // canonical rendered label set, "" or `{k="v",...}`
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // CounterFunc/GaugeFunc callback
}

// family groups the series sharing one metric name.
type family struct {
	name string
	typ  string // "counter", "gauge", "histogram"
	mu   sync.Mutex
	byLb map[string]*series
}

// Registry holds metric families and renders them as Prometheus text. All
// methods are safe for concurrent use; all are safe on a nil *Registry,
// which hands out nil handles that discard updates — instrumented code
// needs no "is observability on" branches.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// LabelSet renders label key/value pairs in canonical (sorted-key) form.
// Values are escaped per the Prometheus text exposition format.
func LabelSet(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// fam returns (creating if needed) the family for name, checking that the
// metric type is consistent across registrations.
func (r *Registry) fam(name, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, typ: typ, byLb: map[string]*series{}}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// series hands the (created-if-needed) series for labels to init while
// still holding the family lock. All reads and writes of a series' handle
// fields (c, g, h, fn) happen inside init, so two goroutines registering
// the same series concurrently agree on one handle instead of racing to
// install separate ones.
func (f *family) series(labels string, init func(*series)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.byLb[labels]
	if s == nil {
		s = &series{labels: labels}
		f.byLb[labels] = s
	}
	init(s)
}

// Counter returns (creating if needed) the counter for name and the given
// label key/value pairs. Returns nil on a nil registry.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	var c *Counter
	r.fam(name, "counter").series(LabelSet(kv...), func(s *series) {
		if s.c == nil {
			s.c = &Counter{}
		}
		c = s.c
	})
	return c
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	var g *Gauge
	r.fam(name, "gauge").series(LabelSet(kv...), func(s *series) {
		if s.g == nil {
			s.g = &Gauge{}
		}
		g = s.g
	})
	return g
}

// Histogram returns (creating if needed) the histogram for name and labels,
// with the given upper bounds (nil = DefaultDurationBuckets).
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	var h *Histogram
	r.fam(name, "histogram").series(LabelSet(kv...), func(s *series) {
		if s.h == nil {
			b := bounds
			if b == nil {
				b = DefaultDurationBuckets
			}
			s.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		}
		h = s.h
	})
	return h
}

// CounterFunc registers a counter whose value is polled at scrape time —
// the bridge for subsystems that already keep their own atomic counters
// (the analysis manager's hit/miss totals, the store's cache counters).
func (r *Registry) CounterFunc(name string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.fam(name, "counter").series(LabelSet(kv...), func(s *series) { s.fn = fn })
}

// GaugeFunc registers a gauge polled at scrape time.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.fam(name, "gauge").series(LabelSet(kv...), func(s *series) { s.fn = fn })
}

// formatValue renders a sample in the Prometheus text format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format,
// sorted by metric name then label set, so successive scrapes of an idle
// process are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.byLb))
		for k := range f.byLb {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("# TYPE ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(f.typ)
		sb.WriteByte('\n')
		for _, k := range keys {
			s := f.byLb[k]
			switch {
			case s.h != nil:
				writeHistogram(&sb, f.name, s)
			case s.fn != nil:
				writeSample(&sb, f.name, s.labels, s.fn())
			case s.c != nil:
				writeSample(&sb, f.name, s.labels, s.c.Value())
			case s.g != nil:
				writeSample(&sb, f.name, s.labels, s.g.Value())
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeSample(sb *strings.Builder, name, labels string, v float64) {
	sb.WriteString(name)
	sb.WriteString(labels)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(sb *strings.Builder, name string, s *series) {
	h := s.h
	// Merge the bucket label into the (possibly empty) series label set.
	bucketLabels := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(sb, name+"_bucket", bucketLabels(formatValue(b)), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(sb, name+"_bucket", bucketLabels("+Inf"), float64(cum))
	writeSample(sb, name+"_sum", s.labels, h.Sum())
	writeSample(sb, name+"_count", s.labels, float64(h.Count()))
}
