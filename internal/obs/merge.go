package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MergeTraces merges trace files exported by WriteJSON in different
// processes into one Chrome trace-event file, aligning their per-process
// monotonic timelines on the wall-clock epoch each file carries
// (epochMicros): the earliest epoch becomes the merged trace's zero and
// every other file's events shift right by its offset. Files whose
// process IDs collide are renumbered (file order) so each input keeps
// its own track group in Perfetto.
//
// traceID, when non-empty, keeps only the spans of that request tree
// (events whose trace_id arg matches) plus process metadata — the shape
// `llvm-trace -trace ID` serves for "show me this one slow request".
func MergeTraces(w io.Writer, traceID string, files ...[]byte) error {
	type parsed struct {
		file traceFile
	}
	var ins []parsed
	minEpoch := int64(0)
	for i, data := range files {
		var f traceFile
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("obs: trace file %d: %w", i, err)
		}
		if f.EpochMicros > 0 && (minEpoch == 0 || f.EpochMicros < minEpoch) {
			minEpoch = f.EpochMicros
		}
		ins = append(ins, parsed{file: f})
	}

	// Detect pid collisions across files; renumber colliding files so no
	// two processes share a track group.
	seen := map[int]int{} // pid -> first file index
	collides := make([]bool, len(ins))
	for i, in := range ins {
		pids := map[int]bool{}
		for _, ev := range in.file.TraceEvents {
			pids[ev.PID] = true
		}
		for pid := range pids {
			if j, ok := seen[pid]; ok && j != i {
				collides[i] = true
			} else {
				seen[pid] = i
			}
		}
	}

	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms", EpochMicros: minEpoch}
	for i, in := range ins {
		var offset int64
		if in.file.EpochMicros > 0 && minEpoch > 0 {
			offset = in.file.EpochMicros - minEpoch
		}
		for _, ev := range in.file.TraceEvents {
			if collides[i] {
				ev.PID = 1000*(i+1) + ev.PID
			}
			if ev.Phase != "M" {
				ev.TS += offset
			}
			if traceID != "" && ev.Phase != "M" && ev.Args["trace_id"] != traceID {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	sortMerged(out.TraceEvents)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// sortMerged orders merged events: metadata first, then (ts, pid, tid) —
// stable so same-microsecond events keep file order.
func sortMerged(evs []traceEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		am, bm := a.Phase == "M", b.Phase == "M"
		if am != bm {
			return am
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.TID < b.TID
	})
}
