package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer records timed spans of the compile pipeline and exports them in
// the Chrome trace-event format (the JSON Array / "traceEvents" shape),
// loadable in about:tracing and Perfetto. Spans carry a tid so concurrent
// work — the parallel pass scheduler's function workers, the daemon's
// request handlers — renders as parallel tracks.
//
// A nil *Tracer is the disabled state: Begin returns a zero Span whose End
// is a no-op, and neither call allocates, so tracing costs nothing on the
// pass hot path when off.
//
// The event buffer is capped (DefaultMaxEvents, adjustable via
// SetMaxEvents): a long-running daemon records one span per function per
// pass per compile, so an unbounded buffer would grow memory for the
// process lifetime. Events past the cap are dropped and the truncation is
// recorded in the exported trace.
type Tracer struct {
	epoch   time.Time
	pid     int
	proc    string
	mu      sync.Mutex
	evs     []traceEvent
	max     int
	dropped uint64
}

// DefaultMaxEvents bounds a tracer's in-memory event buffer. At roughly a
// hundred bytes per event this caps the buffer in the tens of megabytes.
const DefaultMaxEvents = 1 << 18

// traceEvent is one Chrome trace-event object. Complete events (ph "X")
// carry a duration; instant events (ph "i") do not.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds since the tracer's epoch
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON Object format wrapper. EpochMicros is the
// wall-clock time (microseconds since the Unix epoch) that ts 0 refers
// to; MergeTraces uses it to align traces exported by different
// processes, whose span timestamps are each relative to their own
// tracer's monotonic epoch.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	EpochMicros     int64        `json:"epochMicros,omitempty"`
}

// NewTracer returns an enabled tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), pid: 1, max: DefaultMaxEvents}
}

// SetProcess labels this tracer's events with a process ID and name, so a
// merged multi-process trace renders each process as its own named track
// group in Perfetto. Defaults: pid 1, no name.
func (t *Tracer) SetProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	t.proc = name
	t.mu.Unlock()
}

// SetMaxEvents adjusts the event-buffer cap (n <= 0 restores the default).
// Events already recorded are kept even if they exceed the new cap.
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxEvents
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// Dropped returns how many events were discarded at the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// record appends ev unless the buffer is at its cap. Callers hold t.mu.
func (t *Tracer) record(ev traceEvent) {
	if len(t.evs) >= t.max {
		t.dropped++
		return
	}
	t.evs = append(t.evs, ev)
}

// Span is one in-flight timed region. The zero Span (from a nil tracer)
// is inert.
type Span struct {
	tr     *Tracer
	name   string
	cat    string
	tid    int
	start  time.Time
	ctx    SpanContext // distributed-trace identity (StartSpan only)
	parent string      // parent span id, "" for root spans
}

// Begin opens a span on track tid (0 = the main pipeline track; the
// parallel scheduler uses 1..N for its workers). Safe and allocation-free
// on a nil tracer.
func (t *Tracer) Begin(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End closes the span, recording a complete ("X") event.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with key/value annotations shown in the trace
// viewer's detail pane.
func (s Span) EndArgs(args map[string]string) {
	if s.tr == nil {
		return
	}
	end := time.Now()
	if s.ctx.Trace != "" {
		// Distributed spans carry their trace identity in args; the
		// merge step and the ancestor tests key on these three.
		merged := make(map[string]string, len(args)+3)
		for k, v := range args {
			merged[k] = v
		}
		merged["trace_id"] = s.ctx.Trace
		merged["span_id"] = s.ctx.Span
		if s.parent != "" {
			merged["parent_id"] = s.parent
		}
		args = merged
	}
	s.tr.mu.Lock()
	s.tr.record(traceEvent{
		Name:  s.name,
		Cat:   s.cat,
		Phase: "X",
		TS:    s.start.Sub(s.tr.epoch).Microseconds(),
		Dur:   end.Sub(s.start).Microseconds(),
		PID:   s.tr.pid,
		TID:   s.tid,
		Args:  args,
	})
	s.tr.mu.Unlock()
}

// Instant records a zero-duration marker (cache hits, evictions, epoch
// advances) on track tid.
func (t *Tracer) Instant(name, cat string, tid int, args map[string]string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.record(traceEvent{
		Name:  name,
		Cat:   cat,
		Phase: "i",
		TS:    now.Sub(t.epoch).Microseconds(),
		PID:   t.pid,
		TID:   tid,
		Scope: "t",
		Args:  args,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// WriteJSON exports the recorded events in the Chrome trace-event JSON
// Object format. Events are sorted by (ts, tid) so the output is stable
// for a given set of spans. If events were dropped at the buffer cap, a
// final instant event notes how many. Safe on a nil tracer (writes an
// empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	var dropped uint64
	if t != nil {
		t.mu.Lock()
		pid, proc := t.pid, t.proc
		f.EpochMicros = t.epoch.UnixMicro()
		f.TraceEvents = append(f.TraceEvents, t.evs...)
		dropped = t.dropped
		t.mu.Unlock()
		sortEvents(f.TraceEvents)
		if proc != "" {
			// Metadata first: Perfetto names the process's track group.
			f.TraceEvents = append([]traceEvent{{
				Name:  "process_name",
				Phase: "M",
				PID:   pid,
				Args:  map[string]string{"name": proc},
			}}, f.TraceEvents...)
		}
		if dropped > 0 {
			var last int64
			if n := len(f.TraceEvents); n > 0 {
				last = f.TraceEvents[n-1].TS
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name:  "trace truncated",
				Cat:   "obs",
				Phase: "i",
				TS:    last,
				PID:   pid,
				Scope: "g",
				Args:  map[string]string{"dropped_events": strconv.FormatUint(dropped, 10)},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(f)
}

func sortEvents(evs []traceEvent) {
	// Stable ordering by timestamp then track: spans begun at the same
	// microsecond keep their recording order. Events arrive in end-time
	// order but are keyed by start time, so the input is not guaranteed
	// nearly-sorted — use O(n log n) stable sort, not insertion sort.
	sort.SliceStable(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
}

func less(a, b traceEvent) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.TID < b.TID
}
