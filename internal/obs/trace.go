package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records timed spans of the compile pipeline and exports them in
// the Chrome trace-event format (the JSON Array / "traceEvents" shape),
// loadable in about:tracing and Perfetto. Spans carry a tid so concurrent
// work — the parallel pass scheduler's function workers, the daemon's
// request handlers — renders as parallel tracks.
//
// A nil *Tracer is the disabled state: Begin returns a zero Span whose End
// is a no-op, and neither call allocates, so tracing costs nothing on the
// pass hot path when off.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	evs   []traceEvent
}

// traceEvent is one Chrome trace-event object. Complete events (ph "X")
// carry a duration; instant events (ph "i") do not.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds since the tracer's epoch
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON Object format wrapper.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTracer returns an enabled tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one in-flight timed region. The zero Span (from a nil tracer)
// is inert.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Begin opens a span on track tid (0 = the main pipeline track; the
// parallel scheduler uses 1..N for its workers). Safe and allocation-free
// on a nil tracer.
func (t *Tracer) Begin(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End closes the span, recording a complete ("X") event.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with key/value annotations shown in the trace
// viewer's detail pane.
func (s Span) EndArgs(args map[string]string) {
	if s.tr == nil {
		return
	}
	end := time.Now()
	s.tr.mu.Lock()
	s.tr.evs = append(s.tr.evs, traceEvent{
		Name:  s.name,
		Cat:   s.cat,
		Phase: "X",
		TS:    s.start.Sub(s.tr.epoch).Microseconds(),
		Dur:   end.Sub(s.start).Microseconds(),
		PID:   1,
		TID:   s.tid,
		Args:  args,
	})
	s.tr.mu.Unlock()
}

// Instant records a zero-duration marker (cache hits, evictions, epoch
// advances) on track tid.
func (t *Tracer) Instant(name, cat string, tid int, args map[string]string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.evs = append(t.evs, traceEvent{
		Name:  name,
		Cat:   cat,
		Phase: "i",
		TS:    now.Sub(t.epoch).Microseconds(),
		PID:   1,
		TID:   tid,
		Scope: "t",
		Args:  args,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// WriteJSON exports the recorded events in the Chrome trace-event JSON
// Object format. Events are sorted by (ts, tid) so the output is stable
// for a given set of spans. Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		f.TraceEvents = append(f.TraceEvents, t.evs...)
		t.mu.Unlock()
		sortEvents(f.TraceEvents)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(f)
}

func sortEvents(evs []traceEvent) {
	// Insertion-stable ordering by timestamp then track: spans begun at the
	// same microsecond keep their recording order.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func less(a, b traceEvent) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.TID < b.TID
}
