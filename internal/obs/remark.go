package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/diag"
)

// Remark statuses, LLVM's -Rpass vocabulary: an optimization that fired,
// one that was considered and declined (with the reason), and a neutral
// analysis observation.
const (
	Applied  = "applied"
	Missed   = "missed"
	Analysis = "analysis"
)

// Remark is one optimization remark: which pass, what happened, where, and
// why — the per-decision counterpart of a pass's aggregate change count.
type Remark struct {
	Pass   string   `json:"pass"`
	Status string   `json:"status"` // applied | missed | analysis
	Pos    diag.Pos `json:"pos"`
	Msg    string   `json:"message"`
	// run orders remarks by pass execution: the pipeline runs passes
	// sequentially, so sorting by (run, function) restores a deterministic
	// order even when parallel function workers appended interleaved.
	run int
}

// String renders "mem2reg: applied: promoted %x to register in %main".
func (r Remark) String() string {
	s := r.Pass + ": " + r.Status + ": " + r.Msg
	if loc := r.Pos.String(); loc != "" {
		s += " " + loc
	}
	return s
}

// Remarks collects optimization remarks from a pipeline run. Emission is
// safe from concurrent function workers; Sorted restores a deterministic
// order (see Remark.run). A nil *Remarks discards everything — passes
// guard emission with a nil check so disabled remarks cost nothing.
type Remarks struct {
	mu   sync.Mutex
	list []Remark
	run  int
}

// NewRemarks returns an enabled collector.
func NewRemarks() *Remarks { return &Remarks{} }

// Enabled reports whether remarks are being collected; hot loops use it to
// skip building positions and messages when they would be discarded.
func (r *Remarks) Enabled() bool { return r != nil }

// BeginPass marks the start of one pass execution; remarks emitted until
// the next BeginPass sort after all earlier passes' remarks.
func (r *Remarks) BeginPass() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.run++
	r.mu.Unlock()
}

// Emit records one remark.
func (r *Remarks) Emit(pass, status string, pos diag.Pos, format string, args ...interface{}) {
	if r == nil {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	r.mu.Lock()
	r.list = append(r.list, Remark{Pass: pass, Status: status, Pos: pos, Msg: msg, run: r.run})
	r.mu.Unlock()
}

// Appliedf records an applied remark.
func (r *Remarks) Appliedf(pass string, pos diag.Pos, format string, args ...interface{}) {
	r.Emit(pass, Applied, pos, format, args...)
}

// Missedf records a missed-optimization remark.
func (r *Remarks) Missedf(pass string, pos diag.Pos, format string, args ...interface{}) {
	r.Emit(pass, Missed, pos, format, args...)
}

// Analysisf records an analysis remark.
func (r *Remarks) Analysisf(pass string, pos diag.Pos, format string, args ...interface{}) {
	r.Emit(pass, Analysis, pos, format, args...)
}

// Len returns the number of remarks collected (0 on nil).
func (r *Remarks) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.list)
}

// Sorted returns the remarks in deterministic order: by pass execution,
// then by function name, preserving emission order within one function.
// One pass execution hands each function to exactly one worker, so the
// within-function order is worker-count-independent and the whole stream
// is byte-identical at any -j (the golden test pins this).
func (r *Remarks) Sorted() []Remark {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Remark(nil), r.list...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].run != out[j].run {
			return out[i].run < out[j].run
		}
		return out[i].Pos.Fn < out[j].Pos.Fn
	})
	return out
}

// WriteRemarksText renders remarks one per line, "remark: " prefixed, in
// the deterministic Sorted order.
func WriteRemarksText(w io.Writer, rs []Remark) error {
	for _, r := range rs {
		if _, err := fmt.Fprintf(w, "remark: %s\n", r); err != nil {
			return err
		}
	}
	return nil
}

// WriteRemarksJSON renders remarks as an indented JSON array.
func WriteRemarksJSON(w io.Writer, rs []Remark) error {
	if rs == nil {
		rs = []Remark{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(rs)
}
