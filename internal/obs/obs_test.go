package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/diag"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("llvm_test_total", "pass", "mem2reg")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	// Same name+labels returns the same series.
	if again := r.Counter("llvm_test_total", "pass", "mem2reg"); again.Value() != 3 {
		t.Errorf("re-fetched counter = %v, want 3", again.Value())
	}
	g := r.Gauge("llvm_test_gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

// TestRegistryConcurrentSameSeries hammers one series from many goroutines
// so that, under -race, any handle initialization outside the family lock
// is reported — and counts increments to catch a lost handle (two racing
// creators each installing their own Counter drops one side's updates).
func TestRegistryConcurrentSameSeries(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("llvm_race_total", "endpoint", "compile").Inc()
				r.Gauge("llvm_race_gauge").Add(1)
				r.Histogram("llvm_race_seconds", nil, "endpoint", "compile").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("llvm_race_total", "endpoint", "compile").Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %v (lost increments from racing series creation)", got, workers*perWorker)
	}
	if got := r.Gauge("llvm_race_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %v", got, workers*perWorker)
	}
	if got := r.Histogram("llvm_race_seconds", nil, "endpoint", "compile").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %v", got, workers*perWorker)
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	r.CounterFunc("x", func() float64 { return 1 })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles recorded values")
	}
	var tr *Tracer
	sp := tr.Begin("a", "b", 0)
	sp.End()
	tr.Instant("a", "b", 0, nil)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
	var rem *Remarks
	rem.BeginPass()
	rem.Appliedf("p", diag.Pos{}, "x")
	if rem.Len() != 0 || rem.Sorted() != nil || rem.Enabled() {
		t.Error("nil remarks not inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("llvm_test_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE llvm_test_seconds histogram",
		`llvm_test_seconds_bucket{le="0.01"} 1`,
		`llvm_test_seconds_bucket{le="0.1"} 3`,
		`llvm_test_seconds_bucket{le="1"} 4`,
		`llvm_test_seconds_bucket{le="+Inf"} 5`,
		"llvm_test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusOutputDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "k", "2").Inc()
	r.Counter("b_total", "k", "1").Inc()
	r.Gauge("a_gauge").Set(1)
	r.CounterFunc("c_total", func() float64 { return 7 })
	var b1, b2 bytes.Buffer
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("two scrapes of an idle registry differ")
	}
	out := b1.String()
	// Families sorted by name; series sorted by label set.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_total")) {
		t.Errorf("families out of order:\n%s", out)
	}
	if strings.Index(out, `k="1"`) > strings.Index(out, `k="2"`) {
		t.Errorf("series out of order:\n%s", out)
	}
	if !strings.Contains(out, "c_total 7") {
		t.Errorf("CounterFunc not polled:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := LabelSet("msg", "a\"b\\c\nd")
	want := `{msg="a\"b\\c\nd"}`
	if got != want {
		t.Errorf("LabelSet = %s, want %s", got, want)
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("mem2reg", "pass", 0)
	time.Sleep(time.Millisecond)
	sp.EndArgs(map[string]string{"changed": "3"})
	tr.Instant("cache-hit", "store", 0, nil)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
			TS    *int64 `json:"ts"`
			Dur   int64  `json:"dur"`
			PID   int    `json:"pid"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(f.TraceEvents))
	}
	span := f.TraceEvents[0]
	if span.Name != "mem2reg" || span.Phase != "X" || span.TS == nil || span.Dur <= 0 {
		t.Errorf("bad span event: %+v", span)
	}
	if f.TraceEvents[1].Phase != "i" {
		t.Errorf("instant event phase = %q, want i", f.TraceEvents[1].Phase)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Begin("f", "function", w+1).End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("events = %d, want 800", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent trace output is not valid JSON")
	}
}

// TestTracerEventCap verifies the event buffer stops growing at the cap,
// counts drops, and that the exported trace notes the truncation.
func TestTracerEventCap(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxEvents(10)
	for i := 0; i < 25; i++ {
		tr.Begin("f", "function", 1).End()
	}
	if tr.Len() != 10 {
		t.Errorf("events = %d, want 10 (buffer cap)", tr.Len())
	}
	if tr.Dropped() != 15 {
		t.Errorf("dropped = %d, want 15", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("truncated trace output is not valid JSON")
	}
	if !strings.Contains(buf.String(), "trace truncated") ||
		!strings.Contains(buf.String(), `"dropped_events": "15"`) {
		t.Errorf("trace output missing truncation marker:\n%s", buf.String())
	}
}

func TestRemarksSortedDeterministic(t *testing.T) {
	build := func(interleave bool) string {
		r := NewRemarks()
		r.BeginPass()
		emitA := func() {
			r.Appliedf("p1", diag.Pos{Fn: "a"}, "first")
			r.Missedf("p1", diag.Pos{Fn: "a"}, "second")
		}
		emitB := func() { r.Appliedf("p1", diag.Pos{Fn: "b"}, "only") }
		if interleave {
			// Simulate a different worker schedule: b lands between a's two.
			r.Appliedf("p1", diag.Pos{Fn: "a"}, "first")
			emitB()
			r.Missedf("p1", diag.Pos{Fn: "a"}, "second")
		} else {
			emitA()
			emitB()
		}
		r.BeginPass()
		r.Analysisf("p2", diag.Pos{Fn: "a"}, "later pass")
		var buf bytes.Buffer
		if err := WriteRemarksText(&buf, r.Sorted()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build(false) != build(true) {
		t.Errorf("remark order depends on emission interleaving:\n%s\nvs\n%s",
			build(false), build(true))
	}
	out := build(false)
	if !strings.Contains(out, "remark: p1: applied: first in %a") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	// A later pass's remarks must sort after all earlier ones, even for an
	// alphabetically-earlier function.
	if strings.Index(out, "p2: analysis") < strings.Index(out, `in %b`) {
		t.Errorf("pass-run ordering violated:\n%s", out)
	}
}

func TestRemarksJSON(t *testing.T) {
	r := NewRemarks()
	r.BeginPass()
	r.Appliedf("inline", diag.Pos{Fn: "caller", Block: "entry"}, "inlined %s", "callee")
	var buf bytes.Buffer
	if err := WriteRemarksJSON(&buf, r.Sorted()); err != nil {
		t.Fatal(err)
	}
	var got []Remark
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pass != "inline" || got[0].Status != Applied ||
		got[0].Pos.Fn != "caller" || got[0].Msg != "inlined callee" {
		t.Errorf("round-tripped remark = %+v", got)
	}
}

// TestDisabledPathsAllocationFree is the package-local half of the
// zero-overhead contract (bench_test.go guards the integrated pass path):
// with observability off, span begin/end, counter updates, and guarded
// remark emission allocate nothing.
func TestDisabledPathsAllocationFree(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var rem *Remarks
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("pass", "pass", 0)
		c.Inc()
		if rem.Enabled() {
			rem.Appliedf("p", diag.Pos{Fn: "f"}, "never")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled observability allocated %v times per op, want 0", allocs)
	}
}
