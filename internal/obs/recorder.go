package obs

import (
	"sync"
	"time"
)

// Recorder is the serving layer's flight recorder: an always-on, bounded
// ring buffer of recent request timelines. When a request five minutes
// ago was slow, /debug/requests shows what it did — endpoint, trace ID,
// cluster hops, cache and dedup outcome, per-phase durations — without
// anyone having pre-arranged tracing. The ring holds the most recent Cap
// records; older ones are overwritten in arrival order (strict FIFO
// eviction, no size accounting — records are small and bounded because
// trace IDs are validated and hop/phase lists are fixed by the code, not
// the client).
//
// A nil *Recorder discards everything, and every RequestRecord mutator is
// nil-safe, so disabled paths cost nothing.
type Recorder struct {
	mu    sync.Mutex
	buf   []RequestRecord
	next  int    // ring write cursor
	total uint64 // lifetime count (total - len(buf) were evicted)
}

// DefaultRecorderCap bounds the flight recorder's ring. A few hundred
// requests is enough to cover "a slow request five minutes ago" at the
// request rates one node serves, at well under a megabyte.
const DefaultRecorderCap = 512

// NewRecorder returns a recorder holding the most recent n requests
// (n <= 0 = DefaultRecorderCap).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderCap
	}
	return &Recorder{buf: make([]RequestRecord, 0, n)}
}

// Add appends one finished request, evicting the oldest at capacity.
func (r *Recorder) Add(rec RequestRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else if cap(r.buf) > 0 {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the recorded requests, newest first. Nil on a nil or
// empty recorder.
func (r *Recorder) Snapshot() []RequestRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestRecord, 0, len(r.buf))
	// The ring's oldest entry sits at next (once wrapped); walk backwards
	// from the newest.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// ByTrace returns the recorded requests carrying trace ID id, newest
// first — one request per process hop, so on a single node this is
// usually one record, and a front sees its own plus nothing (each
// process keeps its own recorder).
func (r *Recorder) ByTrace(id string) []RequestRecord {
	if r == nil || id == "" {
		return nil
	}
	var out []RequestRecord
	for _, rec := range r.Snapshot() {
		if rec.TraceID == id {
			out = append(out, rec)
		}
	}
	return out
}

// Cap returns the ring's capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Total returns how many requests were ever recorded; Total() - Len()
// were evicted at the cap.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns how many requests are currently held (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Hop is one cluster-internal dependency call made while serving a
// request: the front routing to a peer, a node fetching an artifact
// through from its owner, or a profile forward.
type Hop struct {
	Peer    string  `json:"peer"`
	Kind    string  `json:"kind"`    // "route", "fetch-through", "profile-forward"
	Outcome string  `json:"outcome"` // "ok", "hit", "miss", "error", "down", relayed statuses
	Seconds float64 `json:"seconds"`
}

// PhaseTiming is one named phase of a request's lifetime (read/parse,
// compile, execute, ...) with its duration.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// RequestRecord is one request's flight-recorder entry. It doubles as
// the structured access-log line (the JSON field names are the access
// log's wire format — tests pin them). Mutators are nil-safe so
// instrumented paths never branch on "is recording on"; they are not
// goroutine-safe — a record belongs to its request's handler goroutine
// until the middleware finalizes it.
type RequestRecord struct {
	Time     time.Time `json:"time"`
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id,omitempty"`
	Method   string    `json:"method"`
	Path     string    `json:"path"`
	Endpoint string    `json:"endpoint,omitempty"`
	Status   int       `json:"status"`
	Bytes    int64     `json:"bytes"`
	Duration float64   `json:"duration_seconds"`
	// Cache is /compile's disposition: "hit", "remote", "miss".
	Cache string `json:"cache,omitempty"`
	// Dedup marks single-flight fan-in: "follower" for a request that
	// shared another request's pipeline run, with JoinedTrace naming the
	// leader's trace ID so the shared work is attributable.
	Dedup       string `json:"dedup,omitempty"`
	JoinedTrace string `json:"joined_trace,omitempty"`
	// Peer is the serving peer a front routed this request to.
	Peer string `json:"peer,omitempty"`
	// Error carries a request-level failure detail (trap text, timeout).
	Error  string        `json:"error,omitempty"`
	Hops   []Hop         `json:"hops,omitempty"`
	Phases []PhaseTiming `json:"phases,omitempty"`
}

// SetCache records /compile's cache disposition.
func (r *RequestRecord) SetCache(word string) {
	if r != nil {
		r.Cache = word
	}
}

// SetDedup marks this request a single-flight follower of leaderTrace.
func (r *RequestRecord) SetDedup(role, leaderTrace string) {
	if r != nil {
		r.Dedup = role
		r.JoinedTrace = leaderTrace
	}
}

// SetPeer records the peer a front routed to.
func (r *RequestRecord) SetPeer(peer string) {
	if r != nil {
		r.Peer = peer
	}
}

// SetError records a request-level failure detail.
func (r *RequestRecord) SetError(msg string) {
	if r != nil {
		r.Error = msg
	}
}

// AddHop appends one cluster-internal dependency call.
func (r *RequestRecord) AddHop(peer, kind, outcome string, d time.Duration) {
	if r != nil {
		r.Hops = append(r.Hops, Hop{Peer: peer, Kind: kind, Outcome: outcome, Seconds: d.Seconds()})
	}
}

// AddPhase appends one named phase duration.
func (r *RequestRecord) AddPhase(name string, d time.Duration) {
	if r != nil {
		r.Phases = append(r.Phases, PhaseTiming{Name: name, Seconds: d.Seconds()})
	}
}
