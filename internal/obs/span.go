package obs

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Distributed request tracing (DESIGN.md §15). A request entering the
// cluster is assigned a trace ID at the first process that sees it (the
// front, or a node hit directly); every hop forwards the pair of headers
//
//	X-Trace-Id: the request's cluster-wide identity
//	X-Span-Id:  the sender's span, which the receiver parents under
//
// so each process records its spans against the same trace ID with parent
// links crossing process boundaries. Clocks are per-process monotonic
// (each Tracer timestamps against its own epoch); the exported trace
// carries the epoch's wall-clock microseconds, and MergeTraces aligns the
// per-process timelines on it, producing one Perfetto tree: the front's
// request span parenting the owner's request span parenting its compile
// span parenting the per-pass spans.

// HeaderTraceID and HeaderSpanID are the trace-context propagation
// headers every cluster hop forwards.
const (
	HeaderTraceID = "X-Trace-Id"
	HeaderSpanID  = "X-Span-Id"
)

// SpanContext names a position in a distributed trace: the trace the
// request belongs to and one span inside it. The zero SpanContext means
// "no trace" (and, as a parent, "root span").
type SpanContext struct {
	Trace string
	Span  string
}

// idPrefix makes this process's trace and span IDs globally unique
// without coordination: wall-clock nanoseconds XOR the PID, so two
// processes started the same nanosecond still differ.
var idPrefix = fmt.Sprintf("%x", uint64(time.Now().UnixNano())^uint64(os.Getpid())<<40)

var idSeq atomic.Uint64

// NewTraceID mints a process-unique trace identifier. Trace IDs are
// minted at the cluster's edge — the first process that sees a request
// without an X-Trace-Id header — and adopted verbatim everywhere else.
func NewTraceID() string {
	return idPrefix + "-" + strconv.FormatUint(idSeq.Add(1), 10)
}

// newSpanID mints a process-unique span identifier (same pool as trace
// IDs; spans and traces never compare against each other).
func newSpanID() string {
	return idPrefix + "." + strconv.FormatUint(idSeq.Add(1), 10)
}

// ValidTraceID bounds what an incoming X-Trace-Id header is allowed to
// look like before the daemon adopts it: short, printable, and free of
// JSON/log-breaking characters. Anything else is replaced with a fresh
// ID — a client must not be able to forge log-injection payloads or
// unbounded recorder keys.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '-' || c == '.' || c == '_':
		default:
			return false
		}
	}
	return true
}

// StartSpan opens a span that participates in a distributed trace: it
// inherits the parent's trace ID, mints its own span ID, and records the
// parent link in the exported event's args (trace_id / span_id /
// parent_id), which is what MergeTraces and the trace tools key on. A
// zero parent starts a root span with no trace identity. Safe and
// allocation-free on a nil tracer.
func (t *Tracer) StartSpan(name, cat string, tid int, parent SpanContext) Span {
	if t == nil {
		return Span{}
	}
	s := Span{tr: t, name: name, cat: cat, tid: tid, start: time.Now(), parent: parent.Span}
	if parent.Trace != "" {
		s.ctx = SpanContext{Trace: parent.Trace, Span: newSpanID()}
	}
	return s
}

// Context returns the span's own position in the trace, for parenting
// child spans and for the X-Span-Id header on outbound hops. Zero for
// spans begun on a nil tracer or without a trace identity.
func (s Span) Context() SpanContext { return s.ctx }

// ---------------------------------------------------------------------------
// Context plumbing: the serving layer threads the active span and the
// active request record through context.Context so cluster hops
// (fetch-through, profile forwarding) deep inside the compile path can
// propagate headers and annotate the flight recorder without new
// parameters on every function in between.

type ctxKey int

const (
	spanCtxKey ctxKey = iota
	recordCtxKey
)

// ContextWithSpan returns ctx carrying sc as the current span.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey, sc)
}

// SpanFromContext returns the current span context (zero when absent).
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey).(SpanContext)
	return sc
}

// ContextWithRecord returns ctx carrying the active request record.
func ContextWithRecord(ctx context.Context, rec *RequestRecord) context.Context {
	return context.WithValue(ctx, recordCtxKey, rec)
}

// RecordFromContext returns the active request record, or nil when the
// request is not being recorded — every *RequestRecord mutator is
// nil-safe, so call sites never branch.
func RecordFromContext(ctx context.Context) *RequestRecord {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recordCtxKey).(*RequestRecord)
	return rec
}
