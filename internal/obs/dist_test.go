package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-123.x_Y":           true,
		"1f3a9-7":               true,
		"":                      false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
		"has space":             false,
		"quote\"инъекция":       false,
		"newline\n":             false,
		`{"json":"breaker"}`:    false,
		"semi;colon":            false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("minted trace ID %q fails its own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// TestStartSpanIdentity pins the distributed-span contract: a span under a
// parent inherits the trace, mints a fresh span ID, and exports all three
// identity args (trace_id / span_id / parent_id) — the keys MergeTraces
// filtering and the cross-process ancestry tests rely on.
func TestStartSpanIdentity(t *testing.T) {
	tr := NewTracer()
	parent := SpanContext{Trace: "t-1", Span: "s-parent"}
	sp := tr.StartSpan("request", "http", 0, parent)
	sc := sp.Context()
	if sc.Trace != "t-1" {
		t.Errorf("child trace = %q, want t-1", sc.Trace)
	}
	if sc.Span == "" || sc.Span == "s-parent" {
		t.Errorf("child span = %q, want a freshly minted ID", sc.Span)
	}
	sp.EndArgs(map[string]string{"status": "200"})

	// Root span: trace identity but no parent link.
	root := tr.StartSpan("edge", "http", 0, SpanContext{Trace: "t-2"})
	root.End()

	// Zero parent = no trace identity at all.
	if sc := tr.StartSpan("anon", "http", 0, SpanContext{}).Context(); sc != (SpanContext{}) {
		t.Errorf("span without a parent trace got identity %+v", sc)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[string]string{}
	for _, ev := range f.TraceEvents {
		byName[ev.Name] = ev.Args
	}
	req := byName["request"]
	if req["trace_id"] != "t-1" || req["span_id"] != sc.Span {
		t.Errorf("request span args = %v, want trace_id t-1 span_id %s", req, sc.Span)
	}
	if req["parent_id"] != "s-parent" {
		t.Errorf("request parent_id = %q, want s-parent", req["parent_id"])
	}
	if req["status"] != "200" {
		t.Errorf("request kept caller args? got %v", req)
	}
	if root := byName["edge"]; root["parent_id"] != "" {
		t.Errorf("root span has parent_id %q, want none", root["parent_id"])
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Add(RequestRecord{TraceID: fmt.Sprintf("t-%d", i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
	snap := r.Snapshot()
	var got []string
	for _, rec := range snap {
		got = append(got, rec.TraceID)
	}
	// Newest first; t-0 and t-1 were evicted.
	want := []string{"t-5", "t-4", "t-3", "t-2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
	if hits := r.ByTrace("t-4"); len(hits) != 1 || hits[0].TraceID != "t-4" {
		t.Errorf("ByTrace(t-4) = %v", hits)
	}
	if hits := r.ByTrace("t-0"); hits != nil {
		t.Errorf("ByTrace found evicted record: %v", hits)
	}
}

// mkTraceFile builds a WriteJSON-shaped trace file for merge tests.
func mkTraceFile(t *testing.T, epochMicros int64, pid int, proc string, evs []traceEvent) []byte {
	t.Helper()
	f := traceFile{DisplayTimeUnit: "ms", EpochMicros: epochMicros}
	if proc != "" {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]string{"name": proc},
		})
	}
	f.TraceEvents = append(f.TraceEvents, evs...)
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMergeTracesAlignsAndRenumbers pins the merge semantics: timelines
// shift onto the earliest file's wall-clock epoch, colliding process IDs
// are renumbered per file, and a trace-ID filter keeps only that request
// tree plus the process metadata that names the tracks.
func TestMergeTracesAlignsAndRenumbers(t *testing.T) {
	front := mkTraceFile(t, 1_000_000, 1, "front", []traceEvent{
		{Name: "/compile", Cat: "request", Phase: "X", TS: 100, Dur: 500, PID: 1,
			Args: map[string]string{"trace_id": "t-a", "span_id": "f1"}},
		{Name: "/stats", Cat: "request", Phase: "X", TS: 900, Dur: 10, PID: 1,
			Args: map[string]string{"trace_id": "t-b", "span_id": "f2"}},
	})
	// The node's tracer started 200µs later and also calls itself pid 1.
	node := mkTraceFile(t, 1_000_200, 1, "node0", []traceEvent{
		{Name: "/compile", Cat: "request", Phase: "X", TS: 50, Dur: 300, PID: 1,
			Args: map[string]string{"trace_id": "t-a", "span_id": "n1", "parent_id": "f1"}},
	})

	var buf bytes.Buffer
	if err := MergeTraces(&buf, "", front, node); err != nil {
		t.Fatal(err)
	}
	var merged traceFile
	if err := json.Unmarshal(buf.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.EpochMicros != 1_000_000 {
		t.Errorf("merged epoch = %d, want the earliest input's (1000000)", merged.EpochMicros)
	}
	var nodeSpan, frontSpan *traceEvent
	pids := map[int]bool{}
	for i := range merged.TraceEvents {
		ev := &merged.TraceEvents[i]
		pids[ev.PID] = true
		switch ev.Args["span_id"] {
		case "n1":
			nodeSpan = ev
		case "f1":
			frontSpan = ev
		}
	}
	if nodeSpan == nil || frontSpan == nil {
		t.Fatalf("merged trace lost spans: %s", buf.String())
	}
	// 50µs into a file whose epoch is 200µs later = 250µs on the merged line.
	if nodeSpan.TS != 250 {
		t.Errorf("node span ts = %d, want 250 (offset by epoch delta)", nodeSpan.TS)
	}
	if frontSpan.TS != 100 {
		t.Errorf("front span ts = %d, want 100 (earliest epoch shifts by 0)", frontSpan.TS)
	}
	if frontSpan.PID == nodeSpan.PID {
		t.Errorf("pid collision survived the merge: front %d, node %d", frontSpan.PID, nodeSpan.PID)
	}

	// Filtered to one request tree: t-b's span disappears, metadata stays.
	buf.Reset()
	if err := MergeTraces(&buf, "t-a", front, node); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `"f2"`) {
		t.Errorf("trace filter kept another request's span:\n%s", out)
	}
	if !strings.Contains(out, `"n1"`) || !strings.Contains(out, `"f1"`) {
		t.Errorf("trace filter dropped the requested tree:\n%s", out)
	}
	if !strings.Contains(out, "process_name") {
		t.Errorf("trace filter dropped process metadata:\n%s", out)
	}
}

// TestHTTPObsMiddleware pins the edge protocol: an invalid or missing
// X-Trace-Id is replaced with a minted one, a valid one is adopted, the
// response always carries the header back, the handler sees the identity
// through its context, and the access log gets one JSON line with the
// final status.
func TestHTTPObsMiddleware(t *testing.T) {
	var log bytes.Buffer
	rec := NewRecorder(8)
	o := &HTTPObs{
		Tracer:    NewTracer(),
		Recorder:  rec,
		AccessLog: &log,
	}
	var seen SpanContext
	h := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = SpanFromContext(r.Context())
		RecordFromContext(r.Context()).SetCache("hit")
		w.WriteHeader(http.StatusTeapot)
	}))

	// Adopted: valid incoming ID with a parent span.
	req := httptest.NewRequest("POST", "/compile", nil)
	req.Header.Set(HeaderTraceID, "t-incoming")
	req.Header.Set(HeaderSpanID, "s-parent")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(HeaderTraceID); got != "t-incoming" {
		t.Errorf("adopted trace = %q, want t-incoming", got)
	}
	if seen.Trace != "t-incoming" || seen.Span == "" {
		t.Errorf("handler saw span context %+v", seen)
	}

	// Minted: a log-injection attempt is discarded, not adopted.
	req = httptest.NewRequest("POST", "/compile", nil)
	req.Header.Set(HeaderTraceID, `evil" status=200`)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	minted := rr.Header().Get(HeaderTraceID)
	if minted == "" || !ValidTraceID(minted) {
		t.Errorf("minted trace = %q, want a fresh valid ID", minted)
	}

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), log.String())
	}
	var entry RequestRecord
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	if entry.TraceID != "t-incoming" || entry.Status != http.StatusTeapot ||
		entry.Path != "/compile" || entry.Cache != "hit" {
		t.Errorf("access log entry = %+v", entry)
	}
	if got := rec.ByTrace("t-incoming"); len(got) != 1 || got[0].Status != http.StatusTeapot {
		t.Errorf("flight recorder ByTrace = %+v", got)
	}
}

// TestHTTPObsClientGone pins the 499 convention: a handler that wrote
// nothing because the request context died is logged as 499, not 200.
func TestHTTPObsClientGone(t *testing.T) {
	var log bytes.Buffer
	o := &HTTPObs{AccessLog: &log}
	h := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Bail without writing, as a handler does when its budget expires.
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/run", nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var entry RequestRecord
	if err := json.Unmarshal(bytes.TrimSpace(log.Bytes()), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Status != StatusClientClosed {
		t.Errorf("status = %d, want %d", entry.Status, StatusClientClosed)
	}
}

func TestPropagateHeaders(t *testing.T) {
	h := http.Header{}
	PropagateHeaders(context.Background(), h)
	if len(h) != 0 {
		t.Errorf("traceless context set headers: %v", h)
	}
	ctx := ContextWithSpan(context.Background(), SpanContext{Trace: "t-1", Span: "s-1"})
	PropagateHeaders(ctx, h)
	if h.Get(HeaderTraceID) != "t-1" || h.Get(HeaderSpanID) != "s-1" {
		t.Errorf("propagated headers = %v", h)
	}
}

// TestQuantileFromBuckets pins the histogram_quantile-style interpolation
// shared by /stats and the tests that recompute quantiles from /metrics.
func TestQuantileFromBuckets(t *testing.T) {
	r := NewRegistry()
	hist := r.Histogram("llvm_q_seconds", []float64{0.001, 0.01, 0.1, 1})
	// 10 obs in (0, 1ms], 80 in (1ms, 10ms], 10 in (10ms, 100ms].
	for i := 0; i < 10; i++ {
		hist.Observe(0.0005)
	}
	for i := 0; i < 80; i++ {
		hist.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		hist.Observe(0.05)
	}
	bounds, cum := hist.Cumulative()
	p50 := QuantileFromBuckets(bounds, cum, 0.50)
	// Rank 50 of 100 lands mid-bucket (1ms, 10ms]: interpolated.
	if p50 <= 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within (0.001, 0.01]", p50)
	}
	if got := hist.Quantile(0.50); got != p50 {
		t.Errorf("Histogram.Quantile = %v, QuantileFromBuckets = %v; must agree", got, p50)
	}
	// A quantile landing in +Inf clamps to the highest finite bound.
	hist.Observe(10)
	bounds, cum = hist.Cumulative()
	if got := QuantileFromBuckets(bounds, cum, 1.0); got != 1 {
		t.Errorf("p100 in +Inf bucket = %v, want clamp to 1", got)
	}
}
