package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/workload"
)

// AliasRow is one benchmark's alias-analysis precision/overhead
// measurement: the standard pipeline with the whole-program points-to
// analysis feeding LICM/CSE/DSE versus the ablation arm where those
// passes run blind (NoAlias). WorkOn/WorkOff count applied optimization
// remarks from the three memory passes — the work the analysis buys —
// and the query tallies break down the answers the enabled arm got.
type AliasRow struct {
	Bench   string
	Classes int     // points-to object classes in the linked module
	Typed   float64 // Table-1 typed-access percent
	Off     time.Duration
	On      time.Duration
	WorkOff int // memory-pass applied remarks without alias info
	WorkOn  int // memory-pass applied remarks with alias info
	Queries dsa.QueryStats
}

// OverheadPercent is the analysis-enabled run's slowdown relative to the
// blind one (negative = the analysis paid for itself).
func (r AliasRow) OverheadPercent() float64 {
	if r.Off <= 0 {
		return 0
	}
	return (float64(r.On)/float64(r.Off) - 1) * 100
}

// aliasMemPasses is the set of passes whose applied remarks the table
// counts as alias-driven work.
var aliasMemPasses = map[string]bool{"cse": true, "licm": true, "dse": true}

// aliasPipeline builds the standard pipeline; when blind, the three
// memory passes run with their alias information disabled (CSE falls back
// to pure expression CSE, LICM to operand-invariance only, DSE off).
func aliasPipeline(blind bool) *passes.PassManager {
	pm := passes.NewPassManager()
	if !blind {
		return pm.AddStandardPipeline()
	}
	cse := passes.NewCSE()
	cse.NoAlias = true
	licm := passes.NewLICM()
	licm.NoAlias = true
	dse := passes.NewDSE()
	dse.NoAlias = true
	return pm.AddFunctionPass(
		passes.NewSROA(), passes.NewMem2Reg(), passes.NewInstCombine(),
		passes.NewSCCP(), cse, licm, dse, passes.NewADCE(), passes.NewSimplifyCFG())
}

// countMemRemarks tallies applied remarks from the memory passes.
func countMemRemarks(r *obs.Remarks) int {
	n := 0
	for _, rm := range r.Sorted() {
		if rm.Status == "applied" && aliasMemPasses[rm.Pass] {
			n++
		}
	}
	return n
}

// AliasTable measures, per benchmark, what the points-to analysis buys
// (applied memory-optimization remarks, blind vs informed) and what it
// costs (pipeline latency delta, best of obsRuns runs per arm). The blind
// arm runs first so warm-up favors the informed arm, keeping the overhead
// estimate conservative.
func AliasTable() ([]AliasRow, error) {
	return aliasTable(workload.Suite())
}

func aliasTable(progs []workload.Profile) ([]AliasRow, error) {
	var rows []AliasRow
	for _, p := range progs {
		raw, err := buildRaw(p)
		if err != nil {
			return nil, err
		}
		row := AliasRow{Bench: p.Name}

		pt := dsa.Analyze(raw)
		row.Classes = pt.NumClasses()
		row.Typed = pt.TypedPercent()

		for i := 0; i < obsRuns; i++ {
			m := core.CloneModule(raw)
			pm := aliasPipeline(true)
			pm.Remarks = obs.NewRemarks()
			t0 := time.Now()
			if _, err := pm.Run(m); err != nil {
				return nil, fmt.Errorf("%s blind: %w", p.Name, err)
			}
			if d := time.Since(t0); i == 0 || d < row.Off {
				row.Off = d
			}
			row.WorkOff = countMemRemarks(pm.Remarks)
		}
		for i := 0; i < obsRuns; i++ {
			m := core.CloneModule(raw)
			pm := aliasPipeline(false)
			pm.Remarks = obs.NewRemarks()
			before := dsa.Stats()
			t0 := time.Now()
			if _, err := pm.Run(m); err != nil {
				return nil, fmt.Errorf("%s informed: %w", p.Name, err)
			}
			if d := time.Since(t0); i == 0 || d < row.On {
				row.On = d
			}
			row.WorkOn = countMemRemarks(pm.Remarks)
			after := dsa.Stats()
			row.Queries = dsa.QueryStats{
				No:   after.No - before.No,
				May:  after.May - before.May,
				Must: after.Must - before.Must,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAliasTable renders the alias precision/overhead table.
func PrintAliasTable(w io.Writer, rows []AliasRow) {
	fmt.Fprintln(w, "Alias: memory-pass work and cost, points-to analysis off vs on")
	fmt.Fprintf(w, "%-14s %8s %8s %10s %10s %9s %22s\n",
		"Benchmark", "classes", "typed%", "work off", "work on", "cost%", "queries no/may/must")
	totOff, totOn := 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %7.1f%% %10d %10d %8.1f%% %22s\n",
			r.Bench, r.Classes, r.Typed, r.WorkOff, r.WorkOn, r.OverheadPercent(),
			fmt.Sprintf("%d/%d/%d", r.Queries.No, r.Queries.May, r.Queries.Must))
		totOff += r.WorkOff
		totOn += r.WorkOn
	}
	fmt.Fprintf(w, "%-14s %8s %8s %10d %10d\n", "total", "", "", totOff, totOn)
}
