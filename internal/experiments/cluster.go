package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/bytecode"
	"repro/internal/cluster"
	"repro/internal/lifelong"
	"repro/internal/workload"
)

// ClusterRow is one benchmark's compile latency through a 3-node
// in-process cluster, requested via the front-end. Cold is the first
// cluster-wide compile (routed to the owner, full pipeline). WarmLocal is
// the repeat through the front (owner cache hit). RemoteHit is a direct
// request to a NON-owning peer, which must fetch the artifact through
// from the owner rather than recompile.
type ClusterRow struct {
	Bench     string
	Bytes     int // artifact size
	Peers     int
	Owner     string // owning peer of the module's hash
	Cold      time.Duration
	WarmLocal time.Duration
	RemoteHit time.Duration
}

// WarmSpeedup is the warm-local-over-cold latency ratio.
func (r ClusterRow) WarmSpeedup() float64 {
	if r.WarmLocal <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.WarmLocal)
}

// RemoteSpeedup is the remote-hit-over-cold latency ratio: what peer
// fetch-through saves versus recompiling at the non-owner.
func (r ClusterRow) RemoteSpeedup() float64 {
	if r.RemoteHit <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.RemoteHit)
}

// clusterPost compiles canonical bytes at url and returns the artifact
// bytes plus the X-Cache disposition (miss, hit, remote).
func clusterPost(client *http.Client, url string, canonical []byte) (data []byte, xcache, peer string, err error) {
	resp, err := client.Post(url+"/compile?raw=1", "application/octet-stream", bytes.NewReader(canonical))
	if err != nil {
		return nil, "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", "", fmt.Errorf("POST %s: %s: %s", url, resp.Status, truncate(body, 200))
	}
	return body, resp.Header.Get("X-Cache"), resp.Header.Get("X-Cluster-Peer"), nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// ClusterTable launches a 3-node in-process cluster (stores under dir)
// and measures each benchmark's cold, warm-local, and remote-hit compile
// latency over the real wire protocol. All three responses must be
// byte-identical — the content-addressed store's invariant extended
// cluster-wide — and the remote request must report X-Cache: remote
// (fetch-through, not a recompile); violations are errors, not rows.
func ClusterTable(dir string) ([]ClusterRow, error) {
	lc, err := cluster.LaunchLocal(cluster.LocalOptions{
		Nodes: 3,
		Dir:   dir,
		Lifelong: lifelong.Config{
			DisableReopt: true, // latency table: keep background work out
		},
	})
	if err != nil {
		return nil, err
	}
	defer lc.Close()
	client := &http.Client{Timeout: 60 * time.Second}

	var rows []ClusterRow
	for _, p := range workload.Suite() {
		m, err := buildRaw(p)
		if err != nil {
			return nil, err
		}
		canonical, err := bytecode.Encode(m)
		if err != nil {
			return nil, err
		}
		hash := bytecode.HashBytes(canonical)
		owner := lc.Front.Ring().Owner(hash)
		var remoteURL string
		for _, n := range lc.Nodes {
			if n.Self() != owner {
				remoteURL = "http://" + n.Self()
				break
			}
		}

		t0 := time.Now()
		cold, cacheCold, peerCold, err := clusterPost(client, lc.FrontURL(), canonical)
		if err != nil {
			return nil, fmt.Errorf("%s cold: %w", p.Name, err)
		}
		coldDur := time.Since(t0)
		if peerCold != owner {
			return nil, fmt.Errorf("%s: front routed to %s, ring owner is %s", p.Name, peerCold, owner)
		}

		t1 := time.Now()
		warm, cacheWarm, _, err := clusterPost(client, lc.FrontURL(), canonical)
		if err != nil {
			return nil, fmt.Errorf("%s warm: %w", p.Name, err)
		}
		warmDur := time.Since(t1)
		if cacheWarm != "hit" {
			return nil, fmt.Errorf("%s: warm compile was %q, want owner cache hit (cold was %q)", p.Name, cacheWarm, cacheCold)
		}

		t2 := time.Now()
		remote, cacheRemote, _, err := clusterPost(client, remoteURL, canonical)
		if err != nil {
			return nil, fmt.Errorf("%s remote: %w", p.Name, err)
		}
		remoteDur := time.Since(t2)
		if cacheRemote != "remote" {
			return nil, fmt.Errorf("%s: non-owner compile was %q, want remote fetch-through", p.Name, cacheRemote)
		}
		if !bytes.Equal(cold, warm) || !bytes.Equal(cold, remote) {
			return nil, fmt.Errorf("%s: cluster artifacts not byte-identical across peers", p.Name)
		}

		rows = append(rows, ClusterRow{
			Bench: p.Name, Bytes: len(cold), Peers: len(lc.Nodes), Owner: owner,
			Cold: coldDur, WarmLocal: warmDur, RemoteHit: remoteDur,
		})
	}
	return rows, nil
}

// PrintClusterTable renders rows alongside the other evaluation tables.
func PrintClusterTable(w io.Writer, rows []ClusterRow) {
	fmt.Fprintf(w, "Cluster: compile latency through a 3-node sharded llvm-serve\n")
	fmt.Fprintf(w, "%-14s %10s %12s %12s %12s %7s %7s\n",
		"Benchmark", "Artifact", "Cold", "WarmLocal", "RemoteHit", "Warm x", "Rem x")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9dB %11.2fms %11.3fms %11.3fms %6.0fx %6.0fx\n",
			r.Bench, r.Bytes, ms(r.Cold), ms(r.WarmLocal), ms(r.RemoteHit),
			r.WarmSpeedup(), r.RemoteSpeedup())
	}
	fmt.Fprintf(w, "(cold = owner compile via front; warm = owner cache hit; remote = non-owner peer fetch-through)\n")
}
