package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/workload"
)

// ObsRow is one benchmark's observability-overhead measurement: the same
// standard pipeline over the same module with observability fully off
// (nil tracer/remarks/metrics — the zero-allocation path) and fully on.
// Spans and Remarks report what the instrumented run captured, grounding
// the overhead number in the volume of telemetry bought.
type ObsRow struct {
	Bench   string
	Off     time.Duration
	On      time.Duration
	Spans   int
	Remarks int
}

// OverheadPercent is the instrumented run's slowdown relative to the
// uninstrumented one (negative = noise).
func (r ObsRow) OverheadPercent() float64 {
	if r.Off <= 0 {
		return 0
	}
	return (float64(r.On)/float64(r.Off) - 1) * 100
}

// obsRuns is how many times each arm runs; the row reports the fastest,
// which is the standard way to strip scheduler noise from a
// single-process latency comparison.
const obsRuns = 3

// ObsTable measures tracing-off vs tracing-on pipeline latency per
// benchmark. Both arms see identical inputs (the raw module is cloned
// before each run), each arm reports the best of obsRuns runs, and the
// uninstrumented arm goes first, so warm-up favors the instrumented
// side — the overhead estimate is conservative.
func ObsTable() ([]ObsRow, error) {
	var rows []ObsRow
	for _, p := range workload.Suite() {
		raw, err := buildRaw(p)
		if err != nil {
			return nil, err
		}

		var offDur, onDur time.Duration
		var spans, remarks int
		for i := 0; i < obsRuns; i++ {
			off := core.CloneModule(raw)
			pmOff := passes.NewPassManager().AddStandardPipeline()
			t0 := time.Now()
			if _, err := pmOff.Run(off); err != nil {
				return nil, fmt.Errorf("%s off: %w", p.Name, err)
			}
			if d := time.Since(t0); i == 0 || d < offDur {
				offDur = d
			}
		}
		for i := 0; i < obsRuns; i++ {
			on := core.CloneModule(raw)
			pmOn := passes.NewPassManager().AddStandardPipeline()
			pmOn.Tracer = obs.NewTracer()
			pmOn.Remarks = obs.NewRemarks()
			pmOn.Metrics = obs.NewRegistry()
			t1 := time.Now()
			if _, err := pmOn.Run(on); err != nil {
				return nil, fmt.Errorf("%s on: %w", p.Name, err)
			}
			if d := time.Since(t1); i == 0 || d < onDur {
				onDur = d
			}
			spans, remarks = pmOn.Tracer.Len(), pmOn.Remarks.Len()
		}

		rows = append(rows, ObsRow{
			Bench: p.Name, Off: offDur, On: onDur,
			Spans: spans, Remarks: remarks,
		})
	}
	return rows, nil
}

// PrintObsTable renders rows alongside the other evaluation tables.
func PrintObsTable(w io.Writer, rows []ObsRow) {
	fmt.Fprintf(w, "Obs: standard-pipeline latency with observability off vs on\n")
	fmt.Fprintf(w, "%-14s %12s %12s %10s %8s %9s\n",
		"Benchmark", "Off", "On", "Overhead", "Spans", "Remarks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %11.3fms %11.3fms %9.1f%% %8d %9d\n",
			r.Bench, ms(r.Off), ms(r.On), r.OverheadPercent(), r.Spans, r.Remarks)
	}
}
