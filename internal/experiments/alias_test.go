package experiments

import (
	"testing"

	"repro/internal/workload"
)

// TestAliasBuysOptimizationWork pins the PR's acceptance criterion: with
// the points-to analysis feeding the memory passes, the pipeline applies
// strictly more memory optimizations across the suite subset than the
// blind ablation, and never fewer on any individual benchmark.
func TestAliasBuysOptimizationWork(t *testing.T) {
	var subset []workload.Profile
	for _, name := range []string{"176.gcc", "177.mesa", "188.ammp", "197.parser", "254.gap"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		subset = append(subset, p)
	}
	rows, err := aliasTable(subset)
	if err != nil {
		t.Fatal(err)
	}
	totOff, totOn := 0, 0
	for _, r := range rows {
		if r.WorkOn < r.WorkOff {
			t.Errorf("%s: alias info lost work: %d applied blind vs %d informed", r.Bench, r.WorkOff, r.WorkOn)
		}
		if r.Queries.Total() == 0 {
			t.Errorf("%s: informed arm issued no alias queries", r.Bench)
		}
		totOff += r.WorkOff
		totOn += r.WorkOn
	}
	if totOn <= totOff {
		t.Errorf("points-to analysis bought no extra optimization work: %d blind vs %d informed", totOff, totOn)
	}
}
