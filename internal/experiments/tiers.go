package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/workload"
)

// TiersRow is one benchmark's execution-tier ablation: the same linked,
// optimized module run to completion by the tree-walking interpreter
// (tier 0), the baseline slot machine (tier 1), the optimizing
// register-allocated tier (tier 2), and the auto policy seeded with a
// prior run's profile — the lifelong configuration, where functions hot
// last run start directly at tier 2. Steps is the architecture-neutral
// instruction count, identical across tiers by construction; the row
// records it once as the work each arm performed.
type TiersRow struct {
	Bench  string
	Interp time.Duration // tier 0
	T1     time.Duration // tier 1
	T2     time.Duration // tier 2
	Auto   time.Duration // auto with a seeded profile
	Steps  int64
	Exit   int64
}

// T2OverT1 is tier 2's speedup over tier 1 (>1 = faster).
func (r TiersRow) T2OverT1() float64 {
	if r.T2 <= 0 {
		return 0
	}
	return float64(r.T1) / float64(r.T2)
}

// tierRuns is how many times each arm runs; like ObsTable, the row
// reports the fastest to strip scheduler noise.
const tierRuns = 3

// tiersMaxSteps bounds each arm; the suite's programs finish far below
// it, so hitting the budget indicates an engine bug, not a slow bench.
const tiersMaxSteps = 200_000_000

// TiersTable measures end-to-end execution latency per tier over each
// benchmark. All arms of a benchmark share one module object and one
// translation cache, so tier-1/tier-2 timings are steady-state execution
// (translation happens once, on each arm's first of tierRuns runs) — the
// comparison the paper's runtime-optimizer design targets, where
// translations persist across invocations. Exit codes must agree across
// arms; a mismatch fails the table rather than reporting a bogus win.
func TiersTable() ([]TiersRow, error) {
	var rows []TiersRow
	for _, p := range workload.Suite() {
		m, err := Build(p)
		if err != nil {
			return nil, err
		}
		prog := interp.NewProgram(m)

		// One auto profiling run gathers the block counts that seed the
		// measured auto arm, standing in for a previous day's run.
		seed, exit0, steps, err := tierProfileRun(m, prog)
		if err != nil {
			return nil, fmt.Errorf("%s: profiling run: %w", p.Name, err)
		}

		row := TiersRow{Bench: p.Name, Steps: steps, Exit: exit0}
		arms := []struct {
			dur    *time.Duration
			policy interp.TierPolicy
			seed   map[string][]int64
		}{
			{&row.Interp, interp.TierInterp, nil},
			{&row.T1, interp.TierBaseline, nil},
			{&row.T2, interp.TierOpt, nil},
			{&row.Auto, interp.TierAuto, seed},
		}
		for _, arm := range arms {
			for i := 0; i < tierRuns; i++ {
				d, exit, err := tierRun(m, prog, arm.policy, arm.seed)
				if err != nil {
					return nil, fmt.Errorf("%s tier %s: %w", p.Name, arm.policy, err)
				}
				if exit != exit0 {
					return nil, fmt.Errorf("%s tier %s: exit %d, want %d", p.Name, arm.policy, exit, exit0)
				}
				if i == 0 || d < *arm.dur {
					*arm.dur = d
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// tierProfileRun executes m once under the auto policy with engine
// profiling on, returning the per-function block counts, exit code, and
// step count that anchor the benchmark's other arms.
func tierProfileRun(m *core.Module, prog *interp.Program) (map[string][]int64, int64, int64, error) {
	mc, err := newTierMachine(m, prog, interp.TierAuto)
	if err != nil {
		return nil, 0, 0, err
	}
	mc.EnableProfile()
	exit, err := runToExit(mc)
	if err != nil {
		return nil, 0, 0, err
	}
	return mc.BlockCounts(), exit, mc.Steps, nil
}

// tierRun times one execution of m at the given policy.
func tierRun(m *core.Module, prog *interp.Program, policy interp.TierPolicy, seed map[string][]int64) (time.Duration, int64, error) {
	mc, err := newTierMachine(m, prog, policy)
	if err != nil {
		return 0, 0, err
	}
	if seed != nil {
		mc.SeedProfile(seed)
	}
	// Machine setup allocates the whole sandbox stack; collect that debt
	// now so no GC triggered by setup garbage lands inside the timed
	// window (the runs themselves allocate almost nothing).
	runtime.GC()
	t0 := time.Now()
	exit, err := runToExit(mc)
	return time.Since(t0), exit, err
}

func newTierMachine(m *core.Module, prog *interp.Program, policy interp.TierPolicy) (*interp.Machine, error) {
	mc, err := interp.NewMachine(m, io.Discard)
	if err != nil {
		return nil, err
	}
	mc.SetTier(policy)
	mc.MaxSteps = tiersMaxSteps
	if err := mc.AttachProgram(prog); err != nil {
		return nil, err
	}
	return mc, nil
}

func runToExit(mc *interp.Machine) (int64, error) {
	v, err := mc.RunMain()
	if err != nil {
		var ee *interp.ExitError
		if errors.As(err, &ee) {
			return ee.Code, nil
		}
		return 0, err
	}
	return v, nil
}

// PrintTiersTable renders the per-tier latencies with tier 2's speedup
// over tiers 0 and 1 and the geomean speedups the acceptance bar tracks.
func PrintTiersTable(w io.Writer, rows []TiersRow) {
	fmt.Fprintf(w, "Tiers: end-to-end execution latency per tier (best of %d; shared translations)\n", tierRuns)
	fmt.Fprintf(w, "%-14s %11s %11s %11s %11s %9s %9s %12s\n",
		"Benchmark", "interp", "tier1", "tier2", "auto+prof", "t2/t0", "t2/t1", "steps")
	var logT0, logT1 float64
	for _, r := range rows {
		overT0 := float64(r.Interp) / float64(r.T2)
		overT1 := r.T2OverT1()
		logT0 += math.Log(overT0)
		logT1 += math.Log(overT1)
		fmt.Fprintf(w, "%-14s %9.3fms %9.3fms %9.3fms %9.3fms %8.2fx %8.2fx %12d\n",
			r.Bench, ms(r.Interp), ms(r.T1), ms(r.T2), ms(r.Auto), overT0, overT1, r.Steps)
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-14s %11s %11s %11s %11s %8.2fx %8.2fx   (geomean)\n",
			"geomean", "", "", "", "", math.Exp(logT0/n), math.Exp(logT1/n))
	}
}

// TiersGeomeanT2OverT1 is the geometric-mean tier-2-over-tier-1 speedup,
// the number the repo's perf bar is stated against.
func TiersGeomeanT2OverT1(rows []TiersRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += math.Log(r.T2OverT1())
	}
	return math.Exp(sum / float64(len(rows)))
}
