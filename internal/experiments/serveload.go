package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/bytecode"
	"repro/internal/cluster"
	"repro/internal/lifelong"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ServeLoadRow is one open-loop load run against the serving layer: a
// fixed arrival rate held for a duration, with latency quantiles measured
// from each request's *scheduled* arrival time. Open-loop is the honest
// protocol for a server benchmark: arrivals keep coming whether or not
// earlier requests finished, so a stalled server accumulates latency in
// the tail instead of silently slowing the generator down (the
// coordinated-omission trap a closed request loop falls into).
type ServeLoadRow struct {
	Endpoint string // "/compile" or "/run"
	RateRPS  float64
	Duration time.Duration

	Sent     int
	OK       int
	Rejected int // 503: the worker pool refused under its request budget
	Failed   int // transport errors and unexpected statuses

	DedupFollower int // responses marked X-Dedup: follower
	CacheHit      int // X-Cache: hit
	CacheRemote   int // X-Cache: remote (fetch-through at a non-owner)
	CacheMiss     int // X-Cache: miss

	P50, P95, P99, Max time.Duration
	Throughput         float64 // completed-OK per second of the run
}

// ServeLoadResult bundles the load rows with the serving-layer
// observability overhead: the same open-loop run against a daemon with
// tracing + access log + flight recorder fully on versus one with every
// optional layer off, compared at p50.
type ServeLoadResult struct {
	Rows []ServeLoadRow

	ObsOffP50, ObsOnP50 time.Duration
	ObsOverheadPercent  float64
}

// loadStats accumulates one open-loop run.
type loadStats struct {
	mu    sync.Mutex
	lats  []time.Duration
	ok    int
	rej   int
	fail  int
	dedup int
	cache map[string]int
}

// openLoop drives url at a fixed arrival rate for dur, POSTing body each
// arrival. Latency is measured from the scheduled arrival tick, so queue
// time a saturated server imposes is charged to the server, not hidden.
func openLoop(client *http.Client, url string, body []byte, rate float64, dur time.Duration) *loadStats {
	st := &loadStats{cache: map[string]int{}}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		scheduled := now
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
			lat := time.Since(scheduled)
			st.mu.Lock()
			defer st.mu.Unlock()
			if err != nil {
				st.fail++
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			st.lats = append(st.lats, lat)
			switch {
			case resp.StatusCode == http.StatusOK:
				st.ok++
				if c := resp.Header.Get("X-Cache"); c != "" {
					st.cache[c]++
				}
				if resp.Header.Get("X-Dedup") == "follower" {
					st.dedup++
				}
			case resp.StatusCode == http.StatusServiceUnavailable:
				st.rej++
			default:
				st.fail++
			}
		}()
	}
	wg.Wait()
	sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
	return st
}

// quantile reads the q-th latency from a sorted sample (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func (st *loadStats) row(endpoint string, rate float64, dur time.Duration) ServeLoadRow {
	r := ServeLoadRow{
		Endpoint: endpoint, RateRPS: rate, Duration: dur,
		Sent: st.ok + st.rej + st.fail, OK: st.ok, Rejected: st.rej, Failed: st.fail,
		DedupFollower: st.dedup,
		CacheHit:      st.cache["hit"], CacheRemote: st.cache["remote"], CacheMiss: st.cache["miss"],
		P50: quantile(st.lats, 0.50), P95: quantile(st.lats, 0.95), P99: quantile(st.lats, 0.99),
	}
	if n := len(st.lats); n > 0 {
		r.Max = st.lats[n-1]
	}
	if secs := dur.Seconds(); secs > 0 {
		r.Throughput = float64(st.ok) / secs
	}
	return r
}

// ServeLoadTable launches a 3-node in-process cluster behind its front and
// drives it open-loop:
//
//   - one /compile row per arrival rate (warm path: the module is compiled
//     once up front, so the steady state is owner cache hits through the
//     front — the latency story the cluster sells);
//   - one /run saturation row at satRate against a deliberately small
//     worker pool, showing overload degrading to fast 503 refusals
//     instead of unbounded queueing;
//   - an off-vs-on observability arm on a standalone daemon, pricing the
//     tracing + access-log + recorder layer at p50.
//
// dir hosts the per-node stores. Rates are arrivals per second; dur is
// each row's run length.
func ServeLoadTable(dir string, rates []float64, dur time.Duration, satRate float64) (*ServeLoadResult, error) {
	lc, err := cluster.LaunchLocal(cluster.LocalOptions{
		Nodes: 3,
		Dir:   filepath.Join(dir, "load"),
		Lifelong: lifelong.Config{
			DisableReopt:   true,
			Workers:        4,
			RequestTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		return nil, err
	}
	defer lc.Close()
	client := loadClient()

	p := workload.Suite()[0]
	m, err := buildRaw(p)
	if err != nil {
		return nil, err
	}
	canonical, err := bytecode.Encode(m)
	if err != nil {
		return nil, err
	}
	// Warm the owner once: the measured rows are the cluster's steady
	// state, not its first-ever compile.
	if _, _, _, err := clusterPost(client, lc.FrontURL(), canonical); err != nil {
		return nil, fmt.Errorf("serve-load warmup: %w", err)
	}

	res := &ServeLoadResult{}
	for _, rate := range rates {
		st := openLoop(client, lc.FrontURL()+"/compile?raw=1", canonical, rate, dur)
		res.Rows = append(res.Rows, st.row("/compile", rate, dur))
	}

	// Saturation arm: a 1-worker node under a tight request budget, driven
	// past its capacity on /run (real execution work per request). The row
	// proves the degradation mode: excess arrivals get fast 503s.
	satLC, err := cluster.LaunchLocal(cluster.LocalOptions{
		Nodes: 1,
		Dir:   filepath.Join(dir, "sat"),
		Lifelong: lifelong.Config{
			DisableReopt:   true,
			Workers:        1,
			RequestTimeout: 50 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	defer satLC.Close()
	satDur := dur
	if satDur > 2*time.Second {
		satDur = 2 * time.Second
	}
	st := openLoop(client, satLC.NodeURLs()[0]+"/run", canonical, satRate, satDur)
	res.Rows = append(res.Rows, st.row("/run", satRate, satDur))

	// Observability overhead arm: identical standalone daemons, identical
	// open-loop runs; one with the full new layer on (tracer + access log
	// + flight recorder), one with everything optional off. The recorder
	// runs in both (it is always on by design); what is priced here is the
	// optional layer an operator can toggle.
	offP50, onP50, err := serveObsOverhead(dir, canonical, dur)
	if err != nil {
		return nil, err
	}
	res.ObsOffP50, res.ObsOnP50 = offP50, onP50
	if offP50 > 0 {
		res.ObsOverheadPercent = (float64(onP50)/float64(offP50) - 1) * 100
	}
	return res, nil
}

// serveObsOverhead prices the serving-layer observability at p50: two
// standalone daemons over the same warmed module, one with the optional
// layer on (tracer + access log) and one with it off, each driven at a
// rate well under capacity so the comparison measures per-request cost,
// not queueing. The off/on runs alternate for several passes and each
// side keeps its best (minimum) p50 — the standard defense against
// one-sided warmup and scheduler noise in an A/B latency comparison.
func serveObsOverhead(dir string, canonical []byte, dur time.Duration) (off, on time.Duration, err error) {
	const rate = 100.0
	const passes = 3
	if dur > time.Second {
		dur = time.Second
	}
	launch := func(name string, enable bool) (*httptest.Server, func(), error) {
		store, err := lifelong.Open(filepath.Join(dir, name), 256<<20)
		if err != nil {
			return nil, nil, err
		}
		cfg := lifelong.Config{Store: store, DisableReopt: true}
		if enable {
			cfg.Tracer = obs.NewTracer()
			cfg.AccessLog = io.Discard
		}
		srv := lifelong.NewServer(cfg)
		ts := httptest.NewServer(srv.Handler())
		return ts, func() { ts.Close(); srv.Close() }, nil
	}
	offTS, offClose, err := launch("obs-off", false)
	if err != nil {
		return 0, 0, err
	}
	defer offClose()
	onTS, onClose, err := launch("obs-on", true)
	if err != nil {
		return 0, 0, err
	}
	defer onClose()
	client := loadClient()
	for _, ts := range []*httptest.Server{offTS, onTS} {
		if _, _, _, err := clusterPost(client, ts.URL, canonical); err != nil {
			return 0, 0, err
		}
	}
	best := func(cur, got time.Duration) time.Duration {
		if cur == 0 || (got > 0 && got < cur) {
			return got
		}
		return cur
	}
	for i := 0; i < passes; i++ {
		st := openLoop(client, offTS.URL+"/compile?raw=1", canonical, rate, dur)
		off = best(off, quantile(st.lats, 0.50))
		st = openLoop(client, onTS.URL+"/compile?raw=1", canonical, rate, dur)
		on = best(on, quantile(st.lats, 0.50))
	}
	return off, on, nil
}

// loadClient builds the generator's HTTP client: the default transport's
// two idle connections per host would force connection churn at load and
// charge TCP setup to the server's latency, so the pool is widened to
// cover the generator's in-flight fan-out.
func loadClient() *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     30 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 10 * time.Second}
}

// PrintServeLoadTable renders the open-loop load rows alongside the other
// evaluation tables.
func PrintServeLoadTable(w io.Writer, res *ServeLoadResult) {
	fmt.Fprintf(w, "ServeLoad: open-loop arrival rates against the 3-node cluster front\n")
	fmt.Fprintf(w, "%-9s %7s %6s %5s %5s %5s %9s %9s %9s %9s %7s\n",
		"Endpoint", "Rate", "Sent", "OK", "503", "Fail", "p50", "p95", "p99", "max", "Thru")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-9s %6.0f/s %6d %5d %5d %5d %8.2fms %8.2fms %8.2fms %8.2fms %5.0f/s\n",
			r.Endpoint, r.RateRPS, r.Sent, r.OK, r.Rejected, r.Failed,
			ms(r.P50), ms(r.P95), ms(r.P99), ms(r.Max), r.Throughput)
	}
	fmt.Fprintf(w, "(warm /compile via front: owner cache hits; /run row drives a 1-worker node past capacity)\n")
	fmt.Fprintf(w, "serving-layer observability: p50 off %.3fms, on %.3fms (%+.1f%%)\n",
		ms(res.ObsOffP50), ms(res.ObsOnP50), res.ObsOverheadPercent)
}
