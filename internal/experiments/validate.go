package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/passes"
	"repro/internal/validate"
	"repro/internal/workload"
)

// ValidateRow is one benchmark's translation-validation overhead
// measurement: the standard pipeline over the same module with the oracle
// off (the plain FailFast path, no snapshots) and on (per-pass snapshot
// isolation plus the equivalence check). The verdict tallies ground the
// overhead number in the proof work bought — and double as a standing
// soundness check: a confirmed miscompile of a real pass on a real
// workload would surface here as a benchmark error.
type ValidateRow struct {
	Bench string
	Off   time.Duration
	On    time.Duration
	// Equivalent and Inconclusive count validated pass runs by verdict;
	// passes that made no changes are not validated and appear in neither.
	Equivalent   int
	Inconclusive int
	// Probes is the total number of differential test vectors executed.
	Probes int
}

// OverheadPercent is the validated run's slowdown relative to the
// unvalidated one.
func (r ValidateRow) OverheadPercent() float64 {
	if r.Off <= 0 {
		return 0
	}
	return (float64(r.On)/float64(r.Off) - 1) * 100
}

// validateRuns is how many times each arm runs; the row reports the
// fastest, matching the obs table's convention.
const validateRuns = 3

// ValidateTable measures oracle-off vs oracle-on pipeline latency per
// benchmark. Both arms see identical inputs (the raw module is cloned
// before each run), each arm reports the best of validateRuns runs, and
// the unvalidated arm goes first so warm-up favors the validated side —
// the overhead estimate is conservative. A Miscompile verdict on any real
// pass is a hard error: the oracle's zero-false-confirms discipline is
// part of what this table certifies.
func ValidateTable() ([]ValidateRow, error) {
	var rows []ValidateRow
	for _, p := range workload.Suite() {
		raw, err := buildRaw(p)
		if err != nil {
			return nil, err
		}

		var offDur, onDur time.Duration
		var equivalent, inconclusive, probes int
		for i := 0; i < validateRuns; i++ {
			off := core.CloneModule(raw)
			pmOff := passes.NewPassManager().AddStandardPipeline()
			t0 := time.Now()
			if _, err := pmOff.Run(off); err != nil {
				return nil, fmt.Errorf("%s off: %w", p.Name, err)
			}
			if d := time.Since(t0); i == 0 || d < offDur {
				offDur = d
			}
		}
		for i := 0; i < validateRuns; i++ {
			on := core.CloneModule(raw)
			pmOn := passes.NewPassManager().AddStandardPipeline()
			pmOn.Validator = validate.Default()
			t1 := time.Now()
			if _, err := pmOn.Run(on); err != nil {
				return nil, fmt.Errorf("%s on: %w", p.Name, err)
			}
			if d := time.Since(t1); i == 0 || d < onDur {
				onDur = d
			}
			equivalent, inconclusive, probes = 0, 0, 0
			for _, r := range pmOn.Results {
				v := r.Validation
				if v == nil {
					continue
				}
				probes += v.Probes
				switch v.Verdict {
				case validate.Equivalent:
					equivalent++
				case validate.Inconclusive:
					inconclusive++
				case validate.Miscompile:
					return nil, fmt.Errorf("%s: oracle confirmed a miscompile of real pass %q: %s",
						p.Name, r.Pass, v.Summary())
				}
			}
		}

		rows = append(rows, ValidateRow{
			Bench: p.Name, Off: offDur, On: onDur,
			Equivalent: equivalent, Inconclusive: inconclusive, Probes: probes,
		})
	}
	return rows, nil
}

// PrintValidateTable renders rows alongside the other evaluation tables.
func PrintValidateTable(w io.Writer, rows []ValidateRow) {
	fmt.Fprintf(w, "Validate: standard-pipeline latency with the translation-validation oracle off vs on\n")
	fmt.Fprintf(w, "%-14s %12s %12s %10s %6s %8s %7s\n",
		"Benchmark", "Off", "On", "Overhead", "Equiv", "Inconcl", "Probes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %11.3fms %11.3fms %9.1f%% %6d %8d %7d\n",
			r.Bench, ms(r.Off), ms(r.On), r.OverheadPercent(),
			r.Equivalent, r.Inconclusive, r.Probes)
	}
}
