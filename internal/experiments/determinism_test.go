package experiments

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/tooling"
	"repro/internal/workload"
)

// determinismModules collects every example module plus two linked workload
// programs (one pool-allocator-heavy, to exercise the untyped paths), as
// (name, loader) pairs. Loaders return a fresh module each call so the two
// sides of a comparison never share IR objects.
func determinismModules(t *testing.T) map[string]func(t *testing.T) *core.Module {
	t.Helper()
	mods := map[string]func(t *testing.T) *core.Module{}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.ll"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example modules found")
	}
	for _, path := range paths {
		path := path
		mods[filepath.Base(filepath.Dir(path))+"/"+filepath.Base(path)] = func(t *testing.T) *core.Module {
			m, err := tooling.LoadModule(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			return m
		}
	}
	for _, name := range []string{"164.gzip", "197.parser"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		mods["workload/"+name] = func(t *testing.T) *core.Module {
			m, err := Build(p)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	return mods
}

func renderDiags(ds []diag.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}

func renderRemarks(t *testing.T, r *obs.Remarks) string {
	t.Helper()
	var b bytes.Buffer
	if err := obs.WriteRemarksText(&b, r.Sorted()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestAliasDeterminismAcrossParallelism is the satellite-3 golden: over
// every example module and two linked workload programs, diagnostics,
// optimization remarks, and serialized points-to summaries must be
// byte-identical at -j1 and -j8.
func TestAliasDeterminismAcrossParallelism(t *testing.T) {
	for name, load := range determinismModules(t) {
		name, load := name, load
		t.Run(name, func(t *testing.T) {
			// Checker diagnostics: worker count must not reorder or change
			// a single byte.
			var diags [2]string
			for i, jobs := range []int{1, 8} {
				c := checker.New()
				c.Parallelism = jobs
				rep, err := c.Check(load(t))
				if err != nil {
					t.Fatalf("check -j%d: %v", jobs, err)
				}
				diags[i] = renderDiags(rep.Diags)
			}
			if diags[0] != diags[1] {
				t.Errorf("diagnostics differ between -j1 and -j8:\n<<<<\n%s====\n%s>>>>", diags[0], diags[1])
			}

			// Standard pipeline: remark stream and transformed module must
			// be byte-identical at any worker count.
			var remarks, printed [2]string
			for i, jobs := range []int{1, 8} {
				m := load(t)
				pm := passes.NewPassManager()
				pm.Parallelism = jobs
				pm.Remarks = obs.NewRemarks()
				pm.AddStandardPipeline()
				if _, err := pm.Run(m); err != nil {
					t.Fatalf("pipeline -j%d: %v", jobs, err)
				}
				remarks[i] = renderRemarks(t, pm.Remarks)
				printed[i] = m.String()
			}
			if remarks[0] != remarks[1] {
				t.Errorf("remarks differ between -j1 and -j8:\n<<<<\n%s====\n%s>>>>", remarks[0], remarks[1])
			}
			if printed[0] != printed[1] {
				t.Error("transformed module differs between -j1 and -j8")
			}

			// Summary encoding: two independent analyses of fresh parses
			// serialize to the same bytes (the store's reuse contract).
			ma, mb := load(t), load(t)
			ea := dsa.Analyze(ma).Encode(ma)
			eb := dsa.Analyze(mb).Encode(mb)
			if !bytes.Equal(ea, eb) {
				t.Errorf("summary encodings differ across fresh analyses (%d vs %d bytes)", len(ea), len(eb))
			}
		})
	}
}

// TestUseAfterFreeSitesMayAliasFreeSites cross-validates the checker
// against the alias analysis: every use-after-free site the checker
// reports must be May- (or Must-) alias with at least one free site in the
// same function — a checker claim the alias analysis calls No-alias would
// mean one of the two is wrong.
func TestUseAfterFreeSitesMayAliasFreeSites(t *testing.T) {
	checked := 0
	for name, load := range determinismModules(t) {
		m := load(t)
		rep, err := checker.New().Check(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pt := dsa.Analyze(m)
		for _, d := range rep.Diags {
			if d.Kind != checker.KindUseAfterFree {
				continue
			}
			inst := findInst(m, d.Pos)
			if inst == nil {
				t.Errorf("%s: diagnostic position %v matches no instruction", name, d.Pos)
				continue
			}
			ptr := accessedPointer(inst)
			if ptr == nil {
				t.Errorf("%s: use-after-free at non-memory instruction %v", name, d.Pos)
				continue
			}
			f := m.Func(d.Pos.Fn)
			frees := collectFrees(f)
			if len(frees) == 0 {
				t.Errorf("%s: use-after-free in %%%s but the function has no free", name, d.Pos.Fn)
				continue
			}
			aliased := false
			for _, fr := range frees {
				if pt.Alias(ptr, fr.Ptr()) != dsa.NoAlias {
					aliased = true
					break
				}
			}
			if !aliased {
				t.Errorf("%s: %v: checker says use-after-free but alias analysis says No-alias with every free site", name, d.Pos)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no use-after-free diagnostics found; cross-validation exercised nothing")
	}
}

// findInst locates the instruction a diagnostic position names.
func findInst(m *core.Module, pos diag.Pos) core.Instruction {
	f := m.Func(pos.Fn)
	if f == nil {
		return nil
	}
	for _, b := range f.Blocks {
		if pos.Block != "" && b.Name() != pos.Block {
			continue
		}
		for _, inst := range b.Instrs {
			if core.InstDebugString(inst) == pos.Inst {
				return inst
			}
		}
	}
	return nil
}

// accessedPointer returns the pointer operand a memory diagnostic is about.
func accessedPointer(inst core.Instruction) core.Value {
	switch x := inst.(type) {
	case *core.LoadInst:
		return x.Ptr()
	case *core.StoreInst:
		return x.Ptr()
	case *core.FreeInst:
		return x.Ptr()
	case *core.VAArgInst:
		return x.List()
	}
	return nil
}

func collectFrees(f *core.Function) []*core.FreeInst {
	var out []*core.FreeInst
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if fr, ok := inst.(*core.FreeInst); ok {
				out = append(out, fr)
			}
		}
	}
	return out
}
