// Package experiments regenerates the paper's evaluation (§4): Table 1
// (provably-typed loads and stores), Table 2 (interprocedural optimization
// timings against a baseline full compilation), and Figure 5 (executable
// sizes for LLVM bytecode vs CISC and RISC native images), over the
// synthetic SPEC CPU2000 analogues from internal/workload. The same code
// drives cmd/llvm-bench and the root bench_test.go harness.
package experiments

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"repro/internal/bytecode"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/frontend/minic"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/workload"
)

// Build compiles a benchmark's translation units, links them, internalizes
// (whole-program assumption, as the paper's link-time optimizer may), and
// runs the compile-time scalar pipeline. The result is the module the
// experiments measure.
func Build(p workload.Profile) (*core.Module, error) {
	prog := workload.Generate(p)
	mods := make([]*core.Module, 0, len(prog.Units))
	for i, src := range prog.Units {
		m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
		if err != nil {
			return nil, fmt.Errorf("%s unit %d: %w", p.Name, i, err)
		}
		// Compile-time per-unit optimization (§3.2 step 3).
		pm := passes.NewPassManager()
		pm.AddStandardPipeline()
		if _, err := pm.Run(m); err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	linked, err := linker.Link(p.Name, mods...)
	if err != nil {
		return nil, err
	}
	passes.NewInternalize().RunOnModule(linked)
	if err := core.Verify(linked); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return linked, nil
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Row is one benchmark's typed-access result.
type Table1Row struct {
	Bench   string
	Typed   int
	Untyped int
	Percent float64
}

// Table1 computes provably-typed loads and stores per benchmark.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range workload.Suite() {
		m, err := Build(p)
		if err != nil {
			return nil, err
		}
		r := dsa.Analyze(m)
		rows = append(rows, Table1Row{
			Bench: p.Name, Typed: r.Typed(), Untyped: r.Untyped(), Percent: r.TypedPercent(),
		})
	}
	return rows, nil
}

// PrintTable1 renders rows in the paper's format.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Loads and Stores which are provably typed\n")
	fmt.Fprintf(w, "%-14s %8s %10s %8s\n", "Benchmark", "Typed", "Untyped", "Typed%")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10d %7.2f%%\n", r.Bench, r.Typed, r.Untyped, r.Percent)
		sum += r.Percent
	}
	fmt.Fprintf(w, "%-14s %8s %10s %7.2f%%   (paper: 68.04%%)\n", "average", "", "", sum/float64(len(rows)))
}

// ---------------------------------------------------------------------------
// Table 2

// Table2Row is one benchmark's interprocedural-optimization timing.
type Table2Row struct {
	Bench string
	// Pass times.
	DGE, DAE, Inline time.Duration
	// Baseline is a full per-unit compilation of the same program
	// (front-end + scalar opts + native code generation), the stand-in
	// for the paper's "GCC -O3 compile time" column.
	Baseline time.Duration
	// Work done, for the paper's scaling observations.
	DGEDeleted  int
	DAEDeleted  int
	NumInlined  int
	FuncDeleted int
}

// Table2 times DGE, DAE, and inline at link time on each benchmark,
// against the baseline full-compilation time.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, p := range workload.Suite() {
		row := Table2Row{Bench: p.Name}

		// Each pass runs on a fresh linked module, like the paper's
		// standalone timings.
		{
			m, err := Build(p)
			if err != nil {
				return nil, err
			}
			dge := passes.NewDeadGlobalElim()
			start := time.Now()
			dge.RunOnModule(m)
			row.DGE = time.Since(start)
			row.DGEDeleted = dge.NumFuncs + dge.NumGlobals
		}
		{
			m, err := Build(p)
			if err != nil {
				return nil, err
			}
			dae := passes.NewDeadArgElim()
			start := time.Now()
			dae.RunOnModule(m)
			row.DAE = time.Since(start)
			row.DAEDeleted = dae.NumArgs + dae.NumRets
		}
		{
			m, err := Build(p)
			if err != nil {
				return nil, err
			}
			inl := passes.NewInline(passes.DefaultInlineThreshold)
			start := time.Now()
			inl.RunOnModule(m)
			row.Inline = time.Since(start)
			row.NumInlined = inl.NumInlined
			row.FuncDeleted = inl.NumDeleted
		}
		// Baseline: full compilation of every unit.
		{
			prog := workload.Generate(p)
			start := time.Now()
			for i, src := range prog.Units {
				m, err := minic.Compile(fmt.Sprintf("%s.b%d", p.Name, i), src)
				if err != nil {
					return nil, err
				}
				pm := passes.NewPassManager()
				pm.AddStandardPipeline()
				if _, err := pm.Run(m); err != nil {
					return nil, err
				}
				codegen.CompileModule(m, codegen.Cisc86{})
			}
			row.Baseline = time.Since(start)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders rows in the paper's format (seconds).
func PrintTable2(w io.Writer, rows []Table2Row, verbose bool) {
	fmt.Fprintf(w, "Table 2: Interprocedural optimization timings (ms; paper reports seconds on its hardware)\n")
	fmt.Fprintf(w, "%-14s %9s %9s %9s %12s %9s\n", "Benchmark", "DGE", "DAE", "inline", "baseline", "IPO/base")
	var sumRatio float64
	for _, r := range rows {
		ipo := r.DGE + r.DAE + r.Inline
		ratio := float64(ipo) / float64(r.Baseline)
		sumRatio += ratio
		fmt.Fprintf(w, "%-14s %9.3f %9.3f %9.3f %12.3f %8.1f%%\n",
			r.Bench, ms(r.DGE), ms(r.DAE), ms(r.Inline), ms(r.Baseline), 100*ratio)
		if verbose {
			fmt.Fprintf(w, "    work: DGE deleted %d objects, DAE removed %d args/rets, inline integrated %d (deleting %d functions)\n",
				r.DGEDeleted, r.DAEDeleted, r.NumInlined, r.FuncDeleted)
		}
	}
	fmt.Fprintf(w, "%-14s %9s %9s %9s %12s %8.1f%%   (paper: every IPO pass is a small fraction of a full compile)\n",
		"average", "", "", "", "", 100*sumRatio/float64(len(rows)))
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// ---------------------------------------------------------------------------
// Figure 5

// Figure5Row is one benchmark's executable-size comparison.
type Figure5Row struct {
	Bench      string
	LLVM       int // bytecode bytes (with symbol tables, like an executable)
	LLVMPacked int // after general-purpose compression (§4.1.3's bzip2 note)
	X86        int // CISC-86 image bytes
	Sparc      int // RISC-V9 image bytes
}

// Figure5 measures executable sizes for each benchmark.
func Figure5() ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, p := range workload.Suite() {
		m, err := Build(p)
		if err != nil {
			return nil, err
		}
		bc, err := bytecode.Encode(m)
		if err != nil {
			return nil, err
		}
		var packed bytes.Buffer
		zw, _ := flate.NewWriter(&packed, flate.BestCompression)
		zw.Write(bc)
		zw.Close()
		rows = append(rows, Figure5Row{
			Bench:      p.Name,
			LLVM:       len(bc),
			LLVMPacked: packed.Len(),
			X86:        codegen.CompileModule(m, codegen.Cisc86{}).Size(),
			Sparc:      codegen.CompileModule(m, codegen.RiscV9{}).Size(),
		})
	}
	return rows, nil
}

// PrintFigure5 renders the size comparison.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintf(w, "Figure 5: Executable sizes for LLVM, X86, SPARC (bytes)\n")
	fmt.Fprintf(w, "%-14s %9s %9s %9s %11s %11s %11s\n",
		"Benchmark", "LLVM", "X86", "SPARC", "LLVM/X86", "LLVM/SPARC", "packed/LLVM")
	var rX86, rSparc, rPack float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %9d %9d %10.2fx %10.2fx %10.2fx\n",
			r.Bench, r.LLVM, r.X86, r.Sparc,
			float64(r.LLVM)/float64(r.X86),
			float64(r.LLVM)/float64(r.Sparc),
			float64(r.LLVMPacked)/float64(r.LLVM))
		rX86 += float64(r.LLVM) / float64(r.X86)
		rSparc += float64(r.LLVM) / float64(r.Sparc)
		rPack += float64(r.LLVMPacked) / float64(r.LLVM)
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-14s %9s %9s %9s %10.2fx %10.2fx %10.2fx\n", "average", "", "", "",
		rX86/n, rSparc/n, rPack/n)
	fmt.Fprintf(w, "(paper: LLVM ~= X86 size, ~25%% smaller than SPARC; compression halves bytecode)\n")
}

// ---------------------------------------------------------------------------
// Checker table

// CheckerRow is one benchmark's static-checker result: how much code the
// checker covered, what it reported, and how long it took. The synthetic
// benchmarks are generated from well-formed sources, so Errors doubles as a
// false-positive counter — any nonzero value is a checker regression.
type CheckerRow struct {
	Bench       string
	Functions   int
	Diagnostics int
	Errors      int
	ByKind      map[string]int
	Duration    time.Duration
}

// CheckerTable runs the static checker over each optimized benchmark.
func CheckerTable() ([]CheckerRow, error) {
	var rows []CheckerRow
	for _, p := range workload.Suite() {
		m, err := Build(p)
		if err != nil {
			return nil, err
		}
		rep, err := checker.New().Check(m)
		if err != nil {
			return nil, fmt.Errorf("%s: check: %w", p.Name, err)
		}
		rows = append(rows, CheckerRow{
			Bench:       p.Name,
			Functions:   rep.Stats.Functions,
			Diagnostics: rep.Stats.Diagnostics,
			Errors:      rep.Stats.Errors,
			ByKind:      rep.Stats.ByKind,
			Duration:    rep.Stats.Duration,
		})
	}
	return rows, nil
}

// PrintCheckerTable renders the checker coverage table.
func PrintCheckerTable(w io.Writer, rows []CheckerRow) {
	fmt.Fprintf(w, "Checker: static memory-safety diagnostics over optimized benchmarks\n")
	fmt.Fprintf(w, "%-14s %9s %11s %7s %10s  %s\n", "Benchmark", "Functions", "Diagnostics", "Errors", "Time(ms)", "Kinds")
	for _, r := range rows {
		kinds := ""
		for _, k := range diag.SortKinds(r.ByKind) {
			if kinds != "" {
				kinds += " "
			}
			kinds += fmt.Sprintf("%s=%d", k, r.ByKind[k])
		}
		fmt.Fprintf(w, "%-14s %9d %11d %7d %10.2f  %s\n",
			r.Bench, r.Functions, r.Diagnostics, r.Errors, ms(r.Duration), kinds)
	}
	fmt.Fprintf(w, "(errors on these well-formed programs indicate checker false positives)\n")
}
