package experiments

import (
	"encoding/json"
	"io"
)

// Report bundles the evaluation's tables for machine-readable output
// (llvm-bench -json). Sections the caller did not run are omitted. The
// shape is stable so successive BENCH_*.json files can be diffed to track
// the perf trajectory across revisions.
type Report struct {
	Table1   []Table1JSON   `json:"table1,omitempty"`
	Table2   []Table2JSON   `json:"table2,omitempty"`
	Figure5  []Figure5JSON  `json:"figure5,omitempty"`
	Checker  []CheckerJSON  `json:"checker,omitempty"`
	Store    []StoreJSON    `json:"store,omitempty"`
	Obs      []ObsJSON      `json:"obs,omitempty"`
	Validate []ValidateJSON `json:"validate,omitempty"`
	Tiers    []TiersJSON    `json:"tiers,omitempty"`
	Alias    []AliasJSON    `json:"alias,omitempty"`
	Cluster  []ClusterJSON  `json:"cluster,omitempty"`
	// ServeLoad is the open-loop load-generator section: latency quantiles
	// per arrival rate plus the serving-layer observability overhead.
	ServeLoad *ServeLoadSection `json:"serve_load,omitempty"`
}

// Table1JSON is Table1Row with stable JSON field names.
type Table1JSON struct {
	Bench        string  `json:"bench"`
	Typed        int     `json:"typed"`
	Untyped      int     `json:"untyped"`
	TypedPercent float64 `json:"typed_percent"`
}

// Table2JSON is Table2Row with durations in milliseconds (the paper quotes
// fractions of a second; nanosecond integers would just add noise).
type Table2JSON struct {
	Bench       string  `json:"bench"`
	DGEMillis   float64 `json:"dge_ms"`
	DAEMillis   float64 `json:"dae_ms"`
	InlineMs    float64 `json:"inline_ms"`
	BaselineMs  float64 `json:"baseline_ms"`
	DGEDeleted  int     `json:"dge_deleted"`
	DAEDeleted  int     `json:"dae_deleted"`
	NumInlined  int     `json:"num_inlined"`
	FuncDeleted int     `json:"func_deleted"`
}

// Figure5JSON is Figure5Row with stable JSON field names.
type Figure5JSON struct {
	Bench      string `json:"bench"`
	LLVM       int    `json:"llvm_bytes"`
	LLVMPacked int    `json:"llvm_packed_bytes"`
	X86        int    `json:"x86_bytes"`
	Sparc      int    `json:"sparc_bytes"`
}

// CheckerJSON is CheckerRow with a millisecond duration, matching Table2's
// convention. Errors over the well-formed synthetic suite count checker
// false positives, so the trajectory files record them explicitly.
type CheckerJSON struct {
	Bench       string         `json:"bench"`
	Functions   int            `json:"functions"`
	Diagnostics int            `json:"diagnostics"`
	Errors      int            `json:"errors"`
	ByKind      map[string]int `json:"by_kind,omitempty"`
	CheckMs     float64        `json:"check_ms"`
}

// StoreJSON is StoreRow in Table2's millisecond convention.
type StoreJSON struct {
	Bench         string  `json:"bench"`
	ArtifactBytes int     `json:"artifact_bytes"`
	ColdMs        float64 `json:"cold_ms"`
	WarmMs        float64 `json:"warm_ms"`
	Speedup       float64 `json:"speedup"`
	ColdHit       bool    `json:"cold_hit,omitempty"`
}

// NewReport converts the printed tables' rows to their JSON shapes; any
// slice may be nil.
func NewReport(t1 []Table1Row, t2 []Table2Row, f5 []Figure5Row, ck []CheckerRow) *Report {
	r := &Report{}
	for _, row := range t1 {
		r.Table1 = append(r.Table1, Table1JSON{
			Bench: row.Bench, Typed: row.Typed, Untyped: row.Untyped, TypedPercent: row.Percent,
		})
	}
	for _, row := range t2 {
		r.Table2 = append(r.Table2, Table2JSON{
			Bench: row.Bench, DGEMillis: ms(row.DGE), DAEMillis: ms(row.DAE),
			InlineMs: ms(row.Inline), BaselineMs: ms(row.Baseline),
			DGEDeleted: row.DGEDeleted, DAEDeleted: row.DAEDeleted,
			NumInlined: row.NumInlined, FuncDeleted: row.FuncDeleted,
		})
	}
	for _, row := range f5 {
		r.Figure5 = append(r.Figure5, Figure5JSON{
			Bench: row.Bench, LLVM: row.LLVM, LLVMPacked: row.LLVMPacked,
			X86: row.X86, Sparc: row.Sparc,
		})
	}
	for _, row := range ck {
		r.Checker = append(r.Checker, CheckerJSON{
			Bench: row.Bench, Functions: row.Functions, Diagnostics: row.Diagnostics,
			Errors: row.Errors, ByKind: row.ByKind, CheckMs: ms(row.Duration),
		})
	}
	return r
}

// ObsJSON is ObsRow in Table2's millisecond convention.
type ObsJSON struct {
	Bench           string  `json:"bench"`
	OffMs           float64 `json:"off_ms"`
	OnMs            float64 `json:"on_ms"`
	OverheadPercent float64 `json:"overhead_percent"`
	Spans           int     `json:"spans"`
	Remarks         int     `json:"remarks"`
}

// AddObs appends the observability-overhead rows to the report.
func (r *Report) AddObs(rows []ObsRow) {
	for _, row := range rows {
		r.Obs = append(r.Obs, ObsJSON{
			Bench: row.Bench, OffMs: ms(row.Off), OnMs: ms(row.On),
			OverheadPercent: row.OverheadPercent(),
			Spans:           row.Spans, Remarks: row.Remarks,
		})
	}
}

// AddStore appends the lifelong-store latency rows to the report.
func (r *Report) AddStore(rows []StoreRow) {
	for _, row := range rows {
		r.Store = append(r.Store, StoreJSON{
			Bench: row.Bench, ArtifactBytes: row.Bytes,
			ColdMs: ms(row.Cold), WarmMs: ms(row.Warm),
			Speedup: row.Speedup(), ColdHit: row.ColdHit,
		})
	}
}

// ValidateJSON is ValidateRow in Table2's millisecond convention.
type ValidateJSON struct {
	Bench           string  `json:"bench"`
	OffMs           float64 `json:"off_ms"`
	OnMs            float64 `json:"on_ms"`
	OverheadPercent float64 `json:"overhead_percent"`
	Equivalent      int     `json:"equivalent"`
	Inconclusive    int     `json:"inconclusive"`
	Probes          int     `json:"probes"`
}

// AddValidate appends the translation-validation overhead rows to the
// report.
func (r *Report) AddValidate(rows []ValidateRow) {
	for _, row := range rows {
		r.Validate = append(r.Validate, ValidateJSON{
			Bench: row.Bench, OffMs: ms(row.Off), OnMs: ms(row.On),
			OverheadPercent: row.OverheadPercent(),
			Equivalent:      row.Equivalent, Inconclusive: row.Inconclusive,
			Probes: row.Probes,
		})
	}
}

// TiersJSON is TiersRow in Table2's millisecond convention, plus the
// derived tier-2-over-tier-1 speedup the perf bar tracks.
type TiersJSON struct {
	Bench    string  `json:"bench"`
	InterpMs float64 `json:"interp_ms"`
	Tier1Ms  float64 `json:"tier1_ms"`
	Tier2Ms  float64 `json:"tier2_ms"`
	AutoMs   float64 `json:"auto_profiled_ms"`
	T2OverT1 float64 `json:"t2_over_t1"`
	Steps    int64   `json:"steps"`
}

// AddTiers appends the execution-tier ablation rows to the report.
func (r *Report) AddTiers(rows []TiersRow) {
	for _, row := range rows {
		r.Tiers = append(r.Tiers, TiersJSON{
			Bench: row.Bench, InterpMs: ms(row.Interp), Tier1Ms: ms(row.T1),
			Tier2Ms: ms(row.T2), AutoMs: ms(row.Auto),
			T2OverT1: row.T2OverT1(), Steps: row.Steps,
		})
	}
}

// AliasJSON is AliasRow in Table2's millisecond convention. WorkOn/WorkOff
// count applied memory-pass remarks, so the trajectory records whether the
// points-to analysis keeps buying strictly more optimization work.
type AliasJSON struct {
	Bench           string  `json:"bench"`
	Classes         int     `json:"classes"`
	TypedPercent    float64 `json:"typed_percent"`
	OffMs           float64 `json:"off_ms"`
	OnMs            float64 `json:"on_ms"`
	OverheadPercent float64 `json:"overhead_percent"`
	WorkOff         int     `json:"work_off"`
	WorkOn          int     `json:"work_on"`
	QueriesNo       int64   `json:"queries_no"`
	QueriesMay      int64   `json:"queries_may"`
	QueriesMust     int64   `json:"queries_must"`
}

// AddAlias appends the alias precision/overhead rows to the report.
func (r *Report) AddAlias(rows []AliasRow) {
	for _, row := range rows {
		r.Alias = append(r.Alias, AliasJSON{
			Bench: row.Bench, Classes: row.Classes, TypedPercent: row.Typed,
			OffMs: ms(row.Off), OnMs: ms(row.On),
			OverheadPercent: row.OverheadPercent(),
			WorkOff:         row.WorkOff, WorkOn: row.WorkOn,
			QueriesNo: row.Queries.No, QueriesMay: row.Queries.May, QueriesMust: row.Queries.Must,
		})
	}
}

// ClusterJSON is ClusterRow in Table2's millisecond convention: one
// benchmark's compile latency through a 3-node sharded llvm-serve —
// cluster-wide cold compile, owner cache hit, and non-owner peer
// fetch-through.
type ClusterJSON struct {
	Bench         string  `json:"bench"`
	ArtifactBytes int     `json:"artifact_bytes"`
	Peers         int     `json:"peers"`
	ColdMs        float64 `json:"cold_ms"`
	WarmLocalMs   float64 `json:"warm_local_ms"`
	RemoteHitMs   float64 `json:"remote_hit_ms"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	RemoteSpeedup float64 `json:"remote_speedup"`
}

// AddCluster appends the sharded-cluster latency rows to the report.
func (r *Report) AddCluster(rows []ClusterRow) {
	for _, row := range rows {
		r.Cluster = append(r.Cluster, ClusterJSON{
			Bench: row.Bench, ArtifactBytes: row.Bytes, Peers: row.Peers,
			ColdMs: ms(row.Cold), WarmLocalMs: ms(row.WarmLocal), RemoteHitMs: ms(row.RemoteHit),
			WarmSpeedup: row.WarmSpeedup(), RemoteSpeedup: row.RemoteSpeedup(),
		})
	}
}

// ServeLoadJSON is ServeLoadRow in Table2's millisecond convention.
type ServeLoadJSON struct {
	Endpoint      string  `json:"endpoint"`
	RateRPS       float64 `json:"rate_rps"`
	DurationSecs  float64 `json:"duration_secs"`
	Sent          int     `json:"sent"`
	OK            int     `json:"ok"`
	Rejected      int     `json:"rejected_503"`
	Failed        int     `json:"failed"`
	DedupFollower int     `json:"dedup_follower"`
	CacheHit      int     `json:"cache_hit"`
	CacheRemote   int     `json:"cache_remote"`
	CacheMiss     int     `json:"cache_miss"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// ServeLoadSection bundles the load rows with the serving-layer
// observability overhead measurement.
type ServeLoadSection struct {
	Rows               []ServeLoadJSON `json:"rows"`
	ObsOffP50Ms        float64         `json:"obs_off_p50_ms"`
	ObsOnP50Ms         float64         `json:"obs_on_p50_ms"`
	ObsOverheadPercent float64         `json:"obs_overhead_percent"`
}

// AddServeLoad attaches the open-loop load-generator result to the report.
func (r *Report) AddServeLoad(res *ServeLoadResult) {
	if res == nil {
		return
	}
	sec := &ServeLoadSection{
		ObsOffP50Ms:        ms(res.ObsOffP50),
		ObsOnP50Ms:         ms(res.ObsOnP50),
		ObsOverheadPercent: res.ObsOverheadPercent,
	}
	for _, row := range res.Rows {
		sec.Rows = append(sec.Rows, ServeLoadJSON{
			Endpoint: row.Endpoint, RateRPS: row.RateRPS,
			DurationSecs: row.Duration.Seconds(),
			Sent:         row.Sent, OK: row.OK, Rejected: row.Rejected, Failed: row.Failed,
			DedupFollower: row.DedupFollower,
			CacheHit:      row.CacheHit, CacheRemote: row.CacheRemote, CacheMiss: row.CacheMiss,
			P50Ms: ms(row.P50), P95Ms: ms(row.P95), P99Ms: ms(row.P99), MaxMs: ms(row.Max),
			ThroughputRPS: row.Throughput,
		})
	}
	r.ServeLoad = sec
}

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
