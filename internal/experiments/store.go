package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/lifelong"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/workload"
)

// StoreRow is one benchmark's cold-vs-warm compile latency through the
// lifelong store: Cold is a miss (full pipeline + artifact write), Warm
// is the immediately-following hit (hash + cache read, zero pass work).
type StoreRow struct {
	Bench   string
	Bytes   int // canonical module size
	Cold    time.Duration
	Warm    time.Duration
	ColdHit bool // true when dir already held the artifact (persisted store)
}

// Speedup is the warm-over-cold latency ratio.
func (r StoreRow) Speedup() float64 {
	if r.Warm <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.Warm)
}

// buildRaw compiles and links a benchmark WITHOUT per-unit optimization,
// so the store's cold compile pays the full standard pipeline — the cost
// the cache is amortizing.
func buildRaw(p workload.Profile) (*core.Module, error) {
	prog := workload.Generate(p)
	mods := make([]*core.Module, 0, len(prog.Units))
	for i, src := range prog.Units {
		m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
		if err != nil {
			return nil, fmt.Errorf("%s unit %d: %w", p.Name, i, err)
		}
		mods = append(mods, m)
	}
	linked, err := linker.Link(p.Name, mods...)
	if err != nil {
		return nil, err
	}
	passes.NewInternalize().RunOnModule(linked)
	if err := core.Verify(linked); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return linked, nil
}

// StoreTable compiles each benchmark twice through a lifelong store
// rooted at dir and reports the miss/hit latencies. The warm artifact is
// checked byte-identical to the cold one — the subsystem's core
// invariant — and any mismatch is an error, not a row.
func StoreTable(dir string) ([]StoreRow, error) {
	st, err := lifelong.Open(dir, 0)
	if err != nil {
		return nil, err
	}
	var rows []StoreRow
	for _, p := range workload.Suite() {
		m, err := buildRaw(p)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		cold, err := lifelong.Compile(st, m, "std")
		if err != nil {
			return nil, fmt.Errorf("%s cold: %w", p.Name, err)
		}
		coldDur := time.Since(t0)
		t1 := time.Now()
		warm, err := lifelong.Compile(st, m, "std")
		if err != nil {
			return nil, fmt.Errorf("%s warm: %w", p.Name, err)
		}
		warmDur := time.Since(t1)
		if !warm.Hit {
			return nil, fmt.Errorf("%s: second compile missed the cache", p.Name)
		}
		if !bytes.Equal(cold.Data, warm.Data) {
			return nil, fmt.Errorf("%s: warm artifact not byte-identical to cold", p.Name)
		}
		rows = append(rows, StoreRow{
			Bench: p.Name, Bytes: len(cold.Data),
			Cold: coldDur, Warm: warmDur, ColdHit: cold.Hit,
		})
	}
	return rows, nil
}

// PrintStoreTable renders rows alongside the other evaluation tables.
func PrintStoreTable(w io.Writer, rows []StoreRow) {
	fmt.Fprintf(w, "Store: cold vs warm compile latency through the lifelong cache\n")
	fmt.Fprintf(w, "%-14s %10s %12s %12s %9s\n", "Benchmark", "Artifact", "Cold", "Warm", "Speedup")
	for _, r := range rows {
		cold := fmt.Sprintf("%.2fms", ms(r.Cold))
		if r.ColdHit {
			cold += "*"
		}
		fmt.Fprintf(w, "%-14s %9dB %12s %11.3fms %8.0fx\n",
			r.Bench, r.Bytes, cold, ms(r.Warm), r.Speedup())
	}
	fmt.Fprintf(w, "(* cold compile hit a persisted artifact from an earlier run)\n")
}
