// Package linker combines IR modules into one whole-program module, the
// first stage of the link-time optimizer in Figure 4 of the paper:
// declarations are resolved against definitions, structurally identical
// named types unify, and clashing internal symbols are renamed. The result
// preserves the full representation so the interprocedural optimizer (and
// later the runtime and idle-time optimizers) can operate on the entire
// program.
package linker

import (
	"fmt"

	"repro/internal/core"
)

// Link merges the given modules into a new module with the given name.
// The input modules are consumed (their contents move to the result).
func Link(name string, modules ...*core.Module) (*core.Module, error) {
	dest := core.NewModule(name)
	for _, src := range modules {
		if err := linkInto(dest, src); err != nil {
			return nil, fmt.Errorf("linker: linking module %q: %w", src.Name, err)
		}
	}
	fixupInitializers(dest)
	return dest, nil
}

func linkInto(dest, src *core.Module) error {
	// Named types: keep the destination's entry when structurally equal;
	// otherwise register under a fresh name.
	for _, tn := range src.TypeNames() {
		st, _ := src.NamedType(tn)
		if dt, ok := dest.NamedType(tn); ok {
			if core.TypesEqual(dt, st) {
				continue
			}
			// Conflicting definition: rename the incoming type.
			fresh := tn
			for i := 1; ; i++ {
				fresh = fmt.Sprintf("%s.%d", tn, i)
				if _, taken := dest.NamedType(fresh); !taken {
					break
				}
			}
			if s, ok := st.(*core.StructType); ok && s.Name == tn {
				s.Name = fresh
			}
			dest.AddTypeName(fresh, st)
			continue
		}
		dest.AddTypeName(tn, st)
	}

	// Globals.
	for _, g := range append([]*core.GlobalVariable(nil), src.Globals...) {
		if err := linkGlobal(dest, src, g); err != nil {
			return err
		}
	}
	// Functions.
	for _, f := range append([]*core.Function(nil), src.Funcs...) {
		if err := linkFunction(dest, src, f); err != nil {
			return err
		}
	}
	return nil
}

func linkGlobal(dest, src *core.Module, g *core.GlobalVariable) error {
	name := g.Name()
	if g.Linkage == core.InternalLinkage {
		// Internal symbols never collide with anything: rename if needed.
		src.RemoveGlobal(g)
		g.SetName(dest.UniqueSymbol(name))
		dest.AddGlobal(g)
		return nil
	}
	if df := dest.Func(name); df != nil {
		return fmt.Errorf("symbol %%%s is a global in one module and a function in another", name)
	}
	dg := dest.Global(name)
	if dg == nil {
		src.RemoveGlobal(g)
		dest.AddGlobal(g)
		return nil
	}
	if !core.TypesEqual(dg.ValueType, g.ValueType) {
		return fmt.Errorf("global %%%s declared with type %s and %s", name, dg.ValueType, g.ValueType)
	}
	switch {
	case g.IsDeclaration():
		// Existing symbol (def or decl) satisfies the reference.
		core.ReplaceAllUses(g, dg)
		src.RemoveGlobal(g)
	case dg.IsDeclaration():
		// Promote the destination declaration to a definition.
		dg.Init = g.Init
		dg.IsConst = g.IsConst
		core.ReplaceAllUses(g, dg)
		src.RemoveGlobal(g)
	default:
		return fmt.Errorf("duplicate definition of global %%%s", name)
	}
	return nil
}

func linkFunction(dest, src *core.Module, f *core.Function) error {
	name := f.Name()
	if f.Linkage == core.InternalLinkage {
		src.RemoveFunc(f)
		f.SetName(dest.UniqueSymbol(name))
		dest.AddFunc(f)
		return nil
	}
	if dg := dest.Global(name); dg != nil {
		return fmt.Errorf("symbol %%%s is a function in one module and a global in another", name)
	}
	df := dest.Func(name)
	if df == nil {
		src.RemoveFunc(f)
		dest.AddFunc(f)
		return nil
	}
	if !core.TypesEqual(df.Sig, f.Sig) {
		return fmt.Errorf("function %%%s declared with signature %s and %s", name, df.Sig, f.Sig)
	}
	switch {
	case f.IsDeclaration():
		core.ReplaceAllUses(f, df)
		src.RemoveFunc(f)
	case df.IsDeclaration():
		// Replace the declaration with the definition.
		core.ReplaceAllUses(df, f)
		dest.RemoveFunc(df)
		src.RemoveFunc(f)
		dest.AddFunc(f)
	default:
		return fmt.Errorf("duplicate definition of function %%%s", name)
	}
	return nil
}

// fixupInitializers rewrites references inside aggregate initializers
// (which do not participate in use lists) so they point at the linked
// module's symbols rather than at replaced declarations.
func fixupInitializers(m *core.Module) {
	var fix func(c core.Constant) core.Constant
	fix = func(c core.Constant) core.Constant {
		switch cc := c.(type) {
		case *core.Function:
			if cc.Parent() != m {
				if repl := m.Func(cc.Name()); repl != nil {
					return repl
				}
			}
		case *core.GlobalVariable:
			if cc.Parent() != m {
				if repl := m.Global(cc.Name()); repl != nil {
					return repl
				}
			}
		case *core.ConstantArray:
			for i, e := range cc.Elems {
				cc.Elems[i] = fix(e)
			}
		case *core.ConstantStruct:
			for i, f := range cc.Fields {
				cc.Fields[i] = fix(f)
			}
		case *core.ConstantExpr:
			for i := 0; i < cc.NumOperands(); i++ {
				if oc, ok := cc.Operand(i).(core.Constant); ok {
					if nc := fix(oc); nc != oc.(core.Constant) {
						cc.SetOperand(i, nc)
					}
				}
			}
		}
		return c
	}
	for _, g := range m.Globals {
		if g.Init != nil {
			g.Init = fix(g.Init)
		}
	}
}
