package linker

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/passes"
)

func parse(t *testing.T, name, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify %s: %v", name, err)
	}
	return m
}

func TestLinkDeclToDef(t *testing.T) {
	a := parse(t, "a", `
declare int %helper(int)

int %main() {
entry:
	%r = call int %helper(int 20)
	ret int %r
}
`)
	b := parse(t, "b", `
int %helper(int %x) {
entry:
	%r = add int %x, 22
	ret int %r
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("linked module invalid: %v\n%s", err, m)
	}
	if m.Func("helper").IsDeclaration() {
		t.Fatal("helper still a declaration")
	}
	mc, _ := interp.NewMachine(m, nil)
	v, err := mc.RunMain()
	if err != nil || v != 42 {
		t.Fatalf("linked program: %d, %v", v, err)
	}
}

func TestLinkDefThenDecl(t *testing.T) {
	a := parse(t, "a", `
int %helper(int %x) {
entry:
	ret int %x
}
`)
	b := parse(t, "b", `
declare int %helper(int)

int %main() {
entry:
	%r = call int %helper(int 5)
	ret int %r
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("func count = %d", len(m.Funcs))
	}
}

func TestLinkGlobalResolution(t *testing.T) {
	a := parse(t, "a", `
%shared = external global int

int %get() {
entry:
	%v = load int* %shared
	ret int %v
}
`)
	b := parse(t, "b", `
%shared = global int 99
declare int %get()

int %main() {
entry:
	%r = call int %get()
	ret int %r
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	mc, _ := interp.NewMachine(m, nil)
	if v, _ := mc.RunMain(); v != 99 {
		t.Fatalf("global resolution: got %d", v)
	}
}

func TestLinkInternalSymbolsRenamed(t *testing.T) {
	a := parse(t, "a", `
internal int %helper() {
entry:
	ret int 1
}
int %callA() {
entry:
	%r = call int %helper()
	ret int %r
}
`)
	b := parse(t, "b", `
internal int %helper() {
entry:
	ret int 2
}
int %callB() {
entry:
	%r = call int %helper()
	ret int %r
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	mc, _ := interp.NewMachine(m, nil)
	va, _ := mc.RunFunction(m.Func("callA"))
	vb, _ := mc.RunFunction(m.Func("callB"))
	if va != 1 || vb != 2 {
		t.Fatalf("internal collision: callA=%d callB=%d", va, vb)
	}
}

func TestLinkDuplicateDefinitionRejected(t *testing.T) {
	a := parse(t, "a", "int %f() {\nentry:\n\tret int 1\n}\n")
	b := parse(t, "b", "int %f() {\nentry:\n\tret int 2\n}\n")
	_, err := Link("prog", a, b)
	if err == nil || !strings.Contains(err.Error(), "duplicate definition") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
}

func TestLinkSignatureMismatchRejected(t *testing.T) {
	a := parse(t, "a", "declare int %f(int)\nvoid %u() {\nentry:\n\t%r = call int %f(int 1)\n\tret void\n}\n")
	b := parse(t, "b", "double %f(double %x) {\nentry:\n\tret double %x\n}\n")
	_, err := Link("prog", a, b)
	if err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("mismatch not rejected: %v", err)
	}
}

func TestLinkTypeUnification(t *testing.T) {
	a := parse(t, "a", `
%pair = type { int, int }

declare int %sumPair(%pair*)

int %main() {
entry:
	%p = malloc %pair
	%f0 = getelementptr %pair* %p, long 0, ubyte 0
	store int 40, int* %f0
	%f1 = getelementptr %pair* %p, long 0, ubyte 1
	store int 2, int* %f1
	%r = call int %sumPair(%pair* %p)
	ret int %r
}
`)
	b := parse(t, "b", `
%pair = type { int, int }

int %sumPair(%pair* %p) {
entry:
	%f0 = getelementptr %pair* %p, long 0, ubyte 0
	%a = load int* %f0
	%f1 = getelementptr %pair* %p, long 0, ubyte 1
	%b = load int* %f1
	%s = add int %a, %b
	ret int %s
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("type unification broke the module: %v\n%s", err, m)
	}
	mc, _ := interp.NewMachine(m, nil)
	if v, err := mc.RunMain(); err != nil || v != 42 {
		t.Fatalf("cross-module struct passing: %d, %v", v, err)
	}
}

func TestLinkConflictingTypeNamesRenamed(t *testing.T) {
	a := parse(t, "a", `
%t = type { int }
void %fa(%t* %p) {
entry:
	ret void
}
`)
	b := parse(t, "b", `
%t = type { double, double }
void %fb(%t* %p) {
entry:
	ret void
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	if len(m.TypeNames()) != 2 {
		t.Fatalf("type names = %v", m.TypeNames())
	}
}

func TestLinkInitializerFixup(t *testing.T) {
	// Module a has a vtable referencing a declaration that module b
	// defines; after linking, the initializer must point at the definition.
	a := parse(t, "a", `
declare int %method(int)
%vtable = global [1 x int (int)*] [ int (int)* %method ]
`)
	b := parse(t, "b", `
int %method(int %x) {
entry:
	%r = mul int %x, 2
	ret int %r
}
`)
	m, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	vt := m.Global("vtable")
	arr := vt.Init.(*core.ConstantArray)
	fn, ok := arr.Elems[0].(*core.Function)
	if !ok || fn.IsDeclaration() || fn.Parent() != m {
		t.Fatalf("initializer not fixed up: %T", arr.Elems[0])
	}
}

// TestSeparateCompilationScenario is the paper's whole workflow: compile
// translation units separately, link, internalize, run the link-time
// interprocedural pipeline, and check the program still computes the same
// answer with less work.
func TestSeparateCompilationScenario(t *testing.T) {
	unit1 := `
declare int %combine(int, int)

int %main() {
entry:
	%a = call int %combine(int 12, int 30)
	ret int %a
}
`
	unit2 := `
int %combine(int %x, int %y) {
entry:
	%s = add int %x, %y
	ret int %s
}
`
	m1 := parse(t, "u1", unit1)
	m2 := parse(t, "u2", unit2)
	linked, err := Link("prog", m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewPassManager()
	pm.VerifyEach = true
	pm.Add(passes.NewInternalize())
	pm.AddLinkTimePipeline()
	if _, err := pm.Run(linked); err != nil {
		t.Fatal(err)
	}
	mc, _ := interp.NewMachine(linked, nil)
	v, err := mc.RunMain()
	if err != nil || v != 42 {
		t.Fatalf("result %d, %v", v, err)
	}
	// combine should have been internalized, inlined, and deleted.
	if linked.Func("combine") != nil {
		t.Errorf("combine survived link-time optimization:\n%s", linked)
	}
}
