package interp

// Program is a shareable per-module translation cache. A Machine owns
// per-run state (memory, counters); translations are pure functions of
// the module and the deterministic NewMachine layout (function
// descriptors in module order, then globals in order), so every machine
// executing the same module object resolves identical constant bits and
// can share one translation per (module, function). llvm-serve attaches a
// Program to each /run machine so repeated requests for a cached module
// never retranslate — the Reused counters prove it.

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/obs"
)

// Program caches tier-1 and tier-2 translations per function for one
// module. Safe for concurrent use by machines on different goroutines.
type Program struct {
	mod *core.Module
	mu  sync.Mutex
	t1  map[*core.Function]*jitFunc
	t2  map[*core.Function]*codegen.EFunction
	// t2p is the profiling variant (block-entry ECount instructions);
	// profiling and non-profiling machines sharing one Program each get
	// the code shape they need without invalidating the other's.
	t2p map[*core.Function]*codegen.EFunction

	t1Compiles atomic.Int64
	t1Reused   atomic.Int64
	t2Compiles atomic.Int64
	t2Reused   atomic.Int64
}

// NewProgram creates an empty translation cache for m.
func NewProgram(m *core.Module) *Program {
	return &Program{
		mod: m,
		t1:  map[*core.Function]*jitFunc{},
		t2:  map[*core.Function]*codegen.EFunction{},
		t2p: map[*core.Function]*codegen.EFunction{},
	}
}

// AttachProgram points the machine at a shared translation cache. The
// program must have been built for the machine's module object: constant
// resolution bakes the deterministic layout of that specific module.
func (mc *Machine) AttachProgram(p *Program) error {
	if p == nil {
		mc.prog = nil
		return nil
	}
	if p.mod != mc.Mod {
		return errors.New("interp: program was built for a different module")
	}
	mc.prog = p
	return nil
}

// t1For returns the baseline translation of f, compiling it on first use.
// compiled reports whether this call performed the translation.
func (p *Program) t1For(mc *Machine, f *core.Function) (jf *jitFunc, compiled bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if jf := p.t1[f]; jf != nil {
		p.t1Reused.Add(1)
		return jf, false, nil
	}
	jf, err = mc.jitCompile(f)
	if err != nil {
		return nil, false, err
	}
	p.t1[f] = jf
	p.t1Compiles.Add(1)
	return jf, true, nil
}

// t2For returns the optimizing-tier translation of f (machine-independent;
// each machine resolves the constant pool itself). counts selects the
// profiling variant.
func (p *Program) t2For(f *core.Function, counts bool) (ef *codegen.EFunction, compiled bool, err error) {
	cache := p.t2
	if counts {
		cache = p.t2p
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ef := cache[f]; ef != nil {
		p.t2Reused.Add(1)
		return ef, false, nil
	}
	ef, err = codegen.LowerExec(f, counts)
	if err != nil {
		return nil, false, err
	}
	cache[f] = ef
	p.t2Compiles.Add(1)
	return ef, true, nil
}

// ProgramStats reports translation cache traffic.
type ProgramStats struct {
	T1Compiles, T1Reused int64
	T2Compiles, T2Reused int64
}

// Stats snapshots the compile/reuse counters.
func (p *Program) Stats() ProgramStats {
	return ProgramStats{
		T1Compiles: p.t1Compiles.Load(),
		T1Reused:   p.t1Reused.Load(),
		T2Compiles: p.t2Compiles.Load(),
		T2Reused:   p.t2Reused.Load(),
	}
}

// RegisterMetrics bridges the cache counters onto a metrics registry
// (llvm_interp_translation_*_total{tier=...}).
func (p *Program) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("llvm_interp_translation_compiles_total",
		func() float64 { return float64(p.t1Compiles.Load()) }, "tier", "1")
	r.CounterFunc("llvm_interp_translation_compiles_total",
		func() float64 { return float64(p.t2Compiles.Load()) }, "tier", "2")
	r.CounterFunc("llvm_interp_translation_reuses_total",
		func() float64 { return float64(p.t1Reused.Load()) }, "tier", "1")
	r.CounterFunc("llvm_interp_translation_reuses_total",
		func() float64 { return float64(p.t2Reused.Load()) }, "tier", "2")
}
